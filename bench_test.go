package graphrnn_test

// One benchmark per table and figure of the paper's evaluation (Section 6),
// each delegating to the experiment harness that rebuilds the workload and
// prints the same series as the paper. Run a single regeneration with e.g.
//
//	go test -bench BenchmarkFig17 -benchtime 1x -v
//
// The harness defaults to reduced ("laptop") scales; cmd/experiments -full
// runs the paper-scale configurations. Micro-benchmarks for individual
// query algorithms and maintenance operations follow at the bottom.

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"graphrnn"
	"graphrnn/internal/exp"
)

// benchScale keeps bench iterations quick while exercising the identical
// code path as cmd/experiments.
func benchScale() exp.Scale { return exp.Scale{Queries: 5, Seed: 2006} }

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := exp.Find(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	var tab *exp.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = e.Run(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Report the paper's cost metric for the first and last setting of
	// the first algorithm column, so regressions in the *shape* show up
	// in benchmark diffs.
	first := tab.Cells[0][0]
	last := tab.Cells[len(tab.Cells)-1][0]
	b.ReportMetric(first.Total(), "cost_first_s")
	b.ReportMetric(last.Total(), "cost_last_s")
	if testing.Verbose() {
		b.Logf("\n%s", tab.Format())
	}
}

// Table 1: ad-hoc predicate queries on the DBLP-like coauthorship graph.
func BenchmarkTable1AdHocDBLP(b *testing.B) { benchExperiment(b, "table1") }

// Table 2: cost vs density on the DBLP-like graph.
func BenchmarkTable2DensityDBLP(b *testing.B) { benchExperiment(b, "table2") }

// Fig 15: cost vs |V| on BRITE-like topologies (exponential expansion).
func BenchmarkFig15BriteScaling(b *testing.B) { benchExperiment(b, "fig15") }

// Fig 16: cost vs density on a fixed BRITE-like topology.
func BenchmarkFig16BriteDensity(b *testing.B) { benchExperiment(b, "fig16") }

// Fig 17: cost vs density on the SF-like unrestricted network.
func BenchmarkFig17SFDensity(b *testing.B) { benchExperiment(b, "fig17") }

// Fig 18: cost vs k on the SF-like network.
func BenchmarkFig18SFVaryK(b *testing.B) { benchExperiment(b, "fig18") }

// Fig 19: continuous queries vs route size.
func BenchmarkFig19Continuous(b *testing.B) { benchExperiment(b, "fig19") }

// Fig 20a: grid maps, cost vs |V|.
func BenchmarkFig20aGridScaling(b *testing.B) { benchExperiment(b, "fig20a") }

// Fig 20b: grid maps, cost vs average degree.
func BenchmarkFig20bGridDegree(b *testing.B) { benchExperiment(b, "fig20b") }

// Fig 21: cost vs LRU buffer capacity.
func BenchmarkFig21BufferSize(b *testing.B) { benchExperiment(b, "fig21") }

// Fig 22a: materialization update cost vs density.
func BenchmarkFig22aUpdateDensity(b *testing.B) { benchExperiment(b, "fig22a") }

// Fig 22b: materialization update cost vs K.
func BenchmarkFig22bUpdateK(b *testing.B) { benchExperiment(b, "fig22b") }

// --- Micro-benchmarks -----------------------------------------------------

type microEnv struct {
	db      *graphrnn.DB
	ps      *graphrnn.NodePoints
	mat     *graphrnn.Materialization
	queries []graphrnn.PointID
}

func newMicroEnv(b *testing.B) *microEnv {
	b.Helper()
	g, err := graphrnn.GenerateRoadNetwork(2006, 20000)
	if err != nil {
		b.Fatal(err)
	}
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true})
	if err != nil {
		b.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(2007, g.NumNodes()/100)
	if err != nil {
		b.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	return &microEnv{db: db, ps: ps, mat: mat, queries: ps.Points()}
}

func benchQueries(b *testing.B, algo func(*microEnv) graphrnn.Algorithm) {
	e := newMicroEnv(b)
	a := algo(e)
	e.db.ResetIOStats()
	e.mat.ResetIOStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qp := e.queries[i%len(e.queries)]
		qnode, _ := e.ps.NodeOf(qp)
		if _, err := e.db.RNN(e.ps.Excluding(qp), qnode, 2, a); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reads := e.db.IOStats().Reads + e.mat.IOStats().Reads
	b.ReportMetric(float64(reads)/float64(b.N), "io_reads/op")
}

// R2NN query latency per algorithm on a 20K-node road network, D=0.01.
func BenchmarkQueryEager(b *testing.B) {
	benchQueries(b, func(*microEnv) graphrnn.Algorithm { return graphrnn.Eager() })
}

func BenchmarkQueryLazy(b *testing.B) {
	benchQueries(b, func(*microEnv) graphrnn.Algorithm { return graphrnn.Lazy() })
}

func BenchmarkQueryLazyEP(b *testing.B) {
	benchQueries(b, func(*microEnv) graphrnn.Algorithm { return graphrnn.LazyEP() })
}

func BenchmarkQueryEagerM(b *testing.B) {
	benchQueries(b, func(e *microEnv) graphrnn.Algorithm { return graphrnn.EagerM(e.mat) })
}

// R2NN query latency through the hub-label substrate on the identical
// workload as the expansion benchmarks above (labels persisted into a
// paged file and served through their own LRU buffer, so io_reads/op
// reports label faults the way the other substrates report page faults) —
// the BENCH_PR2.json claim that label intersection beats network expansion
// at n >= 10k rides on this comparison.
func BenchmarkQueryHubLabel(b *testing.B) {
	e := newMicroEnv(b)
	idx, err := e.db.BuildHubLabelIndex(e.ps, 4, &graphrnn.HubLabelOptions{DiskBacked: true, BufferPages: 64})
	if err != nil {
		b.Fatal(err)
	}
	a := graphrnn.HubLabel(idx)
	idx.ResetIOStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qp := e.queries[i%len(e.queries)]
		qnode, _ := e.ps.NodeOf(qp)
		if _, err := e.db.RNN(e.ps.Excluding(qp), qnode, 2, a); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(idx.IOStats().Reads)/float64(b.N), "io_reads/op")
}

// BenchmarkCIQueries is the workload the CI bench-regression gate
// (cmd/benchci, the bench job of ci.yml) tracks: the full fixed-seed query
// set — every data point of the 20K-node road network queried once at k=2 —
// as ONE benchmark op per algorithm, so -benchtime=1x yields a stable
// average instead of a noisy single-query sample. BENCH_PR2.json is the
// committed baseline of exactly these numbers. Queries flow through the
// unified Run surface (the per-query planning cost is part of what the
// gate tracks); the algorithms are named explicitly so the series keeps
// measuring the substrates, not the planner's preference.
func BenchmarkCIQueries(b *testing.B) {
	e := newMicroEnv(b)
	hubIdx, err := e.db.BuildHubLabelIndex(e.ps, 4, &graphrnn.HubLabelOptions{DiskBacked: true, BufferPages: 64})
	if err != nil {
		b.Fatal(err)
	}
	algos := []struct {
		name string
		algo graphrnn.Algorithm
	}{
		{"eager", graphrnn.Eager()},
		{"lazy", graphrnn.Lazy()},
		{"lazy-ep", graphrnn.LazyEP()},
		{"eager-m", graphrnn.EagerM(e.mat)},
		{"hub-label", graphrnn.HubLabel(hubIdx)},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			e.db.ResetIOStats()
			e.mat.ResetIOStats()
			hubIdx.ResetIOStats()
			e.db.BufferPool().ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, qp := range e.queries {
					qnode, _ := e.ps.NodeOf(qp)
					q := graphrnn.Query{
						Kind:      graphrnn.KindRNN,
						Target:    graphrnn.NodeLocation(qnode),
						K:         2,
						Points:    e.ps.Excluding(qp),
						Algorithm: a.algo,
					}
					if _, err := e.db.Run(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			reads := e.db.IOStats().Reads + e.mat.IOStats().Reads + hubIdx.IOStats().Reads
			b.ReportMetric(float64(reads)/float64(b.N), "io_reads/op")
			b.ReportMetric(float64(len(e.queries)), "queries/op")
			// All three substrates fault through one shared pool; its hit
			// rate is the unified cache-effectiveness number benchci
			// records next to io_reads/op.
			b.ReportMetric(e.db.PoolStats().HitRate(), "pool_hit_rate")
		})
	}
}

// BenchmarkCIShardedQueries is the scatter-gather workload the bench gate
// tracks next to BenchmarkCIQueries, against its own committed baseline
// (BENCH_SHARD.json): the identical fixed-seed query set — every placed
// point of the 20K-node road network queried once at k=2 — served through
// a 4-shard Sharded with per-shard hub-label substrates and the default
// 1-hop halo. One op = one full sweep, so -benchtime=1x is stable; the
// fan-out, candidate, verification and member counts per op are
// deterministic for the fixed seed and gate the coordinator's merge +
// verify overhead across machines the way io_reads/op gates the
// substrates.
func BenchmarkCIShardedQueries(b *testing.B) {
	g, err := graphrnn.GenerateRoadNetwork(2006, 20000)
	if err != nil {
		b.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(2007, g.NumNodes()/100)
	if err != nil {
		b.Fatal(err)
	}
	sh, err := db.Shard(ps, &graphrnn.ShardOptions{Shards: 4, Seed: 2006, HubLabelK: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer sh.Close()
	queries := ps.Points()
	before := sh.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qp := range queries {
			qnode, _ := ps.NodeOf(qp)
			q := graphrnn.Query{
				Kind:   graphrnn.KindRNN,
				Target: graphrnn.NodeLocation(qnode),
				K:      2,
			}
			if _, err := sh.Run(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	after := sh.Stats()
	n := float64(b.N)
	b.ReportMetric(float64(after.Queries-before.Queries)/n, "queries/op")
	b.ReportMetric(float64(after.FanOuts-before.FanOuts)/n, "fanout/op")
	b.ReportMetric(float64(after.Candidates-before.Candidates)/n, "candidates/op")
	b.ReportMetric(float64(after.VerifyRuns-before.VerifyRuns)/n, "verify_runs/op")
	b.ReportMetric(float64(after.Members-before.Members)/n, "members/op")
}

// BenchmarkBudgetedQueries measures the engine layer's overhead and
// payoff: the tracked eager workload under a per-query node budget (and a
// generous deadline), reporting how much of the unbounded work budgeted
// queries still perform. The unlimited sub-benchmark is the context-path
// overhead probe: identical work to BenchmarkCIQueries/eager, plus the
// per-step exec checks.
func BenchmarkBudgetedQueries(b *testing.B) {
	e := newMicroEnv(b)
	for _, bench := range []struct {
		name   string
		budget int64
	}{
		{"unlimited", 0},
		{"budget50k", 50000},
		{"budget5k", 5000},
	} {
		b.Run(bench.name, func(b *testing.B) {
			opt := &graphrnn.QueryOptions{
				Timeout: time.Minute,
				Budget:  graphrnn.Budget{MaxNodes: bench.budget},
			}
			e.db.ResetIOStats()
			var work, members int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, qp := range e.queries {
					qnode, _ := e.ps.NodeOf(qp)
					res, err := e.db.RNNContext(context.Background(), e.ps.Excluding(qp), qnode, 2, graphrnn.Eager(), opt)
					if err != nil && !graphrnn.IsExecErr(err) {
						b.Fatal(err)
					}
					if res != nil {
						work += res.Stats.NodesExpanded + res.Stats.NodesScanned
						members += int64(len(res.Points))
					}
				}
			}
			b.StopTimer()
			ops := float64(b.N) * float64(len(e.queries))
			b.ReportMetric(float64(work)/ops, "nodes/query")
			b.ReportMetric(float64(members)/ops, "members/query")
		})
	}
}

// One-off cost of the hub-label substrate: pruned-landmark labeling plus
// reverse-index build on the 20K-node road network.
func BenchmarkHubLabelBuild(b *testing.B) {
	g, err := graphrnn.GenerateRoadNetwork(2006, 20000)
	if err != nil {
		b.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(2007, g.NumNodes()/100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := db.BuildHubLabelIndex(ps, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		if idx.LabelEntries() == 0 {
			b.Fatal("empty labeling")
		}
	}
}

// BenchmarkHubLabelBuildParallel is the tracked counterpart of
// BenchmarkHubLabelBuild for the batched build: the same 20K-node road
// network constructed with every core and delta-compressed labels.
// BENCH_BUILD.json is the committed baseline; wall time gates the
// parallel speedup staying real, while the label byte and entry counters
// are machine-independent (the batched build is bit-identical to the
// sequential one, so the entry count can never drift without a gate
// failure).
func BenchmarkHubLabelBuildParallel(b *testing.B) {
	g, err := graphrnn.GenerateRoadNetwork(2006, 20000)
	if err != nil {
		b.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(2007, g.NumNodes()/100)
	if err != nil {
		b.Fatal(err)
	}
	opt := &graphrnn.HubLabelOptions{Build: graphrnn.BuildOptions{Workers: -1, Compression: true}}
	var idx *graphrnn.HubLabelIndex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx, err = db.BuildHubLabelIndex(ps, 4, opt); err != nil {
			b.Fatal(err)
		}
		if idx.LabelEntries() == 0 {
			b.Fatal("empty labeling")
		}
	}
	b.StopTimer()
	stored, raw := idx.LabelBytes()
	b.ReportMetric(float64(stored), "label_bytes/op")
	b.ReportMetric(float64(raw), "raw_label_bytes/op")
	b.ReportMetric(float64(idx.LabelEntries()), "label_entries/op")
}

// BenchmarkHubLabelBuild100K is the nightly build smoke: a 100K-node road
// network through the parallel compressed path. Not part of the per-PR
// gate (minutes, not milliseconds); the nightly workflow runs it at
// -benchtime=1x to catch scaling regressions and allocator blowups that a
// 20K graph hides.
func BenchmarkHubLabelBuild100K(b *testing.B) {
	g, err := graphrnn.GenerateRoadNetwork(2016, 100000)
	if err != nil {
		b.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(2017, g.NumNodes()/100)
	if err != nil {
		b.Fatal(err)
	}
	opt := &graphrnn.HubLabelOptions{Build: graphrnn.BuildOptions{Workers: -1, Compression: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := db.BuildHubLabelIndex(ps, 4, opt)
		if err != nil {
			b.Fatal(err)
		}
		if idx.LabelEntries() == 0 {
			b.Fatal("empty labeling")
		}
	}
}

// Parallel variants: identical workload fanned out over GOMAXPROCS
// goroutines with b.RunParallel, tracking throughput scaling of the
// concurrent query path. Memory-backed so the numbers isolate CPU-side
// contention (scratch pool, stats) from buffer-manager locking.
func benchQueriesParallel(b *testing.B, k int, algo graphrnn.Algorithm) {
	g, err := graphrnn.GenerateRoadNetwork(2006, 20000)
	if err != nil {
		b.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(2007, g.NumNodes()/100)
	if err != nil {
		b.Fatal(err)
	}
	queries := ps.Points()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			qp := queries[i%len(queries)]
			i++
			qnode, _ := ps.NodeOf(qp)
			if _, err := db.RNN(ps.Excluding(qp), qnode, k, algo); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkQueryParallelEagerK1(b *testing.B) { benchQueriesParallel(b, 1, graphrnn.Eager()) }
func BenchmarkQueryParallelEagerK4(b *testing.B) { benchQueriesParallel(b, 4, graphrnn.Eager()) }
func BenchmarkQueryParallelLazyK1(b *testing.B)  { benchQueriesParallel(b, 1, graphrnn.Lazy()) }
func BenchmarkQueryParallelLazyK4(b *testing.B)  { benchQueriesParallel(b, 4, graphrnn.Lazy()) }

// Batch fan-out against single-goroutine serial execution of the same
// query slice: the acceptance benchmark for >1 query in flight.
func BenchmarkRNNBatch(b *testing.B) {
	g, err := graphrnn.GenerateRoadNetwork(2006, 20000)
	if err != nil {
		b.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(2007, g.NumNodes()/100)
	if err != nil {
		b.Fatal(err)
	}
	var queries []graphrnn.RNNQuery
	for _, qp := range ps.Points()[:64] {
		qnode, _ := ps.NodeOf(qp)
		queries = append(queries, graphrnn.RNNQuery{Q: qnode, K: 2, Algo: graphrnn.Eager()})
	}
	for _, par := range []int{1, 4, 0} {
		name := "serial"
		switch par {
		case 4:
			name = "parallel4"
		case 0:
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			opt := &graphrnn.BatchOptions{Parallelism: par}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, _ := db.RNNBatch(ps, queries, opt)
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// All-NN materialization build (Fig 8) on a 20K-node road network.
func BenchmarkMaterializeBuild(b *testing.B) {
	g, err := graphrnn.GenerateRoadNetwork(2006, 20000)
	if err != nil {
		b.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(2007, g.NumNodes()/100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.MaterializeNodePoints(ps, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the connectivity-clustering page layout (BFS order, the
// paper's Chan & Zhang-style grouping) against a random layout, measured
// as buffer faults of an identical eager workload. DESIGN.md S2 calls this
// design choice out; the BFS layout should fault substantially less.
func BenchmarkLayoutAblation(b *testing.B) {
	for _, layout := range []string{"bfs", "random"} {
		b.Run(layout, func(b *testing.B) {
			g, err := graphrnn.GenerateRoadNetwork(2006, 20000)
			if err != nil {
				b.Fatal(err)
			}
			var db *graphrnn.DB
			if layout == "bfs" {
				db, err = graphrnn.Open(g, &graphrnn.Options{DiskBacked: true, BufferPages: 16})
			} else {
				db, err = graphrnn.OpenWithLayout(g, &graphrnn.Options{DiskBacked: true, BufferPages: 16}, graphrnn.RandomLayout(7))
			}
			if err != nil {
				b.Fatal(err)
			}
			ps, err := db.PlaceRandomNodePoints(2007, g.NumNodes()/100)
			if err != nil {
				b.Fatal(err)
			}
			queries := ps.Points()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qp := queries[i%len(queries)]
				qnode, _ := ps.NodeOf(qp)
				if _, err := db.RNN(ps.Excluding(qp), qnode, 1, graphrnn.Eager()); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			io := db.IOStats()
			b.ReportMetric(float64(io.Reads)/float64(b.N), "faults/query")
		})
	}
}

// BenchmarkCIMaintenance is the maintenance workload the bench gate
// (cmd/benchci) tracks next to the query sweep: journaled insert+delete
// round trips (Figs 10-11 plus the repair journal) on the in-memory
// default and on a persisted, write-ahead-journaled materialization. One
// op = 64 round trips over a fixed free-node cycle, so -benchtime=1x
// averages out scheduler noise the way BenchmarkCIQueries does; the
// list_reads/op and list_writes/op metrics are deterministic for the
// fixed seed and gate journal overhead across machines.
func BenchmarkCIMaintenance(b *testing.B) {
	for _, mode := range []string{"memory", "persisted"} {
		b.Run(mode, func(b *testing.B) {
			e := newMicroEnv(b)
			mat, ps := e.mat, e.ps
			if mode == "persisted" {
				path := filepath.Join(b.TempDir(), "lists.mat")
				if err := e.mat.SaveTo(path); err != nil {
					b.Fatal(err)
				}
				var err error
				mat, err = e.db.OpenMaterialization(path, nil)
				if err != nil {
					b.Fatal(err)
				}
				defer mat.Close()
				ps = mat.NodePoints()
			}
			g := e.db.Graph()
			var free []graphrnn.NodeID
			for n := 0; n < g.NumNodes() && len(free) < 64; n++ {
				if _, taken := ps.PointAt(graphrnn.NodeID(n)); !taken {
					free = append(free, graphrnn.NodeID(n))
				}
			}
			mat.ResetIOStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, n := range free {
					p, _, err := mat.InsertNode(n)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := mat.DeletePoint(p); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			io := mat.IOStats()
			b.ReportMetric(float64(io.Reads+io.Hits)/float64(b.N), "list_reads/op")
			b.ReportMetric(float64(io.Writes)/float64(b.N), "list_writes/op")
			b.ReportMetric(float64(len(free)*2), "maintenance_ops/op")
		})
	}
}

// Insertion + deletion maintenance round-trip (Figs 10-11).
func BenchmarkMaterializeUpdate(b *testing.B) {
	e := newMicroEnv(b)
	g := e.db.Graph()
	// Find free nodes to cycle through.
	var free []graphrnn.NodeID
	for n := 0; n < g.NumNodes() && len(free) < 64; n++ {
		if _, taken := e.ps.PointAt(graphrnn.NodeID(n)); !taken {
			free = append(free, graphrnn.NodeID(n))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := free[i%len(free)]
		p, _, err := e.mat.InsertNode(n)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.mat.DeletePoint(p); err != nil {
			b.Fatal(err)
		}
	}
}
