package graphrnn_test

// Execution-model coverage: cancellation, deadlines and budgets threaded
// through every algorithm (run with -race), upfront deadline checks doing
// no I/O, partial results, the shared buffer pool with per-tenant quotas,
// batch fail-fast/cancellation, and the regression test for hub-label
// stats surviving to the public API.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"graphrnn"
)

type ctxEnv struct {
	db  *graphrnn.DB
	ps  *graphrnn.NodePoints
	mat *graphrnn.Materialization
}

// newCtxEnv builds a workload slow enough that a millisecond-scale
// deadline reliably lands mid-expansion: a 6400-node grid with few points,
// so every algorithm expands large regions per query.
func newCtxEnv(t *testing.T, diskBacked bool) *ctxEnv {
	t.Helper()
	g, err := graphrnn.GenerateGrid(7, 6400, 4)
	if err != nil {
		t.Fatal(err)
	}
	var opt *graphrnn.Options
	if diskBacked {
		opt = &graphrnn.Options{DiskBacked: true, BufferPages: 16}
	}
	db, err := graphrnn.Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(8, 24)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &ctxEnv{db: db, ps: ps, mat: mat}
}

func (e *ctxEnv) algos() map[string]graphrnn.Algorithm {
	return map[string]graphrnn.Algorithm{
		"eager":   graphrnn.Eager(),
		"lazy":    graphrnn.Lazy(),
		"lazy-ep": graphrnn.LazyEP(),
		"eager-m": graphrnn.EagerM(e.mat),
		"brute":   graphrnn.BruteForce(),
	}
}

func (e *ctxEnv) slowQuery(t *testing.T) (graphrnn.NodePointsView, graphrnn.NodeID) {
	t.Helper()
	qp := e.ps.Points()[0]
	qnode, _ := e.ps.NodeOf(qp)
	return e.ps.Excluding(qp), qnode
}

// TestDeadlineMidExpansion: a deadline far shorter than the query lands
// mid-flight on each of the five algorithms; the query must return a typed
// ErrDeadlineExceeded promptly, with partial stats proving it both started
// and stopped early.
func TestDeadlineMidExpansion(t *testing.T) {
	e := newCtxEnv(t, false)
	view, qnode := e.slowQuery(t)
	for name, algo := range e.algos() {
		t.Run(name, func(t *testing.T) {
			// Baseline: the full query finishes and does real work.
			full, err := e.db.RNN(view, qnode, 4, algo)
			if err != nil {
				t.Fatal(err)
			}
			fullWork := full.Stats.NodesExpanded + full.Stats.NodesScanned
			if fullWork < 1000 {
				t.Fatalf("workload too small to interrupt: %d nodes", fullWork)
			}
			start := time.Now()
			res, err := e.db.RNNContext(context.Background(), view, qnode, 4, algo,
				&graphrnn.QueryOptions{Timeout: time.Millisecond})
			elapsed := time.Since(start)
			if err == nil {
				t.Skip("query finished inside 1ms on this machine; nothing to interrupt")
			}
			if !errors.Is(err, graphrnn.ErrDeadlineExceeded) {
				t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
			}
			if !graphrnn.IsExecErr(err) {
				t.Fatalf("IsExecErr(%v) = false", err)
			}
			if res == nil {
				t.Fatal("no partial result alongside the exec error")
			}
			work := res.Stats.NodesExpanded + res.Stats.NodesScanned
			if work == 0 {
				t.Fatal("partial stats empty: deadline did not land mid-flight")
			}
			if work >= fullWork {
				t.Fatalf("interrupted query did all the work: %d >= %d", work, fullWork)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("abandoning the query took %v", elapsed)
			}
		})
	}
}

// TestCancelMidExpansion cancels the context from another goroutine while
// each algorithm runs, asserting prompt return with ErrCanceled and no
// goroutine leak. Run with -race, this also exercises the pooled scratch
// under early returns.
func TestCancelMidExpansion(t *testing.T) {
	e := newCtxEnv(t, false)
	view, qnode := e.slowQuery(t)
	before := runtime.NumGoroutine()
	for name, algo := range e.algos() {
		t.Run(name, func(t *testing.T) {
			canceled := false
			for attempt := 0; attempt < 20 && !canceled; attempt++ {
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(500 * time.Microsecond)
					cancel()
				}()
				res, err := e.db.RNNContext(ctx, view, qnode, 4, algo, nil)
				cancel()
				if err == nil {
					continue // finished before the cancel landed; retry
				}
				if !errors.Is(err, graphrnn.ErrCanceled) {
					t.Fatalf("err = %v, want ErrCanceled", err)
				}
				if res == nil {
					t.Fatal("no partial result alongside ErrCanceled")
				}
				canceled = true
			}
			if !canceled {
				t.Skip("query always finished before the cancel on this machine")
			}
			// The pooled scratch must be intact: the same query still
			// answers correctly after the aborted runs.
			want, err := e.db.RNN(view, qnode, 4, graphrnn.BruteForce())
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.db.RNN(view, qnode, 4, algo)
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(got.Points, want.Points) {
				t.Fatalf("after cancellations: got %v, want %v", got.Points, want.Points)
			}
		})
	}
	// Cancellation must not leave worker goroutines behind.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestExpiredDeadlineNoIO: a query issued with an already-expired deadline
// fails upfront and performs no page I/O at all.
func TestExpiredDeadlineNoIO(t *testing.T) {
	e := newCtxEnv(t, true)
	view, qnode := e.slowQuery(t)
	e.db.BufferPool().ResetStats()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, algo := range e.algos() {
		res, err := e.db.RNNContext(ctx, view, qnode, 2, algo, nil)
		if !errors.Is(err, graphrnn.ErrDeadlineExceeded) {
			t.Fatalf("%s: err = %v, want ErrDeadlineExceeded", name, err)
		}
		if res != nil {
			t.Fatalf("%s: result for an unstarted query", name)
		}
	}
	// Hub-label lookups honor the expired deadline too.
	idx, err := e.db.BuildHubLabelIndex(e.ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.db.BufferPool().ResetStats()
	if _, err := e.db.RNNContext(ctx, view, qnode, 2, graphrnn.HubLabel(idx), nil); !errors.Is(err, graphrnn.ErrDeadlineExceeded) {
		t.Fatalf("hub-label: err = %v, want ErrDeadlineExceeded", err)
	}
	if st := e.db.PoolStats(); st.Reads != 0 || st.Hits != 0 {
		t.Fatalf("expired-deadline queries touched pages: %+v", st.IOStats)
	}
}

// TestBudgetExceeded: MaxNodes stops a query within one polling stride of
// the budget; MaxIOReads stops a disk-backed query.
func TestBudgetExceeded(t *testing.T) {
	e := newCtxEnv(t, false)
	view, qnode := e.slowQuery(t)
	for name, algo := range e.algos() {
		t.Run(name, func(t *testing.T) {
			const budget = 500
			res, err := e.db.RNNContext(context.Background(), view, qnode, 4, algo,
				&graphrnn.QueryOptions{Budget: graphrnn.Budget{MaxNodes: budget}})
			if !errors.Is(err, graphrnn.ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
			if res == nil {
				t.Fatal("no partial result alongside ErrBudgetExceeded")
			}
			work := res.Stats.NodesExpanded + res.Stats.NodesScanned
			if work <= budget/2 || work > budget+256 {
				t.Fatalf("stopped at %d nodes, budget %d", work, budget)
			}
		})
	}
	t.Run("io", func(t *testing.T) {
		disk := newCtxEnv(t, true)
		dview, dq := disk.slowQuery(t)
		if err := disk.db.DropCache(); err != nil {
			t.Fatal(err)
		}
		res, err := disk.db.RNNContext(context.Background(), dview, dq, 4, graphrnn.Eager(),
			&graphrnn.QueryOptions{Budget: graphrnn.Budget{MaxIOReads: 4}})
		if !errors.Is(err, graphrnn.ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
		if res == nil {
			t.Fatal("no partial result alongside ErrBudgetExceeded")
		}
	})
}

// TestHubLabelStatsAtPublicAPI is the regression test for wrapResult
// dropping LabelReads/LabelEntries: a hub-label query through the public
// API must report nonzero label counters.
func TestHubLabelStatsAtPublicAPI(t *testing.T) {
	e := newCtxEnv(t, false)
	idx, err := e.db.BuildHubLabelIndex(e.ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	view, qnode := e.slowQuery(t)
	res, err := e.db.RNN(view, qnode, 2, graphrnn.HubLabel(idx))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LabelReads == 0 {
		t.Fatal("hub-label query reports zero LabelReads at the public API")
	}
	if res.Stats.LabelEntries == 0 {
		t.Fatal("hub-label query reports zero LabelEntries at the public API")
	}
	// The Context variant carries them too.
	res, err = e.db.RNNContext(context.Background(), view, qnode, 2, graphrnn.HubLabel(idx),
		&graphrnn.QueryOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LabelReads == 0 || res.Stats.LabelEntries == 0 {
		t.Fatalf("context hub-label query dropped label counters: %+v", res.Stats)
	}
}

// TestSharedBufferPool: graph pages, materialized lists and hub-label
// pages demonstrably share one pool — one stats source whose aggregate is
// the per-tenant sum — and a tenant quota is enforced.
func TestSharedBufferPool(t *testing.T) {
	g, err := graphrnn.GenerateGrid(7, 2500, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true, BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(8, 50)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 4, &graphrnn.MatOptions{BufferPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildHubLabelIndex(ps, 2, &graphrnn.HubLabelOptions{DiskBacked: true, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, qp := range ps.Points()[:10] {
		qnode, _ := ps.NodeOf(qp)
		view := ps.Excluding(qp)
		for _, algo := range []graphrnn.Algorithm{graphrnn.Eager(), graphrnn.EagerM(mat), graphrnn.HubLabel(idx)} {
			if _, err := db.RNN(view, qnode, 2, algo); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := db.PoolStats()
	names := map[string]graphrnn.TenantIOStats{}
	var sum graphrnn.IOStats
	for _, ten := range st.Tenants {
		names[ten.Name] = ten
		sum.Reads += ten.Reads
		sum.Hits += ten.Hits
		sum.Writes += ten.Writes
		sum.Evictions += ten.Evictions
	}
	for _, want := range []string{"graph", "mat", "hublabel"} {
		ten, ok := names[want]
		if !ok {
			t.Fatalf("tenant %q missing from pool (have %v)", want, st.Tenants)
		}
		if ten.Reads+ten.Hits == 0 {
			t.Fatalf("tenant %q saw no traffic", want)
		}
	}
	if st.IOStats != sum {
		t.Fatalf("pool aggregate %+v != tenant sum %+v", st.IOStats, sum)
	}
	// The mat tenant's quota of 2 frames is enforced under load.
	if f := names["mat"].Frames; f > 2 {
		t.Fatalf("mat tenant holds %d frames, quota 2", f)
	}
	if q := names["mat"].Quota; q != 2 {
		t.Fatalf("mat quota = %d, want 2", q)
	}
	// Substrate-level stats remain the same tenant counters (single
	// source): the DB's adjacency view equals the graph tenant.
	if got := db.IOStats(); got != names["graph"].IOStats {
		t.Fatalf("db.IOStats() %+v != graph tenant %+v", got, names["graph"].IOStats)
	}
	// A paged edge-point snapshot attaches as its own tenant and Close
	// detaches it again (no tenant leak across repeated snapshots).
	hasTenant := func(name string) bool {
		for _, ten := range db.PoolStats().Tenants {
			if ten.Name == name {
				return true
			}
		}
		return false
	}
	pep, err := db.NewEdgePoints().Paged(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !hasTenant("edgepoints") {
		t.Fatal("edgepoints tenant missing after Paged")
	}
	if err := pep.Close(); err != nil {
		t.Fatal(err)
	}
	if hasTenant("edgepoints") {
		t.Fatal("edgepoints tenant still attached after Close")
	}
	if err := pep.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestBatchCancellationAndWorkers covers the batch layer's engine
// semantics: reported worker counts, fail-fast, and batch-level
// cancellation marking undispatched entries instead of running them.
func TestBatchCancellationAndWorkers(t *testing.T) {
	e := newCtxEnv(t, false)
	qp := e.ps.Points()[0]
	qnode, _ := e.ps.NodeOf(qp)

	// Worker count is capped by the batch size.
	queries := []graphrnn.RNNQuery{
		{Q: qnode, K: 1, Algo: graphrnn.Eager()},
		{Q: qnode, K: 2, Algo: graphrnn.Eager()},
	}
	if _, workers := e.db.RNNBatch(e.ps, queries, &graphrnn.BatchOptions{Parallelism: 8}); workers != 2 {
		t.Fatalf("workers = %d, want 2 (capped by batch size)", workers)
	}

	// Fail-fast: an invalid entry cancels everything behind it.
	ff := []graphrnn.RNNQuery{
		{Q: qnode, K: 1, Algo: graphrnn.Eager()},
		{Q: qnode, K: -1, Algo: graphrnn.Eager()}, // invalid: fails
		{Q: qnode, K: 1, Algo: graphrnn.Eager()},
		{Q: qnode, K: 2, Algo: graphrnn.Eager()},
	}
	results, workers := e.db.RNNBatch(e.ps, ff, &graphrnn.BatchOptions{Parallelism: 1, FailFast: true})
	if workers != 1 {
		t.Fatalf("workers = %d, want 1", workers)
	}
	if results[0].Err != nil {
		t.Fatalf("entry 0: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid entry did not fail")
	}
	canceled := 0
	for _, r := range results[2:] {
		if errors.Is(r.Err, graphrnn.ErrCanceled) {
			canceled++
		}
	}
	if canceled != 2 {
		t.Fatalf("fail-fast canceled %d of 2 queued entries: %+v", canceled, results)
	}

	// A batch issued under a canceled context runs nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, _ = e.db.RNNBatchContext(ctx, e.ps, queries, &graphrnn.BatchOptions{Parallelism: 2})
	for i, r := range results {
		if !errors.Is(r.Err, graphrnn.ErrCanceled) {
			t.Fatalf("entry %d of a canceled batch: err = %v", i, r.Err)
		}
	}

	// Per-query budgets apply to every entry.
	results, _ = e.db.RNNBatch(e.ps, []graphrnn.RNNQuery{{Q: qnode, K: 4, Algo: graphrnn.Eager()}},
		&graphrnn.BatchOptions{PerQuery: &graphrnn.QueryOptions{Budget: graphrnn.Budget{MaxNodes: 100}}})
	if !errors.Is(results[0].Err, graphrnn.ErrBudgetExceeded) {
		t.Fatalf("per-query budget: err = %v", results[0].Err)
	}
}

// TestKNNContext: the forward search honors deadlines and budgets too.
func TestKNNContext(t *testing.T) {
	e := newCtxEnv(t, false)
	_, qnode := e.slowQuery(t)
	if _, err := e.db.KNNContext(context.Background(), e.ps, qnode, 4, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.db.KNNContext(ctx, e.ps, qnode, 4, nil); !errors.Is(err, graphrnn.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	_, err := e.db.KNNContext(context.Background(), e.ps, qnode, 24,
		&graphrnn.QueryOptions{Budget: graphrnn.Budget{MaxNodes: 64}})
	if !errors.Is(err, graphrnn.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestEdgeContextVariants smoke-tests the unrestricted Context entry
// points: budget errors surface and unbounded calls still match RNN.
func TestEdgeContextVariants(t *testing.T) {
	g, err := graphrnn.GenerateGrid(9, 2500, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomEdgePoints(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	q := graphrnn.NodeLocation(0)
	want, err := db.EdgeRNN(ps, q, 2, graphrnn.Eager())
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.EdgeRNNContext(context.Background(), ps, q, 2, graphrnn.Eager(),
		&graphrnn.QueryOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(got.Points, want.Points) {
		t.Fatalf("EdgeRNNContext %v != EdgeRNN %v", got.Points, want.Points)
	}
	res, err := db.EdgeRNNContext(context.Background(), ps, q, 4, graphrnn.Lazy(),
		&graphrnn.QueryOptions{Budget: graphrnn.Budget{MaxNodes: 50}})
	if !errors.Is(err, graphrnn.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
}
