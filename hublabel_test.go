package graphrnn_test

// Public-surface coverage for the hub-label substrate: property tests
// against the brute-force oracle on every generated topology, persistence
// round-trips (build → save → close → reopen → identical answers),
// incremental maintenance, and concurrent batch queries (run with -race).

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"graphrnn"
)

type hubEnv struct {
	db  *graphrnn.DB
	ps  *graphrnn.NodePoints
	idx *graphrnn.HubLabelIndex
}

func newHubEnv(t *testing.T, g *graphrnn.Graph, seed int64, count, maxK int, opt *graphrnn.HubLabelOptions) *hubEnv {
	t.Helper()
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(seed, count)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildHubLabelIndex(ps, maxK, opt)
	if err != nil {
		t.Fatal(err)
	}
	return &hubEnv{db: db, ps: ps, idx: idx}
}

func hubTopologies(t *testing.T) map[string]*graphrnn.Graph {
	t.Helper()
	road, err := graphrnn.GenerateRoadNetwork(101, 600)
	if err != nil {
		t.Fatal(err)
	}
	brite, err := graphrnn.GenerateBrite(102, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := graphrnn.GenerateGrid(103, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graphrnn.Graph{"road": road, "brite": brite, "grid": grid}
}

// TestHubLabelAgainstOracle checks RNN answers through the public API
// against brute force on road, brite and grid topologies, memory- and
// disk-served labels alike.
func TestHubLabelAgainstOracle(t *testing.T) {
	for name, g := range hubTopologies(t) {
		for _, backend := range []string{"memory", "paged"} {
			t.Run(name+"/"+backend, func(t *testing.T) {
				var opt *graphrnn.HubLabelOptions
				if backend == "paged" {
					opt = &graphrnn.HubLabelOptions{DiskBacked: true, BufferPages: 8}
				}
				e := newHubEnv(t, g, 104, g.NumNodes()/10, 4, opt)
				algo := graphrnn.HubLabel(e.idx)
				for _, qp := range e.ps.Points()[:12] {
					qnode, _ := e.ps.NodeOf(qp)
					view := e.ps.Excluding(qp)
					for _, k := range []int{1, 2, 4} {
						want, err := e.db.RNN(view, qnode, k, graphrnn.BruteForce())
						if err != nil {
							t.Fatal(err)
						}
						got, err := e.db.RNN(view, qnode, k, algo)
						if err != nil {
							t.Fatal(err)
						}
						if !samePoints(got.Points, want.Points) {
							t.Fatalf("q=%d k=%d: got %v, want %v", qp, k, got.Points, want.Points)
						}
					}
				}
				if backend == "paged" && e.idx.IOStats().Reads == 0 {
					t.Fatal("paged index reported no label reads")
				}
			})
		}
	}
}

// TestHubLabelContinuousAndBichromatic covers the route and bichromatic
// entry points through the public dispatch.
func TestHubLabelContinuousAndBichromatic(t *testing.T) {
	g, err := graphrnn.GenerateRoadNetwork(111, 500)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(112, 50)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildHubLabelIndex(ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	algo := graphrnn.HubLabel(idx)
	for trial := 0; trial < 8; trial++ {
		route := db.RandomWalkRoute(int64(200+trial), 5)
		want, err := db.ContinuousRNN(ps, route, 2, graphrnn.BruteForce())
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.ContinuousRNN(ps, route, 2, algo)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(got.Points, want.Points) {
			t.Fatalf("route %v: got %v, want %v", route, got.Points, want.Points)
		}
	}
	// Bichromatic: the index tracks the sites; k may exceed MaxK.
	cands, err := db.PlaceRandomNodePoints(113, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []graphrnn.NodeID{0, 17, 123, 321} {
		for _, k := range []int{1, 3} {
			want, err := db.BichromaticRNN(cands, ps, q, k, graphrnn.BruteForce())
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.BichromaticRNN(cands, ps, q, k, algo)
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(got.Points, want.Points) {
				t.Fatalf("q=%d k=%d: got %v, want %v", q, k, got.Points, want.Points)
			}
		}
	}
}

// TestHubLabelPersistence saves a labeling, reopens it from disk, and
// checks that the reopened index answers every query identically.
func TestHubLabelPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.hub")
	g, err := graphrnn.GenerateGrid(121, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(122, 40)
	if err != nil {
		t.Fatal(err)
	}
	// A non-default page size must round-trip: the header records it and
	// OpenHubLabelIndex discovers it without the original options.
	built, err := db.BuildHubLabelIndex(ps, 3, &graphrnn.HubLabelOptions{Path: path, PageSize: 1024, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	type answer struct {
		q graphrnn.NodeID
		k int
		r []graphrnn.PointID
	}
	var answers []answer
	for q := 0; q < g.NumNodes(); q += 37 {
		for _, k := range []int{1, 3} {
			res, err := db.RNN(ps, graphrnn.NodeID(q), k, graphrnn.HubLabel(built))
			if err != nil {
				t.Fatal(err)
			}
			answers = append(answers, answer{graphrnn.NodeID(q), k, res.Points})
		}
	}
	if err := built.Close(); err != nil {
		t.Fatal(err)
	}

	// A "restarted process": a fresh DB over the same graph reopens the
	// label file instead of rebuilding.
	db2, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := db2.PlaceRandomNodePoints(122, 40)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := db2.OpenHubLabelIndex(ps2, 3, path, &graphrnn.HubLabelOptions{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.LabelEntries() == 0 || reopened.AverageLabelSize() <= 0 {
		t.Fatalf("reopened index reports %d entries", reopened.LabelEntries())
	}
	for _, a := range answers {
		res, err := db2.RNN(ps2, a.q, a.k, graphrnn.HubLabel(reopened))
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(res.Points, a.r) {
			t.Fatalf("q=%d k=%d after reopen: got %v, want %v", a.q, a.k, res.Points, a.r)
		}
	}

	// SaveTo from a memory-built index round-trips the same way.
	mem, err := db.BuildHubLabelIndex(ps, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, "labels2.hub")
	if err := mem.SaveTo(path2); err != nil {
		t.Fatal(err)
	}
	again, err := db.OpenHubLabelIndex(ps, 3, path2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	for _, a := range answers[:6] {
		res, err := db.RNN(ps, a.q, a.k, graphrnn.HubLabel(again))
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(res.Points, a.r) {
			t.Fatalf("q=%d k=%d after SaveTo round trip: got %v, want %v", a.q, a.k, res.Points, a.r)
		}
	}
	if err := again.SaveTo(path2); err == nil {
		t.Fatal("SaveTo on a reopened index must refuse")
	}
}

// TestHubLabelMaintenance mutates the tracked set through the index and
// checks answers stay oracle-identical.
func TestHubLabelMaintenance(t *testing.T) {
	g, err := graphrnn.GenerateBrite(131, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(132, 30)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildHubLabelIndex(ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	algo := graphrnn.HubLabel(idx)
	check := func(step string) {
		t.Helper()
		for q := 0; q < g.NumNodes(); q += 53 {
			want, err := db.RNN(ps, graphrnn.NodeID(q), 2, graphrnn.BruteForce())
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.RNN(ps, graphrnn.NodeID(q), 2, algo)
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(got.Points, want.Points) {
				t.Fatalf("%s q=%d: got %v, want %v", step, q, got.Points, want.Points)
			}
		}
	}
	check("initial")
	// Insert on free nodes, delete a few points, re-check each time.
	var inserted []graphrnn.PointID
	for n := 0; len(inserted) < 5 && n < g.NumNodes(); n++ {
		if _, taken := ps.PointAt(graphrnn.NodeID(n)); taken {
			continue
		}
		p, _, err := idx.InsertNode(graphrnn.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, p)
		check(fmt.Sprintf("insert %d", p))
	}
	for _, p := range inserted[:3] {
		if _, err := idx.DeletePoint(p); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("delete %d", p))
	}
}

// TestHubLabelInsertAfterTrailingDelete builds the index over a point set
// whose highest id has been deleted — the index's id space is then shorter
// than the set's — and checks that InsertNode still keeps the two in sync.
func TestHubLabelInsertAfterTrailingDelete(t *testing.T) {
	g, err := graphrnn.GenerateGrid(161, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := db.NewNodePoints()
	for n := 0; n < 10; n++ {
		if _, err := ps.Place(graphrnn.NodeID(n * 7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Delete(9); err != nil { // highest id leaves a trailing gap
		t.Fatal(err)
	}
	idx, err := db.BuildHubLabelIndex(ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := idx.InsertNode(99) // NodeSet assigns id 10, beyond the gap
	if err != nil {
		t.Fatal(err)
	}
	if p != 10 {
		t.Fatalf("inserted point id = %d, want 10", p)
	}
	for q := 0; q < g.NumNodes(); q += 13 {
		want, err := db.RNN(ps, graphrnn.NodeID(q), 2, graphrnn.BruteForce())
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.RNN(ps, graphrnn.NodeID(q), 2, graphrnn.HubLabel(idx))
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(got.Points, want.Points) {
			t.Fatalf("q=%d: got %v, want %v", q, got.Points, want.Points)
		}
	}
}

// TestHubLabelBatchConcurrent fans batch queries through the hub-label
// algorithm from many goroutines (the -race target for the new substrate).
func TestHubLabelBatchConcurrent(t *testing.T) {
	g, err := graphrnn.GenerateGrid(141, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(142, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Paged labels with a tiny buffer keep the label buffer churning under
	// concurrent faults.
	idx, err := db.BuildHubLabelIndex(ps, 4, &graphrnn.HubLabelOptions{DiskBacked: true, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	algo := graphrnn.AlgorithmHubLabel(idx)
	var queries []graphrnn.RNNQuery
	var want [][]graphrnn.PointID
	for _, qp := range ps.Points() {
		qnode, _ := ps.NodeOf(qp)
		res, err := db.RNN(ps, qnode, 2, graphrnn.BruteForce())
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, graphrnn.RNNQuery{Q: qnode, K: 2, Algo: algo})
		want = append(want, res.Points)
	}
	for _, par := range []int{1, 4, 16} {
		results, _ := db.RNNBatch(ps, queries, &graphrnn.BatchOptions{Parallelism: par})
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("parallelism %d query %d: %v", par, i, r.Err)
			}
			if !samePoints(r.Result.Points, want[i]) {
				t.Fatalf("parallelism %d query %d: got %v, want %v", par, i, r.Result.Points, want[i])
			}
		}
	}
	// Raw goroutine fan-out over single queries, mixing hidden-point views.
	var wg sync.WaitGroup
	errc := make(chan error, len(ps.Points()))
	for _, qp := range ps.Points() {
		wg.Add(1)
		go func(qp graphrnn.PointID) {
			defer wg.Done()
			qnode, _ := ps.NodeOf(qp)
			res, err := db.RNN(ps.Excluding(qp), qnode, 4, algo)
			if err != nil {
				errc <- err
				return
			}
			wantRes, err := db.RNN(ps.Excluding(qp), qnode, 4, graphrnn.BruteForce())
			if err != nil {
				errc <- err
				return
			}
			if !samePoints(res.Points, wantRes.Points) {
				errc <- fmt.Errorf("q=%d: got %v, want %v", qp, res.Points, wantRes.Points)
			}
		}(qp)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestHubLabelErrors covers the public validation paths.
func TestHubLabelErrors(t *testing.T) {
	g, err := graphrnn.GenerateGrid(151, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(152, 10)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildHubLabelIndex(ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RNN(ps, 0, 1, graphrnn.HubLabel(nil)); err == nil {
		t.Fatal("nil index accepted")
	}
	if _, err := db.RNN(ps, 0, 3, graphrnn.HubLabel(idx)); err == nil {
		t.Fatal("k beyond MaxK accepted")
	}
	// A view over a different point set must be rejected — both when the
	// sizes differ and when a same-size set merely places points elsewhere.
	other, err := db.PlaceRandomNodePoints(153, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RNN(other, 0, 1, graphrnn.HubLabel(idx)); err == nil {
		t.Fatal("foreign point set accepted")
	}
	sameSize, err := db.PlaceRandomNodePoints(155, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RNN(sameSize, 0, 1, graphrnn.HubLabel(idx)); err == nil {
		t.Fatal("same-size foreign point set accepted")
	}
	// Edge-resident queries are not supported by this substrate.
	eps, err := db.PlaceRandomEdgePoints(154, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.EdgeRNN(eps, graphrnn.NodeLocation(0), 1, graphrnn.HubLabel(idx)); err == nil {
		t.Fatal("edge-resident query accepted")
	}
}

// TestHubLabelParallelCompressed builds the index through the public API
// with every core and delta-compressed labels, and checks the result is
// indistinguishable from the default build: same label entries, same RNN
// answers — while the build stats report the parallel batched schedule and
// the stored payload shrinks below the raw fixed-width bytes.
func TestHubLabelParallelCompressed(t *testing.T) {
	for name, g := range hubTopologies(t) {
		t.Run(name, func(t *testing.T) {
			base := newHubEnv(t, g, 104, g.NumNodes()/10, 4, nil)
			opt := &graphrnn.HubLabelOptions{Build: graphrnn.BuildOptions{Workers: -1, Compression: true}}
			e := newHubEnv(t, g, 104, g.NumNodes()/10, 4, opt)

			bst := e.idx.BuildStats()
			if bst.Workers < 1 || bst.Landmarks != g.NumNodes() || bst.Visits == 0 || bst.WallSeconds <= 0 {
				t.Fatalf("implausible build stats: %+v", bst)
			}
			if bst.Workers > 1 && bst.Batches == 0 {
				t.Fatalf("parallel build reports no batches: %+v", bst)
			}
			if !e.idx.Compressed() {
				t.Fatal("index does not report compressed labels")
			}
			stored, raw := e.idx.LabelBytes()
			if stored <= 0 || stored >= raw {
				t.Fatalf("stored %d bytes did not shrink below raw %d", stored, raw)
			}
			if e.idx.LabelEntries() != base.idx.LabelEntries() {
				t.Fatalf("label entries diverge: %d vs %d (sequential)", e.idx.LabelEntries(), base.idx.LabelEntries())
			}

			algo := graphrnn.HubLabel(e.idx)
			ref := graphrnn.HubLabel(base.idx)
			for _, qp := range e.ps.Points()[:12] {
				qnode, _ := e.ps.NodeOf(qp)
				view := e.ps.Excluding(qp)
				for _, k := range []int{1, 2, 4} {
					want, err := base.db.RNN(base.ps.Excluding(qp), qnode, k, ref)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.db.RNN(view, qnode, k, algo)
					if err != nil {
						t.Fatal(err)
					}
					if !samePoints(got.Points, want.Points) {
						t.Fatalf("q=%d k=%d: got %v, want %v", qp, k, got.Points, want.Points)
					}
				}
			}
		})
	}
}

// TestHubLabelRepairVsRebuild drives the substrate-crossing maintenance
// path: the point set mutates through the materialized index, the hub
// index repairs in place with RepairInsert/RepairDelete, and afterwards it
// must answer exactly like an index rebuilt from scratch.
func TestHubLabelRepairVsRebuild(t *testing.T) {
	g, err := graphrnn.GenerateGrid(131, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(132, 40)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildHubLabelIndex(ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Insert points on free nodes and repair; delete some (old and new)
	// and repair the other direction.
	var inserted []graphrnn.PointID
	for n := 0; n < g.NumNodes() && len(inserted) < 6; n++ {
		if _, taken := ps.PointAt(graphrnn.NodeID(n)); taken {
			continue
		}
		p, _, err := mat.InsertNode(graphrnn.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := idx.RepairInsert(p, graphrnn.NodeID(n)); err != nil {
			t.Fatalf("RepairInsert(%d): %v", p, err)
		}
		inserted = append(inserted, p)
		n += 11
	}
	victims := []graphrnn.PointID{inserted[0], inserted[3], ps.Points()[0]}
	for _, p := range victims {
		if _, err := mat.DeletePoint(p); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.RepairDelete(p); err != nil {
			t.Fatalf("RepairDelete(%d): %v", p, err)
		}
	}

	// Misuse is rejected: re-inserting a live point under the wrong node,
	// deleting a point that still resides in the set.
	if _, err := idx.RepairInsert(inserted[1], graphrnn.NodeID(0)); err == nil {
		t.Fatal("RepairInsert with a mismatched node succeeded")
	}
	if _, err := idx.RepairDelete(inserted[1]); err == nil {
		t.Fatal("RepairDelete of a live point succeeded")
	}

	fresh, err := db.BuildHubLabelIndex(ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	repaired := graphrnn.HubLabel(idx)
	rebuilt := graphrnn.HubLabel(fresh)
	for _, qp := range ps.Points()[:12] {
		qnode, _ := ps.NodeOf(qp)
		for _, k := range []int{1, 2, 4} {
			want, err := db.RNN(ps.Excluding(qp), qnode, k, rebuilt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.RNN(ps.Excluding(qp), qnode, k, repaired)
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(got.Points, want.Points) {
				t.Fatalf("q=%d k=%d: repaired %v, rebuilt %v", qp, k, got.Points, want.Points)
			}
			oracle, err := db.RNN(ps.Excluding(qp), qnode, k, graphrnn.BruteForce())
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(got.Points, oracle.Points) {
				t.Fatalf("q=%d k=%d: repaired %v, brute %v", qp, k, got.Points, oracle.Points)
			}
		}
	}
}
