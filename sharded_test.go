package graphrnn

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"graphrnn/internal/graph"
	"graphrnn/internal/shard"
)

// shardOracleEnv builds a small graph with a boundary-heavy point set:
// every node adjacent to a cut edge of the reference partition gets a
// point (the placements most likely to expose lost members at region
// borders), plus a scatter of random interior points.
func shardOracleEnv(t testing.TB, family string, nodes int, shards int, seed int64) (*DB, *NodePoints) {
	t.Helper()
	var g *Graph
	var err error
	switch family {
	case "road":
		g, err = GenerateRoadNetwork(seed, nodes)
	case "grid":
		g, err = GenerateGrid(seed, nodes, 2.5)
	default:
		t.Fatalf("unknown family %q", family)
	}
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := shard.Cut(g.g, shards, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	ps := db.NewNodePoints()
	placed := make(map[NodeID]bool)
	place := func(n NodeID) {
		if !placed[n] {
			placed[n] = true
			if _, err := ps.Place(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.g.ForEachEdge(func(u, v graph.NodeID, _ float64) {
		if part.Owner[u] != part.Owner[v] {
			place(NodeID(u))
			place(NodeID(v))
		}
	})
	rng := newSeededRand(seed + 1)
	for i := 0; i < nodes/20; i++ {
		place(NodeID(rng.Intn(g.NumNodes())))
	}
	if ps.Len() == 0 {
		place(0)
	}
	return db, ps
}

// TestShardedOracle is the cross-shard correctness property: scatter-
// gather answers equal unsharded engine answers — same members, same
// order — across topologies, shard counts, halo depths and query kinds,
// with boundary-heavy point placements.
func TestShardedOracle(t *testing.T) {
	for _, tc := range []struct {
		family string
		nodes  int
	}{
		{"road", 600},
		{"grid", 400},
	} {
		for _, shards := range []int{1, 2, 4, 7} {
			db, ps := shardOracleEnv(t, tc.family, tc.nodes, shards, 1811)
			sites, err := db.PlaceRandomNodePoints(97, tc.nodes/25+2)
			if err != nil {
				t.Fatal(err)
			}
			route := db.RandomWalkRoute(5, 4)
			for _, halo := range []int{-1, 1, 2} {
				sh, err := db.Shard(ps, &ShardOptions{
					Shards: shards, HaloDepth: halo, Seed: 3, Sites: sites,
				})
				if err != nil {
					t.Fatalf("%s/%d shards halo=%d: %v", tc.family, shards, halo, err)
				}
				ctx := context.Background()
				// Query nodes: a spread of owned and border nodes. The
				// generators may undershoot the requested node count.
				nn := db.Graph().NumNodes()
				targets := []NodeID{0, NodeID(nn / 3), NodeID(nn / 2), NodeID(nn - 1)}
				if pts := ps.Points(); len(pts) > 0 {
					if n, ok := ps.NodeOf(pts[len(pts)/2]); ok {
						targets = append(targets, n)
					}
				}
				for _, q := range targets {
					for _, k := range []int{1, 2, 4} {
						want, err := db.Run(ctx, Query{Kind: KindRNN, Target: NodeLocation(q), K: k, Points: ps})
						if err != nil {
							t.Fatal(err)
						}
						got, err := sh.Run(ctx, Query{Kind: KindRNN, Target: NodeLocation(q), K: k})
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Points, want.Points) {
							t.Fatalf("%s shards=%d halo=%d rnn(q=%d,k=%d): sharded %v, unsharded %v",
								tc.family, shards, halo, q, k, got.Points, want.Points)
						}
					}
					want, err := db.Run(ctx, Query{Kind: KindBichromatic, Target: NodeLocation(q), K: 2, Points: ps, Sites: sites})
					if err != nil {
						t.Fatal(err)
					}
					got, err := sh.Run(ctx, Query{Kind: KindBichromatic, Target: NodeLocation(q), K: 2})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Points, want.Points) {
						t.Fatalf("%s shards=%d halo=%d bichromatic(q=%d): sharded %v, unsharded %v",
							tc.family, shards, halo, q, got.Points, want.Points)
					}
				}
				want, err := db.Run(ctx, Query{Kind: KindContinuous, Route: route, K: 2, Points: ps})
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.Run(ctx, Query{Kind: KindContinuous, Route: route, K: 2})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Points, want.Points) {
					t.Fatalf("%s shards=%d halo=%d continuous: sharded %v, unsharded %v",
						tc.family, shards, halo, got.Points, want.Points)
				}
				if err := sh.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestShardedOracleBatch runs the oracle through RunBatch's worker pool
// — the -race coverage for concurrent scatter-gather.
func TestShardedOracleBatch(t *testing.T) {
	db, ps := shardOracleEnv(t, "road", 500, 4, 7)
	sh, err := db.Shard(ps, &ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	var qs []Query
	for n := 0; n < db.Graph().NumNodes(); n += 23 {
		qs = append(qs, Query{Kind: KindRNN, Target: NodeLocation(NodeID(n)), K: 2})
	}
	rep, err := sh.RunBatch(context.Background(), qs, &BatchOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d batch entries failed", rep.Failed)
	}
	for i, r := range rep.Results {
		uq := qs[i]
		uq.Points = ps
		want, err := db.Run(context.Background(), uq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Result.Points, want.Points) {
			t.Fatalf("entry %d: sharded %v, unsharded %v", i, r.Result.Points, want.Points)
		}
	}
	st := sh.Stats()
	if st.Queries != int64(len(qs)) || st.FanOuts != int64(4*len(qs)) {
		t.Fatalf("stats: queries=%d fanouts=%d, want %d/%d", st.Queries, st.FanOuts, len(qs), 4*len(qs))
	}
}

// TestShardedSubstrates runs the oracle with per-shard hub-label and
// materialization substrates attached — each shard's planner should pick
// them up without changing any answer.
func TestShardedSubstrates(t *testing.T) {
	db, ps := shardOracleEnv(t, "road", 400, 3, 11)
	sh, err := db.Shard(ps, &ShardOptions{Shards: 3, HubLabelK: 4, MatK: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	ctx := context.Background()
	for n := 0; n < db.Graph().NumNodes(); n += 37 {
		for _, k := range []int{1, 4} {
			want, err := db.Run(ctx, Query{Kind: KindRNN, Target: NodeLocation(NodeID(n)), K: k, Points: ps})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.Run(ctx, Query{Kind: KindRNN, Target: NodeLocation(NodeID(n)), K: k})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Points, want.Points) {
				t.Fatalf("rnn(q=%d,k=%d): sharded %v, unsharded %v", n, k, got.Points, want.Points)
			}
		}
	}
}

// TestShardedKNNGlobal: KindKNN runs on the coordinator's global engine
// and matches the unsharded answer.
func TestShardedKNNGlobal(t *testing.T) {
	db, ps := shardOracleEnv(t, "grid", 300, 2, 5)
	sh, err := db.Shard(ps, &ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	want, err := db.Run(context.Background(), Query{Kind: KindKNN, Target: NodeLocation(7), K: 3, Points: ps})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(context.Background(), Query{Kind: KindKNN, Target: NodeLocation(7), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Neighbors, want.Neighbors) {
		t.Fatalf("knn: sharded %v, unsharded %v", got.Neighbors, want.Neighbors)
	}
	if st := sh.Stats(); st.GlobalRuns != 1 {
		t.Fatalf("GlobalRuns = %d, want 1", st.GlobalRuns)
	}
}

// TestShardedDeadline: a microscopic parent timeout fails with the typed
// deadline error — upfront, deterministically — and a sane timeout
// derives a tighter per-shard deadline.
func TestShardedDeadline(t *testing.T) {
	db, ps := shardOracleEnv(t, "road", 300, 2, 9)
	sh, err := db.Shard(ps, &ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	_, err = sh.Run(context.Background(), Query{
		Kind: KindRNN, Target: NodeLocation(5), K: 2,
		QueryOptions: QueryOptions{Timeout: time.Nanosecond},
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("1ns timeout: got %v, want ErrDeadlineExceeded", err)
	}
}

func TestShardTimeoutDerivation(t *testing.T) {
	for _, tc := range []struct {
		parent, want time.Duration
	}{
		{0, 0},
		{time.Nanosecond, time.Nanosecond}, // too small to split: propagate
		{100 * time.Millisecond, 90 * time.Millisecond},
		{time.Second, 950 * time.Millisecond}, // reserve capped at 50ms
		{10 * time.Second, 9950 * time.Millisecond},
	} {
		if got := shardTimeout(tc.parent); got != tc.want {
			t.Errorf("shardTimeout(%v) = %v, want %v", tc.parent, got, tc.want)
		}
	}
}

func TestMergeCandidates(t *testing.T) {
	got := mergeCandidates([][]PointID{{5, 1, 3}, {3, 2}, nil, {1, 9, 9}})
	want := []PointID{1, 2, 3, 5, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	if mergeCandidates(nil) != nil {
		t.Fatal("empty merge not nil")
	}
}

// TestShardedValidation covers the construction and query-shape errors.
func TestShardedValidation(t *testing.T) {
	db, ps := shardOracleEnv(t, "grid", 200, 2, 3)
	if _, err := db.Shard(ps, nil); err == nil {
		t.Error("nil options accepted")
	}
	if _, err := db.Shard(ps, &ShardOptions{Shards: 0}); err == nil {
		t.Error("0 shards accepted")
	}
	g2, err := GenerateGrid(4, 100, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(g2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps2 := db2.NewNodePoints()
	if _, err := db.Shard(ps2, &ShardOptions{Shards: 2}); err == nil {
		t.Error("foreign point set accepted")
	}
	sh, err := db.Shard(ps, &ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if _, err := sh.Run(context.Background(), Query{Kind: KindRNN, Target: NodeLocation(1), K: 1, Points: ps}); err == nil {
		t.Error("explicit Points accepted by sharded Run")
	}
	if _, err := sh.Run(context.Background(), Query{Kind: KindBichromatic, Target: NodeLocation(1), K: 1}); err == nil {
		t.Error("bichromatic without sites accepted")
	}
	if _, err := sh.RunShard(context.Background(), 5, Query{Kind: KindRNN, Target: NodeLocation(1), K: 1}); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// fakeRunner returns scripted per-shard results — the remote-coordinator
// path without HTTP.
type fakeRunner struct {
	results map[int]*ShardResult
	errs    map[int]error
}

func (f *fakeRunner) RunShard(_ context.Context, sh int, _ Query) (*ShardResult, error) {
	return f.results[sh], f.errs[sh]
}

// TestShardedRunnerMode: a pure coordinator merges and verifies remote
// candidate sets; garbage ids are rejected by verification, and the
// verified answer still equals the oracle when the honest candidates are
// a superset of the true members.
func TestShardedRunnerMode(t *testing.T) {
	db, ps := shardOracleEnv(t, "road", 300, 2, 13)
	q := NodeID(150)
	want, err := db.Run(context.Background(), Query{Kind: KindRNN, Target: NodeLocation(q), K: 2, Points: ps})
	if err != nil {
		t.Fatal(err)
	}
	// All points as candidates (a trivially correct superset), plus
	// garbage ids an adversarial remote might return.
	all := ps.Points()
	junk := append(append([]PointID{}, all...), -5, 1<<20)
	runner := &fakeRunner{results: map[int]*ShardResult{0: {Candidates: junk}, 1: {}}}
	sh, err := db.Shard(ps, &ShardOptions{Shards: 2, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(context.Background(), Query{Kind: KindRNN, Target: NodeLocation(q), K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Fatalf("coordinator-over-runner: %v, want %v", got.Points, want.Points)
	}
	if _, err := sh.RunShard(context.Background(), 0, Query{Kind: KindRNN, Target: NodeLocation(q), K: 2}); err == nil {
		t.Error("RunShard on a pure coordinator accepted")
	}
	// A shard failing with a typed exec error yields a partial verified
	// answer alongside the error; a hard failure is a hard error.
	runner.errs = map[int]error{1: context.DeadlineExceeded}
	if _, err := sh.Run(context.Background(), Query{Kind: KindRNN, Target: NodeLocation(q), K: 2}); err == nil {
		t.Error("hard shard error swallowed")
	}
	runner.errs = map[int]error{1: ErrDeadlineExceeded}
	got, err = sh.Run(context.Background(), Query{Kind: KindRNN, Target: NodeLocation(q), K: 2})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("typed shard error: got %v", err)
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Fatalf("partial answer lost: %v, want %v", got.Points, want.Points)
	}
}

// TestShardedStatsShape pins the stats the /stats shard section serves.
func TestShardedStatsShape(t *testing.T) {
	db, ps := shardOracleEnv(t, "road", 300, 3, 17)
	sh, err := db.Shard(ps, &ShardOptions{Shards: 3, HaloDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if _, err := sh.Run(context.Background(), Query{Kind: KindRNN, Target: NodeLocation(9), K: 2}); err != nil {
		t.Fatal(err)
	}
	st := sh.Stats()
	if st.Shards != 3 || st.HaloDepth != 2 || len(st.PerShard) != 3 {
		t.Fatalf("shape: %+v", st)
	}
	if st.CutEdges == 0 {
		t.Error("no cut edges on a 3-way partition of a connected road network")
	}
	owned, haloed := 0, 0
	for _, p := range st.PerShard {
		owned += p.OwnedPoints
		haloed += p.HaloPoints
		if p.Queries != 1 {
			t.Errorf("shard %d served %d sub-queries, want 1", p.Shard, p.Queries)
		}
	}
	if owned != ps.Len() {
		t.Errorf("owned points sum %d, want %d", owned, ps.Len())
	}
	if haloed == 0 {
		t.Error("boundary-heavy placement produced no halo replicas")
	}
	if st.VerifyRuns != st.Candidates {
		t.Errorf("verify runs %d != candidates %d", st.VerifyRuns, st.Candidates)
	}
}
