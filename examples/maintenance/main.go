// Maintenance example: atomic, journaled K-NN list maintenance under
// deadlines, and a materialization that survives restarts.
//
// A delivery platform tracks couriers on a road network and serves
// RkNN("which couriers would a new job at node q be nearest for") through
// the eager-M materialization. Couriers come and go constantly, so the
// K-NN lists are maintained incrementally (Figs 10-11 of the paper) — and
// because maintenance runs inside the serving process, every operation
// carries a deadline. The repair journal makes that safe: an operation
// that blows its deadline is rolled back to the pre-operation state
// instead of leaving the lists half-repaired, so the next query (and the
// next attempt) proceed as if it never started.
//
// Run with:
//
//	go run ./examples/maintenance
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"graphrnn"
)

func main() {
	g, err := graphrnn.GenerateRoadNetwork(42, 5000)
	if err != nil {
		log.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	couriers, err := db.PlaceRandomNodePoints(43, 50)
	if err != nil {
		log.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(couriers, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions, %d couriers, K-NN lists to k=4\n\n", g.NumNodes(), couriers.Len())

	// A courier appears, under a generous deadline: commits.
	free := freeNode(g, couriers)
	p, st, err := mat.InsertNodeContext(context.Background(), free,
		&graphrnn.QueryOptions{Timeout: time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("courier %d signed on at junction %d (%d lists repaired, state %v)\n",
		p, free, st.MatReads, mat.RepairState())

	// An operation abandoned mid-repair — here a 1-node work budget, the
	// same mechanism a deadline uses — rolls back: the courier count and
	// every list are exactly as before, and the substrate stays queryable.
	before := couriers.Len()
	_, _, err = mat.InsertNodeContext(context.Background(), freeNode(g, couriers),
		&graphrnn.QueryOptions{Budget: graphrnn.Budget{MaxNodes: 1}})
	switch {
	case err == nil:
		log.Fatal("expected the 1-node budget to abandon the repair")
	case !graphrnn.IsExecErr(err):
		log.Fatal(err)
	}
	fmt.Printf("abandoned sign-on rolled back: %v; couriers %d -> %d, state %v\n",
		err, before, couriers.Len(), mat.RepairState())
	res, err := db.Run(context.Background(), graphrnn.Query{
		Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(0), K: 2, Points: couriers,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query after the rollback: %d reverse-nearest couriers of junction 0 [%s]\n\n",
		len(res.Points), res.Plan.Algorithm)

	// Persist the materialization and reopen it — the restart path: no
	// all-NN rebuild, journal-recovered, maintenance now durable.
	dir, err := os.MkdirTemp("", "graphrnn-maintenance")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "couriers.mat")
	if err := mat.SaveTo(path); err != nil {
		log.Fatal(err)
	}
	reopened, err := db.OpenMaterialization(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	tracked := reopened.NodePoints()
	fmt.Printf("reopened %s: %d couriers, maxK=%d, state %v\n",
		filepath.Base(path), tracked.Len(), reopened.MaxK(), reopened.RepairState())

	// Committed maintenance on the reopened materialization updates the
	// file in place; Recover reports nothing pending in a clean history.
	if _, err := reopened.DeletePointContext(context.Background(), tracked.Points()[0],
		&graphrnn.QueryOptions{Timeout: time.Second}); err != nil {
		log.Fatal(err)
	}
	pending, err := reopened.Recover()
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	fmt.Printf("durable delete committed (couriers %d); Recover() pending=%t\n", tracked.Len(), pending)
}

func freeNode(g *graphrnn.Graph, ps *graphrnn.NodePoints) graphrnn.NodeID {
	for n := 0; n < g.NumNodes(); n++ {
		if _, taken := ps.PointAt(graphrnn.NodeID(n)); !taken {
			return graphrnn.NodeID(n)
		}
	}
	return -1
}
