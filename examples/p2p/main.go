// P2P example (the Fig 1a scenario): a new peer joins an overlay network
// and asks which existing peers now have it as their nearest neighbor —
// those peers would redirect future requests to the newcomer, and the RNN
// set sizes its expected workload.
//
// The overlay is a BRITE-style scale-free topology (what the paper's P2P
// experiments use); peers occupy 1% of the routers. The example runs a
// R4NN query — the paper notes that Gnutella-style systems propagate
// queries to four neighbors — through the declarative API: once with the
// planner deciding (eager on this low-diameter topology), then with an
// explicit lazy hint to show why lazy is hopeless here ("exponential
// expansion"): it visits an order of magnitude more of the network.
//
// Run with:
//
//	go run ./examples/p2p
package main

import (
	"context"
	"fmt"
	"log"

	"graphrnn"
)

func main() {
	const (
		routers = 20000
		k       = 4
	)
	g, err := graphrnn.GenerateBrite(42, routers, 4)
	if err != nil {
		log.Fatal(err)
	}
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true, BufferPages: 64})
	if err != nil {
		log.Fatal(err)
	}
	peers, err := db.PlaceRandomNodePoints(43, routers/100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d routers, %d edges, %d peers\n\n", g.NumNodes(), g.NumEdges(), peers.Len())

	// The "new peer" joins at the location of an existing peer (whom we
	// exclude — it models the newcomer taking that position in the
	// overlay).
	newcomer := peers.Points()[0]
	joinAt, ok := peers.NodeOf(newcomer)
	if !ok {
		log.Fatalf("peer %d vanished from its own set", newcomer)
	}
	q := graphrnn.Query{
		Kind:   graphrnn.KindRNN,
		Target: graphrnn.NodeLocation(joinAt),
		K:      k,
		Points: peers.Excluding(newcomer),
	}

	for _, algo := range []graphrnn.Algorithm{graphrnn.Auto(), graphrnn.Lazy()} {
		db.ResetIOStats()
		q.Algorithm = algo
		res, err := db.Run(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		io := db.IOStats()
		fmt.Printf("%-8s R%dNN at router %d: %d peers would adopt the newcomer\n",
			res.Plan.Algorithm, k, joinAt, len(res.Points))
		fmt.Printf("         nodes expanded: %6d   scanned by sub-queries: %7d   page reads: %d\n",
			res.Stats.NodesExpanded, res.Stats.NodesScanned, io.Reads)
	}

	fmt.Println("\nThe lazy algorithm expands most of the overlay: on low-diameter")
	fmt.Println("topologies every node is a few hops from everything, so discovered")
	fmt.Println("peers cannot prune the search (Section 6.1 of the paper, Fig 15).")
}
