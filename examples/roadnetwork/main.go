// Road-network example (the Fig 1b scenario): bichromatic RNN for facility
// placement. Residential blocks and restaurants lie on the edges of a
// spatial road network (an "unrestricted" network — positions are anywhere
// along road segments). For each candidate site of a new restaurant, the
// bichromatic RNN set contains the blocks that would be closer to the new
// restaurant than to every existing competitor — the customers it would
// capture on proximity alone.
//
// The example evaluates three candidate sites through the declarative
// query API and picks the one that captures the most blocks, then streams
// a continuous query along a delivery route.
//
// Run with:
//
//	go run ./examples/roadnetwork
package main

import (
	"context"
	"fmt"
	"log"

	"graphrnn"
)

func main() {
	g, err := graphrnn.GenerateRoadNetwork(7, 30000)
	if err != nil {
		log.Fatal(err)
	}
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true})
	if err != nil {
		log.Fatal(err)
	}
	// Residential blocks: 2% of the network; restaurants: 0.2%.
	blocks, err := db.PlaceRandomEdgePoints(8, g.NumNodes()/50)
	if err != nil {
		log.Fatal(err)
	}
	rivals, err := db.PlaceRandomEdgePoints(9, g.NumNodes()/500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions, %d segments\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("%d residential blocks, %d existing restaurants\n\n", blocks.Len(), rivals.Len())

	// Three candidate sites at block locations (places customers live).
	// One Query literal per site; only the Target changes.
	candidates := blocks.Points()[:3]
	bestSite := graphrnn.Location{}
	bestCount := -1
	for i, c := range candidates {
		site, ok := blocks.LocationOf(c)
		if !ok {
			log.Fatalf("block %d vanished from its own set", c)
		}
		res, err := db.Run(context.Background(), graphrnn.Query{
			Kind:   graphrnn.KindBichromatic,
			Target: site,
			K:      1,
			Points: blocks,
			Sites:  rivals,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %d on segment (%d,%d): captures %d blocks  [%s]\n",
			i+1, site.U, site.V, len(res.Points), res.Plan.Algorithm)
		if len(res.Points) > bestCount {
			bestCount, bestSite = len(res.Points), site
		}
	}
	fmt.Printf("\n-> best site: segment (%d,%d) at offset %.1f (%d blocks)\n\n",
		bestSite.U, bestSite.V, bestSite.Pos, bestCount)

	// A driver moving along a route continuously serves the blocks that
	// have the route as their nearest "restaurant" — the continuous query
	// of Section 5.1, streamed block by block as the engine confirms them.
	route := db.RandomWalkRoute(10, 12)
	served := 0
	for _, err := range db.Stream(context.Background(), graphrnn.Query{
		Kind:   graphrnn.KindContinuous,
		Route:  route,
		K:      1,
		Points: blocks,
	}) {
		if err != nil {
			log.Fatal(err)
		}
		served++
	}
	fmt.Printf("continuous RNN along a %d-junction route: %d blocks have the route as nearest service point\n",
		len(route), served)
}
