// Coauthorship example (the Table 1 scenario): ad-hoc RNN queries on a
// DBLP-style collaboration graph, where distance is the degree of
// separation (unit edge weights) and the point set is defined at query
// time by a predicate over author attributes.
//
// "Which authors with exactly two SIGMOD papers are, among that group,
// closest to me?" — the RNN set of an author q over the predicate-filtered
// point set contains the authors for whom q is the nearest group member.
// Because the point set is ad hoc, materialization is impossible and the
// eager/lazy trade-off of the paper's Table 1 appears: eager saves I/O,
// lazy saves CPU. The queries go through the declarative API with an
// explicit algorithm hint per run.
//
// Run with:
//
//	go run ./examples/coauthor
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphrnn"
)

func main() {
	ds, err := graphrnn.GenerateCoauthorship(2024, 0, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coauthorship graph: %d authors, %d collaboration edges (unit weights)\n\n",
		g.NumNodes(), g.NumEdges())

	for _, paperCount := range []int{0, 1, 2} {
		authors := ds.AuthorsWithVenueCount(0, paperCount)
		fmt.Printf("predicate: exactly %d papers in venue 0 -> %d matching authors\n",
			paperCount, len(authors))
		ps := db.NewNodePoints()
		for _, n := range authors {
			if _, err := ps.Place(n); err != nil {
				log.Fatal(err)
			}
		}
		// Query from the first matching author's position.
		qp := ps.Points()[0]
		qnode, ok := ps.NodeOf(qp)
		if !ok {
			log.Fatalf("point %d vanished from its own set", qp)
		}
		q := graphrnn.Query{
			Kind:   graphrnn.KindRNN,
			Target: graphrnn.NodeLocation(qnode),
			K:      1,
			Points: ps.Excluding(qp),
		}
		for _, algo := range []graphrnn.Algorithm{graphrnn.Eager(), graphrnn.Lazy()} {
			if err := db.DropCache(); err != nil {
				log.Fatal(err)
			}
			db.ResetIOStats()
			q.Algorithm = algo
			t0 := time.Now()
			res, err := db.Run(context.Background(), q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s author %d has %2d reverse nearest colleagues  (pages: %3d, cpu: %v)\n",
				algo, qnode, len(res.Points), db.IOStats().Reads, time.Since(t0).Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("Fewer matching authors mean larger expansions around the query —")
	fmt.Println("the selectivity effect of the paper's Table 1.")
}
