// Quickstart: build a tiny network, place data points, and answer one
// reverse-nearest-neighbor query through the declarative query API — first
// letting the planner pick the substrate, then comparing every algorithm
// explicitly.
//
// The network is the running example of the paper (Fig 3a): seven nodes,
// three data points (p1 on n6, p2 on n5, p3 on n7), query at n4. The
// expected answer is RNN(q) = {p1, p2}: both have q as their nearest
// neighbor, while p3's nearest neighbor is p1.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"graphrnn"
)

func main() {
	// Nodes 0..6 stand for n1..n7.
	gb := graphrnn.NewGraphBuilder(7)
	type edge struct {
		u, v graphrnn.NodeID
		w    float64
	}
	for _, e := range []edge{
		{0, 1, 3}, {0, 3, 5}, {0, 4, 3},
		{1, 2, 2}, {1, 5, 2},
		{2, 3, 4}, {2, 5, 3},
		{4, 5, 9}, {5, 6, 8},
	} {
		if err := gb.AddEdge(e.u, e.v, e.w); err != nil {
			log.Fatal(err)
		}
	}
	g, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}

	db, err := graphrnn.Open(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	ps := db.NewNodePoints()
	names := map[graphrnn.PointID]string{}
	for i, n := range []graphrnn.NodeID{5, 4, 6} { // p1 on n6, p2 on n5, p3 on n7
		p, err := ps.Place(n)
		if err != nil {
			log.Fatal(err)
		}
		names[p] = fmt.Sprintf("p%d", i+1)
	}

	// Materialized 1-NN lists attach to the planner and enable eager-M.
	mat, err := db.MaterializeNodePoints(ps, 1, nil)
	if err != nil {
		log.Fatal(err)
	}

	// One declarative Query describes the request; db.Run plans and
	// executes it, echoing the substrate decision in Result.Plan.
	q := graphrnn.Query{
		Kind:   graphrnn.KindRNN,
		Target: graphrnn.NodeLocation(3), // n4
		K:      1,
		Points: ps,
	}
	res, err := db.Run(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RNN query at n4 over {p1@n6, p2@n5, p3@n7}:\n\n")
	fmt.Printf("  planner: %s\n\n", res.Plan.Explain())

	for _, algo := range []graphrnn.Algorithm{
		graphrnn.Eager(),
		graphrnn.Lazy(),
		graphrnn.LazyEP(),
		graphrnn.EagerM(mat),
		graphrnn.BruteForce(),
	} {
		hq := q
		hq.Algorithm = algo
		res, err := db.Run(context.Background(), hq)
		if err != nil {
			log.Fatal(err)
		}
		var labels []string
		for _, p := range res.Points {
			labels = append(labels, names[p])
		}
		fmt.Printf("  %-12s -> %v  (nodes expanded: %d, verifications: %d)\n",
			algo, labels, res.Stats.NodesExpanded, res.Stats.Verifications)
	}

	// Reverse 2-NN: now p3 also qualifies (q is its second NN). Stream
	// delivers each member the moment the engine confirms it.
	q.K = 2
	q.Algorithm = graphrnn.Eager()
	fmt.Printf("\nR2NN at n4, streamed as confirmed:")
	for h, err := range db.Stream(context.Background(), q) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %s", names[h.P])
	}
	fmt.Println("  (k widens the answer set)")
}
