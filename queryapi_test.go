package graphrnn_test

// Tests for the unified query API: the declarative Query surface, the
// planner's auto-selection and hint fallbacks, Plan/Explain stability, the
// RunBatch report, and streaming delivery. The planner's answers are
// oracle-tested against the explicit-algorithm entry points on road and
// grid datasets, memory- and disk-backed.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"graphrnn"
)

type planEnv struct {
	db    *graphrnn.DB
	ps    *graphrnn.NodePoints
	sites *graphrnn.NodePoints
	eps   *graphrnn.EdgePoints
}

// newPlanEnv builds a small dataset with no substrate attached; tests
// attach mat/hub as they go.
func newPlanEnv(t *testing.T, family string, disk bool) *planEnv {
	t.Helper()
	var (
		g   *graphrnn.Graph
		err error
	)
	switch family {
	case "road":
		g, err = graphrnn.GenerateRoadNetwork(41, 2000)
	case "grid":
		g, err = graphrnn.GenerateGrid(41, 2000, 4)
	default:
		t.Fatalf("unknown family %q", family)
	}
	if err != nil {
		t.Fatal(err)
	}
	var opt *graphrnn.Options
	if disk {
		opt = &graphrnn.Options{DiskBacked: true, BufferPages: 64}
	}
	db, err := graphrnn.Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(42, 40)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := db.PlaceRandomNodePoints(43, 8)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := db.PlaceRandomEdgePoints(44, 30)
	if err != nil {
		t.Fatal(err)
	}
	return &planEnv{db: db, ps: ps, sites: sites, eps: eps}
}

func queryNodes(e *planEnv, n int) []graphrnn.NodeID {
	pts := e.ps.Points()
	if n > len(pts) {
		n = len(pts)
	}
	out := make([]graphrnn.NodeID, n)
	for i := 0; i < n; i++ {
		out[i], _ = e.ps.NodeOf(pts[i])
	}
	return out
}

// TestPlannerOracle checks that auto-planned queries return exactly the
// explicit-algorithm answers as substrates come and go: unindexed
// (expansion), with a materialization (eager-M), and with a hub-label
// index (hub-label) — on road and grid, memory- and disk-backed, across
// all RkNN kinds.
func TestPlannerOracle(t *testing.T) {
	for _, family := range []string{"road", "grid"} {
		for _, disk := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/disk=%v", family, disk), func(t *testing.T) {
				e := newPlanEnv(t, family, disk)
				nodes := queryNodes(e, 8)
				route := []graphrnn.NodeID{nodes[0], nodes[1], nodes[2]}

				type shape struct {
					name string
					q    graphrnn.Query
				}
				shapes := []shape{
					{"rnn", graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(nodes[3]), K: 2, Points: e.ps}},
					{"bichromatic", graphrnn.Query{Kind: graphrnn.KindBichromatic, Target: graphrnn.NodeLocation(nodes[4]), K: 1, Points: e.ps, Sites: e.sites}},
					{"continuous", graphrnn.Query{Kind: graphrnn.KindContinuous, Route: route, K: 2, Points: e.ps}},
				}

				check := func(stage, wantAlgo string) {
					t.Helper()
					for _, sh := range shapes {
						auto, err := e.db.Run(context.Background(), sh.q)
						if err != nil {
							t.Fatalf("%s/%s: auto run: %v", stage, sh.name, err)
						}
						exq := sh.q
						exq.Algorithm = graphrnn.Eager()
						explicit, err := e.db.Run(context.Background(), exq)
						if err != nil {
							t.Fatalf("%s/%s: explicit run: %v", stage, sh.name, err)
						}
						if !reflect.DeepEqual(auto.Points, explicit.Points) {
							t.Fatalf("%s/%s: auto (%s) answered %v, eager answered %v",
								stage, sh.name, auto.Plan.Algorithm, auto.Points, explicit.Points)
						}
						// Bichromatic is exempt from the monochromatic
						// expectation only when the substrate covers the
						// sites — the hub index and materialization here
						// track the data set, so bichromatic plans fall
						// through to expansion at every stage.
						if sh.name != "bichromatic" && auto.Plan.Algorithm.String() != wantAlgo {
							t.Fatalf("%s/%s: planned %s, want %s (reason: %s)",
								stage, sh.name, auto.Plan.Algorithm, wantAlgo, auto.Plan.Reason)
						}
					}
				}

				// Unindexed: the documented expansion heuristic.
				wantExpansion := "eager"
				if !disk && family == "road" {
					wantExpansion = "lazy" // memory-backed high-diameter network
				}
				check("unindexed", wantExpansion)

				mat, err := e.db.MaterializeNodePoints(e.ps, 4, nil)
				if err != nil {
					t.Fatal(err)
				}
				check("materialized", "eager-M")

				idx, err := e.db.BuildHubLabelIndex(e.ps, 4, nil)
				if err != nil {
					t.Fatal(err)
				}
				check("hub-labeled", "hub-label")

				// Detaching walks back down the chain.
				e.db.AttachHubLabel(nil)
				check("hub-detached", "eager-M")
				if err := mat.Close(); err != nil {
					t.Fatal(err)
				}
				check("mat-closed", wantExpansion)
				_ = idx
			})
		}
	}
}

// TestPlannerFallbacks covers hints the planner cannot honor: each must
// run to a correct answer on a compatible substrate and report Fallback,
// while Strict preserves the hard error.
func TestPlannerFallbacks(t *testing.T) {
	e := newPlanEnv(t, "grid", false)
	idx, err := e.db.BuildHubLabelIndex(e.ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	qnode := queryNodes(e, 1)[0]

	cases := []struct {
		name string
		q    graphrnn.Query
		why  string // substring the fallback reason must carry
	}{
		{
			"hub-on-edge",
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(5), K: 1,
				Points: e.eps, Algorithm: graphrnn.HubLabel(idx)},
			"node-resident",
		},
		{
			"hub-k-beyond-maxk",
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 3,
				Points: e.ps, Algorithm: graphrnn.HubLabel(idx)},
			"exceeds the index",
		},
		{
			"hub-foreign-points",
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 1,
				Points: e.sites, Algorithm: graphrnn.HubLabel(idx)},
			"different point set",
		},
		{
			"hub-nil",
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 1,
				Points: e.ps, Algorithm: graphrnn.HubLabel(nil)},
			"no hub-label index",
		},
		{
			"eagerm-nil",
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 1,
				Points: e.ps, Algorithm: graphrnn.EagerM(nil)},
			"no materialization",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := e.db.Run(context.Background(), tc.q)
			if err != nil {
				t.Fatalf("fallback did not save the query: %v", err)
			}
			if !res.Plan.Fallback {
				t.Fatalf("plan did not report a fallback: %+v", res.Plan)
			}
			if !strings.Contains(res.Plan.Reason, tc.why) {
				t.Fatalf("reason %q does not explain %q", res.Plan.Reason, tc.why)
			}
			// The fallback's answer must equal the explicit answer of the
			// substrate it fell back to.
			exq := tc.q
			exq.Algorithm = res.Plan.Algorithm
			explicit, err := e.db.Run(context.Background(), exq)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Points, explicit.Points) {
				t.Fatalf("fallback answered %v, explicit %s answered %v",
					res.Points, res.Plan.Algorithm, explicit.Points)
			}

			// Strict turns the same query into a hard error.
			sq := tc.q
			sq.Strict = true
			if _, err := e.db.Run(context.Background(), sq); err == nil {
				t.Fatal("strict run of an incompatible hint succeeded")
			}
		})
	}

	// KNN has a single substrate, so a named algorithm is an incompatible
	// hint like any other: reported fallback, hard error under Strict.
	knn := graphrnn.Query{
		Kind: graphrnn.KindKNN, Target: graphrnn.NodeLocation(qnode), K: 2,
		Points: e.ps, Algorithm: graphrnn.HubLabel(idx),
	}
	res, err := e.db.Run(context.Background(), knn)
	if err != nil {
		t.Fatalf("knn with an algorithm hint: %v", err)
	}
	if !res.Plan.Fallback || !strings.Contains(res.Plan.Reason, "does not apply to knn") {
		t.Fatalf("knn hint not reported as fallback: %+v", res.Plan)
	}
	knn.Strict = true
	if _, err := e.db.Run(context.Background(), knn); err == nil || !strings.Contains(err.Error(), "single substrate") {
		t.Fatalf("strict knn with an algorithm hint: got %v, want hard error", err)
	}
}

// TestPlanExplainStability pins the planner's Explain output across all
// four kinds — the serving surface echoes these strings, so they are API.
func TestPlanExplainStability(t *testing.T) {
	e := newPlanEnv(t, "grid", false)
	idx, err := e.db.BuildHubLabelIndex(e.ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	qnode := queryNodes(e, 1)[0]

	cases := []struct {
		q    graphrnn.Query
		want string
	}{
		{
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 2, Points: e.ps},
			"rnn via hub-label: attached hub-label index answers this shape by label intersection",
		},
		{
			graphrnn.Query{Kind: graphrnn.KindBichromatic, Target: graphrnn.NodeLocation(qnode), K: 1, Points: e.ps, Sites: e.sites},
			"bichromatic via eager: eager expansion prunes with range-NN probes at the lowest page I/O",
		},
		{
			graphrnn.Query{Kind: graphrnn.KindContinuous, Route: []graphrnn.NodeID{1, 2}, K: 1, Points: e.ps},
			"continuous via hub-label: attached hub-label index answers this shape by label intersection",
		},
		{
			graphrnn.Query{Kind: graphrnn.KindKNN, Target: graphrnn.NodeLocation(qnode), K: 2, Points: e.ps},
			"knn via expansion: forward network expansion is the only KNN substrate",
		},
		{
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(5), K: 1, Points: e.eps},
			"rnn/edge via eager: eager expansion prunes with range-NN probes at the lowest page I/O",
		},
		{
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 1, Points: e.ps, Algorithm: graphrnn.Lazy()},
			"rnn via lazy: explicit algorithm",
		},
		{
			graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(5), K: 1, Points: e.eps, Algorithm: graphrnn.HubLabel(idx)},
			"rnn/edge via eager: hinted hub-label cannot run this shape (hub-label supports node-resident point sets only); fell back to eager",
		},
	}
	for i, tc := range cases {
		plan, err := e.db.Plan(tc.q)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := plan.Explain(); got != tc.want {
			t.Errorf("case %d:\n  got  %q\n  want %q", i, got, tc.want)
		}
	}
}

// TestQueryValidation pins the declarative surface's typed rejections.
func TestQueryValidation(t *testing.T) {
	e := newPlanEnv(t, "grid", false)
	qnode := queryNodes(e, 1)[0]
	node := graphrnn.NodeLocation(qnode)

	cases := []struct {
		name string
		q    graphrnn.Query
		want string
	}{
		{"no-points", graphrnn.Query{Kind: graphrnn.KindRNN, Target: node, K: 1}, "no point set"},
		{"bad-k", graphrnn.Query{Kind: graphrnn.KindRNN, Target: node, Points: e.ps}, "k must be >= 1"},
		{"bad-kind", graphrnn.Query{Kind: graphrnn.Kind(9), Target: node, K: 1, Points: e.ps}, "unknown query kind"},
		{"sites-on-rnn", graphrnn.Query{Kind: graphrnn.KindRNN, Target: node, K: 1, Points: e.ps, Sites: e.sites}, "only meaningful for bichromatic"},
		{"bichromatic-without-sites", graphrnn.Query{Kind: graphrnn.KindBichromatic, Target: node, K: 1, Points: e.ps}, "requires a site set"},
		{"route-on-rnn", graphrnn.Query{Kind: graphrnn.KindRNN, Target: node, K: 1, Points: e.ps, Route: []graphrnn.NodeID{1}}, "only meaningful for continuous"},
		{"continuous-without-route", graphrnn.Query{Kind: graphrnn.KindContinuous, K: 1, Points: e.ps}, "requires a route"},
		{"edge-target-node-set", graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.EdgeLocation(0, 1, 0.5), K: 1, Points: e.ps}, "node targets"},
		{"mixed-residency", graphrnn.Query{Kind: graphrnn.KindBichromatic, Target: node, K: 1, Points: e.ps, Sites: e.eps}, "share one residency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.db.Run(context.Background(), tc.q); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
			// Plan must reject identically without executing.
			if _, err := e.db.Plan(tc.q); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Plan: got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestRunBatchReport covers the new batch surface: mixed kinds in one
// batch, per-entry errors, and the aggregate report.
func TestRunBatchReport(t *testing.T) {
	e := newPlanEnv(t, "grid", false)
	nodes := queryNodes(e, 4)

	queries := []graphrnn.Query{
		{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(nodes[0]), K: 2, Points: e.ps},
		{Kind: graphrnn.KindKNN, Target: graphrnn.NodeLocation(nodes[1]), K: 3, Points: e.ps},
		{Kind: graphrnn.KindBichromatic, Target: graphrnn.NodeLocation(nodes[2]), K: 1, Points: e.ps, Sites: e.sites},
		{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(nodes[3]), Points: e.ps}, // K=0: invalid
		{Kind: graphrnn.KindContinuous, Route: []graphrnn.NodeID{nodes[0], nodes[1]}, K: 1, Points: e.ps},
	}
	rep, err := e.db.RunBatch(context.Background(), queries, &graphrnn.BatchOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(queries) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(queries))
	}
	if rep.Workers != 2 {
		t.Fatalf("workers = %d, want 2", rep.Workers)
	}
	if rep.Succeeded != 4 || rep.Failed != 1 {
		t.Fatalf("succeeded/failed = %d/%d, want 4/1", rep.Succeeded, rep.Failed)
	}
	if rep.Results[3].Err == nil {
		t.Fatal("invalid entry (K=0) did not report an error")
	}
	if rep.Results[1].Result == nil || len(rep.Results[1].Result.Neighbors) != 3 {
		t.Fatalf("knn entry: %+v", rep.Results[1])
	}
	if rep.Work.NodesExpanded == 0 && rep.Work.NodesScanned == 0 {
		t.Fatalf("aggregate stats are empty: %+v", rep.Work)
	}
	if rep.Wall <= 0 {
		t.Fatalf("wall time not recorded: %v", rep.Wall)
	}
	// Per-entry plans survive into the report.
	if rep.Results[0].Result.Plan.Algorithm.String() == "" {
		t.Fatal("entry 0 lost its plan")
	}
}

// TestStream checks incremental delivery: a fully consumed stream yields
// exactly Run's members, KNN streams ascend by distance, an early break
// cancels cleanly, and budget errors arrive as the final pair.
func TestStream(t *testing.T) {
	e := newPlanEnv(t, "grid", false)
	qnode := queryNodes(e, 1)[0]
	base := graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 2, Points: e.ps}

	want, err := e.db.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Points) == 0 {
		t.Fatal("degenerate test: no members")
	}

	for _, algo := range []graphrnn.Algorithm{graphrnn.Auto(), graphrnn.Eager(), graphrnn.Lazy(), graphrnn.BruteForce()} {
		q := base
		q.Algorithm = algo
		got := map[graphrnn.PointID]bool{}
		for h, err := range e.db.Stream(context.Background(), q) {
			if err != nil {
				t.Fatalf("%s: stream error: %v", algo, err)
			}
			if got[h.P] {
				t.Fatalf("%s: member %d streamed twice", algo, h.P)
			}
			got[h.P] = true
		}
		if len(got) != len(want.Points) {
			t.Fatalf("%s: streamed %d members, want %d", algo, len(got), len(want.Points))
		}
		for _, p := range want.Points {
			if !got[p] {
				t.Fatalf("%s: member %d missing from stream", algo, p)
			}
		}
	}

	// Hub-label streams too (the index attaches on build, so Auto now
	// resolves to it).
	if _, err := e.db.BuildHubLabelIndex(e.ps, 4, nil); err != nil {
		t.Fatal(err)
	}
	got := 0
	for h, err := range e.db.Stream(context.Background(), base) {
		if err != nil {
			t.Fatalf("hub stream error: %v", err)
		}
		_ = h
		got++
	}
	if got != len(want.Points) {
		t.Fatalf("hub stream yielded %d members, want %d", got, len(want.Points))
	}

	// KNN: ascending distances.
	knn := graphrnn.Query{Kind: graphrnn.KindKNN, Target: graphrnn.NodeLocation(qnode), K: 5, Points: e.ps}
	last := -1.0
	n := 0
	for h, err := range e.db.Stream(context.Background(), knn) {
		if err != nil {
			t.Fatalf("knn stream error: %v", err)
		}
		if h.Distance < last {
			t.Fatalf("knn stream not ascending: %v after %v", h.Distance, last)
		}
		last = h.Distance
		n++
	}
	if n != 5 {
		t.Fatalf("knn streamed %d neighbors, want 5", n)
	}

	// Early break must not hang (the producer is canceled via the stream
	// context) and must not poison later queries.
	q := base
	q.Algorithm = graphrnn.Eager()
	for range e.db.Stream(context.Background(), q) {
		break
	}
	if _, err := e.db.Run(context.Background(), base); err != nil {
		t.Fatalf("query after an abandoned stream: %v", err)
	}

	// A budget cut arrives as the final (Hit{}, err) pair.
	bq := base
	bq.Algorithm = graphrnn.Eager()
	bq.Budget = graphrnn.Budget{MaxNodes: 1}
	var finalErr error
	for _, err := range e.db.Stream(context.Background(), bq) {
		if err != nil {
			finalErr = err
		}
	}
	if !errors.Is(finalErr, graphrnn.ErrBudgetExceeded) {
		t.Fatalf("budgeted stream ended with %v, want ErrBudgetExceeded", finalErr)
	}

	// A planning error is delivered as the only pair.
	bad := graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 0, Points: e.ps}
	var planErr error
	pairs := 0
	for _, err := range e.db.Stream(context.Background(), bad) {
		pairs++
		planErr = err
	}
	if pairs != 1 || planErr == nil {
		t.Fatalf("invalid stream yielded %d pairs, err %v", pairs, planErr)
	}
}

// TestRunPartialResults confirms the engine contract on the new surface: a
// budget-bound Run returns the partial answer alongside the typed error,
// with the plan attached.
func TestRunPartialResults(t *testing.T) {
	e := newPlanEnv(t, "grid", false)
	qnode := queryNodes(e, 1)[0]
	q := graphrnn.Query{
		Kind: graphrnn.KindRNN, Target: graphrnn.NodeLocation(qnode), K: 2,
		Points: e.ps, Algorithm: graphrnn.Eager(),
		QueryOptions: graphrnn.QueryOptions{Budget: graphrnn.Budget{MaxNodes: 5}},
	}
	res, err := e.db.Run(context.Background(), q)
	if !errors.Is(err, graphrnn.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if res == nil {
		t.Fatal("partial result missing")
	}
	if res.Plan.Algorithm.String() != "eager" {
		t.Fatalf("partial result lost its plan: %+v", res.Plan)
	}
}
