// Package graphrnn answers reverse nearest neighbor (RNN) queries on large
// weighted graphs. It is a from-scratch Go implementation of
//
//	M. L. Yiu, D. Papadias, N. Mamoulis, Y. Tao:
//	"Reverse Nearest Neighbors in Large Graphs",
//	ICDE 2005; IEEE TKDE 18(4):540-553, 2006.
//
// Given a set of data points placed on the nodes or edges of an undirected
// weighted graph, RkNN(q) returns the points that have the query among
// their k nearest neighbors under shortest-path distance. The package
// implements the paper's four algorithms — eager, lazy, eager with
// materialized K-NN lists (eager-M, including incremental maintenance), and
// lazy with extended pruning (lazy-EP) — for monochromatic, bichromatic and
// continuous (route) queries, on both node-resident ("restricted") and
// edge-resident ("unrestricted") point sets.
//
// # Quick start
//
//	gb := graphrnn.NewGraphBuilder(4)
//	gb.AddEdge(0, 1, 1.5)
//	gb.AddEdge(1, 2, 2.0)
//	gb.AddEdge(2, 3, 1.0)
//	g, _ := gb.Build()
//	db, _ := graphrnn.Open(g, nil)
//	ps := db.NewNodePoints()
//	ps.Place(0)
//	ps.Place(3)
//	res, _ := db.RNN(ps, 1, 1, graphrnn.Eager())
//	// res.Points now holds the reverse nearest neighbors of node 1.
//
// The graph can be served from memory or from a paged disk file through an
// LRU buffer manager that counts physical I/O — the storage architecture
// and the cost model the paper's evaluation uses.
package graphrnn

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"graphrnn/internal/core"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// NodeID identifies a graph node (dense, 0..NumNodes-1).
type NodeID int32

// PointID identifies a data point within its point set.
type PointID int32

// Coord is an optional 2-D node embedding (used by spatial generators; the
// query algorithms never exploit coordinates, per Section 2.2 of the
// paper).
type Coord struct{ X, Y float64 }

// Location is a position on the network: a node, or a point on an edge
// (U,V), U < V, at offset Pos (network distance) from U.
type Location struct {
	U, V NodeID
	Pos  float64
}

// NodeLocation returns the location of node n.
func NodeLocation(n NodeID) Location { return Location{U: n, V: n} }

// EdgeLocation returns the location on edge (u,v) at offset pos from
// min(u,v).
func EdgeLocation(u, v NodeID, pos float64) Location {
	if u > v {
		u, v = v, u
	}
	return Location{U: u, V: v, Pos: pos}
}

func (l Location) toLoc() core.Loc {
	return core.Loc{U: graph.NodeID(l.U), V: graph.NodeID(l.V), Pos: l.Pos}
}

// Graph is an immutable weighted undirected network.
type Graph struct {
	g *graph.Graph
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.g.NumNodes() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// AverageDegree returns 2|E|/|V|.
func (g *Graph) AverageDegree() float64 { return g.g.AverageDegree() }

// EdgeWeight returns the weight of edge (u,v), if present.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	return g.g.EdgeWeight(graph.NodeID(u), graph.NodeID(v))
}

// Edges calls fn for every undirected edge (u < v).
func (g *Graph) Edges(fn func(u, v NodeID, w float64)) {
	g.g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		fn(NodeID(u), NodeID(v), w)
	})
}

// GraphBuilder assembles a Graph.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder creates a builder for numNodes nodes.
func NewGraphBuilder(numNodes int) *GraphBuilder {
	return &GraphBuilder{b: graph.NewBuilder(numNodes)}
}

// AddEdge records the undirected edge (u,v) with positive weight w.
// Duplicate edges keep the smallest weight; self loops are rejected.
func (gb *GraphBuilder) AddEdge(u, v NodeID, w float64) error {
	return gb.b.AddEdge(graph.NodeID(u), graph.NodeID(v), w)
}

// SetCoords attaches a 2-D embedding (len must equal numNodes).
func (gb *GraphBuilder) SetCoords(coords []Coord) error {
	cs := make([]graph.Coord, len(coords))
	for i, c := range coords {
		cs[i] = graph.Coord{X: c.X, Y: c.Y}
	}
	return gb.b.SetCoords(cs)
}

// Build finalizes the graph.
func (gb *GraphBuilder) Build() (*Graph, error) {
	g, err := gb.b.Build()
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Options configures how Open serves the graph.
type Options struct {
	// DiskBacked packs the adjacency lists into 4 KB slotted pages read
	// through an LRU buffer (the paper's storage scheme); physical page
	// I/O is then counted in IOStats. When false the graph is served from
	// memory with no I/O accounting.
	DiskBacked bool
	// PageSize overrides the page size (default 4096).
	PageSize int
	// BufferPages is the LRU capacity in pages (default 256 = 1 MB of 4 KB
	// pages, the paper's default buffer). Zero keeps the default; use
	// NoBuffer for a zero-capacity buffer.
	BufferPages int
	// NoBuffer forces a zero-capacity buffer: every page access is a
	// counted physical read (the leftmost setting of Fig 21).
	NoBuffer bool
	// Path, when non-empty, stores the page file on disk at this location
	// instead of in memory.
	Path string
	// Pool, when non-nil, serves the graph's pages from the given shared
	// buffer pool instead of a DB-private one; BufferPages becomes the
	// graph tenant's frame quota within it. Every substrate the DB builds
	// later (materializations, hub labels, paged edge points) joins the
	// same pool.
	Pool *BufferPool
}

// DB is a queryable RNN database over one graph. Queries are described by
// a declarative Query value and executed through the engine surface — Run,
// RunBatch, Stream — with the substrate resolved by the planner (Plan);
// the per-shape, per-algorithm entry points (RNN, BichromaticRNN, ...) are
// deprecated shims over it.
//
// A DB is safe for concurrent use: queries (Run / RunBatch / Stream and
// every deprecated entry point) may run from any number of goroutines, on
// memory- and disk-backed DBs alike, and IOStats / ResetIOStats may be
// called while queries are in flight. The exceptions are mutating
// operations: building point sets (Place / Delete), materialization
// maintenance (InsertNode, InsertEdge, DeletePoint), and DropCache require
// that no query is running against the same state.
type DB struct {
	graph    *Graph
	store    graph.Access
	disk     *storage.DiskStore
	searcher *core.Searcher
	// pool is the shared buffer pool every paged substrate of this DB
	// attaches to (graph pages, materialized lists, hub labels, paged
	// edge points). DB-owned pools are elastic: each attach grows the
	// capacity by the substrate's BufferPages, so defaults behave like
	// the former independent buffers. A pool passed through Options.Pool
	// keeps its fixed capacity and quotas partition it.
	pool *BufferPool
	// planHub and planMat are the planner-visible attached substrates
	// (see AttachHubLabel / AttachMaterialization); read atomically so
	// attachment may change under live traffic.
	planHub atomic.Pointer[HubLabelIndex]
	planMat atomic.Pointer[Materialization]
}

// Layout chooses the order in which adjacency lists are packed into pages
// when the graph is disk-backed; locality of the layout directly controls
// buffer faults (the connectivity grouping of Section 3.1).
type Layout struct {
	order func(*graph.Graph) []graph.NodeID
}

// BFSLayout groups topological neighbours into the same pages (the
// default, approximating the clustering of Chan & Zhang the paper uses).
func BFSLayout() Layout {
	return Layout{order: storage.BFSOrder}
}

// RandomLayout shuffles nodes across pages — the no-locality baseline used
// by the layout ablation benchmark.
func RandomLayout(seed int64) Layout {
	return Layout{order: func(g *graph.Graph) []graph.NodeID {
		rng := newSeededRand(seed)
		order := make([]graph.NodeID, g.NumNodes())
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		return order
	}}
}

// Open prepares a graph for querying with the default (BFS) page layout.
// A nil opt serves the graph from memory.
func Open(g *Graph, opt *Options) (*DB, error) {
	return OpenWithLayout(g, opt, BFSLayout())
}

// OpenWithLayout is Open with an explicit page layout (only meaningful for
// disk-backed graphs).
func OpenWithLayout(g *Graph, opt *Options, layout Layout) (*DB, error) {
	if g == nil {
		return nil, fmt.Errorf("graphrnn: nil graph")
	}
	db := &DB{graph: g}
	if opt != nil && opt.Pool != nil {
		db.pool = opt.Pool
	} else {
		db.pool = newElasticPool()
	}
	if opt != nil && opt.DiskBacked {
		pageSize := opt.PageSize
		if pageSize == 0 {
			pageSize = storage.DefaultPageSize
		}
		quota := opt.BufferPages
		if quota == 0 && !opt.NoBuffer && opt.Pool == nil {
			quota = 256
		}
		if opt.NoBuffer {
			quota = storage.NoCache
		}
		var file storage.PagedFile
		if opt.Path != "" {
			osf, err := storage.CreateOSFile(opt.Path, pageSize)
			if err != nil {
				return nil, err
			}
			file = osf
		} else {
			file = storage.NewMemFile(pageSize)
		}
		var order []graph.NodeID
		if layout.order != nil {
			order = layout.order(g.g)
		}
		bm := db.pool.attach("graph", file, quota)
		ds, err := storage.BuildDiskStoreBuffer(g.g, file, bm, 0, order)
		if err != nil {
			return nil, err
		}
		db.store = ds
		db.disk = ds
	} else {
		db.store = g.g
	}
	db.searcher = core.NewSearcher(db.store)
	return db, nil
}

// Graph returns the underlying graph.
func (db *DB) Graph() *Graph { return db.graph }

// Close releases the adjacency store's buffer tenant back to the shared
// pool (a memory-served DB holds no tenant and Close is a no-op). Attached
// substrates — hub label indexes, materializations, paged point sets — have
// their own Close methods and are not closed through the DB. Queries must
// not be in flight; the DB must not be used afterwards. Close is
// idempotent.
func (db *DB) Close() error {
	if db.disk == nil {
		return nil
	}
	disk := db.disk
	db.disk = nil
	return disk.Close()
}

// IOStats describes physical page traffic of a disk-backed component.
type IOStats struct {
	// Reads counts physical page reads (buffer faults).
	Reads int64
	// Hits counts logical reads served by the buffer.
	Hits int64
	// Writes counts physical page writes.
	Writes int64
	// Evictions counts frames pushed out by LRU replacement.
	Evictions int64
}

// HitRate returns the fraction of logical reads served from the buffer,
// or 0 when nothing was read.
func (s IOStats) HitRate() float64 {
	if s.Reads+s.Hits == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Reads+s.Hits)
}

// IOStats returns the adjacency file traffic; zero when the DB is not
// disk-backed. It is safe to call while queries run.
func (db *DB) IOStats() IOStats {
	if db.disk == nil {
		return IOStats{}
	}
	return ioStatsOf(db.disk.Stats())
}

// ResetIOStats zeroes the adjacency I/O counters. It is safe to call while
// queries run.
func (db *DB) ResetIOStats() {
	if db.disk != nil {
		db.disk.ResetStats()
	}
}

// DropCache empties the LRU buffer (cold-start experiments).
func (db *DB) DropCache() error {
	if db.disk == nil {
		return nil
	}
	return db.disk.Buffer().Invalidate()
}

// Distance computes the exact network distance between two locations,
// +Inf when disconnected.
func (db *DB) Distance(a, b Location) (float64, error) {
	return db.searcher.ULocDistance(a.toLoc(), b.toLoc())
}

func toNodeIDs(route []NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(route))
	for i, n := range route {
		out[i] = graph.NodeID(n)
	}
	return out
}

func fromPointIDs(in []points.PointID) []PointID {
	out := make([]PointID, len(in))
	for i, p := range in {
		out[i] = PointID(p)
	}
	return out
}
