package graphrnn

import (
	"errors"
	"fmt"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// ErrMissingEdge reports a reference to an edge the graph does not
// contain — placing a point on a nonexistent edge, or maintaining a point
// whose recorded edge is not in the (immutable) graph, which means the
// point set belongs to a different graph. Matched with errors.Is.
var ErrMissingEdge = errors.New("edge not in graph")

// NodePointsView is a read-only view of a node-resident point set, possibly
// hiding one point (the query's own location in the paper's workloads).
type NodePointsView struct {
	v points.NodeView
}

// NodePoints is a mutable set of data points residing on graph nodes (the
// "restricted network" model): at most one point per node per set.
type NodePoints struct {
	//lint:ignore vetrnn/tenantclose back-pointer to the engine the set queries through; the caller owns the DB
	db *DB
	s  *points.NodeSet
}

// NewNodePoints creates an empty node-resident point set for this DB's
// graph.
func (db *DB) NewNodePoints() *NodePoints {
	return &NodePoints{db: db, s: points.NewNodeSet(db.store.NumNodes())}
}

// Place puts a new point on node n and returns its id.
func (ps *NodePoints) Place(n NodeID) (PointID, error) {
	p, err := ps.s.Place(graph.NodeID(n))
	return PointID(p), err
}

// Delete removes point p.
func (ps *NodePoints) Delete(p PointID) error { return ps.s.Delete(points.PointID(p)) }

// NodeOf returns the node hosting p.
func (ps *NodePoints) NodeOf(p PointID) (NodeID, bool) {
	n, ok := ps.s.NodeOf(points.PointID(p))
	return NodeID(n), ok
}

// PointAt returns the point on node n, if any.
func (ps *NodePoints) PointAt(n NodeID) (PointID, bool) {
	p, ok := ps.s.PointAt(graph.NodeID(n))
	return PointID(p), ok
}

// Len returns the number of points.
func (ps *NodePoints) Len() int { return ps.s.Len() }

// Points returns all point ids in ascending order.
func (ps *NodePoints) Points() []PointID { return fromPointIDs(ps.s.Points()) }

// View returns the full read-only view.
func (ps *NodePoints) View() NodePointsView { return NodePointsView{v: ps.s} }

// Excluding returns a view hiding point p — the convention for queries
// issued from a data point's own location.
func (ps *NodePoints) Excluding(p PointID) NodePointsView {
	return NodePointsView{v: points.ExcludeNode(ps.s, points.PointID(p))}
}

// EdgePointsView is a read-only view of an edge-resident point set.
type EdgePointsView struct {
	v points.EdgeView
}

// EdgePoints is a mutable set of data points residing on graph edges (the
// "unrestricted network" model of Section 5.2).
type EdgePoints struct {
	//lint:ignore vetrnn/tenantclose back-pointer to the engine the set queries through; the caller owns the DB
	db *DB
	s  *points.EdgeSet
}

// NewEdgePoints creates an empty edge-resident point set.
func (db *DB) NewEdgePoints() *EdgePoints {
	return &EdgePoints{db: db, s: points.NewEdgeSet()}
}

// Place puts a new point on edge (u,v) at offset pos from min(u,v). The
// edge must exist and pos must lie within its weight.
func (ps *EdgePoints) Place(u, v NodeID, pos float64) (PointID, error) {
	w, ok := ps.db.graph.EdgeWeight(u, v)
	if !ok {
		return -1, fmt.Errorf("graphrnn: no edge (%d,%d): %w", u, v, ErrMissingEdge)
	}
	if pos < 0 || pos > w {
		return -1, fmt.Errorf("graphrnn: offset %v outside edge (%d,%d) of weight %v", pos, u, v, w)
	}
	p, err := ps.s.Place(graph.NodeID(u), graph.NodeID(v), pos)
	return PointID(p), err
}

// Delete removes point p.
func (ps *EdgePoints) Delete(p PointID) error { return ps.s.Delete(points.PointID(p)) }

// LocationOf returns the location of point p.
func (ps *EdgePoints) LocationOf(p PointID) (Location, bool) {
	loc, ok := ps.s.Loc(points.PointID(p))
	if !ok {
		return Location{}, false
	}
	return Location{U: NodeID(loc.U), V: NodeID(loc.V), Pos: loc.Pos}, true
}

// Len returns the number of points.
func (ps *EdgePoints) Len() int { return ps.s.Len() }

// Points returns all point ids in ascending order.
func (ps *EdgePoints) Points() []PointID { return fromPointIDs(ps.s.Points()) }

// View returns the full read-only view.
func (ps *EdgePoints) View() EdgePointsView { return EdgePointsView{v: ps.s} }

// Excluding returns a view hiding point p.
func (ps *EdgePoints) Excluding(p PointID) EdgePointsView {
	return EdgePointsView{v: points.ExcludeEdge(ps.s, points.PointID(p))}
}

// PagedEdgePoints is an immutable disk-resident snapshot of an EdgePoints
// set (Fig 14b's storage scheme): point lookups per edge perform counted
// I/O through an LRU buffer.
type PagedEdgePoints struct {
	s *points.PagedEdgeSet
}

// Paged snapshots the point set into a paged file attached to the DB's
// shared buffer pool (tenant "edgepoints") with bufferPages as its frame
// quota (pageSize 0 defaults to 4 KB).
func (ps *EdgePoints) Paged(pageSize, bufferPages int) (*PagedEdgePoints, error) {
	if pageSize == 0 {
		pageSize = storage.DefaultPageSize
	}
	quota := bufferPages
	if quota <= 0 {
		quota = storage.NoCache // 0 keeps its historical meaning: every access counted
	}
	file := storage.NewMemFile(pageSize)
	bm := ps.db.pool.attach("edgepoints", file, quota)
	p, err := points.NewPagedEdgeSetBuffer(ps.s, file, bm, 0)
	if err != nil {
		_ = bm.Detach()
		return nil, err
	}
	return &PagedEdgePoints{s: p}, nil
}

// Close detaches the snapshot's tenant from the DB's shared buffer pool,
// releasing its frames and any capacity it contributed. The snapshot must
// not be used afterwards; Close is idempotent.
func (ps *PagedEdgePoints) Close() error { return ps.s.Close() }

// View returns the full read-only view.
func (ps *PagedEdgePoints) View() EdgePointsView { return EdgePointsView{v: ps.s} }

// Excluding returns a view hiding point p.
func (ps *PagedEdgePoints) Excluding(p PointID) EdgePointsView {
	return EdgePointsView{v: points.ExcludeEdge(ps.s, points.PointID(p))}
}

// IOStats returns the point-file traffic.
func (ps *PagedEdgePoints) IOStats() IOStats {
	s := ps.s.Stats()
	return IOStats{Reads: s.Reads, Hits: s.Hits, Writes: s.Writes}
}

// ResetIOStats zeroes the point-file counters.
func (ps *PagedEdgePoints) ResetIOStats() { ps.s.ResetStats() }
