package graphrnn_test

// Concurrency coverage for the thread-safe query path: parallel RNN /
// EdgeRNN / BichromaticRNN queries, on memory- and disk-backed DBs, across
// all five algorithms, each checked against the serial brute-force answer.
// Run with -race to exercise the scratch-pool and buffer-manager locking.

import (
	"fmt"
	"sync"
	"testing"

	"graphrnn"
)

func samePoints(got, want []graphrnn.PointID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

type concEnv struct {
	db      *graphrnn.DB
	ps      *graphrnn.NodePoints
	mat     *graphrnn.Materialization
	queries []graphrnn.PointID
}

func newConcEnv(t *testing.T, diskBacked bool) *concEnv {
	t.Helper()
	g, err := graphrnn.GenerateGrid(31, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	var opt *graphrnn.Options
	if diskBacked {
		// A tiny buffer keeps eviction churning under concurrent faults.
		opt = &graphrnn.Options{DiskBacked: true, BufferPages: 8}
	}
	db, err := graphrnn.Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(32, 40)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &concEnv{db: db, ps: ps, mat: mat, queries: ps.Points()[:12]}
}

func concAlgorithms(e *concEnv) map[string]graphrnn.Algorithm {
	return map[string]graphrnn.Algorithm{
		"eager":   graphrnn.Eager(),
		"lazy":    graphrnn.Lazy(),
		"lazy-ep": graphrnn.LazyEP(),
		"eager-m": graphrnn.EagerM(e.mat),
		"brute":   graphrnn.BruteForce(),
	}
}

// TestConcurrentRNN runs every algorithm from many goroutines at once and
// checks each answer against the serial brute-force oracle computed up
// front.
func TestConcurrentRNN(t *testing.T) {
	for _, backend := range []string{"memory", "disk"} {
		t.Run(backend, func(t *testing.T) {
			e := newConcEnv(t, backend == "disk")
			// Serial oracle per (query, k).
			type key struct {
				q graphrnn.PointID
				k int
			}
			want := make(map[key][]graphrnn.PointID)
			ks := []int{1, 2, 4}
			for _, qp := range e.queries {
				qnode, _ := e.ps.NodeOf(qp)
				view := e.ps.Excluding(qp)
				for _, k := range ks {
					res, err := e.db.RNN(view, qnode, k, graphrnn.BruteForce())
					if err != nil {
						t.Fatal(err)
					}
					want[key{qp, k}] = res.Points
				}
			}
			var wg sync.WaitGroup
			errc := make(chan error, len(e.queries)*len(ks)*5)
			for name, algo := range concAlgorithms(e) {
				for _, qp := range e.queries {
					for _, k := range ks {
						wg.Add(1)
						go func(name string, algo graphrnn.Algorithm, qp graphrnn.PointID, k int) {
							defer wg.Done()
							qnode, _ := e.ps.NodeOf(qp)
							res, err := e.db.RNN(e.ps.Excluding(qp), qnode, k, algo)
							if err != nil {
								errc <- fmt.Errorf("%s q=%d k=%d: %w", name, qp, k, err)
								return
							}
							if !samePoints(res.Points, want[key{qp, k}]) {
								errc <- fmt.Errorf("%s q=%d k=%d: got %v, want %v",
									name, qp, k, res.Points, want[key{qp, k}])
							}
						}(name, algo, qp, k)
					}
				}
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
			// IOStats must remain callable during queries (covered above by
			// the disk backend) and coherent afterwards.
			if backend == "disk" && e.db.IOStats().Reads == 0 {
				t.Fatal("disk-backed DB recorded no page reads")
			}
		})
	}
}

// TestConcurrentEdgeRNN exercises the unrestricted (edge-resident) path,
// whose lazy variant shares the same pooled counters.
func TestConcurrentEdgeRNN(t *testing.T) {
	for _, backend := range []string{"memory", "disk"} {
		t.Run(backend, func(t *testing.T) {
			g, err := graphrnn.GenerateRoadNetwork(33, 900)
			if err != nil {
				t.Fatal(err)
			}
			var opt *graphrnn.Options
			if backend == "disk" {
				opt = &graphrnn.Options{DiskBacked: true, BufferPages: 8}
			}
			db, err := graphrnn.Open(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := db.PlaceRandomEdgePoints(34, 50)
			if err != nil {
				t.Fatal(err)
			}
			mat, err := db.MaterializeEdgePoints(ps, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			queries := ps.Points()[:8]
			want := make(map[graphrnn.PointID][]graphrnn.PointID)
			for _, qp := range queries {
				qloc, _ := ps.LocationOf(qp)
				res, err := db.EdgeRNN(ps.Excluding(qp), qloc, 2, graphrnn.BruteForce())
				if err != nil {
					t.Fatal(err)
				}
				want[qp] = res.Points
			}
			algos := map[string]graphrnn.Algorithm{
				"eager":   graphrnn.Eager(),
				"lazy":    graphrnn.Lazy(),
				"lazy-ep": graphrnn.LazyEP(),
				"eager-m": graphrnn.EagerM(mat),
				"brute":   graphrnn.BruteForce(),
			}
			var wg sync.WaitGroup
			errc := make(chan error, len(queries)*len(algos))
			for name, algo := range algos {
				for _, qp := range queries {
					wg.Add(1)
					go func(name string, algo graphrnn.Algorithm, qp graphrnn.PointID) {
						defer wg.Done()
						qloc, _ := ps.LocationOf(qp)
						res, err := db.EdgeRNN(ps.Excluding(qp), qloc, 2, algo)
						if err != nil {
							errc <- fmt.Errorf("%s q=%d: %w", name, qp, err)
							return
						}
						if !samePoints(res.Points, want[qp]) {
							errc <- fmt.Errorf("%s q=%d: got %v, want %v", name, qp, res.Points, want[qp])
						}
					}(name, algo, qp)
				}
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentBichromaticRNN runs bichromatic queries from many
// goroutines, again against the serial brute-force answer.
func TestConcurrentBichromaticRNN(t *testing.T) {
	for _, backend := range []string{"memory", "disk"} {
		t.Run(backend, func(t *testing.T) {
			g, err := graphrnn.GenerateGrid(35, 400, 4)
			if err != nil {
				t.Fatal(err)
			}
			var opt *graphrnn.Options
			if backend == "disk" {
				opt = &graphrnn.Options{DiskBacked: true, BufferPages: 8}
			}
			db, err := graphrnn.Open(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			cands, err := db.PlaceRandomNodePoints(36, 30)
			if err != nil {
				t.Fatal(err)
			}
			sites, err := db.PlaceRandomNodePoints(37, 20)
			if err != nil {
				t.Fatal(err)
			}
			mat, err := db.MaterializeNodePoints(sites, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			qnodes := []graphrnn.NodeID{0, 7, 42, 99, 123, 200, 250, 399}
			want := make(map[graphrnn.NodeID][]graphrnn.PointID)
			for _, q := range qnodes {
				res, err := db.BichromaticRNN(cands, sites, q, 2, graphrnn.BruteForce())
				if err != nil {
					t.Fatal(err)
				}
				want[q] = res.Points
			}
			algos := map[string]graphrnn.Algorithm{
				"eager":   graphrnn.Eager(),
				"lazy":    graphrnn.Lazy(),
				"lazy-ep": graphrnn.LazyEP(),
				"eager-m": graphrnn.EagerM(mat),
				"brute":   graphrnn.BruteForce(),
			}
			var wg sync.WaitGroup
			errc := make(chan error, len(qnodes)*len(algos))
			for name, algo := range algos {
				for _, q := range qnodes {
					wg.Add(1)
					go func(name string, algo graphrnn.Algorithm, q graphrnn.NodeID) {
						defer wg.Done()
						res, err := db.BichromaticRNN(cands, sites, q, 2, algo)
						if err != nil {
							errc <- fmt.Errorf("%s q=%d: %w", name, q, err)
							return
						}
						if !samePoints(res.Points, want[q]) {
							errc <- fmt.Errorf("%s q=%d: got %v, want %v", name, q, res.Points, want[q])
						}
					}(name, algo, q)
				}
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentIOStats hammers IOStats / ResetIOStats while queries run,
// which must be safe on a disk-backed DB (atomic counters).
func TestConcurrentIOStats(t *testing.T) {
	e := newConcEnv(t, true)
	stop := make(chan struct{})
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.db.IOStats()
				e.db.ResetIOStats()
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qp := e.queries[i%len(e.queries)]
			qnode, _ := e.ps.NodeOf(qp)
			for j := 0; j < 20; j++ {
				if _, err := e.db.RNN(e.ps.Excluding(qp), qnode, 2, graphrnn.Eager()); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-statsDone
}

// TestRNNBatch covers the batch layer: result/serial equality, empty
// batches, and per-query error propagation for bad k and out-of-range
// nodes.
func TestRNNBatch(t *testing.T) {
	e := newConcEnv(t, false)
	var queries []graphrnn.RNNQuery
	var want [][]graphrnn.PointID
	for _, qp := range e.queries {
		qnode, _ := e.ps.NodeOf(qp)
		res, err := e.db.RNN(e.ps, qnode, 2, graphrnn.BruteForce())
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, graphrnn.RNNQuery{Q: qnode, K: 2, Algo: graphrnn.Lazy()})
		want = append(want, res.Points)
	}
	for _, par := range []int{0, 1, 4, 32} {
		results, _ := e.db.RNNBatch(e.ps, queries, &graphrnn.BatchOptions{Parallelism: par})
		if len(results) != len(queries) {
			t.Fatalf("parallelism %d: %d results for %d queries", par, len(results), len(queries))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("parallelism %d query %d: %v", par, i, r.Err)
			}
			if !samePoints(r.Result.Points, want[i]) {
				t.Fatalf("parallelism %d query %d: got %v, want %v", par, i, r.Result.Points, want[i])
			}
		}
	}
	// Nil options default to GOMAXPROCS.
	if res, _ := e.db.RNNBatch(e.ps, queries[:2], nil); len(res) != 2 || res[0].Err != nil {
		t.Fatalf("nil options batch = %+v", res)
	}
}

func TestRNNBatchEmpty(t *testing.T) {
	e := newConcEnv(t, false)
	if res, _ := e.db.RNNBatch(e.ps, nil, nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	if res, _ := e.db.RNNBatch(e.ps, []graphrnn.RNNQuery{}, &graphrnn.BatchOptions{Parallelism: 8}); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

func TestRNNBatchErrorPropagation(t *testing.T) {
	e := newConcEnv(t, false)
	good, _ := e.ps.NodeOf(e.queries[0])
	queries := []graphrnn.RNNQuery{
		{Q: good, K: 1, Algo: graphrnn.Eager()},             // valid
		{Q: good, K: 0, Algo: graphrnn.Eager()},             // bad k
		{Q: 1 << 20, K: 1, Algo: graphrnn.Lazy()},           // out-of-range node
		{Q: -1, K: 1, Algo: graphrnn.LazyEP()},              // negative node
		{Q: good, K: 2, Algo: graphrnn.EagerM(nil)},         // missing materialization
		{Q: good, K: 1, Algo: graphrnn.BruteForce()},        // valid
		{Q: good, K: 2, Algo: graphrnn.EagerM(e.mat)},       // valid
		{Q: 1 << 20, K: 0, Algo: graphrnn.BruteForce()},     // doubly invalid
		{Q: good, K: 1 << 20, Algo: graphrnn.EagerM(e.mat)}, // k beyond MaxK
	}
	results, _ := e.db.RNNBatch(e.ps, queries, &graphrnn.BatchOptions{Parallelism: 4})
	wantErr := []bool{false, true, true, true, true, false, false, true, true}
	for i, r := range results {
		if wantErr[i] && r.Err == nil {
			t.Errorf("query %d: expected error, got %v", i, r.Result.Points)
		}
		if !wantErr[i] && r.Err != nil {
			t.Errorf("query %d: unexpected error %v", i, r.Err)
		}
		if (r.Result == nil) == (r.Err == nil) {
			t.Errorf("query %d: exactly one of Result/Err must be set, got %v / %v", i, r.Result, r.Err)
		}
	}
}

// TestBichromaticRNNBatch checks the bichromatic batch against serial
// answers.
func TestBichromaticRNNBatch(t *testing.T) {
	g, err := graphrnn.GenerateGrid(38, 225, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := db.PlaceRandomNodePoints(39, 20)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := db.PlaceRandomNodePoints(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	qnodes := []graphrnn.NodeID{0, 5, 50, 111, 224}
	var queries []graphrnn.RNNQuery
	var want [][]graphrnn.PointID
	for _, q := range qnodes {
		res, err := db.BichromaticRNN(cands, sites, q, 1, graphrnn.BruteForce())
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, graphrnn.RNNQuery{Q: q, K: 1, Algo: graphrnn.Lazy()})
		want = append(want, res.Points)
	}
	results, _ := db.BichromaticRNNBatch(cands, sites, queries, &graphrnn.BatchOptions{Parallelism: 3})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if !samePoints(r.Result.Points, want[i]) {
			t.Fatalf("query %d: got %v, want %v", i, r.Result.Points, want[i])
		}
	}
}

// TestEdgeRNNBatch checks the edge-resident batch helper.
func TestEdgeRNNBatch(t *testing.T) {
	g, err := graphrnn.GenerateRoadNetwork(41, 400)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomEdgePoints(42, 30)
	if err != nil {
		t.Fatal(err)
	}
	pts := ps.Points()[:5]
	var queries []graphrnn.EdgeRNNQuery
	var want [][]graphrnn.PointID
	for _, qp := range pts {
		qloc, _ := ps.LocationOf(qp)
		res, err := db.EdgeRNN(ps, qloc, 1, graphrnn.BruteForce())
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, graphrnn.EdgeRNNQuery{Q: qloc, K: 1, Algo: graphrnn.Eager()})
		want = append(want, res.Points)
	}
	results, _ := db.EdgeRNNBatch(ps, queries, &graphrnn.BatchOptions{Parallelism: 2})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if !samePoints(r.Result.Points, want[i]) {
			t.Fatalf("query %d: got %v, want %v", i, r.Result.Points, want[i])
		}
	}
}
