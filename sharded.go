package graphrnn

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphrnn/internal/core"
	"graphrnn/internal/exec"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/shard"
)

// This file is the scatter-gather serving layer: one DB per shard over a
// region of an edge-cut node partition, a coordinator that fans a Query
// out with per-shard deadlines and merges the confirmed members. The
// paper's RkNN algorithms confirm each member by a local expansion around
// the member itself, so results union cleanly across a partition of the
// point set — the property this layer exploits.
//
// # Exactness
//
// Every shard serves the full (immutable) topology but only a subset of
// the points: the points on nodes of its region, plus replicas of the
// points on the halo ring just outside it. Removing competitors never
// removes members — a point confirmed against the full point set is
// confirmed a fortiori against a subset, at identical (exact) shortest
// path distances — so the union of shard-local answers over owned points
// is a superset of the true answer. The halo shrinks that superset
// cheaply near region borders; the coordinator then confirms every
// merged candidate with the same per-candidate expansion the brute-force
// oracle runs, against the full point set. Verified scatter-gather
// answers are therefore bit-identical to unsharded ones: same distances,
// same epsilon bounds, same tie handling — no member is lost at cut
// edges, and no false candidate survives.
//
// KindBichromatic partitions the candidate set and replicates the
// (typically small) site set to every shard; KindKNN is answered by the
// coordinator's global engine — a forward distance search does not
// decompose over owned-point unions without a distance merge.

// ShardRunner executes one shard's sub-query. The in-process mode uses
// the Sharded value's own engines; a serving front end can provide a
// remote runner (e.g. POST /shard/query) so shards run as separate
// processes behind the same coordinator. Candidates must be global point
// ids; the coordinator re-verifies every candidate, so a runner that
// returns garbage degrades performance, not correctness.
type ShardRunner interface {
	RunShard(ctx context.Context, shard int, q Query) (*ShardResult, error)
}

// ShardResult is one shard's contribution to a scatter-gather query: the
// shard-locally confirmed members among the points the shard owns, as
// global point ids in ascending order, plus the work performed.
type ShardResult struct {
	Candidates []PointID
	Stats      Stats
}

// ShardOptions configures DB.Shard.
type ShardOptions struct {
	// Shards is the number of regions (>= 1).
	Shards int
	// HaloDepth is the width, in hops, of the replicated frontier ring
	// around each region: points on foreign nodes within HaloDepth hops
	// serve as local competitors, shrinking the candidate supersets the
	// coordinator must verify. 0 defaults to 1; negative disables the
	// halo entirely (still exact — the verify pass carries correctness
	// alone, at more verification work).
	HaloDepth int
	// Seed drives the deterministic partitioner: identical
	// (graph, Shards, HaloDepth, Seed) tuples produce identical
	// partitions in every process.
	Seed int64
	// Sites is the bichromatic site set, replicated to every shard.
	// Queries of KindBichromatic require it.
	Sites *NodePoints
	// HubLabelK, when positive, builds a per-shard hub-label index
	// (maxK = HubLabelK) over each shard's point set; the per-shard
	// planner then serves compatible sub-queries from it.
	HubLabelK int
	// MatK, when positive, materializes per-shard K-NN lists (maxK =
	// MatK) for the eager-M substrate.
	MatK int
	// Build controls the per-shard hub-label construction (worker count
	// per build, label compression). Shards always build concurrently
	// with each other.
	Build BuildOptions
	// DiskBacked serves each shard's adjacency from its own paged file,
	// attached to the parent DB's buffer pool as one tenant per shard.
	// Default shares the parent's in-memory topology (zero copy).
	DiskBacked bool
	// BufferPages is the per-shard tenant quota when DiskBacked.
	BufferPages int
	// Runner, when non-nil, makes the Sharded a pure coordinator: no
	// local shard engines are built and every sub-query goes through the
	// runner. The partition (and so the global point-id space) is still
	// computed locally, which is how separate shard processes agree with
	// the coordinator without exchanging state.
	Runner ShardRunner
}

func (o *ShardOptions) haloDepth() int {
	switch {
	case o.HaloDepth < 0:
		return 0
	case o.HaloDepth == 0:
		return 1
	default:
		return o.HaloDepth
	}
}

// shardHandle is one in-process shard: its own engine (and so its own
// planner and substrates) over the shared topology, serving the shard's
// owned points plus halo replicas.
type shardHandle struct {
	db    *DB
	ps    *NodePoints
	sites *NodePoints
	// toGlobal maps a local point id to its global id; owned reports
	// whether the local point is owned (halo replicas are competitors
	// only and never proposed as candidates).
	toGlobal []PointID
	owned    []bool
	hub      *HubLabelIndex
	mat      *Materialization
}

// shardCounters hold one shard's serving counters (atomic: RunBatch fans
// queries out over a worker pool).
type shardCounters struct {
	queries    atomic.Int64
	errors     atomic.Int64
	candidates atomic.Int64
	latencyNS  atomic.Int64
}

// Sharded executes queries by scatter-gather over a partition of the
// point set. Build one with DB.Shard; it is safe for concurrent use
// (queries only — the underlying point sets must be quiescent, as with
// every query surface of the package).
type Sharded struct {
	//lint:ignore vetrnn/tenantclose back-pointer to the coordinating DB; the caller owns it (per-shard engines are owned via handles)
	db     *DB
	ps     *NodePoints
	sites  *NodePoints
	part   *shard.Partition
	runner ShardRunner
	// handles are the in-process shard engines; nil in pure-coordinator
	// mode (Runner set).
	handles []*shardHandle
	// ownedPoints / haloPoints are the static per-shard point counts.
	ownedPoints []int
	haloPoints  []int

	queries        atomic.Int64
	globalRuns     atomic.Int64
	fanOuts        atomic.Int64
	candidates     atomic.Int64
	verifyRuns     atomic.Int64
	verifyRejected atomic.Int64
	members        atomic.Int64
	shardErrors    atomic.Int64
	perShard       []shardCounters
}

// Shard partitions ps for scatter-gather serving: the graph's node set is
// cut into opt.Shards balanced regions, each shard gets an engine over
// the shared topology serving the region's points plus a halo ring of
// replicated competitors, and the returned Sharded coordinates queries
// across them (Run / RunBatch). With opt.Runner set no local engines are
// built; sub-queries go through the runner instead (see ShardRunner).
func (db *DB) Shard(ps *NodePoints, opt *ShardOptions) (*Sharded, error) {
	if opt == nil || opt.Shards < 1 {
		return nil, fmt.Errorf("graphrnn: ShardOptions.Shards must be >= 1")
	}
	if ps == nil || ps.db != db {
		return nil, fmt.Errorf("graphrnn: Shard needs a point set of this DB")
	}
	if opt.Sites != nil && opt.Sites.db != db {
		return nil, fmt.Errorf("graphrnn: ShardOptions.Sites belongs to a different DB")
	}
	part, err := shard.Cut(db.graph.g, opt.Shards, opt.haloDepth(), opt.Seed)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		db: db, ps: ps, sites: opt.Sites, part: part, runner: opt.Runner,
		ownedPoints: make([]int, opt.Shards),
		haloPoints:  make([]int, opt.Shards),
		perShard:    make([]shardCounters, opt.Shards),
	}
	for _, p := range ps.Points() {
		n, ok := ps.NodeOf(p)
		if !ok {
			continue
		}
		s.ownedPoints[part.ShardOf(graph.NodeID(n))]++
	}
	for sh := range opt.Shards {
		for _, hn := range part.Halo[sh] {
			if _, ok := ps.PointAt(NodeID(hn)); ok {
				s.haloPoints[sh]++
			}
		}
	}
	if opt.Runner != nil {
		return s, nil
	}
	if err := s.buildHandles(opt); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// buildHandles creates the in-process shard engines and their point
// sets: owned points first (ascending global id), then halo replicas
// (ascending node id) — a deterministic local-id layout every process
// reproduces from the same inputs.
func (s *Sharded) buildHandles(opt *ShardOptions) error {
	s.handles = make([]*shardHandle, s.part.Shards)
	for sh := range s.part.Shards {
		shOpt := &Options{}
		if opt.DiskBacked {
			shOpt = &Options{DiskBacked: true, BufferPages: opt.BufferPages, Pool: s.db.pool}
		}
		shDB, err := Open(s.db.graph, shOpt)
		if err != nil {
			return err
		}
		h := &shardHandle{db: shDB, ps: shDB.NewNodePoints()}
		for _, gp := range s.ps.Points() {
			n, ok := s.ps.NodeOf(gp)
			if !ok || s.part.ShardOf(graph.NodeID(n)) != sh {
				continue
			}
			if _, err := h.ps.Place(n); err != nil {
				return err
			}
			h.toGlobal = append(h.toGlobal, gp)
			h.owned = append(h.owned, true)
		}
		for _, hn := range s.part.Halo[sh] {
			gp, ok := s.ps.PointAt(NodeID(hn))
			if !ok {
				continue
			}
			if _, err := h.ps.Place(NodeID(hn)); err != nil {
				return err
			}
			h.toGlobal = append(h.toGlobal, gp)
			h.owned = append(h.owned, false)
		}
		if s.sites != nil {
			h.sites = shDB.NewNodePoints()
			for _, sp := range s.sites.Points() {
				n, ok := s.sites.NodeOf(sp)
				if !ok {
					continue
				}
				if _, err := h.sites.Place(n); err != nil {
					return err
				}
			}
		}
		s.handles[sh] = h
	}
	// The substrate builds are CPU-bound and independent per shard, so
	// they run concurrently. Handle and point-set construction above
	// stays sequential: it fixes the local point-id layout and the
	// buffer-pool tenant order, which must not depend on scheduling.
	if opt.HubLabelK > 0 || opt.MatK > 0 {
		errs := make([]error, s.part.Shards)
		var wg sync.WaitGroup
		for sh := range s.part.Shards {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := s.handles[sh]
				if opt.HubLabelK > 0 {
					hub, err := h.db.BuildHubLabelIndex(h.ps, opt.HubLabelK, &HubLabelOptions{Build: opt.Build})
					if err != nil {
						errs[sh] = err
						return
					}
					h.hub = hub
				}
				if opt.MatK > 0 {
					mat, err := h.db.MaterializeNodePoints(h.ps, opt.MatK, nil)
					if err != nil {
						errs[sh] = err
						return
					}
					h.mat = mat
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// close releases the shard's substrates in dependency order: the planner
// substrates first (each detaches its own pool tenant), then the shard
// engine itself. It returns the first error and keeps going.
func (h *shardHandle) close() error {
	var first error
	if h.hub != nil {
		if err := h.hub.Close(); first == nil {
			first = err
		}
		h.hub = nil
	}
	if h.mat != nil {
		if err := h.mat.Close(); first == nil {
			first = err
		}
		h.mat = nil
	}
	if err := h.db.Close(); first == nil {
		first = err
	}
	return first
}

// Close releases the per-shard substrates (hub-label indexes,
// materializations, disk-backed tenants). The Sharded must be quiescent.
func (s *Sharded) Close() error {
	var first error
	for _, h := range s.handles {
		if h == nil {
			continue
		}
		if err := h.close(); first == nil {
			first = err
		}
	}
	return first
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.part.Shards }

// ShardOf returns the shard owning node n.
func (s *Sharded) ShardOf(n NodeID) int {
	return s.part.ShardOf(graph.NodeID(n))
}

// shardTimeout derives a shard sub-query deadline from the parent
// budget: the parent reserves a slice (a tenth, at most 50 ms) for the
// merge and the verify pass. A parent timeout too small to split
// propagates unchanged, so microscopic deadlines keep failing with the
// typed upfront rejection instead of silently turning unbounded.
func shardTimeout(parent time.Duration) time.Duration {
	if parent <= 0 {
		return 0
	}
	reserve := parent / 10
	if reserve > 50*time.Millisecond {
		reserve = 50 * time.Millisecond
	}
	if d := parent - reserve; d > 0 {
		return d
	}
	return parent
}

// shardQuery derives the per-shard sub-query: same kind, target, depth
// and algorithm preference; the deadline shrinks by the coordinator's
// reserve, the work budget applies per shard (documented on Run).
func shardQuery(q Query) Query {
	sq := Query{
		Kind: q.Kind, Target: q.Target, Route: q.Route, K: q.K,
		Algorithm: q.Algorithm, Strict: q.Strict,
		QueryOptions: q.QueryOptions,
	}
	sq.Timeout = shardTimeout(q.Timeout)
	return sq
}

// RunShard executes shard sh's slice of q on this process's engines:
// Points (and Sites) resolve to the shard's own sets, and the answer is
// the shard-locally confirmed members among the points the shard owns,
// as global ids. It is the execution half a shard process serves behind
// /shard/query; q's QueryOptions are applied as given (the coordinator
// already derived them). Partial candidates ride along with typed
// execution errors, per the engine contract.
func (s *Sharded) RunShard(ctx context.Context, sh int, q Query) (*ShardResult, error) {
	if sh < 0 || sh >= s.part.Shards {
		return nil, fmt.Errorf("graphrnn: shard %d out of range [0,%d)", sh, s.part.Shards)
	}
	if s.handles == nil {
		return nil, fmt.Errorf("graphrnn: pure coordinator (ShardOptions.Runner set) has no local shard engines")
	}
	if q.Points != nil || q.Sites != nil {
		return nil, fmt.Errorf("graphrnn: sharded queries name no Points/Sites; the Sharded owns its point sets")
	}
	switch q.Kind {
	case KindRNN, KindContinuous:
	case KindBichromatic:
		if s.sites == nil {
			return nil, fmt.Errorf("graphrnn: KindBichromatic needs ShardOptions.Sites")
		}
	default:
		return nil, fmt.Errorf("graphrnn: kind %v is served by the coordinator's global engine, not per shard", q.Kind)
	}
	h := s.handles[sh]
	lq := q
	lq.Points = h.ps
	if q.Kind == KindBichromatic {
		lq.Sites = h.sites
	}
	res, err := h.db.Run(ctx, lq)
	if res == nil {
		return nil, err
	}
	sr := &ShardResult{Stats: res.Stats}
	for _, lp := range res.Points {
		if int(lp) < len(h.owned) && h.owned[lp] {
			sr.Candidates = append(sr.Candidates, h.toGlobal[lp])
		}
	}
	return sr, err
}

// runOneShard dispatches to the runner or the local engines and keeps
// the per-shard serving counters.
func (s *Sharded) runOneShard(ctx context.Context, sh int, q Query) (*ShardResult, error) {
	start := time.Now()
	var sr *ShardResult
	var err error
	if s.runner != nil {
		sr, err = s.runner.RunShard(ctx, sh, q)
	} else {
		sr, err = s.RunShard(ctx, sh, q)
	}
	c := &s.perShard[sh]
	c.queries.Add(1)
	c.latencyNS.Add(time.Since(start).Nanoseconds())
	if err != nil {
		c.errors.Add(1)
		s.shardErrors.Add(1)
	}
	if sr != nil {
		c.candidates.Add(int64(len(sr.Candidates)))
	}
	return sr, err
}

// Run executes one query by scatter-gather: one sub-query per shard with
// a derived deadline, a merge of the per-shard candidate sets, and an
// exact verification of every candidate on the coordinator's global
// engine. The answer equals the unsharded DB.Run answer over the same
// point set. Points and Sites must be nil (the Sharded owns them);
// Algorithm hints pass through to every shard's planner. q.Budget, when
// set, applies to each shard sub-query individually (and again to the
// verify pass), not to the aggregate.
//
// KindKNN runs on the coordinator's global engine. Typed execution
// errors follow the engine contract: shards cut short contribute their
// partial candidates, the verified merge rides along with the first
// shard's typed error.
func (s *Sharded) Run(ctx context.Context, q Query) (*Result, error) {
	if q.Points != nil || q.Sites != nil {
		return nil, fmt.Errorf("graphrnn: sharded queries name no Points/Sites; the Sharded owns its point sets")
	}
	if q.Kind == KindKNN {
		s.globalRuns.Add(1)
		gq := q
		gq.Points = s.ps
		return s.db.Run(ctx, gq)
	}
	if q.Kind == KindBichromatic && s.sites == nil {
		return nil, fmt.Errorf("graphrnn: KindBichromatic needs ShardOptions.Sites")
	}
	// The coordinator's own execution context carries the parent
	// deadline and rejects an already-expired one upfront, before any
	// fan-out.
	ec, cancel, err := s.db.newExec(ctx, &q.QueryOptions)
	if err != nil {
		return nil, err
	}
	defer cancel()
	s.queries.Add(1)
	s.fanOuts.Add(int64(s.part.Shards))

	sq := shardQuery(q)
	results := make([]*ShardResult, s.part.Shards)
	errs := make([]error, s.part.Shards)
	var wg sync.WaitGroup
	for sh := range s.part.Shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[sh], errs[sh] = s.runOneShard(ctx, sh, sq)
		}()
	}
	wg.Wait()

	var execErr error
	lists := make([][]PointID, 0, s.part.Shards)
	var gathered Stats
	for sh := range s.part.Shards {
		if sr := results[sh]; sr != nil {
			lists = append(lists, sr.Candidates)
			gathered.add(sr.Stats)
		}
		if err := errs[sh]; err != nil {
			if !IsExecErr(err) {
				return nil, fmt.Errorf("graphrnn: shard %d: %w", sh, err)
			}
			if execErr == nil {
				execErr = fmt.Errorf("graphrnn: shard %d: %w", sh, err)
			}
		}
	}
	cands := mergeCandidates(lists)
	s.candidates.Add(int64(len(cands)))

	res, verr := s.verifyCandidates(ec, q, cands)
	res.Stats.add(gathered)
	res.Plan = Plan{
		Kind:      q.Kind,
		Algorithm: q.Algorithm,
		Reason: fmt.Sprintf("scatter-gather over %d shards; %d candidates verified on the coordinator",
			s.part.Shards, len(cands)),
	}
	s.members.Add(int64(len(res.Points)))
	if verr != nil {
		return res, verr
	}
	return res, execErr
}

// RunBatch fans a slice of queries out over a worker pool, each entry
// executed as if through Run (so each entry scatters to every shard).
// Semantics mirror DB.RunBatch: per-entry results in input order,
// FailFast, PerQuery bounds, context-aware dispatch.
func (s *Sharded) RunBatch(ctx context.Context, queries []Query, opt *BatchOptions) (*BatchReport, error) {
	start := time.Now()
	out := make([]BatchResult, len(queries))
	workers := runBatch(ctx, len(queries), opt.workers(len(queries)), opt.failFast(), out, func(ctx context.Context, i int) {
		q := queries[i]
		if pq := opt.perQuery(); pq != nil && q.QueryOptions == (QueryOptions{}) {
			q.QueryOptions = *pq
		}
		out[i].Result, out[i].Err = s.Run(ctx, q)
	})
	rep := &BatchReport{Results: out, Workers: workers, Wall: time.Since(start)}
	for _, r := range out {
		if r.Err != nil {
			rep.Failed++
		} else {
			rep.Succeeded++
		}
		if r.Result != nil {
			rep.Work.add(r.Result.Stats)
		}
	}
	return rep, nil
}

// mergeCandidates unions per-shard candidate lists into one ascending,
// duplicate-free list. Inputs need not be sorted or valid — the verify
// pass re-checks every id — so the merge is safe on adversarial remote
// responses.
func mergeCandidates(lists [][]PointID) []PointID {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	if n == 0 {
		return nil
	}
	out := make([]PointID, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:1]
	for _, p := range out[1:] {
		if p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup
}

// verifyCandidates confirms each merged candidate with the exact
// per-candidate expansion of the brute-force oracle, against the full
// point set — the cross-shard verify pass that makes scatter-gather
// answers identical to unsharded ones. Ids that name no live point are
// rejected (a shard — or an adversarial remote — proposed garbage).
// Typed execution errors return the members verified so far.
func (s *Sharded) verifyCandidates(ec *exec.Ctx, q Query, cands []PointID) (*Result, error) {
	bs := s.db.searcher.Bound(ec)
	// Points is non-nil even when empty, matching wrapResult's shape on
	// the unsharded surface.
	res := &Result{Points: []PointID{}}
	qnode := graph.NodeID(q.Target.U)
	route := toNodeIDs(q.Route)
	for _, p := range cands {
		var member bool
		var st core.Stats
		var err error
		switch q.Kind {
		case KindContinuous:
			member, st, err = bs.VerifyContinuousMember(s.ps.s, points.PointID(p), route, q.K)
		case KindBichromatic:
			member, st, err = bs.VerifyBichromaticMember(s.ps.s, s.sites.s, points.PointID(p), qnode, q.K)
		default: // KindRNN
			member, st, err = bs.VerifyRkNNMember(s.ps.s, points.PointID(p), qnode, q.K)
		}
		s.verifyRuns.Add(1)
		res.Stats.add(statsOf(st))
		if err != nil {
			if IsExecErr(err) {
				return res, err
			}
			return nil, err
		}
		if member {
			res.Points = append(res.Points, p)
		} else {
			s.verifyRejected.Add(1)
		}
	}
	return res, nil
}

// ShardStats is one shard's static shape and serving counters.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// OwnedNodes is the region size in nodes; OwnedPoints / HaloPoints
	// count the points served (owned, and replicated halo competitors).
	OwnedNodes  int
	OwnedPoints int
	HaloPoints  int
	// Queries / Errors / Candidates count sub-queries dispatched to this
	// shard, their failures, and the candidates they proposed.
	Queries    int64
	Errors     int64
	Candidates int64
	// Latency is the cumulative wall time of this shard's sub-queries.
	Latency time.Duration
}

// ShardedStats is a snapshot of the coordinator's serving counters.
type ShardedStats struct {
	// Shards / HaloDepth / CutEdges describe the partition.
	Shards    int
	HaloDepth int
	CutEdges  int
	// Queries counts scatter-gather queries; GlobalRuns counts queries
	// the coordinator's global engine served instead (KindKNN); FanOuts
	// counts shard sub-queries issued.
	Queries    int64
	GlobalRuns int64
	FanOuts    int64
	// Candidates counts merged candidates; VerifyRuns / VerifyRejected
	// count coordinator verifications and the candidates they rejected
	// (halo misses — a shard proposed a point the full competitor set
	// disqualifies); Members counts confirmed members returned.
	Candidates     int64
	VerifyRuns     int64
	VerifyRejected int64
	Members        int64
	// ShardErrors counts failed shard sub-queries.
	ShardErrors int64
	// PerShard holds one entry per shard.
	PerShard []ShardStats
}

// Stats snapshots the serving counters. Safe under live traffic.
func (s *Sharded) Stats() ShardedStats {
	st := ShardedStats{
		Shards:         s.part.Shards,
		HaloDepth:      s.part.HaloDepth,
		CutEdges:       s.part.CutEdges,
		Queries:        s.queries.Load(),
		GlobalRuns:     s.globalRuns.Load(),
		FanOuts:        s.fanOuts.Load(),
		Candidates:     s.candidates.Load(),
		VerifyRuns:     s.verifyRuns.Load(),
		VerifyRejected: s.verifyRejected.Load(),
		Members:        s.members.Load(),
		ShardErrors:    s.shardErrors.Load(),
		PerShard:       make([]ShardStats, s.part.Shards),
	}
	for sh := range s.part.Shards {
		c := &s.perShard[sh]
		st.PerShard[sh] = ShardStats{
			Shard:       sh,
			OwnedNodes:  s.part.Sizes[sh],
			OwnedPoints: s.ownedPoints[sh],
			HaloPoints:  s.haloPoints[sh],
			Queries:     c.queries.Load(),
			Errors:      c.errors.Load(),
			Candidates:  c.candidates.Load(),
			Latency:     time.Duration(c.latencyNS.Load()),
		}
	}
	return st
}
