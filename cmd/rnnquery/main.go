// Command rnnquery runs individual RkNN queries against a generated
// network through the declarative query API, printing the result set and
// the per-query work statistics of each algorithm side by side — a quick
// way to see the eager/lazy trade-offs of the paper on one query, and what
// the planner would pick on its own ("A").
//
// Usage:
//
//	rnnquery [-family road|brite|grid] [-nodes N] [-density D] [-k K]
//	         [-queries N] [-seed N] [-algos A,E,EM,L,LP,BF]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"graphrnn"
)

func main() {
	var (
		family  = flag.String("family", "road", "network family: road, brite, grid")
		nodes   = flag.Int("nodes", 10000, "approximate node count")
		density = flag.Float64("density", 0.01, "data density |P|/|V|")
		k       = flag.Int("k", 1, "number of reverse nearest neighbors")
		queries = flag.Int("queries", 3, "number of queries to run")
		seed    = flag.Int64("seed", 1, "seed")
		algos   = flag.String("algos", "A,E,EM,L,LP", "comma-separated algorithms (A=auto, E, EM, L, LP, BF)")
	)
	flag.Parse()

	var (
		g   *graphrnn.Graph
		err error
	)
	switch *family {
	case "road":
		g, err = graphrnn.GenerateRoadNetwork(*seed, *nodes)
	case "brite":
		g, err = graphrnn.GenerateBrite(*seed, *nodes, 4)
	case "grid":
		g, err = graphrnn.GenerateGrid(*seed, *nodes, 4)
	default:
		fmt.Fprintf(os.Stderr, "unknown family %q\n", *family)
		os.Exit(2)
	}
	fail(err)
	db, err := graphrnn.Open(g, &graphrnn.Options{DiskBacked: true})
	fail(err)
	count := int(*density * float64(g.NumNodes()))
	if count < 2 {
		count = 2
	}
	ps, err := db.PlaceRandomNodePoints(*seed+1, count)
	fail(err)
	mat, err := db.MaterializeNodePoints(ps, maxInt(*k, 1), nil)
	fail(err)

	algoList := map[string]graphrnn.Algorithm{
		"A":  graphrnn.Auto(),
		"E":  graphrnn.Eager(),
		"EM": graphrnn.EagerM(mat),
		"L":  graphrnn.Lazy(),
		"LP": graphrnn.LazyEP(),
		"BF": graphrnn.BruteForce(),
	}
	var selected []graphrnn.Algorithm
	for _, name := range strings.Split(*algos, ",") {
		a, ok := algoList[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", name)
			os.Exit(2)
		}
		selected = append(selected, a)
	}

	fmt.Printf("%s network: |V|=%d |E|=%d, |P|=%d, k=%d\n\n",
		*family, g.NumNodes(), g.NumEdges(), ps.Len(), *k)
	pts := ps.Points()
	for qi := 0; qi < *queries && qi < len(pts); qi++ {
		qp := pts[qi]
		qnode, ok := ps.NodeOf(qp)
		if !ok {
			continue
		}
		fmt.Printf("query %d at node %d (point %d excluded):\n", qi, qnode, qp)
		for _, algo := range selected {
			db.ResetIOStats()
			res, err := db.Run(context.Background(), graphrnn.Query{
				Kind:      graphrnn.KindRNN,
				Target:    graphrnn.NodeLocation(qnode),
				K:         *k,
				Points:    ps.Excluding(qp),
				Algorithm: algo,
			})
			fail(err)
			io := db.IOStats()
			name := algo.String()
			if algo == graphrnn.Auto() {
				name = fmt.Sprintf("auto>%s", res.Plan.Algorithm)
			}
			fmt.Printf("  %-12s -> %d results %v\n", name, len(res.Points), res.Points)
			fmt.Printf("               expanded=%d scanned=%d rangeNN=%d verify=%d matReads=%d pageReads=%d\n",
				res.Stats.NodesExpanded, res.Stats.NodesScanned, res.Stats.RangeNN,
				res.Stats.Verifications, res.Stats.MatReads, io.Reads)
		}
		fmt.Println()
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
