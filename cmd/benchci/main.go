// Command benchci is the benchmark-regression gate used by the bench job of
// the CI workflow. It runs the tracked micro-benchmarks (a small fixed-seed
// workload: the 20K-node road network, D=0.01, k=2, seed 2006) exactly
// once each, writes the results as JSON (ns/op plus every custom metric the
// benchmarks report, such as io_reads/op), and — when a baseline file is
// given — fails if any tracked benchmark regressed beyond the threshold.
//
// Usage:
//
//	benchci [-bench REGEXP] [-pkg .] [-benchtime 1x] [-count 1]
//	        [-out BENCH_PR2.json] [-against BENCH_PR2.json] [-threshold 0.25]
//
// Typical CI invocation (compare against the committed baseline, write the
// fresh numbers as a build artifact):
//
//	go run ./cmd/benchci -out bench_current.json -against BENCH_PR2.json
//
// Refreshing the committed baseline after an intentional performance
// change:
//
//	go run ./cmd/benchci -out BENCH_PR2.json
//
// The sharded scatter-gather workload (BenchmarkCIShardedQueries) is gated
// the same way against its own committed baseline, BENCH_SHARD.json — a
// second invocation, not a BENCH_PR2 refresh:
//
//	go run ./cmd/benchci -bench '^BenchmarkCIShardedQueries$' \
//	    -workload "$(jq -r .workload BENCH_SHARD.json)" \
//	    -out bench_shard_current.json -against BENCH_SHARD.json
//
// The parallel hub-label construction (BenchmarkHubLabelBuildParallel —
// every core, delta-compressed labels, same 20K road network) is the third
// gate, against BENCH_BUILD.json. Its ns/op keeps the parallel speedup
// honest relative to the sequential BenchmarkHubLabelBuild tracked in
// BENCH_PR2, and its label_bytes/op, raw_label_bytes/op and
// label_entries/op counters are machine-independent: the batched build is
// bit-identical to the sequential one, so any drift is a correctness
// regression, not noise:
//
//	go run ./cmd/benchci -bench '^BenchmarkHubLabelBuildParallel$' \
//	    -workload "$(jq -r .workload BENCH_BUILD.json)" \
//	    -out bench_build_current.json -against BENCH_BUILD.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// trackedDefault anchors the per-algorithm CI workload (one op = the whole
// fixed-seed query set, so single-shot runs average out scheduler noise),
// the hub-label build, and the journaled maintenance round trips (memory +
// persisted, so write-ahead-journal overhead is gated like query
// regressions); the paper-figure regenerations are too slow and too coarse
// for a per-commit gate.
const trackedDefault = "^(BenchmarkCIQueries|BenchmarkHubLabelBuild|BenchmarkCIMaintenance)$"

// Benchmark is one measured benchmark.
type Benchmark struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON document benchci reads and writes.
type File struct {
	Schema     int         `json:"schema"`
	Workload   string      `json:"workload"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

const workloadNote = "road network |V|=20000 seed=2006, D=0.01, k=2; one op = one full query sweep (every placed point queried once — see queries/op) or 64 journaled insert+delete round trips (see maintenance_ops/op); -benchtime=1x"

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)
var metricPair = regexp.MustCompile(`([0-9.e+-]+) ([^\s]+)`)

func main() {
	var (
		bench     = flag.String("bench", trackedDefault, "benchmark filter passed to go test -bench")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count value")
		out       = flag.String("out", "", "write results JSON to this path")
		against   = flag.String("against", "", "baseline JSON to compare against")
		threshold = flag.Float64("threshold", 0.25, "maximum tolerated ns/op regression (0.25 = +25%)")
		workload  = flag.String("workload", workloadNote, "workload note recorded in the JSON document")
	)
	flag.Parse()

	// Load the baseline before anything is written: -out and -against may
	// name the same file (the CI job refreshes the baseline artifact in
	// place while gating against the committed copy).
	var baseline *File
	if *against != "" {
		b, err := readBaseline(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
			os.Exit(1)
		}
		baseline = b
	}

	results, err := run(*bench, *pkg, *benchtime, *count, *workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
		os.Exit(1)
	}
	if len(results.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchci: no benchmarks matched")
		os.Exit(1)
	}
	for _, b := range results.Benchmarks {
		fmt.Printf("%-28s %14.0f ns/op", b.Name, b.NsPerOp)
		for _, k := range sortedKeys(b.Metrics) {
			fmt.Printf("  %g %s", b.Metrics[k], k)
		}
		fmt.Println()
	}
	if *out != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchci: wrote %s\n", *out)
	}
	if baseline != nil {
		if err := compare(*against, baseline, results, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
			os.Exit(1)
		}
	}
}

func readBaseline(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &f, nil
}

// run executes go test -bench and parses the output.
func run(bench, pkg, benchtime string, count int, workload string) (*File, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-count", strconv.Itoa(count), pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, outBytes)
	}
	results := &File{Schema: 1, Workload: workload}
	// With -count > 1 the best (minimum) ns/op per benchmark wins: the
	// repeats exist to shave scheduler noise off the gate.
	best := map[string]int{}
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], NsPerOp: ns}
		for _, pm := range metricPair.FindAllStringSubmatch(m[3], -1) {
			if v, err := strconv.ParseFloat(pm[1], 64); err == nil {
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[pm[2]] = v
			}
		}
		if i, seen := best[b.Name]; seen {
			if b.NsPerOp < results.Benchmarks[i].NsPerOp {
				results.Benchmarks[i] = b
			}
			continue
		}
		best[b.Name] = len(results.Benchmarks)
		results.Benchmarks = append(results.Benchmarks, b)
	}
	sort.Slice(results.Benchmarks, func(i, j int) bool {
		return results.Benchmarks[i].Name < results.Benchmarks[j].Name
	})
	return results, nil
}

// compare fails (non-nil error) when any baseline benchmark is missing from
// the current run or regressed beyond the threshold. ns/op carries the
// hardware of the machine that recorded the baseline, so the custom
// metrics (io_reads/op, queries/op) — deterministic for the fixed seed and
// identical across machines — are gated with the same threshold: a runner
// that is merely slower moves ns/op, a real algorithmic regression moves
// the I/O counters with it. Refresh the committed baseline from the bench
// job's artifact when the runner class changes.
func compare(baselinePath string, baseline *File, current *File, threshold float64) error {
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var failures []string
	for _, base := range baseline.Benchmarks {
		now, ok := cur[base.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: tracked benchmark disappeared", base.Name))
			continue
		}
		ratio := now.NsPerOp / base.NsPerOp
		verdict := "ok"
		if ratio > 1+threshold {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, limit +%.0f%%)",
				base.Name, base.NsPerOp, now.NsPerOp, (ratio-1)*100, threshold*100))
		}
		for _, k := range sortedKeys(base.Metrics) {
			basev := base.Metrics[k]
			nowv, has := now.Metrics[k]
			switch {
			case !has:
				failures = append(failures, fmt.Sprintf("%s: metric %s disappeared", base.Name, k))
			case higherIsBetter(k):
				// Inverted polarity: a drop beyond the threshold is the
				// regression (e.g. the buffer-pool hit rate collapsing).
				if basev > 0 && nowv/basev < 1-threshold {
					verdict = "REGRESSION"
					failures = append(failures, fmt.Sprintf("%s: %s %g -> %g (%+.1f%%, limit -%.0f%%)",
						base.Name, k, basev, nowv, (nowv/basev-1)*100, threshold*100))
				}
			case basev == 0 && nowv > 0:
				verdict = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %s went 0 -> %g", base.Name, k, nowv))
			case basev > 0 && nowv/basev > 1+threshold:
				verdict = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %s %g -> %g (%+.1f%%, limit +%.0f%%)",
					base.Name, k, basev, nowv, (nowv/basev-1)*100, threshold*100))
			}
		}
		fmt.Printf("compare %-28s %+7.1f%% ns/op  %s\n", base.Name, (ratio-1)*100, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s) against %s:\n  %s",
			len(failures), baselinePath, strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchci: no regressions against %s (threshold +%.0f%%)\n", baselinePath, threshold*100)
	return nil
}

// higherIsBetter reports whether metric k improves upward (cache hit
// rates), inverting the regression rule: everything else tracked by the
// bench job (ns/op, io_reads/op) is a cost where higher is worse.
func higherIsBetter(k string) bool { return strings.HasSuffix(k, "hit_rate") }

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
