// Command gengraph generates the synthetic networks of the evaluation and
// prints their structural summary (node/edge counts, degree, components),
// so that dataset properties can be inspected independently of any query
// experiment.
//
// Usage:
//
//	gengraph -family coauthor|brite|road|grid [-nodes N] [-degree D] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"graphrnn"
)

func main() {
	var (
		family = flag.String("family", "road", "network family: coauthor, brite, road, grid")
		nodes  = flag.Int("nodes", 20000, "approximate node count (ignored by coauthor)")
		degree = flag.Float64("degree", 4, "average degree (brite, grid)")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var (
		g   *graphrnn.Graph
		err error
	)
	switch *family {
	case "coauthor":
		var ds *graphrnn.CoauthorshipDataset
		ds, err = graphrnn.GenerateCoauthorship(*seed, 0, 0, 0)
		if err == nil {
			g = ds.Graph
			for _, c := range []int{0, 1, 2, 3} {
				fmt.Printf("authors with exactly %d papers in venue 0: %d\n",
					c, len(ds.AuthorsWithVenueCount(0, c)))
			}
		}
	case "brite":
		g, err = graphrnn.GenerateBrite(*seed, *nodes, int(*degree))
	case "road":
		g, err = graphrnn.GenerateRoadNetwork(*seed, *nodes)
	case "grid":
		g, err = graphrnn.GenerateGrid(*seed, *nodes, *degree)
	default:
		fmt.Fprintf(os.Stderr, "unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("family      : %s\n", *family)
	fmt.Printf("|V|         : %d\n", g.NumNodes())
	fmt.Printf("|E|         : %d\n", g.NumEdges())
	fmt.Printf("avg degree  : %.3f\n", g.AverageDegree())
	minW, maxW := -1.0, -1.0
	g.Edges(func(u, v graphrnn.NodeID, w float64) {
		if minW < 0 || w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	})
	fmt.Printf("weight range: [%.3f, %.3f]\n", minW, maxW)
}
