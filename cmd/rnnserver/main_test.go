package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphrnn"
)

// newTestServer builds a small in-memory serving stack: grid graph, data
// set, site set, materialization and hub-label index, so every kind and
// substrate is reachable through POST /query.
func newTestServer(t *testing.T) *server {
	t.Helper()
	g, err := graphrnn.GenerateGrid(11, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(12, 40)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := db.PlaceRandomNodePoints(13, 8)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildHubLabelIndex(ps, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := &server{db: db, ps: ps, sites: sites, mat: mat, family: "grid", started: time.Now()}
	srv.hub.Store(idx)
	return srv
}

func postQuery(t *testing.T, s *server, target, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.handleQuery(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("response is not JSON (%v): %s", err, rec.Body.String())
	}
	return rec, out
}

// TestHandleQuery covers the unified endpoint: every kind through one
// schema, the planner echo, batch arrays, and typed client errors.
func TestHandleQuery(t *testing.T) {
	s := newTestServer(t)

	// Auto-planned RNN: the attached hub-label index must win and the
	// response must say so.
	rec, out := postQuery(t, s, "/query", `{"kind":"rnn","node":5,"k":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("rnn: code %d: %v", rec.Code, out)
	}
	plan, _ := out["plan"].(map[string]any)
	if plan == nil || plan["algorithm"] != "hub-label" {
		t.Fatalf("auto plan did not pick the attached hub-label index: %v", out["plan"])
	}

	// Bichromatic: the hub index tracks the data set, not the sites, so an
	// explicit hub-label hint must fall back (and be reported as such).
	rec, out = postQuery(t, s, "/query", `{"kind":"bichromatic","node":5,"k":1,"algo":"hub-label"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("bichromatic: code %d: %v", rec.Code, out)
	}
	plan, _ = out["plan"].(map[string]any)
	if plan == nil || plan["fallback"] != true {
		t.Fatalf("hub hint over foreign sites did not fall back: %v", out["plan"])
	}

	// Continuous and knn through the same schema.
	if rec, out = postQuery(t, s, "/query", `{"kind":"continuous","route":[1,2,3],"k":1}`); rec.Code != http.StatusOK {
		t.Fatalf("continuous: code %d: %v", rec.Code, out)
	}
	rec, out = postQuery(t, s, "/query", `{"kind":"knn","node":7,"k":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("knn: code %d: %v", rec.Code, out)
	}
	if nbrs, _ := out["neighbors"].([]any); len(nbrs) != 3 {
		t.Fatalf("knn returned %v neighbors, want 3", out["neighbors"])
	}

	// Batch = JSON array; per-entry results with plans, worker count.
	rec, out = postQuery(t, s, "/query?parallelism=2",
		`[{"node":1,"k":1},{"kind":"knn","node":2,"k":1},{"node":99999,"k":1}]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: code %d: %v", rec.Code, out)
	}
	results, _ := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(results))
	}
	if out["failed"] != float64(1) {
		t.Fatalf("batch failed=%v, want 1 (out-of-range node)", out["failed"])
	}

	// Typed client errors: malformed JSON, unknown field, unknown kind,
	// missing target, bad timeout — all 400.
	for _, bad := range []string{
		`{"kind":"rnn","node":`,
		`{"nodee":5}`,
		`{"kind":"voronoi","node":5}`,
		`{"kind":"rnn","k":1}`,
		`{"kind":"rnn","node":5,"timeout":"-3s"}`,
		`[{"node":1},{"kind":"???"}]`,
		``,
	} {
		rec, _ := postQuery(t, s, "/query", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q answered %d, want 400", bad, rec.Code)
		}
	}

	// GET is not allowed.
	req := httptest.NewRequest(http.MethodGet, "/query", nil)
	rec2 := httptest.NewRecorder()
	s.handleQuery(rec2, req)
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query answered %d, want 405", rec2.Code)
	}

	// An unmeetable per-entry deadline answers 504.
	rec, _ = postQuery(t, s, "/query", `{"kind":"rnn","node":5,"k":2,"algo":"eager","timeout":"1ns"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("1ns deadline answered %d, want 504", rec.Code)
	}

	// The planner counters feed /stats.
	snap := s.planner.snapshot()
	dec, _ := snap["decisions"].(map[string]int64)
	if dec["hub-label"] == 0 {
		t.Fatalf("planner counters did not record the hub-label decisions: %v", snap)
	}
	if snap["fallbacks"].(int64) == 0 {
		t.Fatalf("planner counters did not record the fallback: %v", snap)
	}
}

// TestStatsJSONKeyOrder pins the /stats rendering contract: every JSON
// object in the body serializes its keys in sorted order, run to run —
// the sections come from Go maps, so this is encoding/json's key sort
// plus the planner snapshot's own sorted iteration.
func TestStatsJSONKeyOrder(t *testing.T) {
	s := newTestServer(t)
	// Populate the planner counters with more than one decision kind.
	postQuery(t, s, "/query", `{"kind":"rnn","node":5,"k":2}`)
	postQuery(t, s, "/query", `{"kind":"knn","node":7,"k":3}`)
	postQuery(t, s, "/query", `{"kind":"bichromatic","node":5,"k":1,"algo":"hub-label"}`)

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	s.handleStats(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats answered %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.Bytes()
	var parsed map[string]any
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("/stats is not JSON (%v): %s", err, body)
	}
	if _, ok := parsed["planner"]; !ok {
		t.Fatalf("/stats lost the planner section: %s", body)
	}
	checkSortedKeys(t, json.NewDecoder(strings.NewReader(rec.Body.String())), "")
}

// checkSortedKeys walks one JSON value off dec, failing the test when any
// object's keys are out of sorted order.
func checkSortedKeys(t *testing.T, dec *json.Decoder, path string) {
	t.Helper()
	tok, err := dec.Token()
	if err != nil {
		t.Fatalf("at %q: %v", path, err)
	}
	delim, ok := tok.(json.Delim)
	if !ok {
		return // scalar
	}
	switch delim {
	case '{':
		prev := ""
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				t.Fatalf("at %q: %v", path, err)
			}
			key := keyTok.(string)
			if key < prev {
				t.Errorf("at %q: key %q serialized after %q (not sorted)", path, key, prev)
			}
			prev = key
			checkSortedKeys(t, dec, path+"/"+key)
		}
		dec.Token() // closing }
	case '[':
		for i := 0; dec.More(); i++ {
			checkSortedKeys(t, dec, fmt.Sprintf("%s[%d]", path, i))
		}
		dec.Token() // closing ]
	}
}

// FuzzDecodeQuery drives arbitrary bodies through the /query decoding and
// planning pipeline: it must never panic, and every rejection must be a
// client error (the handler's typed 400), never a silent success over a
// half-parsed request.
func FuzzDecodeQuery(f *testing.F) {
	f.Add([]byte(`{"kind":"rnn","node":5,"k":2}`))
	f.Add([]byte(`{"kind":"bichromatic","node":1,"k":1,"algo":"hub-label"}`))
	f.Add([]byte(`{"kind":"continuous","route":[1,2,3],"k":1,"timeout":"50ms"}`))
	f.Add([]byte(`{"kind":"knn","edge":{"u":1,"v":2,"pos":0.5},"k":3}`))
	f.Add([]byte(`[{"node":1},{"kind":"knn","node":2}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"kind":"rnn","node":1,"unknown":true}`))
	f.Add([]byte(`{`))

	g, err := graphrnn.GenerateGrid(21, 64, 4)
	if err != nil {
		f.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		f.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(22, 10)
	if err != nil {
		f.Fatal(err)
	}
	sites, err := db.PlaceRandomNodePoints(23, 4)
	if err != nil {
		f.Fatal(err)
	}
	s := &server{db: db, ps: ps, sites: sites, family: "grid", started: time.Now()}

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, _, err := decodeQueryBody(data)
		if err != nil {
			return // typed 400
		}
		for _, r := range reqs {
			q, err := r.toQuery(s, nil)
			if err != nil {
				continue // typed 400
			}
			// The engine must validate whatever the decoder accepted
			// without panicking; errors here answer per-entry.
			if _, err := db.Plan(q); err != nil {
				continue
			}
		}
	})
}

// TestHandleMaintenance covers the materialization maintenance endpoints:
// insert + delete round trip, the hub-label index repairing in place on
// mutation, an unmeetable deadline answering 504 with nothing applied,
// and queries staying correct throughout.
func TestHandleMaintenance(t *testing.T) {
	s := newTestServer(t)

	post := func(target, body string) (*httptest.ResponseRecorder, map[string]any) {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
		rec := httptest.NewRecorder()
		switch {
		case strings.HasPrefix(target, "/mat/insert"):
			s.handleMatInsert(rec, req)
		default:
			s.handleMatDelete(rec, req)
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("response is not JSON (%v): %s", err, rec.Body.String())
		}
		return rec, out
	}

	// Find a free node.
	free := -1
	for n := 0; n < s.db.Graph().NumNodes(); n++ {
		if _, taken := s.ps.PointAt(graphrnn.NodeID(n)); !taken {
			free = n
			break
		}
	}
	before := s.ps.Len()

	// An unmeetable deadline answers 504 and applies nothing.
	rec, _ := post("/mat/insert?timeout=1ns", `{"node":`+strconv.Itoa(free)+`}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("1ns insert answered %d, want 504", rec.Code)
	}
	if s.ps.Len() != before {
		t.Fatal("abandoned insert mutated the point set")
	}
	if s.hub.Load() == nil {
		t.Fatal("abandoned insert dropped the hub-label index")
	}

	// A successful insert places the point, reports a clean repair state,
	// and repairs the hub-label index in place — no drop, no rebuild.
	rec, out := post("/mat/insert", `{"node":`+strconv.Itoa(free)+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert answered %d: %v", rec.Code, out)
	}
	if out["repair_state"] != "clean" {
		t.Fatalf("repair_state = %v, want clean", out["repair_state"])
	}
	if out["hub_label_repaired"] != true {
		t.Fatalf("hub_label_repaired = %v, want true", out["hub_label_repaired"])
	}
	if out["hub_label_dropped"] != nil || out["hub_label_rebuilt"] != nil {
		t.Fatalf("insert reported drop/rebuild: %v", out)
	}
	if s.hub.Load() == nil {
		t.Fatal("repaired hub-label index was detached")
	}
	if got := s.hubRepairs.Load(); got != 1 {
		t.Fatalf("hubRepairs = %d, want 1", got)
	}
	p := int(out["point"].(float64))

	// Queries after maintenance agree with brute force — served through
	// the repaired hub-label index, not a fallback.
	rec2, qout := postQuery(t, s, "/query", `{"kind":"rnn","node":3,"k":2}`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("query after insert answered %d: %v", rec2.Code, qout)
	}
	rec2, bout := postQuery(t, s, "/query", `{"kind":"rnn","node":3,"k":2,"algo":"brute"}`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("brute query answered %d: %v", rec2.Code, bout)
	}
	if fmt.Sprint(qout["points"]) != fmt.Sprint(bout["points"]) {
		t.Fatalf("post-maintenance query = %v, brute = %v", qout["points"], bout["points"])
	}

	// Delete the point again; the index repairs in place once more.
	rec, out = post("/mat/delete", `{"point":`+strconv.Itoa(p)+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete answered %d: %v", rec.Code, out)
	}
	if s.ps.Len() != before {
		t.Fatalf("point count = %d after round trip, want %d", s.ps.Len(), before)
	}
	if out["hub_label_repaired"] != true {
		t.Fatalf("delete: hub_label_repaired = %v, want true", out["hub_label_repaired"])
	}
	if got := s.hubRepairs.Load(); got != 2 {
		t.Fatalf("hubRepairs after round trip = %d, want 2", got)
	}

	// Client errors: malformed body, nonexistent point, bad method.
	if rec, _ := post("/mat/insert", `{"node":`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed insert answered %d, want 400", rec.Code)
	}
	if rec, _ := post("/mat/delete", `{"point":999999}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("nonexistent point answered %d, want 400", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/mat/insert", nil)
	rec3 := httptest.NewRecorder()
	s.handleMatInsert(rec3, req)
	if rec3.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /mat/insert answered %d, want 405", rec3.Code)
	}

	// Without a materialization the endpoints answer 503.
	s2 := &server{db: s.db, ps: s.ps, family: "grid", started: time.Now()}
	req = httptest.NewRequest(http.MethodPost, "/mat/insert", strings.NewReader(`{"node":1}`))
	rec3 = httptest.NewRecorder()
	s2.handleMatInsert(rec3, req)
	if rec3.Code != http.StatusServiceUnavailable {
		t.Fatalf("maintenance without -maxk answered %d, want 503", rec3.Code)
	}
}

// TestMaintenanceRepairEquivalence is the repair-vs-rebuild oracle: a
// workload of inserts and deletes served entirely through the in-place
// hub-label repair must answer every query exactly like an index rebuilt
// from scratch over the final point set (and like brute force).
func TestMaintenanceRepairEquivalence(t *testing.T) {
	s := newTestServer(t)

	post := func(target, body string) map[string]any {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
		rec := httptest.NewRecorder()
		switch {
		case strings.HasPrefix(target, "/mat/insert"):
			s.handleMatInsert(rec, req)
		default:
			s.handleMatDelete(rec, req)
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("%s answered %d: %s", target, rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("response is not JSON (%v): %s", err, rec.Body.String())
		}
		if out["hub_label_repaired"] != true {
			t.Fatalf("%s did not repair in place: %v", target, out)
		}
		return out
	}

	// Insert five points on free nodes, then delete two of them and one
	// of the original points — exercising both repair directions.
	var inserted []int
	for n := 0; n < s.db.Graph().NumNodes() && len(inserted) < 5; n++ {
		if _, taken := s.ps.PointAt(graphrnn.NodeID(n)); taken {
			continue
		}
		out := post("/mat/insert", `{"node":`+strconv.Itoa(n)+`}`)
		inserted = append(inserted, int(out["point"].(float64)))
		n += 7
	}
	orig := -1
	for n := 0; n < s.db.Graph().NumNodes(); n++ {
		if p, taken := s.ps.PointAt(graphrnn.NodeID(n)); taken {
			skip := false
			for _, ip := range inserted {
				if int(p) == ip {
					skip = true
				}
			}
			if !skip {
				orig = int(p)
				break
			}
		}
	}
	for _, p := range append(inserted[:2:2], orig) {
		post("/mat/delete", `{"point":`+strconv.Itoa(p)+`}`)
	}
	if s.hubRepairFails.Load() != 0 || s.hubRebuilds.Load() != 0 {
		t.Fatalf("workload fell off the repair path: %d failures, %d rebuilds",
			s.hubRepairFails.Load(), s.hubRebuilds.Load())
	}

	// Answer a spread of RNN queries through the repaired index.
	type qk struct {
		node, k int
	}
	var queries []qk
	for n := 0; n < s.db.Graph().NumNodes(); n += 29 {
		queries = append(queries, qk{n, 1 + n%4})
	}
	ask := func(q qk, algo string) string {
		t.Helper()
		rec, out := postQuery(t, s, "/query",
			fmt.Sprintf(`{"kind":"rnn","node":%d,"k":%d,"algo":%q}`, q.node, q.k, algo))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s query %+v answered %d: %v", algo, q, rec.Code, out)
		}
		return fmt.Sprint(out["points"])
	}
	repairedAns := make(map[qk]string)
	for _, q := range queries {
		repairedAns[q] = ask(q, "hub")
	}

	// Rebuild from scratch over the final point set and re-ask.
	req := httptest.NewRequest(http.MethodPost, "/index/hublabel", strings.NewReader(`{"maxk":4}`))
	rec := httptest.NewRecorder()
	s.handleHubBuild(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("rebuild answered %d: %s", rec.Code, rec.Body.String())
	}
	for _, q := range queries {
		if fresh := ask(q, "hub"); fresh != repairedAns[q] {
			t.Fatalf("query %+v: repaired index answered %s, fresh rebuild %s", q, repairedAns[q], fresh)
		}
		if brute := ask(q, "brute"); brute != repairedAns[q] {
			t.Fatalf("query %+v: repaired index answered %s, brute force %s", q, repairedAns[q], brute)
		}
	}
}
