package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphrnn"
)

// shardedTestEnv is the shared serving substrate of the sharded server
// tests: one graph and one global point/site set, from which both an
// unsharded oracle server and sharded servers (in-process or wired over
// HTTP) are built — all read-only, so they can share the DB.
type shardedTestEnv struct {
	db    *graphrnn.DB
	ps    *graphrnn.NodePoints
	sites *graphrnn.NodePoints
}

func newShardedTestEnv(t *testing.T) *shardedTestEnv {
	t.Helper()
	g, err := graphrnn.GenerateGrid(31, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrnn.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(32, 48)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := db.PlaceRandomNodePoints(33, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &shardedTestEnv{db: db, ps: ps, sites: sites}
}

// oracleServer is the unsharded reference the sharded answers must match.
func (e *shardedTestEnv) oracleServer() *server {
	return &server{db: e.db, ps: e.ps, sites: e.sites, family: "grid", started: time.Now(), shardIndex: -1}
}

func (e *shardedTestEnv) shardedServer(t *testing.T, opt *graphrnn.ShardOptions, role string, index int) *server {
	t.Helper()
	sh, err := e.db.Shard(e.ps, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	return &server{
		db: e.db, ps: e.ps, sites: e.sites, family: "grid", started: time.Now(),
		sharded: sh, shardRole: role, shardIndex: index,
	}
}

// TestHandleQuerySharded drives POST /query through an in-process
// sharded server and checks every answer against the unsharded oracle,
// plus the sharded-mode serving contract: 504 on unmeetable deadlines,
// the /stats shards section, and disabled maintenance.
func TestHandleQuerySharded(t *testing.T) {
	env := newShardedTestEnv(t)
	oracle := env.oracleServer()
	s := env.shardedServer(t, &graphrnn.ShardOptions{
		Shards: 4, Seed: 5, Sites: env.sites, HubLabelK: 4,
	}, "in-process", -1)

	for _, body := range []string{
		`{"kind":"rnn","node":5,"k":2}`,
		`{"kind":"rnn","node":199,"k":1}`,
		`{"kind":"bichromatic","node":42,"k":2}`,
		`{"kind":"continuous","route":[1,2,3,4],"k":2}`,
		`{"kind":"knn","node":7,"k":3}`,
	} {
		rec, out := postQuery(t, s, "/query", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: code %d: %v", body, rec.Code, out)
		}
		orec, oout := postQuery(t, oracle, "/query", body)
		if orec.Code != http.StatusOK {
			t.Fatalf("oracle %s: code %d: %v", body, orec.Code, oout)
		}
		if fmt.Sprint(out["points"]) != fmt.Sprint(oout["points"]) {
			t.Fatalf("%s: sharded points %v, oracle %v", body, out["points"], oout["points"])
		}
		if fmt.Sprint(out["neighbors"]) != fmt.Sprint(oout["neighbors"]) {
			t.Fatalf("%s: sharded neighbors %v, oracle %v", body, out["neighbors"], oout["neighbors"])
		}
	}

	// Batch arrays fan out per entry.
	rec, out := postQuery(t, s, "/query?parallelism=2",
		`[{"node":1,"k":1},{"kind":"bichromatic","node":2,"k":1},{"kind":"knn","node":3,"k":2}]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: code %d: %v", rec.Code, out)
	}
	if results, _ := out["results"].([]any); len(results) != 3 {
		t.Fatalf("batch returned %v results, want 3", out["results"])
	}
	if out["failed"] != float64(0) {
		t.Fatalf("batch failed=%v, want 0", out["failed"])
	}

	// An unmeetable deadline answers 504 through the scatter-gather path.
	rec, _ = postQuery(t, s, "/query", `{"kind":"rnn","node":5,"k":2,"timeout":"1ns"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("1ns sharded deadline answered %d, want 504", rec.Code)
	}

	// /stats grows a shards section with the partition shape and fan-out
	// counters.
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	srec := httptest.NewRecorder()
	s.handleStats(srec, req)
	var stats map[string]any
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	shs, _ := stats["shards"].(map[string]any)
	if shs == nil {
		t.Fatalf("stats missing shards section: %v", stats)
	}
	if shs["shards"] != float64(4) || shs["role"] != "in-process" {
		t.Fatalf("shards section shape wrong: %v", shs)
	}
	if shs["fan_outs"].(float64) == 0 || shs["verify_runs"].(float64) == 0 {
		t.Fatalf("shards section counters empty after traffic: %v", shs)
	}
	if per, _ := shs["per_shard"].([]any); len(per) != 4 {
		t.Fatalf("per_shard has %d entries, want 4", len(per))
	}

	// Maintenance and global index builds are disabled in sharded mode.
	for _, target := range []string{"/mat/insert", "/mat/delete", "/index/hublabel"} {
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(`{"node":1}`))
		rec := httptest.NewRecorder()
		switch target {
		case "/mat/insert":
			s.handleMatInsert(rec, req)
		case "/mat/delete":
			s.handleMatDelete(rec, req)
		default:
			s.handleHubBuild(rec, req)
		}
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s in sharded mode answered %d, want 503", target, rec.Code)
		}
	}
}

// TestShardWireHTTP runs the full two-tier deployment in miniature: a
// shard-process server behind httptest serving POST /shard/query, and a
// coordinator whose Sharded fans out over HTTP — answers must still
// match the unsharded oracle, and typed errors must survive the wire.
func TestShardWireHTTP(t *testing.T) {
	env := newShardedTestEnv(t)
	oracle := env.oracleServer()
	const shards = 3

	// The shard process: local engines for every shard (a single test
	// process stands in for all peers), -shard-index unset so any index
	// is served.
	shardProc := env.shardedServer(t, &graphrnn.ShardOptions{
		Shards: shards, Seed: 9, Sites: env.sites,
	}, "shard", -1)
	ts := httptest.NewServer(http.HandlerFunc(shardProc.handleShardQuery))
	defer ts.Close()

	peers := make([]string, shards)
	for i := range peers {
		peers[i] = ts.URL
	}
	coord := env.shardedServer(t, &graphrnn.ShardOptions{
		Shards: shards, Seed: 9, Sites: env.sites,
		Runner: newHTTPShardRunner(peers),
	}, "coordinator", -1)

	for _, body := range []string{
		`{"kind":"rnn","node":11,"k":2}`,
		`{"kind":"bichromatic","node":80,"k":1}`,
		`{"kind":"continuous","route":[5,6,7],"k":2}`,
	} {
		rec, out := postQuery(t, coord, "/query", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: code %d: %v", body, rec.Code, out)
		}
		_, oout := postQuery(t, oracle, "/query", body)
		if fmt.Sprint(out["points"]) != fmt.Sprint(oout["points"]) {
			t.Fatalf("%s: coordinator points %v, oracle %v", body, out["points"], oout["points"])
		}
	}

	// A deadline too small to meet crosses the wire as error_kind
	// "deadline" and answers 504 at the coordinator.
	rec, _ := postQuery(t, coord, "/query", `{"kind":"rnn","node":5,"k":1,"timeout":"1ns"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("remote 1ns deadline answered %d, want 504", rec.Code)
	}

	// The coordinator's stats count the remote fan-out.
	st := coord.sharded.Stats()
	if st.Queries == 0 || st.FanOuts != st.Queries*int64(shards) {
		t.Fatalf("coordinator counters off: queries %d fan-outs %d", st.Queries, st.FanOuts)
	}

	// Protocol rejections at the shard endpoint: malformed body, unknown
	// kind, foreign index on a pinned process.
	post := func(s *server, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/shard/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.handleShardQuery(rec, req)
		return rec
	}
	if rec := post(shardProc, `{"shard":0,"kind":`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed sub-query answered %d, want 400", rec.Code)
	}
	if rec := post(shardProc, `{"shard":0,"kind":"knn","node":1,"k":1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("knn sub-query answered %d, want 400 (never fans out)", rec.Code)
	}
	if rec := post(shardProc, `{"shard":99,"kind":"rnn","node":1,"k":1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range shard answered %d, want 400", rec.Code)
	}
	pinned := env.shardedServer(t, &graphrnn.ShardOptions{
		Shards: shards, Seed: 9, Sites: env.sites,
	}, "shard 2", 2)
	if rec := post(pinned, `{"shard":0,"kind":"rnn","node":1,"k":1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("misrouted sub-query answered %d, want 400", rec.Code)
	}
	if rec := post(pinned, `{"shard":2,"kind":"rnn","node":1,"k":1}`); rec.Code != http.StatusOK {
		t.Errorf("matching sub-query answered %d, want 200", rec.Code)
	}
}

// TestShardWireCodec unit-tests the wire mapping: query round trips,
// substrate-bound hints refusing to travel, and typed errors surviving
// encode/decode so errors.Is works across the process boundary.
func TestShardWireCodec(t *testing.T) {
	q := graphrnn.Query{
		Kind:   graphrnn.KindRNN,
		Target: graphrnn.NodeLocation(7),
		K:      3,
		Strict: true,
	}
	q.Timeout = 90 * time.Millisecond
	q.Budget = graphrnn.Budget{MaxNodes: 1000, MaxIOReads: 50}
	q.Algorithm = graphrnn.LazyEP()
	wire, err := encodeShardQuery(1, q)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Shard != 1 || wire.Kind != "rnn" || *wire.Node != 7 || wire.K != 3 ||
		!wire.Strict || wire.Algo != "lazy-ep" || wire.TimeoutNS != int64(90*time.Millisecond) ||
		wire.MaxNodes != 1000 || wire.MaxIOReads != 50 {
		t.Fatalf("encoded wire request wrong: %+v", wire)
	}
	s := &server{}
	back, err := wire.toQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != q.Kind || back.Target != q.Target || back.K != q.K ||
		!back.Strict || back.Timeout != q.Timeout || back.Budget != q.Budget ||
		back.Algorithm.String() != "lazy-EP" {
		t.Fatalf("round trip lost fields: %+v", back)
	}

	// Substrate-bound hints cannot travel.
	q.Algorithm = graphrnn.AlgorithmHubLabel(nil)
	if _, err := encodeShardQuery(0, q); err == nil {
		t.Fatal("hub-label hint crossed the wire")
	}
	// Edge targets cannot travel (node-resident serving).
	eq := graphrnn.Query{Kind: graphrnn.KindRNN, Target: graphrnn.EdgeLocation(1, 2, 0.5), K: 1}
	if _, err := encodeShardQuery(0, eq); err == nil {
		t.Fatal("edge target crossed the wire")
	}

	// Typed errors round trip by kind.
	for _, tc := range []struct {
		kind string
		base error
	}{
		{"deadline", graphrnn.ErrDeadlineExceeded},
		{"canceled", graphrnn.ErrCanceled},
		{"budget", graphrnn.ErrBudgetExceeded},
	} {
		if got := wireErrKind(fmt.Errorf("wrapped: %w", tc.base)); got != tc.kind {
			t.Errorf("wireErrKind(%v) = %q, want %q", tc.base, got, tc.kind)
		}
		err := decodeWireError(&shardWireResponse{Error: "shard says no", ErrorKind: tc.kind})
		if !errors.Is(err, tc.base) {
			t.Errorf("decoded %q error does not unwrap to %v", tc.kind, tc.base)
		}
		if err.Error() != "shard says no" {
			t.Errorf("decoded error lost the remote message: %q", err.Error())
		}
	}
	if err := decodeWireError(&shardWireResponse{Error: "hard failure"}); err == nil || graphrnn.IsExecErr(err) {
		t.Errorf("hard remote error decoded as %v", err)
	}
	if err := decodeWireError(&shardWireResponse{}); err != nil {
		t.Errorf("empty envelope decoded error %v", err)
	}
}
