// Command rnnserver serves RkNN queries over HTTP — the first serving
// surface of the system. It generates one of the paper's network families,
// places a random data set on it, and answers JSON queries concurrently on
// top of the thread-safe DB.
//
// Usage:
//
//	rnnserver [-addr :8080] [-family road|brite|grid] [-nodes N]
//	          [-density D] [-seed N] [-disk] [-buffer PAGES] [-maxk K]
//
// Endpoints:
//
//	GET  /rnn?node=N&k=K[&algo=eager|lazy|lazy-ep|eager-m|brute]
//	POST /rnn/batch   {"queries":[{"node":N,"k":K,"algo":"eager"},...],
//	                   "parallelism":0}
//	GET  /knn?node=N&k=K
//	GET  /stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"graphrnn"
)

type server struct {
	db      *graphrnn.DB
	ps      *graphrnn.NodePoints
	mat     *graphrnn.Materialization
	family  string
	started time.Time
	served  atomic.Int64
	errors  atomic.Int64
}

type statsJSON struct {
	NodesExpanded int64 `json:"nodes_expanded"`
	NodesScanned  int64 `json:"nodes_scanned"`
	RangeNN       int64 `json:"range_nn"`
	Verifications int64 `json:"verifications"`
	MatReads      int64 `json:"mat_reads"`
	HeapPushes    int64 `json:"heap_pushes"`
	HeapPops      int64 `json:"heap_pops"`
}

func toStatsJSON(s graphrnn.Stats) statsJSON {
	return statsJSON{
		NodesExpanded: s.NodesExpanded,
		NodesScanned:  s.NodesScanned,
		RangeNN:       s.RangeNN,
		Verifications: s.Verifications,
		MatReads:      s.MatReads,
		HeapPushes:    s.HeapPushes,
		HeapPops:      s.HeapPops,
	}
}

type rnnResponse struct {
	Node   graphrnn.NodeID    `json:"node"`
	K      int                `json:"k"`
	Algo   string             `json:"algo"`
	Points []graphrnn.PointID `json:"points"`
	Stats  statsJSON          `json:"stats"`
}

type errResponse struct {
	Error string `json:"error"`
}

func (s *server) algorithm(name string) (graphrnn.Algorithm, error) {
	switch name {
	case "", "eager":
		return graphrnn.Eager(), nil
	case "lazy":
		return graphrnn.Lazy(), nil
	case "lazy-ep", "lazyep":
		return graphrnn.LazyEP(), nil
	case "eager-m", "eagerm":
		if s.mat == nil {
			return graphrnn.Algorithm{}, fmt.Errorf("eager-m unavailable: server started with -maxk 0")
		}
		return graphrnn.EagerM(s.mat), nil
	case "brute", "brute-force":
		return graphrnn.BruteForce(), nil
	default:
		return graphrnn.Algorithm{}, fmt.Errorf("unknown algorithm %q", name)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.errors.Add(1)
	writeJSON(w, code, errResponse{Error: err.Error()})
}

func queryInts(r *http.Request) (node, k int, err error) {
	node, err = strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		return 0, 0, fmt.Errorf("bad or missing node parameter")
	}
	k = 1
	if v := r.URL.Query().Get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil {
			return 0, 0, fmt.Errorf("bad k parameter")
		}
	}
	return node, k, nil
}

func (s *server) handleRNN(w http.ResponseWriter, r *http.Request) {
	node, k, err := queryInts(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	algoName := r.URL.Query().Get("algo")
	algo, err := s.algorithm(algoName)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.db.RNN(s.ps, graphrnn.NodeID(node), k, algo)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.served.Add(1)
	points := res.Points
	if points == nil {
		points = []graphrnn.PointID{}
	}
	writeJSON(w, http.StatusOK, rnnResponse{
		Node: graphrnn.NodeID(node), K: k, Algo: algo.String(),
		Points: points, Stats: toStatsJSON(res.Stats),
	})
}

type batchRequest struct {
	Queries []struct {
		Node int    `json:"node"`
		K    int    `json:"k"`
		Algo string `json:"algo"`
	} `json:"queries"`
	Parallelism int `json:"parallelism"`
}

type batchEntry struct {
	Points []graphrnn.PointID `json:"points,omitempty"`
	Stats  *statsJSON         `json:"stats,omitempty"`
	Error  string             `json:"error,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	queries := make([]graphrnn.RNNQuery, len(req.Queries))
	for i, q := range req.Queries {
		algo, err := s.algorithm(q.Algo)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		k := q.K
		if k == 0 {
			k = 1
		}
		queries[i] = graphrnn.RNNQuery{Q: graphrnn.NodeID(q.Node), K: k, Algo: algo}
	}
	results := s.db.RNNBatch(s.ps, queries, &graphrnn.BatchOptions{Parallelism: req.Parallelism})
	out := make([]batchEntry, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i] = batchEntry{Error: res.Err.Error()}
			continue
		}
		st := toStatsJSON(res.Result.Stats)
		points := res.Result.Points
		if points == nil {
			points = []graphrnn.PointID{}
		}
		out[i] = batchEntry{Points: points, Stats: &st}
	}
	s.served.Add(int64(len(results)))
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

type neighborJSON struct {
	Point    graphrnn.PointID `json:"point"`
	Distance float64          `json:"distance"`
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	node, k, err := queryInts(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	nbrs, err := s.db.KNN(s.ps, graphrnn.NodeID(node), k)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.served.Add(1)
	out := make([]neighborJSON, len(nbrs))
	for i, n := range nbrs {
		out[i] = neighborJSON{Point: n.P, Distance: n.Distance}
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": node, "k": k, "neighbors": out})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	g := s.db.Graph()
	io := s.db.IOStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"family":         s.family,
		"nodes":          g.NumNodes(),
		"edges":          g.NumEdges(),
		"points":         s.ps.Len(),
		"queries_served": s.served.Load(),
		"query_errors":   s.errors.Load(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"io": map[string]int64{
			"reads": io.Reads, "hits": io.Hits, "writes": io.Writes,
		},
	})
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		family  = flag.String("family", "road", "network family: road, brite, grid")
		nodes   = flag.Int("nodes", 10000, "approximate node count")
		density = flag.Float64("density", 0.01, "data density |P|/|V|")
		seed    = flag.Int64("seed", 1, "seed")
		disk    = flag.Bool("disk", false, "serve the graph disk-backed through the LRU buffer")
		buffer  = flag.Int("buffer", 256, "LRU buffer capacity in pages (disk-backed only)")
		maxK    = flag.Int("maxk", 4, "materialize K-NN lists up to this k for eager-m (0 disables)")
	)
	flag.Parse()

	var (
		g   *graphrnn.Graph
		err error
	)
	switch *family {
	case "road":
		g, err = graphrnn.GenerateRoadNetwork(*seed, *nodes)
	case "brite":
		g, err = graphrnn.GenerateBrite(*seed, *nodes, 4)
	case "grid":
		g, err = graphrnn.GenerateGrid(*seed, *nodes, 4)
	default:
		fmt.Fprintf(os.Stderr, "unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	var opt *graphrnn.Options
	if *disk {
		opt = &graphrnn.Options{DiskBacked: true, BufferPages: *buffer}
	}
	db, err := graphrnn.Open(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	count := int(*density * float64(g.NumNodes()))
	if count < 2 {
		count = 2
	}
	ps, err := db.PlaceRandomNodePoints(*seed+1, count)
	if err != nil {
		log.Fatal(err)
	}
	srv := &server{db: db, ps: ps, family: *family, started: time.Now()}
	if *maxK > 0 {
		srv.mat, err = db.MaterializeNodePoints(ps, *maxK, nil)
		if err != nil {
			log.Fatal(err)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/rnn", srv.handleRNN)
	mux.HandleFunc("/rnn/batch", srv.handleBatch)
	mux.HandleFunc("/knn", srv.handleKNN)
	mux.HandleFunc("/stats", srv.handleStats)

	log.Printf("rnnserver: %s network |V|=%d |E|=%d |P|=%d, listening on %s",
		*family, g.NumNodes(), g.NumEdges(), ps.Len(), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
