// Command rnnserver serves RkNN queries over HTTP — the first serving
// surface of the system. It generates one of the paper's network families,
// places a random data set (and a smaller site set for bichromatic
// queries) on it, and answers JSON queries concurrently on top of the
// thread-safe DB. The hub-label substrate can be built at startup
// (-hublabel) or on demand (POST /index/hublabel); POST /query accepts one
// declarative request schema for every query shape, lets the planner pick
// the substrate (algo "auto"), and echoes the decision in the response.
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
//
// Every query runs under the request's context plus the -query-timeout
// deadline (tightenable per request with ?timeout=50ms): a disconnecting
// client cancels its query mid-expansion, and a query that outlives its
// deadline answers 504 instead of occupying a worker to completion.
//
// Usage:
//
//	rnnserver [-addr :8080] [-family road|brite|grid] [-nodes N]
//	          [-density D] [-sites N] [-seed N] [-disk] [-buffer PAGES]
//	          [-maxk K] [-hublabel K] [-build-workers N] [-label-compress]
//	          [-query-timeout D]
//	          [-shards N [-shard-index i | -shard-peers url1,url2,...]]
//	          [-shard-halo H]
//
// Hub-label builds run the pruned-landmark sweeps across -build-workers
// goroutines (default all cores; the labels are bit-identical at any
// worker count) and -label-compress serves the labels delta+varint
// encoded through the paged store, cutting label bytes in memory and on
// disk. Both apply to the startup build, POST /index/hublabel, and the
// per-shard builds in sharded mode.
//
// Sharded serving (-shards N) answers /query by scatter-gather: the node
// set is cut into N balanced regions, one engine and one buffer-pool
// tenant serve each region's points (plus a replicated halo ring of
// competitors), and the coordinator merges and re-verifies the per-shard
// candidates — answers stay bit-identical to unsharded serving. The
// default runs every shard in this process. For separate shard
// processes, start N servers with the same -family/-nodes/-seed flags
// (each process derives the identical graph, point set and partition)
// plus -shard-index i, and one coordinator with -shard-peers naming
// their base URLs in shard order; sub-queries travel over POST
// /shard/query with derived deadlines, and partial results survive
// per-shard timeouts. -maxk / -hublabel configure per-shard substrates
// in sharded mode, and the maintenance endpoints are disabled (a local
// mutation would disagree with peer processes).
//
// Endpoints:
//
//	POST /query       one declarative query:
//	                    {"kind":"rnn|bichromatic|continuous|knn",
//	                     "node":N | "route":[...],
//	                     "k":K, "algo":"auto|eager|lazy|lazy-ep|eager-m|hub-label|brute",
//	                     "timeout":"50ms"}
//	                  or a JSON array of them as a batch
//	                  [?timeout=50ms] [?parallelism=N] [?fail_fast=true]
//	                  (the schema also accepts "edge":{"u","v","pos"} targets,
//	                  but this server hosts node-resident point sets, so edge
//	                  targets answer a typed 400)
//	POST /mat/insert  {"node":N}    place a point and repair the K-NN lists
//	POST /mat/delete  {"point":P}   remove a point and repair the lists
//	                  [?timeout=50ms] — maintenance is journaled and atomic:
//	                  an operation abandoned by the deadline (504) or a
//	                  disconnecting client is rolled back, never left
//	                  partially applied, so the endpoints are safe under
//	                  per-request deadlines. Maintenance takes the write
//	                  half of a server RW-lock; queries take the read half.
//	                  A successful mutation repairs the attached hub-label
//	                  index in place (point-level insert/delete on its
//	                  reverse lists); only if that repair fails is the
//	                  index dropped, and then it is rebuilt outside the
//	                  write lock and republished under the read half, so
//	                  queries are never blocked behind a rebuild.
//	POST /index/hublabel   {"maxk":K}   build/replace the hub-label index
//	GET  /healthz
//	GET  /stats            shared buffer pool (per-tenant) + planner decisions
//	                       + maintenance counters and repair state
//
// Deprecated endpoints, kept as shims over the same engine:
//
//	GET  /rnn?node=N&k=K[&algo=...][&timeout=50ms]
//	POST /rnn/batch   {"queries":[{"node":N,"k":K,"algo":"eager"},...],
//	                   "parallelism":0, "fail_fast":false}
//	GET  /knn?node=N&k=K[&timeout=50ms]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"graphrnn"
)

type server struct {
	db *graphrnn.DB
	ps *graphrnn.NodePoints
	// sites is the competitor set bichromatic /query requests run against
	// (nil when the server starts with -sites 0).
	sites   *graphrnn.NodePoints
	mat     *graphrnn.Materialization
	family  string
	started time.Time
	served  atomic.Int64
	errors  atomic.Int64
	// mu serializes maintenance (write lock) against queries (read lock):
	// the DB contract requires that no query runs while the point set and
	// lists mutate. Maintenance ops are short — journaled, deadline-bounded
	// and rolled back on abandonment — so writers never hold queries long.
	mu sync.RWMutex
	// maintenance counters for /stats.
	matInserts atomic.Int64
	matDeletes atomic.Int64
	// planner tallies the substrate decisions of /query for /stats.
	planner plannerCounters
	// queryTimeout is the default per-query deadline (-query-timeout);
	// zero means none. A request may tighten (never widen) it with a
	// ?timeout= parameter. Expired queries answer 504.
	queryTimeout time.Duration
	timeouts     atomic.Int64

	hub      atomic.Pointer[graphrnn.HubLabelIndex]
	hubBuild sync.Mutex // one build at a time
	// buildOpts configure every hub-label construction (startup,
	// POST /index/hublabel, repair-failure rebuilds, per-shard builds).
	buildOpts graphrnn.BuildOptions
	// hub-label maintenance counters for /stats.
	hubRepairs     atomic.Int64
	hubRepairFails atomic.Int64
	hubRebuilds    atomic.Int64

	// sharded, when non-nil, routes /query through scatter-gather (see
	// sharded.go in the library and shard_handler.go here); shardIndex >= 0
	// marks a shard-process role that rejects misrouted /shard/query
	// sub-queries; shardRole names the mode for logs and /stats.
	sharded    *graphrnn.Sharded
	shardIndex int
	shardRole  string
}

// close releases the server's substrates in dependency order — sharded
// engines, the hub-label index, the materialization, then the DB itself —
// detaching their buffer-pool tenants. Requests must have drained. It
// returns the first error and keeps going.
func (s *server) close() error {
	var first error
	if s.sharded != nil {
		if err := s.sharded.Close(); first == nil {
			first = err
		}
		s.sharded = nil
	}
	if idx := s.hub.Swap(nil); idx != nil {
		if err := idx.Close(); first == nil {
			first = err
		}
	}
	if s.mat != nil {
		if err := s.mat.Close(); first == nil {
			first = err
		}
		s.mat = nil
	}
	if s.db != nil {
		if err := s.db.Close(); first == nil {
			first = err
		}
		s.db = nil
	}
	return first
}

// queryOptions resolves the per-query deadline of one request: the server
// default, optionally tightened by a ?timeout= duration parameter.
func (s *server) queryOptions(r *http.Request) (*graphrnn.QueryOptions, error) {
	timeout := s.queryTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad timeout parameter %q (want a positive Go duration, e.g. 50ms)", v)
		}
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}
	if timeout == 0 {
		return nil, nil
	}
	return &graphrnn.QueryOptions{Timeout: timeout}, nil
}

// failQuery maps a query error onto an HTTP status: 504 for a deadline
// that expired server-side, 400 for everything else (bad parameters,
// client-canceled requests included — the client is gone anyway).
func (s *server) failQuery(w http.ResponseWriter, err error) {
	if errors.Is(err, graphrnn.ErrDeadlineExceeded) {
		s.timeouts.Add(1)
		s.fail(w, http.StatusGatewayTimeout, err)
		return
	}
	s.fail(w, http.StatusBadRequest, err)
}

type statsJSON struct {
	NodesExpanded int64 `json:"nodes_expanded"`
	NodesScanned  int64 `json:"nodes_scanned"`
	RangeNN       int64 `json:"range_nn"`
	Verifications int64 `json:"verifications"`
	MatReads      int64 `json:"mat_reads"`
	LabelReads    int64 `json:"label_reads"`
	LabelEntries  int64 `json:"label_entries"`
	HeapPushes    int64 `json:"heap_pushes"`
	HeapPops      int64 `json:"heap_pops"`
}

func toStatsJSON(s graphrnn.Stats) statsJSON {
	return statsJSON{
		NodesExpanded: s.NodesExpanded,
		NodesScanned:  s.NodesScanned,
		RangeNN:       s.RangeNN,
		Verifications: s.Verifications,
		MatReads:      s.MatReads,
		LabelReads:    s.LabelReads,
		LabelEntries:  s.LabelEntries,
		HeapPushes:    s.HeapPushes,
		HeapPops:      s.HeapPops,
	}
}

type rnnResponse struct {
	Node   graphrnn.NodeID    `json:"node"`
	K      int                `json:"k"`
	Algo   string             `json:"algo"`
	Points []graphrnn.PointID `json:"points"`
	Stats  statsJSON          `json:"stats"`
}

type errResponse struct {
	Error string `json:"error"`
}

func (s *server) algorithm(name string) (graphrnn.Algorithm, error) {
	switch name {
	case "", "eager":
		return graphrnn.Eager(), nil
	case "lazy":
		return graphrnn.Lazy(), nil
	case "lazy-ep", "lazyep":
		return graphrnn.LazyEP(), nil
	case "eager-m", "eagerm":
		if s.mat == nil {
			return graphrnn.Algorithm{}, fmt.Errorf("eager-m unavailable: server started with -maxk 0")
		}
		return graphrnn.EagerM(s.mat), nil
	case "hub-label", "hublabel", "hub":
		idx := s.hub.Load()
		if idx == nil {
			return graphrnn.Algorithm{}, fmt.Errorf("hub-label unavailable: build it with POST /index/hublabel or start with -hublabel K")
		}
		return graphrnn.HubLabel(idx), nil
	case "brute", "brute-force":
		return graphrnn.BruteForce(), nil
	default:
		return graphrnn.Algorithm{}, fmt.Errorf("unknown algorithm %q", name)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.errors.Add(1)
	writeJSON(w, code, errResponse{Error: err.Error()})
}

func queryInts(r *http.Request) (node, k int, err error) {
	node, err = strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		return 0, 0, fmt.Errorf("bad or missing node parameter")
	}
	k = 1
	if v := r.URL.Query().Get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil {
			return 0, 0, fmt.Errorf("bad k parameter")
		}
	}
	return node, k, nil
}

func (s *server) handleRNN(w http.ResponseWriter, r *http.Request) {
	node, k, err := queryInts(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	algoName := r.URL.Query().Get("algo")
	algo, err := s.algorithm(algoName)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	opt, err := s.queryOptions(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	res, err := s.db.RNNContext(r.Context(), s.ps, graphrnn.NodeID(node), k, algo, opt)
	s.mu.RUnlock()
	if err != nil {
		s.failQuery(w, err)
		return
	}
	s.served.Add(1)
	points := res.Points
	if points == nil {
		points = []graphrnn.PointID{}
	}
	writeJSON(w, http.StatusOK, rnnResponse{
		Node: graphrnn.NodeID(node), K: k, Algo: algo.String(),
		Points: points, Stats: toStatsJSON(res.Stats),
	})
}

type batchRequest struct {
	Queries []struct {
		Node int    `json:"node"`
		K    int    `json:"k"`
		Algo string `json:"algo"`
	} `json:"queries"`
	Parallelism int `json:"parallelism"`
	// FailFast abandons the rest of the batch after the first error.
	FailFast bool `json:"fail_fast"`
}

type batchEntry struct {
	Points []graphrnn.PointID `json:"points,omitempty"`
	Stats  *statsJSON         `json:"stats,omitempty"`
	Error  string             `json:"error,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	queries := make([]graphrnn.RNNQuery, len(req.Queries))
	for i, q := range req.Queries {
		algo, err := s.algorithm(q.Algo)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		k := q.K
		if k == 0 {
			k = 1
		}
		queries[i] = graphrnn.RNNQuery{Q: graphrnn.NodeID(q.Node), K: k, Algo: algo}
	}
	var perQuery *graphrnn.QueryOptions
	if s.queryTimeout > 0 {
		perQuery = &graphrnn.QueryOptions{Timeout: s.queryTimeout}
	}
	s.mu.RLock()
	results, workers := s.db.RNNBatchContext(r.Context(), s.ps, queries, &graphrnn.BatchOptions{
		Parallelism: req.Parallelism,
		FailFast:    req.FailFast,
		PerQuery:    perQuery,
	})
	s.mu.RUnlock()
	out := make([]batchEntry, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i] = batchEntry{Error: res.Err.Error()}
			continue
		}
		st := toStatsJSON(res.Result.Stats)
		points := res.Result.Points
		if points == nil {
			points = []graphrnn.PointID{}
		}
		out[i] = batchEntry{Points: points, Stats: &st}
	}
	s.served.Add(int64(len(results)))
	writeJSON(w, http.StatusOK, map[string]any{"results": out, "workers": workers})
}

type neighborJSON struct {
	Point    graphrnn.PointID `json:"point"`
	Distance float64          `json:"distance"`
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	node, k, err := queryInts(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	opt, err := s.queryOptions(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	nbrs, err := s.db.KNNContext(r.Context(), s.ps, graphrnn.NodeID(node), k, opt)
	s.mu.RUnlock()
	if err != nil {
		s.failQuery(w, err)
		return
	}
	s.served.Add(1)
	out := make([]neighborJSON, len(nbrs))
	for i, n := range nbrs {
		out[i] = neighborJSON{Point: n.P, Distance: n.Distance}
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": node, "k": k, "neighbors": out})
}

type hubBuildRequest struct {
	MaxK int `json:"maxk"`
}

// handleHubBuild builds (or replaces) the hub-label index. The build runs
// on the request goroutine — label construction is CPU-bound and can take
// seconds on large graphs — and queries keep using the previous index (or
// the expansion algorithms) until the swap. Builds are not cancelable: a
// shutdown arriving mid-build drains until the grace period expires, then
// the listener is force-closed (see main).
func (s *server) handleHubBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if s.sharded != nil {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("global hub-label builds unavailable in sharded mode: start with -hublabel K to build per-shard indexes"))
		return
	}
	req := hubBuildRequest{MaxK: 4}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	if req.MaxK < 1 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("maxk must be >= 1, got %d", req.MaxK))
		return
	}
	s.hubBuild.Lock()
	defer s.hubBuild.Unlock()
	// The build reads the point set; hold the query (read) lock so
	// maintenance cannot mutate it mid-build. The new index is published
	// under the same lock hold: a maintenance op can only interleave
	// after the Store, and then its hub repair/retire path treats this
	// index like any other attached one.
	s.mu.RLock()
	idx, err := s.db.BuildHubLabelIndex(s.ps, req.MaxK, s.hubOptions())
	if err == nil {
		s.hub.Store(idx)
	}
	s.mu.RUnlock()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	bst := idx.BuildStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"maxk":            idx.MaxK(),
		"label_entries":   idx.LabelEntries(),
		"avg_label_size":  idx.AverageLabelSize(),
		"build_seconds":   bst.WallSeconds,
		"build_workers":   bst.Workers,
		"build_batches":   bst.Batches,
		"pruned_visits":   bst.Pruned,
		"label_bytes":     bst.LabelBytes,
		"raw_label_bytes": bst.RawLabelBytes,
	})
}

// hubOptions derives the HubLabelOptions every server-side build uses.
func (s *server) hubOptions() *graphrnn.HubLabelOptions {
	return &graphrnn.HubLabelOptions{Build: s.buildOpts}
}

// rebuildHub rebuilds the hub-label index after a failed in-place repair:
// outside the maintenance write lock, published under the read half (the
// pattern the journaled materialization maintenance established), so
// queries keep flowing on the remaining substrates while the labeling
// reconstructs. Returns whether the rebuild succeeded.
func (s *server) rebuildHub(maxK int) bool {
	s.hubBuild.Lock()
	defer s.hubBuild.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, err := s.db.BuildHubLabelIndex(s.ps, maxK, s.hubOptions())
	if err != nil {
		log.Printf("rnnserver: hub-label rebuild after failed repair: %v", err)
		return false
	}
	s.hub.Store(idx)
	s.hubRebuilds.Add(1)
	return true
}

type matInsertRequest struct {
	Node int `json:"node"`
}

type matDeleteRequest struct {
	Point int `json:"point"`
}

// matResponse is one answered maintenance operation.
type matResponse struct {
	Point       graphrnn.PointID `json:"point"`
	Points      int              `json:"points"`
	RepairState string           `json:"repair_state"`
	Stats       statsJSON        `json:"stats"`
	// HubLabelRepaired reports that the attached hub-label index was
	// repaired in place (point-level insert/delete on its reverse lists)
	// — the common path; the index keeps serving without a rebuild.
	HubLabelRepaired bool `json:"hub_label_repaired,omitempty"`
	// HubLabelRebuilt reports that an in-place repair failed and the
	// index was rebuilt from scratch (outside the write lock).
	HubLabelRebuilt bool `json:"hub_label_rebuilt,omitempty"`
	// HubLabelDropped reports that the index was invalidated and could
	// not be rebuilt; rebuild it with POST /index/hublabel when needed.
	HubLabelDropped bool `json:"hub_label_dropped,omitempty"`
}

// maintenance frames one materialization maintenance request: it decodes
// the body into req, takes the write lock (maintenance is exclusive
// against queries), runs op under the request's deadline, and answers with
// the repair state. An operation abandoned by cancellation or deadline is
// rolled back by the journal before the error surfaces, so a 504 here
// means "not applied", never "partially applied" — which is what makes
// this endpoint safe to expose at all.
//
// The hub-label index maintains its own reverse lists over the same point
// set, so a successful mutation leaves it stale. The common path repairs
// the attached index in place (a point-level insert/delete on its lists)
// while still under the write lock. If the repair fails the index is
// dropped — queries fall back to eager-M / expansion, never serve stale
// answers — and a full rebuild runs *outside* the write lock, published
// under the read lock once ready (the PR 5 pattern for /index/hublabel).
func (s *server) maintenance(w http.ResponseWriter, r *http.Request, req any,
	op func(opt *graphrnn.QueryOptions) (graphrnn.PointID, graphrnn.Stats, error),
	repair func(idx *graphrnn.HubLabelIndex, p graphrnn.PointID) error) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if s.sharded != nil {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("maintenance unavailable in sharded mode: every process derives its point set from the startup flags and a local mutation would disagree with its peers"))
		return
	}
	if s.mat == nil {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("maintenance unavailable: server started with -maxk 0"))
		return
	}
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	opt, err := s.queryOptions(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	p, st, opErr := op(opt)
	var repaired, dropped bool
	rebuildK := 0
	if opErr == nil {
		if idx := s.hub.Load(); idx != nil {
			if rerr := repair(idx, p); rerr == nil {
				repaired = true
				s.hubRepairs.Add(1)
			} else {
				// Repair could not bring the index in sync: drop it now
				// (under the lock, so no query ever sees the stale lists)
				// and rebuild after we release the write lock.
				log.Printf("rnnserver: hub-label repair failed, rebuilding: %v", rerr)
				rebuildK = idx.MaxK()
				s.hub.CompareAndSwap(idx, nil)
				s.db.AttachHubLabel(nil)
				dropped = true
				s.hubRepairFails.Add(1)
			}
		}
	}
	// Snapshot the response fields before releasing the write lock: a
	// concurrent maintenance request must not race the reads.
	count := s.ps.Len()
	state := s.mat.RepairState().String()
	s.mu.Unlock()
	if opErr != nil {
		s.failQuery(w, opErr)
		return
	}
	rebuilt := false
	if dropped {
		rebuilt = s.rebuildHub(rebuildK)
	}
	writeJSON(w, http.StatusOK, matResponse{
		Point:            p,
		Points:           count,
		RepairState:      state,
		Stats:            toStatsJSON(st),
		HubLabelRepaired: repaired,
		HubLabelRebuilt:  rebuilt,
		HubLabelDropped:  dropped && !rebuilt,
	})
}

// handleMatInsert serves POST /mat/insert {"node":N}: place a new point on
// node N and repair the materialized K-NN lists (Section 4.1 insertion).
func (s *server) handleMatInsert(w http.ResponseWriter, r *http.Request) {
	var req matInsertRequest
	s.maintenance(w, r, &req, func(opt *graphrnn.QueryOptions) (graphrnn.PointID, graphrnn.Stats, error) {
		p, st, err := s.mat.InsertNodeContext(r.Context(), graphrnn.NodeID(req.Node), opt)
		if err == nil {
			s.matInserts.Add(1)
		}
		return p, st, err
	}, func(idx *graphrnn.HubLabelIndex, p graphrnn.PointID) error {
		_, err := idx.RepairInsert(p, graphrnn.NodeID(req.Node))
		return err
	})
}

// handleMatDelete serves POST /mat/delete {"point":P}: remove point P and
// repair the lists with the border-node algorithm (Fig 10).
func (s *server) handleMatDelete(w http.ResponseWriter, r *http.Request) {
	var req matDeleteRequest
	s.maintenance(w, r, &req, func(opt *graphrnn.QueryOptions) (graphrnn.PointID, graphrnn.Stats, error) {
		st, err := s.mat.DeletePointContext(r.Context(), graphrnn.PointID(req.Point), opt)
		if err == nil {
			s.matDeletes.Add(1)
		}
		return graphrnn.PointID(req.Point), st, err
	}, func(idx *graphrnn.HubLabelIndex, p graphrnn.PointID) error {
		_, err := idx.RepairDelete(p)
		return err
	})
}

// handleHealthz is the liveness/readiness probe: by the time the listener
// is up the graph and point set are built, so a 200 means queryable.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Point counts and the repair state mutate under the maintenance
	// write lock; snapshot them under the read half.
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.db.Graph()
	io := s.db.IOStats()
	pool := s.db.PoolStats()
	tenants := make([]map[string]any, 0, len(pool.Tenants))
	for _, t := range pool.Tenants {
		tenants = append(tenants, map[string]any{
			"name": t.Name, "reads": t.Reads, "hits": t.Hits,
			"writes": t.Writes, "evictions": t.Evictions,
			"frames": t.Frames, "quota": t.Quota,
		})
	}
	stats := map[string]any{
		"family":         s.family,
		"nodes":          g.NumNodes(),
		"edges":          g.NumEdges(),
		"points":         s.ps.Len(),
		"queries_served": s.served.Load(),
		"query_errors":   s.errors.Load(),
		"query_timeouts": s.timeouts.Load(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"io": map[string]int64{
			"reads": io.Reads, "hits": io.Hits, "writes": io.Writes,
		},
		"pool": map[string]any{
			"capacity":  pool.Capacity,
			"reads":     pool.Reads,
			"hits":      pool.Hits,
			"writes":    pool.Writes,
			"evictions": pool.Evictions,
			"hit_rate":  pool.HitRate(),
			"tenants":   tenants,
		},
		"planner": s.planner.snapshot(),
	}
	if s.sites != nil {
		stats["sites"] = s.sites.Len()
	}
	if s.sharded != nil {
		stats["shards"] = shardStatsSection(s.shardRole, s.sharded.Stats())
	}
	if s.mat != nil {
		stats["mat"] = map[string]any{
			"maxk":         s.mat.MaxK(),
			"inserts":      s.matInserts.Load(),
			"deletes":      s.matDeletes.Load(),
			"repair_state": s.mat.RepairState().String(),
		}
	}
	if idx := s.hub.Load(); idx != nil {
		bst := idx.BuildStats()
		stored, raw := idx.LabelBytes()
		stats["hublabel"] = map[string]any{
			"maxk":            idx.MaxK(),
			"label_entries":   idx.LabelEntries(),
			"avg_label_size":  idx.AverageLabelSize(),
			"compressed":      idx.Compressed(),
			"label_bytes":     stored,
			"raw_label_bytes": raw,
			"build_seconds":   bst.WallSeconds,
			"build_workers":   bst.Workers,
			"build_batches":   bst.Batches,
			"pruned_visits":   bst.Pruned,
			"resweeps":        bst.Resweeps,
			"repairs":         s.hubRepairs.Load(),
			"repair_failures": s.hubRepairFails.Load(),
			"rebuilds":        s.hubRebuilds.Load(),
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		family   = flag.String("family", "road", "network family: road, brite, grid")
		nodes    = flag.Int("nodes", 10000, "approximate node count")
		density  = flag.Float64("density", 0.01, "data density |P|/|V|")
		seed     = flag.Int64("seed", 1, "seed")
		disk     = flag.Bool("disk", false, "serve the graph disk-backed through the LRU buffer")
		buffer   = flag.Int("buffer", 256, "LRU buffer capacity in pages (disk-backed only)")
		sites    = flag.Int("sites", -1, "site set size for bichromatic /query requests (-1 = points/10, 0 disables)")
		maxK     = flag.Int("maxk", 4, "materialize K-NN lists up to this k for eager-m (0 disables; sharded: per-shard MatK)")
		hubLabel = flag.Int("hublabel", 0, "build the hub-label index up to this k at startup (0 defers to POST /index/hublabel; sharded: per-shard HubLabelK)")
		queryTO  = flag.Duration("query-timeout", 0, "per-query deadline; expired queries answer 504 (0 disables)")

		buildWorkers  = flag.Int("build-workers", 0, "worker goroutines for hub-label construction (0 = all cores, 1 = sequential)")
		labelCompress = flag.Bool("label-compress", false, "store hub labels delta+varint compressed through the page store")

		shards     = flag.Int("shards", 0, "serve /query by scatter-gather over N shards (0 = unsharded)")
		shardIndex = flag.Int("shard-index", -1, "shard-process role: reject /shard/query sub-queries for other shard indexes (-1 serves any)")
		shardPeers = flag.String("shard-peers", "", "coordinator role: comma-separated shard process base URLs, one per shard, in shard order")
		shardHalo  = flag.Int("shard-halo", 0, "halo ring depth in hops (0 = default 1, negative disables the halo)")
	)
	flag.Parse()

	var (
		g   *graphrnn.Graph
		err error
	)
	switch *family {
	case "road":
		g, err = graphrnn.GenerateRoadNetwork(*seed, *nodes)
	case "brite":
		g, err = graphrnn.GenerateBrite(*seed, *nodes, 4)
	case "grid":
		g, err = graphrnn.GenerateGrid(*seed, *nodes, 4)
	default:
		fmt.Fprintf(os.Stderr, "unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	var opt *graphrnn.Options
	if *disk {
		opt = &graphrnn.Options{DiskBacked: true, BufferPages: *buffer}
	}
	db, err := graphrnn.Open(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	count := int(*density * float64(g.NumNodes()))
	if count < 2 {
		count = 2
	}
	ps, err := db.PlaceRandomNodePoints(*seed+1, count)
	if err != nil {
		log.Fatal(err)
	}
	srv := &server{db: db, ps: ps, family: *family, started: time.Now(), queryTimeout: *queryTO, shardIndex: -1}
	// Flag value 0 means "use every core"; the library spells that -1
	// (0 there falls back to sequential).
	srv.buildOpts = graphrnn.BuildOptions{Workers: *buildWorkers, Compression: *labelCompress}
	if *buildWorkers == 0 {
		srv.buildOpts.Workers = -1
	}
	nsites := *sites
	if nsites < 0 {
		nsites = ps.Len() / 10
		if nsites < 2 {
			nsites = 2
		}
	}
	if nsites > 0 {
		srv.sites, err = db.PlaceRandomNodePoints(*seed+2, nsites)
		if err != nil {
			log.Fatal(err)
		}
	}

	var peers []string
	if *shardPeers != "" {
		peers = strings.Split(*shardPeers, ",")
	}
	switch {
	case *shards == 0 && (*shardIndex >= 0 || len(peers) > 0):
		fmt.Fprintln(os.Stderr, "-shard-index and -shard-peers require -shards N")
		os.Exit(2)
	case *shards > 0 && *shardIndex >= 0 && len(peers) > 0:
		fmt.Fprintln(os.Stderr, "-shard-index (shard process) and -shard-peers (coordinator) are mutually exclusive")
		os.Exit(2)
	case *shards > 0 && len(peers) > 0 && len(peers) != *shards:
		fmt.Fprintf(os.Stderr, "-shard-peers names %d peers, -shards %d\n", len(peers), *shards)
		os.Exit(2)
	case *shards > 0 && *shardIndex >= *shards:
		fmt.Fprintf(os.Stderr, "-shard-index %d out of range for -shards %d\n", *shardIndex, *shards)
		os.Exit(2)
	}

	if *shards > 0 {
		// Sharded mode: every process derives the same partition (and so
		// the same global point-id space) from the shared flags; -maxk and
		// -hublabel configure the per-shard substrates, and the global
		// materialization endpoints are disabled (mutating one process's
		// point set would silently disagree with its peers).
		shOpt := &graphrnn.ShardOptions{
			Shards: *shards, HaloDepth: *shardHalo, Seed: *seed, Sites: srv.sites,
			HubLabelK: *hubLabel, MatK: *maxK,
			DiskBacked: *disk, BufferPages: *buffer,
			Build: srv.buildOpts,
		}
		srv.shardRole = "in-process"
		if len(peers) > 0 {
			srv.shardRole = "coordinator"
			shOpt.Runner = newHTTPShardRunner(peers)
		} else if *shardIndex >= 0 {
			srv.shardRole = fmt.Sprintf("shard %d", *shardIndex)
			srv.shardIndex = *shardIndex
		}
		start := time.Now()
		srv.sharded, err = db.Shard(ps, shOpt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("rnnserver: sharded serving (%s) over %d shards built in %v",
			srv.shardRole, *shards, time.Since(start).Round(time.Millisecond))
	} else {
		if *maxK > 0 {
			srv.mat, err = db.MaterializeNodePoints(ps, *maxK, nil)
			if err != nil {
				log.Fatal(err)
			}
		}
		if *hubLabel > 0 {
			idx, err := db.BuildHubLabelIndex(ps, *hubLabel, srv.hubOptions())
			if err != nil {
				log.Fatal(err)
			}
			srv.hub.Store(idx)
			bst := idx.BuildStats()
			log.Printf("rnnserver: hub-label index built in %.3fs with %d workers (%d entries, %.1f avg label)",
				bst.WallSeconds, bst.Workers, idx.LabelEntries(), idx.AverageLabelSize())
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", srv.handleQuery)
	mux.HandleFunc("/rnn", srv.handleRNN)
	mux.HandleFunc("/rnn/batch", srv.handleBatch)
	mux.HandleFunc("/knn", srv.handleKNN)
	mux.HandleFunc("/mat/insert", srv.handleMatInsert)
	mux.HandleFunc("/mat/delete", srv.handleMatDelete)
	mux.HandleFunc("/index/hublabel", srv.handleHubBuild)
	mux.HandleFunc("/healthz", srv.handleHealthz)
	mux.HandleFunc("/stats", srv.handleStats)
	if srv.sharded != nil && srv.shardRole != "coordinator" {
		// Any process with local shard engines can answer sub-queries — a
		// coordinator (pure, no engines) cannot and does not mount the
		// endpoint.
		mux.HandleFunc("/shard/query", srv.handleShardQuery)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("rnnserver: %s network |V|=%d |E|=%d |P|=%d, listening on %s",
			*family, g.NumNodes(), g.NumEdges(), ps.Len(), *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Print("rnnserver: shutting down, draining in-flight requests")
	// 30s covers any query and all but the largest hub-label builds; a
	// request that outlives the grace period (an in-flight build on a
	// paper-scale graph) is cut off with a forced close and an honest
	// non-zero exit.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("rnnserver: drain incomplete after grace period (%v); forcing close", err)
		httpSrv.Close()
		os.Exit(1)
	}
	if err := srv.close(); err != nil {
		log.Printf("rnnserver: substrate release: %v", err)
	}
	log.Print("rnnserver: stopped cleanly")
}
