package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"graphrnn"
)

// This file is the HTTP half of scatter-gather serving: the thin shard
// protocol that lets shard engines run as separate processes behind one
// coordinator. A shard process (started with the same -family/-nodes/
// -seed flags as the coordinator, so graph, point ids and partition agree
// deterministically) serves POST /shard/query; the coordinator (started
// with -shard-peers) implements graphrnn.ShardRunner over it. The
// coordinator re-verifies every candidate, so a buggy or hostile peer can
// cost work but never corrupt an answer.

// shardWireRequest is one shard sub-query on the wire. The coordinator
// derives it from the already-planned sub-query (deadline shrunk by the
// coordinator's reserve), so unlike /query there is no server-side
// tightening here — options apply as given.
type shardWireRequest struct {
	// Shard is the shard index the sub-query addresses; a process started
	// with -shard-index rejects other indexes as misrouted.
	Shard int `json:"shard"`
	// Kind: "rnn", "bichromatic" or "continuous" (knn never fans out).
	Kind  string `json:"kind"`
	Node  *int   `json:"node,omitempty"`
	Route []int  `json:"route,omitempty"`
	K     int    `json:"k"`
	// Algo is a substrate-free hint ("eager", "lazy", "lazy-ep", "brute");
	// empty lets each shard's planner choose. Substrate-bound hints do not
	// travel (a remote process cannot share an index pointer).
	Algo   string `json:"algo,omitempty"`
	Strict bool   `json:"strict,omitempty"`
	// TimeoutNS is the derived per-shard deadline in nanoseconds;
	// MaxNodes/MaxIOReads carry the work budget. Zero means unbounded.
	TimeoutNS  int64 `json:"timeout_ns,omitempty"`
	MaxNodes   int64 `json:"max_nodes,omitempty"`
	MaxIOReads int64 `json:"max_io_reads,omitempty"`
}

// shardWireResponse is the 200 envelope of one executed sub-query. Typed
// execution errors ride inside it (error + error_kind) next to the
// partial candidates, so a shard cut short by its deadline still
// contributes what it confirmed; protocol errors answer plain 400s.
type shardWireResponse struct {
	Candidates []graphrnn.PointID `json:"candidates"`
	Stats      statsJSON          `json:"stats"`
	Error      string             `json:"error,omitempty"`
	// ErrorKind names the typed execution error ("deadline", "canceled",
	// "budget") so the coordinator can rebuild it across the process
	// boundary; empty with a non-empty Error means a hard error.
	ErrorKind string `json:"error_kind,omitempty"`
}

// wireAlgo maps an Algorithm hint onto its wire name. Substrate-bound
// hints (eager-M, hub-label) are process-local pointers and cannot
// travel; shard processes attach their own substrates and their planners
// pick them when the hint is empty.
func wireAlgo(a graphrnn.Algorithm) (string, error) {
	switch name := a.String(); name {
	case "auto":
		return "", nil
	case "eager", "lazy":
		return name, nil
	case "lazy-EP":
		return "lazy-ep", nil
	case "brute-force":
		return "brute", nil
	default:
		return "", fmt.Errorf("algorithm hint %q does not travel over the shard wire; use auto and let each shard's planner pick its own substrate", name)
	}
}

// encodeShardQuery lifts a derived sub-query onto the wire.
func encodeShardQuery(sh int, q graphrnn.Query) (*shardWireRequest, error) {
	req := &shardWireRequest{
		Shard: sh, Kind: q.Kind.String(), K: q.K, Strict: q.Strict,
		TimeoutNS:  int64(q.Timeout),
		MaxNodes:   q.Budget.MaxNodes,
		MaxIOReads: q.Budget.MaxIOReads,
	}
	algo, err := wireAlgo(q.Algorithm)
	if err != nil {
		return nil, err
	}
	req.Algo = algo
	switch q.Kind {
	case graphrnn.KindContinuous:
		req.Route = make([]int, len(q.Route))
		for i, n := range q.Route {
			req.Route[i] = int(n)
		}
	default:
		if q.Target.U != q.Target.V {
			return nil, fmt.Errorf("edge targets do not travel over the shard wire (node-resident serving)")
		}
		n := int(q.Target.U)
		req.Node = &n
	}
	return req, nil
}

// toQuery rebuilds the sub-query on the shard side. Points and Sites stay
// nil: RunShard resolves them to the shard's own sets.
func (r shardWireRequest) toQuery(s *server) (graphrnn.Query, error) {
	q := graphrnn.Query{K: r.K, Strict: r.Strict}
	switch r.Kind {
	case "rnn":
		q.Kind = graphrnn.KindRNN
	case "bichromatic":
		q.Kind = graphrnn.KindBichromatic
	case "continuous":
		q.Kind = graphrnn.KindContinuous
	default:
		return q, fmt.Errorf("kind %q does not fan out over shards", r.Kind)
	}
	if q.Kind == graphrnn.KindContinuous {
		if len(r.Route) == 0 {
			return q, fmt.Errorf("continuous sub-queries require a route")
		}
		q.Route = make([]graphrnn.NodeID, len(r.Route))
		for i, n := range r.Route {
			q.Route[i] = graphrnn.NodeID(n)
		}
	} else {
		if r.Node == nil {
			return q, fmt.Errorf("missing node target")
		}
		q.Target = graphrnn.NodeLocation(graphrnn.NodeID(*r.Node))
	}
	switch r.Algo {
	case "", "auto":
	case "eager", "lazy", "lazy-ep", "brute":
		algo, err := s.algorithm(r.Algo)
		if err != nil {
			return q, err
		}
		q.Algorithm = algo
	default:
		return q, fmt.Errorf("algorithm hint %q does not travel over the shard wire", r.Algo)
	}
	if r.TimeoutNS < 0 {
		return q, fmt.Errorf("negative timeout_ns")
	}
	q.Timeout = time.Duration(r.TimeoutNS)
	q.Budget = graphrnn.Budget{MaxNodes: r.MaxNodes, MaxIOReads: r.MaxIOReads}
	return q, nil
}

// wireErrKind names a typed execution error for the envelope.
func wireErrKind(err error) string {
	switch {
	case errors.Is(err, graphrnn.ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, graphrnn.ErrCanceled):
		return "canceled"
	case errors.Is(err, graphrnn.ErrBudgetExceeded):
		return "budget"
	default:
		return ""
	}
}

// wireErr is a remote shard's error rebuilt on the coordinator: the
// remote message, unwrapping to the typed execution error it named, so
// errors.Is(err, ErrDeadlineExceeded) keeps working across the process
// boundary (a remote shard timeout still answers 504).
type wireErr struct {
	msg  string
	base error
}

func (e *wireErr) Error() string { return e.msg }
func (e *wireErr) Unwrap() error { return e.base }

// decodeWireError rebuilds the envelope's error, if any.
func decodeWireError(resp *shardWireResponse) error {
	if resp.Error == "" {
		return nil
	}
	switch resp.ErrorKind {
	case "deadline":
		return &wireErr{msg: resp.Error, base: graphrnn.ErrDeadlineExceeded}
	case "canceled":
		return &wireErr{msg: resp.Error, base: graphrnn.ErrCanceled}
	case "budget":
		return &wireErr{msg: resp.Error, base: graphrnn.ErrBudgetExceeded}
	default:
		return errors.New(resp.Error)
	}
}

func fromStatsJSON(s statsJSON) graphrnn.Stats {
	return graphrnn.Stats{
		NodesExpanded: s.NodesExpanded,
		NodesScanned:  s.NodesScanned,
		RangeNN:       s.RangeNN,
		Verifications: s.Verifications,
		MatReads:      s.MatReads,
		LabelReads:    s.LabelReads,
		LabelEntries:  s.LabelEntries,
		HeapPushes:    s.HeapPushes,
		HeapPops:      s.HeapPops,
	}
}

// handleShardQuery serves POST /shard/query on a shard process: decode
// the sub-query, execute it on this process's shard engines, and answer
// the envelope. Executed sub-queries answer 200 even when cut short — the
// typed error travels inside the envelope with the partial candidates;
// only protocol errors (malformed body, misrouted index, bad hints)
// answer 400.
func (s *server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	if len(body) > maxQueryBody {
		s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", maxQueryBody))
		return
	}
	var req shardWireRequest
	if err := strictUnmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if s.shardIndex >= 0 && req.Shard != s.shardIndex {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("misrouted sub-query: this process serves shard %d, not %d", s.shardIndex, req.Shard))
		return
	}
	q, err := req.toQuery(s)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	sr, runErr := s.sharded.RunShard(r.Context(), req.Shard, q)
	s.mu.RUnlock()
	if runErr != nil && !graphrnn.IsExecErr(runErr) {
		s.fail(w, http.StatusBadRequest, runErr)
		return
	}
	resp := shardWireResponse{Candidates: []graphrnn.PointID{}}
	if sr != nil {
		if sr.Candidates != nil {
			resp.Candidates = sr.Candidates
		}
		resp.Stats = toStatsJSON(sr.Stats)
	}
	if runErr != nil {
		if errors.Is(runErr, graphrnn.ErrDeadlineExceeded) {
			s.timeouts.Add(1)
		}
		resp.Error = runErr.Error()
		resp.ErrorKind = wireErrKind(runErr)
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// httpShardRunner is the coordinator's graphrnn.ShardRunner over the
// shard wire: sub-query i goes to peers[i]'s POST /shard/query. Typed
// execution errors are rebuilt from the envelope so partial answers and
// 504 semantics survive the process boundary; transport failures and
// protocol rejections surface as hard errors.
type httpShardRunner struct {
	peers  []string
	client *http.Client
}

func newHTTPShardRunner(peers []string) *httpShardRunner {
	return &httpShardRunner{peers: peers, client: &http.Client{}}
}

func (h *httpShardRunner) RunShard(ctx context.Context, sh int, q graphrnn.Query) (*graphrnn.ShardResult, error) {
	if sh < 0 || sh >= len(h.peers) {
		return nil, fmt.Errorf("shard %d out of range: %d peers configured", sh, len(h.peers))
	}
	wire, err := encodeShardQuery(sh, q)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}
	url := strings.TrimRight(h.peers[sh], "/") + "/shard/query"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard peer %s unreachable: %w", h.peers[sh], err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxQueryBody))
	if err != nil {
		return nil, fmt.Errorf("reading shard peer %s response: %w", h.peers[sh], err)
	}
	if resp.StatusCode != http.StatusOK {
		var fail errResponse
		if json.Unmarshal(data, &fail) == nil && fail.Error != "" {
			return nil, fmt.Errorf("shard peer %s answered %d: %s", h.peers[sh], resp.StatusCode, fail.Error)
		}
		return nil, fmt.Errorf("shard peer %s answered %d", h.peers[sh], resp.StatusCode)
	}
	var envelope shardWireResponse
	if err := json.Unmarshal(data, &envelope); err != nil {
		return nil, fmt.Errorf("bad shard peer %s response: %w", h.peers[sh], err)
	}
	sr := &graphrnn.ShardResult{
		Candidates: envelope.Candidates,
		Stats:      fromStatsJSON(envelope.Stats),
	}
	return sr, decodeWireError(&envelope)
}

// shardStatsSection renders the coordinator's scatter-gather counters for
// /stats: partition shape, fan-out and verification totals, and one entry
// per shard (sub-query counts, failures, candidates proposed, cumulative
// latency).
func shardStatsSection(role string, st graphrnn.ShardedStats) map[string]any {
	perShard := make([]map[string]any, len(st.PerShard))
	for i, sh := range st.PerShard {
		perShard[i] = map[string]any{
			"shard":        sh.Shard,
			"owned_nodes":  sh.OwnedNodes,
			"owned_points": sh.OwnedPoints,
			"halo_points":  sh.HaloPoints,
			"queries":      sh.Queries,
			"errors":       sh.Errors,
			"candidates":   sh.Candidates,
			"latency_ms":   float64(sh.Latency.Microseconds()) / 1000.0,
		}
	}
	return map[string]any{
		"role":            role,
		"shards":          st.Shards,
		"halo_depth":      st.HaloDepth,
		"cut_edges":       st.CutEdges,
		"queries":         st.Queries,
		"global_runs":     st.GlobalRuns,
		"fan_outs":        st.FanOuts,
		"candidates":      st.Candidates,
		"verify_runs":     st.VerifyRuns,
		"verify_rejected": st.VerifyRejected,
		"members":         st.Members,
		"shard_errors":    st.ShardErrors,
		"per_shard":       perShard,
	}
}
