package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"graphrnn"
)

// This file is the server half of the unified query API: one POST /query
// endpoint accepting the same declarative request schema for every query
// shape — a JSON object for a single query, a JSON array for a batch — and
// echoing the planner's substrate decision in each response. The older
// per-shape endpoints (/rnn, /rnn/batch, /knn) remain as deprecated HTTP
// shims the way the Go entry points do.

// maxQueryBody bounds a /query request body (a batch of a few thousand
// entries fits comfortably; anything larger is abuse, not traffic).
const maxQueryBody = 1 << 20

// queryRequest is the wire form of one declarative query. Exactly one of
// node/edge locates the target for rnn/bichromatic/knn kinds; continuous
// uses route. Edge targets decode (the schema is the full Location model)
// but answer a typed 400 while the server hosts node-resident point sets.
type queryRequest struct {
	// Kind: "rnn" (default), "bichromatic", "continuous", "knn".
	Kind string `json:"kind"`
	Node *int   `json:"node,omitempty"`
	Edge *struct {
		U   int     `json:"u"`
		V   int     `json:"v"`
		Pos float64 `json:"pos"`
	} `json:"edge,omitempty"`
	Route []int `json:"route,omitempty"`
	K     int   `json:"k"`
	// Algo: "" or "auto" lets the planner choose; a named algorithm is a
	// hint the planner may fall back from (the response's plan reports it).
	Algo string `json:"algo"`
	// Timeout is an optional per-entry deadline ("50ms"); it tightens the
	// server default and the request-level ?timeout= parameter.
	Timeout string `json:"timeout,omitempty"`
}

// decodeQueryBody parses a /query body: one request object, or an array of
// them (batch). It never panics on malformed input; every error is a
// client error (400).
func decodeQueryBody(body []byte) (reqs []queryRequest, batch bool, err error) {
	i := 0
	for i < len(body) && (body[i] == ' ' || body[i] == '\t' || body[i] == '\n' || body[i] == '\r') {
		i++
	}
	if i == len(body) {
		return nil, false, fmt.Errorf("empty request body")
	}
	if body[i] == '[' {
		if err := strictUnmarshal(body, &reqs); err != nil {
			return nil, true, err
		}
		return reqs, true, nil
	}
	var one queryRequest
	if err := strictUnmarshal(body, &one); err != nil {
		return nil, false, err
	}
	return []queryRequest{one}, false, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields — a typo'd field
// name answers 400 instead of silently running a different query.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data after the JSON value")
	}
	return nil
}

// toQuery lifts one wire request onto the declarative Go surface. base is
// the request-level QueryOptions (server default tightened by ?timeout=);
// a per-entry timeout tightens it further.
func (r queryRequest) toQuery(s *server, base *graphrnn.QueryOptions) (graphrnn.Query, error) {
	q := graphrnn.Query{K: r.K}
	if base != nil {
		q.QueryOptions = *base
	}
	switch r.Kind {
	case "", "rnn":
		q.Kind = graphrnn.KindRNN
	case "bichromatic":
		q.Kind = graphrnn.KindBichromatic
	case "continuous":
		q.Kind = graphrnn.KindContinuous
	case "knn":
		q.Kind = graphrnn.KindKNN
	default:
		return q, fmt.Errorf("unknown kind %q (want rnn, bichromatic, continuous or knn)", r.Kind)
	}
	if q.K == 0 {
		q.K = 1
	}
	switch {
	case q.Kind == graphrnn.KindContinuous:
		if r.Node != nil || r.Edge != nil {
			return q, fmt.Errorf("continuous queries take a route, not a node/edge target")
		}
		if len(r.Route) == 0 {
			return q, fmt.Errorf("continuous queries require a route")
		}
		q.Route = make([]graphrnn.NodeID, len(r.Route))
		for i, n := range r.Route {
			q.Route[i] = graphrnn.NodeID(n)
		}
	case r.Node != nil && r.Edge != nil:
		return q, fmt.Errorf("node and edge targets are mutually exclusive")
	case r.Node != nil:
		q.Target = graphrnn.NodeLocation(graphrnn.NodeID(*r.Node))
	case r.Edge != nil:
		q.Target = graphrnn.EdgeLocation(graphrnn.NodeID(r.Edge.U), graphrnn.NodeID(r.Edge.V), r.Edge.Pos)
	default:
		return q, fmt.Errorf("missing target: set node (or edge), or route for continuous queries")
	}
	if len(r.Route) > 0 && q.Kind != graphrnn.KindContinuous {
		return q, fmt.Errorf("route is only meaningful for continuous queries")
	}
	switch r.Algo {
	case "", "auto":
		// Zero Algorithm: the planner decides.
	default:
		algo, err := s.algorithm(r.Algo)
		if err != nil {
			return q, err
		}
		q.Algorithm = algo
	}
	// A sharded server owns its point sets (the Sharded rejects explicit
	// Points/Sites); unsharded queries name the server's sets directly.
	if s.sharded == nil {
		q.Points = s.ps
	}
	if q.Kind == graphrnn.KindBichromatic {
		if s.sites == nil {
			return q, fmt.Errorf("bichromatic queries unavailable: server started without a site set (-sites 0)")
		}
		if s.sharded == nil {
			q.Sites = s.sites
		}
	}
	if r.Timeout != "" {
		d, err := time.ParseDuration(r.Timeout)
		if err != nil || d <= 0 {
			return q, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 50ms)", r.Timeout)
		}
		if q.Timeout == 0 || d < q.Timeout {
			q.Timeout = d
		}
	}
	return q, nil
}

// plannerCounters tallies the planner's substrate decisions for /stats —
// the per-substrate serving mix, and how often hints had to fall back.
type plannerCounters struct {
	mu        sync.Mutex
	decisions map[string]int64 // vetrnn:guardedby mu
	fallbacks int64            // vetrnn:guardedby mu
}

func (c *plannerCounters) record(p graphrnn.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.decisions == nil {
		c.decisions = make(map[string]int64)
	}
	c.decisions[p.Algorithm.String()]++
	if p.Fallback {
		c.fallbacks++
	}
}

// snapshot renders the counters for /stats, visiting decisions in sorted
// key order so the section serializes identically run to run.
//
// vetrnn:deterministic
func (c *plannerCounters) snapshot() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.decisions))
	for k := range c.decisions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	by := make(map[string]int64, len(keys))
	for _, k := range keys {
		by[k] = c.decisions[k]
	}
	return map[string]any{"decisions": by, "fallbacks": c.fallbacks}
}

type planJSON struct {
	Algorithm string `json:"algorithm"`
	Fallback  bool   `json:"fallback"`
	Reason    string `json:"reason"`
}

func toPlanJSON(p graphrnn.Plan) planJSON {
	return planJSON{Algorithm: p.Algorithm.String(), Fallback: p.Fallback, Reason: p.Reason}
}

// queryResponse is one answered query on the wire.
type queryResponse struct {
	Kind      string             `json:"kind"`
	K         int                `json:"k"`
	Points    []graphrnn.PointID `json:"points,omitempty"`
	Neighbors []neighborJSON     `json:"neighbors,omitempty"`
	Stats     statsJSON          `json:"stats"`
	Plan      planJSON           `json:"plan"`
	Error     string             `json:"error,omitempty"`
}

func (s *server) toQueryResponse(q graphrnn.Query, res *graphrnn.Result, err error) queryResponse {
	out := queryResponse{Kind: q.Kind.String(), K: q.K}
	if err != nil {
		out.Error = err.Error()
	}
	if res == nil {
		return out
	}
	s.planner.record(res.Plan)
	out.Plan = toPlanJSON(res.Plan)
	out.Stats = toStatsJSON(res.Stats)
	out.Points = res.Points
	if out.Points == nil && q.Kind != graphrnn.KindKNN {
		out.Points = []graphrnn.PointID{}
	}
	if q.Kind == graphrnn.KindKNN {
		out.Neighbors = make([]neighborJSON, len(res.Neighbors))
		for i, n := range res.Neighbors {
			out.Neighbors[i] = neighborJSON{Point: n.P, Distance: n.Distance}
		}
	}
	return out
}

// handleQuery serves POST /query: one declarative request object, or a JSON
// array of them as a batch (?parallelism=, ?fail_fast= tune the fan-out).
// Malformed JSON answers 400; a single query whose deadline passes answers
// 504 like the older endpoints.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	if len(body) > maxQueryBody {
		s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", maxQueryBody))
		return
	}
	reqs, batch, err := decodeQueryBody(body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	base, err := s.queryOptions(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	queries := make([]graphrnn.Query, len(reqs))
	for i, req := range reqs {
		q, err := req.toQuery(s, base)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		queries[i] = q
	}

	// The sharded surface mirrors DB.Run/RunBatch, so the only fork is
	// which engine the queries hit.
	run := s.db.Run
	runBatch := s.db.RunBatch
	if s.sharded != nil {
		run = s.sharded.Run
		runBatch = s.sharded.RunBatch
	}

	if !batch {
		s.mu.RLock()
		res, err := run(r.Context(), queries[0])
		s.mu.RUnlock()
		if err != nil {
			s.failQuery(w, err)
			return
		}
		s.served.Add(1)
		writeJSON(w, http.StatusOK, s.toQueryResponse(queries[0], res, nil))
		return
	}

	opt := &graphrnn.BatchOptions{}
	if v := r.URL.Query().Get("parallelism"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad parallelism parameter %q", v))
			return
		}
		opt.Parallelism = p
	}
	if v := r.URL.Query().Get("fail_fast"); v != "" {
		ff, err := strconv.ParseBool(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad fail_fast parameter %q", v))
			return
		}
		opt.FailFast = ff
	}
	s.mu.RLock()
	rep, err := runBatch(r.Context(), queries, opt)
	s.mu.RUnlock()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	results := make([]queryResponse, len(rep.Results))
	for i, br := range rep.Results {
		results[i] = s.toQueryResponse(queries[i], br.Result, br.Err)
	}
	s.served.Add(int64(rep.Succeeded))
	writeJSON(w, http.StatusOK, map[string]any{
		"results":   results,
		"workers":   rep.Workers,
		"succeeded": rep.Succeeded,
		"failed":    rep.Failed,
		"wall_ms":   float64(rep.Wall.Microseconds()) / 1000.0,
	})
}
