// Command experiments regenerates every table and figure of the paper's
// evaluation (Yiu et al., TKDE'06, Section 6) and prints the series in the
// paper's layout: average I/O, CPU time, and total cost under the
// 10 ms/random-I/O model, per algorithm, per setting.
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig15|...|fig22b|hub|budget] [-full] [-seed N] [-queries N]
//
// The extra "hub" experiment compares the hub-label substrate against the
// paper's four algorithms on a restricted road-network workload; "budget"
// measures answer degradation under the engine layer's per-query node
// budgets (beyond the paper, like "hub").
//
// The default scale finishes in minutes on a laptop; -full runs the
// paper-scale configuration (BRITE up to 360K nodes, SF-like 175K nodes,
// 50 queries per workload), which can take hours for the lazy variants on
// the exponential-expansion topologies — exactly the effect Fig 15 reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphrnn/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment to run (all, table1, table2, fig15..fig22b)")
		full    = flag.Bool("full", false, "run at paper scale")
		seed    = flag.Int64("seed", 2006, "workload seed")
		queries = flag.Int("queries", 0, "queries per workload (0 = default: 20, or 50 with -full)")
	)
	flag.Parse()

	scale := exp.Scale{Full: *full, Seed: *seed, Queries: *queries}
	var runs []exp.Experiment
	if *which == "all" {
		runs = exp.All()
	} else {
		e, ok := exp.Find(*which)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *which)
			for _, e := range exp.All() {
				fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Paper)
			}
			os.Exit(2)
		}
		runs = []exp.Experiment{e}
	}
	for _, e := range runs {
		start := time.Now()
		fmt.Printf("== %s (%s)\n", e.Paper, e.Name)
		tab, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println(tab.Format())
		fmt.Printf("   [%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
