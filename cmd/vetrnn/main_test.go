package main

import (
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// captureRun invokes the tool's run() with stdout/stderr captured.
func captureRun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	or, ow, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	er, ew, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = ow, ew
	defer func() { os.Stdout, os.Stderr = oldOut, oldErr }()
	code = run(args)
	ow.Close()
	ew.Close()
	ob, _ := io.ReadAll(or)
	eb, _ := io.ReadAll(er)
	return code, string(ob), string(eb)
}

// crossPackageTree is a module where the guarded-field annotation lives in
// one package and the violating access in another: the finding can only
// fire if the GuardedFields fact crosses the package boundary.
func crossPackageTree(useSrc string) map[string]string {
	return map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"lib/lib.go": `package lib

import "sync"

// Registry is a shared name table.
type Registry struct {
	Mu      sync.RWMutex
	Entries map[string]int // vetrnn:guardedby Mu
}
`,
		"use/use.go": useSrc,
	}
}

const useBad = `package use

import "tmpmod/lib"

func Bad(r *lib.Registry) int {
	return len(r.Entries)
}
`

const useGood = `package use

import "tmpmod/lib"

func Good(r *lib.Registry) int {
	r.Mu.RLock()
	defer r.Mu.RUnlock()
	return len(r.Entries)
}
`

func TestStandaloneCrossPackageFacts(t *testing.T) {
	dir := writeTree(t, crossPackageTree(useBad))
	// The narrow pattern only names ./use; the loader must still pull in
	// tmpmod/lib as a facts-only dependency for the annotation to matter.
	code, stdout, stderr := captureRun(t, "-dir", dir, "./use")
	if code != 1 {
		t.Fatalf("want exit 1 on cross-package violation, got %d (stdout %q stderr %q)", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "guarded by r.Mu") || !strings.Contains(stdout, "guardedby") {
		t.Fatalf("missing cross-package guardedby finding, got %q", stdout)
	}
	if strings.Contains(stdout, "lib/lib.go") {
		t.Fatalf("facts-only dependency contributed findings of its own: %q", stdout)
	}
}

func TestStandaloneCrossPackageClean(t *testing.T) {
	dir := writeTree(t, crossPackageTree(useGood))
	code, stdout, stderr := captureRun(t, "-dir", dir, "./...")
	if code != 0 {
		t.Fatalf("want exit 0 on clean module, got %d (stdout %q stderr %q)", code, stdout, stderr)
	}
}

// TestVetToolCrossPackageFacts drives the same cross-package module through
// the real `go vet -vettool` unitchecker protocol: facts must round-trip
// through the per-package vetx files the go command schedules.
func TestVetToolCrossPackageFacts(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	bin := filepath.Join(t.TempDir(), "vetrnn")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	dir := writeTree(t, crossPackageTree(useBad))
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a cross-package violation\n%s", out)
	}
	if !strings.Contains(string(out), "guarded by r.Mu") {
		t.Fatalf("vet-mode diagnostic missing the cross-package finding:\n%s", out)
	}

	// And the clean variant must pass, proving the failure above is the
	// finding rather than a protocol error.
	dir = writeTree(t, crossPackageTree(useGood))
	vet = exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dir
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

// suppressedTree has one real finding, silenced by a directive — the
// shape the ratchet baselines.
func suppressedTree(extra string) map[string]string {
	files := crossPackageTree(`package use

import "tmpmod/lib"

func Bad(r *lib.Registry) int {
	//lint:ignore vetrnn/guardedby deliberate: snapshot read, registry is quiescent here
	return len(r.Entries)
}
` + extra)
	return files
}

func TestRatchetGate(t *testing.T) {
	dir := writeTree(t, suppressedTree(""))
	baseline := filepath.Join(dir, "BASELINE.json")

	// Write the baseline from the current (one-suppression) tree.
	code, _, stderr := captureRun(t, "-dir", dir, "-ratchet", baseline, "-ratchet-write", "./...")
	if code != 0 {
		t.Fatalf("ratchet-write run failed with %d: %s", code, stderr)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"guardedby": 1`) {
		t.Fatalf("baseline did not record the suppression: %s", data)
	}

	// The unchanged tree passes the gate.
	if code, _, stderr := captureRun(t, "-dir", dir, "-ratchet", baseline, "./..."); code != 0 {
		t.Fatalf("gate failed on the baselined tree: %d %s", code, stderr)
	}

	// Injecting one more suppression overruns the budget.
	more := writeTree(t, suppressedTree(`
func AlsoBad(r *lib.Registry) int {
	//lint:ignore vetrnn/guardedby second exception, beyond the budget
	return len(r.Entries)
}
`))
	if err := os.WriteFile(filepath.Join(more, "BASELINE.json"), data, 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = captureRun(t, "-dir", more, "-ratchet", filepath.Join(more, "BASELINE.json"), "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on suppression overrun, got %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "exceed the baseline") {
		t.Fatalf("overrun message missing: %q", stderr)
	}
}

func TestRatchetStaleDirective(t *testing.T) {
	// The directive names guardedby on a line where nothing fires.
	files := crossPackageTree(`package use

import "tmpmod/lib"

func Fine(r *lib.Registry) int {
	r.Mu.RLock()
	defer r.Mu.RUnlock()
	//lint:ignore vetrnn/guardedby left over from a refactor
	return len(r.Entries)
}
`)
	dir := writeTree(t, files)
	baseline := filepath.Join(dir, "BASELINE.json")
	if err := os.WriteFile(baseline, []byte(`{"suppressions":{"guardedby":5}}`), 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := captureRun(t, "-dir", dir, "-ratchet", baseline, "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on stale directive, got %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "stale suppression") {
		t.Fatalf("stale message missing: %q", stderr)
	}
}

// determinismTree is a module with one vetrnn:deterministic function whose
// map range is deliberately suppressed — the determinism analyzer's
// ratchet shape.
func determinismTree(extra string) map[string]string {
	return map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"det/det.go": `package det

// Tally sums the values; order does not affect the sum.
//
// vetrnn:deterministic
func Tally(m map[string]int) int {
	s := 0
	//lint:ignore vetrnn/determinism commutative sum, iteration order cannot leak
	for _, v := range m {
		s += v
	}
	return s
}
` + extra,
	}
}

func TestDeterminismRatchet(t *testing.T) {
	dir := writeTree(t, determinismTree(""))
	baseline := filepath.Join(dir, "BASELINE.json")

	code, _, stderr := captureRun(t, "-dir", dir, "-ratchet", baseline, "-ratchet-write", "./...")
	if code != 0 {
		t.Fatalf("ratchet-write run failed with %d: %s", code, stderr)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"determinism": 1`) {
		t.Fatalf("baseline did not record the determinism suppression: %s", data)
	}
	if code, _, stderr := captureRun(t, "-dir", dir, "-ratchet", baseline, "./..."); code != 0 {
		t.Fatalf("gate failed on the baselined tree: %d %s", code, stderr)
	}

	// A second suppression overruns the budget of one.
	more := writeTree(t, determinismTree(`
// Max scans the values.
//
// vetrnn:deterministic
func Max(m map[string]int) int {
	best := 0
	//lint:ignore vetrnn/determinism max is order-independent too, but the budget is spent
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
`))
	if err := os.WriteFile(filepath.Join(more, "BASELINE.json"), data, 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = captureRun(t, "-dir", more, "-ratchet", filepath.Join(more, "BASELINE.json"), "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on determinism suppression overrun, got %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "exceed the baseline") {
		t.Fatalf("overrun message missing: %q", stderr)
	}
}

func TestDeterminismRatchetStaleDirective(t *testing.T) {
	// The directive sits on a line where determinism never fires (the
	// function is not annotated, so map order is nobody's business).
	dir := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"det/det.go": `package det

func Sum(m map[string]int) int {
	s := 0
	//lint:ignore vetrnn/determinism left over from before the annotation was dropped
	for _, v := range m {
		s += v
	}
	return s
}
`,
	})
	baseline := filepath.Join(dir, "BASELINE.json")
	if err := os.WriteFile(baseline, []byte(`{"suppressions":{"determinism":5}}`), 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := captureRun(t, "-dir", dir, "-ratchet", baseline, "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on stale determinism directive, got %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "stale suppression") {
		t.Fatalf("stale message missing: %q", stderr)
	}
}

// lockCycleSiblingTree is the whole-program gate fixture: packages a and b
// nest two shared mutexes in opposite orders, but neither imports the
// other, so no single unit can see the cycle — only the standalone
// driver's whole-program pass over the union of exported edges.
var lockCycleSiblingTree = map[string]string{
	"go.mod": "module tmpmod\n\ngo 1.24\n",
	"locks/locks.go": `package locks

import "sync"

var MA, MB sync.Mutex
`,
	"a/a.go": `package a

import "tmpmod/locks"

func AB() {
	locks.MA.Lock()
	defer locks.MA.Unlock()
	locks.MB.Lock()
	locks.MB.Unlock()
}
`,
	"b/b.go": `package b

import "tmpmod/locks"

func BA() {
	locks.MB.Lock()
	defer locks.MB.Unlock()
	locks.MA.Lock()
	locks.MA.Unlock()
}
`,
}

func TestLockOrderWholeProgramGate(t *testing.T) {
	dir := writeTree(t, lockCycleSiblingTree)
	report := filepath.Join(dir, "lockreport.json")
	code, stdout, stderr := captureRun(t, "-dir", dir, "-lockreport", report, "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on sibling-package lock cycle, got %d (stdout %q stderr %q)", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "whole-program lock-ordering cycle") ||
		!strings.Contains(stdout, "tmpmod/locks.MA -> tmpmod/locks.MB -> tmpmod/locks.MA") {
		t.Fatalf("whole-program cycle finding missing or wrong path: %q", stdout)
	}

	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"edges"`, `"cycles"`, `"tmpmod/locks.MA"`, `"reported_per_package": false`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("lock report missing %s:\n%s", want, data)
		}
	}
}

// TestLockOrderSuppressedPerPackage proves the suppression and ratchet
// interplay: a cycle visible inside one package is silenced with
// //lint:ignore, its key still travels as a fact, and the whole-program
// pass does not resurrect it.
func TestLockOrderSuppressedPerPackage(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"locks/locks.go": `package locks

import "sync"

var MA, MB sync.Mutex

func AB() {
	MA.Lock()
	defer MA.Unlock()
	//lint:ignore vetrnn/lockorder startup-only path, order quirk documented in the runbook
	MB.Lock()
	MB.Unlock()
}

func BA() {
	MB.Lock()
	defer MB.Unlock()
	MA.Lock()
	MA.Unlock()
}
`,
	})
	baseline := filepath.Join(dir, "BASELINE.json")
	code, stdout, stderr := captureRun(t, "-dir", dir, "-ratchet", baseline, "-ratchet-write", "./...")
	if code != 0 {
		t.Fatalf("suppressed cycle still failed the run: %d (stdout %q stderr %q)", code, stdout, stderr)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"lockorder": 1`) {
		t.Fatalf("baseline did not record the lockorder suppression: %s", data)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeTree(t, crossPackageTree(useBad))
	code, stdout, _ := captureRun(t, "-dir", dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	if !strings.Contains(stdout, `"analyzer": "vetrnn/guardedby"`) {
		t.Fatalf("JSON findings missing analyzer field: %q", stdout)
	}
}
