// Command vetrnn is the repo's invariant checker: a multichecker over the
// internal/analysis suite (execpoll, journalbefore, commaok, partialresult,
// guardedby, tenantclose, deadlinecarve, determinism, lockorder) that
// machine-checks the engine contracts PRs 3-5 established plus the
// determinism and lock-ordering contracts of the parallel build paths.
//
// It runs two ways:
//
// Standalone, from the module root:
//
//	go run ./cmd/vetrnn ./...
//	vetrnn -json ./...
//	vetrnn -ratchet VETRNN_BASELINE.json ./...
//
// As a vet tool, speaking the go command's unitchecker protocol
// (-V=full for build-cache keying, -flags for flag discovery, then one
// .cfg unit config per package). Cross-package analyzer facts ride the
// same protocol: each unit reads the vetx facts files of its imports
// (PackageVetx) and writes its own, including re-exported transitive
// facts, to VetxOutput:
//
//	go build -o /tmp/vetrnn ./cmd/vetrnn
//	go vet -vettool=/tmp/vetrnn ./...
//
// The standalone loader threads the same facts in dependency order, also
// loading module-local dependencies of narrow patterns (facts only) so
// both modes see identical cross-package contracts.
//
// The suppression ratchet (standalone only): -ratchet <baseline> fails
// when //lint:ignore vetrnn/* counts per analyzer exceed the committed
// baseline or when a directive is stale (its analyzer no longer fires on
// the covered lines); -ratchet-write refreshes the baseline file.
//
// Each analyzer can be disabled with -<name>=false in either mode. Exit
// codes: 0 clean, 1 findings or ratchet violations (standalone), 2
// findings or protocol error (vet-tool mode, where any nonzero exit fails
// `go vet`).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"graphrnn/internal/analysis"
	"graphrnn/internal/analysis/commaok"
	"graphrnn/internal/analysis/deadlinecarve"
	"graphrnn/internal/analysis/determinism"
	"graphrnn/internal/analysis/execpoll"
	"graphrnn/internal/analysis/guardedby"
	"graphrnn/internal/analysis/journalbefore"
	"graphrnn/internal/analysis/load"
	"graphrnn/internal/analysis/lockorder"
	"graphrnn/internal/analysis/partialresult"
	"graphrnn/internal/analysis/tenantclose"
)

// suite is the full analyzer suite, in report order.
var suite = []*analysis.Analyzer{
	commaok.Analyzer,
	deadlinecarve.Analyzer,
	determinism.Analyzer,
	execpoll.Analyzer,
	guardedby.Analyzer,
	journalbefore.Analyzer,
	lockorder.Analyzer,
	partialresult.Analyzer,
	tenantclose.Analyzer,
}

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	vFlag := fs.String("V", "", "print version and exit (-V=full for a build-cache key)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit")
	jsonFlag := fs.Bool("json", false, "emit findings as JSON on stdout")
	dirFlag := fs.String("dir", ".", "directory to run go list from (standalone mode)")
	ratchetFlag := fs.String("ratchet", "", "baseline file to ratchet //lint:ignore counts against (standalone mode)")
	ratchetWrite := fs.Bool("ratchet-write", false, "rewrite the -ratchet baseline from the tree's current suppressions")
	lockReport := fs.String("lockreport", "", "write the whole-program lock-order edge/cycle report as JSON to this file (standalone mode)")
	enabled := map[string]*bool{}
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, true, firstLine(a.Doc))
	}
	fs.Parse(args)

	switch {
	case *vFlag != "":
		printVersion(progname)
		return 0
	case *flagsFlag:
		printFlags()
		return 0
	}

	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], active, *jsonFlag)
	}
	return standalone(fs.Args(), *dirFlag, active, *jsonFlag, *ratchetFlag, *ratchetWrite, *lockReport)
}

func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}

// printVersion emits the version line the go command keys its build cache
// on: the unitchecker convention, with the binary's own hash as build ID.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// printFlags tells the go command which flags may be forwarded to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{{Name: "json", Bool: true, Usage: "emit findings as JSON"}}
	for _, a := range suite {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, _ := json.MarshalIndent(flags, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}

// vetUnit analyzes one `go vet` unit config: imports' facts are read from
// their vetx files, the unit's own (plus re-exported transitive) facts are
// written to VetxOutput — which must exist even when empty, because the go
// command caches it.
func vetUnit(cfgFile string, active []*analysis.Analyzer, asJSON bool) int {
	cfg, err := load.ReadVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		if err := facts.ReadVetx(vetx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	pkg, err := load.VetCfg(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The go command still expects the (empty) facts file.
			if cfg.VetxOutput != "" {
				os.WriteFile(cfg.VetxOutput, nil, 0o666)
			}
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	findings, _, err := analysis.RunFacts(pkg, active, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := facts.WriteVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if asJSON {
		emitJSON(cfg.ImportPath, findings)
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// standalone loads packages via go list and analyzes them in dependency
// order through a shared fact store. Module-local dependencies pulled in
// only for their facts contribute neither findings nor ratchet directives.
func standalone(patterns []string, dir string, active []*analysis.Analyzer, asJSON bool, ratchetFile string, ratchetWrite bool, lockReport string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.GoList(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	facts := analysis.NewFactStore()
	var all []analysis.Finding
	var directives []analysis.Directive
	for _, pkg := range pkgs {
		findings, dirs, err := analysis.RunFacts(pkg.Package, active, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if pkg.FactsOnly {
			continue
		}
		all = append(all, findings...)
		directives = append(directives, dirs...)
	}

	// Whole-program lock-order pass: union every package's exported edges
	// and detect cycles across the lot. The per-package analyzer already
	// reported cycles visible through its own import graph (and exported
	// their keys); only cycles spanning sibling packages remain.
	for _, a := range active {
		if a.Name != lockorder.Analyzer.Name {
			continue
		}
		findings, err := lockOrderWholeProgram(facts, lockReport)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		all = append(all, findings...)
	}

	code := 0
	if asJSON {
		emitJSON("", all)
	} else {
		for _, f := range all {
			fmt.Println(f)
		}
	}
	if len(all) > 0 {
		code = 1
	}

	switch {
	case ratchetFile != "" && ratchetWrite:
		if err := analysis.WriteBaseline(ratchetFile, directives); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	case ratchetFile != "":
		baseline, err := analysis.ReadBaseline(ratchetFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		activeNames := map[string]bool{}
		for _, a := range active {
			activeNames[a.Name] = true
		}
		violations := analysis.Ratchet(baseline, directives, activeNames)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		if len(violations) > 0 {
			code = 1
		}
	}
	return code
}

// lockOrderWholeProgram unions the lockorder facts of every analyzed
// package, detects cycles over the combined edge set, and reports the
// ones no package already reported per-package (their normalized keys
// ride the facts). When reportFile is non-empty it also writes the full
// edge/cycle report as JSON — the CI artifact.
func lockOrderWholeProgram(facts *analysis.FactStore, reportFile string) ([]analysis.Finding, error) {
	var edges []lockorder.Edge
	reported := map[string]bool{}
	facts.Visit(lockorder.Analyzer.Name, new(lockorder.LockFacts), func(pkg string, fact analysis.Fact) {
		lf := fact.(*lockorder.LockFacts)
		edges = append(edges, lf.Edges...)
		for _, key := range lf.Cycles {
			reported[key] = true
		}
	})
	cycles := lockorder.DetectCycles(edges, edges)

	var findings []analysis.Finding
	type reportCycle struct {
		Key      string   `json:"key"`
		Path     []string `json:"path"`
		At       string   `json:"at"`
		Reported bool     `json:"reported_per_package"`
	}
	report := struct {
		Edges  []lockorder.Edge `json:"edges"`
		Cycles []reportCycle    `json:"cycles"`
	}{Edges: edges, Cycles: []reportCycle{}}
	if report.Edges == nil {
		report.Edges = []lockorder.Edge{}
	}
	for _, cyc := range cycles {
		report.Cycles = append(report.Cycles, reportCycle{
			Key:      cyc.Key,
			Path:     cyc.Path,
			At:       cyc.At.Pos,
			Reported: reported[cyc.Key],
		})
		if reported[cyc.Key] {
			continue
		}
		findings = append(findings, analysis.Finding{
			Analyzer: lockorder.Analyzer.Name,
			Pos:      lockorder.FindingPos(cyc.At.Pos),
			Message: fmt.Sprintf("whole-program lock-ordering cycle: %s (edge %s -> %s in %s)",
				strings.Join(cyc.Path, " -> "), cyc.At.From, cyc.At.To, cyc.At.Func),
		})
	}

	if reportFile != "" {
		data, err := json.MarshalIndent(report, "", "\t")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(reportFile, append(data, '\n'), 0o666); err != nil {
			return nil, err
		}
	}
	return findings, nil
}

// emitJSON prints findings as a JSON array on stdout.
func emitJSON(pkg string, findings []analysis.Finding) {
	type jsonFinding struct {
		Package  string `json:"package,omitempty"`
		Analyzer string `json:"analyzer"`
		Posn     string `json:"posn"`
		Message  string `json:"message"`
	}
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Package:  pkg,
			Analyzer: "vetrnn/" + f.Analyzer,
			Posn:     f.Pos.String(),
			Message:  f.Message,
		})
	}
	data, _ := json.MarshalIndent(out, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}
