package graphrnn

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// This file is the worker-pool fan-out under RunBatch: independent queries
// dispatched over the concurrency-safe DB. It is the unit the paper's
// experimental harness (and any serving front end) wants — Efentakis &
// Pfoser (ReHub) and Buchnik & Cohen both treat concurrent batched query
// execution as the baseline deployment mode. Every substrate works here,
// including HubLabel: the index's per-query scratch is pooled, so batch
// workers share one HubLabelIndex freely.
//
// Batches are context-aware: dispatch stops once the batch context is
// canceled (queued queries are marked, not run, and in-flight ones abandon
// within one expansion step), FailFast turns the first error into a
// batch-level cancellation, and PerQuery applies a deadline/budget to every
// entry that carries none of its own. The deprecated per-shape *Batch
// functions are thin shims over RunBatch.

// BatchOptions configures batch execution.
type BatchOptions struct {
	// Parallelism is the number of worker goroutines. Zero or negative
	// defaults to GOMAXPROCS. One worker degenerates to serial execution
	// in submission order. Every batch call reports the worker count
	// actually used (Parallelism capped by the batch size).
	Parallelism int
	// FailFast cancels the remainder of the batch after the first
	// failing query: queued entries report ErrCanceled without running.
	FailFast bool
	// PerQuery bounds every query of the batch individually (deadline
	// and work budget), as if issued through its own embedded
	// QueryOptions; entries that set their own QueryOptions keep them.
	PerQuery *QueryOptions
}

func (o *BatchOptions) workers(n int) int {
	w := 0
	if o != nil {
		w = o.Parallelism
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o *BatchOptions) perQuery() *QueryOptions {
	if o == nil {
		return nil
	}
	return o.PerQuery
}

func (o *BatchOptions) failFast() bool { return o != nil && o.FailFast }

// RNNQuery is one node-resident batch entry of the deprecated per-shape
// batch functions (RNNBatch, BichromaticRNNBatch); RunBatch takes full
// Query values instead.
type RNNQuery struct {
	// Q is the query node.
	Q NodeID
	// K is the query depth (k >= 1).
	K int
	// Algo selects the processing strategy.
	Algo Algorithm
}

// BatchResult pairs one query's answer with its error. On success Err is
// nil; on an execution-control error (cancellation, deadline, budget)
// Result may still carry the partial answer and its stats.
type BatchResult struct {
	Result *Result
	Err    error
}

// batchCanceledErr marks an entry whose batch was canceled before the
// entry started.
func batchCanceledErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w: batch deadline passed before the query started", ErrDeadlineExceeded)
	}
	return fmt.Errorf("%w: batch canceled before the query started", ErrCanceled)
}

// runBatch fans indices 0..n-1 out over a worker pool under ctx and
// returns the worker count used. Once ctx is canceled (externally, by a
// batch deadline, or by FailFast) no further queries start: undispatched
// entries are marked with a typed cancellation error.
func runBatch(ctx context.Context, n, workers int, failFast bool, out []BatchResult, run func(ctx context.Context, i int)) int {
	if n == 0 {
		return 0
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	do := func(i int) {
		if ctx.Err() != nil {
			out[i] = BatchResult{Err: batchCanceledErr(ctx)}
			return
		}
		run(ctx, i)
		if failFast && out[i].Err != nil {
			cancel()
		}
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				do(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			// Stop feeding the pool; everything not yet dispatched is
			// marked canceled without running.
			for j := i; j < n; j++ {
				out[j] = BatchResult{Err: batchCanceledErr(ctx)}
			}
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return workers
}

// rnnQueries lifts the deprecated batch entries onto the declarative
// surface, preserving the strict per-algorithm semantics.
func rnnQueries(kind Kind, ps PointSet, sites PointSet, queries []RNNQuery) []Query {
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = Query{
			Kind: kind, Target: NodeLocation(q.Q), K: q.K,
			Points: ps, Sites: sites, Algorithm: q.Algo, Strict: true,
		}
	}
	return qs
}

// RNNBatch answers a slice of monochromatic RkNN queries over one point set
// concurrently and returns one BatchResult per query, in input order, plus
// the worker count used. Every query runs to completion: an invalid entry
// (bad k, out-of-range node) reports its error in its own slot without
// affecting the others. A nil or zero-parallelism opt uses GOMAXPROCS
// workers.
//
// Deprecated: use [DB.RunBatch], whose BatchReport also carries aggregate
// statistics.
func (db *DB) RNNBatch(ps pointsArg, queries []RNNQuery, opt *BatchOptions) ([]BatchResult, int) {
	return db.RNNBatchContext(context.Background(), ps, queries, opt)
}

// RNNBatchContext is RNNBatch under a batch context: cancel ctx (or set a
// deadline on it) to stop the whole batch, opt.PerQuery to bound each
// entry, opt.FailFast to abandon the rest after the first error.
//
// Deprecated: use [DB.RunBatch].
func (db *DB) RNNBatchContext(ctx context.Context, ps pointsArg, queries []RNNQuery, opt *BatchOptions) ([]BatchResult, int) {
	rep, _ := db.RunBatch(ctx, rnnQueries(KindRNN, ps, nil, queries), opt)
	return rep.Results, rep.Workers
}

// BichromaticRNNBatch answers a slice of bichromatic RkNN queries over one
// candidate/site pair concurrently, in input order.
//
// Deprecated: use [DB.RunBatch] with Queries of KindBichromatic.
func (db *DB) BichromaticRNNBatch(cands, sites pointsArg, queries []RNNQuery, opt *BatchOptions) ([]BatchResult, int) {
	return db.BichromaticRNNBatchContext(context.Background(), cands, sites, queries, opt)
}

// BichromaticRNNBatchContext is BichromaticRNNBatch under a batch context.
//
// Deprecated: use [DB.RunBatch].
func (db *DB) BichromaticRNNBatchContext(ctx context.Context, cands, sites pointsArg, queries []RNNQuery, opt *BatchOptions) ([]BatchResult, int) {
	rep, _ := db.RunBatch(ctx, rnnQueries(KindBichromatic, cands, sites, queries), opt)
	return rep.Results, rep.Workers
}

// EdgeRNNQuery is one monochromatic batch entry over an edge-resident point
// set, used by the deprecated EdgeRNNBatch.
type EdgeRNNQuery struct {
	Q    Location
	K    int
	Algo Algorithm
}

// EdgeRNNBatch answers a slice of edge-resident RkNN queries concurrently,
// in input order.
//
// Deprecated: use [DB.RunBatch] with edge-resident Queries.
func (db *DB) EdgeRNNBatch(ps edgeArg, queries []EdgeRNNQuery, opt *BatchOptions) ([]BatchResult, int) {
	return db.EdgeRNNBatchContext(context.Background(), ps, queries, opt)
}

// EdgeRNNBatchContext is EdgeRNNBatch under a batch context.
//
// Deprecated: use [DB.RunBatch].
func (db *DB) EdgeRNNBatchContext(ctx context.Context, ps edgeArg, queries []EdgeRNNQuery, opt *BatchOptions) ([]BatchResult, int) {
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = Query{Kind: KindRNN, Target: q.Q, K: q.K, Points: ps, Algorithm: q.Algo, Strict: true}
	}
	rep, _ := db.RunBatch(ctx, qs, opt)
	return rep.Results, rep.Workers
}
