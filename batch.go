package graphrnn

import (
	"runtime"
	"sync"
)

// This file is the parallel batch-query layer: worker-pool fan-out of
// independent RNN queries over the now concurrency-safe DB. It is the unit
// the paper's experimental harness (and any serving front end) wants —
// Efentakis & Pfoser (ReHub) and Buchnik & Cohen both treat concurrent
// batched query execution as the baseline deployment mode. Every Algorithm
// works here, including HubLabel: the index's per-query scratch is pooled,
// so batch workers share one HubLabelIndex freely.

// BatchOptions configures batch execution.
type BatchOptions struct {
	// Parallelism is the number of worker goroutines. Zero or negative
	// defaults to GOMAXPROCS. One worker degenerates to serial execution
	// in submission order.
	Parallelism int
}

func (o *BatchOptions) workers(n int) int {
	w := 0
	if o != nil {
		w = o.Parallelism
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RNNQuery is one node-resident batch entry, used by both RNNBatch and
// BichromaticRNNBatch (the point sets, not the query, distinguish the two).
type RNNQuery struct {
	// Q is the query node.
	Q NodeID
	// K is the query depth (k >= 1).
	K int
	// Algo selects the processing strategy.
	Algo Algorithm
}

// BatchResult pairs one query's answer with its error; exactly one of the
// two fields is non-nil.
type BatchResult struct {
	Result *Result
	Err    error
}

// runBatch fans indices 0..n-1 out over a worker pool.
func runBatch(n, workers int, run func(i int)) {
	if n == 0 {
		return
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RNNBatch answers a slice of monochromatic RkNN queries over one point set
// concurrently and returns one BatchResult per query, in input order. Every
// query runs to completion: an invalid entry (bad k, out-of-range node)
// reports its error in its own slot without affecting the others. A nil or
// zero-parallelism opt uses GOMAXPROCS workers.
func (db *DB) RNNBatch(ps pointsArg, queries []RNNQuery, opt *BatchOptions) []BatchResult {
	view := ps.nodeView()
	out := make([]BatchResult, len(queries))
	runBatch(len(queries), opt.workers(len(queries)), func(i int) {
		q := queries[i]
		out[i].Result, out[i].Err = db.RNN(view, q.Q, q.K, q.Algo)
	})
	return out
}

// BichromaticRNNBatch answers a slice of bichromatic RkNN queries over one
// candidate/site pair concurrently, in input order.
func (db *DB) BichromaticRNNBatch(cands, sites pointsArg, queries []RNNQuery, opt *BatchOptions) []BatchResult {
	cv, sv := cands.nodeView(), sites.nodeView()
	out := make([]BatchResult, len(queries))
	runBatch(len(queries), opt.workers(len(queries)), func(i int) {
		q := queries[i]
		out[i].Result, out[i].Err = db.BichromaticRNN(cv, sv, q.Q, q.K, q.Algo)
	})
	return out
}

// EdgeRNNQuery is one monochromatic batch entry over an edge-resident point
// set.
type EdgeRNNQuery struct {
	Q    Location
	K    int
	Algo Algorithm
}

// EdgeRNNBatch answers a slice of edge-resident RkNN queries concurrently,
// in input order.
func (db *DB) EdgeRNNBatch(ps edgeArg, queries []EdgeRNNQuery, opt *BatchOptions) []BatchResult {
	view := ps.edgeView()
	out := make([]BatchResult, len(queries))
	runBatch(len(queries), opt.workers(len(queries)), func(i int) {
		q := queries[i]
		out[i].Result, out[i].Err = db.EdgeRNN(view, q.Q, q.K, q.Algo)
	})
	return out
}
