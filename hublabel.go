package graphrnn

import (
	"fmt"

	"graphrnn/internal/core"
	"graphrnn/internal/exec"
	"graphrnn/internal/graph"
	"graphrnn/internal/hublabel"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// HubLabelIndex is the third query substrate, next to plain network
// expansion and the materialized K-NN lists: a pruned-landmark 2-hop hub
// labeling of the graph plus a ReHub-style reverse index over a tracked
// node-resident point set (Efentakis & Pfoser). Queries through
// HubLabel(idx) answer monochromatic, bichromatic and continuous RkNN by
// label-list intersection — no network expansion at all — which makes them
// orders of magnitude faster than eager/lazy on large networks, at the
// price of a one-off labeling build.
//
// The index tracks the point set it was built over: mutate it through
// InsertNode / DeletePoint and the hub lists and K-NN thresholds are
// repaired incrementally. The labeling itself is per graph; a changed graph
// requires a rebuild (BuildHubLabelIndex again) — there is no incremental
// edge maintenance, by design.
//
// The labeling can be persisted into a paged file (Options.Path /
// SaveTo) and served back through its own LRU buffer, so the expensive
// build survives process restarts and label reads count I/O like every
// other substrate.
type HubLabelIndex struct {
	//lint:ignore vetrnn/tenantclose planner back-pointer (Close only detaches from it); the caller owns the DB
	db       *DB
	idx      *hublabel.Index
	lab      *hublabel.Labeling // retained when built in this process
	store    *hublabel.Store    // non-nil when labels are served paged
	node     *NodePoints
	compress bool
	build    HubLabelBuildStats
}

// BuildOptions tunes the labeling construction.
type BuildOptions struct {
	// Workers is the number of goroutines running the pruned landmark
	// sweeps. 0 and 1 build sequentially; negative uses GOMAXPROCS. The
	// labels are bit-identical at every worker count.
	Workers int
	// Compression stores labels delta+varint encoded. Implies paged label
	// serving (an in-memory page file when no Path is set), so the saving
	// applies to served memory as well as disk.
	Compression bool
}

// HubLabelBuildStats describes how a hub-label index was constructed.
type HubLabelBuildStats struct {
	// Workers that ran the landmark sweeps.
	Workers int
	// Batches of landmarks processed; 0 for a sequential build.
	Batches int
	// Landmarks swept (= graph nodes).
	Landmarks int
	// Visits counts nodes popped across all pruned sweeps; Pruned the
	// visits cut by the 2-hop cover test; Resweeps the batched landmarks
	// redone sequentially after in-batch coverage.
	Visits, Pruned, Resweeps int64
	// WallSeconds is the labeling construction time.
	WallSeconds float64
	// LabelBytes is the encoded label payload; RawLabelBytes what the raw
	// fixed-width codec would occupy. Both 0 when labels are not paged.
	LabelBytes, RawLabelBytes int64
}

// HubLabelOptions configures how the labeling is stored and served.
type HubLabelOptions struct {
	// DiskBacked serves labels from a paged file through an LRU buffer with
	// counted I/O instead of from memory.
	DiskBacked bool
	// PageSize of the label file (default 4096).
	PageSize int
	// BufferPages of the label file's LRU buffer (default 64).
	BufferPages int
	// Path stores the label file on disk at this location (implies
	// DiskBacked); empty keeps it in memory.
	Path string
	// Build controls the labeling construction (worker count,
	// compression).
	Build BuildOptions
}

func (o *HubLabelOptions) defaults() (pageSize, buffer int, paged bool, path string, build BuildOptions) {
	pageSize, buffer = storage.DefaultPageSize, 64
	if o != nil {
		if o.PageSize > 0 {
			pageSize = o.PageSize
		}
		if o.BufferPages > 0 {
			buffer = o.BufferPages
		}
		paged = o.DiskBacked || o.Path != "" || o.Build.Compression
		path = o.Path
		build = o.Build
	}
	return pageSize, buffer, paged, path, build
}

// BuildHubLabelIndex builds the 2-hop labeling of the graph (CPU-bound, one
// pruned Dijkstra per node, parallel across Build.Workers) and the reverse
// index over ps, materializing K-NN thresholds for monochromatic queries up
// to maxK. The labeling build reads the in-memory graph directly and
// performs no counted I/O. The new index is attached to the planner (last
// built wins; see AttachHubLabel), so auto-planned queries over ps start
// using it immediately.
func (db *DB) BuildHubLabelIndex(ps *NodePoints, maxK int, opt *HubLabelOptions) (*HubLabelIndex, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("graphrnn: maxK must be >= 1, got %d", maxK)
	}
	pageSize, buffer, paged, path, build := opt.defaults()
	lab, bst, err := hublabel.BuildOpt(db.graph.g, hublabel.BuildOptions{Workers: build.Workers})
	if err != nil {
		return nil, err
	}
	h := &HubLabelIndex{db: db, lab: lab, node: ps, compress: build.Compression}
	h.build = HubLabelBuildStats{
		Workers:     bst.Workers,
		Batches:     bst.Batches,
		Landmarks:   bst.Landmarks,
		Visits:      bst.Visits,
		Pruned:      bst.Pruned,
		Resweeps:    bst.Resweeps,
		WallSeconds: bst.Wall.Seconds(),
	}
	src := hublabel.Source(lab)
	if paged {
		var file storage.PagedFile
		if path != "" {
			osf, err := storage.CreateOSFile(path, pageSize)
			if err != nil {
				return nil, err
			}
			file = osf
		} else {
			file = storage.NewMemFile(pageSize)
		}
		if err := hublabel.WriteOpt(lab, file, hublabel.WriteOptions{Compression: build.Compression}); err != nil {
			file.Close()
			return nil, err
		}
		bm := db.pool.attach("hublabel", file, buffer)
		h.store, err = hublabel.OpenStoreBuffer(file, bm)
		if err != nil {
			_ = bm.Detach()
			file.Close()
			return nil, err
		}
		src = h.store
		h.build.LabelBytes = h.store.PayloadBytes()
		h.build.RawLabelBytes = h.store.RawBytes()
	}
	h.idx, err = hublabel.NewIndex(src, maxK, hubPointsOf(ps))
	if err != nil {
		h.Close()
		return nil, err
	}
	db.AttachHubLabel(h)
	return h, nil
}

// OpenHubLabelIndex reopens a labeling previously persisted at path (via
// Options.Path or SaveTo) and rebuilds the reverse index over ps — the
// restart path: no pruned-landmark build runs, labels fault in through the
// LRU buffer on demand. Like BuildHubLabelIndex, the reopened index is
// attached to the planner.
func (db *DB) OpenHubLabelIndex(ps *NodePoints, maxK int, path string, opt *HubLabelOptions) (*HubLabelIndex, error) {
	_, buffer, _, _, _ := opt.defaults()
	// The page size lives in the file header, so reopening needs no
	// recollection of the build-time options.
	pageSize, err := hublabel.FilePageSize(path)
	if err != nil {
		return nil, err
	}
	file, err := storage.OpenOSFile(path, pageSize)
	if err != nil {
		return nil, err
	}
	bm := db.pool.attach("hublabel", file, buffer)
	store, err := hublabel.OpenStoreBuffer(file, bm)
	if err != nil {
		_ = bm.Detach()
		file.Close()
		return nil, err
	}
	if store.NumNodes() != db.store.NumNodes() {
		_ = bm.Detach()
		file.Close()
		return nil, fmt.Errorf("graphrnn: label file covers %d nodes, graph has %d",
			store.NumNodes(), db.store.NumNodes())
	}
	h := &HubLabelIndex{db: db, store: store, node: ps, compress: store.Compressed()}
	h.build.LabelBytes = store.PayloadBytes()
	h.build.RawLabelBytes = store.RawBytes()
	h.idx, err = hublabel.NewIndex(store, maxK, hubPointsOf(ps))
	if err != nil {
		file.Close()
		return nil, err
	}
	db.AttachHubLabel(h)
	return h, nil
}

// SaveTo persists the labeling into a fresh page file at path, so a later
// process can OpenHubLabelIndex it. Only available on indexes built in this
// process (an index reopened from a file is already persisted).
func (h *HubLabelIndex) SaveTo(path string) error {
	if h.lab == nil {
		return fmt.Errorf("graphrnn: index was opened from a label file; it is already persisted")
	}
	pageSize := storage.DefaultPageSize
	f, err := storage.CreateOSFile(path, pageSize)
	if err != nil {
		return err
	}
	if err := hublabel.WriteOpt(h.lab, f, hublabel.WriteOptions{Compression: h.compress}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Close detaches the index from the planner (when it is the attached one)
// and releases the label pages from the shared buffer pool and the label
// file, if any. Queries must not be in flight.
func (h *HubLabelIndex) Close() error {
	if h.db != nil {
		h.db.planHub.CompareAndSwap(h, nil)
	}
	if h.store != nil {
		return h.store.Close()
	}
	return nil
}

// MaxK returns the largest monochromatic query k the thresholds support
// (bichromatic queries are not bounded by it).
func (h *HubLabelIndex) MaxK() int { return h.idx.MaxK() }

// LabelEntries returns the total number of hub label entries.
func (h *HubLabelIndex) LabelEntries() int {
	if h.store != nil {
		return h.store.Entries()
	}
	return h.lab.Entries()
}

// AverageLabelSize returns the mean label entries per node.
func (h *HubLabelIndex) AverageLabelSize() float64 {
	if h.store != nil {
		return h.store.AverageLabelSize()
	}
	return h.lab.AverageLabelSize()
}

// BuildStats returns the construction counters. An index reopened from a
// file reports only the label-byte fields (nothing was built).
func (h *HubLabelIndex) BuildStats() HubLabelBuildStats { return h.build }

// Compressed reports whether labels are served delta+varint encoded.
func (h *HubLabelIndex) Compressed() bool { return h.compress }

// LabelBytes returns the stored label payload and what the raw fixed-width
// codec would occupy; both 0 when labels are served from plain memory.
func (h *HubLabelIndex) LabelBytes() (stored, raw int64) {
	if h.store == nil {
		return 0, 0
	}
	return h.store.PayloadBytes(), h.store.RawBytes()
}

// IOStats returns the label-file traffic; zero when labels are served from
// memory.
func (h *HubLabelIndex) IOStats() IOStats {
	if h.store == nil {
		return IOStats{}
	}
	s := h.store.Stats()
	return IOStats{Reads: s.Reads, Hits: s.Hits, Writes: s.Writes}
}

// ResetIOStats zeroes the label-file counters.
func (h *HubLabelIndex) ResetIOStats() {
	if h.store != nil {
		h.store.ResetStats()
	}
}

// DropCache empties the label buffer (cold-start experiments).
func (h *HubLabelIndex) DropCache() error {
	if h.store == nil {
		return nil
	}
	return h.store.Buffer().Invalidate()
}

// InsertNode places a new point on node n of the tracked point set and
// incrementally repairs the hub lists and thresholds. Requires exclusive
// access, like every mutating operation.
func (h *HubLabelIndex) InsertNode(n NodeID) (PointID, Stats, error) {
	if h.node == nil {
		return -1, Stats{}, fmt.Errorf("graphrnn: hub-label index does not track a point set")
	}
	p, err := h.node.Place(n)
	if err != nil {
		return -1, Stats{}, err
	}
	st, err := h.idx.Insert(points.PointID(p), graph.NodeID(n))
	return p, hubStats(st), err
}

// DeletePoint removes point p from the tracked set, repairing the affected
// hub lists and thresholds.
func (h *HubLabelIndex) DeletePoint(p PointID) (Stats, error) {
	if h.node == nil {
		return Stats{}, fmt.Errorf("graphrnn: hub-label index does not track a point set")
	}
	if err := h.node.Delete(p); err != nil {
		return Stats{}, err
	}
	st, err := h.idx.Delete(points.PointID(p))
	return hubStats(st), err
}

// RepairInsert incrementally adds an already-placed point of the tracked
// set to the reverse index — the maintenance path for callers that mutate
// the point set through another substrate (e.g. a materialized index) and
// repair this one in place instead of rebuilding it. The point must
// already reside on node n.
func (h *HubLabelIndex) RepairInsert(p PointID, n NodeID) (Stats, error) {
	if h.node == nil {
		return Stats{}, fmt.Errorf("graphrnn: hub-label index does not track a point set")
	}
	if on, ok := h.node.NodeOf(p); !ok || on != n {
		return Stats{}, fmt.Errorf("graphrnn: point %d is not placed on node %d", p, n)
	}
	st, err := h.idx.Insert(points.PointID(p), graph.NodeID(n))
	return hubStats(st), err
}

// RepairDelete incrementally removes a point from the reverse index after
// it was deleted from the tracked set elsewhere; the counterpart of
// RepairInsert.
func (h *HubLabelIndex) RepairDelete(p PointID) (Stats, error) {
	if h.node == nil {
		return Stats{}, fmt.Errorf("graphrnn: hub-label index does not track a point set")
	}
	if _, ok := h.node.NodeOf(p); ok {
		return Stats{}, fmt.Errorf("graphrnn: point %d still resides in the tracked set", p)
	}
	st, err := h.idx.Delete(points.PointID(p))
	return hubStats(st), err
}

func hubPointsOf(ps *NodePoints) []hublabel.PointOnNode {
	ids := ps.Points()
	out := make([]hublabel.PointOnNode, 0, len(ids))
	for _, p := range ids {
		n, ok := ps.NodeOf(p)
		if !ok {
			continue // concurrently deleted since Points(): nothing to index
		}
		out = append(out, hublabel.PointOnNode{P: points.PointID(p), Node: graph.NodeID(n)})
	}
	return out
}

func hubStats(st hublabel.QueryStats) Stats {
	return statsOf(coreHubStats(st))
}

// coreHubStats maps hub-label query counters onto core.Stats, so the
// hub-label dispatch flows through the same wrapResult as every expansion
// algorithm (and its LabelReads/LabelEntries survive to the public API).
func coreHubStats(st hublabel.QueryStats) core.Stats {
	return core.Stats{
		LabelReads:    st.LabelReads,
		LabelEntries:  st.Entries,
		Verifications: st.Fallbacks,
	}
}

// hiddenIn identifies the point an exclusion view hides. Views produced by
// Excluding resolve in O(1); the index best-effort-validates that the view
// matches the tracked set and errors on a detectable mismatch (like
// EagerM, the substrate answers over the set it was built on).
func (h *HubLabelIndex) hiddenIn(v points.NodeView) (points.PointID, error) {
	return h.idx.HiddenIn(v)
}

// runRNN executes a monochromatic query through the index under ec.
func (h *HubLabelIndex) runRNN(ec *exec.Ctx, v points.NodeView, q NodeID, k int) (*core.Result, error) {
	hidden, err := h.hiddenIn(v)
	if err != nil {
		return nil, err
	}
	pts, st, err := h.idx.RkNNExec(ec, graph.NodeID(q), k, hidden)
	return hubResult(pts, st, err)
}

// runContinuous executes a route query through the index under ec.
func (h *HubLabelIndex) runContinuous(ec *exec.Ctx, v points.NodeView, route []NodeID, k int) (*core.Result, error) {
	hidden, err := h.hiddenIn(v)
	if err != nil {
		return nil, err
	}
	pts, st, err := h.idx.ContinuousRkNNExec(ec, toNodeIDs(route), k, hidden)
	return hubResult(pts, st, err)
}

// runBichromatic executes a bichromatic query: sites come from the index,
// candidates from the caller's view.
func (h *HubLabelIndex) runBichromatic(ec *exec.Ctx, cands, sites points.NodeView, q NodeID, k int) (*core.Result, error) {
	hiddenSite, err := h.hiddenIn(sites)
	if err != nil {
		return nil, err
	}
	pts, st, err := h.idx.BichromaticRkNNExec(ec, cands, graph.NodeID(q), k, hiddenSite)
	return hubResult(pts, st, err)
}

// hubResult shapes a hub-label answer like a core result: on an
// execution-control error the partial stats ride along with it.
func hubResult(pts []points.PointID, st hublabel.QueryStats, err error) (*core.Result, error) {
	if err != nil && !exec.IsExecErr(err) {
		return nil, err
	}
	return &core.Result{Points: pts, Stats: coreHubStats(st)}, err
}
