package graphrnn

import (
	"fmt"

	"graphrnn/internal/points"
)

// This file is the query planner: it validates a declarative Query, unifies
// its node-/edge-resident shapes, and resolves the substrate the engine
// runs — the piece that lets callers stop hard-coding an algorithm at every
// call site. The policy, in order:
//
//  1. An explicit Algorithm that can run the query's shape is honored.
//  2. An explicit Algorithm that cannot (hub-label on an edge-resident set,
//     k beyond an index's maxK, an index over a different point set) falls
//     back down the auto chain — unless Query.Strict, which preserves the
//     deprecated entry points' hard errors.
//  3. Auto (the zero Algorithm) picks the fastest attached substrate:
//     hub-label intersection when an attached index covers the shape,
//     eager-M when an attached materialization does, and otherwise plain
//     expansion — eager on disk-backed graphs (lowest page I/O, §3.2) and
//     on low-diameter networks, lazy on memory-backed high-diameter
//     networks (average degree <= 3, road-like), where its
//     verification-side pruning saves CPU and no I/O is at stake (§6.1).
//
// BuildHubLabelIndex / OpenHubLabelIndex and MaterializeNodePoints /
// MaterializeEdgePoints attach their substrate to the DB automatically
// (last built wins); AttachHubLabel / AttachMaterialization override.

// lazyMaxAvgDegree is the planner's diameter proxy: at average degree <= 3
// (road networks sit near 2.5) expansion frontiers grow slowly enough that
// lazy's verification side effects prune effectively; above it the paper's
// "exponential expansion" effect makes lazy hopeless (Fig 15).
const lazyMaxAvgDegree = 3.0

// Plan records the planner's decision for one query.
type Plan struct {
	// Kind of the planned query.
	Kind Kind
	// Edge reports an edge-resident (unrestricted network) shape.
	Edge bool
	// Algorithm is the substrate the engine runs. For auto-selected plans
	// it carries the attached index or materialization it resolved to.
	Algorithm Algorithm
	// Fallback reports that the hinted Algorithm could not run this shape
	// and was replaced.
	Fallback bool
	// Reason states why the substrate was chosen, in one stable line.
	Reason string
}

// Explain renders the decision as one stable line, e.g.
//
//	rnn via hub-label: attached hub-label index answers this shape by label intersection
//
// vetrnn:deterministic
func (p Plan) Explain() string {
	shape := p.Kind.String()
	if p.Edge {
		shape += "/edge"
	}
	return fmt.Sprintf("%s via %s: %s", shape, p.Algorithm, p.Reason)
}

// Plan resolves the substrate the engine would run q with, without
// executing anything. The file-level comment on plan.go documents the
// policy; Result.Plan echoes the same decision after Run.
func (db *DB) Plan(q Query) (Plan, error) {
	pl, err := db.plan(q)
	return pl.plan, err
}

// AttachHubLabel registers idx as the hub-label substrate the planner may
// auto-select (nil detaches). BuildHubLabelIndex and OpenHubLabelIndex
// attach their index automatically; explicit attachment is for serving
// several indexes from one process. Safe to call while queries run.
func (db *DB) AttachHubLabel(idx *HubLabelIndex) { db.planHub.Store(idx) }

// AttachedHubLabel returns the planner's current hub-label substrate, if
// any.
func (db *DB) AttachedHubLabel() *HubLabelIndex { return db.planHub.Load() }

// AttachMaterialization registers m as the materialized-list substrate the
// planner may auto-select (nil detaches). MaterializeNodePoints and
// MaterializeEdgePoints attach automatically. Safe to call while queries
// run.
func (db *DB) AttachMaterialization(m *Materialization) { db.planMat.Store(m) }

// AttachedMaterialization returns the planner's current materialization,
// if any.
func (db *DB) AttachedMaterialization() *Materialization { return db.planMat.Load() }

// planned is a validated Query with its views, target and substrate
// resolved — everything the engine dispatch needs.
type planned struct {
	plan  Plan
	k     int
	qnode NodeID // node-target kinds over node-resident sets
	loc   Location
	route []NodeID
	// Exactly one residency pair is populated.
	node   NodePointsView
	nsites NodePointsView
	edge   EdgePointsView
	esites EdgePointsView
}

func planErr(format string, args ...any) (planned, error) {
	return planned{}, fmt.Errorf("graphrnn: "+format, args...)
}

// plan validates q and resolves the planned execution.
func (db *DB) plan(q Query) (planned, error) {
	pl := planned{k: q.K, route: q.Route}
	pl.plan.Kind = q.Kind
	if q.Kind < KindRNN || q.Kind > KindKNN {
		return planErr("unknown query kind %d", int(q.Kind))
	}
	if q.K < 1 {
		return planErr("k must be >= 1, got %d", q.K)
	}
	if q.Points == nil {
		return planErr("query names no point set (Query.Points)")
	}
	if q.Sites != nil && q.Kind != KindBichromatic {
		return planErr("sites are only meaningful for bichromatic queries (kind %s)", q.Kind)
	}
	if q.Kind == KindBichromatic && q.Sites == nil {
		return planErr("bichromatic query requires a site set (Query.Sites)")
	}
	if len(q.Route) > 0 && q.Kind != KindContinuous {
		return planErr("route is only meaningful for continuous queries (kind %s)", q.Kind)
	}
	if q.Kind == KindContinuous && len(q.Route) == 0 {
		return planErr("continuous query requires a route (Query.Route)")
	}

	switch ps := q.Points.(type) {
	case pointsArg:
		pl.node = ps.nodeView()
	case edgeArg:
		pl.plan.Edge = true
		pl.edge = ps.edgeView()
	default:
		return planErr("unsupported point set type %T", q.Points)
	}
	if q.Kind == KindBichromatic {
		switch ss := q.Sites.(type) {
		case pointsArg:
			if pl.plan.Edge {
				return planErr("candidates are edge-resident but sites are node-resident; both sets must share one residency")
			}
			pl.nsites = ss.nodeView()
		case edgeArg:
			if !pl.plan.Edge {
				return planErr("candidates are node-resident but sites are edge-resident; both sets must share one residency")
			}
			pl.esites = ss.edgeView()
		default:
			return planErr("unsupported site set type %T", q.Sites)
		}
	}

	// Targets: node-resident sets take node targets; edge-resident sets
	// take any Location. Continuous queries ignore Target.
	if q.Kind != KindContinuous {
		if pl.plan.Edge {
			pl.loc = q.Target
		} else {
			if q.Target.U != q.Target.V || q.Target.Pos != 0 {
				return planErr("node-resident point sets take node targets (NodeLocation); got edge location (%d,%d)@%v",
					q.Target.U, q.Target.V, q.Target.Pos)
			}
			pl.qnode = q.Target.U
		}
	}

	if err := db.resolveAlgorithm(q, &pl); err != nil {
		return planned{}, err
	}
	return pl, nil
}

// resolveAlgorithm fills pl.plan.{Algorithm,Fallback,Reason} per the policy
// documented at the top of this file.
func (db *DB) resolveAlgorithm(q Query, pl *planned) error {
	if q.Kind == KindKNN {
		// One substrate answers forward KNN, so a named algorithm is an
		// incompatible hint like any other: a hard error under Strict, a
		// reported fallback otherwise.
		pl.plan.Algorithm = Algorithm{kind: algoExpansion}
		pl.plan.Reason = "forward network expansion is the only KNN substrate"
		if q.Algorithm.kind != algoAuto {
			if q.Strict {
				return fmt.Errorf("graphrnn: knn has a single substrate; it does not take an algorithm (got %s)", q.Algorithm)
			}
			pl.plan.Fallback = true
			pl.plan.Reason = fmt.Sprintf("hinted %s does not apply to knn (single substrate); fell back to expansion", q.Algorithm)
		}
		return nil
	}
	if q.Algorithm.kind != algoAuto {
		if q.Strict {
			// The deprecated entry points' contract: the named algorithm
			// runs or errors; the planner never substitutes.
			pl.plan.Algorithm = q.Algorithm
			pl.plan.Reason = "explicit algorithm (strict)"
			return nil
		}
		why := db.incompatible(q.Algorithm, pl)
		if why == "" {
			pl.plan.Algorithm = q.Algorithm
			pl.plan.Reason = "explicit algorithm"
			return nil
		}
		db.autoSelect(pl, q.Algorithm.kind)
		pl.plan.Fallback = true
		pl.plan.Reason = fmt.Sprintf("hinted %s cannot run this shape (%s); fell back to %s",
			q.Algorithm, why, pl.plan.Algorithm)
		return nil
	}
	db.autoSelect(pl, algoAuto)
	return nil
}

// autoSelect walks the auto chain, skipping the substrate kind `avoid` (the
// hinted substrate a fallback is escaping; only the indexed substrates can
// be incompatible, the expansion algorithms run every shape).
func (db *DB) autoSelect(pl *planned, avoid algoKind) {
	if avoid != algoHub {
		if idx := db.planHub.Load(); idx != nil && db.incompatible(HubLabel(idx), pl) == "" {
			pl.plan.Algorithm = HubLabel(idx)
			pl.plan.Reason = "attached hub-label index answers this shape by label intersection"
			return
		}
	}
	if avoid != algoEagerM {
		if m := db.planMat.Load(); m != nil && db.incompatible(EagerM(m), pl) == "" {
			pl.plan.Algorithm = EagerM(m)
			pl.plan.Reason = "attached materialization serves the K-NN list probes (eager-M)"
			return
		}
	}
	if db.disk == nil && db.graph.AverageDegree() <= lazyMaxAvgDegree {
		pl.plan.Algorithm = Lazy()
		pl.plan.Reason = "lazy expansion saves CPU on a memory-backed high-diameter network"
		return
	}
	pl.plan.Algorithm = Eager()
	pl.plan.Reason = "eager expansion prunes with range-NN probes at the lowest page I/O"
}

// incompatible reports why algo cannot run the planned shape ("" when it
// can). The expansion algorithms run every shape; the indexed substrates
// are bound to the point set (bichromatic: the sites) and k range they
// were built for.
func (db *DB) incompatible(algo Algorithm, pl *planned) string {
	switch algo.kind {
	case algoHub:
		h := algo.hub
		if h == nil || h.idx == nil {
			return "no hub-label index"
		}
		if pl.plan.Edge {
			return "hub-label supports node-resident point sets only"
		}
		if pl.plan.Kind != KindBichromatic && pl.k > h.MaxK() {
			return fmt.Sprintf("k=%d exceeds the index's materialized thresholds (maxK %d)", pl.k, h.MaxK())
		}
		tracked := pl.node
		if pl.plan.Kind == KindBichromatic {
			tracked = pl.nsites
		}
		if h.node == nil || baseNodeView(tracked.v) != points.NodeView(h.node.s) {
			return "the index tracks a different point set"
		}
	case algoEagerM:
		m := algo.mat
		if m == nil || m.m == nil {
			return "no materialization"
		}
		if pl.k > m.MaxK() {
			return fmt.Sprintf("k=%d exceeds the materialized lists (maxK %d)", pl.k, m.MaxK())
		}
		if pl.plan.Edge {
			tracked := pl.edge
			if pl.plan.Kind == KindBichromatic {
				tracked = pl.esites
			}
			if m.edge == nil || baseEdgeView(tracked.v) != points.EdgeView(m.edge.s) {
				return "the materialization tracks a different point set"
			}
		} else {
			tracked := pl.node
			if pl.plan.Kind == KindBichromatic {
				tracked = pl.nsites
			}
			if m.node == nil || baseNodeView(tracked.v) != points.NodeView(m.node.s) {
				return "the materialization tracks a different point set"
			}
		}
	}
	return ""
}

// baseNodeView strips exclusion wrappers off a node view, recovering the
// underlying set for identity comparison against a substrate's tracked set.
func baseNodeView(v points.NodeView) points.NodeView {
	for {
		hv, ok := v.(points.HiddenPointView)
		if !ok {
			return v
		}
		v = hv.Unhidden()
	}
}

// baseEdgeView is baseNodeView for edge-resident views.
func baseEdgeView(v points.EdgeView) points.EdgeView {
	for {
		hv, ok := v.(points.HiddenEdgePointView)
		if !ok {
			return v
		}
		v = hv.UnhiddenEdge()
	}
}
