package graphrnn

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphrnn/internal/core"
	"graphrnn/internal/graph"
)

// assertSameLists compares every materialized list of two materializations
// bit for bit — the oracle check that an abandoned-and-rolled-back
// maintenance history equals a from-scratch rebuild.
func assertSameLists(t *testing.T, got, want *Materialization, context string) {
	t.Helper()
	if got.m.NumNodes() != want.m.NumNodes() {
		t.Fatalf("%s: %d nodes vs %d", context, got.m.NumNodes(), want.m.NumNodes())
	}
	var glst, wlst []core.MatEntry
	var err error
	for n := 0; n < got.m.NumNodes(); n++ {
		if glst, err = got.m.List(graph.NodeID(n), glst); err != nil {
			t.Fatalf("%s: %v", context, err)
		}
		if wlst, err = want.m.List(graph.NodeID(n), wlst); err != nil {
			t.Fatalf("%s: %v", context, err)
		}
		if len(glst) != len(wlst) {
			t.Fatalf("%s: node %d list = %v, want %v", context, n, glst, wlst)
		}
		for i := range glst {
			if glst[i] != wlst[i] {
				t.Fatalf("%s: node %d list = %v, want %v", context, n, glst, wlst)
			}
		}
	}
}

// matHarness is one configuration of the abandonment property test.
type matHarness struct {
	name string
	edge bool // edge-resident point set
	disk bool // persisted (SaveTo + OpenMaterialization), journal on disk
}

var matHarnesses = []matHarness{
	{"node-memory", false, false},
	{"node-disk", false, true},
	{"edge-memory", true, false},
	{"edge-disk", true, true},
}

// buildHarness assembles a materialization of the requested shape over a
// small grid graph with a random point set.
func buildHarness(t *testing.T, rng *rand.Rand, h matHarness, db *DB, maxK int) *Materialization {
	t.Helper()
	g := db.Graph()
	var mat *Materialization
	var err error
	if h.edge {
		ps := db.NewEdgePoints()
		placed := 0
		g.Edges(func(u, v NodeID, w float64) {
			if placed < 12 && rng.Intn(3) == 0 {
				if _, err := ps.Place(u, v, w*rng.Float64()); err == nil {
					placed++
				}
			}
		})
		if placed == 0 {
			u, v, w := firstEdge(g)
			if _, err := ps.Place(u, v, w/2); err != nil {
				t.Fatal(err)
			}
		}
		mat, err = db.MaterializeEdgePoints(ps, maxK, nil)
	} else {
		var ps *NodePoints
		ps, err = db.PlaceRandomNodePoints(rng.Int63(), 8+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		mat, err = db.MaterializeNodePoints(ps, maxK, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !h.disk {
		return mat
	}
	path := filepath.Join(t.TempDir(), "lists.mat")
	if err := mat.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	opened, err := db.OpenMaterialization(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { opened.Close() })
	return opened
}

func firstEdge(g *Graph) (NodeID, NodeID, float64) {
	var fu, fv NodeID
	var fw float64
	found := false
	g.Edges(func(u, v NodeID, w float64) {
		if !found {
			fu, fv, fw = u, v, w
			found = true
		}
	})
	return fu, fv, fw
}

// rebuildOracle builds a fresh materialization over the same (current)
// point set — the from-scratch state the maintained lists must equal.
func rebuildOracle(t *testing.T, db *DB, mat *Materialization, maxK int) *Materialization {
	t.Helper()
	var oracle *Materialization
	var err error
	if ps := mat.NodePoints(); ps != nil {
		oracle, err = db.MaterializeNodePoints(ps, maxK, nil)
	} else {
		oracle, err = db.MaterializeEdgePoints(mat.EdgePoints(), maxK, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	return oracle
}

// randomOp performs one random maintenance operation under opt, returning
// whether it committed. Abandoned operations must report a typed exec
// error and leave the materialization clean (auto-rolled-back).
func randomOp(t *testing.T, rng *rand.Rand, db *DB, mat *Materialization, opt *QueryOptions, ctx context.Context) bool {
	t.Helper()
	var err error
	deletable := func() []PointID {
		if ps := mat.NodePoints(); ps != nil {
			return ps.Points()
		}
		return mat.EdgePoints().Points()
	}()
	doDelete := len(deletable) > 1 && rng.Intn(2) == 0
	switch {
	case doDelete:
		_, err = mat.DeletePointContext(ctx, deletable[rng.Intn(len(deletable))], opt)
	case mat.NodePoints() != nil:
		n := NodeID(rng.Intn(db.Graph().NumNodes()))
		if _, taken := mat.NodePoints().PointAt(n); taken {
			return false
		}
		_, _, err = mat.InsertNodeContext(ctx, n, opt)
	default:
		u, v, w := firstEdge(db.Graph())
		_, _, err = mat.InsertEdgeContext(ctx, u, v, w*rng.Float64(), opt)
	}
	if err != nil && !IsExecErr(err) {
		t.Fatalf("maintenance failed with a non-exec error: %v", err)
	}
	if state := mat.RepairState(); state != RepairClean {
		t.Fatalf("after op (err=%v): RepairState = %v, want clean", err, state)
	}
	return err == nil
}

// TestMaintenanceAbandonedOpsRollBack is the abandonment property test:
// maintenance operations abandoned at randomized poll points (tiny node
// budgets hit mid-expansion) must leave the materialization queryable and
// bit-identical to a from-scratch rebuild over the surviving point set —
// across node/edge point sets and memory/persisted list files.
func TestMaintenanceAbandonedOpsRollBack(t *testing.T) {
	for _, h := range matHarnesses {
		t.Run(h.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(70))
			g, err := GenerateGrid(71, 144, 4)
			if err != nil {
				t.Fatal(err)
			}
			db, err := Open(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			const maxK = 2
			mat := buildHarness(t, rng, h, db, maxK)
			committed, abandoned := 0, 0
			for op := 0; op < 40; op++ {
				// 1..6 nodes of budget abandons most repairs mid-flight at
				// a different poll point each time; occasionally unlimited
				// so the history also contains committed operations.
				var opt *QueryOptions
				if rng.Intn(4) > 0 {
					opt = &QueryOptions{Budget: Budget{MaxNodes: int64(1 + rng.Intn(6))}}
				}
				if randomOp(t, rng, db, mat, opt, context.Background()) {
					committed++
				} else {
					abandoned++
				}
			}
			if abandoned == 0 {
				t.Fatal("property test abandoned no operations; budgets too loose")
			}
			// Recover is a no-op on a clean materialization.
			if pending, err := mat.Recover(); err != nil || pending {
				t.Fatalf("Recover() = %t, %v; want false, nil", pending, err)
			}
			oracle := rebuildOracle(t, db, mat, maxK)
			assertSameLists(t, mat, oracle, h.name)
		})
	}
}

// TestMaintenanceAsyncCancelRace abandons maintenance via real context
// cancellation from a second goroutine — the -race half of the property
// test — and checks the rolled-back materialization still equals a
// rebuild.
func TestMaintenanceAsyncCancelRace(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g, err := GenerateGrid(73, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	const maxK = 2
	mat := buildHarness(t, rng, matHarness{name: "node-memory"}, db, maxK)
	for op := 0; op < 25; op++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(rng.Intn(200)) * time.Microsecond)
		randomOp(t, rng, db, mat, nil, ctx)
		cancel()
	}
	oracle := rebuildOracle(t, db, mat, maxK)
	assertSameLists(t, mat, oracle, "async cancel")
}

// TestMaintenanceCrashRecovery simulates a process crash mid-repair on a
// persisted materialization — the journal holds an uncommitted operation,
// dirty list pages have partially reached the file — and checks
// OpenMaterialization rolls the operation back: lists equal the state of
// the last committed operation and the point set reopens without the
// crashed mutation.
func TestMaintenanceCrashRecovery(t *testing.T) {
	for _, h := range []matHarness{{"node", false, true}, {"edge", true, true}} {
		t.Run(h.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(74))
			g, err := GenerateGrid(75, 196, 4)
			if err != nil {
				t.Fatal(err)
			}
			db, err := Open(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			const maxK = 2
			built := buildHarness(t, rng, matHarness{name: h.name, edge: h.edge}, db, maxK)
			path := filepath.Join(t.TempDir(), "crash.mat")
			if err := built.SaveTo(path); err != nil {
				t.Fatal(err)
			}
			mat, err := db.OpenMaterialization(path, nil)
			if err != nil {
				t.Fatal(err)
			}

			// One committed operation after opening: recovery must keep it.
			if !randomOp(t, rng, db, mat, nil, context.Background()) {
				t.Fatal("unbounded op did not commit")
			}
			pointsBefore := currentPoints(mat)

			// Crash: a budget abandons the repair, testCrash suppresses the
			// inline rollback, and the dirty pages hit the file like an
			// eviction storm would.
			mat.testCrash = true
			abandonedOne := false
			for op := 0; op < 20 && !abandonedOne; op++ {
				opt := &QueryOptions{Budget: Budget{MaxNodes: int64(1 + rng.Intn(4))}}
				if !randomOpCrash(t, rng, db, mat, opt) {
					abandonedOne = true
				}
			}
			if !abandonedOne {
				t.Fatal("no operation was abandoned; cannot simulate a crash")
			}
			if mat.RepairState() != RepairPendingRollback {
				t.Fatalf("RepairState = %v, want pending-rollback", mat.RepairState())
			}
			if err := mat.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := mat.Close(); err != nil {
				t.Fatal(err)
			}

			// Next process: reopen through journal recovery.
			reopened, err := db.OpenMaterialization(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			if reopened.RepairState() != RepairClean {
				t.Fatalf("reopened RepairState = %v, want clean", reopened.RepairState())
			}
			if got := currentPoints(reopened); !samePointMaps(got, pointsBefore) {
				t.Fatalf("point set after recovery = %v, want %v", got, pointsBefore)
			}
			oracle := rebuildOracle(t, db, reopened, maxK)
			assertSameLists(t, reopened, oracle, "crash recovery")
		})
	}
}

// randomOpCrash is randomOp without the clean-state assertion (testCrash
// intentionally leaves the journal pending).
func randomOpCrash(t *testing.T, rng *rand.Rand, db *DB, mat *Materialization, opt *QueryOptions) bool {
	t.Helper()
	var err error
	deletable := func() []PointID {
		if ps := mat.NodePoints(); ps != nil {
			return ps.Points()
		}
		return mat.EdgePoints().Points()
	}()
	if len(deletable) > 1 && rng.Intn(2) == 0 {
		_, err = mat.DeletePointContext(context.Background(), deletable[rng.Intn(len(deletable))], opt)
	} else if ps := mat.NodePoints(); ps != nil {
		n := NodeID(rng.Intn(db.Graph().NumNodes()))
		if _, taken := ps.PointAt(n); taken {
			return true
		}
		_, _, err = mat.InsertNodeContext(context.Background(), n, opt)
	} else {
		u, v, w := firstEdge(db.Graph())
		_, _, err = mat.InsertEdgeContext(context.Background(), u, v, w*rng.Float64(), opt)
	}
	if err != nil && !IsExecErr(err) {
		t.Fatalf("maintenance failed with a non-exec error: %v", err)
	}
	return err == nil
}

// currentPoints snapshots the tracked set as id -> location for equality
// checks across recovery.
func currentPoints(m *Materialization) map[PointID]Location {
	out := make(map[PointID]Location)
	if ps := m.NodePoints(); ps != nil {
		for _, p := range ps.Points() {
			n, _ := ps.NodeOf(p)
			out[p] = NodeLocation(n)
		}
		return out
	}
	ps := m.EdgePoints()
	for _, p := range ps.Points() {
		loc, _ := ps.LocationOf(p)
		out[p] = loc
	}
	return out
}

func samePointMaps(a, b map[PointID]Location) bool {
	if len(a) != len(b) {
		return false
	}
	for p, loc := range a {
		if b[p] != loc {
			return false
		}
	}
	return true
}

// TestPlainMaintenanceRollsBackPointSet is the satellite-2 regression: a
// plain (non-context) maintenance operation whose list repair fails must
// not leave the point set and the lists disagreeing — the Place/Delete is
// rolled back with the lists.
func TestPlainMaintenanceRollsBackPointSet(t *testing.T) {
	g, err := GenerateGrid(80, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(81, 10)
	if err != nil {
		t.Fatal(err)
	}
	const maxK = 2
	mat, err := db.MaterializeNodePoints(ps, maxK, nil)
	if err != nil {
		t.Fatal(err)
	}
	lenBefore := ps.Len()

	// Failed insert: the placed point must vanish again.
	free := NodeID(-1)
	for n := 0; n < g.NumNodes(); n++ {
		if _, taken := ps.PointAt(NodeID(n)); !taken {
			free = NodeID(n)
			break
		}
	}
	mat.m.InjectWriteFault(1)
	_, _, err = mat.InsertNode(free)
	mat.m.InjectWriteFault(0)
	if err == nil {
		t.Fatal("injected fault did not fail the insert")
	}
	if mat.RepairState() != RepairClean {
		t.Fatalf("RepairState = %v after rolled-back insert", mat.RepairState())
	}
	if _, taken := ps.PointAt(free); taken {
		t.Fatal("failed insert left its point in the set")
	}
	if ps.Len() != lenBefore {
		t.Fatalf("point set has %d points after failed insert, want %d", ps.Len(), lenBefore)
	}

	// Failed delete: the point must survive, on its node.
	victim := ps.Points()[0]
	victimNode, _ := ps.NodeOf(victim)
	mat.m.InjectWriteFault(1)
	_, err = mat.DeletePoint(victim)
	mat.m.InjectWriteFault(0)
	if err == nil {
		t.Fatal("injected fault did not fail the delete")
	}
	if n, ok := ps.NodeOf(victim); !ok || n != victimNode {
		t.Fatalf("failed delete removed point %d (node %d, ok=%t)", victim, n, ok)
	}

	// After both rollbacks the lists still equal a rebuild, and normal
	// maintenance proceeds.
	oracle := rebuildOracle(t, db, mat, maxK)
	assertSameLists(t, mat, oracle, "after plain-path rollbacks")
	if _, _, err := mat.InsertNode(free); err != nil {
		t.Fatalf("maintenance after rollback failed: %v", err)
	}
}

// TestDeletePointMissingEdge is the satellite-1 regression: deleting an
// edge-resident point whose edge the materialization's graph does not
// contain must fail with ErrMissingEdge instead of seeding the repair with
// a garbage distance.
func TestDeletePointMissingEdge(t *testing.T) {
	big := NewGraphBuilder(3)
	if err := big.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := big.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	g1, err := big.Build()
	if err != nil {
		t.Fatal(err)
	}
	small := NewGraphBuilder(3)
	if err := small.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g2, err := small.Build()
	if err != nil {
		t.Fatal(err)
	}
	db1, err := Open(g1, nil)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(g2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := db1.NewEdgePoints()
	if _, err := ps.Place(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	// Materialize over db2, whose graph shares edge (0,1) only.
	mat, err := db2.MaterializeEdgePoints(ps, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A point on an edge db2 does not know arrives afterwards.
	stray, err := ps.Place(1, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	_, err = mat.DeletePoint(stray)
	if !errors.Is(err, ErrMissingEdge) {
		t.Fatalf("DeletePoint over a missing edge returned %v, want ErrMissingEdge", err)
	}
	// The set is untouched: the error fired before any mutation.
	if _, ok := ps.LocationOf(stray); !ok {
		t.Fatal("failed delete removed the point")
	}
	// InsertEdge validates the same way.
	if _, _, err := mat.InsertEdge(1, 2, 0.1); !errors.Is(err, ErrMissingEdge) {
		t.Fatalf("InsertEdge over a missing edge returned %v, want ErrMissingEdge", err)
	}
	// And so does EdgePoints.Place on its own DB.
	ps2 := db2.NewEdgePoints()
	if _, err := ps2.Place(1, 2, 0.1); !errors.Is(err, ErrMissingEdge) {
		t.Fatalf("Place over a missing edge returned %v, want ErrMissingEdge", err)
	}
}

// TestMaintenanceBudgetAbandonsUpfrontDeadline pins the engine contract on
// the maintenance surface: an already-expired deadline fails before any
// page traffic and before any point-set mutation.
func TestMaintenanceBudgetAbandonsUpfrontDeadline(t *testing.T) {
	g, err := GenerateGrid(82, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.PlaceRandomNodePoints(83, 6)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.MaterializeNodePoints(ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	lenBefore := ps.Len()
	opt := &QueryOptions{Timeout: time.Nanosecond}
	if _, _, err := mat.InsertNodeContext(context.Background(), 0, opt); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("1ns insert returned %v, want ErrDeadlineExceeded", err)
	}
	if ps.Len() != lenBefore {
		t.Fatal("expired-deadline insert mutated the point set")
	}
	if mat.RepairState() != RepairClean {
		t.Fatalf("RepairState = %v", mat.RepairState())
	}
}

// TestMatOptionsPathPersistsBuild covers the build-time persistence knob:
// MaterializeNodePoints with MatOptions.Path must leave a reopenable list
// file (plus its journal) behind, keep tracking the caller's point set,
// serve lists bit-identical to a plain memory build, and — after committed
// maintenance, Close, and OpenMaterialization — reopen with the mutations
// intact.
func TestMatOptionsPathPersistsBuild(t *testing.T) {
	g, err := GenerateGrid(84, 144, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	const maxK = 2
	ps, err := db.PlaceRandomNodePoints(85, 12)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "built.mat")
	mat, err := db.MaterializeNodePoints(ps, maxK, &MatOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if mat.NodePoints() != ps {
		t.Fatal("Path-persisted build stopped tracking the caller's point set")
	}
	for _, p := range []string{path, path + ".journal"} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("Path build left no %s: %v", filepath.Base(p), err)
		}
	}
	oracle, err := db.MaterializeNodePoints(ps, maxK, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLists(t, mat, oracle, "fresh Path build vs memory build")

	// Committed maintenance lands in the caller's set and in the file.
	free := NodeID(-1)
	for n := 0; n < db.Graph().NumNodes(); n++ {
		if _, taken := ps.PointAt(NodeID(n)); !taken {
			free = NodeID(n)
			break
		}
	}
	if free < 0 {
		t.Fatal("grid fully occupied")
	}
	pid, _, err := mat.InsertNode(free)
	if err != nil {
		t.Fatal(err)
	}
	if at, taken := ps.PointAt(free); !taken || at != pid {
		t.Fatalf("insert landed as (%v, %t) in the tracked set, want (%v, true)", at, taken, pid)
	}
	victim := ps.Points()[0]
	if _, err := mat.DeletePoint(victim); err != nil {
		t.Fatal(err)
	}

	if err := mat.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := db.OpenMaterialization(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reopened.Close() })
	got, want := reopened.NodePoints().Points(), ps.Points()
	if len(got) != len(want) {
		t.Fatalf("reopened set has %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reopened set = %v, want %v", got, want)
		}
	}
	oracle2 := rebuildOracle(t, db, reopened, maxK)
	assertSameLists(t, reopened, oracle2, "reopened after maintenance")
}

// TestMatOptionsPathEdgePoints is the edge-resident variant of the Path
// build, plus the failure mode: an unwritable path must surface as an
// error from the build itself.
func TestMatOptionsPathEdgePoints(t *testing.T) {
	g, err := GenerateGrid(86, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := db.NewEdgePoints()
	u, v, w := firstEdge(db.Graph())
	if _, err := ps.Place(u, v, w/3); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Place(u, v, 2*w/3); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "edges.mat")
	mat, err := db.MaterializeEdgePoints(ps, 2, &MatOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mat.Close() })
	if mat.EdgePoints() != ps {
		t.Fatal("Path-persisted edge build stopped tracking the caller's point set")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	oracle, err := db.MaterializeEdgePoints(ps, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLists(t, mat, oracle, "edge Path build vs memory build")

	bad := filepath.Join(t.TempDir(), "missing", "dir", "x.mat")
	if _, err := db.MaterializeEdgePoints(ps, 2, &MatOptions{Path: bad}); err == nil {
		t.Fatal("build into a nonexistent directory succeeded")
	}
}
