package graphrnn

import (
	"graphrnn/internal/storage"
)

// BufferPool is one shared LRU page cache for every paged substrate of the
// system: graph adjacency pages, materialized K-NN lists, hub-label pages
// and paged edge-point files all draw frames from the same pool, each
// attached as a named tenant with a frame quota. The pool is the single
// source of I/O accounting — per-tenant counters and the pool aggregate
// are maintained at the same increment sites.
//
// Every DB owns a pool: substrates built through the DB
// (Open's disk-backed graph, MaterializeNodePoints, BuildHubLabelIndex,
// EdgePoints.Paged) attach to it automatically, growing its capacity by
// their BufferPages so the default composition behaves exactly like the
// former independent per-substrate buffers. To share one pool across DBs
// — or to cap the process's total page cache and let quotas partition it —
// create a fixed-capacity pool with NewBufferPool and pass it through
// Options.Pool.
type BufferPool struct {
	p *storage.BufferPool
	// elastic pools (DB-owned) grow by each tenant's quota on attach;
	// fixed pools (NewBufferPool) keep the capacity the caller chose.
	elastic bool
}

// NewBufferPool creates a fixed-capacity pool of capPages frames, to be
// shared through Options.Pool. Tenants attach with their BufferPages as
// quota (0 = share the capacity freely). A capacity of zero caches
// nothing: every page access is a counted physical transfer.
func NewBufferPool(capPages int) *BufferPool {
	return &BufferPool{p: storage.NewBufferPool(capPages)}
}

func newElasticPool() *BufferPool {
	return &BufferPool{p: storage.NewBufferPool(0), elastic: true}
}

// attach registers file under the pool's sizing policy: elastic pools grow
// by the quota, fixed pools partition their capacity. quota may be
// storage.NoCache to keep the tenant's pages out of the pool.
func (bp *BufferPool) attach(name string, file storage.PagedFile, quota int) *storage.BufferManager {
	if bp.elastic {
		return bp.p.AttachGrowing(name, file, quota)
	}
	return bp.p.Attach(name, file, quota)
}

// TenantIOStats describes one substrate's view of a shared pool.
type TenantIOStats struct {
	// Name identifies the substrate ("graph", "mat", "hublabel",
	// "edgepoints").
	Name string
	// IOStats holds the tenant's own page traffic.
	IOStats
	// Frames is the number of pool frames the tenant currently holds.
	Frames int
	// Quota is the tenant's frame quota (0 = bounded by the pool only).
	Quota int
}

// PoolStats is a point-in-time snapshot of a shared pool.
type PoolStats struct {
	// IOStats aggregates the page traffic of every tenant.
	IOStats
	// Capacity is the pool's total frame budget.
	Capacity int
	// Tenants lists the attached substrates in attach order.
	Tenants []TenantIOStats
}

// Stats returns the pool-wide traffic and the per-tenant breakdown.
func (bp *BufferPool) Stats() PoolStats {
	out := PoolStats{
		IOStats:  ioStatsOf(bp.p.Stats()),
		Capacity: bp.p.Capacity(),
	}
	for _, t := range bp.p.TenantStats() {
		out.Tenants = append(out.Tenants, TenantIOStats{
			Name:    t.Name,
			IOStats: ioStatsOf(t.Stats),
			Frames:  t.Frames,
			Quota:   t.Quota,
		})
	}
	return out
}

// ResetStats zeroes the pool-wide and every tenant's counters.
func (bp *BufferPool) ResetStats() { bp.p.ResetStats() }

// BufferPool returns the pool the DB's substrates attach to. The pool
// always exists; on a fully memory-served DB it simply has no tenants.
func (db *DB) BufferPool() *BufferPool { return db.pool }

// PoolStats is shorthand for db.BufferPool().Stats().
func (db *DB) PoolStats() PoolStats { return db.pool.Stats() }

func ioStatsOf(s storage.Stats) IOStats {
	return IOStats{Reads: s.Reads, Hits: s.Hits, Writes: s.Writes, Evictions: s.Evictions}
}
