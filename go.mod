module graphrnn

go 1.24
