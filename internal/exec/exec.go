// Package exec carries per-query execution controls — cancellation, a
// deadline and work budgets — through the query algorithms. It is the
// substrate of the engine layer: every algorithm loop in internal/core and
// the hub-label intersection path poll a *Ctx between expansion steps and
// abandon the query with a typed error instead of running to completion.
//
// A nil *Ctx is the unbounded context: every method short-circuits on the
// nil receiver, so the plain (non-context) query path pays only a nil
// check per expansion step.
package exec

import (
	"context"
	"errors"
	"fmt"
)

// Typed execution errors. They are returned wrapped (with the offending
// limit in the message); match them with errors.Is.
var (
	// ErrCanceled reports that the query's context was canceled mid-flight.
	ErrCanceled = errors.New("query canceled")
	// ErrDeadlineExceeded reports that the query's deadline passed
	// mid-flight (or had already passed when the query was issued).
	ErrDeadlineExceeded = errors.New("query deadline exceeded")
	// ErrBudgetExceeded reports that the query exhausted its work budget
	// (nodes popped or physical page reads).
	ErrBudgetExceeded = errors.New("query budget exceeded")
)

// Budget caps the work one query may perform. The zero Budget is
// unlimited.
type Budget struct {
	// MaxNodes bounds the total number of nodes popped by the query: the
	// main expansion plus every sub-query (range-NN probes, verifications,
	// the lazy-EP point heap). 0 means unlimited.
	MaxNodes int64
	// MaxIOReads bounds the physical page reads performed while the query
	// runs. The reads are observed on the shared buffer pool, so under
	// concurrent traffic the charge is approximate (reads by overlapping
	// queries count toward the busiest query's budget). 0 means unlimited.
	MaxIOReads int64
}

// Zero reports whether the budget imposes no limit.
func (b Budget) Zero() bool { return b.MaxNodes == 0 && b.MaxIOReads == 0 }

// CheckStride is the polling interval, in popped nodes, that sub-expansions
// use between context checks: the main loops poll on every expansion step,
// the (much hotter) sub-query loops every CheckStride-th pop. It is a power
// of two so the stride test compiles to a mask.
const CheckStride = 64

// Ctx is the execution context of one query. It is not safe for concurrent
// use — each query runs on one goroutine and owns its Ctx.
type Ctx struct {
	done    <-chan struct{}
	ctx     context.Context
	nodeMax int64 // 0 = unlimited
	ioMax   int64 // absolute threshold (reads at start + MaxIOReads); 0 = unlimited
	io      func() int64
	emit    func(p int32, d float64)
}

// OnMember attaches f as the query's streaming member sink: the algorithm
// loops call Emit for every result member the moment it is confirmed, in
// confirmation order. f runs on the query's goroutine. d carries a network
// distance only for searches that have one per member (KNN); RkNN members
// report 0.
func (e *Ctx) OnMember(f func(p int32, d float64)) { e.emit = f }

// Emit forwards one confirmed member to the streaming sink, if any. A nil
// receiver or an unset sink makes it a no-op, so non-streamed queries pay
// one nil check per confirmed member.
func (e *Ctx) Emit(p int32, d float64) {
	if e != nil && e.emit != nil {
		e.emit(p, d)
	}
}

// New builds the execution context of a query issued under ctx with budget
// b. io reports the cumulative physical page reads of the query's buffer
// pool (nil when nothing is disk-backed, which makes an I/O budget
// vacuous). New returns nil — the unbounded context — when ctx carries no
// cancellation or deadline and the budget is zero, so unbounded queries
// skip all bookkeeping.
func New(ctx context.Context, b Budget, io func() int64) *Ctx {
	done := ctx.Done()
	if done == nil && b.Zero() {
		return nil
	}
	e := &Ctx{done: done, ctx: ctx, nodeMax: b.MaxNodes}
	if b.MaxIOReads > 0 && io != nil {
		e.io = io
		e.ioMax = io() + b.MaxIOReads
	}
	return e
}

// Check polls the context: it returns a typed error when the query was
// canceled, its deadline passed, or work (the total nodes popped so far) or
// the observed physical reads exceed the budget. A nil receiver always
// returns nil.
func (e *Ctx) Check(work int64) error {
	if e == nil {
		return nil
	}
	if e.done != nil {
		select {
		case <-e.done:
			return e.ctxErr()
		default:
		}
	}
	if e.nodeMax > 0 && work > e.nodeMax {
		return fmt.Errorf("%w: %d nodes popped (budget %d)", ErrBudgetExceeded, work, e.nodeMax)
	}
	if e.io != nil {
		if reads := e.io(); reads > e.ioMax {
			return fmt.Errorf("%w: pool at %d physical reads (budget ends at %d)", ErrBudgetExceeded, reads, e.ioMax)
		}
	}
	return nil
}

// ctxErr maps the context's error to the package's typed errors.
func (e *Ctx) ctxErr() error {
	err := e.ctx.Err()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	case err == nil:
		// Done closed without an error: treat as cancellation.
		return ErrCanceled
	default:
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
}

// IsExecErr reports whether err is one of the typed execution errors — the
// errors that carry a partial result rather than invalidate it.
func IsExecErr(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrBudgetExceeded)
}
