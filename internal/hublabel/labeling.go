// Package hublabel implements a 2-hop hub labeling over the networks of
// internal/graph and a ReHub-style reverse index that answers reverse
// k-nearest-neighbor queries by label-list intersection instead of network
// expansion (Efentakis & Pfoser, "ReHub: Extending Hub Labels for Reverse
// k-Nearest Neighbor Queries on Large-Scale Networks").
//
// The labeling is built with pruned landmark labeling (Akiba, Iwata &
// Yoshida, adapted to weighted graphs via Dijkstra): nodes are processed in
// descending degree order, and the expansion from each landmark is pruned
// wherever the labels built so far already certify a distance at least as
// good. The result is a 2-hop cover — for every connected pair (u, v) some
// hub on a shortest u→v path appears in both labels, so
//
//	d(u, v) = min over common hubs h of d(u→h) + d(h→v)
//
// holds exactly. Undirected graphs carry one label per node; directed
// graphs carry a forward label L_out(v) = {(h, d(v→h))} and a backward
// label L_in(v) = {(h, d(h→v))}.
//
// Labelings can be persisted into internal/storage paged files and served
// back through an LRU buffer (see Store), so an expensive build survives
// process restarts and label reads are I/O-accounted like every other
// substrate in this repository.
package hublabel

import (
	"fmt"
	"math"
	"sort"

	"graphrnn/internal/exec"
	"graphrnn/internal/graph"
	"graphrnn/internal/pq"
)

// Entry is one hub label entry: a hub node and the distance between the
// labeled node and the hub (direction depends on the label side).
type Entry struct {
	Hub  graph.NodeID
	Dist float64
}

// Source serves per-node labels to the query side, either from memory
// (*Labeling) or through a paged file and LRU buffer (*Store).
// Implementations are safe for concurrent readers.
type Source interface {
	NumNodes() int
	Directed() bool
	// OutLabel appends L_out(n) — entries (h, d(n→h)) sorted by hub id —
	// to buf and returns the result.
	OutLabel(n graph.NodeID, buf []Entry) ([]Entry, error)
	// InLabel appends L_in(n) — entries (h, d(h→n)) sorted by hub id. For
	// undirected labelings it equals OutLabel.
	InLabel(n graph.NodeID, buf []Entry) ([]Entry, error)
}

// labelSet is a CSR bundle of per-node labels sorted by hub id.
type labelSet struct {
	offsets []int32
	hubs    []graph.NodeID
	dists   []float64
}

func (s *labelSet) label(n graph.NodeID, buf []Entry) []Entry {
	buf = buf[:0]
	for i := s.offsets[n]; i < s.offsets[n+1]; i++ {
		buf = append(buf, Entry{Hub: s.hubs[i], Dist: s.dists[i]})
	}
	return buf
}

func (s *labelSet) size() int { return len(s.hubs) }

// Labeling is an immutable in-memory 2-hop labeling.
type Labeling struct {
	numNodes int
	directed bool
	out      labelSet // undirected labelings use out for both sides
	in       labelSet
}

// NumNodes implements Source.
func (l *Labeling) NumNodes() int { return l.numNodes }

// Directed implements Source.
func (l *Labeling) Directed() bool { return l.directed }

// OutLabel implements Source.
func (l *Labeling) OutLabel(n graph.NodeID, buf []Entry) ([]Entry, error) {
	if n < 0 || int(n) >= l.numNodes {
		return nil, fmt.Errorf("hublabel: node %d out of range [0,%d)", n, l.numNodes)
	}
	return l.out.label(n, buf), nil
}

// InLabel implements Source.
func (l *Labeling) InLabel(n graph.NodeID, buf []Entry) ([]Entry, error) {
	if n < 0 || int(n) >= l.numNodes {
		return nil, fmt.Errorf("hublabel: node %d out of range [0,%d)", n, l.numNodes)
	}
	if !l.directed {
		return l.out.label(n, buf), nil
	}
	return l.in.label(n, buf), nil
}

// Entries returns the total number of label entries (both sides).
func (l *Labeling) Entries() int {
	if l.directed {
		return l.out.size() + l.in.size()
	}
	return l.out.size()
}

// AverageLabelSize returns the mean entries per node per side.
func (l *Labeling) AverageLabelSize() float64 {
	if l.numNodes == 0 {
		return 0
	}
	sides := 1
	if l.directed {
		sides = 2
	}
	return float64(l.Entries()) / float64(l.numNodes*sides)
}

// Dist computes d(u→v) from the labels: the minimum of d(u→h) + d(h→v)
// over common hubs, +Inf when the pair shares no hub (disconnected).
func Dist(src Source, u, v graph.NodeID, outBuf, inBuf []Entry) (float64, error) {
	lu, err := src.OutLabel(u, outBuf)
	if err != nil {
		return 0, err
	}
	lv, err := src.InLabel(v, inBuf)
	if err != nil {
		return 0, err
	}
	return mergeDist(lu, lv), nil
}

// mergeDist intersects two labels sorted by hub id.
func mergeDist(a, b []Entry) float64 {
	best := math.Inf(1)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if d := a[i].Dist + b[j].Dist; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// --- Build -----------------------------------------------------------------

// landmarkProbe answers the pruning query of one landmark sweep in O(|L(v)|)
// per visited node: the current landmark's label is loaded into a dense
// hub-indexed array once per sweep, so no merge runs at pop time.
type landmarkProbe struct {
	hd    []float64
	stamp []uint32
	ep    uint32
}

func newLandmarkProbe(n int) *landmarkProbe {
	return &landmarkProbe{hd: make([]float64, n), stamp: make([]uint32, n)}
}

// load installs the landmark-side label for the coming sweep.
func (lp *landmarkProbe) load(label []Entry) {
	lp.ep++
	if lp.ep == 0 {
		for i := range lp.stamp {
			lp.stamp[i] = 0
		}
		lp.ep = 1
	}
	for _, e := range label {
		lp.stamp[e.Hub] = lp.ep
		lp.hd[e.Hub] = e.Dist
	}
}

// query returns the labeled distance between the loaded landmark and the
// node owning label, +Inf when they share no hub yet.
func (lp *landmarkProbe) query(label []Entry) float64 {
	best := math.Inf(1)
	for _, e := range label {
		if lp.stamp[e.Hub] == lp.ep {
			if d := lp.hd[e.Hub] + e.Dist; d < best {
				best = d
			}
		}
	}
	return best
}

// dijkstraState is the scratch of one pruned expansion.
type dijkstraState struct {
	dist []float64
	seen []uint32
	done []uint32
	ep   uint32
	heap pq.Heap[graph.NodeID]
	adj  []graph.Edge
}

func newDijkstraState(n int) *dijkstraState {
	return &dijkstraState{dist: make([]float64, n), seen: make([]uint32, n), done: make([]uint32, n)}
}

func (d *dijkstraState) begin() {
	d.ep++
	if d.ep == 0 {
		for i := range d.seen {
			d.seen[i], d.done[i] = 0, 0
		}
		d.ep = 1
	}
	d.heap.Reset()
}

// push offers n at dist; it reports whether the label improved (used by the
// centrality ordering to maintain shortest-path-tree parents).
func (d *dijkstraState) push(n graph.NodeID, dist float64) bool {
	if d.done[n] == d.ep {
		return false
	}
	if d.seen[n] == d.ep && d.dist[n] <= dist {
		return false
	}
	d.seen[n] = d.ep
	d.dist[n] = dist
	d.heap.Push(n, dist)
	return true
}

func (d *dijkstraState) pop() (graph.NodeID, float64, bool) {
	//lint:ignore vetrnn/execpoll in-memory drain of stale heap entries during label construction
	for {
		n, dist, ok := d.heap.Pop()
		if !ok {
			return 0, 0, false
		}
		if d.done[n] == d.ep {
			continue
		}
		d.done[n] = d.ep
		return n, dist, true
	}
}

// centralitySamples is the number of shortest-path trees the landmark
// ordering samples; a handful suffices to separate through-traffic nodes
// from the periphery.
const centralitySamples = 12

// landmarkOrder ranks nodes by sampled shortest-path-tree centrality
// (approximate betweenness): a few Dijkstra trees from deterministic
// sources, scoring each node by the size of the subtree it roots — the
// number of shortest paths passing through it. Degree breaks ties, id
// breaks the rest. Plain degree ordering works on scale-free graphs but
// collapses on road networks (near-uniform degrees), where centrality
// ordering keeps labels several times smaller and the build an order of
// magnitude faster.
func landmarkOrder(g graph.Access, degree []int, ec *exec.Ctx) ([]graph.NodeID, error) {
	n := g.NumNodes()
	score := make([]float64, n)
	st := newDijkstraState(n)
	parent := make([]graph.NodeID, n)
	popOrder := make([]graph.NodeID, 0, n)
	size := make([]float64, n)
	samples := centralitySamples
	if samples > n {
		samples = n
	}
	for s := 0; s < samples; s++ {
		// Deterministic, well-spread sources (Fibonacci hashing).
		src := graph.NodeID((uint64(s)*11400714819323198485 + 7) % uint64(n))
		st.begin()
		st.push(src, 0)
		parent[src] = -1
		popOrder = popOrder[:0]
		for {
			v, dist, ok := st.pop()
			if !ok {
				break
			}
			popOrder = append(popOrder, v)
			if len(popOrder)&(exec.CheckStride-1) == 0 {
				if err := ec.Check(0); err != nil {
					return nil, err
				}
			}
			var err error
			if st.adj, err = g.Adjacency(v, st.adj); err != nil {
				return nil, err
			}
			for _, e := range st.adj {
				if st.push(e.To, dist+e.W) {
					parent[e.To] = v
				}
			}
		}
		for _, v := range popOrder {
			size[v] = 1
		}
		// Children settle after parents, so a reverse pass accumulates
		// subtree sizes; the source itself is skipped (its "subtree" is
		// the whole component and would just promote the random sources).
		for i := len(popOrder) - 1; i >= 1; i-- {
			v := popOrder[i]
			size[parent[v]] += size[v]
			score[v] += size[v]
		}
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := score[order[i]], score[order[j]]
		if si != sj {
			return si > sj
		}
		di, dj := degree[order[i]], degree[order[j]]
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order, nil
}

// degrees collects per-node degrees over an Access.
func degrees(g graph.Access, ec *exec.Ctx) ([]int, error) {
	deg := make([]int, g.NumNodes())
	var adj []graph.Edge
	var err error
	for v := graph.NodeID(0); int(v) < len(deg); v++ {
		if v&(exec.CheckStride-1) == 0 {
			if err := ec.Check(0); err != nil {
				return nil, err
			}
		}
		if adj, err = g.Adjacency(v, adj); err != nil {
			return nil, err
		}
		deg[v] = len(adj)
	}
	return deg, nil
}

// Build constructs an undirected labeling over g with pruned landmark
// labeling. The graph is read directly (no counted I/O); builds are
// CPU-bound and meant to run once per graph, then persist via Write. Use
// BuildOpt for a parallel (and cancellable) build of the same labeling.
func Build(g graph.Access) (*Labeling, error) {
	l, _, err := BuildOpt(g, BuildOptions{})
	return l, err
}

// BuildDigraph constructs forward and backward labels over a directed
// graph: one pruned forward sweep (over out-arcs, filling L_in) and one
// pruned backward sweep (over in-arcs, filling L_out) per landmark. Use
// BuildDigraphOpt for a parallel (and cancellable) build.
func BuildDigraph(d *graph.Digraph) (*Labeling, error) {
	l, _, err := BuildDigraphOpt(d, BuildOptions{})
	return l, err
}

// prunedSweep runs one pruned Dijkstra from landmark h, appending (h, dist)
// to the labels of every node the loaded probe cannot already cover.
func prunedSweep(g graph.Access, h graph.NodeID, lp *landmarkProbe, into [][]Entry, st *dijkstraState, ec *exec.Ctx, bst *BuildStats) error {
	st.begin()
	st.push(h, 0)
	for {
		v, dist, ok := st.pop()
		if !ok {
			return nil
		}
		bst.Visits++
		if bst.Visits&(exec.CheckStride-1) == 0 {
			if err := ec.Check(0); err != nil {
				return err
			}
		}
		if lp.query(into[v]) <= dist {
			bst.Pruned++
			continue // already covered by higher-ranked hubs
		}
		into[v] = append(into[v], Entry{Hub: h, Dist: dist})
		var err error
		if st.adj, err = g.Adjacency(v, st.adj); err != nil {
			return err
		}
		for _, e := range st.adj {
			st.push(e.To, dist+e.W)
		}
	}
}

// finalize converts per-node entry slices into a hub-id-sorted CSR.
func finalize(n int, entries [][]Entry) labelSet {
	offsets := make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		sort.Slice(entries[v], func(i, j int) bool { return entries[v][i].Hub < entries[v][j].Hub })
		total += len(entries[v])
		offsets[v+1] = int32(total)
	}
	hubs := make([]graph.NodeID, total)
	dists := make([]float64, total)
	i := 0
	for v := 0; v < n; v++ {
		for _, e := range entries[v] {
			hubs[i], dists[i] = e.Hub, e.Dist
			i++
		}
	}
	return labelSet{offsets: offsets, hubs: hubs, dists: dists}
}
