package hublabel

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"graphrnn/internal/exec"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/pq"
)

// Index is the ReHub-style reverse side of a labeling: every hub carries the
// list of data points it covers, annotated with the point↔hub distance, so
// that one pass over the hub lists of a query label yields the distance from
// every data point to the query — no network expansion at all.
//
// Queries run in two phases. Phase 1 intersects the query's backward label
// with the forward hub lists, producing d(p→q) for every point p that can
// reach q. Phase 2 decides membership |{p' ≠ p : d(p→p') < d(p→q)}| < k
// against the per-point K-NN thresholds materialized at build time, falling
// back to an exact early-terminating hub-list merge in the rare case the
// thresholds cannot certify an answer (an excluded point occupied one of the
// stored slots). Both phases touch only label entries and hub lists; the
// graph itself is never read.
//
// An Index is safe for concurrent queries (per-query scratch comes from a
// sync.Pool and the underlying Source is read-only); Insert and Delete
// require exclusive access, like every other mutating operation in this
// repository.
type Index struct {
	src  Source
	maxK int

	nodes []graph.NodeID // point id -> node, -1 when deleted
	live  int

	// fwd[h] holds (p, d(p→h)) for h ∈ L_out(p); bwd[h] holds (p, d(h→p))
	// for h ∈ L_in(p). Undirected labelings share one map.
	fwd, bwd map[graph.NodeID][]pointEnt

	// thr[p] holds the up-to-maxK nearest other points of p by outgoing
	// distance, ascending (distance, id) — the materialized k-NN
	// thresholds.
	thr [][]pointEnt

	scratch sync.Pool // *qscratch
}

// pointEnt pairs a point with a distance.
type pointEnt struct {
	P points.PointID
	D float64
}

// QueryStats describes the work of one hub-label operation.
type QueryStats struct {
	// LabelReads counts label fetches through the Source.
	LabelReads int64
	// Entries counts label and hub-list entries scanned.
	Entries int64
	// Fallbacks counts exact-merge fallbacks taken by phase 2.
	Fallbacks int64
}

// PointOnNode seeds an Index with one point.
type PointOnNode struct {
	P    points.PointID
	Node graph.NodeID
}

// NewIndex builds the reverse index over src for the given points,
// materializing thresholds for queries up to maxK. Point ids must be
// distinct; at most one point per node (the restricted-network model).
func NewIndex(src Source, maxK int, pts []PointOnNode) (*Index, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("hublabel: maxK must be >= 1, got %d", maxK)
	}
	idx := &Index{
		src:  src,
		maxK: maxK,
		fwd:  make(map[graph.NodeID][]pointEnt),
	}
	if src.Directed() {
		idx.bwd = make(map[graph.NodeID][]pointEnt)
	} else {
		idx.bwd = idx.fwd
	}
	idx.scratch.New = func() any { return &qscratch{} }

	maxP := -1
	for _, p := range pts {
		if int(p.P) > maxP {
			maxP = int(p.P)
		}
	}
	idx.nodes = make([]graph.NodeID, maxP+1)
	for i := range idx.nodes {
		idx.nodes[i] = -1
	}
	var buf []Entry
	var err error
	for _, p := range pts {
		if p.P < 0 {
			return nil, fmt.Errorf("hublabel: negative point id %d", p.P)
		}
		if idx.nodes[p.P] >= 0 {
			return nil, fmt.Errorf("hublabel: duplicate point id %d", p.P)
		}
		if p.Node < 0 || int(p.Node) >= src.NumNodes() {
			return nil, fmt.Errorf("hublabel: node %d out of range [0,%d)", p.Node, src.NumNodes())
		}
		idx.nodes[p.P] = p.Node
		idx.live++
		if buf, err = idx.addToLists(p.P, p.Node, buf); err != nil {
			return nil, err
		}
	}
	for h := range idx.fwd {
		sortList(idx.fwd[h])
	}
	if src.Directed() {
		for h := range idx.bwd {
			sortList(idx.bwd[h])
		}
	}
	// Materialize thresholds once the lists are complete.
	sc := idx.acquire()
	defer idx.release(sc)
	idx.thr = make([][]pointEnt, len(idx.nodes))
	var st QueryStats
	for p, n := range idx.nodes {
		if n < 0 {
			continue
		}
		t, err := idx.topK(sc, &st, n, maxK, points.PointID(p))
		if err != nil {
			return nil, err
		}
		idx.thr[p] = t
	}
	return idx, nil
}

// addToLists inserts p's label entries into the hub lists (unsorted append;
// callers sort or insert-sorted as appropriate).
func (idx *Index) addToLists(p points.PointID, n graph.NodeID, buf []Entry) ([]Entry, error) {
	var err error
	if buf, err = idx.src.OutLabel(n, buf); err != nil {
		return buf, err
	}
	for _, e := range buf {
		idx.fwd[e.Hub] = append(idx.fwd[e.Hub], pointEnt{P: p, D: e.Dist})
	}
	if idx.src.Directed() {
		if buf, err = idx.src.InLabel(n, buf); err != nil {
			return buf, err
		}
		for _, e := range buf {
			idx.bwd[e.Hub] = append(idx.bwd[e.Hub], pointEnt{P: p, D: e.Dist})
		}
	}
	return buf, nil
}

func sortList(l []pointEnt) {
	sort.Slice(l, func(i, j int) bool {
		if l[i].D != l[j].D {
			return l[i].D < l[j].D
		}
		return l[i].P < l[j].P
	})
}

// MaxK returns the largest monochromatic query k the thresholds support.
func (idx *Index) MaxK() int { return idx.maxK }

// Len returns the number of live points.
func (idx *Index) Len() int { return idx.live }

// NodeOf returns the node hosting point p.
func (idx *Index) NodeOf(p points.PointID) (graph.NodeID, bool) {
	if p < 0 || int(p) >= len(idx.nodes) || idx.nodes[p] < 0 {
		return 0, false
	}
	return idx.nodes[p], true
}

// Source returns the labeling the index reads.
func (idx *Index) Source() Source { return idx.src }

// Points returns the live point ids in ascending order.
func (idx *Index) Points() []points.PointID {
	out := make([]points.PointID, 0, idx.live)
	for p, n := range idx.nodes {
		if n >= 0 {
			out = append(out, points.PointID(p))
		}
	}
	return out
}

// HiddenIn recovers the point a query view hides (points.NoPoint for a full
// view). Exclusion views built by points.ExcludeNode resolve in O(1); other
// views fall back to a scan of the tracked points. Validation is
// best-effort — like the materialized substrate, the index answers over the
// set it was built on, and the caller must pass a view of that set — but a
// view whose live count or sampled point placement contradicts the tracked
// set is rejected.
func (idx *Index) HiddenIn(v points.NodeView) (points.PointID, error) {
	mismatch := func() error {
		return fmt.Errorf("hublabel: index does not track the queried point set (index %d points, view %d)",
			idx.live, v.Len())
	}
	// Spot-check one tracked point's placement against the unhidden set;
	// a wholly different set of the same size fails here.
	check := func(full points.NodeView) error {
		for p, n := range idx.nodes {
			if n < 0 {
				continue
			}
			if vn, ok := full.NodeOf(points.PointID(p)); !ok || vn != n {
				return mismatch()
			}
			return nil
		}
		return nil
	}
	if hv, ok := v.(points.HiddenPointView); ok {
		hidden := hv.HiddenPoint()
		if int(hidden) >= len(idx.nodes) || idx.nodes[hidden] < 0 || v.Len() != idx.live-1 {
			return points.NoPoint, mismatch()
		}
		return hidden, check(hv.Unhidden())
	}
	switch v.Len() {
	case idx.live:
		return points.NoPoint, check(v)
	case idx.live - 1:
		for p, n := range idx.nodes {
			if n < 0 {
				continue
			}
			if _, ok := v.NodeOf(points.PointID(p)); !ok {
				return points.PointID(p), nil
			}
		}
	}
	return points.NoPoint, mismatch()
}

// --- Per-query scratch -----------------------------------------------------

type cursor struct{ list, pos int32 }

type qscratch struct {
	pdist   []float64 // per point: tentative d(p→q)
	stamp   []uint32
	ep      uint32
	touched []points.PointID

	mark []uint32 // merge dedup marks
	mep  uint32

	lab1, lab2 []Entry
	lists      [][]pointEnt
	labelDist  []float64 // hub distance of each merge list
	heap       pq.Heap[cursor]
}

func (sc *qscratch) grow(n int) {
	if len(sc.pdist) < n {
		sc.pdist = make([]float64, n)
		sc.stamp = make([]uint32, n)
		sc.mark = make([]uint32, n)
		sc.ep, sc.mep = 0, 0
	}
}

func (sc *qscratch) beginRelax() {
	sc.ep++
	if sc.ep == 0 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.ep = 1
	}
	sc.touched = sc.touched[:0]
}

func (sc *qscratch) beginMerge() {
	sc.mep++
	if sc.mep == 0 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.mep = 1
	}
	sc.heap.Reset()
}

func (idx *Index) acquire() *qscratch {
	sc := idx.scratch.Get().(*qscratch)
	sc.grow(len(idx.nodes))
	return sc
}

func (idx *Index) release(sc *qscratch) { idx.scratch.Put(sc) }

// --- Phase 1: all point→target distances -----------------------------------

// relax folds one backward label (of a query node) into the tentative
// point→query distances: for every (h, dhq) and every (p, dph) in fwd[h],
// d(p→q) candidates dph + dhq.
func (idx *Index) relax(sc *qscratch, st *QueryStats, label []Entry) {
	st.Entries += int64(len(label))
	for _, e := range label {
		list := idx.fwd[e.Hub]
		st.Entries += int64(len(list))
		for _, pe := range list {
			d := pe.D + e.Dist
			if sc.stamp[pe.P] != sc.ep {
				sc.stamp[pe.P] = sc.ep
				sc.pdist[pe.P] = d
				sc.touched = append(sc.touched, pe.P)
			} else if d < sc.pdist[pe.P] {
				sc.pdist[pe.P] = d
			}
		}
	}
}

// --- Hub-list merges (k-NN and closer-count) -------------------------------

// mergeRun iterates the (point, distance) candidates reachable through
// label's hubs in ascending distance order, calling visit once per distinct
// point with its exact distance. visit returns false to stop. bound, when
// finite, stops the merge at the first candidate >= bound.
func (idx *Index) mergeRun(sc *qscratch, st *QueryStats, label []Entry, bound float64, visit func(p points.PointID, d float64) bool) {
	sc.beginMerge()
	sc.lists = sc.lists[:0]
	sc.labelDist = sc.labelDist[:0]
	st.Entries += int64(len(label))
	for _, e := range label {
		list := idx.bwd[e.Hub]
		if len(list) == 0 {
			continue
		}
		key := e.Dist + list[0].D
		if key >= bound {
			continue // ascending list: nothing under the bound
		}
		li := int32(len(sc.lists))
		sc.lists = append(sc.lists, list)
		sc.labelDist = append(sc.labelDist, e.Dist)
		sc.heap.Push(cursor{list: li, pos: 0}, key)
	}
	//lint:ignore vetrnn/execpoll in-memory merge over resident label lists; the query loops driving it poll via ec.Check
	for {
		cur, key, ok := sc.heap.Pop()
		if !ok || key >= bound {
			return
		}
		st.Entries++
		list := sc.lists[cur.list]
		pe := list[cur.pos]
		if next := cur.pos + 1; int(next) < len(list) {
			if nk := sc.labelDist[cur.list] + list[next].D; nk < bound {
				sc.heap.Push(cursor{list: cur.list, pos: next}, nk)
			}
		}
		if sc.mark[pe.P] == sc.mep {
			continue // a closer occurrence already decided this point
		}
		sc.mark[pe.P] = sc.mep
		if !visit(pe.P, key) {
			return
		}
	}
}

// topK returns the k nearest points of node n (by outgoing distance),
// excluding skip, ascending (distance, id).
func (idx *Index) topK(sc *qscratch, st *QueryStats, n graph.NodeID, k int, skip points.PointID) ([]pointEnt, error) {
	var err error
	if sc.lab1, err = idx.src.OutLabel(n, sc.lab1); err != nil {
		return nil, err
	}
	st.LabelReads++
	out := make([]pointEnt, 0, k)
	idx.mergeRun(sc, st, sc.lab1, math.Inf(1), func(p points.PointID, d float64) bool {
		if p == skip {
			return true
		}
		out = append(out, pointEnt{P: p, D: d})
		return len(out) < k
	})
	return out, nil
}

// countCloser counts points strictly closer to node n than bound (by
// outgoing distance), excluding skipA/skipB, stopping at k — the exact
// phase-2 fallback and the bichromatic verifier. The label is L_out(n),
// already fetched by the caller.
func (idx *Index) countCloser(sc *qscratch, st *QueryStats, label []Entry, bound float64, k int, skipA, skipB points.PointID) int {
	count := 0
	idx.mergeRun(sc, st, label, bound, func(p points.PointID, d float64) bool {
		if p == skipA || p == skipB {
			return true
		}
		count++
		return count < k
	})
	return count
}

// --- Queries ---------------------------------------------------------------

func (idx *Index) checkQuery(q graph.NodeID, k int) error {
	if k < 1 {
		return fmt.Errorf("hublabel: k must be >= 1, got %d", k)
	}
	if q < 0 || int(q) >= idx.src.NumNodes() {
		return fmt.Errorf("hublabel: node %d out of range [0,%d)", q, idx.src.NumNodes())
	}
	return nil
}

// RkNN answers a monochromatic reverse k-NN query from node q, hiding
// point hidden (points.NoPoint hides nothing). k must not exceed MaxK.
func (idx *Index) RkNN(q graph.NodeID, k int, hidden points.PointID) ([]points.PointID, QueryStats, error) {
	return idx.RkNNExec(nil, q, k, hidden)
}

// RkNNExec is RkNN under an execution context: the intersection path polls
// ec between label fetches and per decided point, abandoning the query
// with a typed exec error (cancellation, deadline, I/O budget). A nil ec
// is unbounded.
func (idx *Index) RkNNExec(ec *exec.Ctx, q graph.NodeID, k int, hidden points.PointID) ([]points.PointID, QueryStats, error) {
	var st QueryStats
	if err := idx.checkQuery(q, k); err != nil {
		return nil, st, err
	}
	if k > idx.maxK {
		return nil, st, fmt.Errorf("hublabel: k=%d exceeds materialized maxK=%d", k, idx.maxK)
	}
	if err := ec.Check(0); err != nil {
		return nil, st, err
	}
	sc := idx.acquire()
	defer idx.release(sc)
	var err error
	if sc.lab1, err = idx.src.InLabel(q, sc.lab1); err != nil {
		return nil, st, err
	}
	st.LabelReads++
	sc.beginRelax()
	idx.relax(sc, &st, sc.lab1)
	// decide carries its partial result on an execution-control error and
	// returns nil on real failures; pass both through unchanged.
	res, err := idx.decide(ec, sc, &st, k, hidden)
	return res, st, err
}

// ContinuousRkNN answers the route variant: the union of RkNN over every
// route node, decided against d(p→route) = min over route nodes.
func (idx *Index) ContinuousRkNN(route []graph.NodeID, k int, hidden points.PointID) ([]points.PointID, QueryStats, error) {
	return idx.ContinuousRkNNExec(nil, route, k, hidden)
}

// ContinuousRkNNExec is ContinuousRkNN under an execution context.
func (idx *Index) ContinuousRkNNExec(ec *exec.Ctx, route []graph.NodeID, k int, hidden points.PointID) ([]points.PointID, QueryStats, error) {
	var st QueryStats
	if len(route) == 0 {
		return nil, st, fmt.Errorf("hublabel: query needs at least one source location")
	}
	for _, n := range route {
		if err := idx.checkQuery(n, k); err != nil {
			return nil, st, err
		}
	}
	if k > idx.maxK {
		return nil, st, fmt.Errorf("hublabel: k=%d exceeds materialized maxK=%d", k, idx.maxK)
	}
	if err := ec.Check(0); err != nil {
		return nil, st, err
	}
	sc := idx.acquire()
	defer idx.release(sc)
	sc.beginRelax()
	var err error
	for _, n := range route {
		if sc.lab1, err = idx.src.InLabel(n, sc.lab1); err != nil {
			return nil, st, err
		}
		st.LabelReads++
		if err := ec.Check(0); err != nil {
			return nil, st, err
		}
		idx.relax(sc, &st, sc.lab1)
	}
	// decide carries its partial result on an execution-control error and
	// returns nil on real failures; pass both through unchanged.
	res, err := idx.decide(ec, sc, &st, k, hidden)
	return res, st, err
}

// decide runs phase 2 over the touched points of sc. On an
// execution-control error the members confirmed so far ride along with it
// (the partial-result contract of the engine layer); a label I/O error
// invalidates the result.
func (idx *Index) decide(ec *exec.Ctx, sc *qscratch, st *QueryStats, k int, hidden points.PointID) ([]points.PointID, error) {
	var res []points.PointID
	for _, p := range sc.touched {
		if err := ec.Check(0); err != nil {
			sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
			return res, err
		}
		if p == hidden || idx.nodes[p] < 0 {
			continue
		}
		dq := sc.pdist[p]
		member, certain := idx.thresholdTest(st, p, dq, k, hidden)
		if !certain {
			// An excluded point occupied a stored slot and dq lies beyond
			// the list: recount exactly.
			st.Fallbacks++
			var err error
			if sc.lab2, err = idx.src.OutLabel(idx.nodes[p], sc.lab2); err != nil {
				return nil, err
			}
			st.LabelReads++
			member = idx.countCloser(sc, st, sc.lab2, dq, k, p, hidden) < k
		}
		if member {
			ec.Emit(int32(p), 0)
			res = append(res, p)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	return res, nil
}

// thresholdTest decides membership of p at query distance dq against the
// materialized thresholds. certain is false when the stored list cannot
// prove the answer (only possible when hidden removed a stored entry).
func (idx *Index) thresholdTest(st *QueryStats, p points.PointID, dq float64, k int, hidden points.PointID) (member, certain bool) {
	t := idx.thr[p]
	st.Entries += int64(len(t))
	strict := 0
	removed := false
	for _, e := range t {
		if e.P == hidden {
			removed = true
			continue
		}
		if e.D < dq {
			strict++
		}
	}
	if strict >= k {
		return false, true
	}
	if len(t) < idx.maxK {
		return true, true // the list is the complete neighbor set
	}
	if dq <= t[len(t)-1].D {
		return true, true // unstored neighbors are all >= last >= dq
	}
	if !removed {
		// Full list, dq beyond it, nothing hidden: every stored entry is
		// strictly closer, so strict == maxK >= k was caught above.
		return true, true
	}
	return false, false
}

// BichromaticRkNN answers bRkNN(q) over the site set the index was built
// on: the candidates of cands with fewer than k sites strictly closer than
// the query. hiddenSite excludes one site (points.NoPoint for none); k is
// unbounded (thresholds are not used).
func (idx *Index) BichromaticRkNN(cands points.NodeView, q graph.NodeID, k int, hiddenSite points.PointID) ([]points.PointID, QueryStats, error) {
	return idx.BichromaticRkNNExec(nil, cands, q, k, hiddenSite)
}

// BichromaticRkNNExec is BichromaticRkNN under an execution context,
// polled once per classified candidate.
func (idx *Index) BichromaticRkNNExec(ec *exec.Ctx, cands points.NodeView, q graph.NodeID, k int, hiddenSite points.PointID) ([]points.PointID, QueryStats, error) {
	var st QueryStats
	if err := idx.checkQuery(q, k); err != nil {
		return nil, st, err
	}
	if err := ec.Check(0); err != nil {
		return nil, st, err
	}
	sc := idx.acquire()
	defer idx.release(sc)
	var err error
	if sc.lab1, err = idx.src.InLabel(q, sc.lab1); err != nil {
		return nil, st, err
	}
	st.LabelReads++
	var res []points.PointID
	for _, c := range cands.Points() {
		if err := ec.Check(0); err != nil {
			sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
			return res, st, err
		}
		cnode, ok := cands.NodeOf(c)
		if !ok {
			continue
		}
		if sc.lab2, err = idx.src.OutLabel(cnode, sc.lab2); err != nil {
			return nil, st, err
		}
		st.LabelReads++
		st.Entries += int64(len(sc.lab2))
		dcq := mergeDist(sc.lab2, sc.lab1)
		if math.IsInf(dcq, 1) {
			continue // cannot reach the query: never a member
		}
		if idx.countCloser(sc, &st, sc.lab2, dcq, k, hiddenSite, points.NoPoint) < k {
			ec.Emit(int32(c), 0)
			res = append(res, c)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	return res, st, nil
}

// --- Maintenance -----------------------------------------------------------

// Insert adds point p on node n and incrementally repairs the hub lists and
// thresholds. p must be an unused id; ids beyond the current range extend
// the index (point sets assign ids append-only, and trailing deleted ids
// may leave the index shorter than the set's id space). Requires exclusive
// access.
func (idx *Index) Insert(p points.PointID, n graph.NodeID) (QueryStats, error) {
	var st QueryStats
	if p < 0 {
		return st, fmt.Errorf("hublabel: negative point id %d", p)
	}
	if int(p) < len(idx.nodes) && idx.nodes[p] >= 0 {
		return st, fmt.Errorf("hublabel: point %d already exists", p)
	}
	if n < 0 || int(n) >= idx.src.NumNodes() {
		return st, fmt.Errorf("hublabel: node %d out of range [0,%d)", n, idx.src.NumNodes())
	}
	sc := idx.acquire()
	defer idx.release(sc)

	var err error
	if sc.lab1, err = idx.src.OutLabel(n, sc.lab1); err != nil {
		return st, err
	}
	st.LabelReads++
	for len(idx.nodes) <= int(p) {
		idx.nodes = append(idx.nodes, -1)
		idx.thr = append(idx.thr, nil)
	}
	idx.nodes[p] = n
	idx.live++
	sc.grow(len(idx.nodes))
	for _, e := range sc.lab1 {
		idx.fwd[e.Hub] = insertSorted(idx.fwd[e.Hub], pointEnt{P: p, D: e.Dist})
		st.Entries++
	}
	if idx.src.Directed() {
		if sc.lab1, err = idx.src.InLabel(n, sc.lab1); err != nil {
			return st, err
		}
		st.LabelReads++
		for _, e := range sc.lab1 {
			idx.bwd[e.Hub] = insertSorted(idx.bwd[e.Hub], pointEnt{P: p, D: e.Dist})
			st.Entries++
		}
	}
	// The new point's own thresholds.
	t, err := idx.topK(sc, &st, n, idx.maxK, p)
	if err != nil {
		return st, err
	}
	idx.thr[p] = t

	// Existing points now have one more potential neighbor: fold d(p'→p)
	// into every affected threshold list with one reverse pass.
	if sc.lab1, err = idx.src.InLabel(n, sc.lab1); err != nil {
		return st, err
	}
	st.LabelReads++
	sc.beginRelax()
	idx.relax(sc, &st, sc.lab1)
	for _, p2 := range sc.touched {
		if p2 == p || idx.nodes[p2] < 0 {
			continue
		}
		d := sc.pdist[p2]
		t := idx.thr[p2]
		if len(t) >= idx.maxK && d >= t[len(t)-1].D {
			continue // outside the stored horizon: invariant unchanged
		}
		t = insertSorted(t, pointEnt{P: p, D: d})
		if len(t) > idx.maxK {
			t = t[:idx.maxK]
		}
		idx.thr[p2] = t
	}
	return st, nil
}

// Delete removes point p, repairing hub lists and recomputing the
// thresholds that stored it. Requires exclusive access.
func (idx *Index) Delete(p points.PointID) (QueryStats, error) {
	var st QueryStats
	n, ok := idx.NodeOf(p)
	if !ok {
		return st, fmt.Errorf("hublabel: point %d does not exist", p)
	}
	sc := idx.acquire()
	defer idx.release(sc)

	var err error
	if sc.lab1, err = idx.src.OutLabel(n, sc.lab1); err != nil {
		return st, err
	}
	st.LabelReads++
	for _, e := range sc.lab1 {
		idx.fwd[e.Hub] = removePoint(idx.fwd[e.Hub], p)
		st.Entries++
	}
	if idx.src.Directed() {
		if sc.lab1, err = idx.src.InLabel(n, sc.lab1); err != nil {
			return st, err
		}
		st.LabelReads++
		for _, e := range sc.lab1 {
			idx.bwd[e.Hub] = removePoint(idx.bwd[e.Hub], p)
			st.Entries++
		}
	}
	idx.nodes[p] = -1
	idx.live--

	// Points that stored p among their thresholds lose an entry and must
	// refill from the (already repaired) hub lists.
	for p2 := range idx.thr {
		if idx.nodes[p2] < 0 {
			continue
		}
		t := idx.thr[p2]
		st.Entries += int64(len(t))
		hit := -1
		for i, e := range t {
			if e.P == p {
				hit = i
				break
			}
		}
		if hit < 0 {
			continue
		}
		nt, err := idx.topK(sc, &st, idx.nodes[p2], idx.maxK, points.PointID(p2))
		if err != nil {
			return st, err
		}
		idx.thr[p2] = nt
	}
	idx.thr[p] = nil
	return st, nil
}

// insertSorted inserts e into a (D, P)-ascending list.
func insertSorted(l []pointEnt, e pointEnt) []pointEnt {
	i := sort.Search(len(l), func(i int) bool {
		if l[i].D != e.D {
			return l[i].D > e.D
		}
		return l[i].P > e.P
	})
	l = append(l, pointEnt{})
	copy(l[i+1:], l[i:])
	l[i] = e
	return l
}

// removePoint deletes the entry of p from a hub list.
func removePoint(l []pointEnt, p points.PointID) []pointEnt {
	for i, e := range l {
		if e.P == p {
			return append(l[:i], l[i+1:]...)
		}
	}
	return l
}
