package hublabel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"graphrnn/internal/core"
	"graphrnn/internal/gen"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// dijkstra computes single-source distances over an Access.
func dijkstra(g graph.Access, src graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	st := newDijkstraState(n)
	st.begin()
	st.push(src, 0)
	var err error
	for {
		v, d, ok := st.pop()
		if !ok {
			return dist
		}
		dist[v] = d
		if st.adj, err = g.Adjacency(v, st.adj); err != nil {
			panic(err)
		}
		for _, e := range st.adj {
			st.push(e.To, d+e.W)
		}
	}
}

// testGraphs builds the three generated topologies at test scale.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	road, err := gen.RoadNetwork(gen.RoadConfig{Seed: 11, Nodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	brite, err := gen.Brite(gen.BriteConfig{Seed: 12, Nodes: 400, AvgDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gen.Grid(gen.GridConfig{Seed: 13, Nodes: 400, Degree: 4})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"road": road, "brite": brite, "grid": grid}
}

// TestLabelingDistances checks label-derived distances against Dijkstra on
// every generated topology.
func TestLabelingDistances(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			l, err := Build(g)
			if err != nil {
				t.Fatal(err)
			}
			if l.Directed() {
				t.Fatal("undirected build reports directed")
			}
			rng := rand.New(rand.NewSource(99))
			var ob, ib []Entry
			for trial := 0; trial < 30; trial++ {
				u := graph.NodeID(rng.Intn(g.NumNodes()))
				want := dijkstra(g, u)
				for _, v := range []graph.NodeID{u, graph.NodeID(rng.Intn(g.NumNodes())), graph.NodeID(rng.Intn(g.NumNodes()))} {
					got, err := Dist(l, u, v, ob, ib)
					if err != nil {
						t.Fatal(err)
					}
					if !sameDist(got, want[v]) {
						t.Fatalf("d(%d,%d) = %v, want %v", u, v, got, want[v])
					}
				}
			}
			if l.AverageLabelSize() <= 0 {
				t.Fatalf("average label size %v", l.AverageLabelSize())
			}
		})
	}
}

// sameDist compares distances with a relative tolerance absorbing float
// association differences between label sums and Dijkstra sums.
func sameDist(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// testDigraph orients a generated graph with asymmetric weights.
func testDigraph(t *testing.T, seed int64) *graph.Digraph {
	t.Helper()
	g, err := gen.Grid(gen.GridConfig{Seed: seed, Nodes: 225, Degree: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	b := graph.NewDigraphBuilder(g.NumNodes())
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if err := b.AddArc(u, v, w*(0.5+rng.Float64())); err != nil {
			t.Fatal(err)
		}
		if err := b.AddArc(v, u, w*(0.5+rng.Float64())); err != nil {
			t.Fatal(err)
		}
	})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDigraphLabelingDistances checks forward/backward labels on a directed
// graph with asymmetric weights.
func TestDigraphLabelingDistances(t *testing.T) {
	d := testDigraph(t, 21)
	l, err := BuildDigraph(d)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Directed() {
		t.Fatal("digraph build reports undirected")
	}
	rng := rand.New(rand.NewSource(22))
	var ob, ib []Entry
	for trial := 0; trial < 20; trial++ {
		u := graph.NodeID(rng.Intn(d.NumNodes()))
		want := dijkstra(d.Out(), u)
		for k := 0; k < 4; k++ {
			v := graph.NodeID(rng.Intn(d.NumNodes()))
			got, err := Dist(l, u, v, ob, ib)
			if err != nil {
				t.Fatal(err)
			}
			if !sameDist(got, want[v]) {
				t.Fatalf("d(%d→%d) = %v, want %v", u, v, got, want[v])
			}
		}
	}
}

// roundTrip persists l into a fresh memory page file and reopens it.
func roundTrip(t *testing.T, l *Labeling, pageSize, bufferPages int) *Store {
	t.Helper()
	f := storage.NewMemFile(pageSize)
	if err := Write(l, f); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(f, bufferPages)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreRoundTrip checks that a persisted labeling serves identical
// labels, across page sizes that force chunking, for both directions.
func TestStoreRoundTrip(t *testing.T) {
	graphs := testGraphs(t)
	for name, g := range graphs {
		for _, pageSize := range []int{128, 4096} {
			t.Run(fmt.Sprintf("%s/page%d", name, pageSize), func(t *testing.T) {
				l, err := Build(g)
				if err != nil {
					t.Fatal(err)
				}
				s := roundTrip(t, l, pageSize, 16)
				if s.NumNodes() != l.NumNodes() || s.Directed() != l.Directed() || s.Entries() != l.Entries() {
					t.Fatalf("store header (%d,%v,%d) != labeling (%d,%v,%d)",
						s.NumNodes(), s.Directed(), s.Entries(), l.NumNodes(), l.Directed(), l.Entries())
				}
				var a, b []Entry
				for v := graph.NodeID(0); int(v) < l.NumNodes(); v++ {
					if a, err = l.OutLabel(v, a); err != nil {
						t.Fatal(err)
					}
					if b, err = s.OutLabel(v, b); err != nil {
						t.Fatal(err)
					}
					if !sameEntries(a, b) {
						t.Fatalf("node %d label mismatch: %v vs %v", v, a, b)
					}
				}
				if s.Stats().Reads == 0 {
					t.Fatal("store served labels without any physical reads")
				}
			})
		}
	}
	// Directed round trip exercises the two-sided directory.
	d := testDigraph(t, 23)
	l, err := BuildDigraph(d)
	if err != nil {
		t.Fatal(err)
	}
	s := roundTrip(t, l, 256, 8)
	var a, b []Entry
	for v := graph.NodeID(0); int(v) < l.NumNodes(); v++ {
		for side := 0; side < 2; side++ {
			if side == 0 {
				a, _ = l.OutLabel(v, a)
				b, err = s.OutLabel(v, b)
			} else {
				a, _ = l.InLabel(v, a)
				b, err = s.InLabel(v, b)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !sameEntries(a, b) {
				t.Fatalf("node %d side %d mismatch", v, side)
			}
		}
	}
	// Load must reconstruct the full labeling.
	f := storage.NewMemFile(256)
	if err := Write(l, f); err != nil {
		t.Fatal(err)
	}
	l2, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Entries() != l.Entries() || l2.Directed() != l.Directed() {
		t.Fatalf("Load: %d entries directed=%v, want %d/%v", l2.Entries(), l2.Directed(), l.Entries(), l.Directed())
	}
}

func sameEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOpenStoreRejectsGarbage covers the header validation paths.
func TestOpenStoreRejectsGarbage(t *testing.T) {
	f := storage.NewMemFile(4096)
	if _, err := OpenStore(f, 4); err == nil {
		t.Fatal("empty file accepted")
	}
	if _, err := f.Append(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(f, 4); err == nil {
		t.Fatal("zero page accepted as header")
	}
	g, err := gen.Grid(gen.GridConfig{Seed: 1, Nodes: 16, Degree: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(l, f); err == nil {
		t.Fatal("Write into non-empty file accepted")
	}
}

// oracle wraps the core brute-force searcher as the ground truth.
func oracle(g graph.Access) *core.Searcher { return core.NewSearcher(g) }

func samePoints(a, b []points.PointID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexRkNNAgainstOracle checks monochromatic answers against the
// brute-force oracle on every generated topology, with and without the
// query's own point excluded, for several k.
func TestIndexRkNNAgainstOracle(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			l, err := Build(g)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(41))
			ps, err := gen.PlaceNodePoints(rng, g.NumNodes(), g.NumNodes()/10)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := NewIndex(l, 4, pointsOf(ps))
			if err != nil {
				t.Fatal(err)
			}
			sr := oracle(g)
			for _, qp := range ps.Points()[:15] {
				qnode, _ := ps.NodeOf(qp)
				for _, k := range []int{1, 2, 4} {
					// Query at a data point, own point excluded (the
					// paper's workload).
					want, err := sr.BruteRkNN(points.ExcludeNode(ps, qp), qnode, k)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := idx.RkNN(qnode, k, qp)
					if err != nil {
						t.Fatal(err)
					}
					if !samePoints(got, want.Points) {
						t.Fatalf("k=%d q=%d hidden: got %v, want %v", k, qp, got, want.Points)
					}
					// Same query with the point visible.
					want, err = sr.BruteRkNN(ps, qnode, k)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err = idx.RkNN(qnode, k, points.NoPoint)
					if err != nil {
						t.Fatal(err)
					}
					if !samePoints(got, want.Points) {
						t.Fatalf("k=%d q=%d visible: got %v, want %v", k, qp, got, want.Points)
					}
				}
			}
			// Queries from plain nodes too.
			for trial := 0; trial < 10; trial++ {
				qnode := graph.NodeID(rng.Intn(g.NumNodes()))
				want, err := sr.BruteRkNN(ps, qnode, 2)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := idx.RkNN(qnode, 2, points.NoPoint)
				if err != nil {
					t.Fatal(err)
				}
				if !samePoints(got, want.Points) {
					t.Fatalf("node %d: got %v, want %v", qnode, got, want.Points)
				}
			}
		})
	}
}

func pointsOf(ps *points.NodeSet) []PointOnNode {
	var out []PointOnNode
	for _, p := range ps.Points() {
		n, _ := ps.NodeOf(p)
		out = append(out, PointOnNode{P: p, Node: n})
	}
	return out
}

// TestIndexContinuousAgainstOracle checks the route variant.
func TestIndexContinuousAgainstOracle(t *testing.T) {
	g, err := gen.RoadNetwork(gen.RoadConfig{Seed: 51, Nodes: 400})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	ps, err := gen.PlaceNodePoints(rng, g.NumNodes(), 40)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndex(l, 2, pointsOf(ps))
	if err != nil {
		t.Fatal(err)
	}
	sr := oracle(g)
	for trial := 0; trial < 12; trial++ {
		route := gen.RandomWalkRoute(rng, g, 1+rng.Intn(8))
		for _, k := range []int{1, 2} {
			want, err := sr.BruteContinuous(ps, route, k)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := idx.ContinuousRkNN(route, k, points.NoPoint)
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(got, want.Points) {
				t.Fatalf("route %v k=%d: got %v, want %v", route, k, got, want.Points)
			}
		}
	}
}

// TestIndexBichromaticAgainstOracle checks bRkNN against the oracle,
// including k beyond the materialized maxK (bichromatic is unbounded).
func TestIndexBichromaticAgainstOracle(t *testing.T) {
	g, err := gen.Brite(gen.BriteConfig{Seed: 61, Nodes: 300, AvgDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	sites, err := gen.PlaceNodePoints(rng, g.NumNodes(), 25)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := gen.PlaceNodePoints(rng, g.NumNodes(), 40)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndex(l, 1, pointsOf(sites))
	if err != nil {
		t.Fatal(err)
	}
	sr := oracle(g)
	for trial := 0; trial < 15; trial++ {
		qnode := graph.NodeID(rng.Intn(g.NumNodes()))
		for _, k := range []int{1, 2, 5} {
			want, err := sr.BruteBichromatic(cands, sites, qnode, k)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := idx.BichromaticRkNN(cands, qnode, k, points.NoPoint)
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(got, want.Points) {
				t.Fatalf("q=%d k=%d: got %v, want %v", qnode, k, got, want.Points)
			}
		}
	}
}

// TestIndexMaintenance interleaves inserts and deletes with full answer
// checks: after every mutation a fresh index over the same point set must
// agree with the incrementally maintained one on every query.
func TestIndexMaintenance(t *testing.T) {
	g, err := gen.Grid(gen.GridConfig{Seed: 71, Nodes: 225, Degree: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	ps := points.NewNodeSet(g.NumNodes())
	var placed []points.PointID
	for len(placed) < 20 {
		n := graph.NodeID(rng.Intn(g.NumNodes()))
		if p, err := ps.Place(n); err == nil {
			placed = append(placed, p)
		}
	}
	idx, err := NewIndex(l, 3, pointsOf(ps))
	if err != nil {
		t.Fatal(err)
	}
	sr := oracle(g)
	check := func(step string) {
		t.Helper()
		for trial := 0; trial < 8; trial++ {
			qnode := graph.NodeID(rng.Intn(g.NumNodes()))
			for _, k := range []int{1, 3} {
				want, err := sr.BruteRkNN(ps, qnode, k)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := idx.RkNN(qnode, k, points.NoPoint)
				if err != nil {
					t.Fatal(err)
				}
				if !samePoints(got, want.Points) {
					t.Fatalf("%s q=%d k=%d: got %v, want %v", step, qnode, k, got, want.Points)
				}
			}
		}
	}
	check("initial")
	for round := 0; round < 12; round++ {
		if rng.Intn(2) == 0 && len(placed) > 4 {
			i := rng.Intn(len(placed))
			p := placed[i]
			placed = append(placed[:i], placed[i+1:]...)
			if err := ps.Delete(p); err != nil {
				t.Fatal(err)
			}
			if _, err := idx.Delete(p); err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("round %d delete %d", round, p))
		} else {
			n := graph.NodeID(rng.Intn(g.NumNodes()))
			p, err := ps.Place(n)
			if err != nil {
				continue // node taken
			}
			placed = append(placed, p)
			if _, err := idx.Insert(p, n); err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("round %d insert %d", round, p))
		}
	}
	if idx.Len() != len(placed) {
		t.Fatalf("index holds %d points, want %d", idx.Len(), len(placed))
	}
}

// TestIndexErrors covers the validation paths.
func TestIndexErrors(t *testing.T) {
	g, err := gen.Grid(gen.GridConfig{Seed: 81, Nodes: 64, Degree: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndex(l, 0, nil); err == nil {
		t.Fatal("maxK 0 accepted")
	}
	idx, err := NewIndex(l, 2, []PointOnNode{{P: 0, Node: 1}, {P: 1, Node: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := idx.RkNN(0, 0, points.NoPoint); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := idx.RkNN(-1, 1, points.NoPoint); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, _, err := idx.RkNN(0, 3, points.NoPoint); err == nil {
		t.Fatal("k beyond maxK accepted")
	}
	if _, _, err := idx.ContinuousRkNN(nil, 1, points.NoPoint); err == nil {
		t.Fatal("empty route accepted")
	}
	if _, err := idx.Insert(0, 5); err == nil {
		t.Fatal("duplicate point id accepted")
	}
	if _, err := idx.Insert(-1, 5); err == nil {
		t.Fatal("negative point id accepted")
	}
	if _, err := idx.Delete(7); err == nil {
		t.Fatal("delete of missing point accepted")
	}
	// Ids beyond the current range extend the index (trailing deleted ids
	// leave the set's id space ahead of the index).
	if _, err := idx.Insert(5, 3); err != nil {
		t.Fatal(err)
	}
	if n, ok := idx.NodeOf(5); !ok || n != 3 {
		t.Fatalf("NodeOf(5) = %d,%v after gap insert", n, ok)
	}
	if idx.Len() != 3 {
		t.Fatalf("Len = %d after gap insert", idx.Len())
	}
}

// TestIndexOverStore runs the oracle comparison with labels served through
// the paged store, confirming the I/O-accounted path answers identically.
func TestIndexOverStore(t *testing.T) {
	g, err := gen.RoadNetwork(gen.RoadConfig{Seed: 91, Nodes: 300})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	s := roundTrip(t, l, 512, 8)
	rng := rand.New(rand.NewSource(92))
	ps, err := gen.PlaceNodePoints(rng, g.NumNodes(), 30)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndex(s, 2, pointsOf(ps))
	if err != nil {
		t.Fatal(err)
	}
	sr := oracle(g)
	s.ResetStats()
	for trial := 0; trial < 10; trial++ {
		qnode := graph.NodeID(rng.Intn(g.NumNodes()))
		want, err := sr.BruteRkNN(ps, qnode, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, qs, err := idx.RkNN(qnode, 2, points.NoPoint)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(got, want.Points) {
			t.Fatalf("q=%d: got %v, want %v", qnode, got, want.Points)
		}
		if qs.LabelReads == 0 {
			t.Fatal("query reported no label reads")
		}
	}
	if io := s.Stats(); io.Reads+io.Hits == 0 {
		t.Fatal("paged store served queries without logical I/O")
	}
}
