package hublabel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graphrnn/internal/exec"
	"graphrnn/internal/graph"
)

// BuildOptions tunes the labeling construction. The zero value is the
// sequential build.
type BuildOptions struct {
	// Workers is the number of goroutines that run the pruned landmark
	// sweeps. 0 and 1 run the classic sequential build; negative uses
	// GOMAXPROCS. Every worker count produces bit-identical labels for a
	// given graph: parallelism changes the schedule, never the result.
	Workers int
	// Exec, when non-nil, makes the build cancellable: every sweep polls
	// it each CheckStride pops and the build returns the typed execution
	// error. Only the cancellation/deadline half is meaningful — builds
	// have no per-query budget. Workers share the Ctx for polling only
	// (Check is a read-only probe), never for Emit.
	Exec *exec.Ctx
}

// BuildStats describes one labeling construction.
type BuildStats struct {
	// Workers actually used (after resolving the GOMAXPROCS default).
	Workers int
	// Batches of landmarks processed; 0 for the sequential build, which
	// commits after every landmark.
	Batches int
	// Landmarks swept (= nodes of the graph).
	Landmarks int
	// Visits counts nodes popped across every pruned sweep, speculative
	// batch sweeps included.
	Visits int64
	// Pruned counts visits cut by the 2-hop cover test.
	Pruned int64
	// Resweeps counts batched landmarks whose speculative sweep was
	// discarded because a same-batch predecessor covered part of its
	// frontier; each one is redone sequentially at merge time.
	Resweeps int64
	// Wall is the total construction time, ordering included.
	Wall time.Duration
}

func (o BuildOptions) workers() int {
	w := o.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// BuildOpt is Build with worker and cancellation control. Workers > 1
// processes landmarks in rank-ordered batches: each batch's pruned
// Dijkstras run across a worker pool pruning against the labels committed
// by earlier batches only, and a sequential rank-order merge re-checks
// every candidate against its in-batch predecessors before appending — so
// the labeling is a pure function of graph and landmark order,
// bit-identical to the sequential build and independent of worker count
// and batch boundaries.
func BuildOpt(g graph.Access, opt BuildOptions) (*Labeling, BuildStats, error) {
	start := time.Now()
	st := BuildStats{Workers: opt.workers()}
	n := g.NumNodes()
	order, err := buildOrder(g, nil, opt.Exec)
	if err != nil {
		return nil, st, err
	}
	st.Landmarks = len(order)
	var entries [][]Entry
	if st.Workers == 1 {
		entries, err = buildSequential(g, order, n, opt.Exec, &st)
	} else {
		entries, err = buildBatched(g, order, n, st.Workers, opt.Exec, &st)
	}
	if err != nil {
		return nil, st, err
	}
	l := &Labeling{numNodes: n, out: finalize(n, entries)}
	st.Wall = time.Since(start)
	return l, st, nil
}

// BuildDigraphOpt is BuildDigraph with worker and cancellation control;
// see BuildOpt for the batching scheme and its determinism guarantee.
func BuildDigraphOpt(d *graph.Digraph, opt BuildOptions) (*Labeling, BuildStats, error) {
	start := time.Now()
	st := BuildStats{Workers: opt.workers()}
	n := d.NumNodes()
	order, err := buildOrder(d.Out(), d.In(), opt.Exec)
	if err != nil {
		return nil, st, err
	}
	st.Landmarks = len(order)
	var outL, inL [][]Entry
	if st.Workers == 1 {
		outL, inL, err = buildDigraphSequential(d, order, n, opt.Exec, &st)
	} else {
		outL, inL, err = buildDigraphBatched(d, order, n, st.Workers, opt.Exec, &st)
	}
	if err != nil {
		return nil, st, err
	}
	l := &Labeling{numNodes: n, directed: true, out: finalize(n, outL), in: finalize(n, inL)}
	st.Wall = time.Since(start)
	return l, st, nil
}

// buildOrder computes the landmark order: degrees (both directions for
// digraphs) feed the sampled-centrality ranking.
func buildOrder(g graph.Access, in graph.Access, ec *exec.Ctx) ([]graph.NodeID, error) {
	deg, err := degrees(g, ec)
	if err != nil {
		return nil, err
	}
	if in != nil {
		degIn, err := degrees(in, ec)
		if err != nil {
			return nil, err
		}
		for v := range deg {
			deg[v] += degIn[v]
		}
	}
	return landmarkOrder(g, deg, ec)
}

func buildSequential(g graph.Access, order []graph.NodeID, n int, ec *exec.Ctx, st *BuildStats) ([][]Entry, error) {
	entries := make([][]Entry, n)
	ds := newDijkstraState(n)
	lp := newLandmarkProbe(n)
	for _, h := range order {
		lp.load(entries[h])
		if err := prunedSweep(g, h, lp, entries, ds, ec, st); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

func buildDigraphSequential(d *graph.Digraph, order []graph.NodeID, n int, ec *exec.Ctx, st *BuildStats) (outL, inL [][]Entry, err error) {
	out, in := d.Out(), d.In()
	outL = make([][]Entry, n)
	inL = make([][]Entry, n)
	ds := newDijkstraState(n)
	lp := newLandmarkProbe(n)
	for _, h := range order {
		// Forward sweep computes d(h→v) and fills L_in(v); the pruning
		// query d(h→v) intersects L_out(h) with L_in(v).
		lp.load(outL[h])
		if err := prunedSweep(out, h, lp, inL, ds, ec, st); err != nil {
			return nil, nil, err
		}
		// Backward sweep computes d(v→h) and fills L_out(v); the pruning
		// query d(v→h) intersects L_out(v) with L_in(h).
		lp.load(inL[h])
		if err := prunedSweep(in, h, lp, outL, ds, ec, st); err != nil {
			return nil, nil, err
		}
	}
	return outL, inL, nil
}

// --- Batched parallel build ------------------------------------------------

// buildScratch is the per-worker sweep state, recycled through a sync.Pool
// like the query-side scratch.
type buildScratch struct {
	ds *dijkstraState
	lp *landmarkProbe
}

// buildCand is one batched-sweep candidate: the sweep proved no
// earlier-batch landmark covers (h, node) at dist; in-batch predecessors
// are re-checked at merge time.
type buildCand struct {
	node graph.NodeID
	dist float64
}

// sweepResult is the output of one batched sweep, indexed by the
// landmark's position in its batch so the merge is schedule-independent.
type sweepResult struct {
	cands  []buildCand
	visits int64
	pruned int64
	err    error
}

// batchCap bounds the batch size: large batches amortize worker wake-ups
// but prune against staler labels, so the sweeps do more speculative work
// that the merge then discards.
func batchCap(workers int) int {
	c := 4 * workers
	if c < 16 {
		c = 16
	}
	return c
}

// batchedSweep runs one pruned Dijkstra from landmark h against the labels
// committed by earlier batches only. Candidates are collected instead of
// appended — committed is read-only here, which is what lets a whole batch
// run concurrently. The sweep is speculative: as long as no same-batch
// predecessor covers any popped node, its pop decisions (and therefore its
// distances) are bit-identical to the sequential sweep's; the merge
// verifies exactly that condition before committing.
func batchedSweep(g graph.Access, h graph.NodeID, hub []Entry, committed [][]Entry, sc *buildScratch, ec *exec.Ctx, out *sweepResult) {
	sc.lp.load(hub)
	ds := sc.ds
	ds.begin()
	ds.push(h, 0)
	out.cands = out.cands[:0]
	for {
		v, dist, ok := ds.pop()
		if !ok {
			return
		}
		out.visits++
		if out.visits&(exec.CheckStride-1) == 0 {
			if out.err = ec.Check(out.visits); out.err != nil {
				return
			}
		}
		if sc.lp.query(committed[v]) <= dist {
			out.pruned++
			continue
		}
		out.cands = append(out.cands, buildCand{node: v, dist: dist})
		if ds.adj, out.err = g.Adjacency(v, ds.adj); out.err != nil {
			return
		}
		for _, e := range ds.adj {
			ds.push(e.To, dist+e.W)
		}
	}
}

// runBatch fans the batch's jobs across the worker pool and waits for all
// of them. Results land at each job's own index, so nothing downstream
// depends on completion order; failed flips as soon as any job errors and
// later jobs skip their sweeps. A skipped slot is never read: jobs are
// dispatched in index order, so the first recorded error always has a
// lower index than any skipped job, and the merge stops there.
func runBatch(jobs int, workers int, failed *atomic.Bool, scratch *sync.Pool, sweep func(i int, sc *buildScratch)) {
	if workers > jobs {
		workers = jobs
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := scratch.Get().(*buildScratch)
			defer scratch.Put(sc)
			for i := range ch {
				if failed.Load() {
					continue
				}
				sweep(i, sc)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// mergeBatch commits one batch's candidates in landmark-rank order. The
// probe carries the landmark's label as of its own turn (committed batches
// plus in-batch predecessors already merged). If no candidate is covered
// by that label state, the speculative sweep made exactly the pop
// decisions the sequential sweep would have — before the first divergent
// decision distances are bit-equal, and the first divergence is always a
// keep-vs-prune flip that shows up here as a covered candidate — so the
// candidates commit as-is. Otherwise the exploration may have relaxed
// edges the sequential build pruned, which can perturb later distances in
// the last float bit; the whole landmark is redone with the sequential
// sweep against the now-current labels. Either way the result is
// bit-identical to the sequential build.
//
// vetrnn:deterministic
func mergeBatch(g graph.Access, batch []graph.NodeID, side func(i int) (*sweepResult, []Entry, [][]Entry), mergeLP *landmarkProbe, mergeDS *dijkstraState, ec *exec.Ctx, st *BuildStats) error {
	for i, h := range batch {
		r, hub, into := side(i)
		if r.err != nil {
			return r.err
		}
		st.Visits += r.visits
		st.Pruned += r.pruned
		mergeLP.load(hub)
		clean := true
		for _, c := range r.cands {
			if mergeLP.query(into[c.node]) <= c.dist {
				clean = false
				break
			}
		}
		if clean {
			for _, c := range r.cands {
				into[c.node] = append(into[c.node], Entry{Hub: h, Dist: c.dist})
			}
			continue
		}
		st.Resweeps++
		if err := prunedSweep(g, h, mergeLP, into, mergeDS, ec, st); err != nil {
			return err
		}
	}
	return nil
}

func newBuildScratchPool(n int) *sync.Pool {
	return &sync.Pool{New: func() any {
		return &buildScratch{ds: newDijkstraState(n), lp: newLandmarkProbe(n)}
	}}
}

// batchSpan yields the next rank-ordered batch: sizes double from 1 up to
// batchCap, so the first (widest-reaching) landmarks commit quickly and
// later sweeps prune against nearly fresh labels.
func batchSpan(order []graph.NodeID, start, size int) []graph.NodeID {
	end := start + size
	if end > len(order) {
		end = len(order)
	}
	return order[start:end]
}

// buildBatched runs the speculative batched build for undirected graphs.
// The labeling it produces must be bit-identical to the sequential
// build's regardless of worker count or scheduling.
//
// vetrnn:deterministic
func buildBatched(g graph.Access, order []graph.NodeID, n, workers int, ec *exec.Ctx, st *BuildStats) ([][]Entry, error) {
	entries := make([][]Entry, n)
	scratch := newBuildScratchPool(n)
	mergeLP := newLandmarkProbe(n)
	mergeDS := newDijkstraState(n)
	maxBatch := batchCap(workers)
	res := make([]sweepResult, maxBatch)
	var failed atomic.Bool
	for start, size := 0, 1; start < len(order); size *= 2 {
		if size > maxBatch {
			size = maxBatch
		}
		batch := batchSpan(order, start, size)
		start += len(batch)
		runBatch(len(batch), workers, &failed, scratch, func(i int, sc *buildScratch) {
			r := &res[i]
			*r = sweepResult{cands: r.cands}
			batchedSweep(g, batch[i], entries[batch[i]], entries, sc, ec, r)
			if r.err != nil {
				failed.Store(true)
			}
		})
		err := mergeBatch(g, batch, func(i int) (*sweepResult, []Entry, [][]Entry) {
			return &res[i], entries[batch[i]], entries
		}, mergeLP, mergeDS, ec, st)
		if err != nil {
			return nil, err
		}
		st.Batches++
	}
	return entries, nil
}

// digraphResult pairs the two sweeps of one directed landmark.
type digraphResult struct {
	fwd sweepResult
	bwd sweepResult
}

// buildDigraphBatched is buildBatched for digraphs: two sweeps per
// landmark, same bit-identical-to-sequential contract.
//
// vetrnn:deterministic
func buildDigraphBatched(d *graph.Digraph, order []graph.NodeID, n, workers int, ec *exec.Ctx, st *BuildStats) (outLabels, inLabels [][]Entry, err error) {
	out, in := d.Out(), d.In()
	outL := make([][]Entry, n)
	inL := make([][]Entry, n)
	scratch := newBuildScratchPool(n)
	mergeLP := newLandmarkProbe(n)
	mergeDS := newDijkstraState(n)
	maxBatch := batchCap(workers)
	res := make([]digraphResult, maxBatch)
	var failed atomic.Bool
	for start, size := 0, 1; start < len(order); size *= 2 {
		if size > maxBatch {
			size = maxBatch
		}
		batch := batchSpan(order, start, size)
		start += len(batch)
		runBatch(len(batch), workers, &failed, scratch, func(i int, sc *buildScratch) {
			h := batch[i]
			r := &res[i]
			*r = digraphResult{fwd: sweepResult{cands: r.fwd.cands}, bwd: sweepResult{cands: r.bwd.cands}}
			batchedSweep(out, h, outL[h], inL, sc, ec, &r.fwd)
			if r.fwd.err == nil {
				batchedSweep(in, h, inL[h], outL, sc, ec, &r.bwd)
			}
			if r.fwd.err != nil || r.bwd.err != nil {
				failed.Store(true)
			}
		})
		// The merge mirrors the sequential interleaving per landmark:
		// forward candidates commit into L_in before the backward probe
		// loads L_in(h), so a landmark's own self-entry is visible to its
		// backward half exactly as in the sequential build.
		for i, h := range batch {
			one := []graph.NodeID{h}
			if err := mergeBatch(out, one, func(int) (*sweepResult, []Entry, [][]Entry) {
				return &res[i].fwd, outL[h], inL
			}, mergeLP, mergeDS, ec, st); err != nil {
				return nil, nil, err
			}
			if err := mergeBatch(in, one, func(int) (*sweepResult, []Entry, [][]Entry) {
				return &res[i].bwd, inL[h], outL
			}, mergeLP, mergeDS, ec, st); err != nil {
				return nil, nil, err
			}
		}
		st.Batches++
	}
	return outL, inL, nil
}
