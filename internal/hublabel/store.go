package hublabel

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"graphrnn/internal/graph"
	"graphrnn/internal/storage"
)

// On-disk layout (little endian), built on the repository's generic slotted
// pages so labelings survive process restarts:
//
//	page 0          header: magic "GRNHUBL1", version, page size, numNodes,
//	                directed, label codec, directory start page, directory
//	                page count, entry total, label payload bytes
//	pages 1..D-1    label chunk records in node order (out label, then in
//	                label for directed graphs); one record holds
//	                [flags u8][count u16] followed by count entries in the
//	                file's codec, flag bit 0 = more chunks follow in the
//	                next slot
//	pages D..       the directory: one packed 8-byte entry per label
//	                ([page i32][slot u16][pad u16]) pointing at the first
//	                chunk of each node's label, node-major, out before in
//
// Chunks of one label always occupy consecutive slots (continuing at slot 0
// of the next page), so a reader only needs the first chunk's address.
//
// Codecs: codecRaw stores count×[hub u32][dist f64]. codecDelta exploits
// the hub-id-sorted label order and stores count×[uvarint hub][dist f64]
// where the first hub of a chunk is absolute and every later one is the
// gap to its predecessor — dense low-id hubs (the high-rank landmarks that
// dominate every label) shrink to one or two bytes. Each chunk restarts
// absolute, so chunks stay independently decodable. Files written before
// the codec existed carry zeros in the reserved header bytes and read back
// as codecRaw with an unknown payload size.

const (
	storeMagic   = "GRNHUBL1"
	storeVersion = 1

	// Header field offsets: magic [0:8), version [8:12), pageSize [12:16),
	// numNodes [16:20), directed [20], codec [21], pad [22:24),
	// dirStart [24:28), dirPages [28:32), entries [32:40),
	// payloadBytes [40:48).
	headerSize   = 48
	dirEntrySize = 8
	entrySize    = 4 + 8
	chunkHeader  = 1 + 2

	flagMore = 1

	codecRaw   = 0
	codecDelta = 1

	// maxVarintHub bounds one uvarint-encoded 32-bit hub id.
	maxVarintHub = 5
)

// WriteOptions tunes Write. The zero value writes the raw fixed-width
// codec, byte-compatible with files written before options existed.
type WriteOptions struct {
	// Compression switches label chunks to the delta+varint codec.
	Compression bool
}

type dirEnt struct {
	page storage.PageID
	slot uint16
}

// Write persists l into an empty paged file with the raw codec. The
// file's page 0 becomes the header; label and directory pages follow.
//
// vetrnn:deterministic
func Write(l *Labeling, f storage.PagedFile) error {
	return WriteOpt(l, f, WriteOptions{})
}

// WriteOpt is Write with codec control. The encoded byte stream is a
// pure function of the labeling and options — same input, same file.
//
// vetrnn:deterministic
func WriteOpt(l *Labeling, f storage.PagedFile, opt WriteOptions) error {
	if f.NumPages() != 0 {
		return fmt.Errorf("hublabel: refusing to write labeling into non-empty file (%d pages)", f.NumPages())
	}
	pageSize := f.PageSize()
	maxEntryBytes := entrySize
	if opt.Compression {
		maxEntryBytes = maxVarintHub + 8
	}
	if pageSize < headerSize || storage.MaxRecordPayload(pageSize) < chunkHeader+maxEntryBytes {
		return fmt.Errorf("hublabel: page size %d cannot hold one label entry", pageSize)
	}
	// Reserve page 0 for the header.
	if _, err := f.Append(make([]byte, pageSize)); err != nil {
		return err
	}

	sides := 1
	if l.directed {
		sides = 2
	}
	dir := make([]dirEnt, l.numNodes*sides)
	builder := storage.NewRecordPageBuilder(pageSize)
	nextPage := storage.PageID(1)
	var buf []Entry

	flush := func() error {
		if builder.Empty() {
			return nil
		}
		if _, err := f.Append(builder.Bytes()); err != nil {
			return err
		}
		nextPage++
		builder.Reset()
		return nil
	}

	var payload uint64
	addChunk := func(di int, rec []byte, first bool) (bool, error) {
		slot, ok := builder.TryAdd(rec)
		if !ok {
			return first, fmt.Errorf("hublabel: label chunk of %d bytes does not fit a fresh page", len(rec))
		}
		payload += uint64(len(rec))
		if first {
			dir[di] = dirEnt{page: nextPage, slot: uint16(slot)}
		}
		return false, nil
	}

	writeRaw := func(di int, label []Entry) error {
		first := true
		for {
			// Fit as many entries as the current page allows; open a fresh
			// page when not even one fits.
			maxEntries := (builder.FreeBytes() - chunkHeader) / entrySize
			if maxEntries < 1 && !builder.Empty() {
				if err := flush(); err != nil {
					return err
				}
				maxEntries = (builder.FreeBytes() - chunkHeader) / entrySize
			}
			count := len(label)
			more := false
			if count > maxEntries {
				count = maxEntries
				more = true
			}
			rec := make([]byte, chunkHeader+count*entrySize)
			if more {
				rec[0] = flagMore
			}
			binary.LittleEndian.PutUint16(rec[1:], uint16(count))
			for i, e := range label[:count] {
				off := chunkHeader + i*entrySize
				binary.LittleEndian.PutUint32(rec[off:], uint32(e.Hub))
				binary.LittleEndian.PutUint64(rec[off+4:], math.Float64bits(e.Dist))
			}
			var err error
			if first, err = addChunk(di, rec, first); err != nil {
				return err
			}
			label = label[count:]
			if !more {
				return nil
			}
		}
	}

	// writeDelta packs entries greedily: each chunk takes as many
	// varint-delta entries as the page has room for, restarting the
	// absolute hub encoding on every chunk.
	var rec []byte
	writeDelta := func(di int, label []Entry) error {
		first := true
		for {
			avail := builder.FreeBytes() - chunkHeader
			if avail < maxVarintHub+8 && !builder.Empty() {
				if err := flush(); err != nil {
					return err
				}
				avail = builder.FreeBytes() - chunkHeader
			}
			rec = append(rec[:0], 0, 0, 0)
			count := 0
			prev := graph.NodeID(0)
			var tmp [maxVarintHub]byte
			for count < len(label) {
				e := label[count]
				d := uint64(e.Hub)
				if count > 0 {
					d = uint64(e.Hub - prev)
				}
				n := binary.PutUvarint(tmp[:], d)
				if len(rec)-chunkHeader+n+8 > avail {
					break
				}
				rec = append(rec, tmp[:n]...)
				rec = binary.LittleEndian.AppendUint64(rec, math.Float64bits(e.Dist))
				prev = e.Hub
				count++
			}
			more := count < len(label)
			if more && count == 0 {
				return fmt.Errorf("hublabel: label entry does not fit a fresh page")
			}
			if more {
				rec[0] = flagMore
			}
			binary.LittleEndian.PutUint16(rec[1:], uint16(count))
			var err error
			if first, err = addChunk(di, rec, first); err != nil {
				return err
			}
			label = label[count:]
			if !more {
				return nil
			}
		}
	}

	writeLabel := writeRaw
	codec := byte(codecRaw)
	if opt.Compression {
		writeLabel = writeDelta
		codec = codecDelta
	}

	for v := graph.NodeID(0); int(v) < l.numNodes; v++ {
		buf = l.out.label(v, buf)
		if err := writeLabel(int(v)*sides, buf); err != nil {
			return err
		}
		if l.directed {
			buf = l.in.label(v, buf)
			if err := writeLabel(int(v)*sides+1, buf); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Directory pages.
	dirStart := nextPage
	perPage := pageSize / dirEntrySize
	page := make([]byte, pageSize)
	for i := 0; i < len(dir); i += perPage {
		for j := range page {
			page[j] = 0
		}
		for j := 0; j < perPage && i+j < len(dir); j++ {
			off := j * dirEntrySize
			binary.LittleEndian.PutUint32(page[off:], uint32(dir[i+j].page))
			binary.LittleEndian.PutUint16(page[off+4:], dir[i+j].slot)
		}
		if _, err := f.Append(page); err != nil {
			return err
		}
		nextPage++
	}

	// Final header.
	hdr := make([]byte, pageSize)
	copy(hdr, storeMagic)
	binary.LittleEndian.PutUint32(hdr[8:], storeVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(pageSize))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(l.numNodes))
	if l.directed {
		hdr[20] = 1
	}
	hdr[21] = codec
	binary.LittleEndian.PutUint32(hdr[24:], uint32(dirStart))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(nextPage-dirStart))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(l.Entries()))
	binary.LittleEndian.PutUint64(hdr[40:], payload)
	return f.Write(0, hdr)
}

// FilePageSize reads the page size a persisted labeling was written with,
// so callers can open the file with matching pages without knowing the
// original options.
func FilePageSize(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("hublabel: read header of %s: %w", path, err)
	}
	if string(hdr[:8]) != storeMagic {
		return 0, fmt.Errorf("hublabel: %s: bad magic %q", path, hdr[:8])
	}
	return int(binary.LittleEndian.Uint32(hdr[12:])), nil
}

// Store serves a persisted labeling through an LRU buffer. The directory is
// held in memory (8 bytes per label); label pages fault in on demand and
// are counted in Stats. A Store is safe for concurrent readers.
type Store struct {
	file     storage.PagedFile
	buffer   *storage.BufferManager
	numNodes int
	directed bool
	entries  int
	codec    byte
	payload  int64
	dir      []dirEnt
	pageSize int
	pagePool sync.Pool // []byte page buffers for capacity-0 reads
}

// OpenStore opens a labeling previously persisted with Write, reading label
// pages through a private LRU buffer of bufferPages pages. Use
// OpenStoreBuffer to serve label pages through a shared buffer pool.
func OpenStore(f storage.PagedFile, bufferPages int) (*Store, error) {
	return openStore(f, func() *storage.BufferManager {
		return storage.NewBufferManager(f, bufferPages)
	})
}

// OpenStoreBuffer is OpenStore reading label pages through bm, which must
// wrap f — typically a tenant of the process-wide buffer pool, so label
// pages share frames (and stats) with every other substrate.
func OpenStoreBuffer(f storage.PagedFile, bm *storage.BufferManager) (*Store, error) {
	return openStore(f, func() *storage.BufferManager { return bm })
}

func openStore(f storage.PagedFile, buffer func() *storage.BufferManager) (*Store, error) {
	pageSize := f.PageSize()
	if f.NumPages() == 0 {
		return nil, fmt.Errorf("hublabel: empty label file")
	}
	hdr := make([]byte, pageSize)
	if err := f.Read(0, hdr); err != nil {
		return nil, err
	}
	if string(hdr[:8]) != storeMagic {
		return nil, fmt.Errorf("hublabel: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != storeVersion {
		return nil, fmt.Errorf("hublabel: unsupported version %d", v)
	}
	if ps := int(binary.LittleEndian.Uint32(hdr[12:])); ps != pageSize {
		return nil, fmt.Errorf("hublabel: label file was written with %d-byte pages, opened with %d (use FilePageSize)", ps, pageSize)
	}
	numNodes := int(binary.LittleEndian.Uint32(hdr[16:]))
	directed := hdr[20] == 1
	codec := hdr[21]
	if codec > codecDelta {
		return nil, fmt.Errorf("hublabel: unsupported label codec %d", codec)
	}
	dirStart := storage.PageID(binary.LittleEndian.Uint32(hdr[24:]))
	dirPages := int(binary.LittleEndian.Uint32(hdr[28:]))
	entries := int(binary.LittleEndian.Uint64(hdr[32:]))
	payload := int64(binary.LittleEndian.Uint64(hdr[40:]))

	sides := 1
	if directed {
		sides = 2
	}
	dir := make([]dirEnt, 0, numNodes*sides)
	perPage := pageSize / dirEntrySize
	page := make([]byte, pageSize)
	for p := 0; p < dirPages; p++ {
		if err := f.Read(dirStart+storage.PageID(p), page); err != nil {
			return nil, err
		}
		for j := 0; j < perPage && len(dir) < numNodes*sides; j++ {
			off := j * dirEntrySize
			dir = append(dir, dirEnt{
				page: storage.PageID(binary.LittleEndian.Uint32(page[off:])),
				slot: binary.LittleEndian.Uint16(page[off+4:]),
			})
		}
	}
	if len(dir) != numNodes*sides {
		return nil, fmt.Errorf("hublabel: directory holds %d of %d entries", len(dir), numNodes*sides)
	}
	s := &Store{
		file:     f,
		buffer:   buffer(),
		numNodes: numNodes,
		directed: directed,
		entries:  entries,
		codec:    codec,
		payload:  payload,
		dir:      dir,
		pageSize: pageSize,
	}
	s.pagePool.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s, nil
}

// NumNodes implements Source.
func (s *Store) NumNodes() int { return s.numNodes }

// Directed implements Source.
func (s *Store) Directed() bool { return s.directed }

// Entries returns the total number of label entries (both sides).
func (s *Store) Entries() int { return s.entries }

// Compressed reports whether label chunks use the delta+varint codec.
func (s *Store) Compressed() bool { return s.codec == codecDelta }

// PayloadBytes returns the encoded label record bytes (chunk headers
// included), or 0 for files written before the counter existed.
func (s *Store) PayloadBytes() int64 { return s.payload }

// RawBytes returns what the entries occupy in the raw fixed-width codec,
// the baseline the compression ratio is measured against.
func (s *Store) RawBytes() int64 { return int64(s.entries) * entrySize }

// AverageLabelSize returns the mean entries per node per side.
func (s *Store) AverageLabelSize() float64 {
	if s.numNodes == 0 {
		return 0
	}
	sides := 1
	if s.directed {
		sides = 2
	}
	return float64(s.entries) / float64(s.numNodes*sides)
}

// Stats returns the label-file I/O counters.
func (s *Store) Stats() storage.Stats { return s.buffer.Stats() }

// ResetStats zeroes the label-file I/O counters.
func (s *Store) ResetStats() { s.buffer.ResetStats() }

// Buffer exposes the LRU buffer (cold-start experiments).
func (s *Store) Buffer() *storage.BufferManager { return s.buffer }

// Close detaches the store's buffer tenant from its pool (flushing dirty
// pages and returning contributed capacity), then closes the underlying
// file. The store must not be used afterwards; Close is idempotent.
func (s *Store) Close() error {
	var detachErr error
	if s.buffer != nil {
		buffer := s.buffer
		s.buffer = nil
		detachErr = buffer.Detach()
	}
	if s.file != nil {
		file := s.file
		s.file = nil
		if err := file.Close(); err != nil && detachErr == nil {
			detachErr = err
		}
	}
	return detachErr
}

// OutLabel implements Source.
func (s *Store) OutLabel(n graph.NodeID, buf []Entry) ([]Entry, error) {
	sides := 1
	if s.directed {
		sides = 2
	}
	if n < 0 || int(n) >= s.numNodes {
		return nil, fmt.Errorf("hublabel: node %d out of range [0,%d)", n, s.numNodes)
	}
	return s.readLabel(s.dir[int(n)*sides], buf)
}

// InLabel implements Source.
func (s *Store) InLabel(n graph.NodeID, buf []Entry) ([]Entry, error) {
	if n < 0 || int(n) >= s.numNodes {
		return nil, fmt.Errorf("hublabel: node %d out of range [0,%d)", n, s.numNodes)
	}
	if !s.directed {
		return s.readLabel(s.dir[n], buf)
	}
	return s.readLabel(s.dir[int(n)*2+1], buf)
}

// readLabel decodes one label's chunk chain into buf.
//
// vetrnn:deterministic
func (s *Store) readLabel(at dirEnt, buf []Entry) ([]Entry, error) {
	buf = buf[:0]
	scratch := s.pagePool.Get().(*[]byte)
	defer s.pagePool.Put(scratch)
	pid, slot := at.page, int(at.slot)
	//lint:ignore vetrnn/execpoll record-chain walk inside the label-read primitive itself; callers poll per label fetch
	for {
		page, err := s.buffer.GetInto(pid, *scratch)
		if err != nil {
			return nil, err
		}
		rec, err := storage.ReadRecordSlot(page, s.pageSize, slot)
		if err != nil {
			return nil, err
		}
		if len(rec) < chunkHeader {
			return nil, fmt.Errorf("hublabel: truncated label chunk on page %d slot %d", pid, slot)
		}
		count := int(binary.LittleEndian.Uint16(rec[1:]))
		if s.codec == codecDelta {
			body := rec[chunkHeader:]
			prev := graph.NodeID(0)
			for i := 0; i < count; i++ {
				d, n := binary.Uvarint(body)
				if n <= 0 || len(body) < n+8 {
					return nil, fmt.Errorf("hublabel: corrupt label chunk on page %d slot %d", pid, slot)
				}
				hub := graph.NodeID(d)
				if i > 0 {
					hub = prev + graph.NodeID(d)
				}
				buf = append(buf, Entry{
					Hub:  hub,
					Dist: math.Float64frombits(binary.LittleEndian.Uint64(body[n:])),
				})
				prev = hub
				body = body[n+8:]
			}
		} else {
			if len(rec) < chunkHeader+count*entrySize {
				return nil, fmt.Errorf("hublabel: corrupt label chunk on page %d slot %d", pid, slot)
			}
			for i := 0; i < count; i++ {
				off := chunkHeader + i*entrySize
				buf = append(buf, Entry{
					Hub:  graph.NodeID(binary.LittleEndian.Uint32(rec[off:])),
					Dist: math.Float64frombits(binary.LittleEndian.Uint64(rec[off+4:])),
				})
			}
		}
		if rec[0]&flagMore == 0 {
			return buf, nil
		}
		if slot+1 < storage.RecordSlotCount(page) {
			slot++
		} else {
			pid++
			slot = 0
		}
	}
}

// Load reads a persisted labeling fully into memory.
//
// vetrnn:deterministic
func Load(f storage.PagedFile) (*Labeling, error) {
	s, err := OpenStore(f, 1)
	if err != nil {
		return nil, err
	}
	n := s.numNodes
	out := make([][]Entry, n)
	var in [][]Entry
	if s.directed {
		in = make([][]Entry, n)
	}
	var buf []Entry
	//lint:ignore vetrnn/execpoll load-time bulk read of the whole labeling; no query context exists
	for v := graph.NodeID(0); int(v) < n; v++ {
		if buf, err = s.OutLabel(v, buf); err != nil {
			return nil, err
		}
		out[v] = append([]Entry(nil), buf...)
		if s.directed {
			if buf, err = s.InLabel(v, buf); err != nil {
				return nil, err
			}
			in[v] = append([]Entry(nil), buf...)
		}
	}
	l := &Labeling{numNodes: n, directed: s.directed, out: finalize(n, out)}
	if s.directed {
		l.in = finalize(n, in)
	}
	return l, nil
}
