package hublabel

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"graphrnn/internal/exec"
	"graphrnn/internal/gen"
	"graphrnn/internal/graph"
	"graphrnn/internal/storage"
)

// sameLabeling compares two labelings bit for bit: identical CSR offsets,
// hub ids and float64 distances on both sides.
func sameLabeling(t *testing.T, want, got *Labeling) {
	t.Helper()
	if want.numNodes != got.numNodes || want.directed != got.directed {
		t.Fatalf("shape mismatch: (%d,%v) vs (%d,%v)", want.numNodes, want.directed, got.numNodes, got.directed)
	}
	sameSet := func(side string, a, b labelSet) {
		if len(a.offsets) != len(b.offsets) || len(a.hubs) != len(b.hubs) {
			t.Fatalf("%s: size mismatch: %d/%d entries", side, len(a.hubs), len(b.hubs))
		}
		for i := range a.offsets {
			if a.offsets[i] != b.offsets[i] {
				t.Fatalf("%s: offsets diverge at node %d: %d vs %d", side, i, a.offsets[i], b.offsets[i])
			}
		}
		for i := range a.hubs {
			if a.hubs[i] != b.hubs[i] || a.dists[i] != b.dists[i] {
				t.Fatalf("%s: entry %d diverges: (%d,%v) vs (%d,%v)",
					side, i, a.hubs[i], a.dists[i], b.hubs[i], b.dists[i])
			}
		}
	}
	sameSet("out", want.out, got.out)
	if want.directed {
		sameSet("in", want.in, got.in)
	}
}

// TestBuildOptDeterminism is the parallel-build property test: for every
// worker count the batched build must produce labels bit-identical to the
// sequential build, on road and grid topologies, undirected and directed.
// Run under -race this also exercises the worker pool for data races.
func TestBuildOptDeterminism(t *testing.T) {
	graphs := testGraphs(t)
	for _, name := range []string{"road", "grid"} {
		g := graphs[name]
		seq, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(name, func(t *testing.T) {
				par, st, err := BuildOpt(g, BuildOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				sameLabeling(t, seq, par)
				if st.Workers != workers {
					t.Fatalf("stats report %d workers, want %d", st.Workers, workers)
				}
				if st.Landmarks != g.NumNodes() || st.Visits == 0 {
					t.Fatalf("implausible stats: %+v", st)
				}
				if workers > 1 && st.Batches == 0 {
					t.Fatalf("batched build reports no batches: %+v", st)
				}
				if st.Wall <= 0 {
					t.Fatalf("no wall time recorded: %+v", st)
				}
			})
		}
	}
	d := testDigraph(t, 21)
	seq, err := BuildDigraph(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run("digraph", func(t *testing.T) {
			par, _, err := BuildDigraphOpt(d, BuildOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			sameLabeling(t, seq, par)
		})
	}
}

// TestBuildOptNegativeWorkers resolves the GOMAXPROCS default and still
// matches the sequential labels.
func TestBuildOptNegativeWorkers(t *testing.T) {
	g := testGraphs(t)["grid"]
	seq, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	par, st, err := BuildOpt(g, BuildOptions{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers < 1 {
		t.Fatalf("resolved workers = %d", st.Workers)
	}
	sameLabeling(t, seq, par)
}

// TestBuildOptCancel: a pre-canceled exec context abandons the build with
// the typed error, sequential and parallel alike.
func TestBuildOptCancel(t *testing.T) {
	g := testGraphs(t)["road"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := exec.New(ctx, exec.Budget{}, nil)
	for _, workers := range []int{1, 4} {
		if _, _, err := BuildOpt(g, BuildOptions{Workers: workers, Exec: ec}); !errors.Is(err, exec.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
	}
	d := testDigraph(t, 21)
	if _, _, err := BuildDigraphOpt(d, BuildOptions{Workers: 4, Exec: ec}); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("digraph: err = %v, want ErrCanceled", err)
	}
}

// TestBuildOptTinyGraph exercises the batch schedule on graphs smaller
// than one batch.
func TestBuildOptTinyGraph(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := BuildOpt(g, BuildOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameLabeling(t, seq, par)
}

// TestStoreCompressedRoundTrip persists labelings with the delta+varint
// codec — across page sizes that force chunk restarts — and checks the
// served labels are identical to the in-memory ones while the payload
// shrinks below the raw fixed-width encoding.
func TestStoreCompressedRoundTrip(t *testing.T) {
	graphs := testGraphs(t)
	for name, g := range graphs {
		for _, pageSize := range []int{128, 4096} {
			t.Run(fmt.Sprintf("%s/page%d", name, pageSize), func(t *testing.T) {
				l, err := Build(g)
				if err != nil {
					t.Fatal(err)
				}
				f := storage.NewMemFile(pageSize)
				if err := WriteOpt(l, f, WriteOptions{Compression: true}); err != nil {
					t.Fatal(err)
				}
				s, err := OpenStore(f, 16)
				if err != nil {
					t.Fatal(err)
				}
				if !s.Compressed() {
					t.Fatal("store does not report the delta codec")
				}
				if s.PayloadBytes() <= 0 || s.PayloadBytes() >= s.RawBytes() {
					t.Fatalf("payload %d bytes did not shrink below raw %d", s.PayloadBytes(), s.RawBytes())
				}
				var a, b []Entry
				for v := graph.NodeID(0); int(v) < l.NumNodes(); v++ {
					if a, err = l.OutLabel(v, a); err != nil {
						t.Fatal(err)
					}
					if b, err = s.OutLabel(v, b); err != nil {
						t.Fatal(err)
					}
					if !sameEntries(a, b) {
						t.Fatalf("node %d label mismatch: %v vs %v", v, a, b)
					}
				}
			})
		}
	}
	// Directed: both sides plus full Load through the compressed codec.
	d := testDigraph(t, 23)
	l, err := BuildDigraph(d)
	if err != nil {
		t.Fatal(err)
	}
	f := storage.NewMemFile(256)
	if err := WriteOpt(l, f, WriteOptions{Compression: true}); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []Entry
	for v := graph.NodeID(0); int(v) < l.NumNodes(); v++ {
		for side := 0; side < 2; side++ {
			if side == 0 {
				a, _ = l.OutLabel(v, a)
				b, err = s.OutLabel(v, b)
			} else {
				a, _ = l.InLabel(v, a)
				b, err = s.InLabel(v, b)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !sameEntries(a, b) {
				t.Fatalf("node %d side %d mismatch", v, side)
			}
		}
	}
	l2, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Entries() != l.Entries() || l2.Directed() != l.Directed() {
		t.Fatalf("Load: %d entries directed=%v, want %d/%v", l2.Entries(), l2.Directed(), l.Entries(), l.Directed())
	}
	// A raw store of the same labeling reports no compression and a
	// payload at least as large as the raw entry bytes.
	rf := storage.NewMemFile(256)
	if err := Write(l, rf); err != nil {
		t.Fatal(err)
	}
	rs, err := OpenStore(rf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Compressed() || rs.PayloadBytes() < rs.RawBytes() {
		t.Fatalf("raw store: compressed=%v payload=%d raw=%d", rs.Compressed(), rs.PayloadBytes(), rs.RawBytes())
	}
}

// TestBuildOptBrite covers the scale-free topology too (not part of the
// bit-identity matrix above, but the batch merge must hold on hub-heavy
// graphs where within-batch coverage is the common case).
func TestBuildOptBrite(t *testing.T) {
	g, err := gen.Brite(gen.BriteConfig{Seed: 12, Nodes: 400, AvgDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := BuildOpt(g, BuildOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameLabeling(t, seq, par)
}
