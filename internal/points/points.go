// Package points models the data sets P (and Q for bichromatic queries) of
// Yiu et al. (TKDE'06). In restricted networks every data point resides on a
// graph node (at most one point per node per set); in unrestricted networks
// points live on edges as triplets <n_i, n_j, pos> (Section 5.2).
//
// Query algorithms read points through the NodeView / EdgeView interfaces so
// that a query point sampled from the data set can be excluded (the paper's
// workloads place queries at data point locations, modelling a newly arrived
// peer or facility), and so that edge-resident points can be served either
// from memory or from an I/O-accounted paged file (Fig 14b's storage
// scheme).
package points

import (
	"fmt"
	"sort"

	"graphrnn/internal/graph"
)

// PointID identifies a data point within its set.
type PointID int32

// NoPoint marks the absence of a point.
const NoPoint PointID = -1

// NodeView is the read interface for node-resident (restricted) point sets.
type NodeView interface {
	// PointAt returns the point residing on node n, if any.
	PointAt(n graph.NodeID) (PointID, bool)
	// NodeOf returns the node hosting point p; ok is false when p does not
	// exist (or is hidden by an exclusion view).
	NodeOf(p PointID) (graph.NodeID, bool)
	// Len returns the number of visible points.
	Len() int
	// Points returns the visible point ids in ascending order.
	Points() []PointID
}

// NodeSet is a mutable node-resident point set.
type NodeSet struct {
	byNode []PointID
	nodes  []graph.NodeID // PointID -> node, -1 when deleted
	live   int
}

// NewNodeSet creates an empty point set over a graph of numNodes nodes.
func NewNodeSet(numNodes int) *NodeSet {
	byNode := make([]PointID, numNodes)
	for i := range byNode {
		byNode[i] = NoPoint
	}
	return &NodeSet{byNode: byNode}
}

// NewNodeSetFromNodes places one point on each listed node, assigning point
// ids in list order.
func NewNodeSetFromNodes(numNodes int, nodes []graph.NodeID) (*NodeSet, error) {
	s := NewNodeSet(numNodes)
	for _, n := range nodes {
		if _, err := s.Place(n); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Place puts a new point on node n.
func (s *NodeSet) Place(n graph.NodeID) (PointID, error) {
	if n < 0 || int(n) >= len(s.byNode) {
		return NoPoint, fmt.Errorf("points: node %d out of range [0,%d)", n, len(s.byNode))
	}
	if s.byNode[n] != NoPoint {
		return NoPoint, fmt.Errorf("points: node %d already hosts point %d", n, s.byNode[n])
	}
	p := PointID(len(s.nodes))
	s.nodes = append(s.nodes, n)
	s.byNode[n] = p
	s.live++
	return p, nil
}

// Delete removes point p from the set.
func (s *NodeSet) Delete(p PointID) error {
	if p < 0 || int(p) >= len(s.nodes) || s.nodes[p] < 0 {
		return fmt.Errorf("points: point %d does not exist", p)
	}
	s.byNode[s.nodes[p]] = NoPoint
	s.nodes[p] = -1
	s.live--
	return nil
}

// Restore re-creates the deleted point p on node n under its original id —
// the rollback path of journaled materialization maintenance, which must
// undo a Delete without renumbering the point.
func (s *NodeSet) Restore(p PointID, n graph.NodeID) error {
	if n < 0 || int(n) >= len(s.byNode) {
		return fmt.Errorf("points: node %d out of range [0,%d)", n, len(s.byNode))
	}
	if p < 0 || int(p) >= len(s.nodes) || s.nodes[p] >= 0 {
		return fmt.Errorf("points: point %d is not a deleted point", p)
	}
	if s.byNode[n] != NoPoint {
		return fmt.Errorf("points: node %d already hosts point %d", n, s.byNode[n])
	}
	s.nodes[p] = n
	s.byNode[n] = p
	s.live++
	return nil
}

// RestoreNodeSet rebuilds a node set from its dense PointID -> node table
// (-1 marks a deleted id) — the shape the materialization file persists.
func RestoreNodeSet(numNodes int, nodes []graph.NodeID) (*NodeSet, error) {
	s := NewNodeSet(numNodes)
	s.nodes = make([]graph.NodeID, len(nodes))
	for p, n := range nodes {
		s.nodes[p] = -1
		if n < 0 {
			continue
		}
		if int(n) >= numNodes {
			return nil, fmt.Errorf("points: node %d out of range [0,%d)", n, numNodes)
		}
		if s.byNode[n] != NoPoint {
			return nil, fmt.Errorf("points: node %d hosts points %d and %d", n, s.byNode[n], p)
		}
		s.nodes[p] = n
		s.byNode[n] = PointID(p)
		s.live++
	}
	return s, nil
}

// PointAt implements NodeView.
func (s *NodeSet) PointAt(n graph.NodeID) (PointID, bool) {
	if n < 0 || int(n) >= len(s.byNode) {
		return NoPoint, false
	}
	p := s.byNode[n]
	return p, p != NoPoint
}

// NodeOf implements NodeView.
func (s *NodeSet) NodeOf(p PointID) (graph.NodeID, bool) {
	if p < 0 || int(p) >= len(s.nodes) || s.nodes[p] < 0 {
		return 0, false
	}
	return s.nodes[p], true
}

// Len implements NodeView.
func (s *NodeSet) Len() int { return s.live }

// Table returns a copy of the dense PointID -> node table, -1 for deleted
// ids — the persisted shape (see RestoreNodeSet). Tombstones are included
// so a reopened set keeps allocating fresh ids.
func (s *NodeSet) Table() []graph.NodeID { return append([]graph.NodeID(nil), s.nodes...) }

// Points returns the ids of all live points in ascending order.
func (s *NodeSet) Points() []PointID {
	out := make([]PointID, 0, s.live)
	for p, n := range s.nodes {
		if n >= 0 {
			out = append(out, PointID(p))
		}
	}
	return out
}

// HiddenPointView is implemented by views that hide exactly one point of an
// underlying set; indexes that track the full set (hub-label) use it to
// recover the hidden id in O(1) instead of scanning.
type HiddenPointView interface {
	NodeView
	// HiddenPoint returns the id the view hides.
	HiddenPoint() PointID
	// Unhidden returns the full underlying view.
	Unhidden() NodeView
}

// excludeNode hides one point from a NodeView.
type excludeNode struct {
	NodeView
	hidden PointID
}

// HiddenPoint implements HiddenPointView.
func (e excludeNode) HiddenPoint() PointID { return e.hidden }

// Unhidden implements HiddenPointView.
func (e excludeNode) Unhidden() NodeView { return e.NodeView }

// ExcludeNode returns a view of v with point hidden removed; hiding NoPoint
// returns v unchanged.
func ExcludeNode(v NodeView, hidden PointID) NodeView {
	if hidden == NoPoint {
		return v
	}
	return excludeNode{NodeView: v, hidden: hidden}
}

func (e excludeNode) PointAt(n graph.NodeID) (PointID, bool) {
	p, ok := e.NodeView.PointAt(n)
	if !ok || p == e.hidden {
		return NoPoint, false
	}
	return p, true
}

func (e excludeNode) NodeOf(p PointID) (graph.NodeID, bool) {
	if p == e.hidden {
		return 0, false
	}
	return e.NodeView.NodeOf(p)
}

func (e excludeNode) Len() int { return e.NodeView.Len() - 1 }

func (e excludeNode) Points() []PointID {
	all := e.NodeView.Points()
	out := make([]PointID, 0, len(all))
	for _, p := range all {
		if p != e.hidden {
			out = append(out, p)
		}
	}
	return out
}

// EdgePoint is the location of an edge-resident point: the canonical edge
// (U < V) and the offset Pos from U along the edge (0 <= Pos <= weight).
type EdgePoint struct {
	U, V graph.NodeID
	Pos  float64
}

// EdgePointRef pairs a point id with its offset from the canonical endpoint
// U; PointsOn returns these sorted by Pos.
type EdgePointRef struct {
	ID  PointID
	Pos float64
}

// EdgeView is the read interface for edge-resident (unrestricted) point
// sets. Implementations may perform I/O (PagedEdgeSet) and therefore return
// errors.
type EdgeView interface {
	// PointsOn appends the points residing on edge (u,v) to buf, sorted by
	// offset from min(u,v).
	PointsOn(u, v graph.NodeID, buf []EdgePointRef) ([]EdgePointRef, error)
	// Loc returns the location of point p.
	Loc(p PointID) (EdgePoint, bool)
	// Len returns the number of visible points.
	Len() int
	// Points returns the visible point ids in ascending order.
	Points() []PointID
}

type edgeKey struct {
	u, v graph.NodeID
}

func canonKey(u, v graph.NodeID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// EdgeSet is a mutable in-memory edge-resident point set.
type EdgeSet struct {
	pts    []EdgePoint // PointID -> location; U == -1 when deleted
	byEdge map[edgeKey][]EdgePointRef
	live   int
}

// NewEdgeSet creates an empty edge point set.
func NewEdgeSet() *EdgeSet {
	return &EdgeSet{byEdge: make(map[edgeKey][]EdgePointRef)}
}

// Place puts a new point on edge (u,v) at offset pos from min(u,v). The
// caller is responsible for pos <= weight(u,v).
func (s *EdgeSet) Place(u, v graph.NodeID, pos float64) (PointID, error) {
	if u == v {
		return NoPoint, fmt.Errorf("points: degenerate edge (%d,%d)", u, v)
	}
	if pos < 0 {
		return NoPoint, fmt.Errorf("points: negative offset %v", pos)
	}
	if u > v {
		u, v = v, u
	}
	p := PointID(len(s.pts))
	s.pts = append(s.pts, EdgePoint{U: u, V: v, Pos: pos})
	k := edgeKey{u, v}
	refs := append(s.byEdge[k], EdgePointRef{ID: p, Pos: pos})
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Pos != refs[j].Pos {
			return refs[i].Pos < refs[j].Pos
		}
		return refs[i].ID < refs[j].ID
	})
	s.byEdge[k] = refs
	s.live++
	return p, nil
}

// Delete removes point p.
func (s *EdgeSet) Delete(p PointID) error {
	if p < 0 || int(p) >= len(s.pts) || s.pts[p].U < 0 {
		return fmt.Errorf("points: point %d does not exist", p)
	}
	loc := s.pts[p]
	k := edgeKey{loc.U, loc.V}
	refs := s.byEdge[k]
	for i, r := range refs {
		if r.ID == p {
			s.byEdge[k] = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	if len(s.byEdge[k]) == 0 {
		delete(s.byEdge, k)
	}
	s.pts[p].U = -1
	s.live--
	return nil
}

// Restore re-creates the deleted point p at its original location under its
// original id — the rollback path of journaled materialization maintenance.
func (s *EdgeSet) Restore(p PointID, u, v graph.NodeID, pos float64) error {
	if u == v || u < 0 || v < 0 || pos < 0 {
		return fmt.Errorf("points: bad location (%d,%d)@%v", u, v, pos)
	}
	if p < 0 || int(p) >= len(s.pts) || s.pts[p].U >= 0 {
		return fmt.Errorf("points: point %d is not a deleted point", p)
	}
	if u > v {
		u, v = v, u
	}
	s.pts[p] = EdgePoint{U: u, V: v, Pos: pos}
	k := edgeKey{u, v}
	refs := append(s.byEdge[k], EdgePointRef{ID: p, Pos: pos})
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Pos != refs[j].Pos {
			return refs[i].Pos < refs[j].Pos
		}
		return refs[i].ID < refs[j].ID
	})
	s.byEdge[k] = refs
	s.live++
	return nil
}

// RestoreEdgeSet rebuilds an edge set from its dense PointID -> location
// table (U < 0 marks a deleted id) — the shape the materialization file
// persists.
func RestoreEdgeSet(pts []EdgePoint) (*EdgeSet, error) {
	s := NewEdgeSet()
	s.pts = make([]EdgePoint, len(pts))
	for p := range s.pts {
		s.pts[p].U = -1
	}
	for p, loc := range pts {
		if loc.U < 0 {
			continue
		}
		if err := s.Restore(PointID(p), loc.U, loc.V, loc.Pos); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// PointsOn implements EdgeView.
func (s *EdgeSet) PointsOn(u, v graph.NodeID, buf []EdgePointRef) ([]EdgePointRef, error) {
	buf = buf[:0]
	return append(buf, s.byEdge[canonKey(u, v)]...), nil
}

// Loc implements EdgeView.
func (s *EdgeSet) Loc(p PointID) (EdgePoint, bool) {
	if p < 0 || int(p) >= len(s.pts) || s.pts[p].U < 0 {
		return EdgePoint{}, false
	}
	return s.pts[p], true
}

// Len implements EdgeView.
func (s *EdgeSet) Len() int { return s.live }

// Table returns a copy of the dense PointID -> location table, U < 0 for
// deleted ids — the persisted shape (see RestoreEdgeSet).
func (s *EdgeSet) Table() []EdgePoint { return append([]EdgePoint(nil), s.pts...) }

// Points returns the ids of all live points in ascending order.
func (s *EdgeSet) Points() []PointID {
	out := make([]PointID, 0, s.live)
	for p := range s.pts {
		if s.pts[p].U >= 0 {
			out = append(out, PointID(p))
		}
	}
	return out
}

// excludeEdge hides one point from an EdgeView.
// HiddenEdgePointView is the edge-resident counterpart of HiddenPointView:
// views that hide exactly one point of an underlying edge set implement it,
// so callers (the query planner) can recover the base set without a scan.
type HiddenEdgePointView interface {
	EdgeView
	// HiddenPoint returns the id the view hides.
	HiddenPoint() PointID
	// UnhiddenEdge returns the full underlying view.
	UnhiddenEdge() EdgeView
}

type excludeEdge struct {
	EdgeView
	hidden PointID
}

// HiddenPoint implements HiddenEdgePointView.
func (e excludeEdge) HiddenPoint() PointID { return e.hidden }

// UnhiddenEdge implements HiddenEdgePointView.
func (e excludeEdge) UnhiddenEdge() EdgeView { return e.EdgeView }

// ExcludeEdge returns a view of v with point hidden removed; hiding NoPoint
// returns v unchanged.
func ExcludeEdge(v EdgeView, hidden PointID) EdgeView {
	if hidden == NoPoint {
		return v
	}
	return excludeEdge{EdgeView: v, hidden: hidden}
}

func (e excludeEdge) PointsOn(u, v graph.NodeID, buf []EdgePointRef) ([]EdgePointRef, error) {
	refs, err := e.EdgeView.PointsOn(u, v, buf)
	if err != nil {
		return nil, err
	}
	out := refs[:0]
	for _, r := range refs {
		if r.ID != e.hidden {
			out = append(out, r)
		}
	}
	return out, nil
}

func (e excludeEdge) Loc(p PointID) (EdgePoint, bool) {
	if p == e.hidden {
		return EdgePoint{}, false
	}
	return e.EdgeView.Loc(p)
}

func (e excludeEdge) Len() int { return e.EdgeView.Len() - 1 }

func (e excludeEdge) Points() []PointID {
	all := e.EdgeView.Points()
	out := make([]PointID, 0, len(all))
	for _, p := range all {
		if p != e.hidden {
			out = append(out, p)
		}
	}
	return out
}
