package points

import (
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/storage"
)

func TestNodeSetPlaceAndLookup(t *testing.T) {
	s := NewNodeSet(10)
	p0, err := s.Place(3)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.Place(7)
	if err != nil {
		t.Fatal(err)
	}
	if p0 != 0 || p1 != 1 {
		t.Fatalf("ids = %d,%d", p0, p1)
	}
	if got, ok := s.PointAt(3); !ok || got != p0 {
		t.Fatalf("PointAt(3) = %d,%v", got, ok)
	}
	if _, ok := s.PointAt(4); ok {
		t.Fatal("PointAt(4) found a phantom point")
	}
	if n, ok := s.NodeOf(p1); !ok || n != 7 {
		t.Fatalf("NodeOf(%d) = %d,%v", p1, n, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Points(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Points = %v", got)
	}
}

func TestNodeSetErrors(t *testing.T) {
	s := NewNodeSet(4)
	if _, err := s.Place(9); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := s.Place(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(2); err == nil {
		t.Fatal("double occupancy accepted")
	}
	if err := s.Delete(5); err == nil {
		t.Fatal("deleting unknown point succeeded")
	}
}

func TestNodeSetDelete(t *testing.T) {
	s := NewNodeSet(5)
	p, _ := s.Place(1)
	q, _ := s.Place(2)
	if err := s.Delete(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.PointAt(1); ok {
		t.Fatal("deleted point still visible at node")
	}
	if _, ok := s.NodeOf(p); ok {
		t.Fatal("deleted point still resolvable")
	}
	if err := s.Delete(p); err == nil {
		t.Fatal("double delete succeeded")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Node 1 can be reused.
	r, err := s.Place(1)
	if err != nil {
		t.Fatal(err)
	}
	if r == p || r == q {
		t.Fatalf("reused id %d", r)
	}
}

func TestExcludeNodeView(t *testing.T) {
	s := NewNodeSet(5)
	p, _ := s.Place(1)
	q, _ := s.Place(2)
	v := ExcludeNode(s, p)
	if _, ok := v.PointAt(1); ok {
		t.Fatal("excluded point visible")
	}
	if got, ok := v.PointAt(2); !ok || got != q {
		t.Fatal("other point hidden by exclusion")
	}
	if _, ok := v.NodeOf(p); ok {
		t.Fatal("excluded point resolvable")
	}
	if v.Len() != 1 {
		t.Fatalf("Len = %d", v.Len())
	}
	if ExcludeNode(s, NoPoint) != NodeView(s) {
		t.Fatal("ExcludeNode(NoPoint) wrapped needlessly")
	}
}

func TestEdgeSetPlaceSortsAndDeletes(t *testing.T) {
	s := NewEdgeSet()
	// Place out of order, with a reversed edge orientation.
	b, err := s.Place(5, 2, 7.0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Place(2, 5, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := s.PointsOn(5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].ID != a || refs[1].ID != b {
		t.Fatalf("PointsOn = %+v", refs)
	}
	if loc, ok := s.Loc(b); !ok || loc.U != 2 || loc.V != 5 || loc.Pos != 7 {
		t.Fatalf("Loc(%d) = %+v,%v", b, loc, ok)
	}
	if err := s.Delete(a); err != nil {
		t.Fatal(err)
	}
	refs, _ = s.PointsOn(2, 5, refs)
	if len(refs) != 1 || refs[0].ID != b {
		t.Fatalf("after delete PointsOn = %+v", refs)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestEdgeSetErrors(t *testing.T) {
	s := NewEdgeSet()
	if _, err := s.Place(1, 1, 0); err == nil {
		t.Fatal("degenerate edge accepted")
	}
	if _, err := s.Place(1, 2, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := s.Delete(0); err == nil {
		t.Fatal("deleting unknown point succeeded")
	}
}

func TestExcludeEdgeView(t *testing.T) {
	s := NewEdgeSet()
	a, _ := s.Place(0, 1, 1)
	bid, _ := s.Place(0, 1, 2)
	v := ExcludeEdge(s, a)
	refs, err := v.PointsOn(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].ID != bid {
		t.Fatalf("PointsOn = %+v", refs)
	}
	if _, ok := v.Loc(a); ok {
		t.Fatal("excluded point resolvable")
	}
	if v.Len() != 1 {
		t.Fatalf("Len = %d", v.Len())
	}
}

func buildRandomEdgeSet(t *testing.T, rng *rand.Rand, numEdges, numPoints int) *EdgeSet {
	t.Helper()
	s := NewEdgeSet()
	for i := 0; i < numPoints; i++ {
		u := graph.NodeID(rng.Intn(numEdges))
		v := u + 1
		if _, err := s.Place(u, v, rng.Float64()*10); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestPagedEdgeSetMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mem := buildRandomEdgeSet(t, rng, 50, 400)
	paged, err := NewPagedEdgeSet(mem, storage.NewMemFile(256), 8)
	if err != nil {
		t.Fatal(err)
	}
	if paged.Len() != mem.Len() {
		t.Fatalf("Len = %d, want %d", paged.Len(), mem.Len())
	}
	var a, b []EdgePointRef
	for u := graph.NodeID(0); u < 51; u++ {
		a, _ = mem.PointsOn(u, u+1, a)
		b, err = paged.PointsOn(u, u+1, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("edge (%d,%d): %d vs %d points", u, u+1, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("edge (%d,%d) ref %d: %+v vs %+v", u, u+1, i, b[i], a[i])
			}
		}
	}
	for _, p := range mem.Points() {
		la, _ := mem.Loc(p)
		lb, ok := paged.Loc(p)
		if !ok || la != lb {
			t.Fatalf("Loc(%d) = %+v,%v want %+v", p, lb, ok, la)
		}
	}
}

func TestPagedEdgeSetCountsIO(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mem := buildRandomEdgeSet(t, rng, 200, 600)
	paged, err := NewPagedEdgeSet(mem, storage.NewMemFile(storage.DefaultPageSize), 0)
	if err != nil {
		t.Fatal(err)
	}
	paged.ResetStats()
	var buf []EdgePointRef
	// Populated edge: one fault per access at capacity 0.
	if buf, err = paged.PointsOn(0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if got := paged.Stats().Reads; got != 1 {
		t.Fatalf("faults = %d, want 1", got)
	}
	// Empty edge: directory answers without I/O.
	if buf, err = paged.PointsOn(5000, 5001, buf); err != nil {
		t.Fatal(err)
	}
	if got := paged.Stats().Reads; got != 1 {
		t.Fatalf("faults after empty edge = %d, want 1", got)
	}
}

func TestPagedEdgeSetRejectsNonEmptyFile(t *testing.T) {
	f := storage.NewMemFile(256)
	if _, err := f.Append(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPagedEdgeSet(NewEdgeSet(), f, 2); err == nil {
		t.Fatal("non-empty file accepted")
	}
}

func TestNodeSetRestore(t *testing.T) {
	s := NewNodeSet(6)
	p0, _ := s.Place(2)
	p1, _ := s.Place(4)
	if err := s.Delete(p0); err != nil {
		t.Fatal(err)
	}
	// Restoring a live point, an out-of-range node, or an occupied node
	// fails; restoring the deleted point under its old id succeeds.
	if err := s.Restore(p1, 1); err == nil {
		t.Fatal("restore of a live point accepted")
	}
	if err := s.Restore(p0, 99); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := s.Restore(p0, 4); err == nil {
		t.Fatal("occupied node accepted")
	}
	if err := s.Restore(p0, 2); err != nil {
		t.Fatal(err)
	}
	if n, ok := s.NodeOf(p0); !ok || n != 2 {
		t.Fatalf("restored point on node %d (ok=%t), want 2", n, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// The dense table round-trips through RestoreNodeSet, tombstones kept.
	if err := s.Delete(p1); err != nil {
		t.Fatal(err)
	}
	s2, err := RestoreNodeSet(6, s.Table())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("rebuilt Len = %d, want 1", s2.Len())
	}
	if n, ok := s2.NodeOf(p0); !ok || n != 2 {
		t.Fatalf("rebuilt point on node %d (ok=%t), want 2", n, ok)
	}
	// Fresh ids do not reuse the tombstoned one.
	p2, err := s2.Place(5)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatalf("rebuilt set reused tombstoned id %d", p1)
	}
}

func TestEdgeSetRestore(t *testing.T) {
	s := NewEdgeSet()
	p0, _ := s.Place(1, 2, 0.5)
	p1, _ := s.Place(1, 2, 0.25)
	if err := s.Delete(p0); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(p1, 1, 2, 0.25); err == nil {
		t.Fatal("restore of a live point accepted")
	}
	if err := s.Restore(p0, 2, 1, 0.5); err != nil { // non-canonical order allowed
		t.Fatal(err)
	}
	loc, ok := s.Loc(p0)
	if !ok || loc.U != 1 || loc.V != 2 || loc.Pos != 0.5 {
		t.Fatalf("restored location = %+v (ok=%t)", loc, ok)
	}
	refs, err := s.PointsOn(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].ID != p1 || refs[1].ID != p0 {
		t.Fatalf("PointsOn = %v, want sorted [p1 p0]", refs)
	}
	// Round trip through the dense table.
	s2, err := RestoreEdgeSet(s.Table())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("rebuilt Len = %d, want 2", s2.Len())
	}
	if loc, ok := s2.Loc(p0); !ok || loc != (EdgePoint{U: 1, V: 2, Pos: 0.5}) {
		t.Fatalf("rebuilt location = %+v (ok=%t)", loc, ok)
	}
}
