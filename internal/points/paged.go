package points

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"graphrnn/internal/graph"
	"graphrnn/internal/storage"
)

// PagedEdgeSet is an immutable, disk-resident snapshot of an EdgeSet,
// implementing the storage scheme of Fig 14b: data points live in a separate
// paged file and each populated edge points at its record. PointsOn incurs
// (accounted) I/O through an LRU buffer; edges without points are resolved
// by the in-memory directory at no I/O cost, matching the paper's scheme
// where the pointer travels with the adjacency record that was already read.
//
// The point directory (id -> location) is memory-resident, playing the role
// of the node-id index of Section 3.1 for points.
type PagedEdgeSet struct {
	bm   *storage.BufferManager
	dir  map[edgeKey]storage.RecRef
	pts  []EdgePoint
	live int
	// pages recycles zero-capacity read buffers across PointsOn calls.
	pages sync.Pool
}

// Record layout: count uint16, then count x { id int32, pos float64 },
// sorted by (pos, id).
const edgePointEntrySize = 4 + 8

// NewPagedEdgeSet packs src into file (which must be empty) and reads it
// back through a private buffer of bufferPages pages. Use
// NewPagedEdgeSetBuffer to read point pages through a shared pool.
func NewPagedEdgeSet(src *EdgeSet, file storage.PagedFile, bufferPages int) (*PagedEdgeSet, error) {
	return NewPagedEdgeSetBuffer(src, file, nil, bufferPages)
}

// NewPagedEdgeSetBuffer is NewPagedEdgeSet reading point pages through bm,
// which must wrap file — typically a tenant of the process-wide buffer
// pool. A nil bm falls back to a private buffer of bufferPages.
func NewPagedEdgeSetBuffer(src *EdgeSet, file storage.PagedFile, bm *storage.BufferManager, bufferPages int) (*PagedEdgeSet, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("points: NewPagedEdgeSet needs an empty file, got %d pages", file.NumPages())
	}
	keys := make([]edgeKey, 0, len(src.byEdge))
	for k := range src.byEdge {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].u != keys[j].u {
			return keys[i].u < keys[j].u
		}
		return keys[i].v < keys[j].v
	})

	s := &PagedEdgeSet{
		dir:  make(map[edgeKey]storage.RecRef, len(keys)),
		pts:  append([]EdgePoint(nil), src.pts...),
		live: src.live,
	}
	pb := storage.NewRecordPageBuilder(file.PageSize())
	nextPage := storage.PageID(0)
	var rec []byte
	flush := func() error {
		if pb.Empty() {
			return nil
		}
		id, err := file.Append(pb.Bytes())
		if err != nil {
			return err
		}
		if id != nextPage {
			return fmt.Errorf("points: expected page %d, appended %d", nextPage, id)
		}
		nextPage++
		pb.Reset()
		return nil
	}
	for _, k := range keys {
		refs := src.byEdge[k]
		need := 2 + edgePointEntrySize*len(refs)
		if need > storage.MaxRecordPayload(file.PageSize()) {
			return nil, fmt.Errorf("points: %d points on edge (%d,%d) exceed one page", len(refs), k.u, k.v)
		}
		rec = rec[:0]
		rec = binary.LittleEndian.AppendUint16(rec, uint16(len(refs)))
		for _, r := range refs {
			rec = binary.LittleEndian.AppendUint32(rec, uint32(r.ID))
			rec = binary.LittleEndian.AppendUint64(rec, math.Float64bits(r.Pos))
		}
		slot, ok := pb.TryAdd(rec)
		if !ok {
			if err := flush(); err != nil {
				return nil, err
			}
			if slot, ok = pb.TryAdd(rec); !ok {
				return nil, fmt.Errorf("points: record of %d bytes does not fit an empty page", len(rec))
			}
		}
		s.dir[k] = storage.RecRef{Page: nextPage, Slot: uint16(slot)}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if bm == nil {
		bm = storage.NewBufferManager(file, bufferPages)
	}
	s.bm = bm
	s.pages.New = func() any { return make([]byte, file.PageSize()) }
	return s, nil
}

// PointsOn implements EdgeView.
func (s *PagedEdgeSet) PointsOn(u, v graph.NodeID, buf []EdgePointRef) ([]EdgePointRef, error) {
	buf = buf[:0]
	ref, ok := s.dir[canonKey(u, v)]
	if !ok {
		return buf, nil
	}
	scratch := s.pages.Get().([]byte)
	defer s.pages.Put(scratch)
	page, err := s.bm.GetInto(ref.Page, scratch)
	if err != nil {
		return nil, fmt.Errorf("points: edge (%d,%d): %w", u, v, err)
	}
	rec, err := storage.ReadRecordSlot(page, s.bm.File().PageSize(), int(ref.Slot))
	if err != nil {
		return nil, fmt.Errorf("points: edge (%d,%d): %w", u, v, err)
	}
	count := int(binary.LittleEndian.Uint16(rec[0:]))
	if len(rec) < 2+count*edgePointEntrySize {
		return nil, fmt.Errorf("points: corrupt record for edge (%d,%d)", u, v)
	}
	p := 2
	for i := 0; i < count; i++ {
		id := PointID(binary.LittleEndian.Uint32(rec[p:]))
		pos := math.Float64frombits(binary.LittleEndian.Uint64(rec[p+4:]))
		buf = append(buf, EdgePointRef{ID: id, Pos: pos})
		p += edgePointEntrySize
	}
	return buf, nil
}

// Loc implements EdgeView.
func (s *PagedEdgeSet) Loc(p PointID) (EdgePoint, bool) {
	if p < 0 || int(p) >= len(s.pts) || s.pts[p].U < 0 {
		return EdgePoint{}, false
	}
	return s.pts[p], true
}

// Len implements EdgeView.
func (s *PagedEdgeSet) Len() int { return s.live }

// Points implements EdgeView.
func (s *PagedEdgeSet) Points() []PointID {
	out := make([]PointID, 0, s.live)
	for p := range s.pts {
		if s.pts[p].U >= 0 {
			out = append(out, PointID(p))
		}
	}
	return out
}

// Stats returns the I/O counters of the point file buffer.
func (s *PagedEdgeSet) Stats() storage.Stats { return s.bm.Stats() }

// ResetStats zeroes the I/O counters.
func (s *PagedEdgeSet) ResetStats() { s.bm.ResetStats() }

// Buffer exposes the underlying buffer manager.
func (s *PagedEdgeSet) Buffer() *storage.BufferManager { return s.bm }

// Close detaches the set's buffer tenant from its pool, releasing its
// frames and any capacity it contributed. The set must not be used
// afterwards; Close is idempotent.
func (s *PagedEdgeSet) Close() error {
	if s.bm == nil {
		return nil
	}
	bm := s.bm
	s.bm = nil
	return bm.Detach()
}
