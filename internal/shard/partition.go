// Package shard partitions a graph's node set into balanced edge-cut
// regions for scatter-gather serving. Road-style networks partition by
// region: seeds are spread with a greedy k-center pass over BFS hop
// distance, regions grow around them with a balanced multi-source BFS,
// and each region gets a halo — the ring of foreign nodes within a few
// hops of its border — so a shard holding one region can replicate the
// competitor points just outside it.
//
// The partition is deterministic for a given (graph, shards, haloDepth,
// seed) tuple, so independent processes that generate the same topology
// compute byte-identical partitions without exchanging any state.
package shard

import (
	"fmt"
	"math/rand"
	"sort"

	"graphrnn/internal/graph"
)

// Partition assigns every node to exactly one shard and records the
// halo ring of each shard's region.
type Partition struct {
	// Shards is the number of regions.
	Shards int
	// HaloDepth is the ring width in hops used to build Halo.
	HaloDepth int
	// Owner maps each node to the shard that owns it.
	Owner []int32
	// Halo lists, per shard, the foreign nodes within HaloDepth hops of
	// the shard's region, ascending. Empty when HaloDepth is 0.
	Halo [][]graph.NodeID
	// Sizes counts owned nodes per shard.
	Sizes []int
	// CutEdges counts edges whose endpoints live in different shards.
	CutEdges int
}

// ShardOf returns the shard owning node n.
func (p *Partition) ShardOf(n graph.NodeID) int { return int(p.Owner[n]) }

// Cut partitions g into shards balanced regions. Seeds are chosen by
// greedy k-center over BFS hop distance (the first seed pseudo-randomly
// from seed), regions grow with a balanced multi-source BFS that always
// extends the currently smallest region, and nodes unreachable from
// every seed are folded into the smallest region component by component.
// The partition is a pure function of (graph, shards, haloDepth, seed):
// the only randomness is the seeded generator picking the first seed.
//
// vetrnn:deterministic
func Cut(g graph.Access, shards, haloDepth int, seed int64) (*Partition, error) {
	n := g.NumNodes()
	if shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", shards)
	}
	if haloDepth < 0 {
		return nil, fmt.Errorf("shard: negative halo depth %d", haloDepth)
	}
	if n == 0 {
		return nil, fmt.Errorf("shard: empty graph")
	}
	if shards > n {
		return nil, fmt.Errorf("shard: %d shards over %d nodes", shards, n)
	}

	p := &Partition{
		Shards:    shards,
		HaloDepth: haloDepth,
		Owner:     make([]int32, n),
		Halo:      make([][]graph.NodeID, shards),
		Sizes:     make([]int, shards),
	}
	if shards == 1 {
		p.Sizes[0] = n
		return p, nil
	}

	seeds, err := kCenterSeeds(g, shards, seed)
	if err != nil {
		return nil, err
	}
	if err := growRegions(g, seeds, p); err != nil {
		return nil, err
	}
	if err := countCutEdges(g, p); err != nil {
		return nil, err
	}
	if haloDepth > 0 {
		if err := buildHalos(g, p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// kCenterSeeds spreads region seeds with the greedy k-center heuristic:
// each next seed is the node farthest (in BFS hops) from all chosen
// seeds. Nodes in components no seed has reached yet count as infinitely
// far, so every sizable component attracts a seed before dense areas get
// a second one.
func kCenterSeeds(g graph.Access, shards int, seed int64) ([]graph.NodeID, error) {
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(seed))
	seeds := make([]graph.NodeID, 1, shards)
	seeds[0] = graph.NodeID(rng.Intn(n))

	const unreached = -1
	dist := make([]int32, n)
	var queue []graph.NodeID
	var adj []graph.Edge
	for len(seeds) < shards {
		for i := range dist {
			dist[i] = unreached
		}
		queue = queue[:0]
		for _, s := range seeds {
			dist[s] = 0
			queue = append(queue, s)
		}
		//lint:ignore vetrnn/execpoll offline partition construction at Shard() time; no query context exists yet
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			var err error
			adj, err = g.Adjacency(u, adj)
			if err != nil {
				return nil, err
			}
			for _, e := range adj {
				if dist[e.To] == unreached {
					dist[e.To] = dist[u] + 1
					queue = append(queue, e.To)
				}
			}
		}
		best := graph.NodeID(-1)
		bestDist := int32(-1)
		for v := range n {
			d := dist[v]
			if d == unreached {
				// An untouched component: the farthest node there is.
				best, bestDist = graph.NodeID(v), int32(n)
				break
			}
			if d > bestDist {
				best, bestDist = graph.NodeID(v), d
			}
		}
		if bestDist == 0 {
			// Fewer distinct positions than shards (e.g. a clique
			// smaller than the shard count): reuse an arbitrary
			// unseeded node; growRegions keeps it a singleton region.
			for v := range n {
				if !contains(seeds, graph.NodeID(v)) {
					best = graph.NodeID(v)
					break
				}
			}
		}
		seeds = append(seeds, best)
	}
	return seeds, nil
}

func contains(ns []graph.NodeID, n graph.NodeID) bool {
	for _, m := range ns {
		if m == n {
			return true
		}
	}
	return false
}

// growRegions claims every node for a shard: a balanced multi-source BFS
// always extends the smallest region with a non-empty frontier, then
// leftovers (components no seed reaches) are folded whole into whichever
// region is smallest when they are found.
func growRegions(g graph.Access, seeds []graph.NodeID, p *Partition) error {
	n := g.NumNodes()
	const unowned = -1
	for i := range p.Owner {
		p.Owner[i] = unowned
	}
	queues := make([][]graph.NodeID, p.Shards)
	for s, sd := range seeds {
		p.Owner[sd] = int32(s)
		p.Sizes[s] = 1
		queues[s] = append(queues[s], sd)
	}
	var adj []graph.Edge
	claimFrom := func(s int, u graph.NodeID) error {
		var err error
		adj, err = g.Adjacency(u, adj)
		if err != nil {
			return err
		}
		for _, e := range adj {
			if p.Owner[e.To] == unowned {
				p.Owner[e.To] = int32(s)
				p.Sizes[s]++
				queues[s] = append(queues[s], e.To)
			}
		}
		return nil
	}
	for {
		// The smallest region with work left grows next; ties break
		// toward the lower shard index for determinism.
		best := -1
		for s := range queues {
			if len(queues[s]) == 0 {
				continue
			}
			if best == -1 || p.Sizes[s] < p.Sizes[best] {
				best = s
			}
		}
		if best == -1 {
			break
		}
		u := queues[best][0]
		queues[best] = queues[best][1:]
		if err := claimFrom(best, u); err != nil {
			return err
		}
	}
	// Components unreachable from every seed: fold each whole component
	// into the smallest region at the moment it is discovered.
	for v := range n {
		if p.Owner[v] != unowned {
			continue
		}
		s := 0
		for t := 1; t < p.Shards; t++ {
			if p.Sizes[t] < p.Sizes[s] {
				s = t
			}
		}
		p.Owner[v] = int32(s)
		p.Sizes[s]++
		comp := []graph.NodeID{graph.NodeID(v)}
		for head := 0; head < len(comp); head++ {
			if err := claimFrom(s, comp[head]); err != nil {
				return err
			}
			comp = append(comp, queues[s]...)
			queues[s] = queues[s][:0]
		}
	}
	return nil
}

func countCutEdges(g graph.Access, p *Partition) error {
	var adj []graph.Edge
	//lint:ignore vetrnn/execpoll offline partition construction at Shard() time; no query context exists yet
	for v := range g.NumNodes() {
		var err error
		adj, err = g.Adjacency(graph.NodeID(v), adj)
		if err != nil {
			return err
		}
		for _, e := range adj {
			// Count each undirected cut edge once; in a digraph's
			// forward adjacency every arc appears once, so the guard
			// only dedupes genuinely bidirectional pairs.
			if graph.NodeID(v) < e.To && p.Owner[v] != p.Owner[e.To] {
				p.CutEdges++
			}
		}
	}
	return nil
}

// buildHalos runs one BFS per shard, seeded with the region's border
// ring, claiming foreign nodes for up to HaloDepth hops.
func buildHalos(g graph.Access, p *Partition) error {
	n := g.NumNodes()
	depth := make([]int32, n)
	var adj []graph.Edge
	for s := range p.Shards {
		for i := range depth {
			depth[i] = -1
		}
		var ring []graph.NodeID
		// Ring 1: foreign neighbors of owned nodes.
		//lint:ignore vetrnn/execpoll offline partition construction at Shard() time; no query context exists yet
		for v := range n {
			if p.Owner[v] != int32(s) {
				continue
			}
			var err error
			adj, err = g.Adjacency(graph.NodeID(v), adj)
			if err != nil {
				return err
			}
			for _, e := range adj {
				if p.Owner[e.To] != int32(s) && depth[e.To] == -1 {
					depth[e.To] = 1
					ring = append(ring, e.To)
				}
			}
		}
		halo := append([]graph.NodeID(nil), ring...)
		//lint:ignore vetrnn/execpoll offline partition construction at Shard() time; no query context exists yet
		for head := 0; head < len(ring); head++ {
			u := ring[head]
			if depth[u] >= int32(p.HaloDepth) {
				continue
			}
			var err error
			adj, err = g.Adjacency(u, adj)
			if err != nil {
				return err
			}
			for _, e := range adj {
				if p.Owner[e.To] != int32(s) && depth[e.To] == -1 {
					depth[e.To] = depth[u] + 1
					ring = append(ring, e.To)
					halo = append(halo, e.To)
				}
			}
		}
		sort.Slice(halo, func(i, j int) bool { return halo[i] < halo[j] })
		p.Halo[s] = halo
	}
	return nil
}
