package shard

import (
	"reflect"
	"testing"

	"graphrnn/internal/graph"
)

// gridGraph builds a w x h unit-weight grid.
func gridGraph(t *testing.T, w, h int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(w * h)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := b.AddEdge(id(x, y), id(x+1, y), 1); err != nil {
					t.Fatal(err)
				}
			}
			if y+1 < h {
				if err := b.AddEdge(id(x, y), id(x, y+1), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// twoComponents builds two disjoint paths.
func twoComponents(t *testing.T, n1, n2 int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n1 + n2)
	for i := 0; i < n1-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := n1; i < n1+n2-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkPartition(t *testing.T, g *graph.Graph, p *Partition) {
	t.Helper()
	n := g.NumNodes()
	if len(p.Owner) != n {
		t.Fatalf("Owner covers %d of %d nodes", len(p.Owner), n)
	}
	sizes := make([]int, p.Shards)
	for v := range n {
		s := p.ShardOf(graph.NodeID(v))
		if s < 0 || s >= p.Shards {
			t.Fatalf("node %d owned by out-of-range shard %d", v, s)
		}
		sizes[s]++
	}
	if !reflect.DeepEqual(sizes, p.Sizes) {
		t.Fatalf("Sizes %v, recount %v", p.Sizes, sizes)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != n {
		t.Fatalf("sizes sum to %d, want %d", total, n)
	}
	// Cut edges recount.
	cut := 0
	g.ForEachEdge(func(u, v graph.NodeID, _ float64) {
		if p.Owner[u] != p.Owner[v] {
			cut++
		}
	})
	if cut != p.CutEdges {
		t.Fatalf("CutEdges %d, recount %d", p.CutEdges, cut)
	}
	// Halo: every halo node is foreign; ring 1 is complete.
	for s, halo := range p.Halo {
		seen := make(map[graph.NodeID]bool, len(halo))
		for i, h := range halo {
			if p.ShardOf(h) == s {
				t.Fatalf("shard %d halo contains owned node %d", s, h)
			}
			if i > 0 && halo[i-1] >= h {
				t.Fatalf("shard %d halo not ascending at %d", s, i)
			}
			seen[h] = true
		}
		if p.HaloDepth == 0 {
			continue
		}
		var adj []graph.Edge
		for v := range n {
			if p.ShardOf(graph.NodeID(v)) != s {
				continue
			}
			adj, _ = g.Adjacency(graph.NodeID(v), adj)
			for _, e := range adj {
				if p.ShardOf(e.To) != s && !seen[e.To] {
					t.Fatalf("shard %d halo misses border neighbor %d", s, e.To)
				}
			}
		}
	}
}

func TestCutGrid(t *testing.T) {
	g := gridGraph(t, 20, 20)
	for _, shards := range []int{1, 2, 4, 7} {
		p, err := Cut(g, shards, 2, 42)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		checkPartition(t, g, p)
		// Balance: regions within 3x of the mean on a connected grid.
		mean := g.NumNodes() / shards
		for s, sz := range p.Sizes {
			if sz == 0 {
				t.Errorf("shards=%d: shard %d empty", shards, s)
			}
			if shards > 1 && sz > 3*mean {
				t.Errorf("shards=%d: shard %d holds %d nodes (mean %d)", shards, s, sz, mean)
			}
		}
	}
}

func TestCutDeterministic(t *testing.T) {
	g := gridGraph(t, 15, 15)
	a, err := Cut(g, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cut(g, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical inputs produced different partitions")
	}
	c, err := Cut(g, 4, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Owner, c.Owner) {
		t.Log("different seeds produced the same partition (possible, but suspicious on a grid)")
	}
}

func TestCutDisconnected(t *testing.T) {
	g := twoComponents(t, 60, 40)
	for _, shards := range []int{2, 3} {
		p, err := Cut(g, shards, 1, 1)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		checkPartition(t, g, p)
	}
}

func TestCutNoHalo(t *testing.T) {
	g := gridGraph(t, 10, 10)
	p, err := Cut(g, 3, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, p)
	for s, halo := range p.Halo {
		if len(halo) != 0 {
			t.Fatalf("haloDepth 0 built a halo for shard %d", s)
		}
	}
}

func TestCutHaloDepthWidensRing(t *testing.T) {
	g := gridGraph(t, 20, 20)
	p1, err := Cut(g, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Cut(g, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := range 2 {
		if len(p3.Halo[s]) <= len(p1.Halo[s]) {
			t.Fatalf("shard %d: depth-3 halo (%d nodes) not wider than depth-1 (%d)",
				s, len(p3.Halo[s]), len(p1.Halo[s]))
		}
	}
}

func TestCutErrors(t *testing.T) {
	g := gridGraph(t, 3, 3)
	if _, err := Cut(g, 0, 1, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := Cut(g, 10, 1, 0); err == nil {
		t.Error("more shards than nodes accepted")
	}
	if _, err := Cut(g, 2, -1, 0); err == nil {
		t.Error("negative halo depth accepted")
	}
}
