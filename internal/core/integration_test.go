package core

import (
	"fmt"
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// TestDiskAndMemoryStoresAgree runs every algorithm against the same
// network served once from memory and once from the paged disk store: the
// answers must be identical, proving the storage stack is semantically
// transparent (weights survive bit-exactly, fragment chains reassemble,
// buffer eviction loses nothing).
func TestDiskAndMemoryStoresAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for it := 0; it < 30; it++ {
		net := randTestNet(t, rng)
		mem := NewSearcher(net.g)
		// Tiny pages and a tiny buffer maximize fragmentation/eviction.
		ds, err := storage.BuildDiskStore(net.g, storage.NewMemFile(256), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		disk := NewSearcher(ds)
		k := 1 + rng.Intn(3)
		pts := net.ps.Points()
		qp := pts[rng.Intn(len(pts))]
		qnode, _ := net.ps.NodeOf(qp)
		view := points.ExcludeNode(net.ps, qp)

		memMat := buildMat(t, mem, net.ps, k)
		diskMat, err := disk.MatBuild(SeedsRestricted(net.ps), k, newMemMatFile(), 2, nil)
		if err != nil {
			t.Fatal(err)
		}

		type run func(s *Searcher, mat *Materialized) (*Result, error)
		for name, fn := range map[string]run{
			"eager":  func(s *Searcher, _ *Materialized) (*Result, error) { return s.EagerRkNN(view, qnode, k) },
			"lazy":   func(s *Searcher, _ *Materialized) (*Result, error) { return s.LazyRkNN(view, qnode, k) },
			"lazyEP": func(s *Searcher, _ *Materialized) (*Result, error) { return s.LazyEPRkNN(view, qnode, k) },
			"eagerM": func(s *Searcher, m *Materialized) (*Result, error) { return s.EagerMRkNN(view, m, qnode, k) },
			"brute":  func(s *Searcher, _ *Materialized) (*Result, error) { return s.BruteRkNN(view, qnode, k) },
		} {
			a, err := fn(mem, memMat)
			if err != nil {
				t.Fatalf("%s (mem): %v", name, err)
			}
			b, err := fn(disk, diskMat)
			if err != nil {
				t.Fatalf("%s (disk): %v", name, err)
			}
			if !samePoints(a, b) {
				t.Fatalf("iter %d %s: disk=%s mem=%s", it, name, describe(b), describe(a))
			}
		}
		if ds.Stats().Reads == 0 {
			t.Fatal("disk store served queries without any physical read")
		}
	}
}

// flakyFile fails every read after a budget is exhausted.
type flakyFile struct {
	storage.PagedFile
	budget int
}

func (f *flakyFile) Read(id storage.PageID, dst []byte) error {
	if f.budget <= 0 {
		return fmt.Errorf("injected I/O failure on page %d", id)
	}
	f.budget--
	return f.PagedFile.Read(id, dst)
}

// TestQueryIOErrorsPropagate injects storage failures mid-query and checks
// every algorithm surfaces the error instead of returning a wrong answer.
func TestQueryIOErrorsPropagate(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	net := randTestNet(t, rng)
	base := storage.NewMemFile(256)
	if _, err := storage.BuildDiskStore(net.g, base, 0, nil); err != nil {
		t.Fatal(err)
	}
	pts := net.ps.Points()
	qnode, _ := net.ps.NodeOf(pts[0])
	view := points.ExcludeNode(net.ps, pts[0])

	for budget := 0; budget < 8; budget++ {
		flaky := &flakyFile{PagedFile: base, budget: budget}
		fds, err := rebuildOnFile(net.g, flaky)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSearcher(fds)
		for name, fn := range map[string]func() (*Result, error){
			"eager":  func() (*Result, error) { return s.EagerRkNN(view, qnode, 1) },
			"lazy":   func() (*Result, error) { return s.LazyRkNN(view, qnode, 1) },
			"lazyEP": func() (*Result, error) { return s.LazyEPRkNN(view, qnode, 1) },
			"brute":  func() (*Result, error) { return s.BruteRkNN(view, qnode, 1) },
		} {
			_, err := fn()
			if err == nil {
				t.Fatalf("budget %d: %s swallowed the injected I/O failure", budget, name)
			}
		}
	}
}

// rebuildOnFile wires a DiskStore around an already-populated (possibly
// failure-injecting) file by rebuilding on a shadow file with identical
// layout and stealing the index.
func rebuildOnFile(g *graph.Graph, file storage.PagedFile) (graph.Access, error) {
	shadow, err := storage.BuildDiskStore(g, storage.NewMemFile(256), 0, nil)
	if err != nil {
		return nil, err
	}
	return shadow.WithFile(file, 0), nil
}

// TestScratchEpochWraparound forces stamp reuse across many queries on one
// Searcher, which would corrupt results if epochs leaked between searches.
func TestScratchEpochWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	net := randTestNet(t, rng)
	s := NewSearcher(net.g)
	pts := net.ps.Points()
	var first *Result
	for i := 0; i < 300; i++ {
		qp := pts[i%len(pts)]
		qnode, _ := net.ps.NodeOf(qp)
		view := points.ExcludeNode(net.ps, qp)
		r, err := s.EagerRkNN(view, qnode, 2)
		if err != nil {
			t.Fatal(err)
		}
		if i%len(pts) == 0 {
			if first == nil {
				first = r
			} else if !samePoints(first, r) {
				t.Fatalf("iteration %d: answer drifted from %s to %s", i, describe(first), describe(r))
			}
		}
	}
}
