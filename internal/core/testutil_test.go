package core

import (
	"fmt"
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// testNet bundles a random network and a random restricted point set.
type testNet struct {
	g  *graph.Graph
	ps *points.NodeSet
}

// randNet generates a connected random graph. Unit weights (probability
// unitProb) exercise the heavily tied distances of coauthorship-style
// graphs; otherwise weights are random floats.
func randNet(t testing.TB, rng *rand.Rand, n int, extraEdges int, unitProb float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	unit := rng.Float64() < unitProb
	w := func() float64 {
		if unit {
			return 1
		}
		return float64(1+rng.Intn(20)) / 2
	}
	for i := 1; i < n; i++ {
		// Random spanning tree keeps the graph connected.
		j := rng.Intn(i)
		if err := b.AddEdge(graph.NodeID(j), graph.NodeID(i), w()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v), w()); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randPoints places count points on distinct random nodes.
func randPoints(t testing.TB, rng *rand.Rand, g *graph.Graph, count int) *points.NodeSet {
	t.Helper()
	ps := points.NewNodeSet(g.NumNodes())
	perm := rng.Perm(g.NumNodes())
	for i := 0; i < count && i < len(perm); i++ {
		if _, err := ps.Place(graph.NodeID(perm[i])); err != nil {
			t.Fatal(err)
		}
	}
	return ps
}

func randTestNet(t testing.TB, rng *rand.Rand) testNet {
	n := 12 + rng.Intn(60)
	extra := rng.Intn(3 * n)
	g := randNet(t, rng, n, extra, 0.5)
	npts := 1 + rng.Intn(n/2)
	return testNet{g: g, ps: randPoints(t, rng, g, npts)}
}

func samePoints(a, b *Result) bool {
	if len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}

func describe(r *Result) string {
	return fmt.Sprintf("%v", r.Points)
}
