package core

import (
	"sync"

	"graphrnn/internal/exec"
	"graphrnn/internal/graph"
	"graphrnn/internal/pq"
)

// scratch holds the per-expansion state of one Dijkstra-style traversal:
// tentative distances, seen/closed stamps (epoch-based so that no O(|V|)
// clearing is needed between queries), a heap, and an adjacency buffer.
type scratch struct {
	dist   []float64
	seen   []uint32
	closed []uint32
	epoch  uint32
	heap   pq.Heap[graph.NodeID]
	adj    []graph.Edge
}

func newScratch(n int) *scratch {
	return &scratch{
		dist:   make([]float64, n),
		seen:   make([]uint32, n),
		closed: make([]uint32, n),
	}
}

// begin starts a fresh expansion.
func (sc *scratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // epoch wrapped: wipe stamps and restart
		for i := range sc.seen {
			sc.seen[i] = 0
			sc.closed[i] = 0
		}
		sc.epoch = 1
	}
	sc.heap.Reset()
}

func (sc *scratch) isSeen(n graph.NodeID) bool   { return sc.seen[n] == sc.epoch }
func (sc *scratch) isClosed(n graph.NodeID) bool { return sc.closed[n] == sc.epoch }

func (sc *scratch) close(n graph.NodeID) { sc.closed[n] = sc.epoch }

// push offers node n at distance d, applying the lazy-deletion Dijkstra
// discipline: duplicates with worse labels are suppressed. It returns the
// heap handle when an entry was pushed.
func (sc *scratch) push(n graph.NodeID, d float64) *pq.Item[graph.NodeID] {
	if sc.isClosed(n) {
		return nil
	}
	if sc.isSeen(n) && sc.dist[n] <= d {
		return nil
	}
	sc.seen[n] = sc.epoch
	sc.dist[n] = d
	return sc.heap.Push(n, d)
}

// pop removes the next unclosed node in distance order, closes it, and
// returns it. ok is false when the heap is exhausted.
func (sc *scratch) pop() (n graph.NodeID, d float64, ok bool) {
	//lint:ignore vetrnn/execpoll in-memory drain of stale heap entries; callers poll per popped node
	for {
		n, d, ok = sc.heap.Pop()
		if !ok {
			return 0, 0, false
		}
		if sc.isClosed(n) {
			continue
		}
		sc.close(n)
		return n, d, true
	}
}

// searchPools holds the shared per-query scratch pools of a Searcher, so
// that bounded views (Bound) alias the same pools instead of copying them.
type searchPools struct {
	scratch sync.Pool // *scratch, sized to g.NumNodes()
	counts  sync.Pool // *lazyCounts
}

// Searcher executes restricted-network RkNN queries against a graph. It
// owns a pool of scratch expansions (a main traversal plus the sub-queries
// it spawns) so that repeated queries rarely allocate. A Searcher is safe
// for concurrent use: every query draws its traversal state (scratch
// expansions, lazy counters) from sync.Pools, so independent queries never
// share mutable state. Mutating operations on a Materialized (MatInsert,
// MatDelete) still require exclusive access to that materialization.
//
// A Searcher built by NewSearcher runs queries to completion. Bound
// derives a view whose queries poll an exec.Ctx between expansion steps,
// which is how the engine layer threads cancellation, deadlines and work
// budgets through every algorithm without changing their signatures.
type Searcher struct {
	g     graph.Access
	pools *searchPools
	ec    *exec.Ctx // nil = unbounded
}

// NewSearcher creates a Searcher over g.
func NewSearcher(g graph.Access) *Searcher {
	s := &Searcher{g: g, pools: &searchPools{}}
	s.pools.scratch.New = func() any { return newScratch(g.NumNodes()) }
	s.pools.counts.New = func() any { return &lazyCounts{} }
	return s
}

// Bound returns a view of s whose queries check ec for cancellation,
// deadline expiry and budget exhaustion: once per main-expansion step, and
// every exec.CheckStride pops inside sub-expansions. The view shares s's
// scratch pools; a nil ec returns s itself (the unbounded view). Each
// query owns its ec, so a bound view serves exactly one query at a time.
func (s *Searcher) Bound(ec *exec.Ctx) *Searcher {
	if ec == nil {
		return s
	}
	return &Searcher{g: s.g, pools: s.pools, ec: ec}
}

// Graph returns the underlying graph access.
func (s *Searcher) Graph() graph.Access { return s.g }

// checkExec polls the query's execution context, charging the nodes popped
// so far. It is a nil check for unbounded queries.
func (s *Searcher) checkExec(st *Stats) error {
	if s.ec == nil {
		return nil
	}
	return s.ec.Check(st.NodesExpanded + st.NodesScanned)
}

// checkExecStride is checkExec at the sub-expansion polling interval: it
// runs the real check only every exec.CheckStride-th scanned node, keeping
// the hot sub-query loops nearly free of bookkeeping.
func (s *Searcher) checkExecStride(st *Stats) error {
	if s.ec == nil || st.NodesScanned&(exec.CheckStride-1) != 0 {
		return nil
	}
	return s.ec.Check(st.NodesExpanded + st.NodesScanned)
}

func (s *Searcher) acquire() *scratch {
	return s.pools.scratch.Get().(*scratch)
}

func (s *Searcher) release(sc *scratch) {
	s.pools.scratch.Put(sc)
}

// acquireCounts returns lazy visit counters reset for a fresh query.
func (s *Searcher) acquireCounts() *lazyCounts {
	c := s.pools.counts.Get().(*lazyCounts)
	c.reset(s.g.NumNodes())
	return c
}

func (s *Searcher) releaseCounts(c *lazyCounts) {
	s.pools.counts.Put(c)
}

func (s *Searcher) harvest(st *Stats, sc *scratch) {
	st.HeapPushes += int64(sc.heap.PushCount)
	st.HeapPops += int64(sc.heap.PopCount)
	sc.heap.PushCount = 0
	sc.heap.PopCount = 0
}
