package core

import (
	"sync"

	"graphrnn/internal/graph"
	"graphrnn/internal/pq"
)

// scratch holds the per-expansion state of one Dijkstra-style traversal:
// tentative distances, seen/closed stamps (epoch-based so that no O(|V|)
// clearing is needed between queries), a heap, and an adjacency buffer.
type scratch struct {
	dist   []float64
	seen   []uint32
	closed []uint32
	epoch  uint32
	heap   pq.Heap[graph.NodeID]
	adj    []graph.Edge
}

func newScratch(n int) *scratch {
	return &scratch{
		dist:   make([]float64, n),
		seen:   make([]uint32, n),
		closed: make([]uint32, n),
	}
}

// begin starts a fresh expansion.
func (sc *scratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // epoch wrapped: wipe stamps and restart
		for i := range sc.seen {
			sc.seen[i] = 0
			sc.closed[i] = 0
		}
		sc.epoch = 1
	}
	sc.heap.Reset()
}

func (sc *scratch) isSeen(n graph.NodeID) bool   { return sc.seen[n] == sc.epoch }
func (sc *scratch) isClosed(n graph.NodeID) bool { return sc.closed[n] == sc.epoch }

func (sc *scratch) close(n graph.NodeID) { sc.closed[n] = sc.epoch }

// push offers node n at distance d, applying the lazy-deletion Dijkstra
// discipline: duplicates with worse labels are suppressed. It returns the
// heap handle when an entry was pushed.
func (sc *scratch) push(n graph.NodeID, d float64) *pq.Item[graph.NodeID] {
	if sc.isClosed(n) {
		return nil
	}
	if sc.isSeen(n) && sc.dist[n] <= d {
		return nil
	}
	sc.seen[n] = sc.epoch
	sc.dist[n] = d
	return sc.heap.Push(n, d)
}

// pop removes the next unclosed node in distance order, closes it, and
// returns it. ok is false when the heap is exhausted.
func (sc *scratch) pop() (n graph.NodeID, d float64, ok bool) {
	for {
		n, d, ok = sc.heap.Pop()
		if !ok {
			return 0, 0, false
		}
		if sc.isClosed(n) {
			continue
		}
		sc.close(n)
		return n, d, true
	}
}

// Searcher executes restricted-network RkNN queries against a graph. It
// owns a pool of scratch expansions (a main traversal plus the sub-queries
// it spawns) so that repeated queries rarely allocate. A Searcher is safe
// for concurrent use: every query draws its traversal state (scratch
// expansions, lazy counters) from sync.Pools, so independent queries never
// share mutable state. Mutating operations on a Materialized (MatInsert,
// MatDelete) still require exclusive access to that materialization.
type Searcher struct {
	g       graph.Access
	scratch sync.Pool // *scratch, sized to g.NumNodes()
	counts  sync.Pool // *lazyCounts
}

// NewSearcher creates a Searcher over g.
func NewSearcher(g graph.Access) *Searcher {
	s := &Searcher{g: g}
	s.scratch.New = func() any { return newScratch(g.NumNodes()) }
	s.counts.New = func() any { return &lazyCounts{} }
	return s
}

// Graph returns the underlying graph access.
func (s *Searcher) Graph() graph.Access { return s.g }

func (s *Searcher) acquire() *scratch {
	return s.scratch.Get().(*scratch)
}

func (s *Searcher) release(sc *scratch) {
	s.scratch.Put(sc)
}

// acquireCounts returns lazy visit counters reset for a fresh query.
func (s *Searcher) acquireCounts() *lazyCounts {
	c := s.counts.Get().(*lazyCounts)
	c.reset(s.g.NumNodes())
	return c
}

func (s *Searcher) releaseCounts(c *lazyCounts) {
	s.counts.Put(c)
}

func (s *Searcher) harvest(st *Stats, sc *scratch) {
	st.HeapPushes += int64(sc.heap.PushCount)
	st.HeapPops += int64(sc.heap.PopCount)
	sc.heap.PushCount = 0
	sc.heap.PopCount = 0
}
