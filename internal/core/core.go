// Package core implements the reverse-nearest-neighbor query algorithms of
//
//	M. L. Yiu, D. Papadias, N. Mamoulis, Y. Tao:
//	"Reverse Nearest Neighbors in Large Graphs", ICDE 2005 / TKDE 18(4), 2006.
//
// It provides, for both restricted networks (data points on nodes) and
// unrestricted networks (data points on edges):
//
//   - eager: expansion from the query with per-node range-NN pruning (§3.2)
//   - lazy: expansion pruned by verification queries of discovered points,
//     with per-node counters and heap-entry invalidation for k > 1 (§3.3)
//   - eager-M: eager over materialized K-NN lists built by all-NN, with
//     insertion and two-step border-node deletion maintenance (§4.1)
//   - lazy-EP: lazy with a second heap propagating the pruning power of
//     discovered points in parallel with the main expansion (§4.2)
//   - bichromatic and continuous (route) variants of all of the above (§5)
//   - a brute-force oracle used by the test suite.
//
// # Conventions
//
// Result membership is tie-inclusive, pruning is strict, matching the
// paper's definitions (d(p,q) <= d(p, p_k(p)) for membership, Lemma 1 with
// strict inequality for pruning):
//
//	p ∈ RkNN(q)  ⇔  |{p' ∈ P\{p} : d(p,p') < d(p,q)}| < k
//
// A point that cannot reach the query (disconnected component) is never a
// result. All algorithms return identical answers; the extensive property
// tests in this package check them against each other and the brute-force
// oracle on randomized networks.
package core

import (
	"sort"

	"graphrnn/internal/exec"
	"graphrnn/internal/points"
)

// Stats describes the work performed by a single query.
type Stats struct {
	// NodesExpanded counts nodes popped by the main (query-side) expansion.
	NodesExpanded int64
	// NodesScanned counts nodes popped by secondary expansions: range-NN,
	// verification queries, and lazy-EP's point heap.
	NodesScanned int64
	// RangeNN counts range-NN sub-queries issued (eager family).
	RangeNN int64
	// Verifications counts verification sub-queries issued.
	Verifications int64
	// MatReads counts materialized K-NN list lookups (eager-M).
	MatReads int64
	// LabelReads counts hub label fetches (hub-label substrate; populated
	// by the hub-label dispatch, not by the expansion algorithms).
	LabelReads int64
	// LabelEntries counts label and hub-list entries scanned (hub-label).
	LabelEntries int64
	// HeapPushes and HeapPops count priority queue traffic across all heaps.
	HeapPushes int64
	HeapPops   int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.NodesExpanded += o.NodesExpanded
	s.NodesScanned += o.NodesScanned
	s.RangeNN += o.RangeNN
	s.Verifications += o.Verifications
	s.MatReads += o.MatReads
	s.LabelReads += o.LabelReads
	s.LabelEntries += o.LabelEntries
	s.HeapPushes += o.HeapPushes
	s.HeapPops += o.HeapPops
}

// Result is the answer of an RkNN query.
type Result struct {
	// Points holds the reverse k-nearest neighbors in ascending id order.
	Points []points.PointID
	// Stats describes the work performed.
	Stats Stats
}

func finishResult(ids []points.PointID, st Stats) *Result {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &Result{Points: ids, Stats: st}
}

// execResult finishes a query abandoned by an error: execution-control
// errors (cancellation, deadline, budget — see errors.go) carry the
// partial result and its stats out alongside the error, every other error
// invalidates the result.
func execResult(ids []points.PointID, st Stats, err error) (*Result, error) {
	if exec.IsExecErr(err) {
		return finishResult(ids, st), err
	}
	return nil, err
}

// confirm records one confirmed result member, forwarding it to the
// engine's streaming sink when the query has one attached (Ctx.Emit is a
// nil check otherwise). Every membership decision of every algorithm is
// final — results are only ever appended — which is what makes streaming
// confirmed members before the expansion finishes sound.
func (s *Searcher) confirm(results []points.PointID, p points.PointID) []points.PointID {
	s.ec.Emit(int32(p), 0)
	return append(results, p)
}

// PointDist pairs a point with a network distance.
type PointDist struct {
	P points.PointID
	D float64
}

// relEps absorbs floating-point associativity noise in path-length sums.
// Two computations of the same real path length may differ by a few ULPs
// because additions associate differently; expansion upper bounds are
// therefore inflated by upperBound (a too-large bound never changes a
// verification decision, only its cost), while strict "closer than"
// pruning thresholds are shrunk by strictBound (under-pruning is safe,
// over-pruning can drop results). The relative form keeps both exact for
// integer-weight graphs and harmless for tiny distances.
const relEps = 1e-11

func upperBound(x float64) float64 { return x * (1 + relEps) }

func strictBound(x float64) float64 { return x * (1 - relEps) }
