package core

import (
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// pagesToBytes flattens a paged file for the fuzz corpus.
func pagesToBytes(t testing.TB, f storage.PagedFile) []byte {
	t.Helper()
	buf := make([]byte, f.PageSize())
	out := make([]byte, 0, f.NumPages()*f.PageSize())
	for p := 0; p < f.NumPages(); p++ {
		if err := f.Read(storage.PageID(p), buf); err != nil {
			t.Fatal(err)
		}
		out = append(out, buf...)
	}
	return out
}

// bytesToPages chunks fuzz bytes into a MemFile, zero-padding the tail —
// the torn-write shape: a prefix of full pages plus one partial page.
func bytesToPages(b []byte, pageSize int) *storage.MemFile {
	f := storage.NewMemFile(pageSize)
	page := make([]byte, pageSize)
	for off := 0; off < len(b); off += pageSize {
		for i := range page {
			page[i] = 0
		}
		copy(page, b[off:])
		if _, err := f.Append(page); err != nil {
			panic(err) // MemFile.Append with a full page cannot fail
		}
	}
	return f
}

// fuzzSeedMat builds a small materialization, persists it, and returns
// the raw bytes of the mat file and of a journal holding the records of
// an uncommitted operation (the crash shape recovery must parse).
func fuzzSeedMat(f *testing.F) (matBytes, journalBytes []byte) {
	rng := rand.New(rand.NewSource(80))
	g := randNet(f, rng, 20, 25, 1)
	ps := randPoints(f, rng, g, 4)
	s := NewSearcher(g)
	mat, err := s.MatBuild(SeedsRestricted(ps), 2, storage.NewMemFile(storage.DefaultPageSize), 16, nil)
	if err != nil {
		f.Fatal(err)
	}
	tab := ps.Table()
	pts := make([]PointRecord, len(tab))
	for i, n := range tab {
		if n < 0 {
			pts[i] = PointAbsent
		} else {
			pts[i] = PointRecord{U: n, V: n}
		}
	}
	file := storage.NewMemFile(storage.DefaultPageSize)
	jfile := storage.NewMemFile(storage.DefaultPageSize)
	if err := MatSave(mat, MatKindNode, pts, file); err != nil {
		f.Fatal(err)
	}
	bm := storage.NewBufferManager(file, 16)
	m2, _, rec, err := MatOpen(file, bm, jfile)
	if err != nil {
		f.Fatal(err)
	}
	ns, err := points.RestoreNodeSet(m2.NumNodes(), func() []graph.NodeID {
		nodes := make([]graph.NodeID, len(rec))
		for i, r := range rec {
			if r.U < 0 {
				nodes[i] = -1
			} else {
				nodes[i] = r.U
			}
		}
		return nodes
	}())
	if err != nil {
		f.Fatal(err)
	}
	// Abandon an insertion without rollback so the file carries a pending
	// header and the journal carries real records.
	var node graph.NodeID = -1
	for n := 0; n < m2.NumNodes(); n++ {
		if _, taken := ns.PointAt(graph.NodeID(n)); !taken {
			node = graph.NodeID(n)
			break
		}
	}
	if node >= 0 {
		p, err := ns.Place(node)
		if err != nil {
			f.Fatal(err)
		}
		if err := m2.BeginRepair(nil); err != nil {
			f.Fatal(err)
		}
		if _, err := s.MatInsert(m2, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
			f.Fatal(err)
		}
		if err := m2.Flush(); err != nil {
			f.Fatal(err)
		}
		m2.AbandonRepair()
	}
	return pagesToBytes(f, file), pagesToBytes(f, jfile)
}

// FuzzMatOpen feeds torn, truncated and mutated materialization + journal
// bytes to the reopen path. The contract under fuzz: MatOpen returns a
// typed error or a working materialization — it never panics, and a
// successful open serves every list without panicking.
func FuzzMatOpen(f *testing.F) {
	matBytes, journalBytes := fuzzSeedMat(f)
	f.Add(matBytes, journalBytes)
	f.Add(matBytes, []byte{})
	f.Add(matBytes[:storage.DefaultPageSize], journalBytes)
	f.Add(matBytes[:len(matBytes)/2], journalBytes[:len(journalBytes)/2])
	f.Add([]byte("GRNNMAT1 not really a materialization"), []byte("junk"))
	f.Add([]byte{}, []byte{})

	f.Fuzz(func(t *testing.T, mb, jb []byte) {
		const limit = 1 << 20
		if len(mb) > limit || len(jb) > limit {
			t.Skip("oversized input")
		}
		file := bytesToPages(mb, storage.DefaultPageSize)
		jfile := bytesToPages(jb, storage.DefaultPageSize)
		bm := storage.NewBufferManager(file, 8)
		m, _, pts, err := MatOpen(file, bm, jfile)
		if err != nil {
			return // rejected with an error: the contract holds
		}
		// A file MatOpen accepted must serve reads; corruption found past
		// open must surface as errors, not panics.
		var lst []MatEntry
		for n := 0; n < m.NumNodes(); n++ {
			lst, _ = m.List(graph.NodeID(n), lst)
		}
		_ = pts
	})
}
