package core

import (
	"math"
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// paperGraph builds a network reproducing every concrete number the running
// example of Section 3 (Fig 3a) quotes. Node ids: n1..n7 map to 0..6. Data
// points: p1 on n6, p2 on n5, p3 on n7. The query q resides on n4.
//
// Quoted facts reproduced: d(q,n3)=4 > d(p1,n3)=3; range-NN(n4,1,7) is
// empty because d(p1,n4)=7 (strict range); d(n1,q)=5 > d(n1,p2)=3;
// RNN(q) = {p1, p2} with both verifications succeeding.
func paperGraph(t *testing.T) (*graph.Graph, *points.NodeSet, graph.NodeID) {
	t.Helper()
	const (
		n1 = graph.NodeID(0)
		n2 = graph.NodeID(1)
		n3 = graph.NodeID(2)
		n4 = graph.NodeID(3)
		n5 = graph.NodeID(4)
		n6 = graph.NodeID(5)
		n7 = graph.NodeID(6)
	)
	b := graph.NewBuilder(7)
	edges := []struct {
		u, v graph.NodeID
		w    float64
	}{
		{n1, n2, 3}, {n1, n4, 5}, {n1, n5, 3},
		{n2, n3, 2}, {n2, n6, 2},
		{n3, n4, 4}, {n3, n6, 3},
		{n5, n6, 9}, {n6, n7, 8},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := points.NewNodeSet(7)
	for _, n := range []graph.NodeID{n6, n5, n7} { // p1, p2, p3
		if _, err := ps.Place(n); err != nil {
			t.Fatal(err)
		}
	}
	return g, ps, n4
}

func TestPaperExampleSection3(t *testing.T) {
	g, ps, q := paperGraph(t)
	s := NewSearcher(g)

	// Sanity-check the distances the example relies on.
	if d, _ := s.distance(q, 2); d != 4 { // d(q, n3) = 4
		t.Fatalf("d(q,n3) = %v, want 4", d)
	}
	if d, _ := s.distance(5, 2); d != 3 { // d(p1, n3) = 3 < d(q, n3)
		t.Fatalf("d(p1,n3) = %v, want 3", d)
	}
	if d, _ := s.distance(q, 0); d != 5 { // d(q, n1) = 5
		t.Fatalf("d(q,n1) = %v, want 5", d)
	}

	want := []points.PointID{0, 1} // p1 (on n6) and p2 (on n5)
	for name, run := range map[string]func() (*Result, error){
		"brute": func() (*Result, error) { return s.BruteRkNN(ps, q, 1) },
		"eager": func() (*Result, error) { return s.EagerRkNN(ps, q, 1) },
		"lazy":  func() (*Result, error) { return s.LazyRkNN(ps, q, 1) },
	} {
		r, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Points) != len(want) {
			t.Fatalf("%s: RNN(q) = %v, want %v", name, r.Points, want)
		}
		for i := range want {
			if r.Points[i] != want[i] {
				t.Fatalf("%s: RNN(q) = %v, want %v", name, r.Points, want)
			}
		}
	}
}

func TestFig1aP2PExample(t *testing.T) {
	// Fig 1a: q joins a P2P network; RNN(q) = {p3} and notably the NN of q
	// (p1) is not an RNN because p1's NN is p2. We reconstruct a network
	// with those relationships.
	b := graph.NewBuilder(6)
	// Layout: q=0, p1=1, p2=2, p3=3, empty n1=4, n2=5.
	for _, e := range []struct {
		u, v graph.NodeID
		w    float64
	}{
		{0, 1, 3},  // q - p1
		{1, 2, 2},  // p1 - p2 (so NN(p1) = p2)
		{0, 4, 1},  // q - n1
		{4, 3, 3},  // n1 - p3: d(q,p3) = 4
		{3, 5, 10}, // p3 - n2 (dead end)
		{2, 5, 10},
	} {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := points.NewNodeSet(6)
	for _, n := range []graph.NodeID{1, 2, 3} { // p1, p2, p3
		if _, err := ps.Place(n); err != nil {
			t.Fatal(err)
		}
	}
	s := NewSearcher(g)
	for name, run := range map[string]func() (*Result, error){
		"eager": func() (*Result, error) { return s.EagerRkNN(ps, 0, 1) },
		"lazy":  func() (*Result, error) { return s.LazyRkNN(ps, 0, 1) },
		"brute": func() (*Result, error) { return s.BruteRkNN(ps, 0, 1) },
	} {
		r, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Points) != 1 || r.Points[0] != 2 {
			t.Fatalf("%s: RNN(q) = %v, want [p3=2]", name, r.Points)
		}
	}
}

func TestRangeNNSemantics(t *testing.T) {
	g, ps, _ := paperGraph(t)
	s := NewSearcher(g)
	var st Stats

	// Paper example: range-NN(n4, 1, 7) is empty because the NN p1 of n4
	// has distance exactly 7 (strict range).
	if d, _ := s.distance(3, 5); d != 7 {
		t.Fatalf("d(n4,p1) = %v, want 7", d)
	}
	out, err := s.rangeNN(&st, ps, 3, 1, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("range-NN(n4,1,7) = %v, want empty (strict range)", out)
	}
	// Slightly larger range finds p1 at 7.
	out, err = s.rangeNN(&st, ps, 3, 1, 7.5, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].P != 0 || out[0].D != 7 {
		t.Fatalf("range-NN(n4,1,7.5) = %v, want [p1@7]", out)
	}
	// k=3 within a huge range returns all three points sorted by distance.
	out, err = s.rangeNN(&st, ps, 3, 3, 100, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("range-NN(n4,3,100) returned %d points", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].D < out[i-1].D {
			t.Fatalf("range-NN results out of order: %v", out)
		}
	}
	// Zero or negative range is empty.
	if out, _ = s.rangeNN(&st, ps, 3, 1, 0, out); len(out) != 0 {
		t.Fatal("range-NN with e=0 returned points")
	}
}

func TestVerifySemantics(t *testing.T) {
	g, ps, q := paperGraph(t)
	s := NewSearcher(g)
	var st Stats

	// p1 (on n6) has q as its NN: verify(p1, 1, q) succeeds.
	ok, err := s.verify(&st, ps, 0, 5, singleTarget(q), 1, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("verify(p1,1,q) = false, want true")
	}
	// p3 (on n7) is closer to p1 than to q: verify fails for k=1 but
	// succeeds for k=2.
	ok, err = s.verify(&st, ps, 2, 6, singleTarget(q), 1, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("verify(p3,1,q) = true, want false")
	}
	ok, err = s.verify(&st, ps, 2, 6, singleTarget(q), 2, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("verify(p3,2,q) = false, want true")
	}
}

func TestVerifyTieIsInclusive(t *testing.T) {
	// Path: p' --1-- p --1-- q with another point exactly as close as q.
	// Membership is tie-inclusive: d(p,p') == d(p,q) must not disqualify p.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := points.NewNodeSet(3)
	pPrime, _ := ps.Place(0)
	p, _ := ps.Place(1)
	_ = pPrime
	s := NewSearcher(g)
	var st Stats
	ok, err := s.verify(&st, ps, p, 1, singleTarget(2), 1, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tie at d(p,q) disqualified p; membership must be tie-inclusive")
	}
	// All algorithms agree: p (tied) is in; p' (which has p strictly
	// closer than q) is out.
	for name, run := range map[string]func() (*Result, error){
		"eager": func() (*Result, error) { return s.EagerRkNN(ps, 2, 1) },
		"lazy":  func() (*Result, error) { return s.LazyRkNN(ps, 2, 1) },
		"brute": func() (*Result, error) { return s.BruteRkNN(ps, 2, 1) },
	} {
		r, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Points) != 1 || r.Points[0] != p {
			t.Fatalf("%s = %v, want exactly [p=%d] (tie-inclusive)", name, r.Points, p)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	g, ps, _ := paperGraph(t)
	s := NewSearcher(g)
	if _, err := s.EagerRkNN(ps, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := s.EagerRkNN(ps, -1, 1); err == nil {
		t.Fatal("negative query node accepted")
	}
	if _, err := s.LazyRkNN(ps, 99, 1); err == nil {
		t.Fatal("out-of-range query node accepted")
	}
	if _, err := s.EagerContinuous(ps, nil, 1); err == nil {
		t.Fatal("empty route accepted")
	}
}

func TestPointAtQueryNodeIsAlwaysResult(t *testing.T) {
	// A visible point co-located with the query is trivially a member for
	// any k; the strict range-NN can never discover it, so the algorithms
	// must special-case it identically.
	b := graph.NewBuilder(4)
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := points.NewNodeSet(4)
	p0, _ := ps.Place(0) // on the query node
	ps.Place(1)
	ps.Place(3)
	s := NewSearcher(g)
	for _, k := range []int{1, 2, 3} {
		for name, run := range map[string]func() (*Result, error){
			"eager": func() (*Result, error) { return s.EagerRkNN(ps, 0, k) },
			"lazy":  func() (*Result, error) { return s.LazyRkNN(ps, 0, k) },
			"brute": func() (*Result, error) { return s.BruteRkNN(ps, 0, k) },
		} {
			r, err := run()
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			found := false
			for _, p := range r.Points {
				if p == p0 {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s k=%d: co-located point missing from %v", name, k, r.Points)
			}
		}
	}
}

func TestDisconnectedQueryComponent(t *testing.T) {
	// Points in a different component are never results; algorithms must
	// terminate and agree.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := points.NewNodeSet(6)
	ps.Place(2) // same component as query
	ps.Place(3) // other component
	ps.Place(5) // other component
	s := NewSearcher(g)
	for name, run := range map[string]func() (*Result, error){
		"eager": func() (*Result, error) { return s.EagerRkNN(ps, 0, 1) },
		"lazy":  func() (*Result, error) { return s.LazyRkNN(ps, 0, 1) },
		"brute": func() (*Result, error) { return s.BruteRkNN(ps, 0, 1) },
	} {
		r, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Points) != 1 || r.Points[0] != 0 {
			t.Fatalf("%s = %v, want only the same-component point", name, r.Points)
		}
	}
}

// TestEagerLazyAgreeWithBrute is the central property test: on hundreds of
// random networks (mixed unit/float weights, varying density and k, queries
// sampled from the data distribution with the co-located point excluded),
// eager and lazy must return exactly the brute-force answer.
func TestEagerLazyAgreeWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for it := 0; it < iters; it++ {
		net := randTestNet(t, rng)
		s := NewSearcher(net.g)
		pts := net.ps.Points()
		qp := pts[rng.Intn(len(pts))]
		qnode, _ := net.ps.NodeOf(qp)
		view := points.ExcludeNode(net.ps, qp)
		k := 1 + rng.Intn(4)

		want, err := s.BruteRkNN(view, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.EagerRkNN(view, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d: eager=%s brute=%s (|V|=%d |P|=%d k=%d q=%d)",
				it, describe(got), describe(want), net.g.NumNodes(), view.Len(), k, qnode)
		}
		got, err = s.LazyRkNN(view, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d: lazy=%s brute=%s (|V|=%d |P|=%d k=%d q=%d)",
				it, describe(got), describe(want), net.g.NumNodes(), view.Len(), k, qnode)
		}
	}
}

// TestEagerLazyQueryOnEmptyNode queries from nodes that hold no data point.
func TestEagerLazyQueryOnEmptyNode(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for it := 0; it < 150; it++ {
		net := randTestNet(t, rng)
		s := NewSearcher(net.g)
		qnode := graph.NodeID(rng.Intn(net.g.NumNodes()))
		k := 1 + rng.Intn(3)
		want, err := s.BruteRkNN(net.ps, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*Result, error){
			"eager": func() (*Result, error) { return s.EagerRkNN(net.ps, qnode, k) },
			"lazy":  func() (*Result, error) { return s.LazyRkNN(net.ps, qnode, k) },
		} {
			got, err := run()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !samePoints(want, got) {
				t.Fatalf("iter %d %s=%s brute=%s (q=%d k=%d)", it, name, describe(got), describe(want), qnode, k)
			}
		}
	}
}

func TestLargeKReturnsEverythingReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	net := randTestNet(t, rng)
	s := NewSearcher(net.g)
	k := net.ps.Len() + 5 // k exceeding |P|: every reachable point qualifies
	qnode := graph.NodeID(0)
	want, err := s.BruteRkNN(net.ps, qnode, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Points) != net.ps.Len() {
		t.Fatalf("brute with huge k returned %d of %d points", len(want.Points), net.ps.Len())
	}
	for name, run := range map[string]func() (*Result, error){
		"eager": func() (*Result, error) { return s.EagerRkNN(net.ps, qnode, k) },
		"lazy":  func() (*Result, error) { return s.LazyRkNN(net.ps, qnode, k) },
	} {
		got, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !samePoints(want, got) {
			t.Fatalf("%s=%s want %s", name, describe(got), describe(want))
		}
	}
}

func TestStatsAreAccumulated(t *testing.T) {
	g, ps, q := paperGraph(t)
	s := NewSearcher(g)
	r, err := s.EagerRkNN(ps, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.NodesExpanded == 0 || r.Stats.RangeNN == 0 || r.Stats.HeapPops == 0 {
		t.Fatalf("eager stats look empty: %+v", r.Stats)
	}
	if r.Stats.Verifications == 0 {
		t.Fatalf("eager issued no verifications: %+v", r.Stats)
	}
	r, err = s.LazyRkNN(ps, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.NodesExpanded == 0 || r.Stats.Verifications == 0 {
		t.Fatalf("lazy stats look empty: %+v", r.Stats)
	}
	if r.Stats.RangeNN != 0 {
		t.Fatalf("lazy issued range-NN queries: %+v", r.Stats)
	}
}
