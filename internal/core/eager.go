package core

import (
	"fmt"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// EagerRkNN answers a monochromatic RkNN query from qnode with the eager
// algorithm of Section 3.2: the network is expanded around the query and
// every de-heaped node n is probed with range-NN(n, k, d(n,q)); if k data
// points lie strictly closer to n than the query, Lemma 1 prunes the
// expansion at n. Every point discovered by a probe is verified once.
//
// ps must already exclude a point co-located with the query, if the caller
// wants the usual "newly arrived object" semantics (see points.ExcludeNode).
func (s *Searcher) EagerRkNN(ps points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	return s.eager(ps, []graph.NodeID{qnode}, singleTarget(qnode), k)
}

// EagerContinuous answers a continuous RkNN query over a route (Section
// 5.1): the union of RkNN sets over all route nodes, computed in a single
// multi-source expansion under the distance d(r,n) = min over route nodes.
func (s *Searcher) EagerContinuous(ps points.NodeView, route []graph.NodeID, k int) (*Result, error) {
	if err := s.checkRoute(route, k); err != nil {
		return nil, err
	}
	return s.eager(ps, route, routeTarget(route), k)
}

func (s *Searcher) eager(ps points.NodeView, sources []graph.NodeID, target nodeTarget, k int) (*Result, error) {
	var st Stats
	main := s.acquire()
	defer func() { s.harvest(&st, main); s.release(main) }()
	main.begin()

	verified := make(map[points.PointID]bool)
	var results []points.PointID
	for _, src := range sources {
		// A visible point on a source node is at distance 0 from the query
		// and is trivially a member; range-NN probes (strict range) can
		// never discover it, so handle it here.
		if p, ok := ps.PointAt(src); ok && !verified[p] {
			verified[p] = true
			results = s.confirm(results, p)
		}
		main.push(src, 0)
	}

	var found []PointDist
	for {
		n, d, ok := main.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		var err error
		found, err = s.rangeNN(&st, ps, n, k, d, found)
		if err != nil {
			return execResult(results, st, err)
		}
		for _, pd := range found {
			if verified[pd.P] {
				continue
			}
			verified[pd.P] = true
			pnode, ok := ps.NodeOf(pd.P)
			if !ok {
				return nil, fmt.Errorf("core: point %d has no node", pd.P)
			}
			// d + pd.D upper-bounds the point-to-query distance; the
			// verification reaches the query at its exact distance.
			member, err := s.verify(&st, ps, pd.P, pnode, target, k, d+pd.D)
			if err != nil {
				return execResult(results, st, err)
			}
			if member {
				results = s.confirm(results, pd.P)
			}
		}
		if len(found) >= k {
			continue // Lemma 1: n cannot lead to further results
		}
		if main.adj, err = s.g.Adjacency(n, main.adj); err != nil {
			return nil, err
		}
		for _, e := range main.adj {
			main.push(e.To, d+e.W)
		}
	}
	return finishResult(results, st), nil
}

func (s *Searcher) checkQuery(qnode graph.NodeID, k int) error {
	if k < 1 {
		return fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if qnode < 0 || int(qnode) >= s.g.NumNodes() {
		return fmt.Errorf("core: query node %d out of range [0,%d)", qnode, s.g.NumNodes())
	}
	return nil
}

func (s *Searcher) checkRoute(route []graph.NodeID, k int) error {
	if len(route) == 0 {
		return fmt.Errorf("core: empty route")
	}
	for _, n := range route {
		if err := s.checkQuery(n, k); err != nil {
			return err
		}
	}
	return nil
}
