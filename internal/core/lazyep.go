package core

import (
	"sort"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/pq"
)

// LazyEPRkNN answers a monochromatic RkNN query with lazy-EP (Section 4.2):
// lazy evaluation with extended pruning. A second heap H' expands the
// network around every discovered data point in parallel with the main
// expansion (interleaved by distance), recording for each node the nearest
// discovered points; a node found closer to k discovered points than to the
// query is pruned without a verification query.
func (s *Searcher) LazyEPRkNN(ps points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	return s.lazyEP(ps, []graph.NodeID{qnode}, singleTarget(qnode), k)
}

// LazyEPContinuous is the continuous (route) variant of LazyEPRkNN.
func (s *Searcher) LazyEPContinuous(ps points.NodeView, route []graph.NodeID, k int) (*Result, error) {
	if err := s.checkRoute(route, k); err != nil {
		return nil, err
	}
	return s.lazyEP(ps, route, routeTarget(route), k)
}

func (s *Searcher) lazyEP(ps points.NodeView, sources []graph.NodeID, target nodeTarget, k int) (*Result, error) {
	var st Stats
	main := s.acquire()
	defer func() { s.harvest(&st, main); s.release(main) }()
	main.begin()

	// found[n] holds the up-to-k nearest discovered points of node n seen
	// by the H' expansion, in canonical order ("the kNN of each node found
	// so far", Section 4.2).
	found := make(map[graph.NodeID][]PointDist)
	var hp pq.Heap[matHeapEntry]
	var hpAdj []graph.Edge

	// advanceHP drains H' entries strictly below limit. The paper
	// interleaves on "top of H' < last de-heaped distance of H"; draining
	// against the distance of the *next* main pop is equivalent in cost
	// order and guarantees every mark below the pop distance is in place
	// before the pop's pruning check.
	advanceHP := func(limit float64) error {
		for {
			top, ok := hp.Peek()
			if !ok || top.Priority() >= limit {
				return nil
			}
			e, d, _ := hp.Pop()
			st.NodesScanned++
			if err := s.checkExecStride(&st); err != nil {
				return err
			}
			lst := found[e.node]
			improved := insertFound(&lst, e.p, d, k)
			if !improved {
				continue
			}
			found[e.node] = lst
			var err error
			hpAdj, err = s.g.Adjacency(e.node, hpAdj)
			if err != nil {
				return err
			}
			for _, edge := range hpAdj {
				nd := d + edge.W
				if tgt := found[edge.To]; len(tgt) == k && !entryLess(nd, e.p, tgt[k-1].D, tgt[k-1].P) {
					continue // cannot improve the neighbour's list
				}
				hp.Push(matHeapEntry{edge.To, e.p}, nd)
			}
		}
	}

	verified := make(map[points.PointID]bool)
	var results []points.PointID
	for _, src := range sources {
		if p, ok := ps.PointAt(src); ok && !verified[p] {
			verified[p] = true
			results = s.confirm(results, p)
			hp.Push(matHeapEntry{src, p}, 0)
		}
		main.push(src, 0)
	}

	for {
		if top, ok := main.heap.Peek(); ok {
			if err := advanceHP(top.Priority()); err != nil {
				return execResult(results, st, err)
			}
		}
		n, d, ok := main.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		lst := found[n]
		dStrict := strictBound(d)
		pruned := len(lst) >= k && lst[k-1].D < dStrict
		if p, hasPoint := ps.PointAt(n); hasPoint && !verified[p] {
			verified[p] = true
			// Count discovered points other than p strictly closer to n
			// than the query; k of them disqualify p without verification
			// (they are strictly closer to p as well, since p sits on n).
			closer := 0
			for _, f := range lst {
				if f.P != p && f.D < dStrict {
					closer++
				}
			}
			if closer < k {
				member, err := s.verify(&st, ps, p, n, target, k, d)
				if err != nil {
					return execResult(results, st, err)
				}
				if member {
					results = s.confirm(results, p)
				}
			}
			hp.Push(matHeapEntry{n, p}, 0)
		}
		if pruned {
			continue // Lemma 1 via the H' marks: no expansion
		}
		var adjErr error
		if main.adj, adjErr = s.g.Adjacency(n, main.adj); adjErr != nil {
			return nil, adjErr
		}
		for _, e := range main.adj {
			main.push(e.To, d+e.W)
		}
	}
	st.HeapPushes += int64(hp.PushCount)
	st.HeapPops += int64(hp.PopCount)
	return finishResult(results, st), nil
}

// insertFound inserts (p,d) into a per-node found list kept in canonical
// order and capped at k entries. It reports whether the list changed.
func insertFound(lst *[]PointDist, p points.PointID, d float64, k int) bool {
	l := *lst
	for _, f := range l {
		if f.P == p {
			return false // first pop carries the minimal distance
		}
	}
	idx := sort.Search(len(l), func(i int) bool {
		return !entryLess(l[i].D, l[i].P, d, p)
	})
	if len(l) == k {
		if idx >= k {
			return false
		}
		l = l[:k-1]
	}
	l = append(l, PointDist{})
	copy(l[idx+1:], l[idx:])
	l[idx] = PointDist{P: p, D: d}
	*lst = l
	return true
}
