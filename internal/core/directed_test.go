package core

import (
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

func randDigraph(t testing.TB, rng *rand.Rand, n int) *graph.Digraph {
	t.Helper()
	b := graph.NewDigraphBuilder(n)
	// A directed cycle guarantees strong connectivity, so every
	// verification can reach the query.
	for i := 0; i < n; i++ {
		if err := b.AddArc(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64()*5); err != nil {
			t.Fatal(err)
		}
	}
	extra := rng.Intn(4 * n)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := b.AddArc(graph.NodeID(u), graph.NodeID(v), 1+rng.Float64()*5); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDigraphBuilder(t *testing.T) {
	b := graph.NewDigraphBuilder(3)
	if err := b.AddArc(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddArc(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddArc(1, 1, 1); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := b.AddArc(0, 5, 1); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
	if err := b.AddArc(0, 1, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumArcs() != 2 {
		t.Fatalf("|V|=%d arcs=%d", g.NumNodes(), g.NumArcs())
	}
	out, err := g.Out().Adjacency(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].To != 1 {
		t.Fatalf("out(0) = %v", out)
	}
	// Node 0 has no in-arcs; node 1 has one (from 0).
	in, err := g.In().Adjacency(0, nil)
	if err != nil || len(in) != 0 {
		t.Fatalf("in(0) = %v, %v", in, err)
	}
	in, err = g.In().Adjacency(1, nil)
	if err != nil || len(in) != 1 || in[0].To != 0 {
		t.Fatalf("in(1) = %v, %v", in, err)
	}
	if _, err := g.Out().Adjacency(9, nil); err == nil {
		t.Fatal("out-of-range adjacency accepted")
	}
}

func TestDirectedOneWayStreetAsymmetry(t *testing.T) {
	// A one-way shortcut: p can reach q in 1 but the return path costs 10.
	// A rival point x sits 2 away from p (both directions). Under directed
	// semantics q IS p's nearest reachable object (1 < 2); under
	// undirected-style reasoning from the query side (d(q→p) = 10) one
	// might wrongly reject p.
	b := graph.NewDigraphBuilder(4)
	// p=node0, q=node1, x=node2, helper=node3.
	must := func(u, v graph.NodeID, w float64) {
		if err := b.AddArc(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	must(0, 1, 1) // p -> q (one way, cheap)
	must(1, 3, 5) // q -> helper
	must(3, 0, 5) // helper -> p (so q reaches p at cost 10)
	must(0, 2, 2) // p -> x
	must(2, 0, 2) // x -> p
	must(2, 1, 9) // x -> q (expensive: q is not x's NN; x's NN is p)
	must(1, 2, 9)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := points.NewNodeSet(4)
	p, _ := ps.Place(0)
	x, _ := ps.Place(2)
	ds := NewDirectedSearcher(g)
	r, err := ds.EagerRkNN(ps, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1 || r.Points[0] != p {
		t.Fatalf("directed RNN(q) = %v, want [p=%d] (x=%d has p closer)", r.Points, p, x)
	}
	rb, err := ds.BruteRkNN(ps, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(r, rb) {
		t.Fatalf("eager=%s brute=%s", describe(r), describe(rb))
	}
}

// TestDirectedEagerAgreesWithBrute is the directed property test.
func TestDirectedEagerAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for it := 0; it < iters; it++ {
		n := 8 + rng.Intn(40)
		g := randDigraph(t, rng, n)
		ds := NewDirectedSearcher(g)
		ps := points.NewNodeSet(n)
		perm := rng.Perm(n)
		for i := 0; i < 1+rng.Intn(n/2); i++ {
			if _, err := ps.Place(graph.NodeID(perm[i])); err != nil {
				t.Fatal(err)
			}
		}
		k := 1 + rng.Intn(3)
		pts := ps.Points()
		qp := pts[rng.Intn(len(pts))]
		qnode, _ := ps.NodeOf(qp)
		view := points.ExcludeNode(ps, qp)

		want, err := ds.BruteRkNN(view, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.EagerRkNN(view, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d: directed eager=%s brute=%s (|V|=%d |P|=%d k=%d q=%d)",
				it, describe(got), describe(want), n, view.Len(), k, qnode)
		}
	}
}

// TestDirectedMatchesUndirectedOnSymmetricGraphs: when every arc has its
// reverse twin with the same weight, directed semantics must coincide with
// the undirected algorithms.
func TestDirectedMatchesUndirectedOnSymmetricGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for it := 0; it < 60; it++ {
		net := randTestNet(t, rng)
		db := graph.NewDigraphBuilder(net.g.NumNodes())
		net.g.ForEachEdge(func(u, v graph.NodeID, w float64) {
			if err := db.AddArc(u, v, w); err != nil {
				t.Fatal(err)
			}
			if err := db.AddArc(v, u, w); err != nil {
				t.Fatal(err)
			}
		})
		dg, err := db.Build()
		if err != nil {
			t.Fatal(err)
		}
		ds := NewDirectedSearcher(dg)
		s := NewSearcher(net.g)
		k := 1 + rng.Intn(3)
		qnode := graph.NodeID(rng.Intn(net.g.NumNodes()))
		want, err := s.EagerRkNN(net.ps, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.EagerRkNN(net.ps, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d: directed=%s undirected=%s (q=%d k=%d)", it, describe(got), describe(want), qnode, k)
		}
	}
}
