package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/pq"
	"graphrnn/internal/storage"
)

// This file implements the materialization scheme of Section 4.1: for every
// network node, the K nearest data points are precomputed by the all-NN
// algorithm (Fig 8) and stored in a paged file; eager-M answers queries from
// these lists, and object insertions/deletions maintain them incrementally
// (Figs 10-11).
//
// Deviations from the paper, both documented in DESIGN.md:
//
//  1. Lists store K+1 entries. A node's own point appears in its list at
//     distance 0, so exposing the "k-th NN of the node containing p,
//     excluding p itself" (needed to verify p) requires one extra entry.
//     The spare entry also absorbs the point hidden by the query-exclusion
//     view of the experimental workloads.
//
//  2. Entries are kept in canonical (distance, point id) lexicographic
//     order and every acceptance test uses that order. This makes the
//     "K-NN lists are closed under shortest-path prefixes" lemma — the
//     correctness basis of the border-node deletion algorithm — hold even
//     under distance ties (frequent on unit-weight graphs), and makes
//     maintenance results bit-identical to a from-scratch rebuild.

// MatEntry is one materialized list entry: a data point and its exact
// network distance from the list's node.
type MatEntry struct {
	P points.PointID
	D float64
}

func entryLess(d1 float64, p1 points.PointID, d2 float64, p2 points.PointID) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return p1 < p2
}

func sortMatEntries(lst []MatEntry) {
	sort.Slice(lst, func(i, j int) bool {
		return entryLess(lst[i].D, lst[i].P, lst[j].D, lst[j].P)
	})
}

// MatSeed is a starting location of a data point for the all-NN expansion:
// for node-resident points, the hosting node at distance 0; for
// edge-resident points, both endpoints at their direct offsets.
type MatSeed struct {
	Node graph.NodeID
	P    points.PointID
	D    float64
}

// SeedsRestricted returns the all-NN seeds of a node-resident point set.
func SeedsRestricted(ps points.NodeView) []MatSeed {
	pts := ps.Points()
	seeds := make([]MatSeed, 0, len(pts))
	for _, p := range pts {
		if n, ok := ps.NodeOf(p); ok {
			seeds = append(seeds, MatSeed{Node: n, P: p, D: 0})
		}
	}
	return seeds
}

// SeedsUnrestricted returns the all-NN seeds of an edge-resident point set:
// each point seeds both endpoints of its edge with the direct offsets
// (Section 5.2: kNNs of edge points are derived from endpoint lists).
func SeedsUnrestricted(ps points.EdgeView, g graph.Access) ([]MatSeed, error) {
	pts := ps.Points()
	seeds := make([]MatSeed, 0, 2*len(pts))
	var err error
	var w float64
	var adj []graph.Edge
	weight := func(u, v graph.NodeID) (float64, error) {
		adj, err = g.Adjacency(u, adj)
		if err != nil {
			return 0, err
		}
		for _, e := range adj {
			if e.To == v {
				return e.W, nil
			}
		}
		return 0, fmt.Errorf("core: point set references missing edge (%d,%d)", u, v)
	}
	for _, p := range pts {
		loc, ok := ps.Loc(p)
		if !ok {
			continue
		}
		if w, err = weight(loc.U, loc.V); err != nil {
			return nil, err
		}
		seeds = append(seeds,
			MatSeed{Node: loc.U, P: p, D: loc.Pos},
			MatSeed{Node: loc.V, P: p, D: w - loc.Pos},
		)
	}
	return seeds, nil
}

// Materialized holds the per-node K-NN lists in a paged file read through
// an LRU buffer, so that list accesses and maintenance writes are counted
// as I/O exactly like adjacency accesses (the paper's Fig 18 and Fig 22
// measure precisely this traffic).
type Materialized struct {
	maxK     int // queries support k <= maxK; records hold maxK+1 entries
	cap      int // maxK + 1
	numNodes int
	bm       *storage.BufferManager
	refs     []storage.RecRef
	// pages recycles zero-capacity read buffers across List calls.
	pages sync.Pool
	// repair is the in-flight journaled maintenance operation, nil between
	// operations (maintenance requires exclusive access, so no lock).
	repair *matRepair
	// pst carries the persistence state of a file-backed materialization
	// (header, point region, journal); nil for the in-memory default.
	pst *matPersist
	// failWrites is a test seam: when positive it counts down on every
	// maintained list write and injects a failure at zero, so tests can
	// abandon a repair at an arbitrary write without a context.
	failWrites int
}

// matRepair is one journaled maintenance operation: the before-image of
// every list the repair has touched, in touch order. For file-backed
// materializations each before-image is also in the write-ahead journal
// before the list page may be overwritten; in-process rollback uses the
// in-memory copies either way.
type matRepair struct {
	seq    uint64
	before map[graph.NodeID][]MatEntry
	order  []graph.NodeID
	// Commit-time point-region undo state (file-backed only): the point
	// record CommitRepair is about to overwrite and the pre-operation
	// point count, so a commit that fails between the point write and the
	// header flip can still roll back completely.
	preNumPoints int
	pointWritten bool
	pointP       points.PointID
	pointOld     PointRecord
}

const matEntrySize = 4 + 8

func matRecordSize(cap int) int { return 2 + cap*matEntrySize }

// MaxK returns the largest query k the lists support.
func (m *Materialized) MaxK() int { return m.maxK }

// NumNodes returns the number of per-node lists.
func (m *Materialized) NumNodes() int { return m.numNodes }

// Stats returns the I/O counters of the list file buffer.
func (m *Materialized) Stats() storage.Stats { return m.bm.Stats() }

// ResetStats zeroes the I/O counters.
func (m *Materialized) ResetStats() { m.bm.ResetStats() }

// Buffer exposes the list file buffer manager.
func (m *Materialized) Buffer() *storage.BufferManager { return m.bm }

// Close detaches the lists' buffer tenant from its pool, flushing dirty
// pages and returning any contributed capacity. The materialization must
// not be used afterwards; Close is idempotent.
func (m *Materialized) Close() error {
	if m.bm == nil {
		return nil
	}
	bm := m.bm
	m.bm = nil
	return bm.Detach()
}

// List appends the materialized entries of node n to buf in canonical
// order. The caller is responsible for counting Stats.MatReads.
func (m *Materialized) List(n graph.NodeID, buf []MatEntry) ([]MatEntry, error) {
	buf = buf[:0]
	if n < 0 || int(n) >= m.numNodes {
		return nil, fmt.Errorf("core: materialized list of node %d out of range [0,%d)", n, m.numNodes)
	}
	ref := m.refs[n]
	scratch := m.pages.Get().([]byte)
	defer m.pages.Put(scratch)
	page, err := m.bm.GetInto(ref.Page, scratch)
	if err != nil {
		return nil, err
	}
	rec, err := storage.ReadRecordSlot(page, m.bm.File().PageSize(), int(ref.Slot))
	if err != nil {
		return nil, err
	}
	// Length before content: a corrupt page can hold a record too short to
	// even carry the count.
	if len(rec) < matRecordSize(m.cap) {
		return nil, fmt.Errorf("core: corrupt materialized record for node %d", n)
	}
	count := int(binary.LittleEndian.Uint16(rec[0:]))
	if count > m.cap {
		return nil, fmt.Errorf("core: corrupt materialized record for node %d", n)
	}
	off := 2
	for i := 0; i < count; i++ {
		p := points.PointID(binary.LittleEndian.Uint32(rec[off:]))
		d := math.Float64frombits(binary.LittleEndian.Uint64(rec[off+4:]))
		buf = append(buf, MatEntry{P: p, D: d})
		off += matEntrySize
	}
	return buf, nil
}

// writeList overwrites the record of node n in place. It is the write path
// of the maintenance algorithms; restores bypass it (and the test fault
// seam) through restoreList.
func (m *Materialized) writeList(n graph.NodeID, entries []MatEntry) error {
	if m.failWrites > 0 {
		m.failWrites--
		if m.failWrites == 0 {
			return fmt.Errorf("core: injected list write fault at node %d", n)
		}
	}
	return m.restoreList(n, entries)
}

// InjectWriteFault arms the test seam: the countdown-th maintained list
// write fails. Zero disarms it. Internal test hook only.
func (m *Materialized) InjectWriteFault(countdown int) { m.failWrites = countdown }

func (m *Materialized) restoreList(n graph.NodeID, entries []MatEntry) error {
	if len(entries) > m.cap {
		return fmt.Errorf("core: %d entries exceed capacity %d", len(entries), m.cap)
	}
	ref := m.refs[n]
	return m.bm.Update(ref.Page, func(page []byte) error {
		rec, err := storage.ReadRecordSlot(page, m.bm.File().PageSize(), int(ref.Slot))
		if err != nil {
			return err
		}
		if len(rec) < matRecordSize(m.cap) {
			return fmt.Errorf("core: corrupt materialized record for node %d", n)
		}
		binary.LittleEndian.PutUint16(rec[0:], uint16(len(entries)))
		off := 2
		for _, e := range entries {
			binary.LittleEndian.PutUint32(rec[off:], uint32(e.P))
			binary.LittleEndian.PutUint64(rec[off+4:], math.Float64bits(e.D))
			off += matEntrySize
		}
		return nil
	})
}

// Flush writes dirty list pages back to the file.
func (m *Materialized) Flush() error { return m.bm.Flush() }

// --- journaled maintenance operations --------------------------------------
//
// Every MatInsert / MatDelete runs inside a repair operation framed by
// BeginRepair and CommitRepair. The operation records the before-image of
// each list the first time the repair touches it; an abandoned operation
// (cancellation, deadline, budget, I/O error) is undone by RollbackRepair,
// which restores the before-images and leaves the lists bit-identical to
// the pre-operation state. File-backed materializations additionally write
// each before-image to a write-ahead journal before the list page may be
// overwritten, and flip a single header bit on commit — so a process crash
// mid-repair is undone by the same rollback on the next open.

// RepairPending reports whether an uncommitted maintenance operation is
// recorded: an in-flight or failed-to-roll-back in-process operation, or a
// crashed operation found in the journal of a reopened file.
func (m *Materialized) RepairPending() bool {
	return m.repair != nil || (m.pst != nil && m.pst.pending)
}

// BeginRepair opens a journaled maintenance operation. meta is an opaque
// descriptor of the point-set mutation (logged for the journal's benefit;
// rollback itself is driven by the before-images). It fails when an
// unrecovered operation is pending.
func (m *Materialized) BeginRepair(meta []byte) error {
	if m.RepairPending() {
		return fmt.Errorf("core: unrecovered maintenance operation pending; recover before mutating")
	}
	r := &matRepair{seq: 1, before: make(map[graph.NodeID][]MatEntry)}
	if m.pst != nil {
		r.seq = m.pst.seq + 1
		r.preNumPoints = m.pst.numPoints
		m.pst.journal.Begin(r.seq)
		if err := m.pst.journal.Append(append([]byte{jrecMeta}, meta...)); err != nil {
			return err
		}
		// The header flips to pending before any list page can be
		// overwritten; a crash from here on is rolled back on reopen.
		if err := m.pst.writeHeader(m, r.seq, true); err != nil {
			return err
		}
		m.pst.seq, m.pst.pending = r.seq, true
	}
	m.repair = r
	return nil
}

// journalTouch records the before-image of node n's list the first time
// the active repair touches it. entries must be the list as read, before
// any in-place mutation.
func (m *Materialized) journalTouch(n graph.NodeID, entries []MatEntry) error {
	r := m.repair
	if r == nil {
		return nil
	}
	if _, seen := r.before[n]; seen {
		return nil
	}
	img := append([]MatEntry(nil), entries...)
	r.before[n] = img
	r.order = append(r.order, n)
	if m.pst != nil {
		return m.pst.journal.Append(encodeBeforeImage(n, img))
	}
	return nil
}

// CommitRepair ends the operation: dirty list pages are flushed, the
// point-region record of point p becomes rec (file-backed only; rec is
// PointAbsent for a deletion), and the header flips clean in one page
// write — the atomic commit point. The point record's before-image goes
// to the journal first, so a crash (or failure) between the point write
// and the header flip rolls the point region back with the lists.
func (m *Materialized) CommitRepair(p points.PointID, rec PointRecord) error {
	r := m.repair
	if r == nil {
		return fmt.Errorf("core: no maintenance operation in flight")
	}
	if m.pst != nil {
		if err := m.bm.Flush(); err != nil {
			return err
		}
		old, err := m.pst.readPointRecord(p)
		if err != nil {
			return err
		}
		if err := m.pst.journal.Append(encodePointImage(p, old)); err != nil {
			return err
		}
		r.pointWritten, r.pointP, r.pointOld = true, p, old
		if err := m.pst.writePointRecord(p, rec); err != nil {
			return err
		}
		if err := m.pst.writeHeader(m, m.pst.seq, false); err != nil {
			return err
		}
		m.pst.pending = false
		m.pst.journal.End()
	}
	m.repair = nil
	return nil
}

// RollbackRepair undoes the pending maintenance operation by restoring
// every recorded before-image: the in-process operation from its in-memory
// copies, a crashed operation (reopened file) from the journal. It is
// idempotent — a rollback that fails midway can be retried — and a no-op
// when nothing is pending.
func (m *Materialized) RollbackRepair() error {
	if r := m.repair; r != nil {
		for _, n := range r.order {
			if err := m.restoreList(n, r.before[n]); err != nil {
				return err
			}
		}
		if m.pst != nil {
			if err := m.bm.Flush(); err != nil {
				return err
			}
			// A commit that failed after its point-region write rolls
			// that write back too (fresh ids need no restore — the
			// pre-operation numPoints already excludes them).
			if r.pointWritten && int(r.pointP) < r.preNumPoints {
				if err := m.pst.writePointRecord(r.pointP, r.pointOld); err != nil {
					return err
				}
			}
			m.pst.numPoints = r.preNumPoints
			if err := m.pst.writeHeader(m, m.pst.seq, false); err != nil {
				return err
			}
			m.pst.pending = false
			m.pst.journal.End()
		}
		m.repair = nil
		return nil
	}
	if m.pst != nil && m.pst.pending {
		return m.recoverFromJournal()
	}
	return nil
}

// AbandonRepair drops the in-process operation WITHOUT rolling it back,
// leaving the journal pending — the simulated-crash seam used by the
// recovery tests. Internal test hook only.
func (m *Materialized) AbandonRepair() {
	if m.repair != nil && m.pst != nil {
		m.pst.journal.End()
	}
	m.repair = nil
}

type matHeapEntry struct {
	node graph.NodeID
	p    points.PointID
}

// MatBuild runs the all-NN algorithm (Fig 8) and materializes, for every
// node, the maxK+1 nearest data points in a single network expansion seeded
// at every point location. The lists are packed into file (which must be
// empty) in the given node order (nil = node id order) and read back
// through a private buffer of bufferPages pages. Use MatBuildBuffer to
// serve the lists through a shared buffer pool instead.
//
// Complexity is O(K·|E|·log(K·|E|)), as in the paper; pushes that provably
// cannot improve a list are filtered to keep the heap small.
func (s *Searcher) MatBuild(seeds []MatSeed, maxK int, file storage.PagedFile, bufferPages int, order []graph.NodeID) (*Materialized, error) {
	return s.MatBuildBuffer(seeds, maxK, file, storage.NewBufferManager(file, bufferPages), order)
}

// MatBuildBuffer is MatBuild reading the packed lists back through bm,
// which must wrap file — typically a tenant of the process-wide buffer
// pool, so list pages share frames (and stats) with every other substrate.
func (s *Searcher) MatBuildBuffer(seeds []MatSeed, maxK int, file storage.PagedFile, bm *storage.BufferManager, order []graph.NodeID) (*Materialized, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("core: maxK must be >= 1, got %d", maxK)
	}
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("core: MatBuild needs an empty file, got %d pages", file.NumPages())
	}
	n := s.g.NumNodes()
	cap := maxK + 1
	if matRecordSize(cap) > storage.MaxRecordPayload(file.PageSize()) {
		return nil, fmt.Errorf("core: K=%d lists do not fit page size %d", maxK, file.PageSize())
	}

	lists := make([][]MatEntry, n)
	var heap pq.Heap[matHeapEntry]
	for _, seed := range seeds {
		heap.Push(matHeapEntry{seed.Node, seed.P}, seed.D)
	}
	var adj []graph.Edge

	// accept inserts (p,d) into list[m] under the canonical order and
	// reports whether the list changed.
	accept := func(m graph.NodeID, p points.PointID, d float64) bool {
		changed, updated := matAccept(lists[m], p, d, cap)
		if changed {
			lists[m] = updated
		}
		return changed
	}
	// worthPushing filters heap entries that cannot change list[m].
	worthPushing := func(m graph.NodeID, p points.PointID, d float64) bool {
		lst := lists[m]
		if len(lst) < cap {
			return true
		}
		last := lst[len(lst)-1]
		return entryLess(d, p, last.D, last.P)
	}

	//lint:ignore vetrnn/execpoll offline index construction; no query context exists yet (ROADMAP: context-aware maintenance)
	for {
		e, d, ok := heap.Pop()
		if !ok {
			break
		}
		if !accept(e.node, e.p, d) {
			continue
		}
		var adjErr error
		if adj, adjErr = s.g.Adjacency(e.node, adj); adjErr != nil {
			return nil, adjErr
		}
		for _, edge := range adj {
			if nd := d + edge.W; worthPushing(edge.To, e.p, nd) {
				heap.Push(matHeapEntry{edge.To, e.p}, nd)
			}
		}
	}

	// Pack fixed-size records in the requested order.
	if order == nil {
		order = make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("core: order has %d nodes, graph has %d", len(order), n)
	}
	m := &Materialized{maxK: maxK, cap: cap, numNodes: n, refs: make([]storage.RecRef, n)}
	pb := storage.NewRecordPageBuilder(file.PageSize())
	nextPage := storage.PageID(0)
	rec := make([]byte, matRecordSize(cap))
	flush := func() error {
		if pb.Empty() {
			return nil
		}
		id, err := file.Append(pb.Bytes())
		if err != nil {
			return err
		}
		if id != nextPage {
			return fmt.Errorf("core: expected page %d, appended %d", nextPage, id)
		}
		nextPage++
		pb.Reset()
		return nil
	}
	for _, node := range order {
		lst := lists[node]
		binary.LittleEndian.PutUint16(rec[0:], uint16(len(lst)))
		off := 2
		for _, e := range lst {
			binary.LittleEndian.PutUint32(rec[off:], uint32(e.P))
			binary.LittleEndian.PutUint64(rec[off+4:], math.Float64bits(e.D))
			off += matEntrySize
		}
		for ; off < len(rec); off++ {
			rec[off] = 0
		}
		slot, ok := pb.TryAdd(rec)
		if !ok {
			if err := flush(); err != nil {
				return nil, err
			}
			if slot, ok = pb.TryAdd(rec); !ok {
				return nil, fmt.Errorf("core: materialized record does not fit an empty page")
			}
		}
		m.refs[node] = storage.RecRef{Page: nextPage, Slot: uint16(slot)}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	m.bm = bm
	m.pages.New = func() any { return make([]byte, m.bm.File().PageSize()) }
	return m, nil
}

// MatInsert maintains the lists after a new data point appears at the given
// seed location(s): a bounded expansion inserts the point into every list
// it improves and stops at nodes it cannot improve (Section 4.1).
func (s *Searcher) MatInsert(m *Materialized, seeds []MatSeed) (Stats, error) {
	var st Stats
	if len(seeds) == 0 {
		return st, fmt.Errorf("core: MatInsert needs at least one seed")
	}
	p := seeds[0].P
	sc := s.acquire()
	defer func() { s.harvest(&st, sc); s.release(sc) }()
	sc.begin()
	for _, seed := range seeds {
		if seed.P != p {
			return st, fmt.Errorf("core: MatInsert seeds mix points %d and %d", p, seed.P)
		}
		sc.push(seed.Node, seed.D)
	}
	var lst []MatEntry
	for {
		n, d, ok := sc.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return st, err
		}
		var err error
		lst, err = m.List(n, lst)
		if err != nil {
			return st, err
		}
		st.MatReads++
		// The before-image must be captured before matAccept mutates the
		// decoded entries in place.
		if err := m.journalTouch(n, lst); err != nil {
			return st, err
		}
		changed, updated := matAccept(lst, p, d, m.cap)
		if !changed {
			continue // cannot improve: expansion stops here
		}
		if err := m.writeList(n, updated); err != nil {
			return st, err
		}
		sc.adj, err = s.g.Adjacency(n, sc.adj)
		if err != nil {
			return st, err
		}
		for _, e := range sc.adj {
			sc.push(e.To, d+e.W)
		}
	}
	return st, nil
}

// matAccept applies the canonical acceptance rule to a decoded list,
// returning whether it changed and the updated entries (aliasing lst's
// backing array when possible). A point already present with an equal or
// better key is rejected; a present point with a worse key is replaced
// (defensive — the Dijkstra pop orders of the callers deliver minimal
// candidates first, so replacement should not arise in practice).
func matAccept(lst []MatEntry, p points.PointID, d float64, cap int) (bool, []MatEntry) {
	for i, e := range lst {
		if e.P != p {
			continue
		}
		if !entryLess(d, p, e.D, e.P) {
			return false, lst // present with an equal or better key
		}
		lst = append(lst[:i], lst[i+1:]...) // present with a worse key: replace
		break
	}
	idx := sort.Search(len(lst), func(i int) bool {
		return !entryLess(lst[i].D, lst[i].P, d, p)
	})
	if len(lst) == cap {
		if idx >= cap {
			return false, lst
		}
		lst = lst[:cap-1]
	}
	lst = append(lst, MatEntry{})
	copy(lst[idx+1:], lst[idx:])
	lst[idx] = MatEntry{P: p, D: d}
	return true, lst
}

// MatDelete maintains the lists after point p (which was seeded at the
// given locations) disappears, using the two-step border-node algorithm of
// Fig 10: step one expands over the affected nodes (those whose lists
// contain p), removing p; step two refills the vacated slots by propagating
// candidate entries inward from the border.
func (s *Searcher) MatDelete(m *Materialized, p points.PointID, seeds []MatSeed) (Stats, error) {
	var st Stats
	if len(seeds) == 0 {
		return st, fmt.Errorf("core: MatDelete needs at least one seed")
	}
	sc := s.acquire()
	defer func() { s.harvest(&st, sc); s.release(sc) }()
	sc.begin()
	for _, seed := range seeds {
		if seed.P != p {
			return st, fmt.Errorf("core: MatDelete seeds mix points %d and %d", p, seed.P)
		}
		sc.push(seed.Node, seed.D)
	}

	affected := make(map[graph.NodeID]bool)
	visitedStep1 := make([]graph.NodeID, 0, 16)
	var lst []MatEntry

	// Step 1: remove p from every affected list; stop at border nodes.
	for {
		n, _, ok := sc.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return st, err
		}
		var err error
		lst, err = m.List(n, lst)
		if err != nil {
			return st, err
		}
		st.MatReads++
		if err := m.journalTouch(n, lst); err != nil {
			return st, err
		}
		visitedStep1 = append(visitedStep1, n)
		found := -1
		for i, e := range lst {
			if e.P == p {
				found = i
				break
			}
		}
		if found < 0 {
			continue // border node: do not expand beyond it
		}
		affected[n] = true
		lst = append(lst[:found], lst[found+1:]...)
		if err := m.writeList(n, lst); err != nil {
			return st, err
		}
		sc.adj, err = s.g.Adjacency(n, sc.adj)
		if err != nil {
			return st, err
		}
		for _, e := range sc.adj {
			sc.push(e.To, sc.dist[n]+e.W)
		}
	}
	if len(affected) == 0 {
		return st, nil
	}

	// Step 2 seeding: every step-1 node (border or affected) offers its
	// remaining entries to affected neighbours. The paper seeds only from
	// border nodes; affected-to-affected seeding additionally covers the
	// case where the replacement entry originates inside the affected
	// region (e.g. a point residing on an affected node) — see DESIGN.md.
	var heap pq.Heap[matHeapEntry]
	for _, a := range visitedStep1 {
		// Seeding reads one list page and one adjacency per node, so the
		// exec context must stay responsive here too; the reads are already
		// charged (MatReads, step 1's counters), so poll without re-charging.
		if err := s.checkExec(&st); err != nil {
			return st, err
		}
		var err error
		sc.adj, err = s.g.Adjacency(a, sc.adj)
		if err != nil {
			return st, err
		}
		hasAffectedNeighbor := false
		for _, e := range sc.adj {
			if affected[e.To] {
				hasAffectedNeighbor = true
				break
			}
		}
		if !hasAffectedNeighbor {
			continue
		}
		lst, err = m.List(a, lst)
		if err != nil {
			return st, err
		}
		st.MatReads++
		entries := append([]MatEntry(nil), lst...)
		for _, e := range sc.adj {
			if !affected[e.To] {
				continue
			}
			for _, ent := range entries {
				heap.Push(matHeapEntry{e.To, ent.P}, ent.D+e.W)
			}
		}
	}

	// Step 2: propagate candidates in distance order; an accepted entry is
	// exact (first pop of a (node,point) pair carries the minimal
	// candidate distance) and is forwarded to the node's neighbours.
	for {
		e, d, ok := heap.Pop()
		if !ok {
			break
		}
		st.NodesScanned++
		if err := s.checkExecStride(&st); err != nil {
			return st, err
		}
		var err error
		lst, err = m.List(e.node, lst)
		if err != nil {
			return st, err
		}
		st.MatReads++
		if err := m.journalTouch(e.node, lst); err != nil {
			return st, err
		}
		changed, updated := matAccept(lst, e.p, d, m.cap)
		if !changed {
			continue
		}
		if err := m.writeList(e.node, updated); err != nil {
			return st, err
		}
		sc.adj, err = s.g.Adjacency(e.node, sc.adj)
		if err != nil {
			return st, err
		}
		for _, edge := range sc.adj {
			heap.Push(matHeapEntry{edge.To, e.p}, d+edge.W)
		}
	}
	st.HeapPushes += int64(heap.PushCount)
	st.HeapPops += int64(heap.PopCount)
	return st, nil
}
