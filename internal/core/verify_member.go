package core

import (
	"math"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// Per-candidate membership checks for scatter-gather serving: a
// coordinator that merges shard-local candidate sets confirms each
// candidate with exactly the expansion the brute-force oracle runs for
// it, so a verified merge is bit-identical to an unsharded answer — same
// distances, same epsilon bounds, same tie handling.

// VerifyRkNNMember reports whether point p of ps is a member of the
// monochromatic RkNN(qnode, k) answer over ps. A deleted p is not a
// member. The expansion is unbounded (oracle semantics).
func (s *Searcher) VerifyRkNNMember(ps points.NodeView, p points.PointID, qnode graph.NodeID, k int) (bool, Stats, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return false, Stats{}, err
	}
	return s.verifyMember(ps, ps, p, true, singleTarget(qnode), k)
}

// VerifyContinuousMember is the continuous (route) variant of
// VerifyRkNNMember: p is a member iff some route node is met before k
// other points strictly closer.
func (s *Searcher) VerifyContinuousMember(ps points.NodeView, p points.PointID, route []graph.NodeID, k int) (bool, Stats, error) {
	if err := s.checkRoute(route, k); err != nil {
		return false, Stats{}, err
	}
	return s.verifyMember(ps, ps, p, true, routeTarget(route), k)
}

// VerifyBichromaticMember reports whether candidate p of cands belongs
// to the bichromatic bRkNN(qnode, k) answer against the site set.
func (s *Searcher) VerifyBichromaticMember(cands, sites points.NodeView, p points.PointID, qnode graph.NodeID, k int) (bool, Stats, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return false, Stats{}, err
	}
	return s.verifyMember(cands, sites, p, false, singleTarget(qnode), k)
}

func (s *Searcher) verifyMember(cands, sites points.NodeView, p points.PointID, mono bool, target nodeTarget, k int) (bool, Stats, error) {
	var st Stats
	pnode, ok := cands.NodeOf(p)
	if !ok {
		return false, st, nil
	}
	self := points.NoPoint
	if mono {
		self = p
	}
	member, err := s.verify(&st, sites, self, pnode, target, k, math.Inf(1))
	return member, st, err
}
