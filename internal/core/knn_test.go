package core

import (
	"math"
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

func TestKNNMatchesBruteDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for it := 0; it < 60; it++ {
		net := randTestNet(t, rng)
		s := NewSearcher(net.g)
		n := graph.NodeID(rng.Intn(net.g.NumNodes()))
		k := 1 + rng.Intn(5)
		got, err := s.KNN(net.ps, n, k)
		if err != nil {
			t.Fatal(err)
		}
		// Brute: distance from n to every point, sorted.
		var want []float64
		for _, p := range net.ps.Points() {
			pn, _ := net.ps.NodeOf(p)
			d, err := s.distance(n, pn)
			if err != nil {
				t.Fatal(err)
			}
			if !math.IsInf(d, 1) {
				want = append(want, d)
			}
		}
		sortFloats(want)
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: KNN returned %d results, want %d", it, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].D-want[i]) > 1e-9 {
				t.Fatalf("iter %d: KNN dist[%d] = %v, want %v", it, i, got[i].D, want[i])
			}
			if i > 0 && got[i].D < got[i-1].D {
				t.Fatalf("iter %d: KNN out of order: %v", it, got)
			}
		}
	}
}

func TestUKNNMatchesBruteDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for it := 0; it < 40; it++ {
		n := 8 + rng.Intn(25)
		g := randNet(t, rng, n, rng.Intn(2*n), 0.3)
		edges := graphEdges(g)
		s := NewSearcher(g)
		ps := randEdgePoints(t, rng, g, 1+rng.Intn(12))
		q := randULoc(rng, g, edges)
		k := 1 + rng.Intn(4)
		got, err := s.UKNN(ps, q, k)
		if err != nil {
			t.Fatal(err)
		}
		var want []float64
		for _, p := range ps.Points() {
			loc, _ := ps.Loc(p)
			d, err := s.ULocDistance(q, PointLoc(loc))
			if err != nil {
				t.Fatal(err)
			}
			if !math.IsInf(d, 1) {
				want = append(want, d)
			}
		}
		sortFloats(want)
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: UKNN returned %d results, want %d (q=%v)", it, len(got), len(want), q)
		}
		for i := range got {
			if math.Abs(got[i].D-want[i]) > 1e-9 {
				t.Fatalf("iter %d: UKNN dist[%d] = %v, want %v", it, i, got[i].D, want[i])
			}
		}
	}
}

func TestKNNValidation(t *testing.T) {
	g, ps, _ := paperGraph(t)
	s := NewSearcher(g)
	if _, err := s.KNN(ps, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := s.KNN(ps, -1, 1); err == nil {
		t.Fatal("bad node accepted")
	}
	eps := points.NewEdgeSet()
	if _, err := s.UKNN(eps, Loc{U: 0, V: 99}, 1); err == nil {
		t.Fatal("bad location accepted")
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
