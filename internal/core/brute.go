package core

import (
	"math"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// BruteRkNN answers a monochromatic RkNN query by running an unbounded
// verification expansion from every data point: p is a member iff the query
// is met before k other points strictly closer to p. It visits all data
// points — exactly the naive strategy Section 3.1 argues against — and
// serves as the correctness oracle for the entire test suite.
func (s *Searcher) BruteRkNN(ps points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	return s.brute(ps, ps, true, singleTarget(qnode), k)
}

// BruteContinuous is the continuous (route) variant of BruteRkNN.
func (s *Searcher) BruteContinuous(ps points.NodeView, route []graph.NodeID, k int) (*Result, error) {
	if err := s.checkRoute(route, k); err != nil {
		return nil, err
	}
	return s.brute(ps, ps, true, routeTarget(route), k)
}

// BruteBichromatic answers a bichromatic bRkNN query by brute force: every
// candidate of cands is verified against the site set.
func (s *Searcher) BruteBichromatic(cands, sites points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	return s.brute(cands, sites, false, singleTarget(qnode), k)
}

func (s *Searcher) brute(cands, sites points.NodeView, mono bool, target nodeTarget, k int) (*Result, error) {
	var st Stats
	var results []points.PointID
	for _, p := range cands.Points() {
		// One candidate's verification is one expansion step of the
		// brute-force strategy.
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		pnode, ok := cands.NodeOf(p)
		if !ok {
			continue
		}
		self := points.NoPoint
		if mono {
			self = p
		}
		member, err := s.verify(&st, sites, self, pnode, target, k, math.Inf(1))
		if err != nil {
			return execResult(results, st, err)
		}
		if member {
			results = s.confirm(results, p)
		}
	}
	return finishResult(results, st), nil
}
