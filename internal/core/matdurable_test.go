package core

import (
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/storage"
)

// syncCountFile wraps a PagedFile and counts Sync calls, so tests can
// observe exactly when the durability knob pushes writes to "stable
// storage" (storage.SyncFile discovers the method by type assertion, the
// same way it finds OSFile.Sync).
type syncCountFile struct {
	storage.PagedFile
	syncs int
}

func (f *syncCountFile) Sync() error {
	f.syncs++
	return nil
}

// runDurableInsert reopens a persisted materialization through
// sync-counting files, optionally turns fsync durability on, and commits
// one insertion. It returns the sync counts seen by the mat file and the
// journal file during the operation.
func runDurableInsert(t *testing.T, durable bool) (matSyncs, journalSyncs int) {
	t.Helper()
	rng := rand.New(rand.NewSource(70))
	g := randNet(t, rng, 30, 40, 0.5)
	ps := randPoints(t, rng, g, 5)
	mat := buildMat(t, NewSearcher(g), ps, 2)

	file := &syncCountFile{PagedFile: storage.NewMemFile(storage.DefaultPageSize)}
	jfile := &syncCountFile{PagedFile: storage.NewMemFile(storage.DefaultPageSize)}
	tab := ps.Table()
	pts := make([]PointRecord, len(tab))
	for i, n := range tab {
		if n < 0 {
			pts[i] = PointAbsent
		} else {
			pts[i] = PointRecord{U: n, V: n}
		}
	}
	if err := MatSave(mat, MatKindNode, pts, file); err != nil {
		t.Fatal(err)
	}
	m2, ps2, _, _ := reopenMat(t, file, jfile)
	m2.SetDurable(durable)
	file.syncs, jfile.syncs = 0, 0

	var node graph.NodeID = -1
	for n := 0; n < g.NumNodes(); n++ {
		if _, taken := ps2.PointAt(graph.NodeID(n)); !taken {
			node = graph.NodeID(n)
			break
		}
	}
	if node < 0 {
		t.Fatal("no free node for insertion")
	}
	p, err := ps2.Place(node)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.BeginRepair(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSearcher(g).MatInsert(m2, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := m2.CommitRepair(p, PointRecord{U: node, V: node}); err != nil {
		t.Fatal(err)
	}
	return file.syncs, jfile.syncs
}

// TestMatDurableFsync checks the opt-in durability level syncs the
// journal per appended record and the materialization file on the commit
// flip.
func TestMatDurableFsync(t *testing.T) {
	matSyncs, journalSyncs := runDurableInsert(t, true)
	if journalSyncs == 0 {
		t.Error("durable maintenance issued no journal syncs")
	}
	if matSyncs == 0 {
		t.Error("durable maintenance issued no materialization-file syncs")
	}
}

// TestMatDurableOffNoSync checks the default write-ordering level never
// syncs: durability stays strictly opt-in.
func TestMatDurableOffNoSync(t *testing.T) {
	matSyncs, journalSyncs := runDurableInsert(t, false)
	if matSyncs != 0 || journalSyncs != 0 {
		t.Errorf("write-ordering maintenance issued syncs (mat %d, journal %d), want none", matSyncs, journalSyncs)
	}
}

// TestMatDurableMemFileSafe checks SetDurable is harmless on plain
// MemFile-backed persistence (SyncFile reports success on files with no
// Sync method) and on a materialization with no persistence at all.
func TestMatDurableMemFileSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := randNet(t, rng, 25, 30, 0.5)
	ps := randPoints(t, rng, g, 4)
	mat := buildMat(t, NewSearcher(g), ps, 2)

	// No persistence: must be a no-op, not a nil dereference.
	mat.SetDurable(true)

	m2, ps2, _, _ := persistedMat(t, mat, ps)
	m2.SetDurable(true)
	pts := ps2.Points()
	node, ok := ps2.NodeOf(pts[0])
	if !ok {
		t.Fatalf("point %d has no node", pts[0])
	}
	if err := m2.BeginRepair(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSearcher(g).MatDelete(m2, pts[0], []MatSeed{{Node: node, P: pts[0], D: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := m2.RollbackRepair(); err != nil {
		t.Fatal(err)
	}
	m2.SetDurable(false)
}
