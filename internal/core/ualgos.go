package core

import (
	"math"
	"sort"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/pq"
)

// Public entry points for unrestricted networks. Monochromatic queries use
// the point set as both candidates and competitors; bichromatic queries
// separate the two. Continuous queries take a route of nodes, as in
// Section 5.1 (the experiments of Fig 19 run them on unrestricted
// networks).

// UEagerRkNN answers a monochromatic RkNN query at location q over
// edge-resident points with the eager algorithm (Sections 3.2 + 5.2).
func (s *Searcher) UEagerRkNN(ps points.EdgeView, q Loc, k int) (*Result, error) {
	return s.uEager(ps, ps, true, nil, []Loc{q}, uLocTarget(q), k)
}

// UEagerMRkNN is UEagerRkNN over materialized lists (built with
// SeedsUnrestricted on the same point set).
func (s *Searcher) UEagerMRkNN(ps points.EdgeView, mat *Materialized, q Loc, k int) (*Result, error) {
	if err := checkMatK(mat, k); err != nil {
		return nil, err
	}
	return s.uEager(ps, ps, true, mat, []Loc{q}, uLocTarget(q), k)
}

// ULazyRkNN answers a monochromatic RkNN query with the lazy algorithm.
func (s *Searcher) ULazyRkNN(ps points.EdgeView, q Loc, k int) (*Result, error) {
	return s.uLazy(ps, ps, true, []Loc{q}, uLocTarget(q), k)
}

// ULazyEPRkNN answers a monochromatic RkNN query with lazy-EP.
func (s *Searcher) ULazyEPRkNN(ps points.EdgeView, q Loc, k int) (*Result, error) {
	return s.uLazyEP(ps, ps, true, []Loc{q}, uLocTarget(q), k)
}

// UBruteRkNN is the unrestricted brute-force oracle.
func (s *Searcher) UBruteRkNN(ps points.EdgeView, q Loc, k int) (*Result, error) {
	return s.uBrute(ps, ps, true, uLocTarget(q), k)
}

// UEagerContinuous / ULazyContinuous / ULazyEPContinuous / UEagerMContinuous
// / UBruteContinuous answer continuous RkNN queries over a route of nodes.
func (s *Searcher) UEagerContinuous(ps points.EdgeView, route []graph.NodeID, k int) (*Result, error) {
	return s.uEager(ps, ps, true, nil, nodeLocs(route), uRouteTarget(route), k)
}

func (s *Searcher) UEagerMContinuous(ps points.EdgeView, mat *Materialized, route []graph.NodeID, k int) (*Result, error) {
	if err := checkMatK(mat, k); err != nil {
		return nil, err
	}
	return s.uEager(ps, ps, true, mat, nodeLocs(route), uRouteTarget(route), k)
}

func (s *Searcher) ULazyContinuous(ps points.EdgeView, route []graph.NodeID, k int) (*Result, error) {
	return s.uLazy(ps, ps, true, nodeLocs(route), uRouteTarget(route), k)
}

func (s *Searcher) ULazyEPContinuous(ps points.EdgeView, route []graph.NodeID, k int) (*Result, error) {
	return s.uLazyEP(ps, ps, true, nodeLocs(route), uRouteTarget(route), k)
}

func (s *Searcher) UBruteContinuous(ps points.EdgeView, route []graph.NodeID, k int) (*Result, error) {
	return s.uBrute(ps, ps, true, uRouteTarget(route), k)
}

// UEagerBichromatic / ULazyBichromatic / ULazyEPBichromatic /
// UEagerMBichromatic / UBruteBichromatic answer bichromatic queries: cands
// are classified against the competitor set sites (mat, when used, must be
// built over sites).
func (s *Searcher) UEagerBichromatic(cands, sites points.EdgeView, q Loc, k int) (*Result, error) {
	return s.uEager(cands, sites, false, nil, []Loc{q}, uLocTarget(q), k)
}

func (s *Searcher) UEagerMBichromatic(cands, sites points.EdgeView, mat *Materialized, q Loc, k int) (*Result, error) {
	if err := checkMatK(mat, k); err != nil {
		return nil, err
	}
	return s.uEager(cands, sites, false, mat, []Loc{q}, uLocTarget(q), k)
}

func (s *Searcher) ULazyBichromatic(cands, sites points.EdgeView, q Loc, k int) (*Result, error) {
	return s.uLazy(cands, sites, false, []Loc{q}, uLocTarget(q), k)
}

func (s *Searcher) ULazyEPBichromatic(cands, sites points.EdgeView, q Loc, k int) (*Result, error) {
	return s.uLazyEP(cands, sites, false, []Loc{q}, uLocTarget(q), k)
}

func (s *Searcher) UBruteBichromatic(cands, sites points.EdgeView, q Loc, k int) (*Result, error) {
	return s.uBrute(cands, sites, false, uLocTarget(q), k)
}

func nodeLocs(route []graph.NodeID) []Loc {
	out := make([]Loc, len(route))
	for i, n := range route {
		out[i] = NodeLoc(n)
	}
	return out
}

func (s *Searcher) checkUQuery(cands points.EdgeView, sources []Loc, k int, buf *[]graph.Edge) error {
	if k < 1 {
		return errKTooSmall(k)
	}
	if len(sources) == 0 {
		return errEmptySources()
	}
	for _, l := range sources {
		if err := s.checkULoc(l, buf); err != nil {
			return err
		}
	}
	return nil
}

// uEager is the eager algorithm over unrestricted networks, optionally
// consulting materialized lists (eager-M). The main traversal discovers
// candidate points as first-class heap entries when their edges are
// processed — including the points on the query's own edge, seeded directly
// — which guarantees every potential result is met regardless of how far it
// lies from its edge's endpoints (see DESIGN.md on the discovery scheme).
func (s *Searcher) uEager(cands, sites points.EdgeView, mono bool, mat *Materialized, sources []Loc, target uTargetSpec, k int) (*Result, error) {
	var st Stats
	var adjCheck []graph.Edge
	if err := s.checkUQuery(cands, sources, k, &adjCheck); err != nil {
		return nil, err
	}
	w := s.newUWalk()
	defer s.closeUWalk(&st, w)
	var adj []graph.Edge
	var refs []points.EdgePointRef
	verified := make(map[points.PointID]bool)
	var results []points.PointID

	for _, src := range sources {
		if err := w.seedFromLoc(s, src, &adj); err != nil {
			return nil, err
		}
		if !src.IsNode() {
			var err error
			refs, err = cands.PointsOn(src.U, src.V, refs)
			if err != nil {
				return nil, err
			}
			for _, ref := range refs {
				w.pushPoint(uSetCand, ref.ID, math.Abs(ref.Pos-src.Pos))
			}
		}
	}

	var probe []PointDist
	var lst, plst []MatEntry
	verifyCandidate := func(p points.PointID, ub float64) error {
		if verified[p] {
			return nil
		}
		verified[p] = true
		self := points.NoPoint
		if mono {
			self = p
		}
		loc, ok := cands.Loc(p)
		if !ok {
			return nil
		}
		var member bool
		var err error
		if mat != nil {
			member, err = s.uVerifyWithMat(&st, sites, self, mat, PointLoc(loc), target, k, ub, &plst, &refs)
		} else {
			member, err = s.uVerify(&st, sites, self, PointLoc(loc), target, k, ub)
		}
		if err != nil {
			return err
		}
		if member {
			results = s.confirm(results, p)
		}
		return nil
	}

	for {
		ent, d, ok := w.pop()
		if !ok {
			break
		}
		switch ent.kind {
		case uKindPoint:
			if err := verifyCandidate(ent.p, d); err != nil {
				return execResult(results, st, err)
			}
		case uKindNode:
			n := ent.node
			st.NodesExpanded++
			if err := s.checkExec(&st); err != nil {
				return execResult(results, st, err)
			}
			closer := 0
			if mat != nil {
				var err error
				lst, err = mat.List(n, lst)
				if err != nil {
					return nil, err
				}
				st.MatReads++
				dStrict := strictBound(d)
				for _, e := range lst {
					if e.D >= dStrict || closer >= k {
						break
					}
					if _, visible := sites.Loc(e.P); !visible {
						continue
					}
					closer++
					if mono {
						if err := verifyCandidate(e.P, d+e.D); err != nil {
							return nil, err
						}
					}
				}
			} else {
				var err error
				probe, err = s.uRangeNN(&st, sites, NodeLoc(n), k, d, probe)
				if err != nil {
					return nil, err
				}
				closer = len(probe)
				if mono {
					for _, pd := range probe {
						if err := verifyCandidate(pd.P, d+pd.D); err != nil {
							return nil, err
						}
					}
				}
			}
			if closer >= k {
				continue // Lemma 1 prune: no node or point pushes
			}
			var err error
			adj, err = s.g.Adjacency(n, adj)
			if err != nil {
				return nil, err
			}
			if err := s.pushAdjacentPoints(w, cands, uSetCand, n, d, adj, math.Inf(1), &refs); err != nil {
				return nil, err
			}
			for _, edge := range adj {
				w.pushNode(edge.To, d+edge.W)
			}
		}
	}
	return finishResult(results, st), nil
}

// uVerifyWithMat verifies an edge-resident candidate with the materialized
// shortcut: the k-th competitor radius of p is lower-bounded by merging the
// endpoint lists with the direct same-edge competitors (Section 5.2: "the
// kNNs of a point p lying on edge n_i n_j can be computed from kNN(n_i),
// kNN(n_j)"); a full verification runs only when the bound is inconclusive.
func (s *Searcher) uVerifyWithMat(st *Stats, sites points.EdgeView, self points.PointID, mat *Materialized, from Loc, target uTargetSpec, k int, ub float64, plst *[]MatEntry, refs *[]points.EdgePointRef) (bool, error) {
	var adj []graph.Edge
	wEdge, err := s.edgeWeight(from.U, from.V, &adj)
	if err != nil {
		return false, err
	}
	best := make(map[points.PointID]float64)
	consider := func(p points.PointID, d float64) {
		if p == self {
			return
		}
		if old, ok := best[p]; !ok || d < old {
			best[p] = d
		}
	}
	floor := math.Inf(1)
	//lint:ignore vetrnn/execpoll fixed two-iteration endpoint loop inside one verification; the query loop driving it polls
	for side := 0; side < 2; side++ {
		node, off := from.U, from.Pos
		if side == 1 {
			node, off = from.V, wEdge-from.Pos
		}
		*plst, err = mat.List(node, *plst)
		if err != nil {
			return false, err
		}
		st.MatReads++
		for _, e := range *plst {
			if _, ok := sites.Loc(e.P); !ok {
				continue
			}
			consider(e.P, off+e.D)
		}
		if len(*plst) == mat.cap {
			// Truncated list: unseen competitors via this endpoint are at
			// least as far as its last entry.
			if f := off + (*plst)[len(*plst)-1].D; f < floor {
				floor = f
			}
		}
	}
	*refs, err = sites.PointsOn(from.U, from.V, *refs)
	if err != nil {
		return false, err
	}
	for _, ref := range *refs {
		consider(ref.ID, math.Abs(ref.Pos-from.Pos))
	}
	dists := make([]float64, 0, len(best))
	for _, d := range best {
		dists = append(dists, d)
	}
	sort.Float64s(dists)
	rk := math.Inf(1)
	if len(dists) >= k {
		rk = dists[k-1]
	}
	if floor < rk {
		rk = floor
	}
	if upperBound(ub) <= strictBound(rk) || math.IsInf(rk, 1) {
		return true, nil
	}
	return s.uVerify(st, sites, self, from, target, k, ub)
}

// uLazy is the lazy algorithm over unrestricted networks: pruning occurs
// during edge processing (an edge carrying k competitors is not crossed)
// and through the counter side effects of verification expansions, as in
// the restricted case.
func (s *Searcher) uLazy(cands, sites points.EdgeView, mono bool, sources []Loc, target uTargetSpec, k int) (*Result, error) {
	var st Stats
	var adjCheck []graph.Edge
	if err := s.checkUQuery(cands, sources, k, &adjCheck); err != nil {
		return nil, err
	}
	w := s.newUWalk()
	defer s.closeUWalk(&st, w)
	counts := s.acquireCounts()
	defer s.releaseCounts(counts)
	children := make(map[graph.NodeID][]*pq.Item[uEntry])

	var adj []graph.Edge
	var refs []points.EdgePointRef
	verified := make(map[points.PointID]bool)
	classified := make(map[points.PointID]bool)
	var results []points.PointID

	for _, src := range sources {
		if err := w.seedFromLoc(s, src, &adj); err != nil {
			return nil, err
		}
		if !src.IsNode() {
			var err error
			refs, err = cands.PointsOn(src.U, src.V, refs)
			if err != nil {
				return nil, err
			}
			for _, ref := range refs {
				w.pushPoint(uSetCand, ref.ID, math.Abs(ref.Pos-src.Pos))
			}
			if !mono {
				refs, err = sites.PointsOn(src.U, src.V, refs)
				if err != nil {
					return nil, err
				}
				for _, ref := range refs {
					w.pushPoint(uSetSite, ref.ID, math.Abs(ref.Pos-src.Pos))
				}
			}
		}
	}

	for {
		ent, d, ok := w.pop()
		if !ok {
			break
		}
		switch ent.kind {
		case uKindPoint:
			if mono || ent.set == uSetSite {
				p := ent.p
				if !verified[p] {
					verified[p] = true
					loc, ok := sites.Loc(p)
					if ok {
						member, err := s.uLazyVerify(&st, sites, p, PointLoc(loc), target, k, d, w, counts, children)
						if err != nil {
							return execResult(results, st, err)
						}
						if mono && member {
							results = s.confirm(results, p)
						}
					}
				}
			} else {
				p := ent.p
				if !classified[p] {
					classified[p] = true
					loc, ok := cands.Loc(p)
					if ok {
						member, err := s.uVerify(&st, sites, points.NoPoint, PointLoc(loc), target, k, d)
						if err != nil {
							return execResult(results, st, err)
						}
						if member {
							results = s.confirm(results, p)
						}
					}
				}
			}
		case uKindNode:
			n := ent.node
			st.NodesExpanded++
			if err := s.checkExec(&st); err != nil {
				return execResult(results, st, err)
			}
			if counts.get(n) >= int32(k) {
				continue
			}
			var err error
			adj, err = s.g.Adjacency(n, adj)
			if err != nil {
				return nil, err
			}
			var kids []*pq.Item[uEntry]
			for _, edge := range adj {
				// Surface the points of this edge.
				refs, err = cands.PointsOn(n, edge.To, refs)
				if err != nil {
					return nil, err
				}
				for _, ref := range refs {
					off := ref.Pos
					if n > edge.To {
						off = edge.W - ref.Pos
					}
					w.pushPoint(uSetCand, ref.ID, d+off)
				}
				siteCount := 0
				if mono {
					siteCount = len(refs)
				} else {
					refs, err = sites.PointsOn(n, edge.To, refs)
					if err != nil {
						return nil, err
					}
					siteCount = len(refs)
					for _, ref := range refs {
						off := ref.Pos
						if n > edge.To {
							off = edge.W - ref.Pos
						}
						w.pushPoint(uSetSite, ref.ID, d+off)
					}
				}
				// Edge-crossing rule (Section 5.2): entering edge.To via
				// this edge passes all its competitors; with k of them the
				// far endpoint cannot lead to results along this path.
				if siteCount >= k {
					continue
				}
				if h := w.pushNode(edge.To, d+edge.W); h != nil {
					kids = append(kids, h)
				}
			}
			if kids != nil {
				children[n] = kids
			}
		}
	}
	return finishResult(results, st), nil
}

// uLazyVerify runs a verification expansion for point self (an upper bound
// e away from the query) and applies the lazy pruning side effects to the
// main walk.
func (s *Searcher) uLazyVerify(st *Stats, sites points.EdgeView, self points.PointID, from Loc, target uTargetSpec, k int, e float64, main *uWalk, counts *lazyCounts, children map[graph.NodeID][]*pq.Item[uEntry]) (bool, error) {
	st.Verifications++
	// eX bounds the expansion; eStrict gates the counter side effects.
	eX, eStrict := upperBound(e), strictBound(e)
	w := s.newUWalk()
	defer s.closeUWalk(st, w)
	var adj []graph.Edge
	if err := w.seedFromLoc(s, from, &adj); err != nil {
		return false, err
	}
	var refs []points.EdgePointRef
	if !from.IsNode() {
		var err error
		refs, err = sites.PointsOn(from.U, from.V, refs)
		if err != nil {
			return false, err
		}
		for _, ref := range refs {
			if dd := math.Abs(ref.Pos - from.Pos); dd <= eX {
				w.pushPoint(uSetSite, ref.ID, dd)
			}
		}
		if target.nodes == nil && target.loc.sameEdge(from) {
			if dd := math.Abs(target.loc.Pos - from.Pos); dd <= eX {
				w.pushTarget(dd)
			}
		}
	}
	targetEdgeW := -1.0
	done := make(map[points.PointID]bool)
	strictCount, sameCount := 0, 0
	lastDist := 0.0
	for {
		ent, dm, ok := w.pop()
		if !ok {
			return false, nil
		}
		if dm > lastDist {
			strictCount += sameCount
			sameCount = 0
			lastDist = dm
		}
		if strictCount >= k {
			return false, nil
		}
		switch ent.kind {
		case uKindTarget:
			return true, nil
		case uKindPoint:
			if done[ent.p] {
				continue
			}
			done[ent.p] = true
			if ent.p != self {
				sameCount++
			}
		case uKindNode:
			m := ent.node
			st.NodesScanned++
			if err := s.checkExecStride(st); err != nil {
				return false, err
			}
			if target.nodeHit(m) {
				return true, nil
			}
			// Lazy pruning side effects (Section 3.3 generalized).
			eligible := false
			if main.sc.isClosed(m) {
				eligible = dm < strictBound(main.sc.dist[m])
			} else {
				eligible = dm < eStrict
			}
			if eligible {
				if c := counts.add(m); c == int32(k) && main.sc.isClosed(m) {
					for _, h := range children[m] {
						main.heap.Remove(h)
					}
					delete(children, m)
				}
			}
			if target.nodes == nil && !target.loc.IsNode() {
				if m == target.loc.U || m == target.loc.V {
					if targetEdgeW < 0 {
						var err error
						targetEdgeW, err = s.edgeWeight(target.loc.U, target.loc.V, &adj)
						if err != nil {
							return false, err
						}
					}
					off := target.loc.Pos
					if m == target.loc.V {
						off = targetEdgeW - target.loc.Pos
					}
					if nd := dm + off; nd <= eX {
						w.pushTarget(nd)
					}
				}
			}
			var err error
			adj, err = s.g.Adjacency(m, adj)
			if err != nil {
				return false, err
			}
			if err := s.pushAdjacentPoints(w, sites, uSetSite, m, dm, adj, eX, &refs); err != nil {
				return false, err
			}
			for _, edge := range adj {
				if nd := dm + edge.W; nd <= eX {
					w.pushNode(edge.To, nd)
				}
			}
		}
	}
}

// uLazyEP is lazy-EP over unrestricted networks: the second heap expands
// around discovered competitors from both endpoints of their edges and
// marks dominated nodes, replacing counter-based pruning.
func (s *Searcher) uLazyEP(cands, sites points.EdgeView, mono bool, sources []Loc, target uTargetSpec, k int) (*Result, error) {
	var st Stats
	var adjCheck []graph.Edge
	if err := s.checkUQuery(cands, sources, k, &adjCheck); err != nil {
		return nil, err
	}
	w := s.newUWalk()
	defer s.closeUWalk(&st, w)

	found := make(map[graph.NodeID][]PointDist)
	var hp pq.Heap[matHeapEntry]
	var hpAdj []graph.Edge
	advanceHP := func(limit float64) error {
		for {
			top, ok := hp.Peek()
			if !ok || top.Priority() >= limit {
				return nil
			}
			e, d, _ := hp.Pop()
			st.NodesScanned++
			if err := s.checkExecStride(&st); err != nil {
				return err
			}
			lst := found[e.node]
			if !insertFound(&lst, e.p, d, k) {
				continue
			}
			found[e.node] = lst
			var err error
			hpAdj, err = s.g.Adjacency(e.node, hpAdj)
			if err != nil {
				return err
			}
			for _, edge := range hpAdj {
				nd := d + edge.W
				if tgt := found[edge.To]; len(tgt) == k && !entryLess(nd, e.p, tgt[k-1].D, tgt[k-1].P) {
					continue
				}
				hp.Push(matHeapEntry{edge.To, e.p}, nd)
			}
		}
	}
	var adj []graph.Edge
	var refs []points.EdgePointRef
	seedHP := func(p points.PointID) error {
		loc, ok := sites.Loc(p)
		if !ok {
			return nil
		}
		wEdge, err := s.edgeWeight(loc.U, loc.V, &adj)
		if err != nil {
			return err
		}
		hp.Push(matHeapEntry{loc.U, p}, loc.Pos)
		hp.Push(matHeapEntry{loc.V, p}, wEdge-loc.Pos)
		return nil
	}

	verified := make(map[points.PointID]bool)
	classified := make(map[points.PointID]bool)
	var results []points.PointID

	for _, src := range sources {
		if err := w.seedFromLoc(s, src, &adj); err != nil {
			return nil, err
		}
		if !src.IsNode() {
			var err error
			refs, err = cands.PointsOn(src.U, src.V, refs)
			if err != nil {
				return nil, err
			}
			for _, ref := range refs {
				w.pushPoint(uSetCand, ref.ID, math.Abs(ref.Pos-src.Pos))
			}
			if !mono {
				refs, err = sites.PointsOn(src.U, src.V, refs)
				if err != nil {
					return nil, err
				}
				for _, ref := range refs {
					w.pushPoint(uSetSite, ref.ID, math.Abs(ref.Pos-src.Pos))
				}
			}
		}
	}

	for {
		if top, ok := w.heap.Peek(); ok {
			if err := advanceHP(top.Priority()); err != nil {
				return execResult(results, st, err)
			}
		}
		ent, d, ok := w.pop()
		if !ok {
			break
		}
		switch ent.kind {
		case uKindPoint:
			if mono || ent.set == uSetSite {
				p := ent.p
				if !verified[p] {
					verified[p] = true
					if err := seedHP(p); err != nil {
						return nil, err
					}
					if mono {
						loc, ok := cands.Loc(p)
						if ok {
							member, err := s.epClassify(&st, found, sites, p, p, loc, target, k, d, &adj)
							if err != nil {
								return execResult(results, st, err)
							}
							if member {
								results = s.confirm(results, p)
							}
						}
					}
				}
			} else {
				p := ent.p
				if !classified[p] {
					classified[p] = true
					loc, ok := cands.Loc(p)
					if ok {
						member, err := s.epClassify(&st, found, sites, points.NoPoint, p, loc, target, k, d, &adj)
						if err != nil {
							return execResult(results, st, err)
						}
						if member {
							results = s.confirm(results, p)
						}
					}
				}
			}
		case uKindNode:
			n := ent.node
			st.NodesExpanded++
			if err := s.checkExec(&st); err != nil {
				return execResult(results, st, err)
			}
			lst := found[n]
			if len(lst) >= k && lst[k-1].D < strictBound(d) {
				continue // dominated by k discovered competitors
			}
			var err error
			adj, err = s.g.Adjacency(n, adj)
			if err != nil {
				return nil, err
			}
			for _, edge := range adj {
				refs, err = cands.PointsOn(n, edge.To, refs)
				if err != nil {
					return nil, err
				}
				for _, ref := range refs {
					off := ref.Pos
					if n > edge.To {
						off = edge.W - ref.Pos
					}
					w.pushPoint(uSetCand, ref.ID, d+off)
				}
				siteCount := 0
				if mono {
					siteCount = len(refs)
				} else {
					refs, err = sites.PointsOn(n, edge.To, refs)
					if err != nil {
						return nil, err
					}
					siteCount = len(refs)
					for _, ref := range refs {
						off := ref.Pos
						if n > edge.To {
							off = edge.W - ref.Pos
						}
						w.pushPoint(uSetSite, ref.ID, d+off)
					}
				}
				if siteCount >= k {
					continue
				}
				w.pushNode(edge.To, d+edge.W)
			}
		}
	}
	st.HeapPushes += int64(hp.PushCount)
	st.HeapPops += int64(hp.PopCount)
	return finishResult(results, st), nil
}

// epClassify decides membership of a discovered candidate in lazy-EP,
// first trying to reject it from the H' marks of its edge's endpoints: a
// competitor recorded at distance D from endpoint a bounds its distance to
// the candidate by D + dL(a, p). The candidate's pop distance ub equals
// d(p, target) exactly whenever p is a true member (its discovery path is
// never pruned), so counting k distinct competitors with bounds strictly
// below ub can only reject non-members — this is how lazy-EP issues fewer
// verification queries (Section 4.2). Inconclusive candidates fall back to
// a verification query.
func (s *Searcher) epClassify(st *Stats, found map[graph.NodeID][]PointDist, sites points.EdgeView, self, p points.PointID, loc points.EdgePoint, target uTargetSpec, k int, ub float64, adj *[]graph.Edge) (bool, error) {
	w, err := s.edgeWeight(loc.U, loc.V, adj)
	if err != nil {
		return false, err
	}
	ubStrict := strictBound(ub)
	closer := 0
	var counted map[points.PointID]bool
	for side := 0; side < 2; side++ {
		node, off := loc.U, loc.Pos
		if side == 1 {
			node, off = loc.V, w-loc.Pos
		}
		for _, f := range found[node] {
			if f.P == p || counted[f.P] {
				continue
			}
			if f.D+off < ubStrict {
				if counted == nil {
					counted = make(map[points.PointID]bool, k)
				}
				counted[f.P] = true
				closer++
				if closer >= k {
					return false, nil
				}
			}
		}
	}
	return s.uVerify(st, sites, self, PointLoc(loc), target, k, ub)
}

// uBrute verifies every candidate with an unbounded expansion.
func (s *Searcher) uBrute(cands, sites points.EdgeView, mono bool, target uTargetSpec, k int) (*Result, error) {
	var st Stats
	if k < 1 {
		return nil, errKTooSmall(k)
	}
	var results []points.PointID
	for _, p := range cands.Points() {
		// One candidate's verification is one expansion step of the
		// brute-force strategy.
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		loc, ok := cands.Loc(p)
		if !ok {
			continue
		}
		self := points.NoPoint
		if mono {
			self = p
		}
		member, err := s.uVerify(&st, sites, self, PointLoc(loc), target, k, math.Inf(1))
		if err != nil {
			return execResult(results, st, err)
		}
		if member {
			results = s.confirm(results, p)
		}
	}
	return finishResult(results, st), nil
}
