package core

import (
	"math"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// nodeTarget identifies the query location(s) a verification expansion must
// reach: a single node for ordinary queries, or any node of a route for
// continuous queries (Section 5.1: a point is a result if the route is met
// before k closer points).
type nodeTarget struct {
	single graph.NodeID
	multi  map[graph.NodeID]bool
}

func singleTarget(n graph.NodeID) nodeTarget { return nodeTarget{single: n} }

func routeTarget(route []graph.NodeID) nodeTarget {
	m := make(map[graph.NodeID]bool, len(route))
	for _, n := range route {
		m[n] = true
	}
	return nodeTarget{multi: m}
}

func (t nodeTarget) hit(n graph.NodeID) bool {
	if t.multi != nil {
		return t.multi[n]
	}
	return t.single == n
}

// rangeNN implements range-NN(n, k, e) from Section 3.1: the k nearest data
// points of ps with network distance *strictly smaller* than e from n,
// appended to out in ascending distance order. Fewer than k points are
// returned when no more exist within the range.
func (s *Searcher) rangeNN(st *Stats, ps points.NodeView, n graph.NodeID, k int, e float64, out []PointDist) ([]PointDist, error) {
	st.RangeNN++
	out = out[:0]
	if e <= 0 || k <= 0 {
		return out, nil
	}
	e = strictBound(e)
	sc := s.acquire()
	defer func() { s.harvest(st, sc); s.release(sc) }()
	sc.begin()
	sc.push(n, 0)
	for {
		m, d, ok := sc.pop()
		if !ok || d >= e {
			break
		}
		st.NodesScanned++
		if err := s.checkExecStride(st); err != nil {
			return out, err
		}
		if p, has := ps.PointAt(m); has {
			out = append(out, PointDist{P: p, D: d})
			if len(out) >= k {
				break
			}
		}
		var err error
		sc.adj, err = s.g.Adjacency(m, sc.adj)
		if err != nil {
			return out, err
		}
		for _, edge := range sc.adj {
			if nd := d + edge.W; nd < e {
				sc.push(edge.To, nd)
			}
		}
	}
	return out, nil
}

// verify implements verify(p, k, q) from Section 3.1, generalized to serve
// every variant in the package: it expands the network around the candidate
// location (node start) and reports whether the target is met before k
// points of sites are found strictly closer. self is skipped during
// counting (the candidate itself in monochromatic queries; points.NoPoint
// for bichromatic ones). ub bounds the expansion; it must be an upper bound
// on the candidate-to-target distance, or +Inf for an oracle query.
//
// Counting is exact under ties: a site at exactly the candidate-to-target
// distance does not count against membership, regardless of heap pop order.
func (s *Searcher) verify(st *Stats, sites points.NodeView, self points.PointID, start graph.NodeID, target nodeTarget, k int, ub float64) (bool, error) {
	st.Verifications++
	sc := s.acquire()
	defer func() { s.harvest(st, sc); s.release(sc) }()
	sc.begin()
	sc.push(start, 0)
	ub = upperBound(ub)

	strictCount := 0 // sites strictly closer than the current pop distance
	sameCount := 0   // sites at exactly the current pop distance
	lastDist := 0.0
	for {
		m, d, ok := sc.pop()
		if !ok {
			return false, nil // target unreachable within ub
		}
		st.NodesScanned++
		if err := s.checkExecStride(st); err != nil {
			return false, err
		}
		if d > lastDist {
			strictCount += sameCount
			sameCount = 0
			lastDist = d
		}
		if strictCount >= k {
			return false, nil
		}
		if target.hit(m) {
			return true, nil
		}
		if p, has := sites.PointAt(m); has && p != self {
			sameCount++
		}
		var err error
		sc.adj, err = s.g.Adjacency(m, sc.adj)
		if err != nil {
			return false, err
		}
		for _, edge := range sc.adj {
			if nd := d + edge.W; nd <= ub {
				sc.push(edge.To, nd)
			}
		}
	}
}

// distance computes the exact network distance between two nodes with a
// plain Dijkstra expansion; it returns +Inf when disconnected. Used by
// tests and tooling, not by the query algorithms.
func (s *Searcher) distance(from, to graph.NodeID) (float64, error) {
	sc := s.acquire()
	defer s.release(sc)
	sc.begin()
	sc.push(from, 0)
	var st Stats
	for {
		m, d, ok := sc.pop()
		if !ok {
			return math.Inf(1), nil
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return 0, err
		}
		if m == to {
			return d, nil
		}
		var err error
		sc.adj, err = s.g.Adjacency(m, sc.adj)
		if err != nil {
			return 0, err
		}
		for _, edge := range sc.adj {
			sc.push(edge.To, d+edge.W)
		}
	}
}
