package core

import (
	"fmt"
	"math"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// EagerMRkNN answers a monochromatic RkNN query with eager-M (Section 4.1):
// the eager traversal consults the materialized lists instead of issuing
// range-NN sub-queries, and verification of a discovered point p first tries
// the materialized shortcut — if the upper bound d(q,n)+d(n,p) is within the
// k-th NN radius of p, p is accepted without any expansion; otherwise a
// regular verification query runs.
//
// mat must have been built over the same point set that backs ps (ps may
// hide points, e.g. the query-co-located one; hidden points are skipped when
// lists are read — the spare K+1-th entry compensates).
func (s *Searcher) EagerMRkNN(ps points.NodeView, mat *Materialized, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	if err := checkMatK(mat, k); err != nil {
		return nil, err
	}
	return s.eagerM(ps, mat, []graph.NodeID{qnode}, singleTarget(qnode), k)
}

// EagerMContinuous is the continuous (route) variant of EagerMRkNN.
func (s *Searcher) EagerMContinuous(ps points.NodeView, mat *Materialized, route []graph.NodeID, k int) (*Result, error) {
	if err := s.checkRoute(route, k); err != nil {
		return nil, err
	}
	if err := checkMatK(mat, k); err != nil {
		return nil, err
	}
	return s.eagerM(ps, mat, route, routeTarget(route), k)
}

func checkMatK(mat *Materialized, k int) error {
	if mat == nil {
		return fmt.Errorf("core: nil materialized lists")
	}
	if k > mat.MaxK() {
		return fmt.Errorf("core: k=%d exceeds materialized K=%d", k, mat.MaxK())
	}
	return nil
}

func (s *Searcher) eagerM(ps points.NodeView, mat *Materialized, sources []graph.NodeID, target nodeTarget, k int) (*Result, error) {
	var st Stats
	main := s.acquire()
	defer func() { s.harvest(&st, main); s.release(main) }()
	main.begin()

	verified := make(map[points.PointID]bool)
	var results []points.PointID
	for _, src := range sources {
		if p, ok := ps.PointAt(src); ok && !verified[p] {
			verified[p] = true
			results = s.confirm(results, p)
		}
		main.push(src, 0)
	}

	var lst, plst []MatEntry
	for {
		n, d, ok := main.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		var err error
		lst, err = mat.List(n, lst)
		if err != nil {
			return nil, err
		}
		st.MatReads++
		// The visible entries strictly closer to n than the query are
		// exactly what range-NN(n, k, d) would discover.
		closer := 0
		dStrict := strictBound(d)
		for _, e := range lst {
			if closer >= k || e.D >= dStrict {
				break
			}
			if _, visible := ps.NodeOf(e.P); !visible {
				continue
			}
			closer++
			if verified[e.P] {
				continue
			}
			verified[e.P] = true
			member, err := s.verifyWithMat(&st, ps, mat, e.P, target, k, d+e.D, &plst)
			if err != nil {
				return execResult(results, st, err)
			}
			if member {
				results = s.confirm(results, e.P)
			}
		}
		if closer >= k {
			continue // Lemma 1 prune
		}
		if main.adj, err = s.g.Adjacency(n, main.adj); err != nil {
			return nil, err
		}
		for _, e := range main.adj {
			main.push(e.To, d+e.W)
		}
	}
	return finishResult(results, st), nil
}

// verifyWithMat verifies candidate p using the materialized shortcut: if
// the upper bound ub on the candidate-to-query distance is within p's k-th
// NN radius (read from the list of p's node, skipping p itself and hidden
// points), p is a member without expansion; otherwise fall back to a
// verification query.
func (s *Searcher) verifyWithMat(st *Stats, ps points.NodeView, mat *Materialized, p points.PointID, target nodeTarget, k int, ub float64, plst *[]MatEntry) (bool, error) {
	pnode, ok := ps.NodeOf(p)
	if !ok {
		return false, fmt.Errorf("core: candidate point %d has no node", p)
	}
	var err error
	*plst, err = mat.List(pnode, *plst)
	if err != nil {
		return false, err
	}
	st.MatReads++
	rk := math.Inf(1)
	seen := 0
	for _, e := range *plst {
		if e.P == p {
			continue
		}
		if _, visible := ps.NodeOf(e.P); !visible {
			continue
		}
		seen++
		if seen == k {
			rk = e.D
			break
		}
	}
	if seen < k && len(*plst) == mat.cap {
		// The list is truncated and exposes fewer than k other visible
		// entries (self plus a hidden point consumed slots); any point
		// beyond the list is at least as far as the last stored entry,
		// which therefore lower-bounds the k-th NN radius.
		rk = (*plst)[len(*plst)-1].D
	}
	if upperBound(ub) <= strictBound(rk) || rk == math.Inf(1) {
		// Fewer than k points can be strictly closer to p than the query.
		return true, nil
	}
	return s.verify(st, ps, p, pnode, target, k, ub)
}
