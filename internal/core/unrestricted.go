package core

import (
	"fmt"
	"math"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/pq"
)

// Unrestricted networks (Section 5.2): data points — and queries — may lie
// anywhere on the edges of the graph. A position is a triplet <n_i, n_j,
// pos> with lexicographic node ordering; the network distance between two
// positions is the minimum over the routes through either endpoint, and,
// for positions on the same edge, the direct offset difference.
//
// All traversals in this file run over a single heap holding three entry
// kinds: graph nodes (labelled Dijkstra-style through the scratch arrays),
// point arrivals (a point on an adjacent edge of a popped node, or on the
// source's own edge), and target arrivals (the query location). Because a
// point's entries are pushed from both endpoints of its edge (and directly
// when it shares the source's edge), the first pop of a point carries the
// exact minimum distance — the observation Fig 14 illustrates with the two
// bounds for d(q,p3).

// Loc is a location on the network: a node (U == V, Pos == 0) or a position
// on edge (U,V), U < V, at offset Pos from U.
type Loc struct {
	U, V graph.NodeID
	Pos  float64
}

// NodeLoc returns the location of node n.
func NodeLoc(n graph.NodeID) Loc { return Loc{U: n, V: n} }

// PointLoc converts an edge point location.
func PointLoc(ep points.EdgePoint) Loc { return Loc{U: ep.U, V: ep.V, Pos: ep.Pos} }

// IsNode reports whether the location is a graph node.
func (l Loc) IsNode() bool { return l.U == l.V }

// sameEdge reports whether two locations lie on the same edge.
func (l Loc) sameEdge(o Loc) bool {
	return !l.IsNode() && l.U == o.U && l.V == o.V
}

func (l Loc) String() string {
	if l.IsNode() {
		return fmt.Sprintf("node(%d)", l.U)
	}
	return fmt.Sprintf("edge(%d,%d)@%.3f", l.U, l.V, l.Pos)
}

// uTargetSpec describes what a verification expansion must reach: the query
// location, or any node of a route for continuous queries.
type uTargetSpec struct {
	loc   Loc
	nodes map[graph.NodeID]bool // route mode when non-nil
}

func uLocTarget(l Loc) uTargetSpec { return uTargetSpec{loc: l} }

func uRouteTarget(route []graph.NodeID) uTargetSpec {
	m := make(map[graph.NodeID]bool, len(route))
	for _, n := range route {
		m[n] = true
	}
	return uTargetSpec{nodes: m}
}

// nodeHit reports whether popping node n reaches the target directly.
func (t uTargetSpec) nodeHit(n graph.NodeID) bool {
	if t.nodes != nil {
		return t.nodes[n]
	}
	return t.loc.IsNode() && t.loc.U == n
}

const (
	uKindNode uint8 = iota
	uKindPoint
	uKindTarget
)

const (
	uSetCand uint8 = iota
	uSetSite
)

type uEntry struct {
	kind uint8
	set  uint8
	node graph.NodeID
	p    points.PointID
}

// uWalk is a unified traversal: node labels live in a scratch, while point
// and target arrivals ride the same heap as plain entries (de-duplicated at
// pop time by the caller).
type uWalk struct {
	sc   *scratch
	heap pq.Heap[uEntry]
}

func (s *Searcher) newUWalk() *uWalk {
	sc := s.acquire()
	sc.begin()
	return &uWalk{sc: sc}
}

func (s *Searcher) closeUWalk(st *Stats, w *uWalk) {
	st.HeapPushes += int64(w.heap.PushCount)
	st.HeapPops += int64(w.heap.PopCount)
	s.harvest(st, w.sc) // scratch heap unused, but harvest keeps counters tidy
	s.release(w.sc)
}

func (w *uWalk) pushNode(n graph.NodeID, d float64) *pq.Item[uEntry] {
	if w.sc.isClosed(n) {
		return nil
	}
	if w.sc.isSeen(n) && w.sc.dist[n] <= d {
		return nil
	}
	w.sc.seen[n] = w.sc.epoch
	w.sc.dist[n] = d
	return w.heap.Push(uEntry{kind: uKindNode, node: n}, d)
}

func (w *uWalk) pushPoint(set uint8, p points.PointID, d float64) {
	w.heap.Push(uEntry{kind: uKindPoint, set: set, p: p}, d)
}

func (w *uWalk) pushTarget(d float64) {
	w.heap.Push(uEntry{kind: uKindTarget}, d)
}

// pop returns the next entry in distance order, closing node entries and
// skipping stale ones.
func (w *uWalk) pop() (uEntry, float64, bool) {
	//lint:ignore vetrnn/execpoll in-memory drain of stale heap entries; callers poll per popped entry
	for {
		e, d, ok := w.heap.Pop()
		if !ok {
			return uEntry{}, 0, false
		}
		if e.kind == uKindNode {
			if w.sc.isClosed(e.node) {
				continue
			}
			w.sc.close(e.node)
		}
		return e, d, true
	}
}

// edgeWeight resolves the weight of edge (u,v) with an adjacency read
// (counted I/O, like any edge processing).
func (s *Searcher) edgeWeight(u, v graph.NodeID, buf *[]graph.Edge) (float64, error) {
	var err error
	*buf, err = s.g.Adjacency(u, *buf)
	if err != nil {
		return 0, err
	}
	for _, e := range *buf {
		if e.To == v {
			return e.W, nil
		}
	}
	return 0, fmt.Errorf("core: no edge (%d,%d)", u, v)
}

// checkULoc validates a query location against the graph.
func (s *Searcher) checkULoc(l Loc, buf *[]graph.Edge) error {
	n := s.g.NumNodes()
	if l.U < 0 || int(l.U) >= n || l.V < 0 || int(l.V) >= n {
		return fmt.Errorf("core: location %v out of range [0,%d)", l, n)
	}
	if l.IsNode() {
		if l.Pos != 0 {
			return fmt.Errorf("core: node location %v with non-zero offset", l)
		}
		return nil
	}
	if l.U > l.V {
		return fmt.Errorf("core: edge location %v is not canonical (U < V)", l)
	}
	w, err := s.edgeWeight(l.U, l.V, buf)
	if err != nil {
		return err
	}
	if l.Pos < 0 || l.Pos > w {
		return fmt.Errorf("core: offset %v outside edge (%d,%d) of weight %v", l.Pos, l.U, l.V, w)
	}
	return nil
}

// seedFromLoc pushes the expansion seeds of a source location: its
// endpoint nodes with the direct offsets. Points and targets sharing the
// source's edge must be seeded separately by the caller (they are the
// "direct distance" cases of Section 5.2).
func (w *uWalk) seedFromLoc(s *Searcher, l Loc, buf *[]graph.Edge) error {
	if l.IsNode() {
		w.pushNode(l.U, 0)
		return nil
	}
	wt, err := s.edgeWeight(l.U, l.V, buf)
	if err != nil {
		return err
	}
	w.pushNode(l.U, l.Pos)
	w.pushNode(l.V, wt-l.Pos)
	return nil
}

// pushAdjacentPoints pushes a point-arrival entry for every visible point
// of view on the edges around node n (popped at distance d), bounded by
// limit (inclusive). It reports the per-edge point counts through onEdge,
// when non-nil (used by the lazy edge-crossing rule).
func (s *Searcher) pushAdjacentPoints(w *uWalk, view points.EdgeView, set uint8, n graph.NodeID, d float64, adj []graph.Edge, limit float64, refs *[]points.EdgePointRef) error {
	for _, e := range adj {
		var err error
		*refs, err = view.PointsOn(n, e.To, *refs)
		if err != nil {
			return err
		}
		for _, ref := range *refs {
			off := ref.Pos
			if n > e.To {
				off = e.W - ref.Pos
			}
			if nd := d + off; nd <= limit {
				w.pushPoint(set, ref.ID, nd)
			}
		}
	}
	return nil
}

// uRangeNN is the unrestricted-range-NN algorithm of Section 5.2: the k
// nearest points of sites with distance strictly smaller than e from
// location from, in ascending distance order.
func (s *Searcher) uRangeNN(st *Stats, sites points.EdgeView, from Loc, k int, e float64, out []PointDist) ([]PointDist, error) {
	st.RangeNN++
	out = out[:0]
	if e <= 0 || k <= 0 {
		return out, nil
	}
	e = strictBound(e)
	w := s.newUWalk()
	defer s.closeUWalk(st, w)
	var adj []graph.Edge
	if err := w.seedFromLoc(s, from, &adj); err != nil {
		return nil, err
	}
	var refs []points.EdgePointRef
	if !from.IsNode() {
		// Same-edge points at their direct distances.
		var err error
		refs, err = sites.PointsOn(from.U, from.V, refs)
		if err != nil {
			return nil, err
		}
		for _, ref := range refs {
			if dd := math.Abs(ref.Pos - from.Pos); dd < e {
				w.pushPoint(uSetSite, ref.ID, dd)
			}
		}
	}
	done := make(map[points.PointID]bool)
	for {
		ent, d, ok := w.pop()
		if !ok || d >= e {
			break
		}
		switch ent.kind {
		case uKindPoint:
			if done[ent.p] {
				continue
			}
			done[ent.p] = true
			out = append(out, PointDist{P: ent.p, D: d})
			if len(out) >= k {
				return out, nil
			}
		case uKindNode:
			st.NodesScanned++
			if err := s.checkExecStride(st); err != nil {
				return out, err
			}
			var err error
			adj, err = s.g.Adjacency(ent.node, adj)
			if err != nil {
				return nil, err
			}
			// Point arrivals use a strict bound: a point at distance e
			// exactly is outside the (strict) range.
			if err := s.pushAdjacentPointsStrict(w, sites, uSetSite, ent.node, d, adj, e, &refs); err != nil {
				return nil, err
			}
			for _, edge := range adj {
				if nd := d + edge.W; nd < e {
					w.pushNode(edge.To, nd)
				}
			}
		}
	}
	return out, nil
}

// pushAdjacentPointsStrict is pushAdjacentPoints with an exclusive limit.
func (s *Searcher) pushAdjacentPointsStrict(w *uWalk, view points.EdgeView, set uint8, n graph.NodeID, d float64, adj []graph.Edge, limit float64, refs *[]points.EdgePointRef) error {
	for _, e := range adj {
		var err error
		*refs, err = view.PointsOn(n, e.To, *refs)
		if err != nil {
			return err
		}
		for _, ref := range *refs {
			off := ref.Pos
			if n > e.To {
				off = e.W - ref.Pos
			}
			if nd := d + off; nd < limit {
				w.pushPoint(set, ref.ID, nd)
			}
		}
	}
	return nil
}

// ULocDistance computes the exact network distance between two locations
// (Section 5.2's distance definition), returning +Inf when disconnected.
// Exposed for tooling and examples; the query algorithms never need it.
func (s *Searcher) ULocDistance(a, b Loc) (float64, error) {
	var st Stats
	var adjCheck []graph.Edge
	if err := s.checkULoc(a, &adjCheck); err != nil {
		return 0, err
	}
	if err := s.checkULoc(b, &adjCheck); err != nil {
		return 0, err
	}
	w := s.newUWalk()
	defer s.closeUWalk(&st, w)
	var adj []graph.Edge
	if err := w.seedFromLoc(s, a, &adj); err != nil {
		return 0, err
	}
	if a.sameEdge(b) || (a == b) {
		if a == b {
			return 0, nil
		}
		w.pushTarget(math.Abs(a.Pos - b.Pos))
	}
	target := uLocTarget(b)
	targetEdgeW := -1.0
	for {
		ent, d, ok := w.pop()
		if !ok {
			return math.Inf(1), nil
		}
		switch ent.kind {
		case uKindTarget:
			return d, nil
		case uKindNode:
			n := ent.node
			st.NodesExpanded++
			if err := s.checkExec(&st); err != nil {
				return 0, err
			}
			if target.nodeHit(n) {
				return d, nil
			}
			if !target.loc.IsNode() && (n == target.loc.U || n == target.loc.V) {
				if targetEdgeW < 0 {
					var err error
					targetEdgeW, err = s.edgeWeight(target.loc.U, target.loc.V, &adj)
					if err != nil {
						return 0, err
					}
				}
				off := target.loc.Pos
				if n == target.loc.V {
					off = targetEdgeW - target.loc.Pos
				}
				w.pushTarget(d + off)
			}
			var err error
			adj, err = s.g.Adjacency(n, adj)
			if err != nil {
				return 0, err
			}
			for _, edge := range adj {
				w.pushNode(edge.To, d+edge.W)
			}
		}
	}
}

// uVerify checks whether the target is met before k points of sites are
// found strictly closer to the candidate at location from. self is skipped
// during counting (monochromatic queries); ub bounds the expansion and must
// upper-bound the candidate-to-target distance (+Inf for oracle use).
func (s *Searcher) uVerify(st *Stats, sites points.EdgeView, self points.PointID, from Loc, target uTargetSpec, k int, ub float64) (bool, error) {
	st.Verifications++
	ub = upperBound(ub)
	w := s.newUWalk()
	defer s.closeUWalk(st, w)
	var adj []graph.Edge
	if err := w.seedFromLoc(s, from, &adj); err != nil {
		return false, err
	}
	var refs []points.EdgePointRef
	if !from.IsNode() {
		var err error
		refs, err = sites.PointsOn(from.U, from.V, refs)
		if err != nil {
			return false, err
		}
		for _, ref := range refs {
			if dd := math.Abs(ref.Pos - from.Pos); dd <= ub {
				w.pushPoint(uSetSite, ref.ID, dd)
			}
		}
		if target.nodes == nil && target.loc.sameEdge(from) {
			if dd := math.Abs(target.loc.Pos - from.Pos); dd <= ub {
				w.pushTarget(dd)
			}
		}
	}
	// Weight of the target's edge, resolved lazily on first arrival push.
	targetEdgeW := -1.0

	done := make(map[points.PointID]bool)
	strictCount, sameCount := 0, 0
	lastDist := 0.0
	for {
		ent, d, ok := w.pop()
		if !ok {
			return false, nil
		}
		if d > lastDist {
			strictCount += sameCount
			sameCount = 0
			lastDist = d
		}
		if strictCount >= k {
			return false, nil
		}
		switch ent.kind {
		case uKindTarget:
			return true, nil
		case uKindPoint:
			if done[ent.p] {
				continue
			}
			done[ent.p] = true
			if ent.p != self {
				sameCount++
			}
		case uKindNode:
			n := ent.node
			st.NodesScanned++
			if err := s.checkExecStride(st); err != nil {
				return false, err
			}
			if target.nodeHit(n) {
				return true, nil
			}
			// Arrival candidates for an edge-resident target.
			if target.nodes == nil && !target.loc.IsNode() {
				if n == target.loc.U || n == target.loc.V {
					if targetEdgeW < 0 {
						var err error
						targetEdgeW, err = s.edgeWeight(target.loc.U, target.loc.V, &adj)
						if err != nil {
							return false, err
						}
					}
					off := target.loc.Pos
					if n == target.loc.V {
						off = targetEdgeW - target.loc.Pos
					}
					if nd := d + off; nd <= ub {
						w.pushTarget(nd)
					}
				}
			}
			var err error
			adj, err = s.g.Adjacency(n, adj)
			if err != nil {
				return false, err
			}
			if err := s.pushAdjacentPoints(w, sites, uSetSite, n, d, adj, ub, &refs); err != nil {
				return false, err
			}
			for _, edge := range adj {
				if nd := d + edge.W; nd <= ub {
					w.pushNode(edge.To, nd)
				}
			}
		}
	}
}
