package core

import (
	"math"
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

type edgeInfo struct {
	u, v graph.NodeID
	w    float64
}

func graphEdges(g *graph.Graph) []edgeInfo {
	var out []edgeInfo
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		out = append(out, edgeInfo{u, v, w})
	})
	return out
}

// randEdgePoints distributes count points uniformly over random edges.
func randEdgePoints(t testing.TB, rng *rand.Rand, g *graph.Graph, count int) *points.EdgeSet {
	t.Helper()
	edges := graphEdges(g)
	ps := points.NewEdgeSet()
	for i := 0; i < count; i++ {
		e := edges[rng.Intn(len(edges))]
		if _, err := ps.Place(e.u, e.v, rng.Float64()*e.w); err != nil {
			t.Fatal(err)
		}
	}
	return ps
}

func randULoc(rng *rand.Rand, g *graph.Graph, edges []edgeInfo) Loc {
	if rng.Intn(4) == 0 {
		return NodeLoc(graph.NodeID(rng.Intn(g.NumNodes())))
	}
	e := edges[rng.Intn(len(edges))]
	return Loc{U: e.u, V: e.v, Pos: rng.Float64() * e.w}
}

func TestULocDistanceFig14Semantics(t *testing.T) {
	// A point on an edge has two route bounds through the endpoints; the
	// network distance is their minimum (Fig 14: the processing of n3
	// bounds d(q,p3) by 10, n5 tightens it to the exact 8).
	//
	//   q at node 0; edge (1,2) of weight 10 with p at pos 4 from node 1;
	//   d(0,1)=7, d(0,2)=3  =>  d(q,p) = min(7+4, 3+6) = 9.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 10); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(g)
	d, err := s.ULocDistance(NodeLoc(0), Loc{U: 1, V: 2, Pos: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d != 9 {
		t.Fatalf("d(q,p) = %v, want 9 (min of 11 and 9)", d)
	}
	// Same-edge direct distance vs the long way around.
	d, err = s.ULocDistance(Loc{U: 1, V: 2, Pos: 1}, Loc{U: 1, V: 2, Pos: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d != 8 {
		t.Fatalf("same-edge distance = %v, want 8 (direct)", d)
	}
	// Direct segment longer than the route through the endpoints: points
	// at the far ends of a heavy edge.
	b2 := graph.NewBuilder(3)
	b2.AddEdge(0, 1, 100)
	b2.AddEdge(0, 2, 1)
	b2.AddEdge(1, 2, 1)
	g2, _ := b2.Build()
	s2 := NewSearcher(g2)
	d, err = s2.ULocDistance(Loc{U: 0, V: 1, Pos: 1}, Loc{U: 0, V: 1, Pos: 99})
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 { // 1 back to node0, node0->2->1 = 2, then 1 into the edge
		t.Fatalf("heavy-edge distance = %v, want 4 (through the network)", d)
	}
}

func TestULocValidation(t *testing.T) {
	g, _, _ := paperGraph(t)
	s := NewSearcher(g)
	ps := points.NewEdgeSet()
	if _, err := s.UEagerRkNN(ps, Loc{U: 0, V: 99}, 1); err == nil {
		t.Fatal("out-of-range location accepted")
	}
	if _, err := s.UEagerRkNN(ps, Loc{U: 1, V: 0, Pos: 1}, 1); err == nil {
		t.Fatal("non-canonical edge location accepted")
	}
	if _, err := s.UEagerRkNN(ps, Loc{U: 0, V: 1, Pos: 999}, 1); err == nil {
		t.Fatal("offset beyond edge weight accepted")
	}
	if _, err := s.UEagerRkNN(ps, Loc{U: 0, V: 6, Pos: 1}, 1); err == nil {
		t.Fatal("location on a missing edge accepted")
	}
	if _, err := s.UEagerRkNN(ps, NodeLoc(0), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestUnrestrictedAgreesWithBrute is the central unrestricted property
// test: eager, lazy, lazy-EP and eager-M against brute force, with queries
// on nodes, on edges, and at data point locations (excluded).
func TestUnrestrictedAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for it := 0; it < iters; it++ {
		n := 10 + rng.Intn(40)
		g := randNet(t, rng, n, rng.Intn(2*n), 0.3)
		edges := graphEdges(g)
		s := NewSearcher(g)
		ps := randEdgePoints(t, rng, g, 1+rng.Intn(n/2+2))
		maxK := 1 + rng.Intn(3)
		k := 1 + rng.Intn(maxK)
		seeds, err := SeedsUnrestricted(ps, g)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := s.MatBuild(seeds, maxK, newMemMatFile(), 64, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Query 1: at a data point's location, point excluded.
		pts := ps.Points()
		qp := pts[rng.Intn(len(pts))]
		qloc, _ := ps.Loc(qp)
		view := points.ExcludeEdge(ps, qp)
		q := PointLoc(qloc)

		// Query 2: a random location.
		q2 := randULoc(rng, g, edges)

		type queryCase struct {
			view points.EdgeView
			loc  Loc
		}
		for ci, c := range []queryCase{{view, q}, {ps, q2}} {
			want, err := s.UBruteRkNN(c.view, c.loc, k)
			if err != nil {
				t.Fatal(err)
			}
			for name, run := range map[string]func() (*Result, error){
				"ueager":  func() (*Result, error) { return s.UEagerRkNN(c.view, c.loc, k) },
				"ulazy":   func() (*Result, error) { return s.ULazyRkNN(c.view, c.loc, k) },
				"ulazyEP": func() (*Result, error) { return s.ULazyEPRkNN(c.view, c.loc, k) },
				"ueagerM": func() (*Result, error) { return s.UEagerMRkNN(c.view, mat, c.loc, k) },
			} {
				got, err := run()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !samePoints(want, got) {
					t.Fatalf("iter %d case %d %s=%s brute=%s (|V|=%d |P|=%d k=%d q=%v)",
						it, ci, name, describe(got), describe(want), n, c.view.Len(), k, c.loc)
				}
			}
		}
	}
}

// TestUnrestrictedDensePoints puts many points on few edges so that
// same-edge interactions (direct distances, edge-crossing pruning)
// dominate.
func TestUnrestrictedDensePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		n := 6 + rng.Intn(10)
		g := randNet(t, rng, n, rng.Intn(n), 0)
		edges := graphEdges(g)
		s := NewSearcher(g)
		ps := points.NewEdgeSet()
		// Cluster points on up to 3 edges.
		for i := 0; i < 3+rng.Intn(10); i++ {
			e := edges[rng.Intn(min(3, len(edges)))]
			if _, err := ps.Place(e.u, e.v, rng.Float64()*e.w); err != nil {
				t.Fatal(err)
			}
		}
		k := 1 + rng.Intn(3)
		q := randULoc(rng, g, edges)
		want, err := s.UBruteRkNN(ps, q, k)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*Result, error){
			"ueager":  func() (*Result, error) { return s.UEagerRkNN(ps, q, k) },
			"ulazy":   func() (*Result, error) { return s.ULazyRkNN(ps, q, k) },
			"ulazyEP": func() (*Result, error) { return s.ULazyEPRkNN(ps, q, k) },
		} {
			got, err := run()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !samePoints(want, got) {
				t.Fatalf("iter %d %s=%s brute=%s (k=%d q=%v)", it, name, describe(got), describe(want), k, q)
			}
		}
	}
}

// TestUnrestrictedFarFromEndpoints reproduces the discovery hazard
// documented in DESIGN.md: a member deep inside a long edge whose endpoints
// are crowded by other points must still be found.
func TestUnrestrictedFarFromEndpoints(t *testing.T) {
	// q at node 3 -- a(0) ===long edge=== b(1), appendage at b with a point
	// x that crowds b's range-NN; p sits mid-edge and is still a RNN.
	b := graph.NewBuilder(4)
	b.AddEdge(3, 0, 9)   // q - a
	b.AddEdge(0, 1, 100) // a ===== b, p at offset 10 from a
	b.AddEdge(1, 2, 85)  // b - x's node
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := points.NewEdgeSet()
	p, _ := ps.Place(0, 1, 10) // d(p,q) = 19
	x, _ := ps.Place(1, 2, 85) // x at node-2 end: d(x,b)=85 < d(p,b)=90
	_ = x                      // d(x,p)=175, d(x,q)=194: x's NN is p, not q
	s := NewSearcher(g)
	for name, run := range map[string]func() (*Result, error){
		"brute":   func() (*Result, error) { return s.UBruteRkNN(ps, NodeLoc(3), 1) },
		"ueager":  func() (*Result, error) { return s.UEagerRkNN(ps, NodeLoc(3), 1) },
		"ulazy":   func() (*Result, error) { return s.ULazyRkNN(ps, NodeLoc(3), 1) },
		"ulazyEP": func() (*Result, error) { return s.ULazyEPRkNN(ps, NodeLoc(3), 1) },
	} {
		r, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Points) != 1 || r.Points[0] != p {
			t.Fatalf("%s = %v, want [p] — mid-edge member missed", name, r.Points)
		}
	}
}

func TestUnrestrictedContinuousAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	iters := 100
	if testing.Short() {
		iters = 20
	}
	for it := 0; it < iters; it++ {
		n := 10 + rng.Intn(30)
		g := randNet(t, rng, n, rng.Intn(2*n), 0.3)
		s := NewSearcher(g)
		ps := randEdgePoints(t, rng, g, 1+rng.Intn(n/2+2))
		maxK := 1 + rng.Intn(2)
		k := 1 + rng.Intn(maxK)
		seeds, err := SeedsUnrestricted(ps, g)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := s.MatBuild(seeds, maxK, newMemMatFile(), 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		route := randomWalkRoute(t, g, rng, 1+rng.Intn(6))
		want, err := s.UBruteContinuous(ps, route, k)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*Result, error){
			"ueager":  func() (*Result, error) { return s.UEagerContinuous(ps, route, k) },
			"ulazy":   func() (*Result, error) { return s.ULazyContinuous(ps, route, k) },
			"ulazyEP": func() (*Result, error) { return s.ULazyEPContinuous(ps, route, k) },
			"ueagerM": func() (*Result, error) { return s.UEagerMContinuous(ps, mat, route, k) },
		} {
			got, err := run()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !samePoints(want, got) {
				t.Fatalf("iter %d %s=%s brute=%s (route=%v k=%d)", it, name, describe(got), describe(want), route, k)
			}
		}
	}
}

func TestUnrestrictedBichromaticAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		n := 10 + rng.Intn(30)
		g := randNet(t, rng, n, rng.Intn(2*n), 0.3)
		edges := graphEdges(g)
		s := NewSearcher(g)
		cands := randEdgePoints(t, rng, g, 1+rng.Intn(n/2+2))
		sites := randEdgePoints(t, rng, g, 1+rng.Intn(n/3+2))
		maxK := 1 + rng.Intn(2)
		k := 1 + rng.Intn(maxK)
		seeds, err := SeedsUnrestricted(sites, g)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := s.MatBuild(seeds, maxK, newMemMatFile(), 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		q := randULoc(rng, g, edges)
		want, err := s.UBruteBichromatic(cands, sites, q, k)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*Result, error){
			"ueager":  func() (*Result, error) { return s.UEagerBichromatic(cands, sites, q, k) },
			"ulazy":   func() (*Result, error) { return s.ULazyBichromatic(cands, sites, q, k) },
			"ulazyEP": func() (*Result, error) { return s.ULazyEPBichromatic(cands, sites, q, k) },
			"ueagerM": func() (*Result, error) { return s.UEagerMBichromatic(cands, sites, mat, q, k) },
		} {
			got, err := run()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !samePoints(want, got) {
				t.Fatalf("iter %d %s=%s brute=%s (|P|=%d |Q|=%d k=%d q=%v)",
					it, name, describe(got), describe(want), cands.Len(), sites.Len(), k, q)
			}
		}
	}
}

// TestUnrestrictedWithPagedPoints runs the property test against the
// disk-resident point file to confirm the paged EdgeView is semantically
// identical and I/O is accounted.
func TestUnrestrictedWithPagedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for it := 0; it < 40; it++ {
		n := 10 + rng.Intn(30)
		g := randNet(t, rng, n, rng.Intn(2*n), 0.3)
		edges := graphEdges(g)
		s := NewSearcher(g)
		mem := randEdgePoints(t, rng, g, 1+rng.Intn(n/2+2))
		paged, err := points.NewPagedEdgeSet(mem, storage.NewMemFile(512), 8)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(2)
		q := randULoc(rng, g, edges)
		want, err := s.UEagerRkNN(mem, q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.UEagerRkNN(paged, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d paged=%s mem=%s", it, describe(got), describe(want))
		}
	}
}

func TestUMatBuildMatchesEndpointMerge(t *testing.T) {
	// The materialized lists over edge points must equal a brute
	// computation via ULocDistance.
	rng := rand.New(rand.NewSource(75))
	for it := 0; it < 25; it++ {
		n := 8 + rng.Intn(20)
		g := randNet(t, rng, n, rng.Intn(n), 0.3)
		s := NewSearcher(g)
		ps := randEdgePoints(t, rng, g, 1+rng.Intn(8))
		maxK := 1 + rng.Intn(3)
		seeds, err := SeedsUnrestricted(ps, g)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := s.MatBuild(seeds, maxK, newMemMatFile(), 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		var lst []MatEntry
		for node := graph.NodeID(0); int(node) < n; node++ {
			var want []MatEntry
			for _, p := range ps.Points() {
				loc, _ := ps.Loc(p)
				d, err := s.ULocDistance(NodeLoc(node), PointLoc(loc))
				if err != nil {
					t.Fatal(err)
				}
				if !math.IsInf(d, 1) {
					want = append(want, MatEntry{P: p, D: d})
				}
			}
			sortMatEntries(want)
			if len(want) > maxK+1 {
				want = want[:maxK+1]
			}
			lst, err = mat.List(node, lst)
			if err != nil {
				t.Fatal(err)
			}
			if len(lst) != len(want) {
				t.Fatalf("node %d list = %v, want %v", node, lst, want)
			}
			for i := range lst {
				if lst[i].P != want[i].P || math.Abs(lst[i].D-want[i].D) > 1e-9 {
					t.Fatalf("node %d list = %v, want %v", node, lst, want)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
