package core

import "fmt"

func errKTooSmall(k int) error {
	return fmt.Errorf("core: k must be >= 1, got %d", k)
}

func errEmptySources() error {
	return fmt.Errorf("core: query needs at least one source location")
}
