package core

import (
	"fmt"

	"graphrnn/internal/exec"
)

// Typed execution-control errors, re-exported from internal/exec: a query
// run through a Bound searcher returns one of these (wrapped; match with
// errors.Is) instead of running to completion. The accompanying Result
// carries the stats — and any members confirmed — up to the point the
// query was abandoned.
var (
	ErrCanceled         = exec.ErrCanceled
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
	ErrBudgetExceeded   = exec.ErrBudgetExceeded
)

func errKTooSmall(k int) error {
	return fmt.Errorf("core: k must be >= 1, got %d", k)
}

func errEmptySources() error {
	return fmt.Errorf("core: query needs at least one source location")
}
