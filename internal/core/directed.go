package core

import (
	"math"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// Directed-network RkNN — the extension Section 7 of the paper names as
// future work. With asymmetric distances the membership definition uses
// the candidate's *outgoing* distances:
//
//	p ∈ RkNN→(q)  ⇔  |{p' ∈ P\{p} : d(p→p') < d(p→q)}| < k
//
// (the query is among the k nearest objects p can reach). The eager
// framework carries over with one twist: the main expansion runs over
// *reverse* arcs — a Dijkstra over in-arcs from q computes d(n→q) for
// every node n — while the pruning probes and verifications expand over
// forward arcs. Lemma 1 holds in the directed form: if k points x satisfy
// d(n→x) < d(n→q), then any p' whose shortest p'→q path passes through n
// has d(p'→x) ≤ d(p'→n) + d(n→x) < d(p'→n) + d(n→q) = d(p'→q), so p' is
// not a member.
type DirectedSearcher struct {
	fwd *Searcher // expands along out-arcs: probes, verifications
	rev *Searcher // expands along in-arcs: the main traversal
}

// NewDirectedSearcher creates a searcher over a directed graph.
func NewDirectedSearcher(d *graph.Digraph) *DirectedSearcher {
	return &DirectedSearcher{fwd: NewSearcher(d.Out()), rev: NewSearcher(d.In())}
}

// EagerRkNN answers a directed monochromatic RkNN query from qnode.
func (ds *DirectedSearcher) EagerRkNN(ps points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := ds.fwd.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	var st Stats
	main := ds.rev.acquire()
	defer func() { ds.rev.harvest(&st, main); ds.rev.release(main) }()
	main.begin()

	verified := make(map[points.PointID]bool)
	var results []points.PointID
	if p, ok := ps.PointAt(qnode); ok {
		verified[p] = true
		results = append(results, p) // d(p→q)=0: trivially a member
	}
	main.push(qnode, 0)

	target := singleTarget(qnode)
	var found []PointDist
	for {
		n, d, ok := main.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := ds.fwd.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		// Candidates are verified at their own node's pop: the label d
		// upper-bounds d(p→q) there (and is exact for true members, whose
		// reverse path to q is never pruned). A point discovered by a
		// probe at another node m must NOT be verified with d(m→p)+d(m→q):
		// with asymmetric distances that sum does not bound d(p→q). The
		// probes below therefore only prune; a non-member whose node never
		// pops is correctly excluded.
		if p, ok := ps.PointAt(n); ok && !verified[p] {
			verified[p] = true
			member, err := ds.fwd.verify(&st, ps, p, n, target, k, d)
			if err != nil {
				return execResult(results, st, err)
			}
			if member {
				results = append(results, p)
			}
		}
		// d upper-bounds d(n→q) (exact on every unpruned shortest path).
		var err error
		found, err = ds.fwd.rangeNN(&st, ps, n, k, d, found)
		if err != nil {
			return execResult(results, st, err)
		}
		// Lemma 1 only covers points other than those that justified the
		// prune, so every probe-discovered point must be verified (its own
		// node may lie beyond the pruned frontier). Unlike the undirected
		// case, d(n→p) + d(n→q) does not bound d(p→q), so the radius is
		// unbounded; the verification still stops at the query or at the
		// k-th closer point.
		for _, pd := range found {
			if verified[pd.P] {
				continue
			}
			verified[pd.P] = true
			pnode, hasNode := ps.NodeOf(pd.P)
			if !hasNode {
				continue
			}
			member, err := ds.fwd.verify(&st, ps, pd.P, pnode, target, k, math.Inf(1))
			if err != nil {
				return execResult(results, st, err)
			}
			if member {
				results = append(results, pd.P)
			}
		}
		if len(found) >= k {
			continue // directed Lemma 1
		}
		var adjErr error
		if main.adj, adjErr = ds.rev.g.Adjacency(n, main.adj); adjErr != nil {
			return execResult(results, st, adjErr)
		}
		for _, e := range main.adj {
			main.push(e.To, d+e.W)
		}
	}
	return finishResult(results, st), nil
}

// BruteRkNN is the directed brute-force oracle: one forward verification
// per data point.
func (ds *DirectedSearcher) BruteRkNN(ps points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := ds.fwd.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	var st Stats
	var results []points.PointID
	target := singleTarget(qnode)
	for _, p := range ps.Points() {
		pnode, ok := ps.NodeOf(p)
		if !ok {
			continue
		}
		member, err := ds.fwd.verify(&st, ps, p, pnode, target, k, math.Inf(1))
		if err != nil {
			return nil, err
		}
		if member {
			results = append(results, p)
		}
	}
	return finishResult(results, st), nil
}
