package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"graphrnn/internal/exec"
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// snapshotLists decodes every node's materialized list.
func snapshotLists(t *testing.T, mat *Materialized) [][]MatEntry {
	t.Helper()
	out := make([][]MatEntry, mat.NumNodes())
	var lst []MatEntry
	var err error
	for n := range out {
		lst, err = mat.List(graph.NodeID(n), lst)
		if err != nil {
			t.Fatal(err)
		}
		out[n] = append([]MatEntry(nil), lst...)
	}
	return out
}

func boundSearcher(g graph.Access, maxNodes int64) *Searcher {
	s := NewSearcher(g)
	if maxNodes > 0 {
		return s.Bound(exec.New(context.Background(), exec.Budget{MaxNodes: maxNodes}, nil))
	}
	return s
}

// TestMatRepairRollbackRestoresLists abandons insert and delete repairs at
// randomized points (via tiny node budgets) and checks RollbackRepair makes
// the lists bit-identical to the pre-operation snapshot.
func TestMatRepairRollbackRestoresLists(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for it := 0; it < iters; it++ {
		g := randNet(t, rng, 15+rng.Intn(40), rng.Intn(80), 0.5)
		ps := randPoints(t, rng, g, 4+rng.Intn(6))
		maxK := 1 + rng.Intn(3)
		mat := buildMat(t, NewSearcher(g), ps, maxK)
		before := snapshotLists(t, mat)

		budget := int64(1 + rng.Intn(8))
		s := boundSearcher(g, budget)

		if rng.Intn(2) == 0 {
			// Abandon an insertion.
			node := graph.NodeID(rng.Intn(g.NumNodes()))
			if _, taken := ps.PointAt(node); taken {
				continue
			}
			p, err := ps.Place(node)
			if err != nil {
				t.Fatal(err)
			}
			if err := mat.BeginRepair(nil); err != nil {
				t.Fatal(err)
			}
			_, opErr := s.MatInsert(mat, []MatSeed{{Node: node, P: p, D: 0}})
			if opErr != nil && !exec.IsExecErr(opErr) {
				t.Fatalf("iter %d: unexpected insert error: %v", it, opErr)
			}
			if err := mat.RollbackRepair(); err != nil {
				t.Fatal(err)
			}
			if err := ps.Delete(p); err != nil {
				t.Fatal(err)
			}
		} else {
			// Abandon a deletion.
			pts := ps.Points()
			p := pts[rng.Intn(len(pts))]
			node, _ := ps.NodeOf(p)
			if err := mat.BeginRepair(nil); err != nil {
				t.Fatal(err)
			}
			_, opErr := s.MatDelete(mat, p, []MatSeed{{Node: node, P: p, D: 0}})
			if opErr != nil && !exec.IsExecErr(opErr) {
				t.Fatalf("iter %d: unexpected delete error: %v", it, opErr)
			}
			if err := mat.RollbackRepair(); err != nil {
				t.Fatal(err)
			}
		}
		assertMatEqual(t, mat, before, "after rollback")
		if mat.RepairPending() {
			t.Fatal("repair still pending after rollback")
		}
	}
}

// TestMatInjectedWriteFaultRollback abandons a repair at an arbitrary list
// write (not a context poll point) and checks the rollback path restores.
func TestMatInjectedWriteFaultRollback(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for it := 0; it < 30; it++ {
		g := randNet(t, rng, 20+rng.Intn(30), rng.Intn(60), 0.5)
		ps := randPoints(t, rng, g, 5)
		mat := buildMat(t, NewSearcher(g), ps, 2)
		before := snapshotLists(t, mat)
		s := NewSearcher(g)

		pts := ps.Points()
		p := pts[rng.Intn(len(pts))]
		node, _ := ps.NodeOf(p)
		if err := mat.BeginRepair(nil); err != nil {
			t.Fatal(err)
		}
		mat.InjectWriteFault(1 + rng.Intn(4))
		_, opErr := s.MatDelete(mat, p, []MatSeed{{Node: node, P: p, D: 0}})
		mat.InjectWriteFault(0)
		if opErr == nil {
			// The repair finished before the countdown: commit normally.
			if err := mat.CommitRepair(p, PointAbsent); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if !strings.Contains(opErr.Error(), "injected") {
			t.Fatalf("unexpected delete error: %v", opErr)
		}
		if err := mat.RollbackRepair(); err != nil {
			t.Fatal(err)
		}
		assertMatEqual(t, mat, before, "after fault rollback")
	}
}

// persistedMat saves mat into a fresh file pair and reopens it.
func persistedMat(t *testing.T, mat *Materialized, ps *points.NodeSet) (*Materialized, *points.NodeSet, storage.PagedFile, storage.PagedFile) {
	t.Helper()
	file := storage.NewMemFile(storage.DefaultPageSize)
	jfile := storage.NewMemFile(storage.DefaultPageSize)
	tab := ps.Table()
	pts := make([]PointRecord, len(tab))
	for i, n := range tab {
		if n < 0 {
			pts[i] = PointAbsent
		} else {
			pts[i] = PointRecord{U: n, V: n}
		}
	}
	if err := MatSave(mat, MatKindNode, pts, file); err != nil {
		t.Fatal(err)
	}
	return reopenMat(t, file, jfile)
}

func reopenMat(t *testing.T, file, jfile storage.PagedFile) (*Materialized, *points.NodeSet, storage.PagedFile, storage.PagedFile) {
	t.Helper()
	bm := storage.NewBufferManager(file, 16)
	m, kind, pts, err := MatOpen(file, bm, jfile)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MatKindNode {
		t.Fatalf("kind = %d, want node", kind)
	}
	nodes := make([]graph.NodeID, len(pts))
	for i, r := range pts {
		if r.U < 0 {
			nodes[i] = -1
		} else {
			nodes[i] = r.U
		}
	}
	ns, err := points.RestoreNodeSet(m.NumNodes(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return m, ns, file, jfile
}

// TestMatSaveOpenRoundTrip persists a materialization, reopens it, checks
// the lists and the point set survive, commits durable maintenance, and
// reopens again to see the committed operation.
func TestMatSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for it := 0; it < 20; it++ {
		g := randNet(t, rng, 15+rng.Intn(40), rng.Intn(80), 0.5)
		ps := randPoints(t, rng, g, 4+rng.Intn(5))
		maxK := 1 + rng.Intn(3)
		mat := buildMat(t, NewSearcher(g), ps, maxK)

		m2, ps2, file, jfile := persistedMat(t, mat, ps)
		if ps2.Len() != ps.Len() {
			t.Fatalf("reopened point set has %d points, want %d", ps2.Len(), ps.Len())
		}
		assertMatEqual(t, m2, snapshotLists(t, mat), "reopened lists")

		// A committed maintenance operation must survive a further reopen.
		s := NewSearcher(g)
		var node graph.NodeID = -1
		for n := 0; n < g.NumNodes(); n++ {
			if _, taken := ps2.PointAt(graph.NodeID(n)); !taken {
				node = graph.NodeID(n)
				break
			}
		}
		if node < 0 {
			continue
		}
		p, err := ps2.Place(node)
		if err != nil {
			t.Fatal(err)
		}
		if err := m2.BeginRepair(nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.MatInsert(m2, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
			t.Fatal(err)
		}
		if err := m2.CommitRepair(p, PointRecord{U: node, V: node}); err != nil {
			t.Fatal(err)
		}
		want := bruteLists(t, g, ps2, maxK+1)
		m3, ps3, _, _ := reopenMat(t, file, jfile)
		if ps3.Len() != ps2.Len() {
			t.Fatalf("point set after reopen has %d points, want %d", ps3.Len(), ps2.Len())
		}
		if n3, ok := ps3.NodeOf(p); !ok || n3 != node {
			t.Fatalf("committed insert of point %d on node %d did not persist (got %d, %t)", p, node, n3, ok)
		}
		assertMatEqual(t, m3, want, "after committed maintenance + reopen")
	}
}

// TestMatCrashRecovery abandons a repair without rolling back (simulated
// crash: dirty pages flushed, journal uncommitted) and checks the reopen
// path restores the pre-operation lists from the journal.
func TestMatCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for it := 0; it < 30; it++ {
		g := randNet(t, rng, 20+rng.Intn(40), rng.Intn(80), 0.5)
		ps := randPoints(t, rng, g, 4+rng.Intn(5))
		maxK := 1 + rng.Intn(3)
		mat := buildMat(t, NewSearcher(g), ps, maxK)
		m2, ps2, file, jfile := persistedMat(t, mat, ps)
		before := snapshotLists(t, m2)

		// Crash mid-insert: the budget abandons the repair, nothing is
		// rolled back, and every dirty page reaches the file (the worst
		// case — any prefix could).
		var node graph.NodeID = -1
		for n := 0; n < g.NumNodes(); n++ {
			if _, taken := ps2.PointAt(graph.NodeID(n)); !taken {
				node = graph.NodeID(n)
				break
			}
		}
		if node < 0 {
			continue
		}
		p, err := ps2.Place(node)
		if err != nil {
			t.Fatal(err)
		}
		if err := m2.BeginRepair([]byte("crash-test")); err != nil {
			t.Fatal(err)
		}
		s := boundSearcher(g, int64(1+rng.Intn(6)))
		_, opErr := s.MatInsert(m2, []MatSeed{{Node: node, P: p, D: 0}})
		if opErr != nil && !errors.Is(opErr, exec.ErrBudgetExceeded) {
			t.Fatalf("unexpected insert error: %v", opErr)
		}
		m2.AbandonRepair()
		if err := m2.Flush(); err != nil {
			t.Fatal(err)
		}
		if !m2.RepairPending() {
			t.Fatal("abandoned operation not pending")
		}

		// "Next process": reopen the same files; recovery must roll back.
		m3, ps3, _, _ := reopenMat(t, file, jfile)
		if m3.RepairPending() {
			t.Fatal("reopened materialization still pending after recovery")
		}
		assertMatEqual(t, m3, before, "after crash recovery")
		// The uncommitted Place never reached the file either.
		if ps3.Len() != ps.Len() {
			t.Fatalf("point set after recovery has %d points, want %d", ps3.Len(), ps.Len())
		}
	}
}

// TestMatCrashDuringCommitRollsBackPointRecord covers the narrowest crash
// window: the commit flushed the lists and overwrote the point record, but
// died before the header flip. Recovery must roll back the point region
// along with the lists — otherwise the reopened set and lists disagree.
func TestMatCrashDuringCommitRollsBackPointRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	g := randNet(t, rng, 30, 40, 0.5)
	ps := randPoints(t, rng, g, 6)
	mat := buildMat(t, NewSearcher(g), ps, 2)
	m2, ps2, file, jfile := persistedMat(t, mat, ps)
	before := snapshotLists(t, m2)

	// Run a full delete repair, then replay CommitRepair's steps by hand
	// up to (but not including) the header flip.
	p := ps2.Points()[0]
	node := mustNodeOf(t, ps2, p)
	if err := m2.BeginRepair(nil); err != nil {
		t.Fatal(err)
	}
	if err := ps2.Delete(p); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSearcher(g).MatDelete(m2, p, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Flush(); err != nil {
		t.Fatal(err)
	}
	old, err := m2.pst.readPointRecord(p)
	if err != nil {
		t.Fatal(err)
	}
	if old.U != node {
		t.Fatalf("persisted record of point %d = %+v, want node %d", p, old, node)
	}
	if err := m2.pst.journal.Append(encodePointImage(p, old)); err != nil {
		t.Fatal(err)
	}
	if err := m2.pst.writePointRecord(p, PointAbsent); err != nil {
		t.Fatal(err)
	}
	m2.AbandonRepair() // crash: header never flipped clean

	m3, ps3, _, _ := reopenMat(t, file, jfile)
	if m3.RepairPending() {
		t.Fatal("still pending after recovery")
	}
	assertMatEqual(t, m3, before, "lists after commit-window crash")
	if n3, ok := ps3.NodeOf(p); !ok || n3 != node {
		t.Fatalf("point %d after recovery: node %d ok=%t, want node %d — point region not rolled back", p, n3, ok, node)
	}
}

// TestMatSaveRejectsUnjournalableK ensures a maxK whose before-images
// cannot fit a journal record is rejected at save time, not at the first
// maintenance operation.
func TestMatSaveRejectsUnjournalableK(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	g := randNet(t, rng, 10, 10, 0.5)
	ps := randPoints(t, rng, g, 3)
	// 4096-byte pages hold lists up to cap=341 (2+12*341=4094 <= 4090 is
	// false... choose page size 512: lists fit cap <= 42, journal records
	// fit cap <= 41).
	s := NewSearcher(g)
	mat, err := s.MatBuild(SeedsRestricted(ps), 41, storage.NewMemFile(512), 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := MatSave(mat, MatKindNode, nil, storage.NewMemFile(512)); err == nil {
		t.Fatal("unjournalable maxK accepted by MatSave")
	}
}

// TestMatOpenMissingJournal ensures a pending header without journal
// records refuses to open silently.
func TestMatOpenMissingJournal(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g := randNet(t, rng, 25, 30, 0.5)
	ps := randPoints(t, rng, g, 5)
	mat := buildMat(t, NewSearcher(g), ps, 2)
	m2, ps2, file, _ := persistedMat(t, mat, ps)
	p, err := ps2.Place(findFree(t, g, ps2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.BeginRepair(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSearcher(g).MatInsert(m2, []MatSeed{{Node: mustNodeOf(t, ps2, p), P: p, D: 0}}); err != nil {
		t.Fatal(err)
	}
	m2.AbandonRepair()
	if err := m2.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reopen with an EMPTY journal: recovery must fail loudly.
	bm := storage.NewBufferManager(file, 16)
	if _, _, _, err := MatOpen(file, bm, storage.NewMemFile(storage.DefaultPageSize)); err == nil {
		t.Fatal("pending header with an empty journal opened without error")
	}
}

func findFree(t *testing.T, g *graph.Graph, ps *points.NodeSet) graph.NodeID {
	t.Helper()
	for n := 0; n < g.NumNodes(); n++ {
		if _, taken := ps.PointAt(graph.NodeID(n)); !taken {
			return graph.NodeID(n)
		}
	}
	t.Fatal("no free node")
	return -1
}

func mustNodeOf(t *testing.T, ps *points.NodeSet, p points.PointID) graph.NodeID {
	t.Helper()
	n, ok := ps.NodeOf(p)
	if !ok {
		t.Fatalf("point %d has no node", p)
	}
	return n
}
