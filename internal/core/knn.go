package core

import (
	"math"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// KNN returns the k nearest data points of node n in ascending distance
// order — the network-expansion NN search of Section 3.1 that underlies
// every range-NN probe, exposed as a query in its own right. Fewer than k
// results are returned when the reachable component holds fewer points.
func (s *Searcher) KNN(ps points.NodeView, n graph.NodeID, k int) ([]PointDist, error) {
	if err := s.checkQuery(n, k); err != nil {
		return nil, err
	}
	var st Stats
	if err := s.checkExec(&st); err != nil {
		return nil, err
	}
	return s.rangeNN(&st, ps, n, k, math.Inf(1), nil)
}

// UKNN is KNN from an arbitrary location over an edge-resident point set.
func (s *Searcher) UKNN(ps points.EdgeView, q Loc, k int) ([]PointDist, error) {
	if k < 1 {
		return nil, errKTooSmall(k)
	}
	var adjCheck []graph.Edge
	if err := s.checkULoc(q, &adjCheck); err != nil {
		return nil, err
	}
	var st Stats
	if err := s.checkExec(&st); err != nil {
		return nil, err
	}
	return s.uRangeNN(&st, ps, q, k, math.Inf(1), nil)
}
