package core

import (
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/pq"
)

// Bichromatic queries (Section 5.1). Given candidates P and sites Q, a
// bRkNN query returns the candidates closer to the query than to their k-th
// nearest site:
//
//	p ∈ bRkNN(q)  ⇔  |{q' ∈ Q : d(p,q') < d(p,q)}| < k
//
// The paper reduces this to monochromatic search over Q where *nodes* are
// the objects being classified: a node n belongs to the answer region iff q
// is among the k nearest sites of n, and the final answer collects the
// candidates residing on such nodes. Because the main expansion knows the
// exact distance d(n,q) of every de-heaped node, the eager family needs no
// verification step at all — the range-NN probe (or materialized list)
// already decides membership. The lazy family uses site verifications for
// pruning, exactly as in the monochromatic case, plus one exact range-count
// per candidate-bearing node (see DESIGN.md §6.4).

// EagerBichromatic answers bRkNN with the eager algorithm.
func (s *Searcher) EagerBichromatic(cands, sites points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	var st Stats
	main := s.acquire()
	defer func() { s.harvest(&st, main); s.release(main) }()
	main.begin()
	main.push(qnode, 0)

	var results []points.PointID
	seen := make(map[points.PointID]bool)
	var found []PointDist
	for {
		n, d, ok := main.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		var err error
		found, err = s.rangeNN(&st, sites, n, k, d, found)
		if err != nil {
			return execResult(results, st, err)
		}
		if len(found) >= k {
			continue // k sites strictly closer: n is outside the region
		}
		if p, ok := cands.PointAt(n); ok && !seen[p] {
			seen[p] = true
			results = s.confirm(results, p)
		}
		var adjErr error
		if main.adj, adjErr = s.g.Adjacency(n, main.adj); adjErr != nil {
			return nil, adjErr
		}
		for _, e := range main.adj {
			main.push(e.To, d+e.W)
		}
	}
	return finishResult(results, st), nil
}

// EagerMBichromatic answers bRkNN with eager-M; mat must be materialized
// over the site set (Section 5.1: "we simply materialize KNN(n) ⊆ Q").
func (s *Searcher) EagerMBichromatic(cands, sites points.NodeView, mat *Materialized, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	if err := checkMatK(mat, k); err != nil {
		return nil, err
	}
	var st Stats
	main := s.acquire()
	defer func() { s.harvest(&st, main); s.release(main) }()
	main.begin()
	main.push(qnode, 0)

	var results []points.PointID
	seen := make(map[points.PointID]bool)
	var lst []MatEntry
	for {
		n, d, ok := main.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		var err error
		lst, err = mat.List(n, lst)
		if err != nil {
			return nil, err
		}
		st.MatReads++
		closer := 0
		for _, e := range lst {
			if e.D >= d || closer >= k {
				break
			}
			if _, visible := sites.NodeOf(e.P); visible {
				closer++
			}
		}
		if closer >= k {
			continue
		}
		if p, ok := cands.PointAt(n); ok && !seen[p] {
			seen[p] = true
			results = s.confirm(results, p)
		}
		var adjErr error
		if main.adj, adjErr = s.g.Adjacency(n, main.adj); adjErr != nil {
			return nil, adjErr
		}
		for _, e := range main.adj {
			main.push(e.To, d+e.W)
		}
	}
	return finishResult(results, st), nil
}

// LazyBichromatic answers bRkNN with the lazy algorithm: expansion pruned
// by the verification queries of discovered sites; candidate-bearing nodes
// that survive pruning are classified with one exact range count each.
func (s *Searcher) LazyBichromatic(cands, sites points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	var st Stats
	main := s.acquire()
	defer func() { s.harvest(&st, main); s.release(main) }()
	main.begin()
	counts := s.acquireCounts()
	defer s.releaseCounts(counts)
	children := make(map[graph.NodeID][]*pq.Item[graph.NodeID])
	target := singleTarget(qnode)
	main.push(qnode, 0)

	var results []points.PointID
	seenCand := make(map[points.PointID]bool)
	seenSite := make(map[points.PointID]bool)
	var probe []PointDist
	for {
		n, d, ok := main.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		if counts.get(n) >= int32(k) {
			continue // k sites closer than q: outside the region
		}
		if site, ok := sites.PointAt(n); ok && !seenSite[site] {
			seenSite[site] = true
			// Run the verification expansion purely for its pruning side
			// effects (counter increments, heap-entry removal).
			if _, err := s.lazyVerify(&st, sites, site, n, target, k, d, main, counts, children); err != nil {
				return execResult(results, st, err)
			}
		}
		if p, ok := cands.PointAt(n); ok && !seenCand[p] {
			seenCand[p] = true
			// Exact classification: fewer than k sites strictly closer
			// than d(n,q).
			var err error
			probe, err = s.rangeNN(&st, sites, n, k, d, probe)
			if err != nil {
				return execResult(results, st, err)
			}
			if len(probe) < k {
				results = s.confirm(results, p)
			}
		}
		if counts.get(n) >= int32(k) {
			continue
		}
		var adjErr error
		if main.adj, adjErr = s.g.Adjacency(n, main.adj); adjErr != nil {
			return nil, adjErr
		}
		var kids []*pq.Item[graph.NodeID]
		for _, e := range main.adj {
			if h := main.push(e.To, d+e.W); h != nil {
				kids = append(kids, h)
			}
		}
		if kids != nil {
			children[n] = kids
		}
	}
	return finishResult(results, st), nil
}

// LazyEPBichromatic answers bRkNN with lazy-EP: the second heap expands
// around discovered sites and marks nodes they dominate; candidate-bearing
// nodes whose marks already show k closer sites are rejected without a
// probe.
func (s *Searcher) LazyEPBichromatic(cands, sites points.NodeView, qnode graph.NodeID, k int) (*Result, error) {
	if err := s.checkQuery(qnode, k); err != nil {
		return nil, err
	}
	var st Stats
	main := s.acquire()
	defer func() { s.harvest(&st, main); s.release(main) }()
	main.begin()
	main.push(qnode, 0)

	found := make(map[graph.NodeID][]PointDist)
	var hp pq.Heap[matHeapEntry]
	var hpAdj []graph.Edge
	advanceHP := func(limit float64) error {
		for {
			top, ok := hp.Peek()
			if !ok || top.Priority() >= limit {
				return nil
			}
			e, d, _ := hp.Pop()
			st.NodesScanned++
			if err := s.checkExecStride(&st); err != nil {
				return err
			}
			lst := found[e.node]
			if !insertFound(&lst, e.p, d, k) {
				continue
			}
			found[e.node] = lst
			var err error
			hpAdj, err = s.g.Adjacency(e.node, hpAdj)
			if err != nil {
				return err
			}
			for _, edge := range hpAdj {
				nd := d + edge.W
				if tgt := found[edge.To]; len(tgt) == k && !entryLess(nd, e.p, tgt[k-1].D, tgt[k-1].P) {
					continue
				}
				hp.Push(matHeapEntry{edge.To, e.p}, nd)
			}
		}
	}

	var results []points.PointID
	seenCand := make(map[points.PointID]bool)
	seenSite := make(map[points.PointID]bool)
	var probe []PointDist
	for {
		if top, ok := main.heap.Peek(); ok {
			if err := advanceHP(top.Priority()); err != nil {
				return execResult(results, st, err)
			}
		}
		n, d, ok := main.pop()
		if !ok {
			break
		}
		st.NodesExpanded++
		if err := s.checkExec(&st); err != nil {
			return execResult(results, st, err)
		}
		lst := found[n]
		pruned := len(lst) >= k && lst[k-1].D < d
		if site, ok := sites.PointAt(n); ok && !seenSite[site] {
			seenSite[site] = true
			hp.Push(matHeapEntry{n, site}, 0)
		}
		if p, ok := cands.PointAt(n); ok && !seenCand[p] {
			seenCand[p] = true
			closer := 0
			for _, f := range lst {
				if f.D < d {
					closer++
				}
			}
			if closer < k {
				var err error
				probe, err = s.rangeNN(&st, sites, n, k, d, probe)
				if err != nil {
					return execResult(results, st, err)
				}
				if len(probe) < k {
					results = s.confirm(results, p)
				}
			}
		}
		if pruned {
			continue
		}
		var adjErr error
		if main.adj, adjErr = s.g.Adjacency(n, main.adj); adjErr != nil {
			return nil, adjErr
		}
		for _, e := range main.adj {
			main.push(e.To, d+e.W)
		}
	}
	st.HeapPushes += int64(hp.PushCount)
	st.HeapPops += int64(hp.PopCount)
	return finishResult(results, st), nil
}
