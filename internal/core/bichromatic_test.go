package core

import (
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// fig1bNetwork reconstructs the relationships of the Fig 1b road-network
// example: residential blocks p1..p5 (candidates) and restaurants q, q1,
// q2 (sites), with bRNN(q) = {p1,p2,p3}, bRNN(q1) = {p4,p5}, bRNN(q2) = {}.
// We build a restricted network with those relationships (the paper's
// figure is unrestricted; Section 1 notes the two are interconvertible by
// adding nodes for points).
func fig1bNetwork(t *testing.T) (*graph.Graph, *points.NodeSet, *points.NodeSet) {
	t.Helper()
	// Nodes: 0=q, 1=q1, 2=q2, 3..7 = p1..p5, 8,9 = empty junctions.
	b := graph.NewBuilder(10)
	edges := []struct {
		u, v graph.NodeID
		w    float64
	}{
		{0, 3, 1},  // q - p1
		{3, 4, 1},  // p1 - p2 (d(p2,q)=2)
		{4, 8, 1},  // p2 - junction
		{8, 5, 1},  // junction - p3 (d(p3,q)=3)
		{8, 1, 4},  // junction - q1 (d(p3,q1)=5 > 3)
		{1, 6, 1},  // q1 - p4
		{6, 7, 1},  // p4 - p5
		{7, 9, 1},  // p5 - junction2
		{9, 2, 6},  // junction2 - q2 (far from everything)
		{2, 0, 20}, // q2 - q long way around
	}
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cands := points.NewNodeSet(10)
	for _, n := range []graph.NodeID{3, 4, 5, 6, 7} { // p1..p5
		if _, err := cands.Place(n); err != nil {
			t.Fatal(err)
		}
	}
	sites := points.NewNodeSet(10)
	for _, n := range []graph.NodeID{0, 1, 2} { // q, q1, q2
		if _, err := sites.Place(n); err != nil {
			t.Fatal(err)
		}
	}
	return g, cands, sites
}

func TestFig1bBichromaticExample(t *testing.T) {
	g, cands, sites := fig1bNetwork(t)
	s := NewSearcher(g)

	// Querying from a competitor site location: the site itself must be
	// hidden from the pruning set (it is the query).
	type queryCase struct {
		name  string
		qnode graph.NodeID
		qsite points.PointID
		want  []points.PointID
	}
	cases := []queryCase{
		{"q", 0, 0, []points.PointID{0, 1, 2}}, // p1,p2,p3
		{"q1", 1, 1, []points.PointID{3, 4}},   // p4,p5
		{"q2", 2, 2, nil},                      // empty
	}
	for _, c := range cases {
		view := points.ExcludeNode(sites, c.qsite)
		mat, err := s.MatBuild(SeedsRestricted(view), 2, newMemMatFile(), 16, nil)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*Result, error){
			"brute":  func() (*Result, error) { return s.BruteBichromatic(cands, view, c.qnode, 1) },
			"eager":  func() (*Result, error) { return s.EagerBichromatic(cands, view, c.qnode, 1) },
			"eagerM": func() (*Result, error) { return s.EagerMBichromatic(cands, view, mat, c.qnode, 1) },
			"lazy":   func() (*Result, error) { return s.LazyBichromatic(cands, view, c.qnode, 1) },
			"lazyEP": func() (*Result, error) { return s.LazyEPBichromatic(cands, view, c.qnode, 1) },
		} {
			r, err := run()
			if err != nil {
				t.Fatalf("%s(%s): %v", name, c.name, err)
			}
			if len(r.Points) != len(c.want) {
				t.Fatalf("%s: bRNN(%s) = %v, want %v", name, c.name, r.Points, c.want)
			}
			for i := range c.want {
				if r.Points[i] != c.want[i] {
					t.Fatalf("%s: bRNN(%s) = %v, want %v", name, c.name, r.Points, c.want)
				}
			}
		}
	}
}

func TestFig1bBR2NN(t *testing.T) {
	// The paper also gives bR2NN results for Fig 1b; with our
	// reconstructed distances the k=2 sets are checked against brute
	// force rather than the paper's figure-specific values.
	g, cands, sites := fig1bNetwork(t)
	s := NewSearcher(g)
	for _, qnode := range []graph.NodeID{0, 1, 2} {
		qsite, _ := sites.PointAt(qnode)
		view := points.ExcludeNode(sites, qsite)
		want, err := s.BruteBichromatic(cands, view, qnode, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.EagerBichromatic(cands, view, qnode, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("bR2NN from %d: eager=%s brute=%s", qnode, describe(got), describe(want))
		}
	}
}

// TestBichromaticAgreesWithBrute: all four algorithms against brute force
// on random networks with independent random candidate/site sets.
func TestBichromaticAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for it := 0; it < iters; it++ {
		n := 12 + rng.Intn(50)
		g := randNet(t, rng, n, rng.Intn(3*n), 0.5)
		s := NewSearcher(g)
		cands := randPoints(t, rng, g, 1+rng.Intn(n/2))
		sites := randPoints(t, rng, g, 1+rng.Intn(n/3))
		maxK := 1 + rng.Intn(3)
		k := 1 + rng.Intn(maxK)
		mat, err := s.MatBuild(SeedsRestricted(sites), maxK, newMemMatFile(), 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		qnode := graph.NodeID(rng.Intn(n))

		want, err := s.BruteBichromatic(cands, sites, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*Result, error){
			"eager":  func() (*Result, error) { return s.EagerBichromatic(cands, sites, qnode, k) },
			"eagerM": func() (*Result, error) { return s.EagerMBichromatic(cands, sites, mat, qnode, k) },
			"lazy":   func() (*Result, error) { return s.LazyBichromatic(cands, sites, qnode, k) },
			"lazyEP": func() (*Result, error) { return s.LazyEPBichromatic(cands, sites, qnode, k) },
		} {
			got, err := run()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !samePoints(want, got) {
				t.Fatalf("iter %d %s=%s brute=%s (|V|=%d |P|=%d |Q|=%d k=%d q=%d)",
					it, name, describe(got), describe(want), n, cands.Len(), sites.Len(), k, qnode)
			}
		}
	}
}

// TestBichromaticNoSites: with an empty site set every reachable candidate
// is a result.
func TestBichromaticNoSites(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randNet(t, rng, 30, 40, 0)
	s := NewSearcher(g)
	cands := randPoints(t, rng, g, 8)
	sites := points.NewNodeSet(g.NumNodes())
	r, err := s.EagerBichromatic(cands, sites, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != cands.Len() {
		t.Fatalf("eager with no sites returned %d of %d candidates", len(r.Points), cands.Len())
	}
	rl, err := s.LazyBichromatic(cands, sites, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(r, rl) {
		t.Fatalf("lazy disagrees: %v vs %v", rl.Points, r.Points)
	}
}
