package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// This file persists a materialization into a single paged file, so that a
// restart serves the K-NN lists without paying the all-NN build again, and
// implements the crash half of the repair journal: maintenance commits
// flush the list pages and flip one header bit, and an uncommitted
// operation found at open is rolled back from the journal's before-images.
//
// File layout (all regions page-aligned, fixed once written):
//
//	page 0                      header (magic, geometry, point count,
//	                            journal seq + pending flag — the flag is
//	                            the single-page-write commit flip)
//	pages 1 .. R                list locators: one RecRef (page, slot) per
//	                            node, pointing into the list region
//	pages R+1 .. R+L            the list pages, copied verbatim from the
//	                            build-time file
//	pages R+L+1 ..              the tracked point set: one fixed 16-byte
//	                            record per point id (tombstones included),
//	                            updated in place at commit time; this is
//	                            the only region that grows
//
// The journal lives in its own paged file next to the materialization
// (the public layer names it <path>.journal).

// Kinds of tracked point sets, stored in the header so reopening rebuilds
// the right set.
const (
	MatKindNode byte = 0
	MatKindEdge byte = 1
)

// PointRecord is the persisted location of one tracked point: the hosting
// node (U == V) for node-resident sets, the canonical edge and offset for
// edge-resident sets. U < 0 marks a deleted or never-committed id.
type PointRecord struct {
	U, V graph.NodeID
	Pos  float64
}

// PointAbsent is the tombstone record of a deleted point.
var PointAbsent = PointRecord{U: -1, V: -1}

const (
	matMagic        = "GRNNMAT1"
	matHeaderSize   = 42
	matRefSize      = 4 + 2
	pointRecordSize = 4 + 4 + 8
)

// Journal record kinds (first payload byte).
const (
	jrecMeta        byte = 1 // opaque operation descriptor from the caller
	jrecBeforeImage byte = 2 // node id + pre-operation list entries
	jrecPointImage  byte = 3 // point id + pre-operation point record
)

func encodePointImage(p points.PointID, rec PointRecord) []byte {
	buf := make([]byte, 1+4+pointRecordSize)
	buf[0] = jrecPointImage
	binary.LittleEndian.PutUint32(buf[1:], uint32(p))
	encodePointRecord(buf[5:], rec)
	return buf
}

func decodePointImage(payload []byte) (points.PointID, PointRecord, error) {
	if len(payload) < 1+4+pointRecordSize || payload[0] != jrecPointImage {
		return 0, PointRecord{}, fmt.Errorf("core: malformed journal point-image record")
	}
	return points.PointID(binary.LittleEndian.Uint32(payload[1:])), decodePointRecord(payload[5:]), nil
}

func encodeBeforeImage(n graph.NodeID, entries []MatEntry) []byte {
	buf := make([]byte, 1+4+2+len(entries)*matEntrySize)
	buf[0] = jrecBeforeImage
	binary.LittleEndian.PutUint32(buf[1:], uint32(n))
	binary.LittleEndian.PutUint16(buf[5:], uint16(len(entries)))
	off := 7
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.P))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(e.D))
		off += matEntrySize
	}
	return buf
}

func decodeBeforeImage(p []byte) (graph.NodeID, []MatEntry, error) {
	if len(p) < 7 || p[0] != jrecBeforeImage {
		return 0, nil, fmt.Errorf("core: malformed journal before-image record")
	}
	n := graph.NodeID(binary.LittleEndian.Uint32(p[1:]))
	count := int(binary.LittleEndian.Uint16(p[5:]))
	if len(p) < 7+count*matEntrySize {
		return 0, nil, fmt.Errorf("core: truncated journal before-image record for node %d", n)
	}
	entries := make([]MatEntry, count)
	off := 7
	for i := range entries {
		entries[i].P = points.PointID(binary.LittleEndian.Uint32(p[off:]))
		entries[i].D = math.Float64frombits(binary.LittleEndian.Uint64(p[off+4:]))
		off += matEntrySize
	}
	return n, entries, nil
}

// matPersist is the persistence state of a file-backed materialization.
type matPersist struct {
	file    storage.PagedFile
	journal *storage.Journal

	pending   bool
	seq       uint64
	kind      byte
	numPoints int // dense point-id space, tombstones included
	refsPages int
	listPages int

	// durable upgrades maintenance from write-ordering to fsync
	// durability: journal appends sync the journal file, and each header
	// flip syncs the materialization file — which also pushes every list
	// and point-region write issued before the flip. See SetDurable.
	durable bool

	scratch []byte // one page, for direct header/point-region writes
}

func (pst *matPersist) pageSize() int { return pst.file.PageSize() }

func (pst *matPersist) pointBase() int { return 1 + pst.refsPages + pst.listPages }

// writeHeader encodes the header and writes page 0 — the commit flip when
// the pending bit changes.
func (pst *matPersist) writeHeader(m *Materialized, seq uint64, pending bool) error {
	buf := pst.scratch
	for i := range buf {
		buf[i] = 0
	}
	copy(buf[0:8], matMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(pst.pageSize()))
	binary.LittleEndian.PutUint32(buf[12:], uint32(m.maxK))
	binary.LittleEndian.PutUint32(buf[16:], uint32(m.numNodes))
	buf[20] = pst.kind
	if pending {
		buf[21] = 1
	}
	binary.LittleEndian.PutUint64(buf[22:], seq)
	binary.LittleEndian.PutUint32(buf[30:], uint32(pst.numPoints))
	binary.LittleEndian.PutUint32(buf[34:], uint32(pst.refsPages))
	binary.LittleEndian.PutUint32(buf[38:], uint32(pst.listPages))
	if err := pst.file.Write(0, buf); err != nil {
		return err
	}
	if !pst.durable {
		return nil
	}
	// One sync covers the flip and every list/point write issued before
	// it: fsync flushes all writes already issued to the file.
	return storage.SyncFile(pst.file)
}

// readPointRecord returns the persisted record of p; ids beyond the
// committed count (fresh allocations) read as PointAbsent.
func (pst *matPersist) readPointRecord(p points.PointID) (PointRecord, error) {
	if p < 0 {
		return PointRecord{}, fmt.Errorf("core: negative point id %d", p)
	}
	if int(p) >= pst.numPoints {
		return PointAbsent, nil
	}
	perPage := pst.pageSize() / pointRecordSize
	page := storage.PageID(pst.pointBase() + int(p)/perPage)
	if err := pst.file.Read(page, pst.scratch); err != nil {
		return PointRecord{}, err
	}
	return decodePointRecord(pst.scratch[(int(p)%perPage)*pointRecordSize:]), nil
}

// writePointRecord updates the point region record of p in place, growing
// the region by tombstone-filled pages when p is a fresh id.
func (pst *matPersist) writePointRecord(p points.PointID, rec PointRecord) error {
	if p < 0 {
		return fmt.Errorf("core: negative point id %d", p)
	}
	perPage := pst.pageSize() / pointRecordSize
	page := storage.PageID(pst.pointBase() + int(p)/perPage)
	for pst.file.NumPages() <= int(page) {
		for i := range pst.scratch {
			pst.scratch[i] = 0xFF // decodes as PointAbsent
		}
		if _, err := pst.file.Append(pst.scratch); err != nil {
			return err
		}
	}
	if err := pst.file.Read(page, pst.scratch); err != nil {
		return err
	}
	encodePointRecord(pst.scratch[(int(p)%perPage)*pointRecordSize:], rec)
	if err := pst.file.Write(page, pst.scratch); err != nil {
		return err
	}
	if int(p) >= pst.numPoints {
		pst.numPoints = int(p) + 1
	}
	return nil
}

func encodePointRecord(buf []byte, rec PointRecord) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(rec.U))
	binary.LittleEndian.PutUint32(buf[4:], uint32(rec.V))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(rec.Pos))
}

func decodePointRecord(buf []byte) PointRecord {
	return PointRecord{
		U:   graph.NodeID(int32(binary.LittleEndian.Uint32(buf[0:]))),
		V:   graph.NodeID(int32(binary.LittleEndian.Uint32(buf[4:]))),
		Pos: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
	}
}

// checkJournalable verifies a full list's before-image fits one journal
// record of the given page size: a persisted materialization whose lists
// cannot be journaled would accept every build/open and then fail every
// maintenance operation, so it is rejected up front.
func checkJournalable(cap, pageSize int) error {
	if need := 1 + 4 + 2 + cap*matEntrySize; need > storage.JournalMaxRecord(pageSize) {
		return fmt.Errorf("core: K=%d list before-images (%d bytes) do not fit journal records of page size %d; persistence needs a larger page size",
			cap-1, need, pageSize)
	}
	return nil
}

// SetDurable selects the durability level of a file-backed
// materialization's maintenance. Off (the default) relies on write
// ordering alone: a process crash is recoverable because the journal
// record is written before the list page, but an OS crash or power loss
// may reorder what actually reaches the platter. On, every journal append
// syncs the journal file and every header flip syncs the materialization
// file, so a committed operation survives power loss. No-op (and
// harmless) on a memory-backed materialization.
func (m *Materialized) SetDurable(on bool) {
	if m.pst == nil {
		return
	}
	m.pst.durable = on
	m.pst.journal.SetSync(on)
}

// MatFilePageSize reads the page size out of a materialization file's
// header, so reopening needs no recollection of the build-time options.
func MatFilePageSize(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("core: read header of %s: %w", path, err)
	}
	if string(hdr[:8]) != matMagic {
		return 0, fmt.Errorf("core: %s: bad magic %q", path, hdr[:8])
	}
	return int(binary.LittleEndian.Uint32(hdr[8:])), nil
}

// MatSave serializes m — lists, list locators and the tracked point set —
// into file (which must be empty), ready for MatOpen in a later process.
// kind records which point-set shape pts describes. Only materializations
// built in this process can be saved; a reopened one is already persisted.
func MatSave(m *Materialized, kind byte, pts []PointRecord, file storage.PagedFile) error {
	if m.pst != nil {
		return fmt.Errorf("core: materialization is already file-backed")
	}
	if m.RepairPending() {
		return fmt.Errorf("core: unrecovered maintenance operation pending; recover before saving")
	}
	if file.NumPages() != 0 {
		return fmt.Errorf("core: MatSave needs an empty file, got %d pages", file.NumPages())
	}
	pageSize := file.PageSize()
	src := m.bm.File()
	if pageSize != src.PageSize() {
		return fmt.Errorf("core: page size %d does not match the list file's %d", pageSize, src.PageSize())
	}
	if err := checkJournalable(m.cap, pageSize); err != nil {
		return err
	}
	if err := m.bm.Flush(); err != nil {
		return err
	}

	refsPerPage := pageSize / matRefSize
	refsPages := (m.numNodes + refsPerPage - 1) / refsPerPage
	listPages := src.NumPages()
	perPage := pageSize / pointRecordSize
	pst := &matPersist{
		file:      file,
		kind:      kind,
		numPoints: len(pts),
		refsPages: refsPages,
		listPages: listPages,
		scratch:   make([]byte, pageSize),
	}

	// Header first (pages append in layout order), then locators with
	// their page ids rebased past header and locator regions.
	if err := pst.writeHeaderAppend(m); err != nil {
		return err
	}
	buf := make([]byte, pageSize)
	base := 1 + refsPages
	for p := 0; p < refsPages; p++ {
		for i := range buf {
			buf[i] = 0
		}
		for i := 0; i < refsPerPage; i++ {
			n := p*refsPerPage + i
			if n >= m.numNodes {
				break
			}
			ref := m.refs[n]
			binary.LittleEndian.PutUint32(buf[i*matRefSize:], uint32(int(ref.Page)+base))
			binary.LittleEndian.PutUint16(buf[i*matRefSize+4:], ref.Slot)
		}
		if _, err := file.Append(buf); err != nil {
			return err
		}
	}
	for p := 0; p < listPages; p++ {
		if err := src.Read(storage.PageID(p), buf); err != nil {
			return err
		}
		if _, err := file.Append(buf); err != nil {
			return err
		}
	}
	for off := 0; off < len(pts); off += perPage {
		for i := range buf {
			buf[i] = 0xFF // tombstone padding
		}
		for i := 0; i < perPage && off+i < len(pts); i++ {
			encodePointRecord(buf[i*pointRecordSize:], pts[off+i])
		}
		if _, err := file.Append(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeHeaderAppend appends the header as page 0 of a fresh file.
func (pst *matPersist) writeHeaderAppend(m *Materialized) error {
	if _, err := pst.file.Append(pst.scratch); err != nil {
		return err
	}
	return pst.writeHeader(m, 0, false)
}

// MatOpen deserializes a materialization previously written by MatSave.
// bm must wrap file (typically a tenant of the shared buffer pool);
// journalFile is the repair journal accompanying the file. When the header
// records an uncommitted maintenance operation — a crash mid-repair — the
// operation is rolled back from the journal before the lists are served.
// It returns the materialization, the point-set kind, and the persisted
// point records (dense by point id, PointAbsent tombstones included).
func MatOpen(file storage.PagedFile, bm *storage.BufferManager, journalFile storage.PagedFile) (*Materialized, byte, []PointRecord, error) {
	pageSize := file.PageSize()
	if file.NumPages() == 0 || pageSize < matHeaderSize {
		return nil, 0, nil, fmt.Errorf("core: not a materialization file")
	}
	buf := make([]byte, pageSize)
	if err := file.Read(0, buf); err != nil {
		return nil, 0, nil, err
	}
	if string(buf[0:8]) != matMagic {
		return nil, 0, nil, fmt.Errorf("core: bad materialization file magic")
	}
	if got := int(binary.LittleEndian.Uint32(buf[8:])); got != pageSize {
		return nil, 0, nil, fmt.Errorf("core: file was written with page size %d, opened with %d", got, pageSize)
	}
	maxK := int(binary.LittleEndian.Uint32(buf[12:]))
	numNodes := int(binary.LittleEndian.Uint32(buf[16:]))
	pst := &matPersist{
		file:      file,
		journal:   storage.NewJournal(journalFile),
		kind:      buf[20],
		pending:   buf[21] != 0,
		seq:       binary.LittleEndian.Uint64(buf[22:]),
		numPoints: int(binary.LittleEndian.Uint32(buf[30:])),
		refsPages: int(binary.LittleEndian.Uint32(buf[34:])),
		listPages: int(binary.LittleEndian.Uint32(buf[38:])),
		scratch:   make([]byte, pageSize),
	}
	if maxK < 1 || numNodes < 0 || pst.numPoints < 0 {
		return nil, 0, nil, fmt.Errorf("core: corrupt materialization header")
	}
	if err := checkJournalable(maxK+1, pageSize); err != nil {
		return nil, 0, nil, err
	}
	// Region geometry must fit the file before anything is sized off it: a
	// corrupt header could otherwise demand an absurd allocation (refs,
	// point table) or send recovery appending pages toward a far-off point
	// region.
	refsPerPage := pageSize / matRefSize
	perPage := pageSize / pointRecordSize
	pointPages := (pst.numPoints + perPage - 1) / perPage
	switch {
	case pst.refsPages < 0 || pst.listPages < 0:
		return nil, 0, nil, fmt.Errorf("core: corrupt materialization header: negative region size")
	case numNodes > pst.refsPages*refsPerPage:
		return nil, 0, nil, fmt.Errorf("core: corrupt materialization header: %d nodes exceed %d locator pages", numNodes, pst.refsPages)
	case pst.pointBase()+pointPages > file.NumPages():
		return nil, 0, nil, fmt.Errorf("core: corrupt materialization header: regions exceed the file's %d pages", file.NumPages())
	}

	m := &Materialized{maxK: maxK, cap: maxK + 1, numNodes: numNodes, bm: bm, pst: pst}
	m.refs = make([]storage.RecRef, numNodes)
	for n := 0; n < numNodes; n++ {
		page := 1 + n/refsPerPage
		if n%refsPerPage == 0 {
			if err := file.Read(storage.PageID(page), buf); err != nil {
				return nil, 0, nil, err
			}
		}
		off := (n % refsPerPage) * matRefSize
		m.refs[n] = storage.RecRef{
			Page: storage.PageID(binary.LittleEndian.Uint32(buf[off:])),
			Slot: binary.LittleEndian.Uint16(buf[off+4:]),
		}
		if int(m.refs[n].Page) <= pst.refsPages || int(m.refs[n].Page) > pst.refsPages+pst.listPages {
			return nil, 0, nil, fmt.Errorf("core: list locator of node %d outside the list region", n)
		}
	}
	m.pages.New = func() any { return make([]byte, pageSize) }

	if pst.pending {
		if err := m.recoverFromJournal(); err != nil {
			return nil, 0, nil, fmt.Errorf("core: journal recovery: %w", err)
		}
	}

	pts := make([]PointRecord, pst.numPoints)
	for p := 0; p < pst.numPoints; p++ {
		page := pst.pointBase() + p/perPage
		if p%perPage == 0 {
			if err := file.Read(storage.PageID(page), buf); err != nil {
				return nil, 0, nil, err
			}
		}
		pts[p] = decodePointRecord(buf[(p%perPage)*pointRecordSize:])
	}
	return m, pst.kind, pts, nil
}

// recoverFromJournal rolls back the uncommitted operation recorded in the
// header by restoring the journal's before-images, then flips the header
// clean. Idempotent: a crash during recovery replays it on the next open.
func (m *Materialized) recoverFromJournal() error {
	pst := m.pst
	records := 0
	err := pst.journal.Replay(pst.seq, func(payload []byte) error {
		records++
		if len(payload) == 0 {
			return nil
		}
		switch payload[0] {
		case jrecBeforeImage:
			n, entries, err := decodeBeforeImage(payload)
			if err != nil {
				return err
			}
			if n < 0 || int(n) >= m.numNodes {
				return fmt.Errorf("core: journal names node %d of %d", n, m.numNodes)
			}
			return m.restoreList(n, entries)
		case jrecPointImage:
			// The commit reached its point-region write before dying;
			// undo it. Fresh ids (beyond the committed count) need no
			// restore — the header's numPoints never saw them.
			p, old, err := decodePointImage(payload)
			if err != nil {
				return err
			}
			if int(p) < pst.numPoints {
				return pst.writePointRecord(p, old)
			}
			return nil
		}
		return nil
	})
	if err != nil {
		return err
	}
	if records == 0 {
		// The header flips to pending only after the operation's first
		// journal record is durable, so a pending header with no matching
		// records means the journal file is missing or truncated — do not
		// silently declare the lists clean.
		return fmt.Errorf("core: header records operation %d but the journal holds no records for it", pst.seq)
	}
	if err := m.bm.Flush(); err != nil {
		return err
	}
	if err := pst.writeHeader(m, pst.seq, false); err != nil {
		return err
	}
	pst.pending = false
	return nil
}
