package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
	"graphrnn/internal/storage"
)

// bruteLists computes, independently of the library's expansion code, the
// canonical top-cap materialized list of every node: a full Dijkstra from
// each node over an adjacency map, collecting point distances.
func bruteLists(t *testing.T, g *graph.Graph, ps points.NodeView, cap int) [][]MatEntry {
	t.Helper()
	n := g.NumNodes()
	out := make([][]MatEntry, n)
	var adj []graph.Edge
	for src := 0; src < n; src++ {
		dist := make([]float64, n)
		done := make([]bool, n)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		for {
			best, bd := -1, math.Inf(1)
			for i := 0; i < n; i++ {
				if !done[i] && dist[i] < bd {
					best, bd = i, dist[i]
				}
			}
			if best < 0 {
				break
			}
			done[best] = true
			adj, _ = g.Adjacency(graph.NodeID(best), adj)
			for _, e := range adj {
				if nd := bd + e.W; nd < dist[e.To] {
					dist[e.To] = nd
				}
			}
		}
		var lst []MatEntry
		for _, p := range ps.Points() {
			pn, ok := ps.NodeOf(p)
			if !ok {
				continue
			}
			if !math.IsInf(dist[pn], 1) {
				lst = append(lst, MatEntry{P: p, D: dist[pn]})
			}
		}
		sort.Slice(lst, func(i, j int) bool {
			return entryLess(lst[i].D, lst[i].P, lst[j].D, lst[j].P)
		})
		if len(lst) > cap {
			lst = lst[:cap]
		}
		out[src] = lst
	}
	return out
}

func newMemMatFile() *storage.MemFile { return storage.NewMemFile(storage.DefaultPageSize) }

func buildMat(t *testing.T, s *Searcher, ps points.NodeView, maxK int) *Materialized {
	t.Helper()
	mat, err := s.MatBuild(SeedsRestricted(ps), maxK, storage.NewMemFile(storage.DefaultPageSize), 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	return mat
}

func assertMatEqual(t *testing.T, mat *Materialized, want [][]MatEntry, context string) {
	t.Helper()
	var lst []MatEntry
	var err error
	for n := range want {
		lst, err = mat.List(graph.NodeID(n), lst)
		if err != nil {
			t.Fatalf("%s: List(%d): %v", context, n, err)
		}
		if len(lst) != len(want[n]) {
			t.Fatalf("%s: node %d list = %v, want %v", context, n, lst, want[n])
		}
		for i := range lst {
			if lst[i] != want[n][i] {
				t.Fatalf("%s: node %d list = %v, want %v", context, n, lst, want[n])
			}
		}
	}
}

func TestMatBuildMatchesBruteLists(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for it := 0; it < iters; it++ {
		net := randTestNet(t, rng)
		s := NewSearcher(net.g)
		maxK := 1 + rng.Intn(3)
		mat := buildMat(t, s, net.ps, maxK)
		want := bruteLists(t, net.g, net.ps, maxK+1)
		assertMatEqual(t, mat, want, "build")
	}
}

func TestMatBuildPaperNetwork(t *testing.T) {
	g, ps, _ := paperGraph(t)
	s := NewSearcher(g)
	mat := buildMat(t, s, ps, 1)
	// Own-node points appear first at distance zero (K+1 = 2 entries).
	var lst []MatEntry
	for p, node := range map[points.PointID]graph.NodeID{0: 5, 1: 4, 2: 6} {
		var err error
		lst, err = mat.List(node, lst)
		if err != nil {
			t.Fatal(err)
		}
		if len(lst) == 0 || lst[0] != (MatEntry{P: p, D: 0}) {
			t.Fatalf("list(%d) = %v, want own point %d at distance 0 first", node, lst, p)
		}
	}
	want := bruteLists(t, g, ps, 2)
	assertMatEqual(t, mat, want, "paper network")
}

func TestMatBuildValidation(t *testing.T) {
	g, ps, _ := paperGraph(t)
	s := NewSearcher(g)
	if _, err := s.MatBuild(SeedsRestricted(ps), 0, storage.NewMemFile(512), 4, nil); err == nil {
		t.Fatal("maxK=0 accepted")
	}
	f := storage.NewMemFile(512)
	if _, err := f.Append(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MatBuild(SeedsRestricted(ps), 1, f, 4, nil); err == nil {
		t.Fatal("non-empty file accepted")
	}
	if _, err := s.MatBuild(SeedsRestricted(ps), 1000, storage.NewMemFile(512), 4, nil); err == nil {
		t.Fatal("oversized K accepted for tiny pages")
	}
}

// TestMatInsertMatchesRebuild drives random insertion sequences and checks
// the maintained lists stay bit-identical to a from-scratch rebuild.
func TestMatInsertMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for it := 0; it < iters; it++ {
		g := randNet(t, rng, 15+rng.Intn(40), rng.Intn(80), 0.5)
		s := NewSearcher(g)
		ps := points.NewNodeSet(g.NumNodes())
		// Start with a few points.
		perm := rng.Perm(g.NumNodes())
		cursor := 0
		for ; cursor < 3; cursor++ {
			if _, err := ps.Place(graph.NodeID(perm[cursor])); err != nil {
				t.Fatal(err)
			}
		}
		maxK := 1 + rng.Intn(3)
		mat := buildMat(t, s, ps, maxK)
		// Insert up to 5 more points one by one.
		for step := 0; step < 5 && cursor < len(perm); step++ {
			node := graph.NodeID(perm[cursor])
			cursor++
			p, err := ps.Place(node)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.MatInsert(mat, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
				t.Fatal(err)
			}
			want := bruteLists(t, g, ps, maxK+1)
			assertMatEqual(t, mat, want, "after insert")
		}
	}
}

// TestMatDeleteMatchesRebuild drives random deletion sequences, including
// cascades where the replacement entries originate inside the affected
// region, and checks against a rebuild.
func TestMatDeleteMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for it := 0; it < iters; it++ {
		g := randNet(t, rng, 15+rng.Intn(40), rng.Intn(80), 0.5)
		s := NewSearcher(g)
		count := 4 + rng.Intn(6)
		ps := randPoints(t, rng, g, count)
		maxK := 1 + rng.Intn(3)
		mat := buildMat(t, s, ps, maxK)
		pts := ps.Points()
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		deletions := 1 + rng.Intn(3)
		for step := 0; step < deletions && step < len(pts)-1; step++ {
			p := pts[step]
			node, _ := ps.NodeOf(p)
			if err := ps.Delete(p); err != nil {
				t.Fatal(err)
			}
			if _, err := s.MatDelete(mat, p, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
				t.Fatal(err)
			}
			want := bruteLists(t, g, ps, maxK+1)
			assertMatEqual(t, mat, want, "after delete")
		}
	}
}

// TestMatMixedUpdates interleaves inserts and deletes.
func TestMatMixedUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for it := 0; it < 25; it++ {
		g := randNet(t, rng, 20+rng.Intn(30), rng.Intn(60), 0.5)
		s := NewSearcher(g)
		ps := randPoints(t, rng, g, 5)
		maxK := 1 + rng.Intn(2)
		mat := buildMat(t, s, ps, maxK)
		for step := 0; step < 8; step++ {
			pts := ps.Points()
			if rng.Intn(2) == 0 && len(pts) > 1 {
				p := pts[rng.Intn(len(pts))]
				node, _ := ps.NodeOf(p)
				if err := ps.Delete(p); err != nil {
					t.Fatal(err)
				}
				if _, err := s.MatDelete(mat, p, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
					t.Fatal(err)
				}
			} else {
				node := graph.NodeID(rng.Intn(g.NumNodes()))
				if _, occupied := ps.PointAt(node); occupied {
					continue
				}
				p, err := ps.Place(node)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.MatInsert(mat, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
					t.Fatal(err)
				}
			}
			want := bruteLists(t, g, ps, maxK+1)
			assertMatEqual(t, mat, want, "after mixed update")
		}
	}
}

func TestMatUpdateIOIsAccounted(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	g := randNet(t, rng, 60, 120, 0)
	s := NewSearcher(g)
	ps := randPoints(t, rng, g, 6)
	mat := buildMat(t, s, ps, 2)
	mat.ResetStats()

	node := graph.NodeID(0)
	if _, occupied := ps.PointAt(node); occupied {
		node = 1
	}
	p, err := ps.Place(node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MatInsert(mat, []MatSeed{{Node: node, P: p, D: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := mat.Flush(); err != nil {
		t.Fatal(err)
	}
	st := mat.Stats()
	if st.Reads == 0 && st.Hits == 0 {
		t.Fatalf("insert performed no list reads: %+v", st)
	}
	if st.Writes == 0 {
		t.Fatalf("insert flushed no writes: %+v", st)
	}
}

// TestEagerMAgreesWithBrute is the eager-M correctness property test,
// including hidden (query co-located) points that the K+1-th entry must
// absorb.
func TestEagerMAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for it := 0; it < iters; it++ {
		net := randTestNet(t, rng)
		s := NewSearcher(net.g)
		maxK := 1 + rng.Intn(4)
		mat := buildMat(t, s, net.ps, maxK)
		k := 1 + rng.Intn(maxK)

		pts := net.ps.Points()
		qp := pts[rng.Intn(len(pts))]
		qnode, _ := net.ps.NodeOf(qp)
		view := points.ExcludeNode(net.ps, qp)

		want, err := s.BruteRkNN(view, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.EagerMRkNN(view, mat, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d: eagerM=%s brute=%s (|V|=%d |P|=%d k=%d maxK=%d q=%d)",
				it, describe(got), describe(want), net.g.NumNodes(), view.Len(), k, maxK, qnode)
		}
		// Also from an empty node without exclusion.
		qnode2 := graph.NodeID(rng.Intn(net.g.NumNodes()))
		want, err = s.BruteRkNN(net.ps, qnode2, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err = s.EagerMRkNN(net.ps, mat, qnode2, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d (empty q): eagerM=%s brute=%s (k=%d q=%d)", it, describe(got), describe(want), k, qnode2)
		}
	}
}

func TestEagerMValidation(t *testing.T) {
	g, ps, q := paperGraph(t)
	s := NewSearcher(g)
	mat := buildMat(t, s, ps, 2)
	if _, err := s.EagerMRkNN(ps, mat, q, 3); err == nil {
		t.Fatal("k > MaxK accepted")
	}
	if _, err := s.EagerMRkNN(ps, nil, q, 1); err == nil {
		t.Fatal("nil materialized accepted")
	}
}

// TestLazyEPAgreesWithBrute is the lazy-EP correctness property test.
func TestLazyEPAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	iters := 250
	if testing.Short() {
		iters = 50
	}
	for it := 0; it < iters; it++ {
		net := randTestNet(t, rng)
		s := NewSearcher(net.g)
		k := 1 + rng.Intn(4)
		pts := net.ps.Points()
		qp := pts[rng.Intn(len(pts))]
		qnode, _ := net.ps.NodeOf(qp)
		view := points.ExcludeNode(net.ps, qp)

		want, err := s.BruteRkNN(view, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.LazyEPRkNN(view, qnode, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d: lazyEP=%s brute=%s (|V|=%d |P|=%d k=%d q=%d)",
				it, describe(got), describe(want), net.g.NumNodes(), view.Len(), k, qnode)
		}
		qnode2 := graph.NodeID(rng.Intn(net.g.NumNodes()))
		want, err = s.BruteRkNN(net.ps, qnode2, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err = s.LazyEPRkNN(net.ps, qnode2, k)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d (empty q): lazyEP=%s brute=%s (k=%d q=%d)", it, describe(got), describe(want), k, qnode2)
		}
	}
}

func TestLazyEPFig12Scenario(t *testing.T) {
	// Fig 12: a path q=n1 - n2(p1) - n3 - n4 - ... where plain lazy would
	// expand past n4 but lazy-EP's H' marks n4 as closer to p1 and prunes.
	const n = 30
	b := graph.NewBuilder(n)
	if err := b.AddEdge(0, 1, 1); err != nil { // n1-n2
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 2, 3); err != nil { // n1-n3
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 1); err != nil { // n3-n4
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 3, 2); err != nil { // n2-n4 (so d(p1,n4)=2 < d(q,n4)=4)
		t.Fatal(err)
	}
	// Long tail beyond n4 that must not be expanded.
	for i := 4; i < n; i++ {
		if err := b.AddEdge(graph.NodeID(i-1), graph.NodeID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := points.NewNodeSet(n)
	p1, _ := ps.Place(1)
	s := NewSearcher(g)
	r, err := s.LazyEPRkNN(ps, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1 || r.Points[0] != p1 {
		t.Fatalf("result = %v, want [p1]", r.Points)
	}
	// The tail has ~26 nodes; lazy-EP must stop at n4, so the main
	// expansion pops only a handful of nodes.
	if r.Stats.NodesExpanded > 6 {
		t.Fatalf("lazy-EP expanded %d nodes; extended pruning failed", r.Stats.NodesExpanded)
	}
	// Plain lazy expands far beyond (its verification range d(p1,q)=1
	// cannot mark n4).
	rl, err := s.LazyRkNN(ps, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Stats.NodesExpanded <= r.Stats.NodesExpanded {
		t.Fatalf("expected lazy (%d nodes) to expand more than lazy-EP (%d nodes)",
			rl.Stats.NodesExpanded, r.Stats.NodesExpanded)
	}
}

func TestContinuousAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	iters := 150
	if testing.Short() {
		iters = 30
	}
	for it := 0; it < iters; it++ {
		net := randTestNet(t, rng)
		s := NewSearcher(net.g)
		maxK := 1 + rng.Intn(3)
		mat := buildMat(t, s, net.ps, maxK)
		k := 1 + rng.Intn(maxK)
		// Random walk route without repeated nodes (as in Fig 19).
		route := randomWalkRoute(t, net.g, rng, 1+rng.Intn(8))

		want, err := s.BruteContinuous(net.ps, route, k)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*Result, error){
			"eager":  func() (*Result, error) { return s.EagerContinuous(net.ps, route, k) },
			"lazy":   func() (*Result, error) { return s.LazyContinuous(net.ps, route, k) },
			"eagerM": func() (*Result, error) { return s.EagerMContinuous(net.ps, mat, route, k) },
			"lazyEP": func() (*Result, error) { return s.LazyEPContinuous(net.ps, route, k) },
		} {
			got, err := run()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !samePoints(want, got) {
				t.Fatalf("iter %d %s=%s brute=%s (route=%v k=%d)", it, name, describe(got), describe(want), route, k)
			}
		}
	}
}

func randomWalkRoute(t testing.TB, g *graph.Graph, rng *rand.Rand, size int) []graph.NodeID {
	t.Helper()
	start := graph.NodeID(rng.Intn(g.NumNodes()))
	route := []graph.NodeID{start}
	onRoute := map[graph.NodeID]bool{start: true}
	var adj []graph.Edge
	for len(route) < size {
		adj, _ = g.Adjacency(route[len(route)-1], adj)
		var options []graph.NodeID
		for _, e := range adj {
			if !onRoute[e.To] {
				options = append(options, e.To)
			}
		}
		if len(options) == 0 {
			break
		}
		next := options[rng.Intn(len(options))]
		route = append(route, next)
		onRoute[next] = true
	}
	return route
}
