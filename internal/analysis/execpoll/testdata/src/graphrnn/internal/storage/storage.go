package storage

// Pool mirrors the buffer pool's page-read surface.
type Pool struct{ pages int }

type Page []byte

func (p *Pool) Get(id uint32) (Page, error) { return nil, nil }

func (p *Pool) Update(id uint32, fn func(Page) error) error { return fn(nil) }
