package exec

// Ctx mirrors the execution context the contract is about.
type Ctx struct{ budget int64 }

func (e *Ctx) Check(work int64) error {
	e.budget -= work
	return nil
}
