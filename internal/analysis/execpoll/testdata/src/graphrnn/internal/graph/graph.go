package graph

// Store mirrors the adjacency provider.
type Store struct{ deg int }

func (s *Store) Adjacency(n uint32) ([]uint32, error) {
	return make([]uint32, s.deg), nil
}
