// Package polltest is the execpoll golden fixture: loops that expand nodes
// or read pages with and without polling the exec context.
package polltest

import (
	"sync"

	"graphrnn/internal/exec"
	"graphrnn/internal/graph"
	"graphrnn/internal/storage"
)

type searcher struct {
	ec *exec.Ctx
	g  *graph.Store
}

func (s *searcher) checkExec() error { return s.ec.Check(1) }

// expandUnpolled is the bug shape: a frontier expansion with no poll.
func expandUnpolled(g *graph.Store, frontier []uint32) int {
	total := 0
	for _, n := range frontier { // want `without polling the exec context`
		adj, err := g.Adjacency(n)
		if err != nil {
			return total
		}
		total += len(adj)
	}
	return total
}

// expandPolled polls the context directly each iteration.
func expandPolled(ec *exec.Ctx, g *graph.Store, frontier []uint32) (int, error) {
	total := 0
	for _, n := range frontier {
		if err := ec.Check(1); err != nil {
			return total, err
		}
		adj, _ := g.Adjacency(n)
		total += len(adj)
	}
	return total, nil
}

// expandWrapped polls through the searcher's checkExec wrapper.
func (s *searcher) expandWrapped(frontier []uint32) (int, error) {
	total := 0
	for _, n := range frontier {
		if err := s.checkExec(); err != nil {
			return total, err
		}
		adj, _ := s.g.Adjacency(n)
		total += len(adj)
	}
	return total, nil
}

// pageScanUnpolled reads pages in a bare for loop: flagged too.
func pageScanUnpolled(p *storage.Pool, n uint32) int {
	total := 0
	for id := uint32(0); id < n; id++ { // want `without polling the exec context`
		pg, _ := p.Get(id)
		total += len(pg)
	}
	return total
}

// nestedInnerPoll polls only in the inner loop; the inner poll runs at
// least once per outer iteration, so both loops are covered.
func nestedInnerPoll(ec *exec.Ctx, g *graph.Store, rounds int, frontier []uint32) error {
	for r := 0; r < rounds; r++ {
		for _, n := range frontier {
			if err := ec.Check(1); err != nil {
				return err
			}
			g.Adjacency(n)
		}
	}
	return nil
}

// closureIsolated: the loop itself only builds closures; the closure's own
// body is judged separately and has no loop, so nothing is flagged.
func closureIsolated(g *graph.Store, frontier []uint32) []func() int {
	var fns []func() int
	for _, n := range frontier {
		n := n
		fns = append(fns, func() int {
			adj, _ := g.Adjacency(n)
			return len(adj)
		})
	}
	return fns
}

// closureLoopUnpolled: a loop inside a closure is judged on its own and
// still needs a poll.
func closureLoopUnpolled(g *graph.Store, frontier []uint32) func() int {
	return func() int {
		total := 0
		for _, n := range frontier { // want `without polling the exec context`
			adj, _ := g.Adjacency(n)
			total += len(adj)
		}
		return total
	}
}

// loadAll is a deliberate exception: a load-time loop, annotated in place.
func loadAll(g *graph.Store, frontier []uint32) int {
	total := 0
	//lint:ignore vetrnn/execpoll load-time bulk scan, no query context exists yet
	for _, n := range frontier {
		adj, _ := g.Adjacency(n)
		total += len(adj)
	}
	return total
}

// plainLoop touches none of the paging primitives: not subject to the rule.
func plainLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// batchedBuildPolled mirrors the parallel hub-label build: worker
// goroutine closures drain a jobs channel, and each drain loop polls the
// shared exec context (Check is read-only, so one Ctx serves every
// worker).
func batchedBuildPolled(ec *exec.Ctx, g *graph.Store, batch []uint32) {
	jobs := make(chan uint32, len(batch))
	for _, h := range batch {
		jobs <- h
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range jobs {
				if err := ec.Check(1); err != nil {
					return
				}
				g.Adjacency(h)
			}
		}()
	}
	wg.Wait()
}

// batchedBuildUnpolled is the same shape with the poll missing: the drain
// loop lives in a goroutine closure, but it expands adjacency like any
// other loop and is flagged the same way.
func batchedBuildUnpolled(g *graph.Store, batch []uint32) {
	jobs := make(chan uint32, len(batch))
	for _, h := range batch {
		jobs <- h
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range jobs { // want `without polling the exec context`
				g.Adjacency(h)
			}
		}()
	}
	wg.Wait()
}
