// Package execpoll checks the engine's cancellation contract: every loop
// that expands nodes or reads pages must poll the query's execution context
// from inside the loop, so cancellation, deadlines and budgets take effect
// within one expansion step (the PR 3 contract every algorithm in
// internal/core and internal/hublabel follows).
//
// A loop is an expansion/page-read loop when its body calls one of the
// engine's paging or expansion primitives: graph adjacency fetches,
// materialized-list reads, hub-label fetches, buffer-pool page reads, or
// pops from the expansion heap/scratch. Such a loop must also call
// (*exec.Ctx).Check — directly or through the Searcher's checkExec /
// checkExecStride wrappers — somewhere in its body (a poll inside a nested
// loop counts: it runs at least as often as the outer iteration resumes).
//
// Deliberate exceptions — build-time loops, load-time loops, pure in-memory
// drains — are annotated in place:
//
//	//lint:ignore vetrnn/execpoll <why this loop is exempt>
package execpoll

import (
	"go/ast"

	"graphrnn/internal/analysis"
)

// Analyzer is the execpoll check.
var Analyzer = &analysis.Analyzer{
	Name:      "execpoll",
	Doc:       "expansion and page-read loops must poll the exec context (Check/checkExec) in the loop body",
	SkipTests: true,
	Run:       run,
}

// triggers are the paging/expansion primitives that make a loop subject to
// the polling contract, keyed by method name with the defining package's
// path suffix.
var triggers = map[string][]string{
	"Adjacency": {"internal/graph"},
	"List":      {"internal/core"},
	"pop":       {"internal/core"},
	"InLabel":   {"internal/hublabel"},
	"OutLabel":  {"internal/hublabel"},
	"Get":       {"internal/storage"},
	"GetInto":   {"internal/storage"},
	"Update":    {"internal/storage"},
	"Pop":       {"internal/pq"},
}

// loopInfo tracks one lexical loop during the walk.
type loopInfo struct {
	node    ast.Node
	parent  *loopInfo
	polled  bool
	trigger *ast.CallExpr // first uncovered trigger found in the body
}

func run(pass *analysis.Pass) error {
	var visit func(n ast.Node, innermost *loopInfo)
	var done []*loopInfo

	visitChildren := func(n ast.Node, innermost *loopInfo) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				visit(c, innermost)
			}
			return false
		})
	}

	visit = func(n ast.Node, innermost *loopInfo) {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure runs on its own schedule; its loops are judged in
			// isolation, and its calls do not belong to the enclosing loop.
			visitChildren(n, nil)
			return
		case *ast.ForStmt, *ast.RangeStmt:
			li := &loopInfo{node: n, parent: innermost}
			visitChildren(n, li)
			done = append(done, li)
			return
		case *ast.CallExpr:
			if isPoll(pass, n) {
				for l := innermost; l != nil; l = l.parent {
					l.polled = true
				}
			} else if innermost != nil && innermost.trigger == nil && isTrigger(pass, n) {
				innermost.trigger = n
			}
		}
		visitChildren(n, innermost)
	}

	for _, file := range pass.Files {
		visit(file, nil)
	}

	for _, li := range done {
		if li.trigger == nil {
			continue
		}
		covered := false
		for l := li; l != nil; l = l.parent {
			if l.polled {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		callee := analysis.Callee(pass.TypesInfo, li.trigger)
		pass.Reportf(li.node.Pos(),
			"loop expands nodes or reads pages (%s) without polling the exec context; call Check/checkExec in the loop body",
			callee.Name())
	}
	return nil
}

func isTrigger(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	for _, suffix := range triggers[fn.Name()] {
		if analysis.PathHasSuffix(fn.Pkg().Path(), suffix) {
			return true
		}
	}
	return false
}

func isPoll(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Name() == "Check" && analysis.PathHasSuffix(fn.Pkg().Path(), "internal/exec") {
		return true
	}
	// The Searcher's polling wrappers, and any future substrate's wrapper
	// following the same naming convention.
	return fn.Name() == "checkExec" || fn.Name() == "checkExecStride"
}
