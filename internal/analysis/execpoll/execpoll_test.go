package execpoll_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/execpoll"
)

func TestExecpoll(t *testing.T) {
	analysistest.Run(t, "testdata", execpoll.Analyzer, "graphrnn/polltest")
}
