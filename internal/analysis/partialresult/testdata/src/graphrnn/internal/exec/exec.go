package exec

import "errors"

var (
	ErrCanceled         = errors.New("exec: canceled")
	ErrDeadlineExceeded = errors.New("exec: deadline exceeded")
	ErrBudgetExceeded   = errors.New("exec: budget exceeded")
)

// IsExecErr reports whether err is an execution-control error.
func IsExecErr(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrBudgetExceeded)
}
