// Package partialtest is the partialresult golden fixture: branches that
// prove an execution-control error must carry the accumulated result out.
package partialtest

import (
	"errors"

	"graphrnn/internal/exec"
)

type result struct{ ids []uint32 }

func search() ([]uint32, error) { return nil, exec.ErrBudgetExceeded }

// dropsPartial is the bug shape: the exec error is identified, then the
// result built so far is replaced with nil.
func dropsPartial(found []uint32) ([]uint32, error) {
	more, err := search()
	found = append(found, more...)
	if err != nil {
		if exec.IsExecErr(err) {
			return nil, err // want `return the accumulated result, not nil`
		}
		return nil, err
	}
	return found, nil
}

// dropsPartialStruct drops a struct result the same way.
func dropsPartialStruct(r result) (result, error) {
	_, err := search()
	if exec.IsExecErr(err) {
		return result{}, err // want `return the accumulated result, not result\{\}`
	}
	return r, nil
}

// keepsPartial is the contract: the accumulated result rides out with the
// exec error.
func keepsPartial(found []uint32) ([]uint32, error) {
	more, err := search()
	found = append(found, more...)
	if exec.IsExecErr(err) {
		return found, err
	}
	if err != nil {
		return nil, err
	}
	return found, nil
}

// errorsIsForms: errors.Is against a typed exec error proves it too, also
// under &&.
func errorsIsForms(found []uint32, strict bool) ([]uint32, error) {
	_, err := search()
	if errors.Is(err, exec.ErrCanceled) {
		return nil, err // want `return the accumulated result, not nil`
	}
	if strict && errors.Is(err, exec.ErrDeadlineExceeded) {
		return nil, err // want `return the accumulated result, not nil`
	}
	return found, nil
}

// negatedIsFine: !IsExecErr means a real failure, and real failures
// invalidate the result.
func negatedIsFine(found []uint32) ([]uint32, error) {
	_, err := search()
	if err != nil && !exec.IsExecErr(err) {
		return nil, err
	}
	return found, nil
}

// closureReturnsElsewhere: returns inside a nested function literal belong
// to that literal, not to the guarded function.
func closureReturnsElsewhere(found []uint32) ([]uint32, error) {
	_, err := search()
	if exec.IsExecErr(err) {
		f := func() []uint32 { return nil }
		return f(), err
	}
	return found, nil
}

// documentedDrop is a deliberate exception: nothing was accumulated yet.
func documentedDrop() ([]uint32, error) {
	_, err := search()
	if exec.IsExecErr(err) {
		//lint:ignore vetrnn/partialresult the budget tripped before the first expansion, nothing accumulated
		return nil, err
	}
	return []uint32{1}, nil
}
