package partialresult_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/partialresult"
)

func TestPartialresult(t *testing.T) {
	analysistest.Run(t, "testdata", partialresult.Analyzer, "graphrnn/partialtest")
}
