// Package partialresult checks the engine's partial-result contract
// (PR 3): an execution-control error — cancellation, deadline, budget —
// carries the result accumulated so far out with it; only real failures
// invalidate the result. A function that has just established "this is an
// exec error" and then returns nil (or a zero composite) for a non-error
// result is throwing the partial result away.
//
// The analyzer flags return statements lexically inside a branch whose
// condition proves the error is an execution-control error — a call to
// IsExecErr, or errors.Is against ErrCanceled / ErrDeadlineExceeded /
// ErrBudgetExceeded (possibly conjoined with && ) — when a returned
// non-error result is the literal nil or an empty composite literal:
//
//	if exec.IsExecErr(err) {
//	    return nil, err          // flagged: drops the partial result
//	}
//
// The fix is to return the accumulated state (execResult, finishResult, the
// res/ids slice built so far). Negated tests (!IsExecErr) returning nil are
// the complementary contract — real errors invalidate — and are not
// flagged. Deliberate exceptions carry //lint:ignore vetrnn/partialresult.
package partialresult

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphrnn/internal/analysis"
)

// Analyzer is the partialresult check.
var Analyzer = &analysis.Analyzer{
	Name:      "partialresult",
	Doc:       "branches that prove an exec error must return the accumulated result, not nil/zero",
	SkipTests: true,
	Run:       run,
}

// execErrNames are the typed execution-control errors (defined in
// internal/exec, re-exported by internal/core and the root package).
var execErrNames = map[string]bool{
	"ErrCanceled":         true,
	"ErrDeadlineExceeded": true,
	"ErrBudgetExceeded":   true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var sigStack []*types.Signature
		var visit func(n ast.Node)
		visit = func(n ast.Node) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok && n.Body != nil {
					sigStack = append(sigStack, fn.Signature())
					visitChildren(n.Body, visit)
					sigStack = sigStack[:len(sigStack)-1]
				}
				return
			case *ast.FuncLit:
				if sig, ok := pass.TypesInfo.Types[n].Type.(*types.Signature); ok {
					sigStack = append(sigStack, sig)
					visitChildren(n.Body, visit)
					sigStack = sigStack[:len(sigStack)-1]
				}
				return
			case *ast.IfStmt:
				if condProvesExecErr(pass, n.Cond) && len(sigStack) > 0 {
					checkBranch(pass, n.Body, sigStack[len(sigStack)-1])
				}
			}
			visitChildren(n, visit)
		}
		visit(file)
	}
	return nil
}

func visitChildren(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// condProvesExecErr reports whether cond being true guarantees the tested
// error is an execution-control error.
func condProvesExecErr(pass *analysis.Pass, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return condProvesExecErr(pass, e.X) || condProvesExecErr(pass, e.Y)
		}
	case *ast.CallExpr:
		fn := analysis.Callee(pass.TypesInfo, e)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		if fn.Name() == "IsExecErr" && hasModulePrefix(fn.Pkg().Path()) {
			return true
		}
		if fn.Name() == "Is" && fn.Pkg().Path() == "errors" && len(e.Args) == 2 {
			return isExecErrValue(pass, e.Args[1])
		}
	}
	return false
}

func isExecErrValue(pass *analysis.Pass, e ast.Expr) bool {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	}
	return obj != nil && obj.Pkg() != nil && execErrNames[obj.Name()] && hasModulePrefix(obj.Pkg().Path())
}

// checkBranch flags returns inside the exec-err-proven block that drop a
// non-error result. Nested function literals are skipped — they return from
// a different function.
func checkBranch(pass *analysis.Pass, body *ast.BlockStmt, sig *types.Signature) {
	errType := types.Universe.Lookup("error").Type()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(n.Results) != sig.Results().Len() {
				return true // naked return or comma-expansion: out of scope
			}
			for i, res := range n.Results {
				if types.Identical(sig.Results().At(i).Type(), errType) {
					continue
				}
				if isZeroLiteral(res) {
					pass.Reportf(n.Pos(),
						"execution-control errors carry the partial result out; return the accumulated result, not %s",
						types.ExprString(res))
					break
				}
			}
		}
		return true
	})
}

func isZeroLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			cl, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok && len(cl.Elts) == 0
		}
	}
	return false
}

func hasModulePrefix(path string) bool {
	const m = "graphrnn"
	return path == m || len(path) > len(m) && path[:len(m)+1] == m+"/"
}
