// Package load turns Go packages into type-checked analysis.Package values
// using only the standard library. Three loaders cover the three ways the
// vetrnn suite runs:
//
//   - GoList: standalone mode. `go list -deps -export -json` enumerates the
//     matched packages plus the export-data files of every dependency, and
//     each matched package is parsed and type-checked against that export
//     data — the same artifacts the build cache already holds, so a warm
//     run re-parses only the module's own sources.
//
//   - VetCfg: `go vet -vettool` mode. The go command hands the tool one
//     JSON config per package (the x/tools unitchecker protocol) naming the
//     files to parse and the export-data file of every import; see
//     cmd/vetrnn for the surrounding protocol (-V=full, -flags, vetx).
//
//   - Testdata: golden-test mode. Packages live as plain sources under
//     testdata/src/<importpath>/ (the layout of x/tools' analysistest);
//     imports resolve against sibling testdata packages first and fall back
//     to type-checking the standard library from GOROOT source.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"graphrnn/internal/analysis"
)

// newInfo allocates the full set of type-information maps the analyzers
// consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*analysis.Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	if goVersion != "" {
		conf.GoVersion = goVersion
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &analysis.Package{Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// --- standalone: go list -export -------------------------------------------

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Module     *struct{ GoVersion string }
}

// Loaded is one package the standalone loader produced. FactsOnly marks a
// module-local dependency that was loaded only so its exported facts are
// available to the matched packages — the driver analyzes it but must not
// report its findings (it was not asked about).
type Loaded struct {
	*analysis.Package
	FactsOnly bool
}

// GoList loads the packages matched by patterns (run in dir), type-checked
// against the build cache's export data, plus every module-local
// dependency (marked FactsOnly) so cross-package facts are complete even
// for narrow patterns. Packages come back in dependency order — imports
// strictly before importers — which is the order a fact-threading driver
// must analyze them in. Test files are not loaded: `go list` GoFiles
// excludes them, which matches the suite's scope — the engine contracts
// govern production code.
func GoList(dir string, patterns ...string) ([]Loaded, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,ImportMap,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	local := map[string]listPkg{} // module-local (non-standard) packages
	var roots []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			local[p.ImportPath] = p
			if !p.DepOnly {
				roots = append(roots, p.ImportPath)
			}
		}
	}
	sort.Strings(roots)

	// Dependency (post-)order over the module-local import graph, so each
	// package's facts exist before its importers are analyzed.
	var order []string
	seen := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		p, ok := local[path]
		if !ok || seen[path] {
			return
		}
		seen[path] = true
		imports := append([]string(nil), p.Imports...)
		sort.Strings(imports)
		for _, imp := range imports {
			if to, ok := p.ImportMap[imp]; ok {
				imp = to
			}
			visit(imp)
		}
		order = append(order, path)
	}
	for _, r := range roots {
		visit(r)
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) string { return exports[path] })
	var pkgs []Loaded
	for _, path := range order {
		t := local[path]
		if len(t.GoFiles) == 0 {
			continue
		}
		names := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			names[i] = filepath.Join(t.Dir, f)
		}
		files, err := parseFiles(fset, names)
		if err != nil {
			return nil, err
		}
		goVersion := ""
		if t.Module != nil && t.Module.GoVersion != "" {
			goVersion = "go" + t.Module.GoVersion
		}
		pkg, err := check(fset, t.ImportPath, files, importMapped(imp, t.ImportMap), goVersion)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, Loaded{Package: pkg, FactsOnly: t.DepOnly})
	}
	return pkgs, nil
}

// exportImporter type-checks imports from compiler export data, resolving
// each import path to its export file through resolve.
func exportImporter(fset *token.FileSet, resolve func(path string) string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f := resolve(path)
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// importMapped applies a per-package import map (vendoring, test variants)
// in front of an importer.
func importMapped(imp types.Importer, m map[string]string) types.Importer {
	if len(m) == 0 {
		return imp
	}
	return mappedImporter{imp: imp, m: m}
}

type mappedImporter struct {
	imp types.Importer
	m   map[string]string
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if to, ok := mi.m[path]; ok {
		path = to
	}
	return mi.imp.Import(path)
}

// --- go vet -vettool: unit config ------------------------------------------

// VetConfig is the per-package JSON configuration the go command passes to
// a vet tool — the x/tools unitchecker wire format (the fields this tool
// does not consume are accepted and ignored by the decoder).
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses a unit config file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return cfg, nil
}

// VetCfg loads the single package a unit config describes. Unlike GoList
// it sees test files too (the go command vets test variants as their own
// units); analyzers opt out of those via SkipTests.
func VetCfg(cfg *VetConfig) (*analysis.Package, error) {
	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	imp := exportImporter(fset, func(path string) string {
		if to, ok := cfg.ImportMap[path]; ok {
			path = to
		}
		return cfg.PackageFile[path]
	})
	return check(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
}

// --- golden tests: testdata/src --------------------------------------------

// Testdata loads importPath from testdataDir/src/importPath, resolving
// imports against sibling testdata packages first and the standard library
// (type-checked from GOROOT source) second.
func Testdata(testdataDir, importPath string) (*analysis.Package, error) {
	pkgs, err := TestdataAll(testdataDir, importPath)
	if err != nil {
		return nil, err
	}
	return pkgs[len(pkgs)-1], nil
}

// TestdataAll is Testdata returning every testdata-resident package the
// load pulled in, in dependency order with the named package last — the
// order a fact-threading driver analyzes them in, so golden tests exercise
// cross-package facts exactly like the real drivers.
func TestdataAll(testdataDir, importPath string) ([]*analysis.Package, error) {
	fset := token.NewFileSet()
	ld := &testdataLoader{
		fset:   fset,
		src:    filepath.Join(testdataDir, "src"),
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*analysis.Package{},
	}
	if _, err := ld.load(importPath); err != nil {
		return nil, err
	}
	return ld.order, nil
}

type testdataLoader struct {
	fset   *token.FileSet
	src    string
	std    types.Importer
	loaded map[string]*analysis.Package
	order  []*analysis.Package
	stack  []string
}

func (ld *testdataLoader) load(path string) (*analysis.Package, error) {
	if pkg, ok := ld.loaded[path]; ok {
		return pkg, nil
	}
	for _, s := range ld.stack {
		if s == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	files, err := parseFiles(ld.fset, names)
	if err != nil {
		return nil, err
	}
	ld.stack = append(ld.stack, path)
	pkg, err := check(ld.fset, path, files, (*testdataImporter)(ld), "")
	ld.stack = ld.stack[:len(ld.stack)-1]
	if err != nil {
		return nil, err
	}
	ld.loaded[path] = pkg
	ld.order = append(ld.order, pkg)
	return pkg, nil
}

type testdataImporter testdataLoader

func (ti *testdataImporter) Import(path string) (*types.Package, error) {
	ld := (*testdataLoader)(ti)
	if _, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(path))); err == nil {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}
