// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: just enough surface — Analyzer,
// Pass, Diagnostic — to write typed, single-package static checks and run
// them standalone, under `go vet -vettool`, and in golden tests.
//
// The repo deliberately has no module dependencies, so instead of importing
// x/tools this package mirrors its API shape using only the standard
// library. Analyzers written against it are drop-in portable to the real
// framework: a Pass carries the same fields (Fset, Files, Pkg, TypesInfo,
// Report) with the same meaning.
//
// The suite's job is to machine-check the engine contracts that PRs 3-5
// established by convention; see the sibling analyzer packages (execpoll,
// journalbefore, commaok, partialresult) for the contracts themselves, and
// cmd/vetrnn for the driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags and suppression
	// comments (suppress with //lint:ignore vetrnn/<name> reason).
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// SkipTests drops diagnostics positioned in _test.go files. The engine
	// contracts govern production code; tests deliberately break them
	// (oracle loops without contexts, intentionally ignored ok-results).
	SkipTests bool
	// FactTypes declares the package-fact types this analyzer may export
	// and import (one pointer value of each concrete type). An analyzer
	// with no FactTypes is purely single-package.
	FactTypes []Fact
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Fact is a serializable datum an analyzer attaches to a package so that
// the analysis of a *downstream* package can consume it — the cross-package
// half of the framework (the miniature of x/tools' analysis.Fact, package
// facts only). Concrete fact types must be JSON-marshalable structs and
// carry the marker method.
type Fact interface{ AFact() }

// Pass carries one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Suppression and test-file filtering
	// happen in the driver, not here.
	Report func(Diagnostic)

	// facts is the cross-package fact store shared by the run; set by the
	// driver before Run is invoked.
	facts *FactStore
}

// ExportPackageFact attaches fact to the package under analysis. The fact's
// concrete type must be declared in the analyzer's FactTypes; a later
// export of the same type replaces the earlier one.
func (p *Pass) ExportPackageFact(fact Fact) error {
	if !p.declaresFactType(fact) {
		return fmt.Errorf("analysis: %s exports undeclared fact type %T", p.Analyzer.Name, fact)
	}
	return p.facts.export(p.Analyzer.Name, p.Pkg.Path(), fact)
}

// ImportPackageFact copies the fact this analyzer attached to the package
// at path (an import of the current package, or the current package
// itself) into fact, reporting whether one was found. The fact's concrete
// type must be declared in the analyzer's FactTypes.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	if !p.declaresFactType(fact) {
		return false
	}
	return p.facts.importInto(p.Analyzer.Name, path, fact)
}

func (p *Pass) declaresFactType(fact Fact) bool {
	for _, ft := range p.Analyzer.FactTypes {
		if factTypeName(ft) == factTypeName(fact) {
			return true
		}
	}
	return false
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// --- shared type-resolution helpers ----------------------------------------

// Callee resolves the *types.Func a call invokes: a package function, a
// concrete method, or an interface method. It returns nil for calls through
// function-typed variables, conversions and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			// Package-qualified call (pkg.F) has no selection entry.
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CalleeIs reports whether the call invokes a function or method named name
// whose defining package path equals pkgSuffix or ends with "/"+pkgSuffix.
// Suffix matching keeps the analyzers honest about which API they mean
// while letting test fixtures mirror the repo's package tree.
func CalleeIs(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return PathHasSuffix(fn.Pkg().Path(), pkgSuffix)
}

// PathHasSuffix reports whether path is suffix or ends with "/"+suffix.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
