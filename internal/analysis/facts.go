package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
)

// FactStore holds every package fact of one analysis run, keyed by
// (analyzer, package path, fact type). One store is threaded through all
// packages of a run so facts exported while analyzing internal/storage are
// visible when cmd/rnnserver is analyzed — in the standalone driver the
// packages are processed in dependency order against a shared in-memory
// store, and in `go vet -vettool` mode the store round-trips through the
// unitchecker's vetx files (imports are read from the .cfg's PackageVetx
// map, and the package's own facts — plus every inherited one, so facts
// survive transitively — are written to VetxOutput).
type FactStore struct {
	m map[factKey]json.RawMessage
}

type factKey struct {
	analyzer string
	pkg      string
	typ      string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]json.RawMessage{}}
}

// factTypeName is the stable wire name of a fact's concrete type.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

func (s *FactStore) export(analyzer, pkg string, fact Fact) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("analysis: encode %s fact %T for %s: %w", analyzer, fact, pkg, err)
	}
	s.m[factKey{analyzer, pkg, factTypeName(fact)}] = data
	return nil
}

func (s *FactStore) importInto(analyzer, pkg string, fact Fact) bool {
	data, ok := s.m[factKey{analyzer, pkg, factTypeName(fact)}]
	if !ok {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

// --- vetx wire format -------------------------------------------------------

// wireFact is one serialized fact in a vetx file.
type wireFact struct {
	Analyzer string          `json:"analyzer"`
	Package  string          `json:"package"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// vetxFile is the JSON layout of a vetrnn vetx file. The go command treats
// vetx contents as opaque bytes, so the format is ours; it carries the
// analyzed package's own facts and every fact inherited from its imports,
// which is what makes facts flow across more than one import hop.
type vetxFile struct {
	Facts []wireFact `json:"facts"`
}

// WriteVetx serializes the whole store to path (the unit's VetxOutput).
func (s *FactStore) WriteVetx(path string) error {
	out := vetxFile{Facts: make([]wireFact, 0, len(s.m))}
	for k, data := range s.m {
		out.Facts = append(out.Facts, wireFact{Analyzer: k.analyzer, Package: k.pkg, Type: k.typ, Data: data})
	}
	sort.Slice(out.Facts, func(i, j int) bool {
		a, b := out.Facts[i], out.Facts[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Type < b.Type
	})
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// ReadVetx merges the facts serialized at path into the store. A missing
// or empty file contributes nothing (the go command caches empty vetx
// files for packages whose analysis exported no facts).
func (s *FactStore) ReadVetx(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	var in vetxFile
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("analysis: parse vetx %s: %w", path, err)
	}
	for _, f := range in.Facts {
		s.m[factKey{f.Analyzer, f.Package, f.Type}] = f.Data
	}
	return nil
}

// Len reports the number of stored facts (used by driver tests).
func (s *FactStore) Len() int { return len(s.m) }

// Visit decodes every stored fact of analyzer whose concrete type matches
// proto's, calling visit with the package path and a freshly allocated
// decoded fact, in sorted package order. This is the whole-program
// enumeration the driver-level passes use (lockorder's cross-package
// cycle detection): unlike ImportPackageFact it is not limited to the
// import closure of any one package.
func (s *FactStore) Visit(analyzer string, proto Fact, visit func(pkg string, fact Fact)) {
	typ := factTypeName(proto)
	var pkgs []string
	for k := range s.m {
		if k.analyzer == analyzer && k.typ == typ {
			pkgs = append(pkgs, k.pkg)
		}
	}
	sort.Strings(pkgs)
	rt := reflect.TypeOf(proto)
	for rt.Kind() == reflect.Pointer {
		rt = rt.Elem()
	}
	for _, pkg := range pkgs {
		fact := reflect.New(rt).Interface().(Fact)
		if s.importInto(analyzer, pkg, fact) {
			visit(pkg, fact)
		}
	}
}
