// Package journalbefore checks the maintenance write-ahead discipline of
// the materialized K-NN lists (PR 5): inside a journaled repair operation,
// every list mutation must be preceded by its before-image.
//
// Two rules, both scoped to calls on core.Materialized:
//
//  1. A call to writeList(n, ...) must be preceded, in the same function,
//     by a call to journalTouch(n, ...) with the same node expression — the
//     before-image must be captured (and, file-backed, be in the journal)
//     before the list page may be overwritten. Lexical precedence in the
//     same function is an approximation of dominance, but it is exactly the
//     shape of every maintenance algorithm: read list, journalTouch, mutate,
//     writeList.
//
//  2. restoreList bypasses both the journal and the write-fault seam; only
//     the designated restore paths may call it (writeList itself, rollback,
//     and journal recovery). Anywhere else, a restoreList call is a list
//     write that would escape the before-image discipline.
//
// Deliberate exceptions carry //lint:ignore vetrnn/journalbefore <why>.
package journalbefore

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"graphrnn/internal/analysis"
)

// Analyzer is the journalbefore check.
var Analyzer = &analysis.Analyzer{
	Name:      "journalbefore",
	Doc:       "materialized-list writes must be preceded by a journalTouch before-image; restoreList is reserved for rollback paths",
	SkipTests: true,
	Run:       run,
}

// restoreCallers are the functions allowed to call restoreList.
var restoreCallers = map[string]bool{
	"writeList":          true,
	"RollbackRepair":     true,
	"recoverFromJournal": true,
}

type listCall struct {
	pos  token.Pos
	kind string // "touch", "write", "restore"
	arg  string // rendering of the node-id argument
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var calls []listCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := ""
		switch {
		case analysis.CalleeIs(pass.TypesInfo, call, "internal/core", "journalTouch"):
			kind = "touch"
		case analysis.CalleeIs(pass.TypesInfo, call, "internal/core", "writeList"):
			kind = "write"
		case analysis.CalleeIs(pass.TypesInfo, call, "internal/core", "restoreList"):
			kind = "restore"
		default:
			return true
		}
		arg := ""
		if len(call.Args) > 0 {
			arg = types.ExprString(call.Args[0])
		}
		calls = append(calls, listCall{pos: call.Pos(), kind: kind, arg: arg})
		return true
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })

	for i, c := range calls {
		switch c.kind {
		case "write":
			journaled := false
			for _, prev := range calls[:i] {
				if prev.kind == "touch" && prev.arg == c.arg {
					journaled = true
					break
				}
			}
			if !journaled {
				pass.Reportf(c.pos,
					"writeList(%s, ...) is not preceded by journalTouch(%s, ...) in %s; the before-image must be journaled before the list is overwritten",
					c.arg, c.arg, fd.Name.Name)
			}
		case "restore":
			if !restoreCallers[fd.Name.Name] {
				pass.Reportf(c.pos,
					"restoreList called from %s bypasses the repair journal; mutate lists through writeList inside a journaled operation",
					fd.Name.Name)
			}
		}
	}
}
