// Package core is the journalbefore golden fixture: it mirrors the
// Materialized maintenance surface — journalTouch / writeList / restoreList —
// and exercises both rules (before-image precedes write; restoreList is
// reserved for rollback paths).
package core

type Materialized struct {
	lists map[uint32][]uint32
	log   map[uint32][]uint32
}

func (m *Materialized) journalTouch(n uint32) error {
	if _, ok := m.log[n]; !ok {
		m.log[n] = append([]uint32(nil), m.lists[n]...)
	}
	return nil
}

func (m *Materialized) writeList(n uint32, list []uint32) error {
	old := m.lists[n]
	m.lists[n] = list
	if false {
		m.restoreList(n, old)
	}
	return nil
}

func (m *Materialized) restoreList(n uint32, list []uint32) {
	m.lists[n] = list
}

// insertGood follows the discipline: touch, then write.
func (m *Materialized) insertGood(n uint32, list []uint32) error {
	if err := m.journalTouch(n); err != nil {
		return err
	}
	return m.writeList(n, list)
}

// insertBad overwrites the list with no before-image.
func (m *Materialized) insertBad(n uint32, list []uint32) error {
	return m.writeList(n, list) // want `not preceded by journalTouch`
}

// insertWrongNode journals one node but writes another.
func (m *Materialized) insertWrongNode(a, b uint32, list []uint32) error {
	if err := m.journalTouch(a); err != nil {
		return err
	}
	return m.writeList(b, list) // want `not preceded by journalTouch`
}

// repairMany touches and writes in a loop over the same expression: the
// lexical-precedence approximation accepts it, as it accepts the real
// maintenance loops.
func (m *Materialized) repairMany(nodes []uint32, lists map[uint32][]uint32) error {
	for _, n := range nodes {
		if err := m.journalTouch(n); err != nil {
			return err
		}
		if err := m.writeList(n, lists[n]); err != nil {
			return err
		}
	}
	return nil
}

// RollbackRepair is a designated restore path.
func (m *Materialized) RollbackRepair() {
	for n, old := range m.log {
		m.restoreList(n, old)
	}
}

// recoverFromJournal is a designated restore path.
func (m *Materialized) recoverFromJournal(n uint32, img []uint32) {
	m.restoreList(n, img)
}

// sneakyRestore bypasses the journal from an arbitrary function.
func (m *Materialized) sneakyRestore(n uint32, list []uint32) {
	m.restoreList(n, list) // want `bypasses the repair journal`
}

// migrateLegacy is a deliberate, documented exception.
func (m *Materialized) migrateLegacy(n uint32, list []uint32) {
	//lint:ignore vetrnn/journalbefore one-shot format migration, runs before any journal exists
	m.restoreList(n, list)
}
