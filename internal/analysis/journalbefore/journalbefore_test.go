package journalbefore_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/journalbefore"
)

func TestJournalbefore(t *testing.T) {
	analysistest.Run(t, "testdata", journalbefore.Analyzer, "graphrnn/internal/core")
}
