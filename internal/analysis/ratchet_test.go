package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func dir(names []string, suppressed map[string]int) Directive {
	return Directive{
		Pos:        token.Position{Filename: "x.go", Line: 1},
		Names:      names,
		Suppressed: suppressed,
	}
}

func TestRatchetClean(t *testing.T) {
	b := &Baseline{Suppressions: map[string]int{"execpoll": 2}}
	directives := []Directive{
		dir([]string{"execpoll"}, map[string]int{"execpoll": 1}),
		dir([]string{"execpoll"}, map[string]int{"execpoll": 3}),
	}
	if v := Ratchet(b, directives, map[string]bool{"execpoll": true}); len(v) != 0 {
		t.Fatalf("clean tree produced violations: %v", v)
	}
}

func TestRatchetOverrun(t *testing.T) {
	b := &Baseline{Suppressions: map[string]int{"execpoll": 1}}
	directives := []Directive{
		dir([]string{"execpoll"}, map[string]int{"execpoll": 1}),
		dir([]string{"execpoll"}, map[string]int{"execpoll": 1}),
	}
	v := Ratchet(b, directives, map[string]bool{"execpoll": true})
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
	if v[0].Stale != "" || v[0].Count != 2 || v[0].Allowed != 1 {
		t.Fatalf("want count overrun 2>1, got %+v", v[0])
	}
	if !strings.Contains(v[0].String(), "exceed the baseline") {
		t.Fatalf("overrun message: %q", v[0].String())
	}
}

func TestRatchetStale(t *testing.T) {
	b := &Baseline{Suppressions: map[string]int{"execpoll": 5, "commaok": 5}}
	directives := []Directive{
		// Claims two names; only one fired. The other is stale.
		dir([]string{"execpoll", "commaok"}, map[string]int{"execpoll": 1}),
	}
	v := Ratchet(b, directives, map[string]bool{"execpoll": true, "commaok": true})
	if len(v) != 1 {
		t.Fatalf("want 1 stale violation, got %v", v)
	}
	if v[0].Analyzer != "commaok" || v[0].Stale == "" {
		t.Fatalf("want stale commaok, got %+v", v[0])
	}
	if !strings.Contains(v[0].String(), "stale suppression") {
		t.Fatalf("stale message: %q", v[0].String())
	}
}

func TestRatchetStaleIgnoredForInactiveAnalyzer(t *testing.T) {
	b := &Baseline{Suppressions: map[string]int{"commaok": 1}}
	directives := []Directive{
		dir([]string{"commaok"}, map[string]int{}),
	}
	// commaok did not run, so its zero-count directive cannot be judged.
	if v := Ratchet(b, directives, map[string]bool{"execpoll": true}); len(v) != 0 {
		t.Fatalf("inactive analyzer judged stale: %v", v)
	}
}

func TestRatchetUnknownAnalyzerCountsAgainstZero(t *testing.T) {
	b := &Baseline{Suppressions: map[string]int{}}
	directives := []Directive{
		dir([]string{"execpoll"}, map[string]int{"execpoll": 1}),
	}
	v := Ratchet(b, directives, map[string]bool{"execpoll": true})
	if len(v) != 1 || v[0].Allowed != 0 || v[0].Count != 1 {
		t.Fatalf("want 1>0 overrun against empty baseline, got %v", v)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	directives := []Directive{
		dir([]string{"execpoll"}, map[string]int{"execpoll": 1}),
		dir([]string{"execpoll", "guardedby"}, map[string]int{"execpoll": 1, "guardedby": 2}),
	}
	if err := WriteBaseline(path, directives); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Suppressions["execpoll"] != 2 || b.Suppressions["guardedby"] != 1 {
		t.Fatalf("round-tripped counts wrong: %v", b.Suppressions)
	}
	if b.Comment == "" {
		t.Fatal("baseline comment (refresh instructions) missing")
	}
	data, _ := os.ReadFile(path)
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatal("baseline file should end in a newline")
	}
}
