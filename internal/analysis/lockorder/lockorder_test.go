package lockorder_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockorder")
}

// TestCrossPackage proves the injected cross-package cycle is reported
// with the full cycle path: lockuse exports the MB -> MA edge as a fact,
// joiner adds MA -> MB and sees the cycle close.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockuse", "joiner")
}

// TestDetectCycles exercises the detector directly on synthetic edges —
// the whole-program shape the standalone driver runs.
func TestDetectCycles(t *testing.T) {
	edges := []lockorder.Edge{
		{From: "p.A", To: "p.B", Pos: "a.go:1:1", Func: "p.f"},
		{From: "p.B", To: "p.C", Pos: "a.go:2:1", Func: "p.g"},
		{From: "p.C", To: "p.A", Pos: "b.go:3:1", Func: "q.h"},
		{From: "p.X", To: "p.Y", Pos: "c.go:4:1", Func: "r.i"},
	}
	cycles := lockorder.DetectCycles(edges, edges)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1 (the three-class loop, deduplicated)", len(cycles))
	}
	c := cycles[0]
	if c.Key != "p.A -> p.B -> p.C" {
		t.Errorf("key = %q", c.Key)
	}
	if len(c.Path) != 4 || c.Path[0] != "p.A" || c.Path[3] != "p.A" {
		t.Errorf("path = %v", c.Path)
	}
	if c.At.Pos != "a.go:1:1" {
		t.Errorf("reported at %s, want the first candidate", c.At.Pos)
	}

	if got := lockorder.DetectCycles(edges[3:], edges[3:]); len(got) != 0 {
		t.Errorf("acyclic edge set produced %d cycles", len(got))
	}
}

// TestFindingPos round-trips the edge position encoding.
func TestFindingPos(t *testing.T) {
	p := lockorder.FindingPos("internal/storage/pool.go:42:7")
	if p.Filename != "internal/storage/pool.go" || p.Line != 42 || p.Column != 7 {
		t.Errorf("parsed %+v", p)
	}
}
