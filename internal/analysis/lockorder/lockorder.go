// Package lockorder detects lock-ordering cycles — the two-mutex deadlock
// where one code path acquires A then B and another acquires B then A.
//
// Lock identity is class-based: a mutex is named by where it is declared,
// "pkgpath.Type.field" for a struct mutex (resolved through the type
// checker, so every alias and receiver name maps to the same class) or
// "pkgpath.var" for a package-level mutex. Two instances of the same
// struct type share a class; instance-level ordering (locking two
// elements of a slice in index order) is out of scope and must be
// serialized by a separate class.
//
// Each function body is lowered to the shared dataflow CFG and the held
// set is propagated exactly like guardedby's lock state (same LockOp
// resolution, deferred Unlock keeps the mutex held). An
// acquires-while-holding edge A -> B is recorded when
//
//   - B.Lock() (or RLock — readers order like writers) executes while A
//     is held, or
//   - a function whose transitive acquire-set contains B is called while
//     A is held. Acquire-sets are computed bottom-up per package and
//     exported as facts, so the edge is seen at every call depth and
//     across package boundaries.
//
// Edges and acquire-sets are exported as package facts. Cycle detection
// runs twice:
//
//   - per package, over the package's own edges plus everything its
//     transitive imports exported — a cycle is reported here when one of
//     its edges belongs to the current package (with the full cycle path
//     in the message). This is what `go vet -vettool` sees: cycles
//     visible through the import graph.
//   - whole-program, in the standalone driver, over every package's
//     facts — this also catches cycles whose halves live in sibling
//     packages no unit imports together. Cycles already reported per
//     package are exported as fact keys and skipped.
//
// vetrnn:holds preconditions do not seed the held set: the caller that
// actually holds the lock emits the call-site edge against the callee's
// acquire-set, which keeps every edge anchored to a real acquisition
// order. Deliberate exceptions carry //lint:ignore vetrnn/lockorder <why>.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"graphrnn/internal/analysis"
	"graphrnn/internal/analysis/dataflow"
	"graphrnn/internal/analysis/guardedby"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "acquires-while-holding edges must not form cycles (class-level lock-ordering deadlock detection)",
	SkipTests: true,
	FactTypes: []analysis.Fact{new(LockFacts)},
	Run:       run,
}

// Edge is one acquires-while-holding observation: To was acquired (or a
// function that acquires To was called) while From was held.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Pos is the acquisition or call site, "file:line:col".
	Pos string `json:"pos"`
	// Func is the function containing the site, "pkgpath.FuncKey".
	Func string `json:"func"`
}

// LockFacts is the package fact: the package's own edges, each function's
// transitive acquire-set ("Func" / "Type.Method" -> sorted lock classes),
// and the normalized keys of cycles already reported per-package (so the
// whole-program pass does not report them again).
type LockFacts struct {
	Edges    []Edge              `json:"edges,omitempty"`
	Acquires map[string][]string `json:"acquires,omitempty"`
	Cycles   []string            `json:"cycles,omitempty"`
}

// AFact marks LockFacts as a fact type.
func (*LockFacts) AFact() {}

// Cycle is one detected lock-ordering cycle.
type Cycle struct {
	// Key is the normalized identity: the class sequence rotated so the
	// smallest class leads, joined with " -> ".
	Key string
	// Path is the full class sequence, starting and ending with the same
	// class.
	Path []string
	// At is the edge whose acquisition completes the cycle (a candidate
	// edge of the detection call).
	At Edge
}

// lockSite is one Lock/RLock call with a resolved class.
type lockSite struct {
	pos   token.Pos
	class string
}

type callSite struct {
	pos token.Pos
	fn  *types.Func
}

type funcData struct {
	key   string
	locks []lockSite
	calls []callSite
	decl  *ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	var funcs []*funcData
	byKey := map[string]*funcData{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			data := &funcData{key: funcKey(obj), decl: fd}
			collect(pass, fd.Body, data)
			funcs = append(funcs, data)
			byKey[data.key] = data
		}
	}

	imported := map[string]*LockFacts{}
	importFacts := func(path string) *LockFacts {
		facts, ok := imported[path]
		if !ok {
			facts = new(LockFacts)
			if !pass.ImportPackageFact(path, facts) {
				facts = nil
			}
			imported[path] = facts
		}
		return facts
	}

	// Transitive acquire-sets: direct classes, plus same-package callees
	// to a fixpoint, plus imported callees' exported sets.
	acquires := map[string]map[string]bool{}
	for _, f := range funcs {
		set := map[string]bool{}
		for _, l := range f.locks {
			set[l.class] = true
		}
		for _, c := range f.calls {
			if c.fn.Pkg() == nil || c.fn.Pkg() == pass.Pkg {
				continue
			}
			if facts := importFacts(c.fn.Pkg().Path()); facts != nil {
				for _, cls := range facts.Acquires[funcKey(c.fn)] {
					set[cls] = true
				}
			}
		}
		acquires[f.key] = set
	}
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			set := acquires[f.key]
			for _, c := range f.calls {
				if c.fn.Pkg() != pass.Pkg {
					continue
				}
				for cls := range acquires[funcKey(c.fn)] {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge emission: dataflow the held set through each scope and record
	// an edge per (held, acquired) pair at Lock sites and call sites.
	em := &emitter{
		pass:     pass,
		acquires: acquires,
		imports:  importFacts,
		seen:     map[Edge]bool{},
	}
	for _, f := range funcs {
		em.fn = pass.Pkg.Path() + "." + f.key
		em.scope(f.decl.Body)
	}

	// Export facts (deterministically ordered) before detection so the
	// fact is complete even if reporting fails midway.
	// Edges keep emission order: function declaration order, then block
	// and node order within each body — deterministic, and it makes the
	// first candidate of a cycle the first acquisition in source order.
	fact := &LockFacts{Acquires: map[string][]string{}}
	fact.Edges = em.edges
	for key, set := range acquires {
		if len(set) == 0 {
			continue
		}
		var classes []string
		for cls := range set {
			classes = append(classes, cls)
		}
		sort.Strings(classes)
		fact.Acquires[key] = classes
	}

	// Per-package detection: own edges are the candidates; the graph is
	// own edges plus everything the transitive imports exported.
	all := append([]Edge(nil), fact.Edges...)
	seenPkg := map[string]bool{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if seenPkg[p.Path()] {
			return
		}
		seenPkg[p.Path()] = true
		if facts := importFacts(p.Path()); facts != nil {
			all = append(all, facts.Edges...)
		}
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, imp := range pass.Pkg.Imports() {
		walk(imp)
	}

	for _, cyc := range DetectCycles(all, fact.Edges) {
		fact.Cycles = append(fact.Cycles, cyc.Key)
		pos := em.posOf[cyc.At]
		pass.Reportf(pos, "lock-ordering cycle: %s (acquiring %s while holding %s completes the cycle)",
			strings.Join(cyc.Path, " -> "), cyc.At.To, cyc.At.From)
	}

	if len(fact.Edges) > 0 || len(fact.Acquires) > 0 || len(fact.Cycles) > 0 {
		if err := pass.ExportPackageFact(fact); err != nil {
			return err
		}
	}
	return nil
}

// funcKey renders a *types.Func as "Func" or "Type.Method".
func funcKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.Underlying().(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// collect gathers the lock sites (with resolved classes) and static calls
// of a whole body, function literals included: a literal defined here
// runs this package's acquisitions, so they belong to the enclosing
// function's acquire-set.
func collect(pass *analysis.Pass, body *ast.BlockStmt, data *funcData) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, _, ok := guardedby.LockOp(pass, call); ok {
			if kind == "lock" || kind == "rlock" {
				if cls := classOfLockCall(pass, call); cls != "" {
					data.locks = append(data.locks, lockSite{pos: call.Pos(), class: cls})
				}
			}
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
			data.calls = append(data.calls, callSite{pos: call.Pos(), fn: fn})
		}
		return true
	})
}

// classOfLockCall resolves the mutex class of a Lock/RLock/Unlock call:
// the receiver expression of the method selector.
func classOfLockCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return classOf(pass, sel.X)
}

// classOf names the global identity of a mutex expression:
// "pkgpath.Type.field" for a struct field (any receiver), "pkgpath.var"
// for a package-level variable, "" for locals and unresolvable shapes.
func classOf(pass *analysis.Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			rt := sel.Recv()
			if p, ok := rt.Underlying().(*types.Pointer); ok {
				rt = p.Elem()
			}
			for {
				if named, ok := rt.(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() == nil {
						return ""
					}
					return obj.Pkg().Path() + "." + obj.Name() + "." + sel.Obj().Name()
				}
				if alias, ok := rt.(*types.Alias); ok {
					rt = alias.Rhs()
					continue
				}
				return ""
			}
		}
		// Package-qualified package-level var (pkg.Mu) has no selection.
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return pkgVarClass(v)
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			return pkgVarClass(v)
		}
	}
	return ""
}

func pkgVarClass(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// --- edge emission over the dataflow CFG ------------------------------------

// heldSet is the dataflow state: held mutex chain -> class ("" when the
// class is unresolvable; such locks cannot anchor edges but still pair
// with their own Unlock).
type heldSet map[string]string

type heldLattice struct {
	pass     *analysis.Pass
	deferred map[token.Pos]bool
}

func (heldLattice) Entry() heldSet { return heldSet{} }

func (heldLattice) Join(a, b heldSet) heldSet {
	out := heldSet{}
	for k, cls := range a {
		if bcls, ok := b[k]; ok && bcls == cls {
			out[k] = cls
		}
	}
	return out
}

func (heldLattice) Equal(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, cls := range a {
		if bcls, ok := b[k]; !ok || bcls != cls {
			return false
		}
	}
	return true
}

func (l heldLattice) Transfer(b *dataflow.Block, in heldSet) heldSet {
	out := heldSet{}
	for k, cls := range in {
		out[k] = cls
	}
	for _, n := range b.Nodes {
		l.apply(out, n)
	}
	return out
}

func (l heldLattice) apply(state heldSet, n ast.Node) {
	dataflow.VisitBlockNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, chain, ok := guardedby.LockOp(l.pass, call)
		if !ok || l.deferred[call.Pos()] {
			return true
		}
		switch kind {
		case "lock", "rlock":
			state[chain] = classOfLockCall(l.pass, call)
		case "unlock", "runlock":
			delete(state, chain)
		}
		return true
	})
}

// emitter walks scopes and records acquires-while-holding edges.
type emitter struct {
	pass     *analysis.Pass
	acquires map[string]map[string]bool
	imports  func(path string) *LockFacts
	fn       string
	edges    []Edge
	seen     map[Edge]bool
	posOf    map[Edge]token.Pos
}

// scope runs the held-set dataflow over one body and replays each block
// to emit edges; function literals are separate scopes with an empty
// entry state (they run on their own schedule).
func (em *emitter) scope(body *ast.BlockStmt) {
	deferred := map[token.Pos]bool{}
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, st)
			return false
		case *ast.DeferStmt:
			deferred[st.Call.Pos()] = true
		}
		return true
	})

	lat := heldLattice{pass: em.pass, deferred: deferred}
	graph := dataflow.New(body)
	in := dataflow.Forward[heldSet](graph, lat)
	for _, b := range graph.Blocks {
		state := heldSet{}
		for k, cls := range in[b] {
			state[k] = cls
		}
		for _, n := range b.Nodes {
			em.replay(lat, state, n)
		}
	}
	for _, lit := range lits {
		em.scope(lit.Body)
	}
}

// replay visits one block node: emits edges at acquisitions and call
// sites given the current held set, then advances the state.
func (em *emitter) replay(lat heldLattice, state heldSet, n ast.Node) {
	dataflow.VisitBlockNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, chain, ok := guardedby.LockOp(em.pass, call); ok {
			if lat.deferred[call.Pos()] {
				return true
			}
			switch kind {
			case "lock", "rlock":
				cls := classOfLockCall(em.pass, call)
				if cls != "" {
					for _, held := range heldClasses(state) {
						if held != cls {
							em.emit(held, cls, call.Pos())
						}
					}
				}
				state[chain] = cls
			case "unlock", "runlock":
				delete(state, chain)
			}
			return true
		}
		fn := analysis.Callee(em.pass.TypesInfo, call)
		if fn == nil || len(state) == 0 {
			return true
		}
		var acq []string
		if fn.Pkg() == em.pass.Pkg {
			for cls := range em.acquires[funcKey(fn)] {
				acq = append(acq, cls)
			}
			sort.Strings(acq)
		} else if fn.Pkg() != nil {
			if facts := em.imports(fn.Pkg().Path()); facts != nil {
				acq = facts.Acquires[funcKey(fn)]
			}
		}
		for _, cls := range acq {
			for _, held := range heldClasses(state) {
				if held != cls {
					em.emit(held, cls, call.Pos())
				}
			}
		}
		return true
	})
}

func heldClasses(state heldSet) []string {
	var out []string
	seen := map[string]bool{}
	for _, cls := range state {
		if cls != "" && !seen[cls] {
			seen[cls] = true
			out = append(out, cls)
		}
	}
	sort.Strings(out)
	return out
}

func (em *emitter) emit(from, to string, pos token.Pos) {
	e := Edge{
		From: from,
		To:   to,
		Pos:  em.pass.Fset.Position(pos).String(),
		Func: em.fn,
	}
	if em.seen[e] {
		return
	}
	em.seen[e] = true
	em.edges = append(em.edges, e)
	if em.posOf == nil {
		em.posOf = map[Edge]token.Pos{}
	}
	em.posOf[e] = pos
}

// --- cycle detection ---------------------------------------------------------

// DetectCycles finds, for each candidate edge F->T, a shortest path
// T -> ... -> F through all edges; each such path closes a cycle. Cycles
// are deduplicated by normalized key, keeping the first candidate that
// exposed them (candidate order is the caller's reporting order).
func DetectCycles(all []Edge, candidates []Edge) []Cycle {
	adj := map[string][]string{}
	edgeSeen := map[[2]string]bool{}
	for _, e := range all {
		k := [2]string{e.From, e.To}
		if edgeSeen[k] {
			continue
		}
		edgeSeen[k] = true
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}

	var cycles []Cycle
	byKey := map[string]bool{}
	for _, cand := range candidates {
		path := shortestPath(adj, cand.To, cand.From)
		if path == nil {
			continue
		}
		// path runs To -> ... -> From, so prepending From closes the
		// cycle: From -> To -> ... -> From. The key drops the final
		// repeat so rotations of one cycle normalize identically.
		closed := append([]string{cand.From}, path...)
		key := cycleKey(closed[:len(closed)-1])
		if byKey[key] {
			continue
		}
		byKey[key] = true
		cycles = append(cycles, Cycle{Key: key, Path: closed, At: cand})
	}
	return cycles
}

// shortestPath BFSes from src to dst, returning the node sequence
// starting at src and ending at dst (nil if unreachable). src == dst
// returns the trivial [src] path — a self-loop candidate already closed.
func shortestPath(adj map[string][]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, s := range adj[n] {
			if _, ok := prev[s]; ok {
				continue
			}
			prev[s] = n
			if s == dst {
				var path []string
				for at := dst; ; at = prev[at] {
					path = append(path, at)
					if at == src {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, s)
		}
	}
	return nil
}

// cycleKey normalizes a cycle's class sequence: rotate so the smallest
// class leads, join with " -> ".
func cycleKey(classes []string) string {
	if len(classes) == 0 {
		return ""
	}
	min := 0
	for i, c := range classes {
		if c < classes[min] {
			min = i
		}
	}
	rot := make([]string, 0, len(classes))
	rot = append(rot, classes[min:]...)
	rot = append(rot, classes[:min]...)
	return strings.Join(rot, " -> ")
}

// FindingPos parses an Edge.Pos back into a token.Position for
// driver-level reporting ("file:line:col").
func FindingPos(pos string) token.Position {
	out := token.Position{Filename: pos}
	// Split from the right: the filename may contain colons on some
	// platforms, line and column never do.
	if i := strings.LastIndex(pos, ":"); i >= 0 {
		if col, err := atoi(pos[i+1:]); err == nil {
			if j := strings.LastIndex(pos[:i], ":"); j >= 0 {
				if line, err := atoi(pos[j+1 : i]); err == nil {
					out.Filename = pos[:j]
					out.Line = line
					out.Column = col
				}
			}
		}
	}
	return out
}

func atoi(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("not a number: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}
