// Package lockuse acquires locklib.MB then locklib.MA — one half of the
// injected cross-package cycle. No cycle is visible from here, so this
// package is clean on its own; the edge travels as a fact.
package lockuse

import "locklib"

// Swap nests MA under MB.
func Swap() {
	locklib.MB.Lock()
	defer locklib.MB.Unlock()
	locklib.MA.Lock()
	locklib.MA.Unlock()
}
