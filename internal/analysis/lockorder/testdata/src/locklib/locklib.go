// Package locklib declares two package-level mutexes. It creates no
// ordering edges itself; the cycle is injected across its importers (see
// lockuse and joiner).
package locklib

import "sync"

var MA sync.Mutex
var MB sync.Mutex
