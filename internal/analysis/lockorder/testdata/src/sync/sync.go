// Package sync is a minimal stand-in for the real sync package so golden
// fixtures type-check hermetically (and fast) without pulling GOROOT
// source through the testdata importer. The analyzer matches mutexes by
// package path and type name, which this shim reproduces.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
