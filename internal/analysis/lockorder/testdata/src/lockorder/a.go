// Single-package lockorder scenarios: a direct two-mutex cycle, edges
// through call summaries, consistent ordering staying clean, and
// suppression.
package lockorder

import "sync"

type twoLocks struct {
	a sync.Mutex
	b sync.Mutex
}

// orderAB acquires a then b: edge a -> b.
func orderAB(s *twoLocks) {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `lock-ordering cycle: lockorder\.twoLocks\.a -> lockorder\.twoLocks\.b -> lockorder\.twoLocks\.a`
	s.b.Unlock()
}

// orderBA acquires b then a: edge b -> a, closing the cycle. The cycle is
// reported once, at the first acquisition in source order (orderAB's).
func orderBA(s *twoLocks) {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}

// --- consistent ordering is clean -------------------------------------------

type ordered struct {
	first  sync.Mutex
	second sync.Mutex
}

func takeBoth(o *ordered) {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	defer o.second.Unlock()
}

func takeBothAgain(o *ordered) {
	o.first.Lock()
	o.second.Lock()
	o.second.Unlock()
	o.first.Unlock()
}

// --- edges through call summaries -------------------------------------------

type nested struct {
	outer sync.Mutex
	inner sync.Mutex
}

// lockInner is reached while outer is held; its acquisition rides the
// acquire-set summary to the caller's call site.
func lockInner(n *nested) {
	n.inner.Lock()
	n.inner.Unlock()
}

// callUnder creates edge outer -> inner via the call, not a direct Lock.
func callUnder(n *nested) {
	n.outer.Lock()
	defer n.outer.Unlock()
	lockInner(n) // want `lock-ordering cycle: lockorder\.nested\.outer -> lockorder\.nested\.inner -> lockorder\.nested\.outer`
}

// reversed closes the call-summary cycle: inner -> outer directly.
func reversed(n *nested) {
	n.inner.Lock()
	defer n.inner.Unlock()
	n.outer.Lock()
	n.outer.Unlock()
}

// --- conditional acquisition still orders -----------------------------------

type branchy struct {
	x sync.Mutex
	y sync.Mutex
}

// oneArm only acquires y while holding x on one branch; the edge exists
// regardless, but with no reverse edge there is no cycle.
func oneArm(br *branchy, deep bool) {
	br.x.Lock()
	defer br.x.Unlock()
	if deep {
		br.y.Lock()
		br.y.Unlock()
	}
}

// --- suppression -------------------------------------------------------------

type quirk struct {
	p sync.Mutex
	q sync.Mutex
}

func quirkPQ(z *quirk) {
	z.p.Lock()
	defer z.p.Unlock()
	//lint:ignore vetrnn/lockorder the q-then-p path is init-only and cannot run concurrently with this
	z.q.Lock()
	z.q.Unlock()
}

func quirkQP(z *quirk) {
	z.q.Lock()
	defer z.q.Unlock()
	z.p.Lock()
	z.p.Unlock()
}
