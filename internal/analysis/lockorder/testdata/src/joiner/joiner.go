// Package joiner completes the injected cross-package cycle: it nests
// locklib.MB under locklib.MA while importing lockuse, whose exported
// facts carry the reverse MB -> MA edge. The full cycle path names both
// packages' classes.
package joiner

import (
	"locklib"
	"lockuse"
)

// Nest acquires MA then MB; with lockuse.Swap's fact the order cycles.
func Nest() {
	locklib.MA.Lock()
	defer locklib.MA.Unlock()
	locklib.MB.Lock() // want `lock-ordering cycle: locklib\.MA -> locklib\.MB -> locklib\.MA`
	locklib.MB.Unlock()
	lockuse.Swap()
}
