package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// reportCalls is a toy analyzer that reports every call expression, so the
// tests can position findings precisely.
var reportCalls = &Analyzer{
	Name:      "reportcalls",
	Doc:       "reports every call",
	SkipTests: true,
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call here")
				}
				return true
			})
		}
		return nil
	},
}

func loadSrc(t *testing.T, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	var asts []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, asts, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: fset, Files: asts, Types: pkg, Info: info}
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	pkg := loadSrc(t, map[string]string{"a.go": `package p

func g() {}

func f() {
	g() //lint:ignore vetrnn/reportcalls trailing comment, same line
	//lint:ignore vetrnn/reportcalls comment above the flagged line
	g()
	g()
}
`})
	findings, err := Run(pkg, []*Analyzer{reportCalls})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (only the unannotated call): %v", len(findings), findings)
	}
	if findings[0].Pos.Line != 9 {
		t.Errorf("surviving finding at line %d, want 9", findings[0].Pos.Line)
	}
}

func TestSuppressionWrongNameDoesNotCover(t *testing.T) {
	pkg := loadSrc(t, map[string]string{"a.go": `package p

func g() {}

func f() {
	//lint:ignore vetrnn/othercheck reason that names a different analyzer
	g()
}
`})
	findings, err := Run(pkg, []*Analyzer{reportCalls})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "reportcalls" {
		t.Fatalf("got %v, want the reportcalls finding to survive", findings)
	}
}

func TestMalformedIgnoreIsReported(t *testing.T) {
	pkg := loadSrc(t, map[string]string{"a.go": `package p

func g() {}

func f() {
	//lint:ignore vetrnn/reportcalls
	g()
}
`})
	findings, err := Run(pkg, []*Analyzer{reportCalls})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, f := range findings {
		kinds = append(kinds, f.Analyzer)
	}
	got := strings.Join(kinds, ",")
	// The reason-less ignore must not suppress, and must itself be flagged.
	if got != "lintignore,reportcalls" {
		t.Fatalf("got findings %v, want lintignore + reportcalls", findings)
	}
}

func TestSkipTestsFiltersTestFiles(t *testing.T) {
	pkg := loadSrc(t, map[string]string{
		"a.go":      "package p\n\nfunc g() {}\n",
		"a_test.go": "package p\n\nfunc h() { g() }\n",
	})
	findings, err := Run(pkg, []*Analyzer{reportCalls})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("got %v, want findings in _test.go filtered", findings)
	}
}
