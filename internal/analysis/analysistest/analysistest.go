// Package analysistest runs an analyzer over golden packages under
// testdata/src/<importpath>/ and checks its findings against // want
// comments — the x/tools analysistest contract, reimplemented over the
// in-repo framework.
//
// Expectation syntax, at the end of the line a finding should land on:
//
//	x, _ := g.EdgeWeight(u, v) // want `discards the ok result`
//
// Each backquoted or double-quoted string is a regexp that must match the
// message of exactly one finding on that line; findings on lines without a
// matching expectation, and expectations without a finding, fail the test.
// Suppression comments (//lint:ignore) are honored exactly as in the real
// driver, so fixtures can pin the suppression behavior too.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"graphrnn/internal/analysis"
	"graphrnn/internal/analysis/load"
)

// Run loads each package from testdata/src and applies a, comparing
// findings with // want expectations. Testdata-resident dependencies of
// the named package are analyzed first into a shared fact store (their
// findings are not checked), so fixtures exercise cross-package facts the
// way the real drivers do: annotate in one fixture package, expect the
// diagnostic in its importer.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, path := range pkgpaths {
		pkgs, err := load.TestdataAll(testdata, path)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		facts := analysis.NewFactStore()
		for i, pkg := range pkgs {
			findings, _, err := analysis.RunFacts(pkg, []*analysis.Analyzer{a}, facts)
			if err != nil {
				t.Errorf("run %s on %s: %v", a.Name, pkg.Types.Path(), err)
				break
			}
			if i == len(pkgs)-1 { // the named package
				checkWants(t, pkg, findings)
			}
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

func checkWants(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants, err := collectWants(pkg)
	if err != nil {
		t.Error(err)
		return
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.text)
		}
	}
}

var wantRx = regexp.MustCompile(`// want (.*)$`)

func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: %v", posn, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", posn, p, err)
					}
					wants = append(wants, &want{file: posn.Filename, line: wantLine(pkg.Fset, posn), re: re, text: p})
				}
			}
		}
	}
	return wants, nil
}

// wantLine is the line the expectation applies to: the comment's own line.
func wantLine(_ *token.FileSet, posn token.Position) int { return posn.Line }

// splitPatterns parses a sequence of quoted or backquoted regexps.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
	}
	return out, nil
}
