package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The suppression ratchet: //lint:ignore vetrnn/* directives are a budget,
// not a convenience. A committed baseline records how many suppressions
// each analyzer is allowed; CI fails when a change adds one beyond the
// baseline (the ratchet only turns one way — lowering the baseline is
// always fine), and fails on *stale* directives — comments naming an
// analyzer that no longer fires on the covered lines, which would
// otherwise silently pre-suppress the next real finding at that site.

// Baseline is the committed suppression budget (VETRNN_BASELINE.json).
type Baseline struct {
	// Comment documents how to refresh the file.
	Comment string `json:"_comment,omitempty"`
	// Suppressions maps analyzer name -> allowed directive-name count.
	Suppressions map[string]int `json:"suppressions"`
}

// ReadBaseline loads a committed baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := new(Baseline)
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if b.Suppressions == nil {
		b.Suppressions = map[string]int{}
	}
	return b, nil
}

// WriteBaseline writes the baseline for the given directive set.
func WriteBaseline(path string, directives []Directive) error {
	b := Baseline{
		Comment:      "suppression ratchet baseline; refresh with `go run ./cmd/vetrnn -ratchet <this file> -ratchet-write ./...`",
		Suppressions: CountSuppressions(directives),
	}
	data, err := json.MarshalIndent(&b, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// CountSuppressions tallies directives per claimed analyzer name (a
// directive naming two analyzers counts once under each).
func CountSuppressions(directives []Directive) map[string]int {
	counts := map[string]int{}
	for _, d := range directives {
		for _, n := range d.Names {
			counts[n]++
		}
	}
	return counts
}

// RatchetViolation is one way the tree's suppressions fail the ratchet.
type RatchetViolation struct {
	// Analyzer is the claimed analyzer name.
	Analyzer string
	// Stale, when valid, positions a directive whose named analyzer
	// suppressed nothing in this run; when zero, the violation is a count
	// overrun (Count > Allowed).
	Stale          string
	Count, Allowed int
}

func (v RatchetViolation) String() string {
	if v.Stale != "" {
		return fmt.Sprintf("%s: stale suppression: vetrnn/%s does not fire on the covered lines; delete the directive", v.Stale, v.Analyzer)
	}
	return fmt.Sprintf("ratchet: %d vetrnn/%s suppressions exceed the baseline of %d; fix the finding or raise the committed baseline deliberately", v.Count, v.Analyzer, v.Allowed)
}

// Ratchet checks the run's directives against the baseline. active names
// the analyzers that actually ran: stale detection only applies to their
// directives (a disabled analyzer's suppressions cannot be judged), while
// count overruns apply to every claimed name. Violations come back sorted,
// stale findings first.
func Ratchet(b *Baseline, directives []Directive, active map[string]bool) []RatchetViolation {
	var out []RatchetViolation
	for _, d := range directives {
		for _, n := range d.Names {
			if active[n] && d.Suppressed[n] == 0 {
				out = append(out, RatchetViolation{Analyzer: n, Stale: d.Pos.String()})
			}
		}
	}
	counts := CountSuppressions(directives)
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if counts[n] > b.Suppressions[n] {
			out = append(out, RatchetViolation{Analyzer: n, Count: counts[n], Allowed: b.Suppressions[n]})
		}
	}
	return out
}
