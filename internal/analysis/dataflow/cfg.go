// Package dataflow is the block-level analysis core the fact-powered
// analyzers (guardedby, lockorder, determinism) share: a control-flow
// graph built from a function body's AST, and a forward worklist solver
// over a reusable lattice interface.
//
// The CFG is intraprocedural and syntactic — no SSA, no call graph. Each
// basic block holds a maximal straight-line run of "atomic" AST nodes:
// plain statements plus the bare condition/tag expressions of the control
// statements that split flow. Function literals are opaque expressions
// (a closure runs on its own schedule; analyzers recurse into literals
// explicitly, exactly as the lexical replay used to), and a call to the
// panic builtin terminates its block like a return.
//
// The solver (Forward) iterates transfer functions to a fixpoint with
// states joined at control-flow merges. That is precisely what lexical
// replay could not do: an early `return` under a lock no longer leaks its
// branch's Unlock into the fall-through path, and a lock taken on only
// one arm of a branch no longer counts as held after the merge.
package dataflow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks (construction order;
	// the entry block is index 0).
	Index int
	// Nodes are the block's AST nodes in source order: plain statements,
	// and the condition/tag/comm expressions of control statements.
	Nodes []ast.Node
	// Succs are the control-flow successors.
	Succs []*Block
	// Preds are the control-flow predecessors.
	Preds []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	// Entry is the block control enters through.
	Entry *Block
	// Blocks lists every block in construction order. Blocks unreachable
	// from Entry (code after a return, an unused labeled break target)
	// stay in the list with no predecessors.
	Blocks []*Block
}

// New builds the CFG of body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	b.graph = &Graph{}
	entry := b.newBlock()
	b.graph.Entry = entry
	b.cur = entry
	b.stmtList(body.List)
	return b.graph
}

// builder carries the construction state.
type builder struct {
	graph *Graph
	// cur is the block statements append to; nil after a terminator
	// (return, break, panic) until the next statement opens a fresh —
	// unreachable — block.
	cur *Block
	// targets stacks the jump targets of the enclosing loops/switches.
	targets []target
	// labels maps label names to their pending jump targets.
	labels map[string]*labelInfo
	// pendingLabel hands a label down to the loop/switch statement it
	// names, so labeled break/continue resolve to that construct.
	pendingLabel string
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label      string // enclosing label, if the construct is labeled
	breakTo    *Block
	continueTo *Block // nil for switch/select (not continuable)
}

// labelInfo resolves goto/labeled-branch targets.
type labelInfo struct {
	// block is the labeled statement's block (goto target), once built.
	block *Block
	// pending are blocks that issued `goto label` before the label was
	// seen; they are patched when the label's block materializes.
	pending []*Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// current returns the block to append to, opening an unreachable block
// when flow was terminated.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.current()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		b.add(st.Init)
		b.add(st.Cond)
		cond := b.current()
		b.cur = nil
		done := b.newBlock()

		thenB := b.newBlock()
		edge(cond, thenB)
		b.cur = thenB
		b.stmtList(st.Body.List)
		edge(b.cur, done)

		if st.Else != nil {
			elseB := b.newBlock()
			edge(cond, elseB)
			b.cur = elseB
			b.stmt(st.Else)
			edge(b.cur, done)
		} else {
			edge(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		b.add(st.Init)
		head := b.newBlock()
		edge(b.cur, head)
		b.cur = head
		b.add(st.Cond)
		done := b.newBlock()
		if st.Cond != nil {
			edge(head, done)
		}
		post := head
		if st.Post != nil {
			post = b.newBlock()
		}
		body := b.newBlock()
		edge(head, body)
		b.cur = body
		b.pushTarget(target{breakTo: done, continueTo: post})
		b.stmtList(st.Body.List)
		b.popTarget()
		if st.Post != nil {
			edge(b.cur, post)
			b.cur = post
			b.add(st.Post)
			edge(post, head)
		} else {
			edge(b.cur, head)
		}
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock()
		edge(b.cur, head)
		b.cur = head
		// The RangeStmt node itself carries X/Key/Value; transfer
		// functions see it once per head visit.
		b.add(st)
		done := b.newBlock()
		edge(head, done)
		body := b.newBlock()
		edge(head, body)
		b.cur = body
		b.pushTarget(target{breakTo: done, continueTo: head})
		b.stmtList(st.Body.List)
		b.popTarget()
		edge(b.cur, head)
		b.cur = done

	case *ast.SwitchStmt:
		b.add(st.Init)
		b.add(st.Tag)
		b.caseClauses(st.Body.List, switchBodies(st.Body.List))

	case *ast.TypeSwitchStmt:
		b.add(st.Init)
		b.add(st.Assign)
		b.caseClauses(st.Body.List, switchBodies(st.Body.List))

	case *ast.SelectStmt:
		head := b.current()
		b.cur = nil
		done := b.newBlock()
		lbl := b.takeLabel()
		var ends []*Block
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			edge(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.targets = append(b.targets, target{label: lbl, breakTo: done})
			b.stmtList(cc.Body)
			b.popTarget()
			ends = append(ends, b.cur)
		}
		for _, e := range ends {
			edge(e, done)
		}
		if len(st.Body.List) == 0 {
			// select {} blocks forever: no successor.
			b.cur = nil
			return
		}
		b.cur = done

	case *ast.LabeledStmt:
		// The labeled statement opens a fresh block so goto can target it.
		lblock := b.newBlock()
		edge(b.cur, lblock)
		b.cur = lblock
		li := b.label(st.Label.Name)
		li.block = lblock
		for _, p := range li.pending {
			edge(p, lblock)
		}
		li.pending = nil
		// A label enclosing a loop/switch names it for labeled
		// break/continue: push the label so the construct claims it.
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		cur := b.current()
		switch st.Tok {
		case token.BREAK:
			if t := b.findTarget(st.Label, true); t != nil {
				edge(cur, t.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(st.Label, false); t != nil {
				edge(cur, t.continueTo)
			}
			b.cur = nil
		case token.GOTO:
			li := b.label(st.Label.Name)
			if li.block != nil {
				edge(cur, li.block)
			} else {
				li.pending = append(li.pending, cur)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by caseClauses (the clause end falls into the next
			// clause body); nothing to do here.
		}

	case *ast.ReturnStmt:
		b.add(st)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(st)
		if isPanic(st.X) {
			b.cur = nil
		}

	case nil:
		// nothing

	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty: plain nodes.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch shape: the tag block
// branches to every clause body (clauses run at most one body), with
// fallthrough wiring clause i's end into clause i+1's body.
func (b *builder) caseClauses(clauses []ast.Stmt, bodies []*ast.CaseClause) {
	head := b.current()
	b.cur = nil
	done := b.newBlock()
	lbl := b.takeLabel()
	hasDefault := false
	blocks := make([]*Block, len(bodies))
	for i := range bodies {
		blocks[i] = b.newBlock()
	}
	for i, cc := range bodies {
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			// Case expressions evaluate on the head's path.
			head.Nodes = append(head.Nodes, e)
		}
		edge(head, blocks[i])
		b.cur = blocks[i]
		b.targets = append(b.targets, target{label: lbl, breakTo: done})
		b.stmtList(cc.Body)
		b.popTarget()
		if fallsThrough(cc.Body) && i+1 < len(blocks) {
			edge(b.cur, blocks[i+1])
			b.cur = nil
			continue
		}
		edge(b.cur, done)
	}
	if !hasDefault {
		edge(head, done)
	}
	b.cur = done
}

func switchBodies(list []ast.Stmt) []*ast.CaseClause {
	out := make([]*ast.CaseClause, 0, len(list))
	for _, s := range list {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushTarget(t target) {
	t.label = b.takeLabel()
	b.targets = append(b.targets, t)
}

// takeLabel consumes the label handed down by an enclosing LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) popTarget() { b.targets = b.targets[:len(b.targets)-1] }

// findTarget resolves break (wantBreak) or continue to an enclosing
// construct, honoring labels; continue skips non-continuable targets.
func (b *builder) findTarget(label *ast.Ident, wantBreak bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if !wantBreak && t.continueTo == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

func (b *builder) label(name string) *labelInfo {
	if b.labels == nil {
		b.labels = map[string]*labelInfo{}
	}
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

// isPanic reports a direct call to the panic builtin.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
