package dataflow

import "go/ast"

// Lattice is the domain of one forward dataflow problem over a Graph.
// States must be treated as values: Transfer and Join return fresh (or
// reused-but-owned) states and never mutate their inputs in place unless
// they own them.
type Lattice[S any] interface {
	// Entry is the state on function entry (e.g. the locks a
	// vetrnn:holds contract declares held).
	Entry() S
	// Join merges two predecessor states at a control-flow merge point.
	Join(a, b S) S
	// Equal reports state equality; the solver iterates until every
	// block's input state stops changing.
	Equal(a, b S) bool
	// Transfer applies one block's nodes to the incoming state and
	// returns the outgoing state.
	Transfer(b *Block, in S) S
}

// maxPasses bounds the worklist iteration defensively; the lattices the
// analyzers use are finite and the transfer functions monotone, so the
// fixpoint arrives after a handful of passes — the bound only guards
// against a misbehaving Lattice turning analysis into a spin.
const maxPasses = 10000

// Forward solves the dataflow problem and returns each block's input
// state. Blocks unreachable from the entry (dead code after a return)
// get the entry state, which matches how the lexical replay treated
// them and keeps diagnostics inside dead code conservative.
func Forward[S any](g *Graph, l Lattice[S]) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	out := make(map[*Block]S, len(g.Blocks))
	computed := make(map[*Block]bool, len(g.Blocks))

	// Reverse-postorder-ish seed: construction order is close enough
	// (blocks are created roughly in source order).
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}

	passes := 0
	for len(work) > 0 && passes < maxPasses {
		passes++
		b := work[0]
		work = work[1:]
		queued[b] = false

		var state S
		fresh := true
		for _, p := range b.Preds {
			if !computed[p] {
				continue
			}
			if fresh {
				state = out[p]
				fresh = false
			} else {
				state = l.Join(state, out[p])
			}
		}
		if fresh {
			// Entry, or no predecessor has produced a state yet
			// (unreachable code, or a loop head on the first pass whose
			// only computed pred is upstream — that case is covered by
			// the loop above).
			state = l.Entry()
		}

		if prev, ok := in[b]; ok && l.Equal(prev, state) && computed[b] {
			continue
		}
		in[b] = state
		out[b] = l.Transfer(b, state)
		computed[b] = true
		for _, s := range b.Succs {
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// VisitBlockNode walks the expressions of one block node in source
// order, calling f exactly like ast.Inspect but without descending into
// nested function literals (closures run on their own schedule and are
// analyzed as separate scopes) or into a RangeStmt head node's loop body
// (the body lives in its own blocks).
func VisitBlockNode(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		// The head node owns only the range operands; Key/Value are
		// visited for write tracking, X for the ranged operand.
		for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
			if e != nil {
				VisitBlockNode(e, f)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}
