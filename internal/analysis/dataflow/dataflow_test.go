package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"graphrnn/internal/analysis/dataflow"
)

// parseBody returns the CFG of the body of the first function in src.
func parseBody(t *testing.T, src string) (*token.FileSet, *dataflow.Graph) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, dataflow.New(fd.Body)
		}
	}
	t.Fatal("no function in src")
	return nil, nil
}

// lockLattice is the canonical test lattice: calls to lock(name) add the
// name, unlock(name) removes it, and the join keeps only names held on
// every path — the exact shape guardedby and lockorder build on.
type lockLattice struct{}

type lockSet map[string]bool

func (lockLattice) Entry() lockSet { return lockSet{} }

func (lockLattice) Join(a, b lockSet) lockSet {
	out := lockSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (lockLattice) Equal(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (lockLattice) Transfer(b *dataflow.Block, in lockSet) lockSet {
	out := lockSet{}
	for k := range in {
		out[k] = true
	}
	for _, n := range b.Nodes {
		applyNode(out, n)
	}
	return out
}

// applyNode interprets lock/unlock calls inside one block node.
func applyNode(out lockSet, n ast.Node) {
	dataflow.VisitBlockNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || len(call.Args) != 1 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true
		}
		name := strings.Trim(lit.Value, `"`)
		switch id.Name {
		case "lock":
			out[name] = true
		case "unlock":
			delete(out, name)
		}
		return true
	})
}

// heldAt solves the problem and returns the sorted lock names held at
// the call probe(marker): the block's input state with the nodes before
// the probe replayed on top — exactly how an analyzer reports state at a
// specific statement.
func heldAt(t *testing.T, src, marker string) []string {
	t.Helper()
	_, g := parseBody(t, src)
	in := dataflow.Forward[lockSet](g, lockLattice{})
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			found := false
			dataflow.VisitBlockNode(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "probe" || len(call.Args) != 1 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if ok && strings.Trim(lit.Value, `"`) == marker {
					found = true
				}
				return true
			})
			if found {
				state := lockSet{}
				for k := range in[b] {
					state[k] = true
				}
				for _, prev := range b.Nodes[:i] {
					applyNode(state, prev)
				}
				var names []string
				for k := range state {
					names = append(names, k)
				}
				sort.Strings(names)
				return names
			}
		}
	}
	t.Fatalf("probe %q not found", marker)
	return nil
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStraightLine(t *testing.T) {
	got := heldAt(t, `
func f() {
	lock("a")
	probe("p")
	unlock("a")
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestBranchJoinDropsOneSided(t *testing.T) {
	// A lock taken on only one arm is not held after the merge.
	got := heldAt(t, `
func f(c bool) {
	if c {
		lock("a")
	}
	probe("p")
}`, "p")
	if len(got) != 0 {
		t.Fatalf("held = %v, want []", got)
	}
}

func TestBranchJoinKeepsBothSided(t *testing.T) {
	got := heldAt(t, `
func f(c bool) {
	if c {
		lock("a")
	} else {
		lock("a")
		lock("b")
	}
	probe("p")
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestEarlyReturnDoesNotLeakUnlock(t *testing.T) {
	// The lexical-replay false positive: the error path unlocks and
	// returns, and the fall-through path must still see the lock held.
	got := heldAt(t, `
func f(bad bool) int {
	lock("a")
	if bad {
		unlock("a")
		return 0
	}
	probe("p")
	unlock("a")
	return 1
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestLoopKeepsOuterLock(t *testing.T) {
	got := heldAt(t, `
func f(xs []int) {
	lock("a")
	for _, x := range xs {
		_ = x
		probe("p")
	}
	unlock("a")
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestLoopBodyLockNotHeldAtHead(t *testing.T) {
	// A lock both taken and released inside the body is not held on the
	// next head evaluation, and not after the loop.
	got := heldAt(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		lock("a")
		unlock("a")
	}
	probe("p")
}`, "p")
	if len(got) != 0 {
		t.Fatalf("held after loop = %v, want []", got)
	}
}

func TestLoopUnbalancedBodyDropsAtHead(t *testing.T) {
	// A body that unlocks without relocking cannot claim the lock on the
	// second iteration: the head join drops it.
	got := heldAt(t, `
func f(n int) {
	lock("a")
	for i := 0; i < n; i++ {
		probe("p")
		unlock("a")
	}
}`, "p")
	if len(got) != 0 {
		t.Fatalf("held in body = %v, want [] (backedge lost the lock)", got)
	}
}

func TestSwitchAllCasesLock(t *testing.T) {
	got := heldAt(t, `
func f(n int) {
	switch n {
	case 1:
		lock("a")
	default:
		lock("a")
	}
	probe("p")
	unlock("a")
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestSwitchMissingDefaultDrops(t *testing.T) {
	// No default: the zero-case path reaches the merge without the lock.
	got := heldAt(t, `
func f(n int) {
	switch n {
	case 1:
		lock("a")
	}
	probe("p")
}`, "p")
	if len(got) != 0 {
		t.Fatalf("held = %v, want []", got)
	}
}

func TestSelectClauseFlow(t *testing.T) {
	got := heldAt(t, `
func f(ch chan int) {
	lock("a")
	select {
	case <-ch:
		probe("p")
	case ch <- 1:
	}
	unlock("a")
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestLabeledBreak(t *testing.T) {
	// break out of both loops: the lock taken before the outer loop is
	// held at the join; the inner body lock is not.
	got := heldAt(t, `
func f(xs []int) {
	lock("a")
outer:
	for _, x := range xs {
		for _, y := range xs {
			lock("b")
			if x == y {
				unlock("b")
				break outer
			}
			unlock("b")
		}
	}
	probe("p")
	unlock("a")
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestGotoForward(t *testing.T) {
	got := heldAt(t, `
func f(c bool) {
	lock("a")
	if c {
		goto done
	}
	lock("b")
	unlock("b")
done:
	probe("p")
	unlock("a")
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestPanicTerminatesBlock(t *testing.T) {
	// The panic path does not flow into the merge, so its unlock does
	// not strip the lock from the fall-through path.
	got := heldAt(t, `
func f(bad bool) {
	lock("a")
	if bad {
		unlock("a")
		panic("boom")
	}
	probe("p")
	unlock("a")
}`, "p")
	if !eq(got, []string{"a"}) {
		t.Fatalf("held = %v, want [a]", got)
	}
}

func TestFallthroughChains(t *testing.T) {
	got := heldAt(t, `
func f(n int) {
	switch n {
	case 1:
		lock("a")
		fallthrough
	case 2:
		probe("p")
		unlock("a")
	}
}`, "p")
	// The probe block joins case-1-fallthrough (a held) and the direct
	// case-2 entry (nothing held): intersection is empty.
	if len(got) != 0 {
		t.Fatalf("held = %v, want [] (direct case-2 path holds nothing)", got)
	}
}

func TestUnreachableGetsEntryState(t *testing.T) {
	got := heldAt(t, `
func f() int {
	lock("a")
	unlock("a")
	return 0
	probe("p")
	return 1
}`, "p")
	if len(got) != 0 {
		t.Fatalf("held = %v, want [] (entry state in dead code)", got)
	}
}

// TestCFGShapes sanity-checks block construction on a composite body:
// every statement lands in exactly one block, and the entry reaches the
// return through the expected number of blocks.
func TestCFGShapes(t *testing.T) {
	_, g := parseBody(t, `
func f(xs []int, c bool) int {
	total := 0
	for i, x := range xs {
		if x < 0 {
			continue
		}
		total += i
	}
	if c {
		return total
	}
	return -total
}`)
	if g.Entry == nil || len(g.Blocks) == 0 {
		t.Fatal("empty graph")
	}
	if g.Entry.Index != 0 {
		t.Fatalf("entry index = %d", g.Entry.Index)
	}
	// Reachability: the entry must reach a block whose last node is a
	// ReturnStmt.
	seen := map[*dataflow.Block]bool{}
	var walk func(b *dataflow.Block)
	returns := 0
	walk = func(b *dataflow.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	if returns != 2 {
		t.Fatalf("reachable returns = %d, want 2", returns)
	}
}
