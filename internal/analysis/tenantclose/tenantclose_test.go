package tenantclose_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/tenantclose"
)

func TestTenantClose(t *testing.T) {
	analysistest.Run(t, "testdata", tenantclose.Analyzer, "tenantclose")
}

// TestCrossPackage checks that holder-ness declared in one package obliges
// its importers — holderlib exports the Holders fact, holderuse must
// release the embedded holder.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", tenantclose.Analyzer, "holderuse")
}
