// Package tenantclose checks the buffer-pool tenant lifecycle: a type that
// holds a tenant handle (a *storage.Tenant / storage.BufferManager field,
// or a field of another holder type) must release it — every
// BufferPool.Attach needs a reachable Detach, the invariant the PR-3
// PagedEdgePoints leak violated.
//
// A struct with a tenant-holding field must declare a releasing method
// (Close, close, Detach, Release, Shutdown or Stop) that releases every
// such field:
//
//   - a releasing call rooted at the field — h.bm.Detach(), h.mat.Close(),
//     h.db.disk.Buffer().Detach() (intermediate method calls are fine);
//   - or, for slices/maps of holders, a releasing call on the variable of
//     a `for … range recv.f` loop — for _, h := range s.handles { h.close() }.
//
// A release under `defer` counts on every path; otherwise a `return`
// lexically before the first release of a field is flagged as a leaking
// early exit — exactly the error-path shape that leaked PagedEdgePoints'
// tenant.
//
// Holder-ness is transitive: a type whose field is itself a holder (same
// package, resolved by fixpoint; other packages, resolved through the
// exported Holders fact) carries the obligation too, discharged by calling
// any releaser of the inner holder. Diagnostics for missing releases sit
// on the holding field, so a deliberate exception is one field-level
// //lint:ignore with a reason (the pool's own back-pointers are the
// canonical case).
package tenantclose

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"graphrnn/internal/analysis"
)

// Analyzer is the tenantclose check.
var Analyzer = &analysis.Analyzer{
	Name:      "tenantclose",
	Doc:       "types holding buffer-pool tenants must release them in a Close/Detach method on all exits",
	SkipTests: true,
	FactTypes: []analysis.Fact{new(Holders)},
	Run:       run,
}

// Holders is the package fact naming a package's tenant-holding types:
// type name -> the fields that hold tenants and the methods that release
// all of them. Importers use it to treat fields of these types as tenant
// obligations of their own.
type Holders struct {
	Types map[string]HolderInfo `json:"types"`
}

// HolderInfo describes one holder type.
type HolderInfo struct {
	Fields    []string `json:"fields"`
	Releasers []string `json:"releasers"`
}

// AFact marks Holders as a fact type.
func (*Holders) AFact() {}

// releaserNames are method names eligible to discharge a release
// obligation, both as the method a holder must declare and as the final
// call that performs a release.
var releaserNames = map[string]bool{
	"Close": true, "close": true,
	"Detach": true, "detach": true,
	"Release": true, "release": true,
	"Shutdown": true, "Stop": true,
}

// structDecl is one struct type declaration with its syntax, for
// field-positioned diagnostics.
type structDecl struct {
	name   string
	fields []*ast.Field // parallel to fieldNames
	names  []string
	types  []types.Type
}

// release records where a method releases one receiver-rooted field.
type release struct {
	pos      token.Pos
	deferred bool
}

// methodScan is the syntax summary of one candidate releasing method.
type methodScan struct {
	name     string
	released map[string]release // receiver field name -> first release
	returns  []retStmt          // non-final return statements
}

// retStmt is a non-final return plus the receiver fields mentioned in
// enclosing if conditions — the `if recv.f == nil { return }` guard of an
// idempotent Close is not a leaking early exit for f.
type retStmt struct {
	pos     token.Pos
	guarded map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, byPkg: map[string]*Holders{}}

	var structs []structDecl
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			sd := structDecl{name: ts.Name.Name}
			for _, field := range st.Fields.List {
				ftype := pass.TypesInfo.TypeOf(field.Type)
				if ftype == nil {
					continue
				}
				if len(field.Names) == 0 {
					sd.fields = append(sd.fields, field)
					sd.names = append(sd.names, embeddedName(ftype))
					sd.types = append(sd.types, ftype)
					continue
				}
				for _, name := range field.Names {
					sd.fields = append(sd.fields, field)
					sd.names = append(sd.names, name.Name)
					sd.types = append(sd.types, ftype)
				}
			}
			structs = append(structs, sd)
			return true
		})
	}

	// Candidate releasing methods, scanned once, independent of which
	// fields turn out to be obligations.
	scans := map[string][]methodScan{} // receiver type name -> scans
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !releaserNames[fd.Name.Name] {
				continue
			}
			tname := recvTypeName(fd)
			if tname == "" {
				continue
			}
			scans[tname] = append(scans[tname], scanMethod(fd))
		}
	}

	// Fixpoint over intra-package holder nesting: a field of a local
	// holder type (that has at least one releaser, so the obligation is
	// dischargeable) is itself an obligation.
	local := map[string]HolderInfo{}
	for changed := true; changed; {
		changed = false
		for _, sd := range structs {
			var obligated []string
			for i, ft := range sd.types {
				if sd.names[i] != "" && c.holdsTenant(ft, local) {
					obligated = append(obligated, sd.names[i])
				}
			}
			if len(obligated) == 0 {
				continue
			}
			var releasers []string
			for _, ms := range scans[sd.name] {
				all := true
				for _, f := range obligated {
					if _, ok := ms.released[f]; !ok {
						all = false
						break
					}
				}
				if all {
					releasers = append(releasers, ms.name)
				}
			}
			sort.Strings(releasers)
			sort.Strings(obligated)
			prev, had := local[sd.name]
			next := HolderInfo{Fields: obligated, Releasers: releasers}
			if !had || !sameInfo(prev, next) {
				local[sd.name] = next
				changed = true
			}
		}
	}

	// Diagnostics.
	for _, sd := range structs {
		info, ok := local[sd.name]
		if !ok {
			continue
		}
		obligated := map[string]bool{}
		for _, f := range info.Fields {
			obligated[f] = true
		}
		for i, field := range sd.fields {
			fname := sd.names[i]
			if !obligated[fname] {
				continue
			}
			if len(scans[sd.name]) == 0 {
				pass.Reportf(field.Pos(),
					"%s holds a buffer-pool tenant in field %s but has no releasing method (Close/Detach/...); every Attach needs a reachable Detach",
					sd.name, fname)
				continue
			}
			released := false
			for _, ms := range scans[sd.name] {
				if _, ok := ms.released[fname]; ok {
					released = true
					break
				}
			}
			if !released {
				pass.Reportf(field.Pos(),
					"no releasing method of %s releases tenant field %s; every Attach needs a reachable Detach",
					sd.name, fname)
			}
		}
		// Early exits: a non-final return before a field's first
		// non-deferred release leaks the tenant on that path.
		for _, ms := range scans[sd.name] {
			for _, f := range info.Fields {
				rel, ok := ms.released[f]
				if !ok || rel.deferred {
					continue
				}
				for _, ret := range ms.returns {
					if ret.pos < rel.pos && !ret.guarded[f] {
						pass.Reportf(ret.pos,
							"%s.%s returns before releasing tenant field %s (and the release is not deferred); the tenant leaks on this path",
							sd.name, ms.name, f)
					}
				}
			}
		}
	}

	if len(local) > 0 {
		fact := &Holders{Types: local}
		if err := pass.ExportPackageFact(fact); err != nil {
			return err
		}
	}
	return nil
}

func sameInfo(a, b HolderInfo) bool {
	if len(a.Fields) != len(b.Fields) || len(a.Releasers) != len(b.Releasers) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	for i := range a.Releasers {
		if a.Releasers[i] != b.Releasers[i] {
			return false
		}
	}
	return true
}

type checker struct {
	pass  *analysis.Pass
	byPkg map[string]*Holders
}

// holdsTenant reports whether a field of type t creates a release
// obligation: the tenant type itself, a holder type (same package via the
// in-progress local table, other packages via facts — in either case only
// if dischargeable, i.e. it has a releaser), or a container of either.
func (c *checker) holdsTenant(t types.Type, local map[string]HolderInfo) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return c.holdsTenant(u.Elem(), local)
	case *types.Slice:
		return c.holdsTenant(u.Elem(), local)
	case *types.Array:
		return c.holdsTenant(u.Elem(), local)
	case *types.Map:
		return c.holdsTenant(u.Elem(), local)
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	if name == "Tenant" && analysis.PathHasSuffix(pkg, "storage") {
		return true
	}
	if pkg == c.pass.Pkg.Path() {
		info, ok := local[name]
		return ok && len(info.Releasers) > 0
	}
	info, ok := c.holderInfo(pkg, name)
	return ok && len(info.Releasers) > 0
}

// holderInfo looks up a type in the imported holder facts.
func (c *checker) holderInfo(pkgPath, typeName string) (HolderInfo, bool) {
	facts, ok := c.byPkg[pkgPath]
	if !ok {
		facts = new(Holders)
		if !c.pass.ImportPackageFact(pkgPath, facts) {
			facts = nil
		}
		c.byPkg[pkgPath] = facts
	}
	if facts == nil {
		return HolderInfo{}, false
	}
	info, ok := facts.Types[typeName]
	return info, ok
}

// scanMethod summarizes one candidate releasing method: which
// receiver-rooted fields it releases (and where), and its non-final
// return statements.
func scanMethod(fd *ast.FuncDecl) methodScan {
	recv := recvName(fd)
	ms := methodScan{name: fd.Name.Name, released: map[string]release{}}
	// handles maps local variables standing in for a receiver field: the
	// value of `for _, h := range recv.f` and the local copy of the
	// idempotent-close idiom (`bm := recv.f; recv.f = nil; bm.Detach()`).
	handles := map[string]string{}

	record := func(f string, pos token.Pos, deferred bool) {
		if prev, ok := ms.released[f]; ok && (prev.deferred || !deferred && prev.pos <= pos) {
			return
		}
		ms.released[f] = release{pos: pos, deferred: deferred}
	}

	// ifGuards tracks, per enclosing if statement still covering the
	// current preorder position, the receiver fields its condition
	// mentions.
	type ifGuard struct {
		end    token.Pos
		fields map[string]bool
	}
	var ifGuards []ifGuard

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.IfStmt:
			fields := map[string]bool{}
			condFields(st.Cond, recv, handles, fields)
			if len(fields) > 0 {
				ifGuards = append(ifGuards, ifGuard{end: st.End(), fields: fields})
			}
		case *ast.RangeStmt:
			if f, ok := fieldRoot(st.X, recv); ok {
				if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
					handles[id.Name] = f
				} else if id, ok := st.Key.(*ast.Ident); ok && id.Name != "_" {
					handles[id.Name] = f
				}
			}
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE && len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if f, ok := fieldRoot(st.Rhs[i], recv); ok {
						handles[id.Name] = f
					}
				}
			}
		case *ast.DeferStmt:
			if f, ok := releasingCall(st.Call, recv, handles); ok {
				record(f, st.Call.Pos(), true)
			}
		case *ast.CallExpr:
			if f, ok := releasingCall(st, recv, handles); ok {
				record(f, st.Pos(), false)
			}
		case *ast.ReturnStmt:
			if st.End() < lastStmtEnd(fd.Body) {
				guarded := map[string]bool{}
				for _, g := range ifGuards {
					if st.Pos() < g.end {
						for f := range g.fields {
							guarded[f] = true
						}
					}
				}
				ms.returns = append(ms.returns, retStmt{pos: st.Pos(), guarded: guarded})
			}
		}
		return true
	})
	return ms
}

// condFields collects the receiver fields (directly or through handles) an
// if condition mentions.
func condFields(cond ast.Expr, recv string, handles map[string]string, out map[string]bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && id.Name == recv {
				out[x.Sel.Name] = true
				return false
			}
		case *ast.Ident:
			if f, ok := handles[x.Name]; ok {
				out[f] = true
			}
		}
		return true
	})
}

// releasingCall reports which receiver field a call releases: the final
// method name must be a releaser and the receiver chain must root at
// recv.<field> (through any mix of selections, calls, indexes) or at a
// handle variable standing in for such a field.
func releasingCall(call *ast.CallExpr, recv string, handles map[string]string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !releaserNames[sel.Sel.Name] {
		return "", false
	}
	if f, ok := fieldRoot(sel.X, recv); ok {
		return f, true
	}
	if id, ok := rootIdent(sel.X); ok {
		if f, ok := handles[id]; ok {
			return f, true
		}
	}
	return "", false
}

// fieldRoot returns the first field selected off the receiver in a chain
// like recv.f, recv.f.x, recv.f.Buffer(), recv.f[i], *recv.f.
func fieldRoot(e ast.Expr, recv string) (string, bool) {
	if recv == "" {
		return "", false
	}
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if id.Name == recv {
					return x.Sel.Name, true
				}
				return "", false
			}
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// rootIdent returns the leftmost identifier of a selector/call chain.
func rootIdent(e ast.Expr) (string, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func recvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0].Name
	}
	return ""
}

func embeddedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// lastStmtEnd returns the end position of the body's final statement; a
// return ending there is the function's normal exit, exempt from the
// early-exit check (not releasing at all is the other diagnostic).
func lastStmtEnd(body *ast.BlockStmt) token.Pos {
	if len(body.List) == 0 {
		return body.End()
	}
	return body.List[len(body.List)-1].End()
}
