// Package holderlib declares a tenant holder with a releaser; the
// obligation travels to importers as a package fact (see the holderuse
// fixture).
package holderlib

import "storage"

type Paged struct {
	bm *storage.Tenant
}

func (p *Paged) Close() { p.bm.Detach() }
