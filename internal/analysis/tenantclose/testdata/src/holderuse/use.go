// Package holderuse embeds holderlib's holder type in its own structs;
// the obligation reaches this package through the Holders fact.
package holderuse

import "holderlib"

type Good struct {
	paged *holderlib.Paged
}

func (g *Good) Close() { g.paged.Close() }

type Leak struct {
	paged *holderlib.Paged // want `Leak holds a buffer-pool tenant in field paged but has no releasing method`
}
