// Single-package tenantclose scenarios: the PR-3 leak shape, forgotten
// fields, early returns, deferred releases, accessor chains, intra-package
// holder nesting, range-released slices, and suppression.
package tenantclose

import "storage"

// --- the happy path ---------------------------------------------------------

type PagedGood struct {
	bm *storage.Tenant
}

func (p *PagedGood) Buffer() *storage.Tenant { return p.bm }

func (p *PagedGood) Close() error {
	p.bm.Detach()
	return nil
}

// --- the PR-3 leak: a tenant with no releasing method anywhere --------------

type PagedLeak struct {
	bm *storage.Tenant // want `PagedLeak holds a buffer-pool tenant in field bm but has no releasing method`
}

// --- a Close that forgets one of two tenants --------------------------------

type Forgets struct {
	a *storage.Tenant
	b *storage.Tenant // want `no releasing method of Forgets releases tenant field b`
}

func (f *Forgets) Close() { f.a.Detach() }

// --- early error return skips the release -----------------------------------

type EarlyLeak struct {
	bm *storage.Tenant
}

func (e *EarlyLeak) flush() error { return nil }

func (e *EarlyLeak) Close() error {
	if err := e.flush(); err != nil {
		return err // want `EarlyLeak\.Close returns before releasing tenant field bm`
	}
	e.bm.Detach()
	return nil
}

// --- defer covers every path ------------------------------------------------

type DeferredOK struct {
	bm *storage.Tenant
}

func (d *DeferredOK) check() error { return nil }

func (d *DeferredOK) Close() error {
	defer d.bm.Detach()
	if err := d.check(); err != nil {
		return err
	}
	return nil
}

// --- the idempotent-close idiom: local copy, nil the field, release ---------

type IdempotentClose struct {
	bm *storage.Tenant
}

func (c *IdempotentClose) Close() error {
	if c.bm == nil {
		return nil // nil-guarded: not a leaking early exit
	}
	bm := c.bm
	c.bm = nil
	return bm.Detach()
}

// --- the alias counts too ---------------------------------------------------

type Managed struct {
	bm *storage.BufferManager
}

func (m *Managed) Close() { m.bm.Detach() }

// --- intra-package holder nesting + release through an accessor chain -------

type Owner struct {
	paged *PagedGood
}

func (o *Owner) Close() { o.paged.Buffer().Detach() }

type OwnerLeak struct {
	paged *PagedGood // want `OwnerLeak holds a buffer-pool tenant in field paged but has no releasing method`
}

// --- slices of holders released through a range loop ------------------------

type Handle struct {
	bm *storage.Tenant
}

func (h *Handle) close() { h.bm.Detach() }

type Multi struct {
	handles []*Handle
}

func (m *Multi) Close() {
	for _, h := range m.handles {
		h.close()
	}
}

// --- deliberate exceptions are suppressed (and ratchet-counted) -------------

type PoolInternal struct {
	//lint:ignore vetrnn/tenantclose back-pointer owned by the pool, which detaches it itself
	owner *storage.Tenant
}
