// Package storage is a minimal stand-in for the repo's buffer-pool
// package: the analyzer recognizes Tenant (and the BufferManager alias)
// by package-path suffix and type name.
package storage

type BufferPool struct {
	tenants map[string]*Tenant
}

type Tenant struct {
	pool *BufferPool
	name string
}

// BufferManager mirrors the repo's single-tenant compatibility alias.
type BufferManager = Tenant

func (p *BufferPool) Attach(name string) *Tenant {
	t := &Tenant{pool: p, name: name}
	p.tenants[name] = t
	return t
}

func (t *Tenant) Detach() error { return nil }
