package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. The
// loaders in internal/analysis/load produce these from `go list` export
// data, from a `go vet -vettool` unit config, or from testdata sources.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Finding is one diagnostic that survived suppression filtering, resolved
// to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to pkg and returns the surviving findings in
// position order: suppressed diagnostics are dropped, and analyzers with
// SkipTests set do not report into _test.go files. Malformed suppression
// comments are themselves reported (analyzer name "lintignore"), so a
// reason-less ignore cannot silently disable a check.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	sup, bad := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Finding
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		var diags []Diagnostic
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Types.Path(), err)
		}
		for _, d := range diags {
			posn := pkg.Fset.Position(d.Pos)
			if a.SkipTests && strings.HasSuffix(posn.Filename, "_test.go") {
				continue
			}
			if sup.covers(posn, a.Name) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// --- //lint:ignore suppression ---------------------------------------------
//
// A deliberate contract exception is annotated staticcheck-style:
//
//	//lint:ignore vetrnn/<name>[,vetrnn/<name>...] <reason>
//
// The comment suppresses the named analyzers on its own line and on the
// line directly below it, so it works both as a trailing comment and on the
// line before the flagged statement. The reason is mandatory: an ignore
// without one is reported as a finding in its own right.

const ignorePrefix = "//lint:ignore "

// suppressions maps file -> line -> analyzer names suppressed there.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(posn token.Position, analyzer string) bool {
	lines := s[posn.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		if lines[line][analyzer] || lines[line]["*"] {
			return true
		}
	}
	return false
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	sup := suppressions{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Finding{
						Analyzer: "lintignore",
						Pos:      posn,
						Message:  "malformed //lint:ignore: want \"//lint:ignore vetrnn/<check>[,...] reason\"",
					})
					continue
				}
				lines := sup[posn.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[posn.Filename] = lines
				}
				set := lines[posn.Line]
				if set == nil {
					set = map[string]bool{}
					lines[posn.Line] = set
				}
				for _, n := range strings.Split(names, ",") {
					set[strings.TrimPrefix(n, "vetrnn/")] = true
				}
			}
		}
	}
	return sup, bad
}
