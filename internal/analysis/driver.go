package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. The
// loaders in internal/analysis/load produce these from `go list` export
// data, from a `go vet -vettool` unit config, or from testdata sources.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Finding is one diagnostic that survived suppression filtering, resolved
// to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Directive is one //lint:ignore comment, resolved for the ratchet: the
// analyzer names it claims to suppress and, per name, how many diagnostics
// it actually suppressed in this run. A name with zero suppressed
// diagnostics is a *stale* directive candidate (the finding it once
// silenced no longer fires there).
type Directive struct {
	Pos   token.Position
	Names []string
	// Suppressed counts, per claimed analyzer name, the diagnostics this
	// directive silenced.
	Suppressed map[string]int
}

// Run applies every analyzer to pkg with a throwaway fact store — the
// single-package entry point.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunFacts(pkg, analyzers, NewFactStore())
	return findings, err
}

// RunFacts applies every analyzer to pkg and returns the surviving
// findings in position order plus the suppression directives the package
// carries: suppressed diagnostics are dropped (and tallied on their
// directive), and analyzers with SkipTests set do not report into _test.go
// files. Malformed suppression comments are themselves reported (analyzer
// name "lintignore"), so a reason-less ignore cannot silently disable a
// check. facts carries package facts into the analysis (imports must have
// been analyzed into the same store, or loaded from vetx files) and
// receives the facts the analyzers export.
func RunFacts(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Finding, []Directive, error) {
	sup, directives, bad := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Finding
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     facts,
		}
		var diags []Diagnostic
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Types.Path(), err)
		}
		for _, d := range diags {
			posn := pkg.Fset.Position(d.Pos)
			if a.SkipTests && strings.HasSuffix(posn.Filename, "_test.go") {
				continue
			}
			if dir := sup.covering(posn, a.Name); dir != nil {
				dir.Suppressed[a.Name]++
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, directives, nil
}

// --- //lint:ignore suppression ---------------------------------------------
//
// A deliberate contract exception is annotated staticcheck-style:
//
//	//lint:ignore vetrnn/<name>[,vetrnn/<name>...] <reason>
//
// The comment suppresses the named analyzers on its own line and on the
// line directly below it, so it works both as a trailing comment and on the
// line before the flagged statement. The reason is mandatory: an ignore
// without one is reported as a finding in its own right.

const ignorePrefix = "//lint:ignore "

// suppressions maps file -> line -> the directive covering that line (a
// directive covers its own line and the next).
type suppressions map[string]map[int]*Directive

// covering returns the directive that suppresses analyzer at posn, if any.
func (s suppressions) covering(posn token.Position, analyzer string) *Directive {
	lines := s[posn.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		d := lines[line]
		if d == nil {
			continue
		}
		for _, n := range d.Names {
			if n == analyzer || n == "*" {
				return d
			}
		}
	}
	return nil
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Directive, []Finding) {
	sup := suppressions{}
	var dirs []*Directive
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Finding{
						Analyzer: "lintignore",
						Pos:      posn,
						Message:  "malformed //lint:ignore: want \"//lint:ignore vetrnn/<check>[,...] reason\"",
					})
					continue
				}
				d := &Directive{Pos: posn, Suppressed: map[string]int{}}
				for _, n := range strings.Split(names, ",") {
					d.Names = append(d.Names, strings.TrimPrefix(n, "vetrnn/"))
				}
				dirs = append(dirs, d)
				lines := sup[posn.Filename]
				if lines == nil {
					lines = map[int]*Directive{}
					sup[posn.Filename] = lines
				}
				lines[posn.Line] = d
			}
		}
	}
	out := make([]Directive, len(dirs))
	for i, d := range dirs {
		out[i] = *d
	}
	// The Directive values in out alias the Suppressed maps the run
	// mutates, so callers see the final tallies.
	return sup, out, bad
}
