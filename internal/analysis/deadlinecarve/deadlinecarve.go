// Package deadlinecarve checks the fan-out deadline contract: when a
// function that already has a parent deadline source (a context.Context
// parameter, or a parameter carrying a Timeout/Deadline field — the
// QueryOptions shape) builds per-child deadlines inside a loop, each
// child's budget must be carved from the parent's remaining budget, the
// way shardTimeout divides what is left across shards.
//
// Two shapes break the contract and are flagged inside loop bodies:
//
//   - a compile-time-constant child budget ("Timeout: 50 * time.Millisecond",
//     "opts.Timeout = shardBudget", context.WithTimeout(ctx, 2*time.Second)):
//     N children at a constant budget can spend N times the parent's;
//   - a deadline rebased to time.Now() ("Deadline: time.Now().Add(d)"):
//     every iteration restarts the clock, so time already spent on earlier
//     children is not charged against later ones.
//
// A zero constant is exempt (the "no deadline" sentinel), and functions
// without a parent deadline source are never flagged — a benchmark loop
// handing each run a fresh budget is fine. Deliberate floors (the
// 50ms-minimum reserve) carry //lint:ignore vetrnn/deadlinecarve with the
// reason.
package deadlinecarve

import (
	"go/ast"
	"go/constant"
	"go/types"

	"graphrnn/internal/analysis"
)

// Analyzer is the deadlinecarve check.
var Analyzer = &analysis.Analyzer{
	Name:      "deadlinecarve",
	Doc:       "child deadlines built in fan-out loops must derive from the parent deadline, not constants or time.Now()",
	SkipTests: true,
	Run:       run,
}

var deadlineFields = map[string]bool{"Timeout": true, "Deadline": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if !hasParentDeadline(pass, fd) {
				return true
			}
			checkLoops(pass, fd.Body)
			return true
		})
	}
	return nil
}

// hasParentDeadline reports whether the function receives a deadline it
// should be carving from: a context.Context parameter or a parameter
// whose (possibly pointed-to) struct type has a Timeout or Deadline
// field.
func hasParentDeadline(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContext(t) {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if deadlineFields[st.Field(i).Name()] {
				return true
			}
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && analysis.PathHasSuffix(named.Obj().Pkg().Path(), "context")
}

// checkLoops flags broken child deadlines inside every loop body of the
// function.
func checkLoops(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch st := n.(type) {
		case *ast.ForStmt:
			loopBody = st.Body
		case *ast.RangeStmt:
			loopBody = st.Body
		default:
			return true
		}
		checkLoopBody(pass, loopBody)
		// Nested loops are reached by the continued Inspect.
		return true
	})
}

func checkLoopBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.KeyValueExpr:
			if key, ok := st.Key.(*ast.Ident); ok && deadlineFields[key.Name] {
				flagValue(pass, st.Value, key.Name)
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !deadlineFields[sel.Sel.Name] || i >= len(st.Rhs) {
					continue
				}
				flagValue(pass, st.Rhs[i], sel.Sel.Name)
			}
		case *ast.CallExpr:
			if len(st.Args) == 2 &&
				(analysis.CalleeIs(pass.TypesInfo, st, "context", "WithTimeout") ||
					analysis.CalleeIs(pass.TypesInfo, st, "context", "WithDeadline")) {
				flagValue(pass, st.Args[1], "deadline")
			}
		}
		return true
	})
}

// flagValue reports a child-deadline expression that is a nonzero
// compile-time constant or rebased to time.Now().
func flagValue(pass *analysis.Pass, expr ast.Expr, what string) {
	if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(tv.Value); ok && v == 0 {
			return
		}
		pass.Reportf(expr.Pos(),
			"child %s in a fan-out loop is a constant; carve it from the parent's remaining budget (shardTimeout-style) so the parent deadline caps the children", what)
		return
	}
	var now ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && analysis.CalleeIs(pass.TypesInfo, call, "time", "Now") {
			now = n
			return false
		}
		return true
	})
	if now != nil {
		pass.Reportf(expr.Pos(),
			"child %s in a fan-out loop is rebased to time.Now(), so time spent on earlier children is not charged to later ones; derive it from the parent deadline", what)
	}
}
