package deadlinecarve_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/deadlinecarve"
)

func TestDeadlineCarve(t *testing.T) {
	analysistest.Run(t, "testdata", deadlinecarve.Analyzer, "deadlinecarve")
}
