// Package time is a minimal stand-in for the real time package so golden
// fixtures type-check hermetically; the analyzer matches time.Now by
// package path and name.
package time

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

type Time struct{ ns int64 }

func Now() Time { return Time{} }

func Until(t Time) Duration { return 0 }

func (t Time) Add(d Duration) Time { return t }

func (t Time) Sub(u Time) Duration { return 0 }

func (t Time) IsZero() bool { return t.ns == 0 }
