// Deadline-carving scenarios: constant and time.Now()-rebased child
// budgets inside fan-out loops, the carved shape that passes, the zero
// sentinel, functions with no parent deadline, and suppression.
package deadlinecarve

import (
	"context"
	"time"
)

type QueryOptions struct {
	Timeout  time.Duration
	Deadline time.Time
	K        int
}

type shard struct{}

func (s *shard) query(o QueryOptions) {}

// A constant per-child budget lets N children spend N parent budgets.
func fanoutConst(shards []*shard, opts QueryOptions) {
	for _, s := range shards {
		s.query(QueryOptions{Timeout: 50 * time.Millisecond, K: opts.K}) // want `child Timeout in a fan-out loop is a constant`
	}
}

// Rebasing to time.Now() forgets the time earlier children already spent.
func fanoutNow(shards []*shard, opts QueryOptions) {
	for _, s := range shards {
		child := QueryOptions{K: opts.K}
		child.Deadline = time.Now().Add(opts.Timeout) // want `child Deadline in a fan-out loop is rebased to time\.Now`
		s.query(child)
	}
}

// Carving from the parent's budget is the contract; a derived value is
// neither constant nor now-based.
func fanoutCarved(shards []*shard, opts QueryOptions) {
	per := opts.Timeout / time.Duration(len(shards))
	for _, s := range shards {
		s.query(QueryOptions{Timeout: per, K: opts.K})
	}
}

// The context forms of the same two mistakes.
func fanoutCtx(ctx context.Context, shards []*shard) {
	for range shards {
		c, cancel := context.WithTimeout(ctx, 2*time.Second) // want `child deadline in a fan-out loop is a constant`
		_ = c
		cancel()
	}
}

func fanoutCtxDeadline(ctx context.Context, shards []*shard) {
	for range shards {
		c, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second)) // want `child deadline in a fan-out loop is rebased to time\.Now`
		_ = c
		cancel()
	}
}

// Zero is the "no deadline" sentinel, not a budget.
func fanoutZero(shards []*shard, opts QueryOptions) {
	for _, s := range shards {
		s.query(QueryOptions{Timeout: 0, K: opts.K})
	}
}

// No parent deadline source: a benchmark loop may hand out fresh budgets.
func bench(shards []*shard) {
	for _, s := range shards {
		s.query(QueryOptions{Timeout: 100 * time.Millisecond})
	}
}

// Not a fan-out: a single child outside any loop is not flagged.
func single(s *shard, opts QueryOptions) {
	s.query(QueryOptions{Timeout: 50 * time.Millisecond, K: opts.K})
}

// Deliberate floors are suppressed with a reason (and ratchet-counted).
func floor(shards []*shard, opts QueryOptions) {
	for _, s := range shards {
		//lint:ignore vetrnn/deadlinecarve deliberate 50ms floor so slow shards still return partial results
		s.query(QueryOptions{Timeout: 50 * time.Millisecond, K: opts.K})
	}
}
