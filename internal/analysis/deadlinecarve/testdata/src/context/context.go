// Package context is a minimal stand-in for the real context package; the
// analyzer matches Context, WithTimeout and WithDeadline by package path
// and name.
package context

import "time"

type Context interface {
	Deadline() (time.Time, bool)
}

type CancelFunc func()

type background struct{}

func (background) Deadline() (time.Time, bool) { return time.Time{}, false }

func Background() Context { return background{} }

func WithTimeout(parent Context, d time.Duration) (Context, CancelFunc) {
	return parent, func() {}
}

func WithDeadline(parent Context, t time.Time) (Context, CancelFunc) {
	return parent, func() {}
}
