package guardedby_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "guardedby")
}

// TestCrossPackage checks that an annotation declared in one package is
// enforced in an importer — the guardedlib fixture exports the fact, the
// guardeduse fixture trips over it.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "guardeduse")
}
