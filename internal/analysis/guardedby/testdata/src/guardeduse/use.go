// Package guardeduse accesses guardedlib's guarded field; enforcement here
// proves the annotation crossed the package boundary as a fact.
package guardeduse

import "guardedlib"

func Good(r *guardedlib.Registry, k string) int {
	r.Mu.RLock()
	defer r.Mu.RUnlock()
	return r.Entries[k]
}

func Bad(r *guardedlib.Registry, k string) int {
	return r.Entries[k] // want `access to r\.Entries is guarded by r\.Mu, which is not held`
}

func BadPublish(r *guardedlib.Registry, k string) {
	r.Mu.RLock()
	defer r.Mu.RUnlock()
	r.Entries[k] = 1 // want `write to r\.Entries under RLock of r\.Mu`
}
