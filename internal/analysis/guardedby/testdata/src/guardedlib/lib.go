// Package guardedlib declares a guarded exported field; the annotation
// travels to importers as a package fact (see the guardeduse fixture).
package guardedlib

import "sync"

type Registry struct {
	Mu      sync.RWMutex
	Entries map[string]int // vetrnn:guardedby Mu
}
