// Single-package guardedby scenarios: plain mutexes, RWMutex read/write
// modes (including the publish-under-the-read-lock shape), guard paths
// through pointer fields, aliases, vetrnn:holds preconditions,
// construction exemption, closure isolation, and annotation validation.
package guardedby

import "sync"

type counters struct {
	mu        sync.Mutex
	decisions map[string]int // vetrnn:guardedby mu
	fallbacks int64          // vetrnn:guardedby mu
}

func (c *counters) record(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decisions[k]++
	c.fallbacks++
}

func (c *counters) recordUnlocked(k string) {
	c.decisions[k]++ // want `access to c\.decisions is guarded by c\.mu, which is not held`
}

func (c *counters) snapshotUnlocked() int64 {
	return c.fallbacks // want `access to c\.fallbacks is guarded by c\.mu, which is not held`
}

func (c *counters) lateAccess(k string) {
	c.mu.Lock()
	c.decisions[k]++
	c.mu.Unlock()
	c.fallbacks++ // want `access to c\.fallbacks is guarded by c\.mu, which is not held`
}

// --- RWMutex modes: the PR 5 bug class --------------------------------------

type server struct {
	mu    sync.RWMutex
	index *int // vetrnn:guardedby mu
	count int  // vetrnn:guardedby mu
}

func (s *server) query() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.index == nil {
		return 0
	}
	return *s.index
}

func (s *server) publishUnderReadLock(v *int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.index = v // want `write to s\.index under RLock of s\.mu`
}

func (s *server) rebuild(v *int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index = v
	s.count++
}

// --- guard paths through pointers, and aliases ------------------------------

type pool struct {
	mu      sync.Mutex
	nframes int // vetrnn:guardedby mu
}

type tenant struct {
	pool   *pool
	frames int // vetrnn:guardedby pool.mu
}

func grow(t *tenant) {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	t.frames++
}

func growViaAlias(t *tenant) {
	p := t.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	t.frames++
	p.nframes++
}

func growUnlocked(t *tenant) {
	t.frames++ // want `access to t\.frames is guarded by t\.pool\.mu, which is not held`
}

// --- vetrnn:holds preconditions ---------------------------------------------

// growLocked grows a tenant.
// vetrnn:holds t.pool.mu
func growLocked(t *tenant) {
	t.frames++
}

// peek reads under a caller-held read lock; writing is still illegal.
// vetrnn:holds s.mu read
func peek(s *server) int {
	if s.index != nil {
		return *s.index
	}
	s.count++ // want `write to s\.count under RLock of s\.mu`
	return 0
}

// internals is serialized entirely by the caller.
// vetrnn:holds *
func internals(t *tenant, p *pool) {
	t.frames++
	p.nframes++
}

// evictWhile shows the closure-inheritance rule: a synchronous predicate
// literal runs on the definer's stack and inherits its holds contract, but
// a literal handed to go (or defer) escapes the lock scope and does not.
// vetrnn:holds t.pool.mu
func evictWhile(t *tenant, more func() bool) {
	pred := func() bool { return t.frames > 0 }
	for pred() && more() {
		t.frames--
	}
	go func() {
		t.frames++ // want `access to t\.frames is guarded by t\.pool\.mu, which is not held`
	}()
}

// --- construction exemption -------------------------------------------------

func build(p *pool) *tenant {
	t := &tenant{pool: p}
	t.frames = 1
	var q pool
	q.nframes = 1
	n := new(pool)
	n.nframes = 2
	return t
}

// --- closures run on their own schedule -------------------------------------

func spawn(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	go func() {
		s.count++ // want `access to s\.count is guarded by s\.mu, which is not held`
	}()
}

// --- dataflow: branches and merges ------------------------------------------

// earlyReturn is the lexical-replay false positive the dataflow port
// removes: the error path unlocks and returns, and the fall-through path
// still holds the lock.
func earlyReturn(c *counters, bad bool) {
	c.mu.Lock()
	if bad {
		c.mu.Unlock()
		return
	}
	c.fallbacks++
	c.mu.Unlock()
}

// conditionalLock is the matching false negative: a lock taken on only
// one arm of a branch is not held after the merge.
func conditionalLock(c *counters, maybe bool) {
	if maybe {
		c.mu.Lock()
	}
	c.fallbacks++ // want `access to c\.fallbacks is guarded by c\.mu, which is not held`
	if maybe {
		c.mu.Unlock()
	}
}

// bothArmsLock holds after the merge because every path locked.
func bothArmsLock(c *counters, which bool) {
	if which {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.fallbacks++
	c.mu.Unlock()
}

// downgradeJoin: one path holds the write half, the other the read half;
// the merge keeps only the read half, so a write there is the RLock
// publish diagnostic.
func downgradeJoin(s *server, heavy bool) {
	if heavy {
		s.mu.Lock()
	} else {
		s.mu.RLock()
	}
	s.count++ // want `write to s\.count under RLock of s\.mu`
	_ = s.count
}

// loopRelock: the lock is released and retaken inside the body, so the
// backedge join still holds it at the loop head and the access is clean.
func loopRelock(c *counters, keys []string) {
	c.mu.Lock()
	for _, k := range keys {
		c.decisions[k]++
		c.mu.Unlock()
		c.mu.Lock()
	}
	c.mu.Unlock()
}

// loopDrop: the body unlocks without retaking, so the second iteration
// does not hold the lock — the head join drops it.
func loopDrop(c *counters, keys []string) {
	c.mu.Lock()
	for _, k := range keys {
		c.decisions[k]++ // want `access to c\.decisions is guarded by c\.mu, which is not held`
		c.mu.Unlock()
	}
}

// --- deliberate exceptions are suppressed (and ratchet-counted) -------------

func suppressed(c *counters) {
	//lint:ignore vetrnn/guardedby construction-time init before the value escapes
	c.fallbacks = 0
}

// --- annotation validation --------------------------------------------------

type badAnnot struct {
	mu sync.Mutex
	v  int // vetrnn:guardedby nosuch // want `vetrnn:guardedby "nosuch" does not resolve`
	w  int // vetrnn:guardedby v // want `vetrnn:guardedby "v" does not resolve`
}

type badEmbed struct {
	sync.Mutex // vetrnn:guardedby Mutex // want `embedded field is not supported`
}
