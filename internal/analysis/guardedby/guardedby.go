// Package guardedby checks declared mutex protocols: a struct field
// annotated
//
//	// vetrnn:guardedby <path>
//
// (trailing on the field line, or in the field's doc comment) may only be
// read while the named mutex is held and only written while it is held in
// write mode. <path> is a dot-separated chain of sibling field names
// resolving, through pointers, to a sync.Mutex or sync.RWMutex — "mu" for
// a same-struct mutex, "pool.mu" for a mutex owned by a referenced struct.
//
// The check is flow-sensitive at block granularity: each function body is
// lowered to the shared dataflow CFG, lock state (which mutexes are held,
// and in which half) is propagated through a forward fixpoint with
// intersection joins at merges, and every field access is checked against
// the state reaching its statement. A deferred Unlock keeps the mutex held
// to the end of the function, an early `return` under the lock no longer
// leaks its branch's Unlock into the fall-through path, and a lock taken
// on only one arm of a branch is correctly *not* held after the merge.
// Reads need at least the read half; writes need the write half — a write
// while only RLock is held is the distinct "publish under the read lock"
// diagnostic (the bug class PR 5's post-review hardening fixed by hand).
//
// Two escape valves keep the check honest instead of noisy:
//
//   - A function whose doc comment carries `// vetrnn:holds <expr>`
//     (optionally `<expr> read`) declares a lock precondition: the caller
//     holds that mutex, so the function body starts with it held. The
//     wildcard `// vetrnn:holds *` declares that the caller serializes
//     everything (the pool-internal helpers, where the one pool's mutex
//     guards every tenant reached through frame back-pointers).
//   - Accesses through a variable constructed in the same function
//     (x := T{...}, x := &T{...}, var x T, x := new(T)) are exempt: the
//     value has not escaped, so no lock can be required yet.
//
// Annotations are exported as a package fact, so a field declared in
// internal/storage is enforced wherever it is accessed — including
// packages analyzed in a different `go vet` unit. Deliberate exceptions
// carry //lint:ignore vetrnn/guardedby <why>.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"graphrnn/internal/analysis"
	"graphrnn/internal/analysis/dataflow"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name:      "guardedby",
	Doc:       "fields annotated vetrnn:guardedby <mutex> must be accessed with the mutex held (writes need the write half)",
	SkipTests: true,
	FactTypes: []analysis.Fact{new(GuardedFields)},
	Run:       run,
}

// GuardedFields is the package fact carrying a package's guardedby
// annotations to its importers: "TypeName.field" -> guard path relative to
// the struct.
type GuardedFields struct {
	Fields map[string]string `json:"fields"`
}

// AFact marks GuardedFields as a fact type.
func (*GuardedFields) AFact() {}

const (
	guardMarker = "vetrnn:guardedby"
	holdsMarker = "vetrnn:holds"
)

func run(pass *analysis.Pass) error {
	annots := collectAnnotations(pass)
	if len(annots) > 0 {
		if err := pass.ExportPackageFact(&GuardedFields{Fields: annots}); err != nil {
			return err
		}
	}
	g := &guards{pass: pass, byPkg: map[string]*GuardedFields{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, g, fd.Body, holdsOf(fd.Doc))
		}
	}
	return nil
}

// --- annotation collection --------------------------------------------------

// collectAnnotations scans struct declarations for vetrnn:guardedby field
// annotations, validates each guard path against the struct's types, and
// returns the package's "Type.field" -> path table.
func collectAnnotations(pass *analysis.Pass) map[string]string {
	out := map[string]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			var styp *types.Struct
			if obj != nil {
				styp, _ = obj.Type().Underlying().(*types.Struct)
			}
			for _, field := range st.Fields.List {
				path, ok := fieldAnnotation(field)
				if !ok {
					continue
				}
				if len(field.Names) == 0 {
					pass.Reportf(field.Pos(), "vetrnn:guardedby on an embedded field is not supported; name the field")
					continue
				}
				if styp == nil || !resolveGuardPath(styp, strings.Split(path, ".")) {
					pass.Reportf(field.Pos(),
						"vetrnn:guardedby %q does not resolve to a sync.Mutex/RWMutex through sibling fields of %s",
						path, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					out[ts.Name.Name+"."+name.Name] = path
				}
			}
			return true
		})
	}
	return out
}

// fieldAnnotation extracts the guard path from a field's doc or trailing
// comment.
func fieldAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if i := strings.Index(c.Text, guardMarker); i >= 0 {
				rest := strings.TrimSpace(c.Text[i+len(guardMarker):])
				path, _, _ := strings.Cut(rest, " ")
				if path != "" {
					return path, true
				}
			}
		}
	}
	return "", false
}

// resolveGuardPath walks path through st's fields (dereferencing
// pointers), requiring the final component to be a sync.Mutex or
// sync.RWMutex.
func resolveGuardPath(st *types.Struct, path []string) bool {
	cur := st
	for i, comp := range path {
		var f *types.Var
		for j := 0; j < cur.NumFields(); j++ {
			if cur.Field(j).Name() == comp {
				f = cur.Field(j)
				break
			}
		}
		if f == nil {
			return false
		}
		t := f.Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if i == len(path)-1 {
			return isMutex(t)
		}
		next, ok := t.Underlying().(*types.Struct)
		if !ok {
			return false
		}
		cur = next
	}
	return false
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return named.Obj().Pkg().Path() == "sync" && (name == "Mutex" || name == "RWMutex")
}

// --- cross-package guard lookup ---------------------------------------------

// guards resolves a field access to its guard path via package facts
// (which cover the current package too — its annotations were exported
// before enforcement began).
type guards struct {
	pass  *analysis.Pass
	byPkg map[string]*GuardedFields
}

// guardOf returns the guard path of the field a selection resolves to.
func (g *guards) guardOf(sel *types.Selection) (string, bool) {
	if sel.Kind() != types.FieldVal {
		return "", false
	}
	rt := sel.Recv()
	if p, ok := rt.Underlying().(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	pkgPath := named.Obj().Pkg().Path()
	facts, ok := g.byPkg[pkgPath]
	if !ok {
		facts = new(GuardedFields)
		if !g.pass.ImportPackageFact(pkgPath, facts) {
			facts = nil
		}
		g.byPkg[pkgPath] = facts
	}
	if facts == nil {
		return "", false
	}
	path, ok := facts.Fields[named.Obj().Name()+"."+sel.Obj().Name()]
	return path, ok
}

// --- per-scope replay -------------------------------------------------------

// holdsOf parses the vetrnn:holds preconditions of a function doc comment:
// each returns (expr, mode) where mode is lockWrite unless the line ends
// in "read", and expr "*" write-holds everything.
func holdsOf(doc *ast.CommentGroup) [][2]string {
	if doc == nil {
		return nil
	}
	var out [][2]string
	for _, c := range doc.List {
		i := strings.Index(c.Text, holdsMarker)
		if i < 0 {
			continue
		}
		rest := strings.TrimSpace(c.Text[i+len(holdsMarker):])
		expr, mode, _ := strings.Cut(rest, " ")
		if expr == "" {
			continue
		}
		if strings.TrimSpace(mode) == "read" {
			out = append(out, [2]string{expr, "read"})
		} else {
			out = append(out, [2]string{expr, "write"})
		}
	}
	return out
}

// Lock modes. Exported so lockorder can share the scale.
const (
	lockNone = iota
	lockRead
	lockWrite
)

// LockState is one dataflow state: held mutex chain -> mode (lockRead or
// lockWrite; absent means not held). The key "*" is the vetrnn:holds
// wildcard: everything write-held by the caller.
type LockState map[string]int

// scopeInfo is the flow-insensitive context of one function body: write
// positions, deferred calls, selector-chain aliases, and locally
// constructed (not-yet-escaped) variables. Aliases and constructions are
// resolved lexically — Go's define-before-use makes that sound for the
// shapes this analyzer names.
type scopeInfo struct {
	pass        *analysis.Pass
	writes      map[ast.Expr]bool
	deferred    map[token.Pos]bool
	aliases     map[string]string
	constructed map[string]bool
	lits        []*ast.FuncLit
	escaping    map[*ast.FuncLit]bool
}

// Expand rewrites the leading component of a selector chain through the
// scope's alias table ("p.mu" -> "t.pool.mu" after p := t.pool).
func (s *scopeInfo) Expand(expr string) string {
	first, rest, cut := strings.Cut(expr, ".")
	if to, ok := s.aliases[first]; ok {
		if cut {
			return to + "." + rest
		}
		return to
	}
	return expr
}

// ApplyLockOps interprets the mutex Lock/RLock/Unlock/RUnlock calls of one
// block node against state, in place. Deferred calls are skipped: a
// deferred Unlock keeps the mutex held to the end of the function.
func (s *scopeInfo) ApplyLockOps(state LockState, n ast.Node) {
	dataflow.VisitBlockNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, mexpr, ok := lockOp(s.pass, call)
		if !ok || s.deferred[call.Pos()] {
			return true
		}
		key := s.Expand(mexpr)
		switch kind {
		case "lock":
			state[key] = lockWrite
		case "rlock":
			state[key] = lockRead
		case "unlock", "runlock":
			delete(state, key)
		}
		return true
	})
}

// CollectScopeInfo walks one body (FuncLit subtrees excluded) and gathers
// the lexical context the lock-state lattice and the reporting pass share.
func CollectScopeInfo(pass *analysis.Pass, body *ast.BlockStmt) *scopeInfo {
	s := &scopeInfo{
		pass:        pass,
		writes:      map[ast.Expr]bool{},
		deferred:    map[token.Pos]bool{},
		aliases:     map[string]string{},
		constructed: map[string]bool{},
		escaping:    map[*ast.FuncLit]bool{},
	}
	markWrite := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				s.writes[e] = true
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			s.lits = append(s.lits, st)
			return false
		case *ast.GoStmt:
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				s.escaping[lit] = true
			}
		case *ast.DeferStmt:
			s.deferred[st.Call.Pos()] = true
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				s.escaping[lit] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				markWrite(lhs)
			}
			// x := <selector chain> records an alias; x := T{...} (& co)
			// records a construction.
			if st.Tok == token.DEFINE && len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					rhs := ast.Unparen(st.Rhs[i])
					if target, ok := chainOf(rhs); ok && strings.Contains(target, ".") {
						s.aliases[id.Name] = s.Expand(target)
					} else if isConstruction(rhs) {
						s.constructed[id.Name] = true
					}
				}
			}
		case *ast.IncDecStmt:
			markWrite(st.X)
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				markWrite(st.X)
			}
		case *ast.RangeStmt:
			if st.Key != nil {
				markWrite(st.Key)
			}
			if st.Value != nil {
				markWrite(st.Value)
			}
		case *ast.DeclStmt:
			// var x T is a construction too.
			if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != 0 {
						continue
					}
					for _, name := range vs.Names {
						s.constructed[name.Name] = true
					}
				}
			}
		}
		return true
	})
	// escaping above only marks go lit(){} / defer lit(){} where the
	// literal is the call target; nested literals inside other literals
	// are handled when their encloser recurses.
	return s
}

// lockLattice is the guardedby dataflow domain over LockState.
type lockLattice struct {
	info  *scopeInfo
	holds [][2]string
}

func (l lockLattice) Entry() LockState {
	state := LockState{}
	for _, h := range l.holds {
		mode := lockWrite
		if h[1] == "read" {
			mode = lockRead
		}
		state[h[0]] = mode
	}
	return state
}

// Join intersects: a mutex is held after a merge only if every incoming
// path holds it, and only as strongly as the weakest path.
func (lockLattice) Join(a, b LockState) LockState {
	out := LockState{}
	for k, ma := range a {
		if mb, ok := b[k]; ok {
			if mb < ma {
				out[k] = mb
			} else {
				out[k] = ma
			}
		}
	}
	return out
}

func (lockLattice) Equal(a, b LockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, m := range a {
		if b[k] != m {
			return false
		}
	}
	return true
}

func (l lockLattice) Transfer(b *dataflow.Block, in LockState) LockState {
	out := LockState{}
	for k, m := range in {
		out[k] = m
	}
	for _, n := range b.Nodes {
		l.info.ApplyLockOps(out, n)
	}
	return out
}

// checkScope analyzes one function body (FuncDecls and each FuncLit in
// isolation — a closure runs on its own schedule and cannot inherit the
// definer's lock state). The one thing a synchronous closure can inherit
// is the enclosing declaration's documented vetrnn:holds contract: a
// predicate or visitor literal runs on its definer's stack under the same
// caller-held locks. Literals launched by go or defer do not inherit —
// those run after the definer may have unlocked.
//
// The body is lowered to a CFG, lock state is solved to a fixpoint, and a
// final replay of each block from its solved input state checks every
// guarded access against the state actually reaching it.
func checkScope(pass *analysis.Pass, g *guards, body *ast.BlockStmt, holds [][2]string) {
	info := CollectScopeInfo(pass, body)
	graph := dataflow.New(body)
	lat := lockLattice{info: info, holds: holds}
	in := dataflow.Forward[LockState](graph, lat)

	for _, b := range graph.Blocks {
		state := LockState{}
		for k, m := range in[b] {
			state[k] = m
		}
		for _, n := range b.Nodes {
			checkNode(pass, g, info, state, n)
		}
	}

	for _, lit := range info.lits {
		inherited := holds
		if info.escaping[lit] {
			inherited = nil
		}
		checkScope(pass, g, lit.Body, inherited)
	}
}

// checkNode replays one block node: guarded accesses are checked against
// state, and lock operations advance it — both in source order within the
// node's subtree.
func checkNode(pass *analysis.Pass, g *guards, info *scopeInfo, state LockState, n ast.Node) {
	dataflow.VisitBlockNode(n, func(m ast.Node) bool {
		switch st := m.(type) {
		case *ast.CallExpr:
			if kind, mexpr, ok := lockOp(pass, st); ok && !info.deferred[st.Pos()] {
				key := info.Expand(mexpr)
				switch kind {
				case "lock":
					state[key] = lockWrite
				case "rlock":
					state[key] = lockRead
				case "unlock", "runlock":
					delete(state, key)
				}
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[st]
			if !ok {
				return true
			}
			guard, ok := g.guardOf(sel)
			if !ok {
				return true
			}
			base, ok := chainOf(st.X)
			if !ok {
				// The receiver is not a plain selector chain (a call
				// result, an index...); the mutex cannot be named, so the
				// access is skipped — the documented contract.
				return true
			}
			base = info.Expand(base)
			if info.constructed[strings.SplitN(base, ".", 2)[0]] {
				return true
			}
			required := base + "." + guard
			held := state[required]
			if state["*"] > held {
				held = state["*"]
			}
			switch {
			case held == lockNone:
				pass.Reportf(st.Pos(),
					"access to %s.%s is guarded by %s, which is not held here (no Lock/RLock precedes it; annotate the caller contract with vetrnn:holds if the lock is taken upstream)",
					base, sel.Obj().Name(), required)
			case held == lockRead && info.writes[st]:
				pass.Reportf(st.Pos(),
					"write to %s.%s under RLock of %s; publishing through the read half needs the write lock (or an atomic field)",
					base, sel.Obj().Name(), required)
			}
		}
		return true
	})
}

// chainOf renders a pure ident/selector chain ("t.pool.mu"); it fails on
// anything else (calls, indexes, conversions).
func chainOf(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := chainOf(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// isConstruction reports expressions that build a fresh value: composite
// literals, &composite, new(T).
func isConstruction(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// LockOp exposes lock-call classification to sibling analyzers: kind is
// "lock", "rlock", "unlock" or "runlock", and mutexChain the receiver's
// selector chain ("t.pool.mu"). lockorder builds its acquisition edges on
// exactly this resolution so the two analyzers never disagree about what
// constitutes a lock operation.
func LockOp(pass *analysis.Pass, call *ast.CallExpr) (kind, mutexChain string, ok bool) {
	return lockOp(pass, call)
}

// ChainOf exposes selector-chain rendering ("t.pool.mu") to sibling
// analyzers; ok is false for anything but a pure ident/selector chain.
func ChainOf(e ast.Expr) (string, bool) {
	return chainOf(e)
}

// lockOp classifies a sync.Mutex / sync.RWMutex method call, returning the
// event kind and the mutex's selector chain.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (string, string, bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	var kind string
	switch fn.Name() {
	case "Lock":
		kind = "lock"
	case "RLock":
		kind = "rlock"
	case "Unlock":
		kind = "unlock"
	case "RUnlock":
		kind = "runlock"
	default:
		return "", "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	mexpr, ok := chainOf(sel.X)
	if !ok {
		return "", "", false
	}
	return kind, mexpr, true
}
