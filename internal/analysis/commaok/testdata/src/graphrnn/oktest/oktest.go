// Package oktest is the commaok golden fixture. seedWeightsBug reproduces
// the PR 5 deletion-path bug verbatim in shape: EdgeWeight's ok result
// discarded while seeding repair candidates, so a concurrently-deleted edge
// read as weight 0 and became the best seed.
package oktest

import (
	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

type seed struct {
	node uint32
	dist float64
}

// seedWeightsBug is the PR 5 bug shape: the blank identifier eats the
// missing-edge signal and a garbage zero weight seeds the repair.
func seedWeightsBug(g *graph.Store, ps *points.Set, cands []uint32) []seed {
	var seeds []seed
	for _, p := range cands {
		loc, ok := ps.LocationOf(p)
		if !ok {
			continue
		}
		w, _ := g.EdgeWeight(loc.U, loc.V) // want `ok result of graph\.EdgeWeight is discarded`
		seeds = append(seeds, seed{node: p, dist: w})
	}
	return seeds
}

// seedWeightsFixed checks the ok result and skips vanished edges.
func seedWeightsFixed(g *graph.Store, ps *points.Set, cands []uint32) []seed {
	var seeds []seed
	for _, p := range cands {
		loc, ok := ps.LocationOf(p)
		if !ok {
			continue
		}
		w, ok := g.EdgeWeight(loc.U, loc.V)
		if !ok {
			continue
		}
		seeds = append(seeds, seed{node: p, dist: w})
	}
	return seeds
}

// otherShapes covers the remaining flagged forms.
func otherShapes(g *graph.Store, ps *points.Set) float64 {
	var loc, _ = ps.LocationOf(7) // want `ok result of points\.LocationOf is discarded`
	g.EdgeWeight(loc.U, loc.V)    // want `ok result of graph\.EdgeWeight is discarded`
	c, _ := ps.Coord(7)           // want `ok result of points\.Coord is discarded`
	return c
}

// notFlagged: single-result and (value, error) APIs, and map/type comma-ok
// expressions, are all out of scope.
func notFlagged(g *graph.Store, m map[uint32]float64) float64 {
	d := g.Degree(1)
	n, _ := g.Neighbor(1, 0)
	w, _ := m[n]
	return float64(d) + w
}

// knownPresent is a deliberate exception: the edge was placed two lines up
// in the same critical section, so it must exist.
func knownPresent(g *graph.Store) float64 {
	//lint:ignore vetrnn/commaok edge placed by the caller under the same lock
	w, _ := g.EdgeWeight(1, 2)
	return w
}
