package graph

// Store mirrors the weighted-graph lookup surface.
type Store struct{ w map[[2]uint32]float64 }

// EdgeWeight reports the weight of (u,v) and whether the edge exists; the
// zero weight is a legal weight, so the bool is load-bearing.
func (s *Store) EdgeWeight(u, v uint32) (float64, bool) {
	w, ok := s.w[[2]uint32{u, v}]
	return w, ok
}

// Degree has one result: never subject to the check.
func (s *Store) Degree(u uint32) int { return 0 }

// Neighbor returns (value, error): not a comma-ok API.
func (s *Store) Neighbor(u uint32, i int) (uint32, error) { return 0, nil }
