package points

// Set mirrors the point-set lookup surface.
type Set struct{ loc map[uint32]Location }

type Location struct{ U, V uint32 }

// LocationOf reports where point p sits and whether p is in the set.
func (s *Set) LocationOf(p uint32) (Location, bool) {
	l, ok := s.loc[p]
	return l, ok
}

// Coord is a comma-ok coordinate lookup.
func (s *Set) Coord(p uint32) (float64, bool) { return 0, false }
