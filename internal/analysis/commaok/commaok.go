// Package commaok checks that the ok result of the engine's partial
// lookups is never discarded. The configured APIs — EdgeWeight, point-set
// gets (NodeOf, PointAt, Loc, LocationOf), coordinate lookups — return
// (value, bool) where the zero value is a real, dangerously plausible value
// (node 0, distance 0): ignoring the bool turns an absent edge or point
// into silent wrong answers. PR 5's EdgeWeight bug in the deletion path was
// exactly this shape — seeds built from a garbage weight because the ok
// result was discarded.
//
// Flagged shapes, for calls whose callee is a configured method of a module
// package with exactly two results, the second bool:
//
//	w, _ := g.EdgeWeight(u, v)   // bool assigned to blank
//	g.EdgeWeight(u, v)           // entire result discarded
//
// Oracle tests legitimately ignore ok on known-present data, so _test.go
// files are exempt; production code annotates deliberate cases with
// //lint:ignore vetrnn/commaok <why the value must exist here>.
package commaok

import (
	"go/ast"
	"go/types"

	"graphrnn/internal/analysis"
)

// Analyzer is the commaok check.
var Analyzer = &analysis.Analyzer{
	Name:      "commaok",
	Doc:       "the ok result of EdgeWeight / point-set / coordinate lookups must not be discarded",
	SkipTests: true,
	Run:       run,
}

// modulePrefix scopes the check to this module's APIs.
const modulePrefix = "graphrnn"

// methods is the configured lookup list.
var methods = map[string]bool{
	"EdgeWeight": true,
	"NodeOf":     true,
	"PointAt":    true,
	"Loc":        true,
	"LocationOf": true,
	"Coord":      true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) == 2 {
					checkCall(pass, n.Rhs[0], isBlank(n.Lhs[1]))
				}
			case *ast.ValueSpec:
				if len(n.Values) == 1 && len(n.Names) == 2 {
					checkCall(pass, n.Values[0], n.Names[1].Name == "_")
				}
			case *ast.ExprStmt:
				checkCall(pass, n.X, true)
			}
			return true
		})
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func checkCall(pass *analysis.Pass, e ast.Expr, boolDiscarded bool) {
	if !boolDiscarded {
		return
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !methods[fn.Name()] {
		return
	}
	path := fn.Pkg().Path()
	if path != modulePrefix && !analysis.PathHasSuffix(path, "internal/graph") &&
		!analysis.PathHasSuffix(path, "internal/points") && !hasModulePrefix(path) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 || !isBool(sig.Results().At(1).Type()) {
		return
	}
	pass.Reportf(call.Pos(),
		"the ok result of %s.%s is discarded; a missing edge or absent point would silently read as the zero value",
		fn.Pkg().Name(), fn.Name())
}

func hasModulePrefix(path string) bool {
	return path == modulePrefix || len(path) > len(modulePrefix) &&
		path[:len(modulePrefix)+1] == modulePrefix+"/"
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
