package commaok_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/commaok"
)

func TestCommaok(t *testing.T) {
	analysistest.Run(t, "testdata", commaok.Analyzer, "graphrnn/oktest")
}
