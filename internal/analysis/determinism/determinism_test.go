package determinism_test

import (
	"testing"

	"graphrnn/internal/analysis/analysistest"
	"graphrnn/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "determinism")
}

// TestCrossPackage checks that nondeterminism summaries travel as package
// facts: detlib exports them, detuse's annotated callers trip over them —
// including the transitively nondeterministic Delegate.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "detuse")
}
