// Package detuse calls detlib under a vetrnn:deterministic contract;
// enforcement here proves the nondeterminism summaries crossed the
// package boundary as facts, including the transitively nondeterministic
// Delegate.
package detuse

import "detlib"

// ordered stays inside deterministic callees.
//
// vetrnn:deterministic
func ordered(m map[string]int) []string {
	return detlib.SumOrdered(m)
}

// leaky calls a directly nondeterministic import.
//
// vetrnn:deterministic
func leaky(m map[string]int) string {
	return detlib.FirstKey(m) // want `call to detlib\.FirstKey is nondeterministic`
}

// viaDelegate calls a transitively nondeterministic import.
//
// vetrnn:deterministic
func viaDelegate(m map[string]int) string {
	return detlib.Delegate(m) // want `call to detlib\.Delegate is nondeterministic \(calls detlib\.FirstKey, which is nondeterministic\)`
}
