// Single-package determinism scenarios: map ranges with and without the
// collect-then-sort idiom, wall-clock taint into returns and stores,
// global vs seeded math/rand, select shapes, sync.Map.Range, same-package
// transitive reach, and suppression.
package determinism

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// mergeCounts is the batched-merge shape: a map consumed in sorted key
// order is deterministic.
//
// vetrnn:deterministic
func mergeCounts(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// sumUnsorted consumes map order directly.
//
// vetrnn:deterministic
func sumUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `ranges over a map in nondeterministic key order`
		out = append(out, k)
	}
	return out
}

// unannotated is free to iterate however it likes.
func unannotated(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// --- wall-clock taint --------------------------------------------------------

// stamp returns the clock: the classic nondeterministic result.
//
// vetrnn:deterministic
func stamp() int64 {
	now := time.Now()
	return now.UnixNano() // want `returns a wall-clock-derived value`
}

type stats struct{ wall time.Duration }

// record stores a duration into shared state.
//
// vetrnn:deterministic
func record(st *stats) {
	start := time.Now()
	st.wall = time.Since(start) // want `stores a wall-clock-derived value`
}

// logged only hands the duration to a call — logging wall time is fine.
//
// vetrnn:deterministic
func logged(logf func(time.Duration)) int {
	start := time.Now()
	d := time.Since(start)
	logf(d)
	return 42
}

// clockUnannotated may consume time freely.
func clockUnannotated() int64 {
	return time.Now().UnixNano()
}

// --- math/rand ---------------------------------------------------------------

// globalRand consumes the shared stream.
//
// vetrnn:deterministic
func globalRand(n int) int {
	return rand.Intn(n) // want `consumes the global math/rand stream`
}

// seededRand derives everything from an explicit seed: deterministic.
//
// vetrnn:deterministic
func seededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// --- scheduler choice --------------------------------------------------------

// racySelect lets the scheduler pick among ready channels.
//
// vetrnn:deterministic
func racySelect(a, b chan int) int {
	select { // want `selects among 2 comm clauses`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// pollSelect is the non-blocking single-channel shape: one comm clause.
//
// vetrnn:deterministic
func pollSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

// syncMapRange iterates a sync.Map.
//
// vetrnn:deterministic
func syncMapRange(m *sync.Map) int {
	n := 0
	m.Range(func(k, v any) bool { // want `ranges over a sync\.Map`
		n++
		return true
	})
	return n
}

// --- transitive reach within the package -------------------------------------

// tally is not annotated itself, but root reaches it.
func tally(m map[string]int) int {
	n := 0
	for _, v := range m { // want `ranges over a map in nondeterministic key order.*reached via tally`
		n += v
	}
	return n
}

// root delegates to tally; the contract travels with the call.
//
// vetrnn:deterministic
func root(m map[string]int) int {
	return tally(m)
}

// --- suppression -------------------------------------------------------------

// sampled deliberately trades determinism for cheap reservoir sampling.
//
// vetrnn:deterministic
func sampled(m map[string]int) int {
	//lint:ignore vetrnn/determinism reservoir sampling is allowed to be order-free here
	for _, v := range m {
		return v
	}
	return 0
}
