// Package time is a minimal stand-in for the real time package so golden
// fixtures type-check hermetically. The analyzer matches wall-clock
// sources by package path and function name, which this shim reproduces.
package time

// Time is a wall-clock instant.
type Time struct{ ns int64 }

// Duration is a span between instants.
type Duration int64

func Now() Time                   { return Time{} }
func Since(t Time) Duration       { return 0 }
func Until(t Time) Duration       { return 0 }
func (t Time) UnixNano() int64    { return t.ns }
func (d Duration) String() string { return "" }
