// Package sync is a minimal stand-in for the real sync package so golden
// fixtures type-check hermetically. The analyzer matches sync.Map.Range
// by package path and method name, which this shim reproduces.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

// Map mirrors sync.Map's Range entry point.
type Map struct{ state int32 }

func (m *Map) Store(key, value any)              {}
func (m *Map) Load(key any) (any, bool)          { return nil, false }
func (m *Map) Range(f func(key, value any) bool) {}
