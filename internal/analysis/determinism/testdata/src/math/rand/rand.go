// Package rand is a minimal stand-in for math/rand so golden fixtures
// type-check hermetically. The analyzer flags package-level consumers of
// the global stream and exempts the seeded constructors, which this shim
// reproduces.
package rand

// Source is a seeded stream of values.
type Source interface{ Int63() int64 }

// Rand is a private generator over a Source.
type Rand struct{ src Source }

func NewSource(seed int64) Source { return nil }
func New(src Source) *Rand        { return &Rand{src: src} }

func Intn(n int) int                               { return 0 }
func Int63() int64                                 { return 0 }
func Float64() float64                             { return 0 }
func Shuffle(n int, swap func(i, j int))           {}
func (r *Rand) Intn(n int) int                     { return 0 }
func (r *Rand) Float64() float64                   { return 0 }
func (r *Rand) Shuffle(n int, swap func(i, j int)) {}
