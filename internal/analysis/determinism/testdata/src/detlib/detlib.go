// Package detlib exports one deterministic and one nondeterministic
// helper; the nondeterminism summary travels to importers as a package
// fact (see the detuse fixture).
package detlib

import "sort"

// SumOrdered consumes the map in sorted key order — deterministic.
func SumOrdered(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FirstKey leaks iteration order.
func FirstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Delegate is nondeterministic only transitively, through FirstKey; the
// exported summary must already have folded that in.
func Delegate(m map[string]int) string {
	return FirstKey(m)
}
