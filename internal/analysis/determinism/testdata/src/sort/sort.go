// Package sort is a minimal stand-in for the real sort package so golden
// fixtures type-check hermetically. The analyzer blesses the
// collect-then-sort map-range idiom by matching these entry points.
package sort

func Strings(a []string)                          {}
func Ints(a []int)                                {}
func Slice(x any, less func(i, j int) bool)       {}
func SliceStable(x any, less func(i, j int) bool) {}
