// Package determinism checks declared replay-determinism contracts: a
// function whose doc comment carries
//
//	// vetrnn:deterministic
//
// must produce bit-identical results given identical inputs — the
// contract the batched hub-label merge (parallel build == sequential
// build), the shard partitioner (same flags => same cuts in every
// process), and the label codec all depend on. The analyzer rejects the
// ways Go programs usually leak nondeterminism into results:
//
//   - ranging over a map (or a sync.Map) in iteration order, unless the
//     loop only collects keys into local slices that are each sorted
//     afterwards (the collect-then-sort idiom);
//   - feeding a time.Now / time.Since / time.Until value into the
//     function's results — returning it or storing it through a
//     pointer/field/index. Passing wall-clock values to logging is fine:
//     only returns and non-local stores are sinks, and the time-taint is
//     tracked through local assignments on the shared dataflow CFG;
//   - consuming the global math/rand stream (rand.Intn and friends).
//     Seeded private generators (rand.New(rand.NewSource(seed))) are
//     deterministic and exempt;
//   - select with two or more comm clauses (the scheduler picks among
//     ready cases).
//
// The contract is transitive. Every function's nondeterminism summary is
// exported as a package fact, so an annotated function is checked against
// everything it reaches: same-package callees are traversed directly
// (their sources are reported at the source position, naming the
// annotated root), and cross-package calls are checked against the
// callee package's exported summaries and reported at the call site.
// Callees without facts (stdlib, interfaces, function values) are assumed
// deterministic — the analyzer names contracts, it does not prove them.
//
// Deliberate exceptions carry //lint:ignore vetrnn/determinism <why>.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"graphrnn/internal/analysis"
	"graphrnn/internal/analysis/dataflow"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name:      "determinism",
	Doc:       "functions annotated vetrnn:deterministic (and everything they transitively call) must not consume map order, wall-clock time, global rand, or scheduler choice",
	SkipTests: true,
	FactTypes: []analysis.Fact{new(NondetFuncs)},
	Run:       run,
}

// NondetFuncs is the package fact mapping "Func" / "Type.Method" to a
// one-line reason the function is nondeterministic. Functions absent from
// the map are deterministic as far as this analyzer can tell. The
// summaries are transitive: a function that only calls a nondeterministic
// one is itself listed.
type NondetFuncs struct {
	Funcs map[string]string `json:"funcs"`
}

// AFact marks NondetFuncs as a fact type.
func (*NondetFuncs) AFact() {}

const marker = "vetrnn:deterministic"

// modeledPkgs are the packages whose nondeterminism this analyzer models
// directly at call sites (global-rand consumption, wall-clock reads,
// sync.Map iteration). Their own internals would trip those same checks
// when the vet driver analyzes the standard library — rand.NewSource
// calls the unexported newSource, time.Since calls time.Now — so they
// are neither analyzed nor consulted for facts: the call-site model IS
// the contract for them.
var modeledPkgs = map[string]bool{
	"math/rand": true, "math/rand/v2": true, "time": true, "sync": true,
}

// source is one direct nondeterminism source inside a function body.
type source struct {
	pos    token.Pos
	reason string
}

// callSite is one statically resolved call.
type callSite struct {
	pos token.Pos
	fn  *types.Func
}

type funcInfo struct {
	key       string
	annotated bool
	sources   []source
	calls     []callSite
}

func run(pass *analysis.Pass) error {
	if modeledPkgs[pass.Pkg.Path()] {
		return nil
	}
	infos := map[string]*funcInfo{}
	var order []string
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			info := &funcInfo{key: funcKey(obj), annotated: hasMarker(fd.Doc)}
			collectSources(pass, fd, info)
			collectCalls(pass, fd, info)
			infos[info.key] = info
			order = append(order, info.key)
		}
	}

	imported := map[string]*NondetFuncs{}
	lookup := func(fn *types.Func) (string, bool) {
		if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
			return "", false
		}
		path := fn.Pkg().Path()
		if modeledPkgs[path] {
			return "", false
		}
		facts, ok := imported[path]
		if !ok {
			facts = new(NondetFuncs)
			if !pass.ImportPackageFact(path, facts) {
				facts = nil
			}
			imported[path] = facts
		}
		if facts == nil {
			return "", false
		}
		reason, ok := facts.Funcs[funcKey(fn)]
		return reason, ok
	}

	// Transitive summaries: seed with direct sources, then propagate
	// nondeterminism backward through same-package calls to a fixpoint
	// (imported callees contribute through their packages' facts, which
	// are already transitive).
	reasons := map[string]string{}
	for _, key := range order {
		if info := infos[key]; len(info.sources) > 0 {
			reasons[key] = info.sources[0].reason
		}
	}
	for changed := true; changed; {
		changed = false
		for _, key := range order {
			if _, done := reasons[key]; done {
				continue
			}
			for _, c := range infos[key].calls {
				var nondet bool
				if c.fn.Pkg() == pass.Pkg {
					_, nondet = reasons[funcKey(c.fn)]
				} else {
					_, nondet = lookup(c.fn)
				}
				if nondet {
					reasons[key] = fmt.Sprintf("calls %s, which is nondeterministic", funcDisplay(c.fn))
					changed = true
					break
				}
			}
		}
	}
	if len(reasons) > 0 {
		if err := pass.ExportPackageFact(&NondetFuncs{Funcs: reasons}); err != nil {
			return err
		}
	}

	// Enforcement: walk the same-package call graph from every annotated
	// root; report each reachable direct source at its own position, and
	// each call into a nondeterministic imported function at the call
	// site. A source shared by several roots is reported once.
	reported := map[token.Pos]bool{}
	for _, rootKey := range order {
		if !infos[rootKey].annotated {
			continue
		}
		visited := map[string]bool{rootKey: true}
		queue := []string{rootKey}
		for len(queue) > 0 {
			key := queue[0]
			queue = queue[1:]
			info := infos[key]
			via := ""
			if key != rootKey {
				via = fmt.Sprintf(" (reached via %s)", key)
			}
			for _, s := range info.sources {
				if reported[s.pos] {
					continue
				}
				reported[s.pos] = true
				pass.Reportf(s.pos, "%s in deterministic function %s%s", s.reason, rootKey, via)
			}
			for _, c := range info.calls {
				if c.fn.Pkg() == pass.Pkg {
					ckey := funcKey(c.fn)
					if _, ok := infos[ckey]; ok && !visited[ckey] {
						visited[ckey] = true
						queue = append(queue, ckey)
					}
					continue
				}
				if reason, ok := lookup(c.fn); ok && !reported[c.pos] {
					reported[c.pos] = true
					pass.Reportf(c.pos, "call to %s is nondeterministic (%s) in deterministic function %s%s",
						funcDisplay(c.fn), reason, rootKey, via)
				}
			}
		}
	}
	return nil
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// funcKey renders a *types.Func as the fact key: "Func" for package
// functions, "Type.Method" for methods (pointer receivers included).
func funcKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.Underlying().(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// funcDisplay renders a callee for a diagnostic: pkg-qualified for
// imports, funcKey otherwise.
func funcDisplay(fn *types.Func) string {
	key := funcKey(fn)
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + key
	}
	return key
}

// collectCalls gathers the statically resolvable calls of the whole body,
// function literals included (a literal defined here runs this package's
// code; if the enclosing function is annotated, what the literal calls is
// part of the contract).
func collectCalls(pass *analysis.Pass, fd *ast.FuncDecl, info *funcInfo) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
			info.calls = append(info.calls, callSite{pos: call.Pos(), fn: fn})
		}
		return true
	})
}

// --- direct sources ---------------------------------------------------------

// randConstructors are the math/rand(/v2) package functions that build
// seeded private generators instead of consuming the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func collectSources(pass *analysis.Pass, fd *ast.FuncDecl, info *funcInfo) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(st.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if sortedKeysIdiom(pass, fd, st) {
				return true
			}
			info.sources = append(info.sources, source{
				pos:    st.Pos(),
				reason: "ranges over a map in nondeterministic key order (collect and sort the keys first)",
			})
		case *ast.SelectStmt:
			comms := 0
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				info.sources = append(info.sources, source{
					pos:    st.Pos(),
					reason: fmt.Sprintf("selects among %d comm clauses (the scheduler picks among ready cases)", comms),
				})
			}
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, st)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			sig, _ := fn.Type().(*types.Signature)
			switch {
			case (path == "math/rand" || path == "math/rand/v2") &&
				sig != nil && sig.Recv() == nil && !randConstructors[fn.Name()]:
				info.sources = append(info.sources, source{
					pos:    st.Pos(),
					reason: fmt.Sprintf("consumes the global math/rand stream (rand.%s)", fn.Name()),
				})
			case path == "sync" && fn.Name() == "Range":
				info.sources = append(info.sources, source{
					pos:    st.Pos(),
					reason: "ranges over a sync.Map (nondeterministic iteration order)",
				})
			}
		}
		return true
	})

	// Time-taint: per body (the declaration's and each literal's), track
	// which locals derive from the wall clock and flag returns / non-local
	// stores of tainted values.
	timeTaint(pass, fd.Body, info)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			timeTaint(pass, lit.Body, info)
			return false
		}
		return true
	})
}

// sortedKeysIdiom recognizes the blessed map-range shape: the body only
// appends to local slice variables, and each such variable is sorted by a
// sort.* / slices.Sort* call later in the same function.
func sortedKeysIdiom(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	var targets []string
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		callExpr, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		fun, ok := ast.Unparen(callExpr.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" {
			return false
		}
		targets = append(targets, id.Name)
	}
	if len(targets) == 0 {
		return false
	}
	sorted := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rs.End() || len(c.Args) == 0 {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, c)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") && !isSortByName(fn.Name()) {
			return true
		}
		if id, ok := ast.Unparen(c.Args[0]).(*ast.Ident); ok {
			sorted[id.Name] = true
		}
		return true
	})
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}

// isSortByName covers the sort package's typed entry points (Strings,
// Ints, Float64s, Slice, SliceStable, Stable).
func isSortByName(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
		return true
	}
	return false
}

// --- time taint over the dataflow CFG ---------------------------------------

// taintSet is the dataflow state: locals holding a wall-clock-derived
// value. Join is union — tainted on any path means possibly tainted.
type taintSet map[string]bool

type taintLattice struct {
	pass *analysis.Pass
}

func (taintLattice) Entry() taintSet { return taintSet{} }

func (taintLattice) Join(a, b taintSet) taintSet {
	out := taintSet{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (taintLattice) Equal(a, b taintSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (l taintLattice) Transfer(b *dataflow.Block, in taintSet) taintSet {
	out := taintSet{}
	for k := range in {
		out[k] = true
	}
	for _, n := range b.Nodes {
		applyTaint(l.pass, out, n)
	}
	return out
}

// applyTaint advances the taint state across one block node: assignments
// taint (or clear) local idents; everything else is state-neutral.
func applyTaint(pass *analysis.Pass, state taintSet, n ast.Node) {
	switch st := n.(type) {
	case *ast.AssignStmt:
		oneToOne := len(st.Lhs) == len(st.Rhs)
		for i, lhs := range st.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			var tainted bool
			if oneToOne {
				tainted = exprTainted(pass, state, st.Rhs[i])
			} else {
				tainted = exprTainted(pass, state, st.Rhs[0])
			}
			if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
				// Compound (+=, etc.): taint persists once acquired.
				tainted = tainted || state[id.Name]
			}
			if tainted {
				state[id.Name] = true
			} else {
				delete(state, id.Name)
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) && exprTainted(pass, state, vs.Values[i]) {
					state[name.Name] = true
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging over a tainted aggregate taints the loop variables.
		if exprTainted(pass, state, st.X) {
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if id, ok := e.(*ast.Ident); ok {
					state[id.Name] = true
				}
			}
		}
	}
}

// exprTainted reports whether e mentions a tainted local or calls a
// wall-clock source directly. Function literals are opaque.
func exprTainted(pass *analysis.Pass, state taintSet, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tainted := false
	dataflow.VisitBlockNode(e, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.Ident:
			if state[x.Name] {
				tainted = true
			}
		case *ast.CallExpr:
			if isTimeSource(pass, x) {
				tainted = true
			}
		}
		return !tainted
	})
	return tainted
}

func isTimeSource(pass *analysis.Pass, c *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, c)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// timeTaint solves the taint problem over one body's CFG and reports
// sinks: returning a tainted value, or storing one through a selector,
// index, or pointer (non-local memory). Calls are not sinks, which is
// what makes logging wall-clock durations legal.
func timeTaint(pass *analysis.Pass, body *ast.BlockStmt, info *funcInfo) {
	graph := dataflow.New(body)
	in := dataflow.Forward[taintSet](graph, taintLattice{pass: pass})
	for _, b := range graph.Blocks {
		state := taintSet{}
		for k := range in[b] {
			state[k] = true
		}
		for _, n := range b.Nodes {
			switch st := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range st.Results {
					if exprTainted(pass, state, res) {
						info.sources = append(info.sources, source{
							pos:    res.Pos(),
							reason: "returns a wall-clock-derived value (time.Now/Since feeds the result)",
						})
						break
					}
				}
			case *ast.AssignStmt:
				oneToOne := len(st.Lhs) == len(st.Rhs)
				for i, lhs := range st.Lhs {
					if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						continue
					}
					rhs := st.Rhs[0]
					if oneToOne {
						rhs = st.Rhs[i]
					}
					if exprTainted(pass, state, rhs) {
						info.sources = append(info.sources, source{
							pos:    st.Pos(),
							reason: "stores a wall-clock-derived value into shared state (time.Now/Since feeds the result)",
						})
						break
					}
				}
			case *ast.SendStmt:
				if exprTainted(pass, state, st.Value) {
					info.sources = append(info.sources, source{
						pos:    st.Pos(),
						reason: "sends a wall-clock-derived value (time.Now/Since feeds the result)",
					})
				}
			}
			applyTaint(pass, state, n)
		}
	}
	// Deduplicate: fixpoint iteration visits blocks once here, but a
	// return with several tainted results or repeated sinks in one block
	// stay single entries by position.
	dedupSources(info)
}

func dedupSources(info *funcInfo) {
	seen := map[token.Pos]bool{}
	var out []source
	for _, s := range info.sources {
		if seen[s.pos] {
			continue
		}
		seen[s.pos] = true
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	info.sources = out
}
