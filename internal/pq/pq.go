// Package pq implements an indexed binary min-heap used by every network
// expansion in the library.
//
// The lazy RNN algorithm of Yiu et al. (TKDE'06, Section 3.3) must delete
// arbitrary heap entries when a verification query invalidates the node that
// inserted them, so the heap hands out stable *Item handles that support
// removal and priority updates in O(log n).
//
// Ties are broken by insertion sequence (FIFO), which makes every traversal
// in the library deterministic for a fixed seed.
package pq

// Item is a handle to an entry stored in a Heap. A handle stays valid after
// the entry has been popped or removed; further Remove/Update calls on it are
// harmless no-ops reported through their return values.
type Item[T any] struct {
	Value    T
	priority float64
	seq      uint64
	index    int // position in the heap array, -1 once popped/removed
}

// Priority returns the current priority of the item.
func (it *Item[T]) Priority() float64 { return it.priority }

// InHeap reports whether the item is still queued.
func (it *Item[T]) InHeap() bool { return it.index >= 0 }

// Heap is an indexed binary min-heap ordered by (priority, insertion order).
// The zero value is an empty heap ready for use.
type Heap[T any] struct {
	items []*Item[T]
	seq   uint64

	// PushCount and PopCount accumulate heap traffic for the experiment
	// harness; they are never reset by the heap itself.
	PushCount uint64
	PopCount  uint64
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Reset discards all queued items but keeps the backing array and the
// operation counters, so a Heap can be reused across queries without
// reallocating.
func (h *Heap[T]) Reset() {
	for _, it := range h.items {
		it.index = -1
	}
	h.items = h.items[:0]
}

// Push inserts value with the given priority and returns its handle.
func (h *Heap[T]) Push(value T, priority float64) *Item[T] {
	it := &Item[T]{Value: value, priority: priority, seq: h.seq, index: len(h.items)}
	h.seq++
	h.PushCount++
	h.items = append(h.items, it)
	h.up(it.index)
	return it
}

// Pop removes and returns the minimum item. ok is false when the heap is
// empty.
func (h *Heap[T]) Pop() (value T, priority float64, ok bool) {
	if len(h.items) == 0 {
		return value, 0, false
	}
	it := h.items[0]
	h.PopCount++
	h.swap(0, len(h.items)-1)
	h.items = h.items[:len(h.items)-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	it.index = -1
	return it.Value, it.priority, true
}

// Peek returns the minimum item without removing it.
func (h *Heap[T]) Peek() (*Item[T], bool) {
	if len(h.items) == 0 {
		return nil, false
	}
	return h.items[0], true
}

// Remove deletes the entry referenced by the handle. It reports false when
// the item had already left the heap.
func (h *Heap[T]) Remove(it *Item[T]) bool {
	if it == nil || it.index < 0 {
		return false
	}
	i := it.index
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	it.index = -1
	return true
}

// Update changes the priority of a queued item and restores heap order. It
// reports false when the item is no longer queued.
func (h *Heap[T]) Update(it *Item[T], priority float64) bool {
	if it == nil || it.index < 0 {
		return false
	}
	it.priority = priority
	h.down(it.index)
	h.up(it.index)
	return true
}

func (h *Heap[T]) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (h *Heap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			return
		}
		h.swap(i, min)
		i = min
	}
}
