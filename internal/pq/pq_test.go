package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func drain(t *testing.T, h *Heap[int]) []float64 {
	t.Helper()
	var out []float64
	prev := -1.0
	first := true
	for h.Len() > 0 {
		_, prio, ok := h.Pop()
		if !ok {
			t.Fatalf("Pop reported empty with Len=%d", h.Len())
		}
		if !first && prio < prev {
			t.Fatalf("heap order violated: %v after %v", prio, prev)
		}
		prev, first = prio, false
		out = append(out, prio)
	}
	return out
}

func TestEmptyHeap(t *testing.T) {
	var h Heap[int]
	if _, _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap reported ok")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap reported ok")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
}

func TestPushPopOrder(t *testing.T) {
	var h Heap[int]
	prios := []float64{5, 1, 4, 1.5, 9, 2.5, 0, 7}
	for i, p := range prios {
		h.Push(i, p)
	}
	got := drain(t, &h)
	want := append([]float64(nil), prios...)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("drained %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var h Heap[int]
	for i := 0; i < 10; i++ {
		h.Push(i, 3.0)
	}
	for i := 0; i < 10; i++ {
		v, _, ok := h.Pop()
		if !ok || v != i {
			t.Fatalf("tie pop %d = %d (ok=%v), want FIFO order", i, v, ok)
		}
	}
}

func TestRemove(t *testing.T) {
	var h Heap[int]
	var handles []*Item[int]
	for i := 0; i < 20; i++ {
		handles = append(handles, h.Push(i, float64(i)))
	}
	// Remove the evens.
	for i := 0; i < 20; i += 2 {
		if !h.Remove(handles[i]) {
			t.Fatalf("Remove(%d) failed", i)
		}
		if handles[i].InHeap() {
			t.Fatalf("item %d still reports InHeap after Remove", i)
		}
	}
	// Double remove must be a no-op.
	if h.Remove(handles[0]) {
		t.Fatal("second Remove succeeded")
	}
	if h.Remove(nil) {
		t.Fatal("Remove(nil) succeeded")
	}
	for i := 1; i < 20; i += 2 {
		v, _, ok := h.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d (ok=%v), want %d", v, ok, i)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", h.Len())
	}
}

func TestRemoveAfterPopIsNoop(t *testing.T) {
	var h Heap[int]
	it := h.Push(1, 1)
	h.Push(2, 2)
	if v, _, _ := h.Pop(); v != 1 {
		t.Fatal("expected to pop item 1")
	}
	if h.Remove(it) {
		t.Fatal("Remove succeeded on popped item")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
}

func TestUpdate(t *testing.T) {
	var h Heap[int]
	a := h.Push(1, 10)
	h.Push(2, 5)
	if !h.Update(a, 1) {
		t.Fatal("Update failed")
	}
	if v, prio, _ := h.Pop(); v != 1 || prio != 1 {
		t.Fatalf("pop = (%d,%v), want (1,1)", v, prio)
	}
	if h.Update(a, 99) {
		t.Fatal("Update succeeded on popped item")
	}
	// Increase priority.
	b, _ := h.Peek()
	if b.Value != 2 {
		t.Fatalf("peek = %d, want 2", b.Value)
	}
	h.Push(3, 7)
	h.Update(b, 100)
	if v, _, _ := h.Pop(); v != 3 {
		t.Fatalf("pop = %d, want 3 after raising 2's priority", v)
	}
}

func TestReset(t *testing.T) {
	var h Heap[int]
	var hs []*Item[int]
	for i := 0; i < 5; i++ {
		hs = append(hs, h.Push(i, float64(i)))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", h.Len())
	}
	for _, it := range hs {
		if it.InHeap() {
			t.Fatal("item reports InHeap after Reset")
		}
		if h.Remove(it) {
			t.Fatal("Remove succeeded after Reset")
		}
	}
	// Heap is reusable after Reset.
	h.Push(7, 7)
	if v, _, ok := h.Pop(); !ok || v != 7 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestCounters(t *testing.T) {
	var h Heap[int]
	for i := 0; i < 8; i++ {
		h.Push(i, float64(i))
	}
	for h.Len() > 0 {
		h.Pop()
	}
	if h.PushCount != 8 || h.PopCount != 8 {
		t.Fatalf("counters = (%d,%d), want (8,8)", h.PushCount, h.PopCount)
	}
}

// TestQuickRandomOps drives the heap with random interleaved operations and
// checks it against a reference implementation.
func TestQuickRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Heap[int]
		type ref struct {
			prio float64
			seq  int
		}
		live := map[*Item[int]]ref{}
		seq := 0
		for op := 0; op < 300; op++ {
			switch r := rng.Intn(4); {
			case r <= 1: // push
				p := float64(rng.Intn(50))
				it := h.Push(seq, p)
				live[it] = ref{p, seq}
				seq++
			case r == 2 && len(live) > 0: // pop
				v, prio, ok := h.Pop()
				if !ok {
					return false
				}
				// The popped item must be minimal among live items.
				for _, rf := range live {
					if rf.prio < prio || (rf.prio == prio && rf.seq < v) {
						return false
					}
				}
				for it, rf := range live {
					if rf.seq == v {
						delete(live, it)
						break
					}
				}
			case r == 3 && len(live) > 0: // remove a random live item
				for it := range live {
					if !h.Remove(it) {
						return false
					}
					delete(live, it)
					break
				}
			}
			if h.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
