package graph

import (
	"fmt"
	"math"
	"sort"
)

// Digraph is a directed weighted graph, the extension Section 7 of the
// paper names as future work (e.g. road maps with one-way streets). The
// neighborhood relation is asymmetric, so it exposes two Access views:
// Out(n) lists out-arcs (used by forward expansions: range-NN probes and
// verifications measure d(n→x)), In(n) lists in-arcs (used by the main
// reverse expansion that computes d(n→q) for all n).
type Digraph struct {
	numNodes int
	out, in  csr
}

type csr struct {
	offsets []int32
	targets []NodeID
	weights []float64
}

func (c *csr) adjacency(n NodeID, buf []Edge) []Edge {
	buf = buf[:0]
	for i := c.offsets[n]; i < c.offsets[n+1]; i++ {
		buf = append(buf, Edge{To: c.targets[i], W: c.weights[i]})
	}
	return buf
}

// NumNodes returns |V|.
func (d *Digraph) NumNodes() int { return d.numNodes }

// NumArcs returns the number of directed arcs.
func (d *Digraph) NumArcs() int { return len(d.out.targets) }

// Out returns an Access view over out-arcs.
func (d *Digraph) Out() Access { return digraphView{d: d, c: &d.out} }

// In returns an Access view over in-arcs (each arc reversed).
func (d *Digraph) In() Access { return digraphView{d: d, c: &d.in} }

type digraphView struct {
	d *Digraph
	c *csr
}

func (v digraphView) NumNodes() int { return v.d.numNodes }

func (v digraphView) Adjacency(n NodeID, buf []Edge) ([]Edge, error) {
	if n < 0 || int(n) >= v.d.numNodes {
		return nil, fmt.Errorf("graph: node %d out of range [0,%d)", n, v.d.numNodes)
	}
	return v.c.adjacency(n, buf), nil
}

// DigraphBuilder accumulates directed arcs.
type DigraphBuilder struct {
	numNodes int
	arcs     []builderEdge
}

// NewDigraphBuilder creates a builder for numNodes nodes.
func NewDigraphBuilder(numNodes int) *DigraphBuilder {
	return &DigraphBuilder{numNodes: numNodes}
}

// AddArc records the directed arc u→v with positive weight w. Parallel
// arcs collapse to the minimum weight.
func (b *DigraphBuilder) AddArc(u, v NodeID, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	if u < 0 || int(u) >= b.numNodes || v < 0 || int(v) >= b.numNodes {
		return fmt.Errorf("graph: arc (%d,%d) out of range [0,%d)", u, v, b.numNodes)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: arc (%d,%d) has non-positive weight %v", u, v, w)
	}
	b.arcs = append(b.arcs, builderEdge{u, v, w})
	return nil
}

// Build produces the directed graph.
func (b *DigraphBuilder) Build() (*Digraph, error) {
	sort.Slice(b.arcs, func(i, j int) bool {
		ai, aj := b.arcs[i], b.arcs[j]
		if ai.u != aj.u {
			return ai.u < aj.u
		}
		if ai.v != aj.v {
			return ai.v < aj.v
		}
		return ai.w < aj.w
	})
	dedup := b.arcs[:0]
	for _, a := range b.arcs {
		if n := len(dedup); n > 0 && dedup[n-1].u == a.u && dedup[n-1].v == a.v {
			continue
		}
		dedup = append(dedup, a)
	}
	b.arcs = dedup

	build := func(reverse bool) csr {
		deg := make([]int32, b.numNodes)
		for _, a := range b.arcs {
			src := a.u
			if reverse {
				src = a.v
			}
			deg[src]++
		}
		offsets := make([]int32, b.numNodes+1)
		for i := 0; i < b.numNodes; i++ {
			offsets[i+1] = offsets[i] + deg[i]
		}
		targets := make([]NodeID, offsets[b.numNodes])
		weights := make([]float64, offsets[b.numNodes])
		cursor := make([]int32, b.numNodes)
		copy(cursor, offsets[:b.numNodes])
		for _, a := range b.arcs {
			src, dst := a.u, a.v
			if reverse {
				src, dst = a.v, a.u
			}
			targets[cursor[src]], weights[cursor[src]] = dst, a.w
			cursor[src]++
		}
		return csr{offsets: offsets, targets: targets, weights: weights}
	}
	return &Digraph{numNodes: b.numNodes, out: build(false), in: build(true)}, nil
}
