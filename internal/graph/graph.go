// Package graph defines the network model of Yiu et al. (TKDE'06): an
// undirected weighted graph G = (V, E, W) whose network distance d(n_i, n_j)
// is the minimum weight sum over paths. It provides an in-memory CSR
// representation, a builder, and the Access interface through which every
// query algorithm reads adjacency lists — either straight from memory or
// through the disk-backed store in internal/storage.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a graph node. Nodes are dense integers 0..NumNodes-1.
type NodeID int32

// Edge is one adjacency entry: the neighbour and the (positive) edge weight.
type Edge struct {
	To NodeID
	W  float64
}

// Access is the read interface used by all query algorithms. Adjacency
// appends the adjacency list of n to buf (which may be nil) and returns the
// result; the contents are valid until the next Adjacency call on the same
// Access. Implementations are not safe for concurrent use.
type Access interface {
	NumNodes() int
	Adjacency(n NodeID, buf []Edge) ([]Edge, error)
}

// Coord is an optional 2-D embedding of a node, used by spatial generators
// (weights = Euclidean length) and by nothing else: per Section 2.2 of the
// paper the algorithms deliberately never exploit coordinates.
type Coord struct {
	X, Y float64
}

// Graph is an immutable in-memory undirected graph in CSR form. It
// implements Access with zero-copy adjacency reads.
type Graph struct {
	offsets []int32
	targets []NodeID
	weights []float64
	coords  []Coord // nil when the graph has no embedding
}

// NumNodes implements Access.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.targets) / 2 }

// Degree returns the number of neighbours of n.
func (g *Graph) Degree(n NodeID) int {
	return int(g.offsets[n+1] - g.offsets[n])
}

// Adjacency implements Access. The CSR store ignores buf and returns an
// internal slice; callers must not modify it.
func (g *Graph) Adjacency(n NodeID, buf []Edge) ([]Edge, error) {
	if n < 0 || int(n) >= g.NumNodes() {
		return nil, fmt.Errorf("graph: node %d out of range [0,%d)", n, g.NumNodes())
	}
	buf = buf[:0]
	for i := g.offsets[n]; i < g.offsets[n+1]; i++ {
		buf = append(buf, Edge{To: g.targets[i], W: g.weights[i]})
	}
	return buf, nil
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
		if g.targets[i] == v {
			return g.weights[i], true
		}
	}
	return 0, false
}

// Coords returns the node embedding, or nil if the graph has none.
func (g *Graph) Coords() []Coord { return g.coords }

// Coord returns the embedding of node n; ok is false when the graph carries
// no coordinates.
func (g *Graph) Coord(n NodeID) (Coord, bool) {
	if g.coords == nil {
		return Coord{}, false
	}
	return g.coords[n], true
}

// ForEachEdge calls fn once per undirected edge (u < v).
func (g *Graph) ForEachEdge(fn func(u, v NodeID, w float64)) {
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
			if v := g.targets[i]; u < v {
				fn(u, v, g.weights[i])
			}
		}
	}
}

// AverageDegree returns 2|E| / |V|.
func (g *Graph) AverageDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(len(g.targets)) / float64(g.NumNodes())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges keep the smallest weight; self loops are rejected.
type Builder struct {
	numNodes int
	edges    []builderEdge
	coords   []Coord
}

type builderEdge struct {
	u, v NodeID
	w    float64
}

// NewBuilder creates a builder for a graph with numNodes nodes.
func NewBuilder(numNodes int) *Builder {
	return &Builder{numNodes: numNodes}
}

// SetCoords attaches a node embedding; len(coords) must equal numNodes.
func (b *Builder) SetCoords(coords []Coord) error {
	if len(coords) != b.numNodes {
		return fmt.Errorf("graph: %d coords for %d nodes", len(coords), b.numNodes)
	}
	b.coords = coords
	return nil
}

// AddEdge records the undirected edge (u,v) with weight w.
func (b *Builder) AddEdge(u, v NodeID, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	if u < 0 || int(u) >= b.numNodes || v < 0 || int(v) >= b.numNodes {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.numNodes)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: edge (%d,%d) has non-positive weight %v", u, v, w)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, builderEdge{u, v, w})
	return nil
}

// HasEdge reports whether (u,v) has been added. It is O(#edges) and meant
// for generators that must avoid duplicates on small neighbourhoods; large
// generators keep their own sets.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u > v {
		u, v = v, u
	}
	for _, e := range b.edges {
		if e.u == u && e.v == v {
			return true
		}
	}
	return false
}

// NumNodes returns the declared node count.
func (b *Builder) NumNodes() int { return b.numNodes }

// Build produces the CSR graph. Parallel edges collapse to the minimum
// weight. Adjacency lists are sorted by neighbour id for determinism.
func (b *Builder) Build() (*Graph, error) {
	// Deduplicate, keeping minimum weight.
	sort.Slice(b.edges, func(i, j int) bool {
		ei, ej := b.edges[i], b.edges[j]
		if ei.u != ej.u {
			return ei.u < ej.u
		}
		if ei.v != ej.v {
			return ei.v < ej.v
		}
		return ei.w < ej.w
	})
	dedup := b.edges[:0]
	for _, e := range b.edges {
		if n := len(dedup); n > 0 && dedup[n-1].u == e.u && dedup[n-1].v == e.v {
			continue
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup

	deg := make([]int32, b.numNodes)
	for _, e := range b.edges {
		deg[e.u]++
		deg[e.v]++
	}
	offsets := make([]int32, b.numNodes+1)
	for i := 0; i < b.numNodes; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	targets := make([]NodeID, offsets[b.numNodes])
	weights := make([]float64, offsets[b.numNodes])
	cursor := make([]int32, b.numNodes)
	copy(cursor, offsets[:b.numNodes])
	for _, e := range b.edges {
		targets[cursor[e.u]], weights[cursor[e.u]] = e.v, e.w
		cursor[e.u]++
		targets[cursor[e.v]], weights[cursor[e.v]] = e.u, e.w
		cursor[e.v]++
	}
	g := &Graph{offsets: offsets, targets: targets, weights: weights, coords: b.coords}
	// Sort each adjacency list by (neighbour, weight) for determinism.
	for n := 0; n < b.numNodes; n++ {
		lo, hi := offsets[n], offsets[n+1]
		sub := adjSorter{targets: targets[lo:hi], weights: weights[lo:hi]}
		sort.Sort(sub)
	}
	return g, nil
}

type adjSorter struct {
	targets []NodeID
	weights []float64
}

func (a adjSorter) Len() int           { return len(a.targets) }
func (a adjSorter) Less(i, j int) bool { return a.targets[i] < a.targets[j] }
func (a adjSorter) Swap(i, j int) {
	a.targets[i], a.targets[j] = a.targets[j], a.targets[i]
	a.weights[i], a.weights[j] = a.weights[j], a.weights[i]
}

// ConnectedComponent returns the node ids of the largest connected
// component, sorted ascending. Generators use it to "clean" networks the
// way the paper cleans DBLP and the San Francisco map.
func ConnectedComponent(g *Graph) []NodeID {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var best, bestSize int32 = -1, 0
	var queue []NodeID
	var buf []Edge
	next := int32(0)
	for s := NodeID(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := next
		next++
		size := int32(0)
		queue = append(queue[:0], s)
		comp[s] = id
		//lint:ignore vetrnn/execpoll load-time component sweep over an in-memory graph
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			buf, _ = g.Adjacency(u, buf)
			for _, e := range buf {
				if comp[e.To] < 0 {
					comp[e.To] = id
					queue = append(queue, e.To)
				}
			}
		}
		if size > bestSize {
			best, bestSize = id, size
		}
	}
	out := make([]NodeID, 0, bestSize)
	for i := NodeID(0); int(i) < n; i++ {
		if comp[i] == best {
			out = append(out, i)
		}
	}
	return out
}

// InducedSubgraph relabels keep (which must be sorted ascending) to
// 0..len(keep)-1 and returns the subgraph induced by those nodes, along with
// the old-to-new id mapping (-1 for dropped nodes).
func InducedSubgraph(g *Graph, keep []NodeID) (*Graph, []NodeID, error) {
	remap := make([]NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = -1
	}
	for new, old := range keep {
		remap[old] = NodeID(new)
	}
	b := NewBuilder(len(keep))
	if g.coords != nil {
		coords := make([]Coord, len(keep))
		for new, old := range keep {
			coords[new] = g.coords[old]
		}
		if err := b.SetCoords(coords); err != nil {
			return nil, nil, err
		}
	}
	var errOut error
	g.ForEachEdge(func(u, v NodeID, w float64) {
		nu, nv := remap[u], remap[v]
		if nu < 0 || nv < 0 || errOut != nil {
			return
		}
		if err := b.AddEdge(nu, nv, w); err != nil {
			errOut = err
		}
	})
	if errOut != nil {
		return nil, nil, errOut
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, remap, nil
}
