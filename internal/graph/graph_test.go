package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(3, 2, 1.5); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, b)
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("|V|=%d |E|=%d, want 4, 3", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees = %d,%d", g.Degree(1), g.Degree(0))
	}
	adj, err := g.Adjacency(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(adj) != 2 || adj[0].To != 1 || adj[1].To != 3 {
		t.Fatalf("adjacency(2) = %+v", adj)
	}
	if w, ok := g.EdgeWeight(2, 3); !ok || w != 1.5 {
		t.Fatalf("EdgeWeight(2,3) = %v,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 3); ok {
		t.Fatal("EdgeWeight found a non-existent edge")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1, 1); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := b.AddEdge(0, 3, 1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := b.AddEdge(0, 1, -2); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestBuilderDeduplicatesKeepingMinWeight(t *testing.T) {
	b := NewBuilder(2)
	for _, w := range []float64{5, 2, 9} {
		if err := b.AddEdge(0, 1, w); err != nil {
			t.Fatal(err)
		}
	}
	g := mustBuild(t, b)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 2 {
		t.Fatalf("weight = %v, want min 2", w)
	}
}

func TestAdjacencySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if err := b.AddEdge(NodeID(u), NodeID(v), 1+rng.Float64()); err != nil {
				return false
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		// Undirected: u in adj(v) iff v in adj(u), with equal weights.
		var adj []Edge
		for u := NodeID(0); int(u) < n; u++ {
			adj, _ = g.Adjacency(u, adj)
			local := append([]Edge(nil), adj...)
			for _, e := range local {
				w, ok := g.EdgeWeight(e.To, u)
				if !ok || w != e.W {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachEdgeCountsEachOnce(t *testing.T) {
	b := NewBuilder(5)
	edges := [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := mustBuild(t, b)
	count := 0
	g.ForEachEdge(func(u, v NodeID, w float64) {
		if u >= v {
			t.Fatalf("ForEachEdge yielded (%d,%d) with u >= v", u, v)
		}
		count++
	})
	if count != len(edges) {
		t.Fatalf("ForEachEdge visited %d edges, want %d", count, len(edges))
	}
	if got := g.AverageDegree(); got != float64(2*len(edges))/5 {
		t.Fatalf("AverageDegree = %v", got)
	}
}

func TestCoords(t *testing.T) {
	b := NewBuilder(2)
	if err := b.SetCoords([]Coord{{1, 2}}); err == nil {
		t.Fatal("SetCoords accepted wrong length")
	}
	if err := b.SetCoords([]Coord{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, b)
	c, ok := g.Coord(1)
	if !ok || c != (Coord{3, 4}) {
		t.Fatalf("Coord(1) = %+v, %v", c, ok)
	}
}

func TestConnectedComponent(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; largest is the triangle.
	b := NewBuilder(5)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {0, 2}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := mustBuild(t, b)
	cc := ConnectedComponent(g)
	if len(cc) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(cc))
	}
	for i, n := range []NodeID{0, 1, 2} {
		if cc[i] != n {
			t.Fatalf("component = %v", cc)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(5)
	coords := []Coord{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}
	if err := b.SetCoords(coords); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}} {
		if err := b.AddEdge(e[0], e[1], float64(e[0]+e[1])); err != nil {
			t.Fatal(err)
		}
	}
	g := mustBuild(t, b)
	sub, remap, err := InducedSubgraph(g, []NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub |V|=%d |E|=%d, want 3, 2", sub.NumNodes(), sub.NumEdges())
	}
	if remap[0] != -1 || remap[1] != 0 || remap[3] != 2 {
		t.Fatalf("remap = %v", remap)
	}
	if w, ok := sub.EdgeWeight(0, 1); !ok || w != 3 {
		t.Fatalf("sub edge (0,1) weight = %v,%v, want 3", w, ok)
	}
	if c, ok := sub.Coord(2); !ok || c != (Coord{3, 0}) {
		t.Fatalf("sub coord(2) = %+v", c)
	}
}

func TestAdjacencyOutOfRange(t *testing.T) {
	g := mustBuild(t, NewBuilder(1))
	if _, err := g.Adjacency(1, nil); err == nil {
		t.Fatal("out-of-range adjacency accepted")
	}
	if _, err := g.Adjacency(-1, nil); err == nil {
		t.Fatal("negative adjacency accepted")
	}
}
