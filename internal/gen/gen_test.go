package gen

import (
	"math"
	"math/rand"
	"testing"

	"graphrnn/internal/graph"
)

func TestCoauthorshipPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation skipped in -short")
	}
	c, err := NewCoauthorship(DefaultCoauthorship(1))
	if err != nil {
		t.Fatal(err)
	}
	v, e := c.G.NumNodes(), c.G.NumEdges()
	// The paper's cleaned DBLP graph: 4,260 nodes, 13,199 edges. The
	// generator must land within 15% on both axes.
	if math.Abs(float64(v)-4260) > 0.15*4260 {
		t.Fatalf("|V| = %d, want ≈ 4260", v)
	}
	if math.Abs(float64(e)-13199) > 0.15*13199 {
		t.Fatalf("|E| = %d, want ≈ 13199", e)
	}
	// Connected by construction (largest component).
	if got := len(graph.ConnectedComponent(c.G)); got != v {
		t.Fatalf("component size %d != |V| %d", got, v)
	}
	// Unit weights.
	c.G.ForEachEdge(func(u, vv graph.NodeID, w float64) {
		if w != 1 {
			t.Fatalf("edge (%d,%d) has weight %v, want 1", u, vv, w)
		}
	})
	// Attribute selectivity: most authors have zero papers in the last
	// venue, and counts decrease with the threshold (Table 1's knob).
	n0 := len(c.AuthorsWithVenueCount(0, 0))
	n1 := len(c.AuthorsWithVenueCount(0, 1))
	n2 := len(c.AuthorsWithVenueCount(0, 2))
	if !(n0 > n1 && n1 > n2 && n2 > 0) {
		t.Fatalf("venue-count selectivity not monotone: %d, %d, %d", n0, n1, n2)
	}
}

func TestCoauthorshipDeterminism(t *testing.T) {
	cfg := CoauthorshipConfig{Seed: 7, TargetNodes: 300, TargetEdges: 900, Venues: 3}
	a, err := NewCoauthorship(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCoauthorship(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumNodes() != b.G.NumNodes() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatalf("same seed produced different graphs: (%d,%d) vs (%d,%d)",
			a.G.NumNodes(), a.G.NumEdges(), b.G.NumNodes(), b.G.NumEdges())
	}
	c, err := NewCoauthorship(CoauthorshipConfig{Seed: 8, TargetNodes: 300, TargetEdges: 900, Venues: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() == c.G.NumEdges() && a.G.NumNodes() == c.G.NumNodes() {
		// Different seeds may coincide in size, but the degree sequence
		// should differ somewhere; a weak check suffices.
		same := true
		for n := 0; n < a.G.NumNodes() && same; n++ {
			if a.G.Degree(graph.NodeID(n)) != c.G.Degree(graph.NodeID(n)) {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestCoauthorshipValidation(t *testing.T) {
	if _, err := NewCoauthorship(CoauthorshipConfig{Seed: 1, TargetNodes: 2, TargetEdges: 1, Venues: 1}); err == nil {
		t.Fatal("tiny config accepted")
	}
	if _, err := NewCoauthorship(CoauthorshipConfig{Seed: 1, TargetNodes: 100, TargetEdges: 300, Venues: 0}); err == nil {
		t.Fatal("zero venues accepted")
	}
}

func TestBriteDegreeAndExpansion(t *testing.T) {
	g, err := Brite(BriteConfig{Seed: 3, Nodes: 5000, AvgDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5000 {
		t.Fatalf("|V| = %d", g.NumNodes())
	}
	if d := g.AverageDegree(); math.Abs(d-4) > 0.2 {
		t.Fatalf("average degree = %v, want ≈ 4", d)
	}
	if got := len(graph.ConnectedComponent(g)); got != g.NumNodes() {
		t.Fatalf("BRITE topology disconnected: component %d of %d", got, g.NumNodes())
	}
	// Exponential expansion: the hop-ball around a node saturates the
	// graph within a few hops (the effect behind Figs 15-16).
	frontier := []graph.NodeID{0}
	seen := map[graph.NodeID]bool{0: true}
	var adj []graph.Edge
	hops := 0
	for len(seen) < g.NumNodes()/2 && hops < 30 {
		var next []graph.NodeID
		for _, u := range frontier {
			adj, _ = g.Adjacency(u, adj)
			for _, e := range adj {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
		hops++
	}
	if hops > 10 {
		t.Fatalf("half the topology reached only after %d hops; not low-diameter", hops)
	}
	// Scale-free flavour: the maximum degree is far above the average.
	maxDeg := 0
	for n := 0; n < g.NumNodes(); n++ {
		if d := g.Degree(graph.NodeID(n)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 30 {
		t.Fatalf("max degree %d; expected a heavy tail", maxDeg)
	}
}

func TestRoadNetworkShape(t *testing.T) {
	g, err := RoadNetwork(RoadConfig{Seed: 4, Nodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	v := g.NumNodes()
	if v < 17000 {
		t.Fatalf("largest component kept only %d of 20000 nodes", v)
	}
	ratio := float64(g.NumEdges()) / float64(v)
	if ratio < 1.1 || ratio > 1.45 {
		t.Fatalf("|E|/|V| = %v, want ≈ 1.27 (SF map)", ratio)
	}
	if g.Coords() == nil {
		t.Fatal("road network has no coordinates")
	}
	// Weights are the Euclidean distances of the embedded endpoints.
	coords := g.Coords()
	bad := 0
	g.ForEachEdge(func(u, vv graph.NodeID, w float64) {
		d := math.Hypot(coords[u].X-coords[vv].X, coords[u].Y-coords[vv].Y)
		if math.Abs(d-w) > 1e-9 {
			bad++
		}
	})
	if bad > 0 {
		t.Fatalf("%d edges with non-Euclidean weights", bad)
	}
	// Planar-ish: no exponential expansion — the 5-hop ball is small.
	frontier := []graph.NodeID{graph.NodeID(v / 2)}
	seen := map[graph.NodeID]bool{frontier[0]: true}
	var adj []graph.Edge
	for hop := 0; hop < 5; hop++ {
		var next []graph.NodeID
		for _, u := range frontier {
			adj, _ = g.Adjacency(u, adj)
			for _, e := range adj {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	if len(seen) > v/10 {
		t.Fatalf("5-hop ball covers %d of %d nodes; not spatial", len(seen), v)
	}
}

func TestGridDegrees(t *testing.T) {
	for _, deg := range []float64{4, 5, 6, 7} {
		g, err := Grid(GridConfig{Seed: 5, Nodes: 10000, Degree: deg})
		if err != nil {
			t.Fatal(err)
		}
		got := g.AverageDegree()
		if math.Abs(got-deg) > 0.25 {
			t.Fatalf("degree %v: average degree = %v", deg, got)
		}
		if comp := len(graph.ConnectedComponent(g)); comp != g.NumNodes() {
			t.Fatalf("grid disconnected: %d of %d", comp, g.NumNodes())
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := Brite(BriteConfig{Seed: 1, Nodes: 2, AvgDegree: 4}); err == nil {
		t.Fatal("tiny BRITE accepted")
	}
	if _, err := RoadNetwork(RoadConfig{Seed: 1, Nodes: 4}); err == nil {
		t.Fatal("tiny road network accepted")
	}
	if _, err := Grid(GridConfig{Seed: 1, Nodes: 4}); err == nil {
		t.Fatal("tiny grid accepted")
	}
}

func TestWorkloadHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := Grid(GridConfig{Seed: 2, Nodes: 400, Degree: 4})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := PlaceNodePoints(rng, g.NumNodes(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 40 {
		t.Fatalf("placed %d points", ps.Len())
	}
	if _, err := PlaceNodePoints(rng, 10, 20); err == nil {
		t.Fatal("overfull placement accepted")
	}
	el := Edges(g)
	if len(el.U) != g.NumEdges() {
		t.Fatalf("edge list has %d edges, want %d", len(el.U), g.NumEdges())
	}
	eps, err := PlaceEdgePoints(rng, el, 55)
	if err != nil {
		t.Fatal(err)
	}
	if eps.Len() != 55 {
		t.Fatalf("placed %d edge points", eps.Len())
	}
	for _, p := range eps.Points() {
		loc, ok := eps.Loc(p)
		if !ok {
			t.Fatalf("point %d has no location", p)
		}
		if w, exists := g.EdgeWeight(loc.U, loc.V); !exists || loc.Pos < 0 || loc.Pos > w {
			t.Fatalf("point %d at invalid location %+v (w=%v, exists=%v)", p, loc, w, exists)
		}
	}
	qs := SampleQueries(rng, ps.Points(), 50)
	if len(qs) != 50 {
		t.Fatalf("sampled %d queries", len(qs))
	}
	route := RandomWalkRoute(rng, g, 16)
	if len(route) == 0 || len(route) > 16 {
		t.Fatalf("route length %d", len(route))
	}
	seen := map[graph.NodeID]bool{}
	for i, n := range route {
		if seen[n] {
			t.Fatal("route repeats a node")
		}
		seen[n] = true
		if i > 0 {
			if _, ok := g.EdgeWeight(route[i-1], n); !ok {
				t.Fatalf("route hop %d-%d not an edge", route[i-1], n)
			}
		}
	}
}
