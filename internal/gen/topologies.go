package gen

import (
	"fmt"
	"math"
	"math/rand"

	"graphrnn/internal/graph"
)

// BriteConfig parameterizes the BRITE-like router topology generator. The
// paper uses BRITE with average degree 4; Barabási–Albert preferential
// attachment with m = AvgDegree/2 reproduces the property the experiments
// depend on — arbitrary (non-spatial) connections with a tiny diameter, so
// expansions saturate the node set within a few hops ("exponential
// expansion", Figs 15–16).
type BriteConfig struct {
	Seed      int64
	Nodes     int
	AvgDegree int
	// MaxWeight caps the uniform edge weights, drawn from [1, MaxWeight).
	// Zero defaults to 10.
	MaxWeight float64
}

// Brite generates a scale-free router-style topology.
func Brite(cfg BriteConfig) (*graph.Graph, error) {
	if cfg.Nodes < 4 {
		return nil, fmt.Errorf("gen: BRITE topology needs at least 4 nodes, got %d", cfg.Nodes)
	}
	m := cfg.AvgDegree / 2
	if m < 1 {
		m = 1
	}
	if cfg.MaxWeight <= 1 {
		cfg.MaxWeight = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(cfg.Nodes)
	w := func() float64 { return 1 + rng.Float64()*(cfg.MaxWeight-1) }

	// Attachment targets, repeated by degree (the standard BA urn).
	urn := make([]graph.NodeID, 0, 2*m*cfg.Nodes)
	// Seed clique over the first m+1 nodes.
	for i := 0; i <= m && i < cfg.Nodes; i++ {
		for j := 0; j < i; j++ {
			if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j), w()); err != nil {
				return nil, err
			}
			urn = append(urn, graph.NodeID(i), graph.NodeID(j))
		}
	}
	chosen := make(map[graph.NodeID]bool, m)
	for n := m + 1; n < cfg.Nodes; n++ {
		for p := range chosen {
			delete(chosen, p)
		}
		for len(chosen) < m {
			t := urn[rng.Intn(len(urn))]
			if chosen[t] {
				continue
			}
			chosen[t] = true
		}
		for t := range chosen {
			if err := b.AddEdge(graph.NodeID(n), t, w()); err != nil {
				return nil, err
			}
			urn = append(urn, graph.NodeID(n), t)
		}
	}
	return b.Build()
}

// RoadConfig parameterizes the San-Francisco-like spatial network: a
// jittered grid of intersections in [0, Extent]² connected to spatial
// neighbours, with Euclidean edge weights and an |E|/|V| ratio matching the
// cleaned SF map (223,001 / 174,956 ≈ 1.27). The generated graph is
// cleaned to its largest connected component, as the paper does.
type RoadConfig struct {
	Seed  int64
	Nodes int
	// EdgeFactor is the target |E| / |V| ratio; zero defaults to 1.27.
	EdgeFactor float64
	// Extent is the coordinate range; zero defaults to 10,000 (the paper
	// normalizes SF coordinates into [0, 10000]²).
	Extent float64
}

// RoadNetwork generates a planar spatial network.
func RoadNetwork(cfg RoadConfig) (*graph.Graph, error) {
	if cfg.Nodes < 9 {
		return nil, fmt.Errorf("gen: road network needs at least 9 nodes, got %d", cfg.Nodes)
	}
	if cfg.EdgeFactor <= 0 {
		cfg.EdgeFactor = 1.27
	}
	if cfg.Extent <= 0 {
		cfg.Extent = 10000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := int(math.Ceil(math.Sqrt(float64(cfg.Nodes))))
	cell := cfg.Extent / float64(side)
	n := cfg.Nodes
	coords := make([]graph.Coord, n)
	for i := 0; i < n; i++ {
		gx, gy := i%side, i/side
		coords[i] = graph.Coord{
			X: (float64(gx) + 0.15 + 0.7*rng.Float64()) * cell,
			Y: (float64(gy) + 0.15 + 0.7*rng.Float64()) * cell,
		}
	}
	b := graph.NewBuilder(n)
	if err := b.SetCoords(coords); err != nil {
		return nil, err
	}
	dist := func(u, v int) float64 {
		dx := coords[u].X - coords[v].X
		dy := coords[u].Y - coords[v].Y
		return math.Hypot(dx, dy)
	}
	// Candidate edges: right and down grid neighbours (≈ 2|V|), kept with
	// probability EdgeFactor/2 — above the square-lattice bond percolation
	// threshold, so the giant component covers almost every node.
	keepProb := cfg.EdgeFactor / 2
	add := func(u, v int) error {
		if v >= n || rng.Float64() >= keepProb {
			return nil
		}
		return b.AddEdge(graph.NodeID(u), graph.NodeID(v), dist(u, v))
	}
	for i := 0; i < n; i++ {
		gx := i % side
		if gx+1 < side {
			if err := add(i, i+1); err != nil {
				return nil, err
			}
		}
		if err := add(i, i+side); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	keep := graph.ConnectedComponent(g)
	sub, _, err := graph.InducedSubgraph(g, keep)
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// GridConfig parameterizes the synthetic grid maps of Fig 20 (following
// HiTi [7] and Jensen et al. [5]): a unit square lattice with average
// degree 4; higher degrees are reached by adding random edges between
// nearby nodes, weighted by their Euclidean distance.
type GridConfig struct {
	Seed  int64
	Nodes int
	// Degree is the target average degree, >= 4.
	Degree float64
}

// Grid generates a grid map.
func Grid(cfg GridConfig) (*graph.Graph, error) {
	if cfg.Nodes < 9 {
		return nil, fmt.Errorf("gen: grid needs at least 9 nodes, got %d", cfg.Nodes)
	}
	if cfg.Degree < 4 {
		cfg.Degree = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := int(math.Ceil(math.Sqrt(float64(cfg.Nodes))))
	n := side * side // full square keeps the lattice regular
	coords := make([]graph.Coord, n)
	for i := range coords {
		coords[i] = graph.Coord{X: float64(i % side), Y: float64(i / side)}
	}
	b := graph.NewBuilder(n)
	if err := b.SetCoords(coords); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		gx := i % side
		if gx+1 < side {
			if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
				return nil, err
			}
		}
		if i+side < n {
			if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+side), 1); err != nil {
				return nil, err
			}
		}
	}
	// Extra edges between nearby nodes until the average degree target.
	baseEdges := 2*n - 2*side
	extra := int(cfg.Degree*float64(n)/2) - baseEdges
	seen := map[[2]int]bool{}
	for added := 0; added < extra; {
		u := rng.Intn(n)
		gx, gy := u%side, u/side
		dx, dy := rng.Intn(7)-3, rng.Intn(7)-3
		if dx == 0 && dy == 0 {
			continue
		}
		nx, ny := gx+dx, gy+dy
		if nx < 0 || nx >= side || ny < 0 || ny >= side {
			continue
		}
		v := ny*side + nx
		// Skip lattice neighbours (already connected) and duplicates.
		if (dx == 0 && (dy == 1 || dy == -1)) || (dy == 0 && (dx == 1 || dx == -1)) {
			continue
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		if seen[[2]int{a, c}] {
			continue
		}
		seen[[2]int{a, c}] = true
		w := math.Hypot(float64(dx), float64(dy))
		if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v), w); err != nil {
			return nil, err
		}
		added++
	}
	return b.Build()
}
