package gen

import (
	"fmt"
	"math/rand"

	"graphrnn/internal/graph"
	"graphrnn/internal/points"
)

// Workload construction following Section 6: data density D = |P| / |V|,
// points placed uniformly (on nodes for restricted networks, on edges for
// unrestricted ones), and query locations sampled from the data points so
// that queries follow the data distribution. The sampled point is excluded
// from its own query's point set by the experiment harness (the query
// models a newly arriving object).

// PlaceNodePoints places count points on distinct uniformly random nodes.
func PlaceNodePoints(rng *rand.Rand, numNodes, count int) (*points.NodeSet, error) {
	if count > numNodes {
		return nil, fmt.Errorf("gen: cannot place %d points on %d nodes", count, numNodes)
	}
	ps := points.NewNodeSet(numNodes)
	perm := rng.Perm(numNodes)
	for i := 0; i < count; i++ {
		if _, err := ps.Place(graph.NodeID(perm[i])); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// PlaceNodePointsOn places one point on each listed node, shuffling to
// de-correlate point ids from node order.
func PlaceNodePointsOn(rng *rand.Rand, numNodes int, nodes []graph.NodeID) (*points.NodeSet, error) {
	shuffled := append([]graph.NodeID(nil), nodes...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	return points.NewNodeSetFromNodes(numNodes, shuffled)
}

// EdgeList captures the undirected edges of a graph for sampling.
type EdgeList struct {
	U, V []graph.NodeID
	W    []float64
}

// Edges extracts the edge list of g.
func Edges(g *graph.Graph) *EdgeList {
	el := &EdgeList{}
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		el.U = append(el.U, u)
		el.V = append(el.V, v)
		el.W = append(el.W, w)
	})
	return el
}

// PlaceEdgePoints distributes count points uniformly over random edges at
// uniform offsets (the unrestricted workloads of Section 6.2).
func PlaceEdgePoints(rng *rand.Rand, el *EdgeList, count int) (*points.EdgeSet, error) {
	if len(el.U) == 0 {
		return nil, fmt.Errorf("gen: graph has no edges")
	}
	ps := points.NewEdgeSet()
	for i := 0; i < count; i++ {
		e := rng.Intn(len(el.U))
		if _, err := ps.Place(el.U[e], el.V[e], rng.Float64()*el.W[e]); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// SampleQueries draws n point ids (with replacement across the workload,
// without immediate repetition) to serve as query locations.
func SampleQueries(rng *rand.Rand, ids []points.PointID, n int) []points.PointID {
	out := make([]points.PointID, n)
	for i := range out {
		out[i] = ids[rng.Intn(len(ids))]
	}
	return out
}

// RandomWalkRoute builds a route for continuous queries: a random walk
// without repeated nodes, as in Fig 19.
func RandomWalkRoute(rng *rand.Rand, g *graph.Graph, size int) []graph.NodeID {
	start := graph.NodeID(rng.Intn(g.NumNodes()))
	route := []graph.NodeID{start}
	onRoute := map[graph.NodeID]bool{start: true}
	var adj []graph.Edge
	//lint:ignore vetrnn/execpoll workload generation runs before any query context exists
	for len(route) < size {
		adj, _ = g.Adjacency(route[len(route)-1], adj)
		options := adj[:0:0]
		for _, e := range adj {
			if !onRoute[e.To] {
				options = append(options, e)
			}
		}
		if len(options) == 0 {
			break
		}
		next := options[rng.Intn(len(options))].To
		route = append(route, next)
		onRoute[next] = true
	}
	return route
}
