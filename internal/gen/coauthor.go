// Package gen synthesizes the four network families of the paper's
// evaluation (Section 6). The original datasets (the DBLP coauthorship
// graph, BRITE router topologies, the San Francisco road map, and the grid
// maps of HiTi) are not redistributable in this offline reproduction, so
// each generator rebuilds the structural properties the RNN algorithms are
// sensitive to; DESIGN.md §3 records the substitution argument for each.
// All generators are deterministic for a fixed seed.
package gen

import (
	"fmt"
	"math/rand"

	"graphrnn/internal/graph"
)

// CoauthorshipConfig parameterizes the DBLP-like generator. The defaults
// reproduce the paper's cleaned graph scale: 4,260 authors and ~13,199
// coauthorship edges over four venues, unit edge weights (degree of
// separation).
type CoauthorshipConfig struct {
	Seed        int64
	TargetNodes int
	TargetEdges int
	Venues      int
}

// DefaultCoauthorship returns the paper-scale configuration.
func DefaultCoauthorship(seed int64) CoauthorshipConfig {
	return CoauthorshipConfig{Seed: seed, TargetNodes: 4260, TargetEdges: 13199, Venues: 4}
}

// Coauthorship is a synthetic coauthorship network: a community-overlap
// model where "papers" with venue labels and Zipf-ish team sizes link their
// authors pairwise with weight 1. Author selection is preferential in the
// number of prior papers, giving the heavy-tailed collaboration degrees of
// real coauthorship graphs. PaperCounts[n][v] is the number of papers of
// author n in venue v, the attribute the ad-hoc queries of Table 1 filter
// on.
type Coauthorship struct {
	G           *graph.Graph
	PaperCounts [][]int
}

// NewCoauthorship generates a coauthorship network and cleans it to its
// largest connected component, as the paper does with DBLP.
func NewCoauthorship(cfg CoauthorshipConfig) (*Coauthorship, error) {
	if cfg.TargetNodes < 10 || cfg.TargetEdges < cfg.TargetNodes/2 {
		return nil, fmt.Errorf("gen: implausible coauthorship targets |V|=%d |E|=%d", cfg.TargetNodes, cfg.TargetEdges)
	}
	if cfg.Venues < 1 {
		return nil, fmt.Errorf("gen: need at least one venue")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type edgeKey struct{ u, v int32 }
	edges := make(map[edgeKey]bool)
	var authorPapers []int // #papers per author (preferential weight)
	var totalPapers int
	counts := make([][]int, 0, cfg.TargetNodes)

	newAuthor := func() int {
		authorPapers = append(authorPapers, 0)
		counts = append(counts, make([]int, cfg.Venues))
		return len(authorPapers) - 1
	}
	// Preferential pick: weight 1 + #papers.
	pickExisting := func() int {
		total := totalPapers + len(authorPapers)
		r := rng.Intn(total)
		for i, p := range authorPapers {
			r -= p + 1
			if r < 0 {
				return i
			}
		}
		return len(authorPapers) - 1
	}
	// Venue popularity: the first venues publish more (SIGMOD/VLDB/ICDE
	// vs PODS in the paper's dataset).
	venueOf := func() int {
		w := make([]int, cfg.Venues)
		tot := 0
		for v := range w {
			w[v] = cfg.Venues - v + 1
			tot += w[v]
		}
		r := rng.Intn(tot)
		for v := range w {
			r -= w[v]
			if r < 0 {
				return v
			}
		}
		return 0
	}

	for i := 0; i < 3; i++ {
		newAuthor()
	}
	team := make([]int, 0, 10)
	// nodesPerEdge is the schedule that makes both targets land together.
	nodesPerEdge := float64(cfg.TargetNodes) / float64(cfg.TargetEdges)
	maxPapers := 40 * cfg.TargetEdges
	papers := 0
	for len(edges) < cfg.TargetEdges || len(authorPapers) < cfg.TargetNodes {
		papers++
		if papers > maxPapers {
			return nil, fmt.Errorf("gen: coauthorship generation did not converge (%d papers, |V|=%d |E|=%d)",
				papers, len(authorPapers), len(edges))
		}
		// Team size: geometric-ish, mean ~2.7, capped at 8.
		size := 1
		for size < 8 && rng.Float64() < 0.62 {
			size++
		}
		team = team[:0]
		inTeam := map[int]bool{}
		for len(team) < size {
			var a int
			// The first member is always an existing author, so a paper
			// never creates an isolated new-authors-only component; the
			// probability of introducing new authors adapts to whether
			// the node count is behind the edge count's schedule.
			pNew := 0.15
			if float64(len(authorPapers)) < nodesPerEdge*float64(len(edges)+1) {
				pNew = 0.85
			}
			if len(team) == 0 || len(authorPapers) >= cfg.TargetNodes {
				pNew = 0
			}
			if rng.Float64() < pNew {
				a = newAuthor()
			} else {
				a = pickExisting()
			}
			if inTeam[a] {
				if len(team) > 0 && (len(authorPapers) >= cfg.TargetNodes || rng.Float64() < 0.5) {
					break // avoid spinning on tiny author pools
				}
				continue
			}
			inTeam[a] = true
			team = append(team, a)
		}
		v := venueOf()
		for _, a := range team {
			authorPapers[a]++
			counts[a][v]++
			totalPapers++
		}
		for i := 0; i < len(team); i++ {
			for j := i + 1; j < len(team); j++ {
				u, w := int32(team[i]), int32(team[j])
				if u > w {
					u, w = w, u
				}
				edges[edgeKey{u, w}] = true
			}
		}
	}

	b := graph.NewBuilder(len(authorPapers))
	for e := range edges {
		if err := b.AddEdge(graph.NodeID(e.u), graph.NodeID(e.v), 1); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	keep := graph.ConnectedComponent(g)
	sub, _, err := graph.InducedSubgraph(g, keep)
	if err != nil {
		return nil, err
	}
	subCounts := make([][]int, len(keep))
	for new, old := range keep {
		subCounts[new] = counts[old]
	}
	return &Coauthorship{G: sub, PaperCounts: subCounts}, nil
}

// AuthorsWithVenueCount returns the nodes whose paper count in venue v is
// exactly c — the ad-hoc predicate of Table 1.
func (c *Coauthorship) AuthorsWithVenueCount(v, count int) []graph.NodeID {
	var out []graph.NodeID
	for n, pc := range c.PaperCounts {
		if v < len(pc) && pc[v] == count {
			out = append(out, graph.NodeID(n))
		}
	}
	return out
}
