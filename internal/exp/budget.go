package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"graphrnn/internal/core"
	"graphrnn/internal/exec"
	"graphrnn/internal/gen"
	"graphrnn/internal/points"
)

// Budgeted measures degradation under per-query work budgets — the engine
// layer's MaxNodes cap — on the road-like restricted workload: each row
// halves the node budget, each cell reports the paper's cost model plus
// the average members confirmed before the budget tripped (the Results
// column; the unbounded row is the recall baseline). This is the
// experiment behind admission control: it shows how much answer a deadline
// -bounded deployment still gets when it stops a sweep early.
func Budgeted(s Scale) (*Table, error) {
	n := s.pick(20000, 175000)
	budgets := []int64{0, 50000, 10000, 2000, 500} // 0 = unbounded
	algos := EagerLazy
	t := &Table{
		ID:      "Budget",
		Title:   fmt.Sprintf("budgeted queries, road-like restricted |V|=%d, D=0.01, k=2 (Results = avg members confirmed before the budget tripped)", n),
		XLabel:  "max nodes/query",
		Columns: algos,
	}
	g, err := gen.RoadNetwork(gen.RoadConfig{Seed: s.seed(), Nodes: n})
	if err != nil {
		return nil, err
	}
	e, err := newEnv(g, s.bufferPages())
	if err != nil {
		return nil, err
	}
	defer e.close()
	rng := rand.New(rand.NewSource(s.seed() + 41))
	if err := e.withNodePoints(rng, max(2, int(0.01*float64(g.NumNodes())))); err != nil {
		return nil, err
	}
	queries := gen.SampleQueries(rng, e.nodePts.Points(), s.queries())

	for _, budget := range budgets {
		row := make([]Measure, 0, len(algos))
		for _, a := range algos {
			m, err := e.budgetedRow(queries, 2, a, budget)
			if err != nil {
				return nil, err
			}
			row = append(row, m)
		}
		label := "inf"
		if budget > 0 {
			label = fmt.Sprintf("%d", budget)
		}
		t.Xs = append(t.Xs, label)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// budgetedRow runs the workload under one node budget, tolerating (and
// measuring) queries abandoned with ErrBudgetExceeded: their partial
// results count toward the averages, exactly what a budget-bounded server
// would return to its clients.
func (e *env) budgetedRow(queries []points.PointID, k int, a Algo, budget int64) (Measure, error) {
	if err := e.coldStart(); err != nil {
		return Measure{}, err
	}
	var m Measure
	for _, qp := range queries {
		qnode, ok := e.nodePts.NodeOf(qp)
		if !ok {
			continue // not in this environment's point set
		}
		view := points.ExcludeNode(e.nodePts, qp)
		var ec *exec.Ctx
		if budget > 0 {
			ec = exec.New(context.Background(), exec.Budget{MaxNodes: budget}, nil)
		}
		s := e.searcher.Bound(ec)
		ioBefore := e.io()
		t0 := time.Now()
		var res *core.Result
		var err error
		switch a {
		case AlgoEager:
			res, err = s.EagerRkNN(view, qnode, k)
		case AlgoLazy:
			res, err = s.LazyRkNN(view, qnode, k)
		default:
			return Measure{}, fmt.Errorf("exp: budgeted rows support E and L, got %q", a)
		}
		if err != nil && !exec.IsExecErr(err) {
			return Measure{}, err
		}
		m.CPU += time.Since(t0).Seconds()
		m.IO += float64(e.io() - ioBefore)
		if res != nil {
			m.Results += float64(len(res.Points))
		}
	}
	n := float64(len(queries))
	m.CPU /= n
	m.IO /= n
	m.Results /= n
	return m, nil
}
